
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11.cpp" "bench/CMakeFiles/bench_fig11.dir/bench_fig11.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11.dir/bench_fig11.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pbecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pbe/CMakeFiles/pbecc_pbe.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pbecc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/pbecc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbecc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/decoder/CMakeFiles/pbecc_decoder.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/pbecc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbecc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
