file(REMOVE_RECURSE
  "CMakeFiles/mobility_drive.dir/mobility_drive.cpp.o"
  "CMakeFiles/mobility_drive.dir/mobility_drive.cpp.o.d"
  "mobility_drive"
  "mobility_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
