# Empty compiler generated dependencies file for mobility_drive.
# This may be replaced when dependencies are built.
