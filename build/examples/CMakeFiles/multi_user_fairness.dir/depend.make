# Empty dependencies file for multi_user_fairness.
# This may be replaced when dependencies are built.
