file(REMOVE_RECURSE
  "CMakeFiles/multi_user_fairness.dir/multi_user_fairness.cpp.o"
  "CMakeFiles/multi_user_fairness.dir/multi_user_fairness.cpp.o.d"
  "multi_user_fairness"
  "multi_user_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
