# Empty compiler generated dependencies file for pbe_test.
# This may be replaced when dependencies are built.
