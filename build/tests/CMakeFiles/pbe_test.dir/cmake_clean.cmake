file(REMOVE_RECURSE
  "CMakeFiles/pbe_test.dir/pbe_test.cpp.o"
  "CMakeFiles/pbe_test.dir/pbe_test.cpp.o.d"
  "pbe_test"
  "pbe_test.pdb"
  "pbe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
