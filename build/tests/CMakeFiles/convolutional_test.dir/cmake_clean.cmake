file(REMOVE_RECURSE
  "CMakeFiles/convolutional_test.dir/convolutional_test.cpp.o"
  "CMakeFiles/convolutional_test.dir/convolutional_test.cpp.o.d"
  "convolutional_test"
  "convolutional_test.pdb"
  "convolutional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolutional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
