# Empty dependencies file for convolutional_test.
# This may be replaced when dependencies are built.
