file(REMOVE_RECURSE
  "libpbecc_phy.a"
)
