file(REMOVE_RECURSE
  "CMakeFiles/pbecc_phy.dir/channel.cpp.o"
  "CMakeFiles/pbecc_phy.dir/channel.cpp.o.d"
  "CMakeFiles/pbecc_phy.dir/convolutional.cpp.o"
  "CMakeFiles/pbecc_phy.dir/convolutional.cpp.o.d"
  "CMakeFiles/pbecc_phy.dir/dci.cpp.o"
  "CMakeFiles/pbecc_phy.dir/dci.cpp.o.d"
  "CMakeFiles/pbecc_phy.dir/error_model.cpp.o"
  "CMakeFiles/pbecc_phy.dir/error_model.cpp.o.d"
  "CMakeFiles/pbecc_phy.dir/mcs.cpp.o"
  "CMakeFiles/pbecc_phy.dir/mcs.cpp.o.d"
  "CMakeFiles/pbecc_phy.dir/pdcch.cpp.o"
  "CMakeFiles/pbecc_phy.dir/pdcch.cpp.o.d"
  "CMakeFiles/pbecc_phy.dir/transport_block.cpp.o"
  "CMakeFiles/pbecc_phy.dir/transport_block.cpp.o.d"
  "libpbecc_phy.a"
  "libpbecc_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
