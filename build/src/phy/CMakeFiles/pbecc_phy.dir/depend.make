# Empty dependencies file for pbecc_phy.
# This may be replaced when dependencies are built.
