# Empty compiler generated dependencies file for pbecc_decoder.
# This may be replaced when dependencies are built.
