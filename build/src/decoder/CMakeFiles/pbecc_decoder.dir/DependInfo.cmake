
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decoder/blind_decoder.cpp" "src/decoder/CMakeFiles/pbecc_decoder.dir/blind_decoder.cpp.o" "gcc" "src/decoder/CMakeFiles/pbecc_decoder.dir/blind_decoder.cpp.o.d"
  "/root/repo/src/decoder/message_fusion.cpp" "src/decoder/CMakeFiles/pbecc_decoder.dir/message_fusion.cpp.o" "gcc" "src/decoder/CMakeFiles/pbecc_decoder.dir/message_fusion.cpp.o.d"
  "/root/repo/src/decoder/monitor.cpp" "src/decoder/CMakeFiles/pbecc_decoder.dir/monitor.cpp.o" "gcc" "src/decoder/CMakeFiles/pbecc_decoder.dir/monitor.cpp.o.d"
  "/root/repo/src/decoder/user_tracker.cpp" "src/decoder/CMakeFiles/pbecc_decoder.dir/user_tracker.cpp.o" "gcc" "src/decoder/CMakeFiles/pbecc_decoder.dir/user_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/pbecc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbecc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
