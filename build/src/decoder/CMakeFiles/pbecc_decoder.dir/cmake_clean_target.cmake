file(REMOVE_RECURSE
  "libpbecc_decoder.a"
)
