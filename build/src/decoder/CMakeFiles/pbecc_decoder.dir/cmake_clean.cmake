file(REMOVE_RECURSE
  "CMakeFiles/pbecc_decoder.dir/blind_decoder.cpp.o"
  "CMakeFiles/pbecc_decoder.dir/blind_decoder.cpp.o.d"
  "CMakeFiles/pbecc_decoder.dir/message_fusion.cpp.o"
  "CMakeFiles/pbecc_decoder.dir/message_fusion.cpp.o.d"
  "CMakeFiles/pbecc_decoder.dir/monitor.cpp.o"
  "CMakeFiles/pbecc_decoder.dir/monitor.cpp.o.d"
  "CMakeFiles/pbecc_decoder.dir/user_tracker.cpp.o"
  "CMakeFiles/pbecc_decoder.dir/user_tracker.cpp.o.d"
  "libpbecc_decoder.a"
  "libpbecc_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
