# Empty dependencies file for pbecc_pbe.
# This may be replaced when dependencies are built.
