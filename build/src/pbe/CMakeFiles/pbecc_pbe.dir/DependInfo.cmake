
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbe/capacity_estimator.cpp" "src/pbe/CMakeFiles/pbecc_pbe.dir/capacity_estimator.cpp.o" "gcc" "src/pbe/CMakeFiles/pbecc_pbe.dir/capacity_estimator.cpp.o.d"
  "/root/repo/src/pbe/delay_monitor.cpp" "src/pbe/CMakeFiles/pbecc_pbe.dir/delay_monitor.cpp.o" "gcc" "src/pbe/CMakeFiles/pbecc_pbe.dir/delay_monitor.cpp.o.d"
  "/root/repo/src/pbe/misreport_detector.cpp" "src/pbe/CMakeFiles/pbecc_pbe.dir/misreport_detector.cpp.o" "gcc" "src/pbe/CMakeFiles/pbecc_pbe.dir/misreport_detector.cpp.o.d"
  "/root/repo/src/pbe/pbe_client.cpp" "src/pbe/CMakeFiles/pbecc_pbe.dir/pbe_client.cpp.o" "gcc" "src/pbe/CMakeFiles/pbecc_pbe.dir/pbe_client.cpp.o.d"
  "/root/repo/src/pbe/pbe_sender.cpp" "src/pbe/CMakeFiles/pbecc_pbe.dir/pbe_sender.cpp.o" "gcc" "src/pbe/CMakeFiles/pbecc_pbe.dir/pbe_sender.cpp.o.d"
  "/root/repo/src/pbe/rate_translator.cpp" "src/pbe/CMakeFiles/pbecc_pbe.dir/rate_translator.cpp.o" "gcc" "src/pbe/CMakeFiles/pbecc_pbe.dir/rate_translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/decoder/CMakeFiles/pbecc_decoder.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pbecc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbecc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/pbecc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbecc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
