file(REMOVE_RECURSE
  "libpbecc_pbe.a"
)
