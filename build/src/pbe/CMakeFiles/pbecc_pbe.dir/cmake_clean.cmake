file(REMOVE_RECURSE
  "CMakeFiles/pbecc_pbe.dir/capacity_estimator.cpp.o"
  "CMakeFiles/pbecc_pbe.dir/capacity_estimator.cpp.o.d"
  "CMakeFiles/pbecc_pbe.dir/delay_monitor.cpp.o"
  "CMakeFiles/pbecc_pbe.dir/delay_monitor.cpp.o.d"
  "CMakeFiles/pbecc_pbe.dir/misreport_detector.cpp.o"
  "CMakeFiles/pbecc_pbe.dir/misreport_detector.cpp.o.d"
  "CMakeFiles/pbecc_pbe.dir/pbe_client.cpp.o"
  "CMakeFiles/pbecc_pbe.dir/pbe_client.cpp.o.d"
  "CMakeFiles/pbecc_pbe.dir/pbe_sender.cpp.o"
  "CMakeFiles/pbecc_pbe.dir/pbe_sender.cpp.o.d"
  "CMakeFiles/pbecc_pbe.dir/rate_translator.cpp.o"
  "CMakeFiles/pbecc_pbe.dir/rate_translator.cpp.o.d"
  "libpbecc_pbe.a"
  "libpbecc_pbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_pbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
