# Empty dependencies file for pbecc_baselines.
# This may be replaced when dependencies are built.
