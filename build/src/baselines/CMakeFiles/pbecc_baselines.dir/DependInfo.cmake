
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bbr.cpp" "src/baselines/CMakeFiles/pbecc_baselines.dir/bbr.cpp.o" "gcc" "src/baselines/CMakeFiles/pbecc_baselines.dir/bbr.cpp.o.d"
  "/root/repo/src/baselines/copa.cpp" "src/baselines/CMakeFiles/pbecc_baselines.dir/copa.cpp.o" "gcc" "src/baselines/CMakeFiles/pbecc_baselines.dir/copa.cpp.o.d"
  "/root/repo/src/baselines/cubic.cpp" "src/baselines/CMakeFiles/pbecc_baselines.dir/cubic.cpp.o" "gcc" "src/baselines/CMakeFiles/pbecc_baselines.dir/cubic.cpp.o.d"
  "/root/repo/src/baselines/pcc.cpp" "src/baselines/CMakeFiles/pbecc_baselines.dir/pcc.cpp.o" "gcc" "src/baselines/CMakeFiles/pbecc_baselines.dir/pcc.cpp.o.d"
  "/root/repo/src/baselines/sprout.cpp" "src/baselines/CMakeFiles/pbecc_baselines.dir/sprout.cpp.o" "gcc" "src/baselines/CMakeFiles/pbecc_baselines.dir/sprout.cpp.o.d"
  "/root/repo/src/baselines/verus.cpp" "src/baselines/CMakeFiles/pbecc_baselines.dir/verus.cpp.o" "gcc" "src/baselines/CMakeFiles/pbecc_baselines.dir/verus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pbecc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbecc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
