file(REMOVE_RECURSE
  "libpbecc_baselines.a"
)
