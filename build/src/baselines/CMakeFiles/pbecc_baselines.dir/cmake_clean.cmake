file(REMOVE_RECURSE
  "CMakeFiles/pbecc_baselines.dir/bbr.cpp.o"
  "CMakeFiles/pbecc_baselines.dir/bbr.cpp.o.d"
  "CMakeFiles/pbecc_baselines.dir/copa.cpp.o"
  "CMakeFiles/pbecc_baselines.dir/copa.cpp.o.d"
  "CMakeFiles/pbecc_baselines.dir/cubic.cpp.o"
  "CMakeFiles/pbecc_baselines.dir/cubic.cpp.o.d"
  "CMakeFiles/pbecc_baselines.dir/pcc.cpp.o"
  "CMakeFiles/pbecc_baselines.dir/pcc.cpp.o.d"
  "CMakeFiles/pbecc_baselines.dir/sprout.cpp.o"
  "CMakeFiles/pbecc_baselines.dir/sprout.cpp.o.d"
  "CMakeFiles/pbecc_baselines.dir/verus.cpp.o"
  "CMakeFiles/pbecc_baselines.dir/verus.cpp.o.d"
  "libpbecc_baselines.a"
  "libpbecc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
