file(REMOVE_RECURSE
  "libpbecc_mac.a"
)
