
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/base_station.cpp" "src/mac/CMakeFiles/pbecc_mac.dir/base_station.cpp.o" "gcc" "src/mac/CMakeFiles/pbecc_mac.dir/base_station.cpp.o.d"
  "/root/repo/src/mac/carrier_aggregation.cpp" "src/mac/CMakeFiles/pbecc_mac.dir/carrier_aggregation.cpp.o" "gcc" "src/mac/CMakeFiles/pbecc_mac.dir/carrier_aggregation.cpp.o.d"
  "/root/repo/src/mac/control_traffic.cpp" "src/mac/CMakeFiles/pbecc_mac.dir/control_traffic.cpp.o" "gcc" "src/mac/CMakeFiles/pbecc_mac.dir/control_traffic.cpp.o.d"
  "/root/repo/src/mac/harq.cpp" "src/mac/CMakeFiles/pbecc_mac.dir/harq.cpp.o" "gcc" "src/mac/CMakeFiles/pbecc_mac.dir/harq.cpp.o.d"
  "/root/repo/src/mac/reordering_buffer.cpp" "src/mac/CMakeFiles/pbecc_mac.dir/reordering_buffer.cpp.o" "gcc" "src/mac/CMakeFiles/pbecc_mac.dir/reordering_buffer.cpp.o.d"
  "/root/repo/src/mac/scheduler.cpp" "src/mac/CMakeFiles/pbecc_mac.dir/scheduler.cpp.o" "gcc" "src/mac/CMakeFiles/pbecc_mac.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/pbecc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbecc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbecc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
