# Empty dependencies file for pbecc_mac.
# This may be replaced when dependencies are built.
