file(REMOVE_RECURSE
  "CMakeFiles/pbecc_mac.dir/base_station.cpp.o"
  "CMakeFiles/pbecc_mac.dir/base_station.cpp.o.d"
  "CMakeFiles/pbecc_mac.dir/carrier_aggregation.cpp.o"
  "CMakeFiles/pbecc_mac.dir/carrier_aggregation.cpp.o.d"
  "CMakeFiles/pbecc_mac.dir/control_traffic.cpp.o"
  "CMakeFiles/pbecc_mac.dir/control_traffic.cpp.o.d"
  "CMakeFiles/pbecc_mac.dir/harq.cpp.o"
  "CMakeFiles/pbecc_mac.dir/harq.cpp.o.d"
  "CMakeFiles/pbecc_mac.dir/reordering_buffer.cpp.o"
  "CMakeFiles/pbecc_mac.dir/reordering_buffer.cpp.o.d"
  "CMakeFiles/pbecc_mac.dir/scheduler.cpp.o"
  "CMakeFiles/pbecc_mac.dir/scheduler.cpp.o.d"
  "libpbecc_mac.a"
  "libpbecc_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
