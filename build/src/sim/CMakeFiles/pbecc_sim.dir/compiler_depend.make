# Empty compiler generated dependencies file for pbecc_sim.
# This may be replaced when dependencies are built.
