file(REMOVE_RECURSE
  "CMakeFiles/pbecc_sim.dir/algorithms.cpp.o"
  "CMakeFiles/pbecc_sim.dir/algorithms.cpp.o.d"
  "CMakeFiles/pbecc_sim.dir/location.cpp.o"
  "CMakeFiles/pbecc_sim.dir/location.cpp.o.d"
  "CMakeFiles/pbecc_sim.dir/metrics.cpp.o"
  "CMakeFiles/pbecc_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/pbecc_sim.dir/scenario.cpp.o"
  "CMakeFiles/pbecc_sim.dir/scenario.cpp.o.d"
  "libpbecc_sim.a"
  "libpbecc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
