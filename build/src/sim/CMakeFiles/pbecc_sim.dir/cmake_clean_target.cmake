file(REMOVE_RECURSE
  "libpbecc_sim.a"
)
