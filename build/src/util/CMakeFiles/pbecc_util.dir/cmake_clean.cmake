file(REMOVE_RECURSE
  "CMakeFiles/pbecc_util.dir/crc.cpp.o"
  "CMakeFiles/pbecc_util.dir/crc.cpp.o.d"
  "CMakeFiles/pbecc_util.dir/rng.cpp.o"
  "CMakeFiles/pbecc_util.dir/rng.cpp.o.d"
  "CMakeFiles/pbecc_util.dir/stats.cpp.o"
  "CMakeFiles/pbecc_util.dir/stats.cpp.o.d"
  "CMakeFiles/pbecc_util.dir/time.cpp.o"
  "CMakeFiles/pbecc_util.dir/time.cpp.o.d"
  "libpbecc_util.a"
  "libpbecc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
