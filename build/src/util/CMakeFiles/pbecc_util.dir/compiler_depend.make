# Empty compiler generated dependencies file for pbecc_util.
# This may be replaced when dependencies are built.
