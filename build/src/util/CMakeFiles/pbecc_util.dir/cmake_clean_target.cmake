file(REMOVE_RECURSE
  "libpbecc_util.a"
)
