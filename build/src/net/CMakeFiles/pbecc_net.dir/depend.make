# Empty dependencies file for pbecc_net.
# This may be replaced when dependencies are built.
