
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event_loop.cpp" "src/net/CMakeFiles/pbecc_net.dir/event_loop.cpp.o" "gcc" "src/net/CMakeFiles/pbecc_net.dir/event_loop.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/pbecc_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/pbecc_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/pbecc_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/pbecc_net.dir/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pbecc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
