file(REMOVE_RECURSE
  "libpbecc_net.a"
)
