file(REMOVE_RECURSE
  "CMakeFiles/pbecc_net.dir/event_loop.cpp.o"
  "CMakeFiles/pbecc_net.dir/event_loop.cpp.o.d"
  "CMakeFiles/pbecc_net.dir/flow.cpp.o"
  "CMakeFiles/pbecc_net.dir/flow.cpp.o.d"
  "CMakeFiles/pbecc_net.dir/link.cpp.o"
  "CMakeFiles/pbecc_net.dir/link.cpp.o.d"
  "libpbecc_net.a"
  "libpbecc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbecc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
