// Unit tests for src/util: time, RNG, statistics, windowed filters,
// bit vectors and CRC.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "util/arena.h"
#include "util/bitvec.h"
#include "util/crc.h"
#include "util/rate.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/windowed_filter.h"

namespace pbecc::util {
namespace {

// ---------------------------------------------------------------- time

TEST(Time, SubframeIndexing) {
  EXPECT_EQ(subframe_index(0), 0);
  EXPECT_EQ(subframe_index(999), 0);
  EXPECT_EQ(subframe_index(1000), 1);
  EXPECT_EQ(subframe_index(123456), 123);
  EXPECT_EQ(subframe_start(5), 5000);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kMillisecond), 1.0);
  EXPECT_EQ(from_seconds(0.5), 500 * kMillisecond);
  EXPECT_EQ(from_millis(2.5), 2500);
  EXPECT_EQ(kSlot * 2, kSubframe);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(1500000), "1.500s");
  EXPECT_EQ(format_duration(2500), "2.500ms");
  EXPECT_EQ(format_duration(7), "7us");
}

// ---------------------------------------------------------------- rate

TEST(Rate, Conversions) {
  EXPECT_DOUBLE_EQ(bits_per_subframe_to_bps(1000.0), 1e6);
  EXPECT_DOUBLE_EQ(bps_to_bits_per_subframe(1e6), 1000.0);
  EXPECT_DOUBLE_EQ(mbps(3.5), 3.5e6);
  EXPECT_DOUBLE_EQ(to_mbps(3.5e6), 3.5);
}

TEST(Rate, TransmissionDelay) {
  // 1500 bytes at 12 Mbit/s = 1 ms.
  EXPECT_EQ(transmission_delay(1500, 12e6), kMillisecond);
  EXPECT_EQ(transmission_delay(1500, 0), 0);
  EXPECT_EQ(transmission_delay(0, 1e6), 0);
}

// ---------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.15);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng r{17};
  OnlineStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(static_cast<double>(r.poisson(0.4)));
  for (int i = 0; i < 5000; ++i) large.add(static_cast<double>(r.poisson(100.0)));
  EXPECT_NEAR(small.mean(), 0.4, 0.03);
  EXPECT_NEAR(large.mean(), 100.0, 1.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng r{19};
  EXPECT_EQ(r.poisson(0.0), 0);
  EXPECT_EQ(r.poisson(-1.0), 0);
}

TEST(Rng, BernoulliProbability) {
  Rng r{23};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependent) {
  Rng a{42};
  Rng b = a.fork();
  // Forked stream should not replay the parent.
  int same = 0;
  Rng a2{42};
  a2.next_u64();  // align with post-fork parent state
  for (int i = 0; i < 32; ++i) same += b.next_u64() == a2.next_u64();
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------- stats

TEST(OnlineStatsTest, Basics) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2);
  s.add(4);
  s.add(6);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(SampleSetTest, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSetTest, EmptyIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.5);
}

TEST(CdfTest, Fractions) {
  const double vals[] = {3, 1, 2, 2};
  const auto cdf = empirical_cdf(vals);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(HistogramTest, Binning) {
  Histogram h(0, 10, 5);
  h.add(-1);   // underflow
  h.add(0);    // bin 0
  h.add(1.9);  // bin 0
  h.add(5);    // bin 2
  h.add(10);   // overflow
  h.add(99);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(HistogramTest, InvalidRangeThrows) {
  EXPECT_THROW(Histogram(5, 5, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

TEST(JainTest, PerfectFairness) {
  const double equal[] = {5, 5, 5};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
}

TEST(JainTest, WorstCase) {
  const double unfair[] = {1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(unfair), 0.25);
}

TEST(JainTest, Degenerate) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const double zeros[] = {0, 0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

// ------------------------------------------------------- windowed filters

TEST(WindowedMaxTest, TracksAndExpires) {
  WindowedMax<double> f{100};
  f.update(0, 5);
  f.update(50, 3);
  EXPECT_DOUBLE_EQ(f.get(50), 5.0);
  // t=120: the 5 at t=0 is older than 120-100=20 -> expired.
  EXPECT_DOUBLE_EQ(f.get(120), 3.0);
  EXPECT_DOUBLE_EQ(f.get(500, -1.0), -1.0);  // everything expired
}

TEST(WindowedMinTest, TracksMin) {
  WindowedMin<std::int64_t> f{1000};
  f.update(0, 50);
  f.update(10, 70);
  f.update(20, 40);
  EXPECT_EQ(f.get(20), 40);
  f.update(30, 60);
  EXPECT_EQ(f.get(30), 40);
}

TEST(WindowedMaxTest, BruteForceEquivalence) {
  Rng rng{31};
  WindowedMax<double> f{200};
  std::vector<std::pair<Time, double>> samples;
  Time t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.uniform_int(1, 30);
    const double v = rng.uniform(0, 100);
    samples.emplace_back(t, v);
    f.update(t, v);
    double expect = -1;
    for (const auto& [st, sv] : samples) {
      if (st >= t - 200) expect = std::max(expect, sv);
    }
    ASSERT_DOUBLE_EQ(f.get(t, -1), expect) << "at step " << i;
  }
}

TEST(WindowedMeanTest, Window) {
  WindowedMean m{100};
  m.update(0, 10);
  m.update(50, 20);
  EXPECT_DOUBLE_EQ(m.get(50), 15.0);
  EXPECT_DOUBLE_EQ(m.get(120), 20.0);  // first sample expired
  EXPECT_DOUBLE_EQ(m.get(500, 42.0), 42.0);
}

TEST(WindowedMeanTest, ShrinkExpiresImmediately) {
  WindowedMean m{200};
  m.update(0, 10);
  m.update(100, 20);
  m.update(190, 30);
  ASSERT_EQ(m.size(), 3u);
  // Shrinking must expire against the newest sample's time (190) right
  // away, not wait for the next update: samples older than 190-50 go.
  m.set_window(50);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.get(190), 30.0);
  // Growing the window never resurrects expired samples.
  m.set_window(500);
  EXPECT_EQ(m.size(), 1u);
}

TEST(WindowedMaxTest, ShrinkExpiresImmediately) {
  WindowedMax<double> f{200};
  f.update(0, 50);   // the maximum, about to become stale
  f.update(100, 3);
  ASSERT_EQ(f.size(), 2u);
  f.set_window(50);  // 50@t=0 is older than 100-50: must go *now*
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.get(100), 3.0);
}

TEST(WindowedMeanTest, ExactAfterWindowRestart) {
  WindowedMean m{100};
  m.update(0, 1e15);
  m.update(10, 3e15);
  // Query far in the future: everything expires, the sum must reset to
  // exactly zero (no residue from the 1e15-scale samples).
  EXPECT_DOUBLE_EQ(m.get(1000, -1.0), -1.0);
  m.update(1000, 1e-9);
  EXPECT_DOUBLE_EQ(m.get(1000), 1e-9);
  // Restart via update alone (push precedes expiry): single survivor's
  // mean is bit-exact too.
  m.update(5000, 2e-9);
  EXPECT_DOUBLE_EQ(m.get(5000), 2e-9);
}

// The long-run drift regression: 10M updates of large positive values
// (accumulating subtract-rounding residue in an unguarded incremental
// sum), then a window restart into a tiny-value regime where any retained
// residue dwarfs the true mean. Relative error vs a brute-force recompute
// must stay under 1e-9 throughout.
TEST(WindowedMeanTest, DriftBelow1e9After10MUpdates) {
  Rng rng{97};
  const Duration kWindow = 100;
  WindowedMean m{kWindow};
  std::deque<std::pair<Time, double>> mirror;

  const auto exact_mean = [&](Time now) {
    while (!mirror.empty() && mirror.front().first < now - kWindow) {
      mirror.pop_front();
    }
    double sum = 0.0;
    for (const auto& [ts, v] : mirror) sum += v;
    return mirror.empty() ? 0.0 : sum / static_cast<double>(mirror.size());
  };
  double worst = 0.0;
  const auto check = [&](Time now) {
    const double exact = exact_mean(now);
    const double inc = m.get(now, 0.0);
    const double rel = std::abs(inc - exact) / std::abs(exact);
    worst = std::max(worst, rel);
    ASSERT_LT(rel, 1e-9) << "at t=" << now;
  };

  // Phase 1: 10M updates, one per tick, values in [1e5, 1e6).
  Time t = 0;
  for (int i = 0; i < 10'000'000; ++i) {
    ++t;
    const double v = rng.uniform(1e5, 1e6);
    m.update(t, v);
    mirror.emplace_back(t, v);
    if (i % 100'000 == 0) check(t);
  }
  check(t);

  // Phase 2: gap long enough to drain the window, then 10k tiny samples.
  t += 10 * kWindow;
  mirror.clear();
  for (int i = 0; i < 10'000; ++i) {
    ++t;
    const double v = rng.uniform(1e-9, 2e-9);
    m.update(t, v);
    mirror.emplace_back(t, v);
    if (i % 500 == 0) check(t);
  }
  check(t);
  // The whole point of the exact-resum fix: worst-case drift is tiny.
  EXPECT_LT(worst, 1e-9);
}

// ---------------------------------------------------------------- bitvec

TEST(BitVecTest, PushReadRoundtrip) {
  BitVec b;
  b.push_uint(0b1011, 4);
  b.push_uint(0xABCD, 16);
  b.push_bit(true);
  EXPECT_EQ(b.size(), 21u);
  EXPECT_EQ(b.read_uint(0, 4), 0b1011u);
  EXPECT_EQ(b.read_uint(4, 16), 0xABCDu);
  EXPECT_TRUE(b.bit(20));
}

TEST(BitVecTest, ReadOutOfRangeThrows) {
  BitVec b(8);
  EXPECT_THROW(b.read_uint(5, 4), std::out_of_range);
  EXPECT_THROW(b.bit(8), std::out_of_range);
}

TEST(BitVecTest, FlipAndSet) {
  BitVec b(4);
  b.set_bit(2, true);
  EXPECT_TRUE(b.bit(2));
  b.flip_bit(2);
  EXPECT_FALSE(b.bit(2));
}

TEST(BitVecTest, Append) {
  BitVec a, b;
  a.push_uint(0b101, 3);
  b.push_uint(0b11, 2);
  a.append(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.read_uint(0, 5), 0b10111u);
}

// ------------------------------------------------------------------ crc

TEST(CrcTest, SensitiveToEveryBit) {
  BitVec b;
  b.push_uint(0xDEADBEEF, 32);
  const auto base = crc16(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    BitVec c = b;
    c.flip_bit(i);
    EXPECT_NE(crc16(c), base) << "bit " << i;
  }
}

TEST(CrcTest, RntiMasking) {
  BitVec b;
  b.push_uint(0x1234, 16);
  EXPECT_EQ(crc16_rnti(b, 0), crc16(b));
  EXPECT_EQ(crc16_rnti(b, 0xFFFF), static_cast<std::uint16_t>(crc16(b) ^ 0xFFFF));
  // Unmasking with the right RNTI recovers the plain CRC.
  EXPECT_EQ(static_cast<std::uint16_t>(crc16_rnti(b, 0x5A5A) ^ 0x5A5A), crc16(b));
}

TEST(CrcTest, EmptyIsInit) {
  BitVec b;
  EXPECT_EQ(crc16(b), 0xFFFF);
}

TEST(CrcTest, RangeMatchesPrefixCopy) {
  BitVec b;
  b.push_uint(0xCAFEBABE, 32);
  b.push_uint(0x5A5, 12);
  for (std::size_t len : {0u, 1u, 13u, 32u, 44u}) {
    BitVec prefix;
    for (std::size_t i = 0; i < len; ++i) prefix.push_bit(b.bit(i));
    EXPECT_EQ(crc16_range(b, 0, len), crc16(prefix)) << "len " << len;
  }
  // Interior range: same bits, different surroundings.
  BitVec mid;
  for (std::size_t i = 8; i < 24; ++i) mid.push_bit(b.bit(i));
  EXPECT_EQ(crc16_range(b, 8, 16), crc16(mid));
}

// ---------------------------------------------------------------- arena

TEST(ArenaTest, ReusesStorageAfterReset) {
  Arena a{64};
  int* p1 = a.alloc<int>(8);
  std::fill_n(p1, 8, 42);
  a.reset();
  int* p2 = a.alloc<int>(8);
  // Single-block steady state: reset hands back the same storage.
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(a.blocks(), 1u);
}

TEST(ArenaTest, GrowthKeepsEarlierPointersValid) {
  Arena a{32};
  std::uint8_t* small = a.alloc<std::uint8_t>(16);
  std::fill_n(small, 16, 7);
  // Far larger than the current block: forces a fresh one.
  std::uint8_t* big = a.alloc<std::uint8_t>(4096);
  std::fill_n(big, 4096, 9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(small[i], 7);
  EXPECT_GE(a.blocks(), 2u);
  // Reset coalesces: the next cycle runs out of one right-sized block.
  a.reset();
  EXPECT_EQ(a.blocks(), 1u);
  a.alloc<std::uint8_t>(16);
  a.alloc<std::uint8_t>(4096);
  EXPECT_EQ(a.blocks(), 1u);
}

TEST(ArenaTest, AlignsForType) {
  Arena a{256};
  a.alloc<std::uint8_t>(3);  // misalign the bump offset
  const auto addr = reinterpret_cast<std::uintptr_t>(a.alloc<std::int64_t>(2));
  EXPECT_EQ(addr % alignof(std::int64_t), 0u);
}

TEST(ArenaTest, HighWaterTracksPeakCycle) {
  Arena a{64};
  a.alloc<std::int32_t>(100);  // 400 bytes
  a.reset();
  a.alloc<std::int32_t>(10);
  EXPECT_GE(a.high_water(), 400u);
}

}  // namespace
}  // namespace pbecc::util
