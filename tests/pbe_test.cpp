// Unit tests for src/pbe: capacity estimation (Eqns 1-4), cross-layer rate
// translation (Eqn 5), delay monitoring / bottleneck-state switching
// (§4.2.2, Eqn 6), the sender, and the client state machine.
#include <gtest/gtest.h>

#include "pbe/capacity_estimator.h"
#include "pbe/delay_monitor.h"
#include "pbe/pbe_client.h"
#include "pbe/pbe_sender.h"
#include "pbe/rate_translator.h"
#include "phy/error_model.h"
#include "phy/pdcch.h"

namespace pbecc::pbe {
namespace {

using util::kMillisecond;
using util::kSubframe;

decoder::CellObservation obs(phy::CellId cell, std::int64_t sf, int own,
                             double rw, int idle, int users, int cell_prbs) {
  decoder::CellObservation o;
  o.cell = cell;
  o.sf_index = sf;
  o.cell_prbs = cell_prbs;
  o.summary.own_prbs = own;
  o.summary.own_bits_per_prb = rw;
  o.summary.idle_prbs = idle;
  o.summary.data_users = users;
  o.summary.allocated_prbs = cell_prbs - idle;
  return o;
}

// ---------------------------------------------------- capacity estimator

TEST(CapacityEstimator, Eqn3SingleCell) {
  CapacityEstimator est;
  util::Time t = 0;
  for (int sf = 0; sf < 50; ++sf) {
    t = (sf + 1) * kSubframe;
    est.on_observations(t, {obs(1, sf, 20, 1000.0, 10, 2, 50)}, nullptr);
  }
  // Cp = Rw * (Pa + Pidle / N) = 1000 * (20 + 10/2) = 25000 bits/subframe.
  EXPECT_NEAR(est.available_capacity(t), 25000.0, 1.0);
  // Cf = Rw * Pcell / N = 1000 * 50 / 2.
  EXPECT_NEAR(est.fair_share_capacity(t), 25000.0, 1.0);
  EXPECT_EQ(est.active_cell_count(t), 1);
}

TEST(CapacityEstimator, Eqn3SumsAcrossCells) {
  CapacityEstimator est;
  util::Time t = 0;
  for (int sf = 0; sf < 50; ++sf) {
    t = (sf + 1) * kSubframe;
    est.on_observations(t,
                        {obs(1, sf, 20, 1000.0, 0, 1, 50),
                         obs(2, sf, 10, 500.0, 40, 1, 50)},
                        nullptr);
  }
  // Cell 1: 1000*(20+0) = 20000; cell 2: 500*(10+40) = 25000.
  EXPECT_NEAR(est.available_capacity(t), 45000.0, 1.0);
  EXPECT_EQ(est.active_cell_count(t), 2);
}

TEST(CapacityEstimator, InactiveCellExcluded) {
  CapacityEstimator est;
  util::Time t = 0;
  // Cell 2 granted once, then silent past the activity timeout.
  est.on_observations(kSubframe, {obs(1, 0, 20, 1000.0, 0, 1, 50),
                                  obs(2, 0, 10, 1000.0, 0, 1, 50)},
                      nullptr);
  for (int sf = 1; sf < 400; ++sf) {
    t = (sf + 1) * kSubframe;
    est.on_observations(t, {obs(1, sf, 20, 1000.0, 0, 1, 50),
                            obs(2, sf, 0, 1000.0, 50, 1, 50)},
                        nullptr);
  }
  EXPECT_EQ(est.active_cell_count(t), 1);
  EXPECT_NEAR(est.available_capacity(t), 20000.0, 100.0);
}

TEST(CapacityEstimator, RwHintUsedWhenUnscheduled) {
  CapacityEstimator est;
  util::Time t = 0;
  for (int sf = 0; sf < 30; ++sf) {
    t = (sf + 1) * kSubframe;
    // own_bits_per_prb = 0 (no own DCI); hint provides CSI-derived Rw.
    est.on_observations(t, {obs(1, sf, sf % 5 == 0 ? 10 : 0, 0.0, 25, 1, 50)},
                        [](phy::CellId) { return 800.0; });
  }
  // Rw comes from the hint: Cp = 800 * (mean(Pa) + 25).
  EXPECT_GT(est.available_capacity(t), 800.0 * 25.0 * 0.9);
}

TEST(CapacityEstimator, FairShareFallbackBeforeFirstGrant) {
  CapacityEstimator est;
  util::Time t = kSubframe;
  est.on_observations(t, {obs(1, 0, 0, 0.0, 50, 1, 50)},
                      [](phy::CellId) { return 600.0; });
  // Never scheduled anywhere: falls back to the primary cell's share so
  // the connection-start ramp has a target.
  EXPECT_NEAR(est.fair_share_capacity(t), 600.0 * 50.0, 1.0);
  EXPECT_EQ(est.active_cell_count(t), 1);  // floored at 1
}

TEST(CapacityEstimator, WindowFollowsRtprop) {
  CapacityEstimator est(40 * kMillisecond);
  est.set_window(10 * util::kSecond);  // clamped to 400 ms
  util::Time t = 0;
  // 300 ms of high allocation, then a sudden drop.
  for (int sf = 0; sf < 300; ++sf) {
    t = (sf + 1) * kSubframe;
    est.on_observations(t, {obs(1, sf, 40, 1000.0, 0, 1, 50)}, nullptr);
  }
  est.on_observations(t + kSubframe, {obs(1, 301, 0, 1000.0, 0, 1, 50)}, nullptr);
  // With a 400 ms window the old samples still dominate.
  EXPECT_GT(est.available_capacity(t + kSubframe), 30000.0);

  CapacityEstimator fast(20 * kMillisecond);
  for (int sf = 0; sf < 300; ++sf) {
    fast.on_observations((sf + 1) * kSubframe,
                         {obs(1, sf, 40, 1000.0, 0, 1, 50)}, nullptr);
  }
  for (int sf = 300; sf < 325; ++sf) {
    fast.on_observations((sf + 1) * kSubframe,
                         {obs(1, sf, 0, 1000.0, 0, 1, 50)}, nullptr);
  }
  // The short window has fully forgotten the high-allocation past.
  EXPECT_LT(fast.available_capacity(325 * kSubframe), 5000.0);
}

TEST(CapacityEstimator, CellPrbsRefreshedOnCarrierReconfig) {
  CapacityEstimator est;
  util::Time t = 0;
  // 30 subframes as a 50-PRB (10 MHz) carrier...
  for (int sf = 0; sf < 30; ++sf) {
    t = (sf + 1) * kSubframe;
    est.on_observations(t, {obs(1, sf, 20, 1000.0, 10, 2, 50)}, nullptr);
  }
  EXPECT_EQ(est.cell_prbs(1), 50);
  // ...then the network reconfigures it to 100 PRBs (20 MHz). Every
  // observation refreshes the stored Pcell — Eqns 1-2 must divide the
  // *current* total among users, not the connection-start value.
  for (int sf = 30; sf < 80; ++sf) {
    t = (sf + 1) * kSubframe;
    est.on_observations(t, {obs(1, sf, 20, 1000.0, 10, 2, 100)}, nullptr);
  }
  EXPECT_EQ(est.cell_prbs(1), 100);
  // Cf = Rw * Pcell / N = 1000 * 100 / 2.
  EXPECT_NEAR(est.fair_share_capacity(t), 50000.0, 1.0);
}

TEST(CapacityEstimator, FairShareFallbackUsesPrimaryCell) {
  // Two cells, never granted own PRBs, with very different fair shares.
  const auto hint = [](phy::CellId c) { return c == 1 ? 1000.0 : 500.0; };
  const auto feed = [&](CapacityEstimator& est) {
    for (int sf = 0; sf < 10; ++sf) {
      est.on_observations((sf + 1) * kSubframe,
                          {obs(1, sf, 0, 0.0, 50, 1, 50),
                           obs(2, sf, 0, 0.0, 100, 2, 100)},
                          hint);
    }
  };
  // Explicit primary = cell 2: fallback is cell 2's share, 500*100/2.
  CapacityEstimator est2;
  est2.set_primary_cell(2);
  feed(est2);
  EXPECT_NEAR(est2.fair_share_capacity(10 * kSubframe), 25000.0, 1.0);
  // Explicit primary = cell 1: 1000*50/1 — deterministic per configuration,
  // never a function of CellId map order.
  CapacityEstimator est1;
  est1.set_primary_cell(1);
  feed(est1);
  EXPECT_NEAR(est1.fair_share_capacity(10 * kSubframe), 50000.0, 1.0);
  // Unset: defaults to the first cell ever observed (cell 1 here).
  CapacityEstimator est_default;
  feed(est_default);
  EXPECT_NEAR(est_default.fair_share_capacity(10 * kSubframe), 50000.0, 1.0);
}

TEST(CapacityEstimator, EvictsCellsUnseenForFiveSeconds) {
  CapacityEstimator est;
  est.on_observations(kSubframe,
                      {obs(1, 0, 10, 1000.0, 0, 1, 50),
                       obs(2, 0, 10, 1000.0, 0, 1, 50)},
                      nullptr);
  EXPECT_EQ(est.tracked_cells(), 2u);
  // Cell 2 goes silent (handover completed); cell 1 keeps reporting. After
  // 5 s of silence cell 2's state is dropped so churn through many cells
  // cannot grow the map monotonically.
  util::Time t = 0;
  for (int sf = 1; sf < 5200; ++sf) {
    t = (sf + 1) * kSubframe;
    est.on_observations(t, {obs(1, sf, 10, 1000.0, 0, 1, 50)}, nullptr);
  }
  EXPECT_EQ(est.tracked_cells(), 1u);
  EXPECT_EQ(est.cell_prbs(2), -1);
  EXPECT_EQ(est.cell_prbs(1), 50);
}

// -------------------------------------------------------- rate translator

TEST(RateTranslator, RoundTripEqn5) {
  RateTranslator tr;
  for (double cp : {5000.0, 20000.0, 60000.0, 150000.0}) {
    for (double p : {1e-6, 3e-6, 5e-6}) {
      const double ct = tr.to_transport(cp, p);
      EXPECT_GT(ct, 0);
      EXPECT_LT(ct, cp);
      // Plugging Ct back into Eqn 5 must reproduce Cp (to LUT tolerance).
      EXPECT_NEAR(tr.to_physical(ct, p), cp, cp * 0.02)
          << "cp=" << cp << " p=" << p;
    }
  }
}

TEST(RateTranslator, OverheadBounds) {
  RateTranslator tr;
  // With negligible TB error, only gamma remains: Ct ~ Cp * (1-gamma).
  const double ct = tr.to_transport(10000.0, 1e-9);
  EXPECT_NEAR(ct, 10000.0 * (1.0 - kProtocolOverhead), 100.0);
  // Larger p costs more capacity.
  EXPECT_LT(tr.to_transport(100000.0, 5e-6), tr.to_transport(100000.0, 1e-6));
}

TEST(RateTranslator, MonotonicInCp) {
  RateTranslator tr;
  double prev = 0;
  for (double cp = 1000; cp <= 200000; cp += 1000) {
    const double ct = tr.to_transport(cp, 2e-6);
    EXPECT_GE(ct, prev * 0.999);
    prev = ct;
  }
}

TEST(RateTranslator, LutReused) {
  RateTranslator tr;
  tr.to_transport(50000.0, 1e-6);
  const auto size1 = tr.lut_size();
  tr.to_transport(50100.0, 1e-6);  // same bucket
  EXPECT_EQ(tr.lut_size(), size1);
  tr.to_transport(80000.0, 1e-6);  // new bucket
  EXPECT_EQ(tr.lut_size(), size1 + 1);
}

TEST(RateTranslator, ZeroAndNegative) {
  RateTranslator tr;
  EXPECT_DOUBLE_EQ(tr.to_transport(0.0, 1e-6), 0.0);
  EXPECT_DOUBLE_EQ(tr.to_transport(-5.0, 1e-6), 0.0);
  EXPECT_DOUBLE_EQ(tr.to_physical(0.0, 1e-6), 0.0);
}

// ---------------------------------------------------------- delay monitor

TEST(DelayMonitor, ThresholdIsDpropPlus27ms) {
  DelayMonitor dm;
  dm.on_packet(0, 30 * kMillisecond, 12000.0);
  EXPECT_EQ(dm.dprop(0), 30 * kMillisecond);
  EXPECT_EQ(dm.threshold(0), (30 + 27) * kMillisecond);
}

TEST(DelayMonitor, DpropIsWindowedMin) {
  DelayMonitor dm;
  dm.on_packet(0, 40 * kMillisecond, 12000.0);
  dm.on_packet(kMillisecond, 25 * kMillisecond, 12000.0);
  dm.on_packet(2 * kMillisecond, 60 * kMillisecond, 12000.0);
  EXPECT_EQ(dm.dprop(2 * kMillisecond), 25 * kMillisecond);
}

TEST(DelayMonitor, NpktEqn6) {
  DelayMonitor dm;
  // Ct = 12000 bits/subframe -> 6*12000/(1500*8) = 6 packets.
  EXPECT_EQ(dm.npkt(12000.0), 6);
  // Floors at the configured minimum.
  EXPECT_EQ(dm.npkt(100.0), 4);
}

TEST(DelayMonitor, SwitchesAfterNpktConsecutive) {
  DelayMonitor dm;
  const double ct = 12000.0;  // Npkt = 6
  util::Time t = 0;
  dm.on_packet(t, 20 * kMillisecond, ct);  // Dprop = 20, Dth = 47
  for (int i = 0; i < 5; ++i) {
    dm.on_packet(++t, 60 * kMillisecond, ct);
    EXPECT_FALSE(dm.internet_bottleneck()) << i;
  }
  dm.on_packet(++t, 60 * kMillisecond, ct);  // 6th consecutive
  EXPECT_TRUE(dm.internet_bottleneck());

  // And back: Npkt consecutive below-threshold packets.
  for (int i = 0; i < 5; ++i) {
    dm.on_packet(++t, 22 * kMillisecond, ct);
    EXPECT_TRUE(dm.internet_bottleneck());
  }
  dm.on_packet(++t, 22 * kMillisecond, ct);
  EXPECT_FALSE(dm.internet_bottleneck());
}

TEST(DelayMonitor, InterruptedRunDoesNotSwitch) {
  DelayMonitor dm;
  const double ct = 12000.0;
  util::Time t = 0;
  dm.on_packet(t, 20 * kMillisecond, ct);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) dm.on_packet(++t, 60 * kMillisecond, ct);
    dm.on_packet(++t, 21 * kMillisecond, ct);  // run broken
  }
  EXPECT_FALSE(dm.internet_bottleneck());
}

TEST(DelayMonitor, RetransmissionSpikesTolerated) {
  // One to three HARQ retransmissions (8/16/24 ms) plus 3 ms jitter stay
  // under the threshold by design.
  DelayMonitor dm;
  const double ct = 48000.0;
  util::Time t = 0;
  dm.on_packet(t, 25 * kMillisecond, ct);
  for (int i = 0; i < 1000; ++i) {
    const util::Duration spike = (i % 7 == 0 ? 24 : i % 3 == 0 ? 8 : 0) * kMillisecond;
    const util::Duration jitter = (i % 2) * 2 * kMillisecond;
    dm.on_packet(++t, 25 * kMillisecond + spike + jitter, ct);
    ASSERT_FALSE(dm.internet_bottleneck()) << i;
  }
}

// ------------------------------------------------------------- pbe sender

net::AckSample ack_with_feedback(util::Time now, double rate_bps,
                                 bool internet = false,
                                 util::Duration rtt = 50 * kMillisecond) {
  net::AckSample s;
  s.now = now;
  s.rtt = rtt;
  s.acked_bytes = 1500;
  s.delivery_rate = rate_bps;
  // A queue's worth outstanding, so the entry drain has work to do.
  s.bytes_in_flight = 600 * 1000;
  s.pbe_rate_interval_us =
      static_cast<std::uint32_t>(1500.0 * 8.0 / rate_bps * 1e6);
  s.pbe_internet_bottleneck = internet;
  return s;
}

TEST(PbeSender, PacesAtFeedbackRate) {
  PbeSender snd;
  snd.on_ack(ack_with_feedback(kMillisecond, 24e6));
  EXPECT_NEAR(snd.pacing_rate(kMillisecond), 24e6, 0.1e6);
  snd.on_ack(ack_with_feedback(2 * kMillisecond, 48e6));
  EXPECT_NEAR(snd.pacing_rate(2 * kMillisecond), 48e6, 0.2e6);
}

TEST(PbeSender, CwndIsBdpCap) {
  PbeSenderConfig cfg;
  cfg.cwnd_gain = 1.5;
  PbeSender snd{cfg};
  snd.on_ack(ack_with_feedback(kMillisecond, 24e6, false, 40 * kMillisecond));
  // BDP = 24e6/8 * 0.04 = 120 KB; cwnd = 1.5x.
  EXPECT_NEAR(snd.cwnd_bytes(kMillisecond), 1.5 * 120e3, 5e3);
  EXPECT_EQ(snd.rtprop(), 40 * kMillisecond);
}

TEST(PbeSender, SwitchesToInternetModeAndBack) {
  PbeSender snd;
  snd.on_ack(ack_with_feedback(kMillisecond, 24e6));
  EXPECT_FALSE(snd.in_internet_mode());
  snd.on_ack(ack_with_feedback(2 * kMillisecond, 24e6, true));
  EXPECT_TRUE(snd.in_internet_mode());
  // Entry drain: pace at half the bottleneck estimate for one RTprop.
  EXPECT_LT(snd.pacing_rate(2 * kMillisecond), 24e6 * 0.75);
  snd.on_ack(ack_with_feedback(3 * kMillisecond, 24e6, false));
  EXPECT_FALSE(snd.in_internet_mode());
  EXPECT_NEAR(snd.pacing_rate(3 * kMillisecond), 24e6, 0.1e6);
}

TEST(PbeSender, InternetModeProbeCappedByCf) {
  PbeSender snd;
  util::Time t = 0;
  // Feedback says the wireless fair share is 10 Mbit/s; the internet
  // bottleneck estimate (delivery rate) is also ~10. Probing must never
  // exceed Cf even with gain 1.25.
  for (int i = 0; i < 2000; ++i) {
    t += 2 * kMillisecond;
    snd.on_ack(ack_with_feedback(t, 10e6, true));
    EXPECT_LE(snd.pacing_rate(t), 10e6 * 1.01) << i;
  }
  EXPECT_TRUE(snd.in_internet_mode());
}

TEST(PbeSender, ZeroFeedbackKeepsLastRate) {
  PbeSender snd;
  snd.on_ack(ack_with_feedback(kMillisecond, 24e6));
  net::AckSample s;
  s.now = 2 * kMillisecond;
  s.rtt = 50 * kMillisecond;
  s.pbe_rate_interval_us = 0;  // no estimate in this ACK
  snd.on_ack(s);
  EXPECT_NEAR(snd.pacing_rate(2 * kMillisecond), 24e6, 0.1e6);
}

// ------------------------------------------------------------- pbe client

struct ClientHarness {
  phy::CellConfig cell{1, 10.0};
  PbeClient client;
  std::int64_t sf = 0;
  util::Time now = 0;
  std::uint64_t seq = 0;

  explicit ClientHarness(PbeClientConfig cfg = {})
      : client(fill(cfg), [](phy::CellId) {
          phy::ChannelState s;
          s.rssi_dbm = -95;
          s.sinr_db = 15;
          s.cqi = 11;
          s.data_ber = 1e-6;
          s.control_ber = 0;
          return s;
        }) {}

  PbeClientConfig fill(PbeClientConfig cfg) {
    cfg.rnti = 0x100;
    cfg.cells = {cell};
    return cfg;
  }

  // One subframe: a PDCCH with our grant + `npkts` delivered packets.
  net::Ack step(int own_prbs, util::Duration owd, int other_prbs = 0,
                int npkts = 1) {
    phy::PdcchBuilder b(cell, sf);
    if (own_prbs > 0) {
      phy::Dci d;
      d.rnti = 0x100;
      d.format = phy::DciFormat::kFormat1;
      d.n_prbs = static_cast<std::uint16_t>(own_prbs);
      d.mcs = {11, 1};
      b.add(d, 1);
    }
    if (other_prbs > 0) {
      phy::Dci d;
      d.rnti = 0x200;
      d.format = phy::DciFormat::kFormat1;
      d.prb_start = static_cast<std::uint16_t>(own_prbs);
      d.n_prbs = static_cast<std::uint16_t>(other_prbs);
      d.mcs = {11, 1};
      b.add(d, 1);
    }
    client.on_pdcch(std::move(b).build());
    ++sf;
    now = sf * kSubframe;

    net::Ack ack;
    for (int k = 0; k < npkts; ++k) {
      net::Packet pkt;
      pkt.seq = seq++;
      pkt.bytes = 1500;
      pkt.sent_time = now - owd;
      ack = net::Ack{};
      client.fill_feedback(pkt, now, ack);
    }
    return ack;
  }
};

TEST(PbeClient, StartsInStartupAndRamps) {
  ClientHarness h;
  auto first = h.step(10, 25 * kMillisecond);
  EXPECT_EQ(h.client.state(), PbeClient::State::kStartup);
  EXPECT_GT(first.pbe_rate_interval_us, 0u);
  double first_rate = h.client.last_feedback_bps();
  // Ramp: feedback grows toward Cf.
  for (int i = 0; i < 30; ++i) h.step(10, 25 * kMillisecond);
  EXPECT_GT(h.client.last_feedback_bps(), first_rate);
}

TEST(PbeClient, ReachesWirelessStateAfterRamp) {
  ClientHarness h;
  // 50 PRBs of our own traffic (full cell) for well past 3 RTTs,
  // delivering ~36 Mbit/s (above the ~30 Mbit/s fair share).
  for (int i = 0; i < 400; ++i) h.step(50, 25 * kMillisecond, 0, 3);
  EXPECT_EQ(h.client.state(), PbeClient::State::kWireless);
  // Feedback ~ translated full-cell capacity: Rw=11 -> 669 bits/PRB;
  // 50 PRBs => ~33 kbit/sf gross, ~29-31 Mbit/s net of overhead.
  EXPECT_GT(h.client.last_feedback_bps(), 25e6);
  EXPECT_LT(h.client.last_feedback_bps(), 36e6);
}

TEST(PbeClient, SharesWithCompetitor) {
  ClientHarness h;
  for (int i = 0; i < 400; ++i) h.step(25, 25 * kMillisecond, 25);
  EXPECT_EQ(h.client.state(), PbeClient::State::kWireless);
  // Half the cell each: feedback ~ half of full capacity.
  EXPECT_LT(h.client.last_feedback_bps(), 20e6);
  EXPECT_GT(h.client.last_feedback_bps(), 10e6);
}

TEST(PbeClient, DetectsInternetBottleneck) {
  ClientHarness h;
  for (int i = 0; i < 200; ++i) h.step(50, 25 * kMillisecond);
  ASSERT_EQ(h.client.state(), PbeClient::State::kWireless);
  // One-way delay rises far above Dprop + 27 ms and stays there.
  net::Ack last;
  for (int i = 0; i < 200; ++i) last = h.step(50, 90 * kMillisecond);
  EXPECT_EQ(h.client.state(), PbeClient::State::kInternet);
  EXPECT_TRUE(last.pbe_internet_bottleneck);
  EXPECT_GT(h.client.internet_state_fraction(), 0.0);
}

TEST(PbeClient, RecoversToWireless) {
  ClientHarness h;
  for (int i = 0; i < 200; ++i) h.step(50, 25 * kMillisecond);
  for (int i = 0; i < 200; ++i) h.step(50, 90 * kMillisecond);
  ASSERT_EQ(h.client.state(), PbeClient::State::kInternet);
  // Recovery needs the rate to actually reach the fair share again
  // ("send rate reaches Cf without causing any packet queuing"): deliver
  // three packets per subframe (36 Mbit/s > Cf) at low delay.
  net::Ack last;
  for (int i = 0; i < 400; ++i) {
    last = h.step(50, 26 * kMillisecond);
    net::Packet extra;
    extra.bytes = 1500;
    for (int k = 0; k < 2; ++k) {
      extra.seq = h.seq++;
      extra.sent_time = h.now - 26 * kMillisecond;
      net::Ack scratch;
      h.client.fill_feedback(extra, h.now, scratch);
      last = scratch;
    }
  }
  EXPECT_EQ(h.client.state(), PbeClient::State::kWireless);
  EXPECT_FALSE(last.pbe_internet_bottleneck);
}

TEST(PbeClient, CarrierActivationRestartsRamp) {
  PbeClientConfig cfg;
  phy::CellConfig c1{1, 10.0}, c2{2, 10.0};
  cfg.rnti = 0x100;
  cfg.cells = {c1, c2};
  PbeClient client(cfg, [](phy::CellId) {
    phy::ChannelState s;
    s.cqi = 11;
    s.sinr_db = 15;
    s.data_ber = 1e-6;
    return s;
  });

  std::int64_t sf = 0;
  util::Time now = 0;
  std::uint64_t seq = 0;
  auto step = [&](bool second_cell_active) {
    for (phy::CellId cell : {phy::CellId{1}, phy::CellId{2}}) {
      phy::PdcchBuilder b(cell == 1 ? c1 : c2, sf);
      if (cell == 1 || second_cell_active) {
        phy::Dci d;
        d.rnti = 0x100;
        d.format = phy::DciFormat::kFormat1;
        d.n_prbs = 40;
        d.mcs = {11, 1};
        b.add(d, 1);
      }
      client.on_pdcch(std::move(b).build());
    }
    ++sf;
    now = sf * kSubframe;
    net::Packet pkt;
    pkt.seq = seq++;
    pkt.bytes = 1500;
    pkt.sent_time = now - 25 * kMillisecond;
    net::Ack ack;
    // Three packets per subframe so the fair share is attainable.
    client.fill_feedback(pkt, now, ack);
    pkt.seq = seq++;
    client.fill_feedback(pkt, now, ack);
    pkt.seq = seq++;
    client.fill_feedback(pkt, now, ack);
  };

  for (int i = 0; i < 300; ++i) step(false);
  ASSERT_EQ(client.state(), PbeClient::State::kWireless);
  const double one_cell_rate = client.last_feedback_bps();

  // The secondary starts granting: the client must re-enter the ramp and
  // eventually feed back roughly double the single-cell rate.
  step(true);
  EXPECT_EQ(client.state(), PbeClient::State::kStartup);
  // Re-ramp starts from the previous rate, not from zero.
  EXPECT_GT(client.last_feedback_bps(), 0.5 * one_cell_rate);
  for (int i = 0; i < 500; ++i) step(true);
  EXPECT_GT(client.last_feedback_bps(), 1.5 * one_cell_rate);
}

TEST(PbeClient, FeedbackEncodingRoundtrip) {
  ClientHarness h;
  const auto ack = h.step(25, 25 * kMillisecond);
  ASSERT_GT(ack.pbe_rate_interval_us, 0u);
  const double decoded_bps =
      1500.0 * 8.0 / (static_cast<double>(ack.pbe_rate_interval_us) / 1e6);
  EXPECT_NEAR(decoded_bps, h.client.last_feedback_bps(),
              h.client.last_feedback_bps() * 0.01);
}

TEST(PbeClient, RtpropEstimateTracksDelay) {
  ClientHarness h;
  for (int i = 0; i < 100; ++i) h.step(25, 30 * kMillisecond);
  // 2 * 30 ms + 4 ms margin.
  EXPECT_NEAR(static_cast<double>(h.client.rtprop_estimate()),
              static_cast<double>(64 * kMillisecond),
              static_cast<double>(2 * kMillisecond));
}

}  // namespace
}  // namespace pbecc::pbe
