// Unit tests for src/net: event loop, links, and the flow driver
// (pacing, congestion window, delivery-rate samples, loss detection).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/congestion_controller.h"
#include "net/event_loop.h"
#include "net/flow.h"
#include "net/link.h"
#include "net/shard_mailbox.h"

namespace pbecc::net {
namespace {

// ------------------------------------------------------------ event loop

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  while (loop.run_one()) {}
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, TiesAreFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  while (loop.run_one()) {}
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, RunUntilAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(100, [&] { ++fired; });
  loop.schedule_at(500, [&] { ++fired; });
  loop.run_until(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 200);
  loop.run_until(1000);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoop, PastSchedulingThrows) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run_until(100);
  EXPECT_THROW(loop.schedule_at(50, [] {}), std::logic_error);
}

TEST(EventLoop, EventsCanScheduleEvents) {
  EventLoop loop;
  int chain = 0;
  loop.schedule_at(10, [&] {
    ++chain;
    loop.schedule_in(10, [&] { ++chain; });
  });
  loop.run_until(100);
  EXPECT_EQ(chain, 2);
}

// --- run_until barrier contract (DESIGN.md §15). Shard domains step to a
// common barrier time; an event scheduled *at* the barrier by a callback
// *running at* the barrier must still execute inside this step, or the
// domains would disagree about what happened before the exchange.

TEST(EventLoop, RunUntilIncludesEventsScheduledAtEndByEventsAtEnd) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(100, [&] {
    order.push_back(1);
    loop.schedule_at(100, [&] {  // scheduled at end, while running at end
      order.push_back(2);
      loop.schedule_at(100, [&] { order.push_back(3); });  // and again
    });
  });
  loop.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 100);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilBarrierLeavesNothingAtOrBeforeEnd) {
  EventLoop loop;
  int before = 0, after = 0;
  loop.schedule_at(50, [&] {
    ++before;
    loop.schedule_at(100, [&] { ++before; });   // exactly at the barrier
    loop.schedule_at(101, [&] { ++after; });    // strictly past it
  });
  loop.run_until(100);
  EXPECT_EQ(before, 2);
  EXPECT_EQ(after, 0);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until(200);
  EXPECT_EQ(after, 1);
}

TEST(EventLoop, SeqStaysFifoAcrossRunUntilResumption) {
  // Events scheduled at the barrier time *after* run_until(end) returned
  // (the serial barrier phase does exactly this) must run on the next
  // run_until in FIFO order, before any later-time event: the seq counter
  // is monotonic over the loop's lifetime, never reset per run.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(100, [&] { order.push_back(0); });
  loop.run_until(100);
  ASSERT_EQ(order, (std::vector<int>{0}));
  loop.schedule_at(100, [&] { order.push_back(1); });  // at now(), legal
  loop.schedule_at(110, [&] { order.push_back(9); });
  loop.schedule_at(100, [&] { order.push_back(2); });
  loop.run_until(100);  // re-running to the same barrier drains the adds
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  loop.run_until(200);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventLoop, RunUntilBeforeNowIsNoOp) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run_until(100);
  loop.run_until(50);  // must not rewind the clock
  EXPECT_EQ(loop.now(), 100);
}

// ---------------------------------------------------------- shard mailbox

TEST(ShardMailbox, DrainMergesByTimeSourceSeq) {
  ShardMailbox<int> mb;
  mb.reset(3);
  // Posted in a scrambled order across lanes; the merge key is
  // (time, source, seq), independent of post interleaving across lanes.
  mb.post(2, 50, 20);   // seq 0 in lane 2
  mb.post(0, 50, 0);    // seq 0 in lane 0
  mb.post(1, 10, 10);   // seq 0 in lane 1
  mb.post(0, 50, 1);    // seq 1 in lane 0 — after (50,0,0)
  mb.post(1, 90, 11);
  auto msgs = mb.drain();
  ASSERT_EQ(msgs.size(), 5u);
  std::vector<int> payloads;
  for (const auto& m : msgs) payloads.push_back(m.payload);
  EXPECT_EQ(payloads, (std::vector<int>{10, 0, 1, 20, 11}));
  EXPECT_TRUE(mb.empty());
}

TEST(ShardMailbox, SeqPersistsAcrossDrains) {
  ShardMailbox<int> mb;
  mb.reset(2);
  mb.post(0, 10, 1);
  (void)mb.drain();
  mb.post(0, 10, 2);  // same lane+time in a later round: seq must be larger
  mb.post(0, 10, 3);
  auto msgs = mb.drain();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_GT(msgs[0].seq, 0u);
  EXPECT_EQ(msgs[0].payload, 2);
  EXPECT_EQ(msgs[1].payload, 3);
}

// ----------------------------------------------------------------- links

TEST(DelayLink, FixedDelay) {
  EventLoop loop;
  std::vector<util::Time> arrivals;
  DelayLink link(loop, 25 * util::kMillisecond,
                 [&](Packet) { arrivals.push_back(loop.now()); });
  loop.schedule_at(0, [&] { link.send(Packet{}); });
  loop.run_until(util::kSecond);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 25 * util::kMillisecond);
}

TEST(DelayLink, JitterNeverReorders) {
  EventLoop loop;
  std::vector<std::uint64_t> seqs;
  DelayLink link(loop, 10 * util::kMillisecond,
                 [&](Packet p) { seqs.push_back(p.seq); },
                 5 * util::kMillisecond, 11);
  for (std::uint64_t i = 0; i < 200; ++i) {
    loop.schedule_at(static_cast<util::Time>(i) * 100, [&link, i] {
      Packet p;
      p.seq = i;
      link.send(p);
    });
  }
  loop.run_until(util::kSecond);
  ASSERT_EQ(seqs.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(BottleneckLink, SerializationRate) {
  EventLoop loop;
  std::vector<util::Time> arrivals;
  BottleneckLink::Config cfg;
  cfg.rate = 12e6;  // 1500 B => 1 ms each
  cfg.buffer_bytes = 1 << 20;
  BottleneckLink link(loop, cfg, [&](Packet) { arrivals.push_back(loop.now()); });
  loop.schedule_at(0, [&] {
    for (int i = 0; i < 5; ++i) link.send(Packet{});
  });
  loop.run_until(util::kSecond);
  ASSERT_EQ(arrivals.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(arrivals[static_cast<std::size_t>(i)],
              (i + 1) * util::kMillisecond);
  }
}

TEST(BottleneckLink, DropTail) {
  EventLoop loop;
  int delivered = 0;
  BottleneckLink::Config cfg;
  cfg.rate = 12e6;
  cfg.buffer_bytes = 3000;  // two packets
  BottleneckLink link(loop, cfg, [&](Packet) { ++delivered; });
  loop.schedule_at(0, [&] {
    for (int i = 0; i < 10; ++i) link.send(Packet{});
  });
  loop.run_until(util::kSecond);
  // One serializing + two queued survive the burst.
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.drops(), 7u);
}

TEST(BottleneckLink, UnlimitedPassThrough) {
  EventLoop loop;
  std::vector<util::Time> arrivals;
  BottleneckLink::Config cfg;
  cfg.rate = 0;  // unlimited
  cfg.propagation_delay = 7 * util::kMillisecond;
  BottleneckLink link(loop, cfg, [&](Packet) { arrivals.push_back(loop.now()); });
  loop.schedule_at(0, [&] { link.send(Packet{}); });
  loop.run_until(util::kSecond);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 7 * util::kMillisecond);
}

// ------------------------------------------------------------ flow driver

// Loops data packets straight back as ACKs after a fixed RTT.
struct LoopbackHarness {
  EventLoop loop;
  std::unique_ptr<FlowSender> sender;
  FlowReceiver* receiver = nullptr;
  std::unique_ptr<FlowReceiver> receiver_owned;
  util::Duration one_way = 10 * util::kMillisecond;
  std::uint64_t delivered = 0;

  explicit LoopbackHarness(std::unique_ptr<CongestionController> cc,
                           FlowSender::Config cfg = {}) {
    receiver_owned = std::make_unique<FlowReceiver>(
        loop, cfg.id, [this](Ack ack) {
          loop.schedule_in(one_way, [this, ack] { sender->on_ack(ack); });
        });
    receiver = receiver_owned.get();
    receiver->set_delivery_observer([this](const Packet&, util::Time) { ++delivered; });
    sender = std::make_unique<FlowSender>(
        loop, cfg, std::move(cc), [this](Packet pkt) {
          loop.schedule_in(one_way, [this, pkt = std::move(pkt)]() mutable {
            receiver->on_packet(std::move(pkt));
          });
        });
  }
};

TEST(FlowSender, PacesAtConfiguredRate) {
  auto cc = std::make_unique<FixedRateController>(12e6);  // 1 pkt / ms
  LoopbackHarness h{std::move(cc)};
  h.loop.run_until(util::kSecond);
  // ~1000 packets in 1 s at 12 Mbit/s with 1500 B packets.
  EXPECT_NEAR(static_cast<double>(h.delivered), 980.0, 30.0);
}

// Controller with a tiny congestion window to exercise cwnd limiting.
class TinyWindow final : public CongestionController {
 public:
  void on_ack(const AckSample&) override {}
  util::RateBps pacing_rate(util::Time) const override { return 1e9; }
  double cwnd_bytes(util::Time) const override { return 2 * kDefaultMss; }
  std::string name() const override { return "tiny"; }
};

TEST(FlowSender, CwndLimitsInflight) {
  LoopbackHarness h{std::make_unique<TinyWindow>()};
  h.loop.run_until(util::kSecond);
  // 2 packets per RTT (20 ms) => ~100 packets in 1 s.
  EXPECT_NEAR(static_cast<double>(h.delivered), 100.0, 10.0);
  EXPECT_LE(h.sender->bytes_in_flight(), 2u * kDefaultMss);
}

class AckRecorder final : public CongestionController {
 public:
  std::vector<AckSample> acks;
  std::vector<LossSample> losses;
  void on_ack(const AckSample& s) override { acks.push_back(s); }
  void on_loss(const LossSample& s) override { losses.push_back(s); }
  util::RateBps pacing_rate(util::Time) const override { return 12e6; }
  std::string name() const override { return "recorder"; }
};

TEST(FlowSender, AckSampleFields) {
  auto cc = std::make_unique<AckRecorder>();
  auto* rec = cc.get();
  LoopbackHarness h{std::move(cc)};
  h.loop.run_until(500 * util::kMillisecond);
  ASSERT_GT(rec->acks.size(), 100u);
  const auto& s = rec->acks[50];
  EXPECT_EQ(s.rtt, 20 * util::kMillisecond);
  EXPECT_EQ(s.one_way_delay, 10 * util::kMillisecond);
  EXPECT_EQ(s.acked_bytes, kDefaultMss);
  // Delivery rate converges to the actual pacing rate.
  EXPECT_NEAR(rec->acks.back().delivery_rate, 12e6, 2e6);
  EXPECT_EQ(rec->losses.size(), 0u);
}

TEST(FlowSender, StopTimeHonored) {
  FlowSender::Config cfg;
  cfg.stop_time = 100 * util::kMillisecond;
  LoopbackHarness h{std::make_unique<FixedRateController>(12e6), cfg};
  h.loop.run_until(util::kSecond);
  EXPECT_NEAR(static_cast<double>(h.sender->total_sent_bytes()) / kDefaultMss,
              80.0, 25.0);
}

TEST(FlowSender, ThresholdLossDetection) {
  EventLoop loop;
  std::unique_ptr<FlowSender> sender;
  auto cc = std::make_unique<AckRecorder>();
  auto* rec = cc.get();
  FlowReceiver receiver(loop, 0, [&](Ack ack) {
    loop.schedule_in(util::kMillisecond, [&, ack] { sender->on_ack(ack); });
  });
  // Drop every 10th packet on the "wire".
  sender = std::make_unique<FlowSender>(
      loop, FlowSender::Config{}, std::move(cc), [&](Packet pkt) {
        if (pkt.seq % 10 == 9) return;  // lost
        loop.schedule_in(util::kMillisecond, [&, pkt = std::move(pkt)]() mutable {
          receiver.on_packet(std::move(pkt));
        });
      });
  loop.run_until(500 * util::kMillisecond);
  EXPECT_GT(rec->losses.size(), 10u);
  EXPECT_GT(sender->total_lost_packets(), 10u);
  // In-flight accounting survives losses: sender keeps sending.
  EXPECT_GT(rec->acks.size(), 300u);
}

TEST(FlowSender, RtoRecoversFromBlackout) {
  EventLoop loop;
  std::unique_ptr<FlowSender> sender;
  auto cc = std::make_unique<AckRecorder>();
  auto* rec = cc.get();
  bool blackout = true;
  FlowReceiver receiver(loop, 0, [&](Ack ack) {
    loop.schedule_in(util::kMillisecond, [&, ack] { sender->on_ack(ack); });
  });
  sender = std::make_unique<FlowSender>(
      loop, FlowSender::Config{}, std::move(cc), [&](Packet pkt) {
        if (blackout) return;  // everything lost
        loop.schedule_in(util::kMillisecond, [&, pkt = std::move(pkt)]() mutable {
          receiver.on_packet(std::move(pkt));
        });
      });
  loop.run_until(300 * util::kMillisecond);
  loop.schedule_at(loop.now(), [&] { blackout = false; });
  loop.run_until(3 * util::kSecond);
  // The RTO watchdog cleared the stuck window and flow resumed.
  EXPECT_FALSE(rec->losses.empty());
  EXPECT_GT(rec->acks.size(), 100u);
}

TEST(FlowReceiver, EchoesTimestampsAndFeedback) {
  EventLoop loop;
  std::vector<Ack> acks;
  FlowReceiver recv(loop, 3, [&](Ack a) { acks.push_back(a); });
  recv.set_feedback_filler([](const Packet&, util::Time, Ack& ack) {
    ack.pbe_rate_interval_us = 120;
    ack.pbe_internet_bottleneck = true;
  });
  loop.schedule_at(40 * util::kMillisecond, [&] {
    Packet p;
    p.flow = 3;
    p.seq = 9;
    p.sent_time = 5 * util::kMillisecond;
    p.delivered_at_send = 1234;
    recv.on_packet(p);
  });
  loop.run_until(util::kSecond);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].flow, 3u);
  EXPECT_EQ(acks[0].seq, 9u);
  EXPECT_EQ(acks[0].data_sent_time, 5 * util::kMillisecond);
  EXPECT_EQ(acks[0].data_recv_time, 40 * util::kMillisecond);
  EXPECT_EQ(acks[0].delivered_at_send, 1234u);
  EXPECT_EQ(acks[0].pbe_rate_interval_us, 120u);
  EXPECT_TRUE(acks[0].pbe_internet_bottleneck);
  EXPECT_EQ(recv.packets_received(), 1u);
}

}  // namespace
}  // namespace pbecc::net
