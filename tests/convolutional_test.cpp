// Tests for the 36.212-style convolutional code and the convolutional
// PDCCH mode (the srsLTE-equivalent path of the paper's decoder).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "decoder/blind_decoder.h"
#include "phy/convolutional.h"
#include "phy/pdcch.h"
#include "util/rng.h"

namespace pbecc::phy {
namespace {

util::BitVec random_payload(util::Rng& rng, std::size_t n) {
  util::BitVec b;
  for (std::size_t i = 0; i < n; ++i) b.push_bit(rng.bernoulli(0.5));
  return b;
}

TEST(Convolutional, EncodeLength) {
  util::BitVec payload(40);
  const auto coded = conv_encode(payload);
  EXPECT_EQ(coded.size(), 3u * (40 + kConvTailBits));
}

TEST(Convolutional, CleanRoundtrip) {
  util::Rng rng{5};
  for (int trial = 0; trial < 50; ++trial) {
    const auto payload = random_payload(rng, 20 + trial % 60);
    const auto coded = conv_encode(payload);
    EXPECT_EQ(conv_decode(coded, payload.size()), payload) << trial;
  }
}

TEST(Convolutional, RateMatchRepetitionRoundtrip) {
  util::Rng rng{7};
  const auto payload = random_payload(rng, 62);
  const auto coded = conv_encode(payload);
  // Expand to 2x: every mother bit appears twice.
  const auto block = rate_match(coded, 2 * coded.size());
  EXPECT_EQ(block.size(), 2 * coded.size());
  EXPECT_EQ(conv_decode(block, payload.size()), payload);
}

TEST(Convolutional, PuncturedRoundtrip) {
  util::Rng rng{9};
  const auto payload = random_payload(rng, 62);  // 78+tail: 252 mother bits
  const auto coded = conv_encode(payload);
  // Keep only ~57%: still decodes cleanly (effective rate ~0.58).
  const auto block = rate_match(coded, 144);
  EXPECT_EQ(conv_decode(block, payload.size()), payload);
}

TEST(Convolutional, RateMatchCountsConserve) {
  for (std::size_t target : {72u, 144u, 288u, 576u}) {
    const auto counts = rate_match_counts(252, target);
    std::size_t total = 0;
    for (int c : counts) {
      EXPECT_GE(c, 0);
      total += static_cast<std::size_t>(c);
    }
    EXPECT_EQ(total, target);
  }
}

TEST(Convolutional, CorrectsBitErrors) {
  util::Rng rng{11};
  const auto payload = random_payload(rng, 62);
  const auto coded = conv_encode(payload);
  auto block = rate_match(coded, 288);  // AL4-equivalent redundancy
  int corrected = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    auto noisy = block;
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      if (rng.bernoulli(0.04)) noisy.flip_bit(i);
    }
    corrected += conv_decode(noisy, payload.size()) == payload ? 1 : 0;
  }
  // 4% BER over 288 bits = ~11 flipped; the code recovers almost always.
  EXPECT_GT(corrected, trials * 8 / 10);
}

TEST(Convolutional, BeatsRepetitionAtSameRedundancy) {
  // Same region budget (AL4 = 288 bits), same 4% BER: the convolutional
  // code should decode at least as often as majority-vote repetition.
  util::Rng rng{13};
  CellConfig rep_cell{1, 20.0};
  CellConfig conv_cell{1, 20.0};
  conv_cell.pdcch_coding = PdcchCoding::kConvolutional;

  int rep_ok = 0, conv_ok = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    for (const bool conv : {false, true}) {
      const auto& cell = conv ? conv_cell : rep_cell;
      PdcchBuilder b(cell, t);
      Dci d;
      d.rnti = 0x321;
      d.format = DciFormat::kFormat1;
      d.n_prbs = 30;
      d.mcs = {10, 1};
      ASSERT_TRUE(b.add(d, 4));
      auto sf = std::move(b).build();
      phy::apply_bit_noise(sf, 0.04, rng);
      decoder::BlindDecoder dec{cell};
      const auto msgs = dec.decode(sf);
      const bool ok = msgs.size() == 1 && msgs[0].rnti == 0x321;
      (conv ? conv_ok : rep_ok) += ok ? 1 : 0;
    }
  }
  EXPECT_GE(conv_ok, rep_ok);
  EXPECT_GT(conv_ok, trials * 3 / 4);
}

// The pruned/table-driven conv_decode must be bit-exact against the
// straightforward reference implementation — not merely "usually right":
// the decoder's metrics and the determinism suite depend on identical
// outputs. 10k random codewords across clean, light and heavy noise,
// cycling payload lengths and rate-match targets (repetition, exact,
// puncturing, truncation-with-erasures).
TEST(Convolutional, OptimizedMatchesReference10k) {
  util::Rng rng{23};
  const double bers[] = {0.0, 1e-3, 1e-2};
  const std::size_t targets[] = {72, 144, 288, 576};
  for (int trial = 0; trial < 10002; ++trial) {
    const double ber = bers[trial % 3];
    const auto payload = random_payload(rng, 20 + trial % 61);
    auto block = rate_match(conv_encode(payload), targets[trial % 4]);
    if (ber > 0) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        if (rng.bernoulli(ber)) block.flip_bit(i);
      }
    }
    const auto fast = conv_decode(block, payload.size());
    const auto ref = conv_decode_reference(block, payload.size());
    ASSERT_EQ(fast, ref) << "trial " << trial << " ber " << ber << " len "
                         << payload.size() << " target "
                         << targets[trial % 4];
  }
}

// Lockstep batch equivalence sweep (DESIGN.md §14): ~10k codewords per
// lane count, every lane byte-identical to the reference decoder, at
// clean / light / heavy bit-error rates and every rate-match shape. 2503
// codewords per lane count leaves a partial tail batch at L in {4, 8, 16}
// (2503 = 4*625+3 = 8*312+7 = 16*156+7), so short final blocks are
// exercised, not just full ones.
TEST(Convolutional, BatchMatchesReference10k) {
  util::Rng rng{29};
  const double bers[] = {0.0, 1e-3, 1e-2};
  const std::size_t targets[] = {72, 144, 288, 576};
  for (const int lanes : {1, 4, 8, 16}) {
    const int codewords = 2503;
    int done = 0, shape = 0;
    while (done < codewords) {
      const int n = std::min(lanes, codewords - done);
      const double ber = bers[shape % 3];
      const std::size_t payload_bits = 20 + static_cast<std::size_t>(shape) % 17;
      const std::size_t target = targets[shape % 4];
      ++shape;

      std::vector<util::BitVec> payloads(static_cast<std::size_t>(n));
      std::vector<util::BitVec> blocks(static_cast<std::size_t>(n));
      std::vector<BatchDecodeJob> jobs(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        payloads[static_cast<std::size_t>(k)] = random_payload(rng, payload_bits);
        auto block =
            rate_match(conv_encode(payloads[static_cast<std::size_t>(k)]), target);
        for (std::size_t i = 0; ber > 0 && i < block.size(); ++i) {
          if (rng.bernoulli(ber)) block.flip_bit(i);
        }
        blocks[static_cast<std::size_t>(k)] = std::move(block);
        jobs[static_cast<std::size_t>(k)].received =
            &blocks[static_cast<std::size_t>(k)];
      }
      std::vector<BatchDecodeResult> res(static_cast<std::size_t>(n));
      conv_decode_batch(jobs.data(), n, payload_bits, res.data());
      for (int k = 0; k < n; ++k) {
        const auto& r = res[static_cast<std::size_t>(k)];
        ASSERT_FALSE(r.aborted);  // no abort floor was set
        ASSERT_EQ(r.decoded,
                  conv_decode_reference(blocks[static_cast<std::size_t>(k)],
                                        payload_bits))
            << "lanes " << lanes << " batch lane " << k << " ber " << ber
            << " target " << target;
      }
      done += n;
    }
  }
}

// The reported batch metric must equal the re-encoded codeword's
// correlation with the received block — the identity the blind decoder
// relies on to replace its region-agreement re-encode pass.
TEST(Convolutional, BatchMetricEqualsReencodedCorrelation) {
  util::Rng rng{31};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t payload_bits = 24 + static_cast<std::size_t>(trial) % 40;
    const std::size_t target = trial % 2 == 0 ? 288 : 576;
    auto block = rate_match(conv_encode(random_payload(rng, payload_bits)),
                            target);
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (rng.bernoulli(0.02)) block.flip_bit(i);
    }
    BatchDecodeJob job;
    job.received = &block;
    BatchDecodeResult res;
    conv_decode_batch(&job, 1, payload_bits, &res);
    ASSERT_FALSE(res.aborted);
    const auto re = rate_match(conv_encode(res.decoded), target);
    std::int32_t corr = 0;
    for (std::size_t i = 0; i < re.size(); ++i) {
      corr += re.bit(i) == block.bit(i) ? 1 : -1;
    }
    ASSERT_EQ(res.metric, corr) << trial;
  }
}

// Exact-safety of the early abort: an aborted lane must be one whose
// unaborted decode provably fails the caller's metric floor, and setting
// a floor must never change a surviving lane's output.
TEST(Convolutional, BatchEarlyAbortIsExactSafe) {
  util::Rng rng{37};
  const std::size_t payload_bits = 46;
  const std::size_t target = 288;
  int aborted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    // Junk block: uniform random bits, nowhere near any codeword.
    util::BitVec block;
    for (std::size_t i = 0; i < target; ++i) block.push_bit(rng.bernoulli(0.5));
    // The blind decoder's floor: matches >= 85% of the block.
    const auto thr = static_cast<std::int32_t>(
        2 * ((85 * target + 99) / 100) - target);
    BatchDecodeJob with_abort;
    with_abort.received = &block;
    with_abort.abort_below = thr;
    BatchDecodeJob without;
    without.received = &block;
    BatchDecodeResult ra, rn;
    conv_decode_batch(&with_abort, 1, payload_bits, &ra);
    conv_decode_batch(&without, 1, payload_bits, &rn);
    if (ra.aborted) {
      ++aborted;
      // The abort claimed no completion reaches the floor; the full
      // decode's best metric must indeed sit below it.
      ASSERT_LT(rn.metric, thr) << trial;
    } else {
      ASSERT_EQ(ra.decoded, rn.decoded) << trial;
      ASSERT_EQ(ra.metric, rn.metric) << trial;
    }
    ASSERT_EQ(rn.decoded, conv_decode_reference(block, payload_bits)) << trial;
  }
  // Random noise correlates ~50% with any codeword: essentially every
  // junk block must have tripped the abort.
  EXPECT_GT(aborted, 290);
}

TEST(ConvolutionalPdcch, BlindDecodeAllFormats) {
  CellConfig cell{1, 20.0};
  cell.pdcch_coding = PdcchCoding::kConvolutional;
  for (const auto fmt : kLteDciFormats) {
    PdcchBuilder b(cell, 0);
    Dci d;
    d.rnti = 0x234;
    d.format = fmt;
    d.n_prbs = fmt == DciFormat::kFormat0 ? 4 : 25;
    d.mcs = {9, format_is_mimo(fmt) ? 2 : 1};
    // Smallest AL with >= 2x redundancy for this format's length.
    const int steps = dci_payload_bits(fmt) + 16 + kConvTailBits;
    const int al = 2 * steps <= 2 * kBitsPerCce ? 2 : 4;
    ASSERT_TRUE(b.add(d, al)) << static_cast<int>(fmt);
    const auto sf = std::move(b).build();
    decoder::BlindDecoder dec{cell};
    const auto msgs = dec.decode(sf);
    ASSERT_EQ(msgs.size(), 1u) << "format " << static_cast<int>(fmt);
    EXPECT_EQ(msgs[0].format, fmt);
    EXPECT_EQ(msgs[0].rnti, 0x234);
    EXPECT_EQ(msgs[0].n_prbs, d.n_prbs);
  }
}

TEST(ConvolutionalPdcch, Al1InfeasibleForLongFormats) {
  CellConfig cell{1, 20.0};
  cell.pdcch_coding = PdcchCoding::kConvolutional;
  PdcchBuilder b(cell, 0);
  Dci d;
  d.rnti = 0x234;
  d.format = DciFormat::kFormat2;  // longest format
  d.n_prbs = 25;
  d.mcs = {9, 2};
  // 69+16 bits + tail ~ 91 steps: needs >= 182 coded bits, so neither AL1
  // (72) nor AL2 (144) suffices.
  EXPECT_FALSE(b.add(d, 1));
  EXPECT_FALSE(b.add(d, 2));
  EXPECT_TRUE(b.add(d, 4));
}

TEST(ConvolutionalPdcch, NoFalsePositivesOnNoise) {
  CellConfig cell{1, 20.0};
  cell.pdcch_coding = PdcchCoding::kConvolutional;
  util::Rng rng{17};
  decoder::BlindDecoder dec{cell};
  int phantom = 0;
  for (int t = 0; t < 100; ++t) {
    PdcchBuilder b(cell, t);
    auto sf = std::move(b).build();
    std::fill(sf.cce_used.begin(), sf.cce_used.end(), true);
    phy::apply_bit_noise(sf, 0.5, rng);
    phantom += static_cast<int>(dec.decode(sf).size());
  }
  EXPECT_LE(phantom, 1);
}

}  // namespace
}  // namespace pbecc::phy
