// pbecc::tel test suite (DESIGN.md §12): Recorder semantics (typed series,
// ring bound, deterministic digest/exports), .tsv.pbt round-trips with
// fail-closed truncation/corruption behaviour, pipeline-sampler cadence,
// summary/diff analysis logic, and the tentpole guarantees — a recording
// and its replay export byte-identical pipeline series, and telemetry is
// byte-identical across decode thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cap/replay.h"
#include "cap/trace_reader.h"
#include "cap/trace_writer.h"
#include "par/thread_pool.h"
#include "pbe/capacity_estimator.h"
#include "sim/location.h"
#include "tel/analyze.h"
#include "tel/file.h"
#include "tel/sampler.h"
#include "tel/series.h"

namespace pbecc {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "tel_test_" + name;
}

// --- Recorder ------------------------------------------------------------

TEST(TelRecorder, TypedAppendAndLookup) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec;
  rec.append_f64("a.rate", "bps", 1000, 5.5);
  rec.append_f64("a.rate", "bps", 2000, 6.5);
  rec.append_i64("b.count", "count", 1000, 3);

  ASSERT_EQ(rec.series().size(), 2u);
  const tel::Series* a = rec.find("a.rate");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, tel::ValueKind::kF64);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ(a->t[1], 2000);
  EXPECT_DOUBLE_EQ(a->f64[1], 6.5);
  EXPECT_DOUBLE_EQ(a->value(1), 6.5);

  const tel::Series* b = rec.find("b.count");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->kind, tel::ValueKind::kI64);
  EXPECT_EQ(b->i64[0], 3);
  EXPECT_EQ(rec.total_samples(), 3u);
  EXPECT_EQ(rec.find("missing"), nullptr);
}

TEST(TelRecorder, KindConflictIgnoredAndCounted) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec;
  rec.append_f64("x", "bps", 1000, 1.0);
  rec.append_i64("x", "bps", 2000, 2);  // conflicting kind: dropped
  EXPECT_EQ(rec.kind_conflicts(), 1u);
  const tel::Series* x = rec.find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->size(), 1u);
  EXPECT_EQ(x->kind, tel::ValueKind::kF64);
}

TEST(TelRecorder, RingBoundDropsOldestHalf) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec(8);
  for (int i = 0; i < 9; ++i) {
    rec.append_i64("s", "count", i * 10, i);
  }
  const tel::Series* s = rec.find("s");
  ASSERT_NE(s, nullptr);
  // At the 9th append the series was full (8), dropped its oldest half,
  // then appended: samples 4..8 remain.
  ASSERT_EQ(s->size(), 5u);
  EXPECT_EQ(s->i64.front(), 4);
  EXPECT_EQ(s->i64.back(), 8);
  EXPECT_EQ(s->t.front(), 40);
}

TEST(TelRecorder, DigestIsOrderAndValueSensitive) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder a, b, c;
  a.set_meta("seed", "1");
  b.set_meta("seed", "1");
  c.set_meta("seed", "1");
  a.append_f64("s", "bps", 1000, 1.0);
  b.append_f64("s", "bps", 1000, 1.0);
  c.append_f64("s", "bps", 1000, 1.0000001);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  b.set_meta("extra", "x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(TelRecorder, ExportsAreDeterministicAndShaped) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec;
  rec.set_meta("algo", "pbe");
  rec.append_f64("z.rate", "bps", 1000, 1.5);
  rec.append_i64("a.count", "count", 2000, 7);

  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"algo\":\"pbe\""), std::string::npos);
  // Series are sorted by name: a.count before z.rate.
  EXPECT_LT(json.find("a.count"), json.find("z.rate"));
  EXPECT_EQ(json, rec.to_json());

  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("series,unit,t_us,value"), std::string::npos);
  EXPECT_NE(csv.find("a.count,count,2000,7"), std::string::npos);
}

// --- .tsv.pbt file format ------------------------------------------------

tel::Recorder sample_recording() {
  tel::Recorder rec;
  rec.set_meta("algo", "pbe");
  rec.set_meta("seed", "42");
  for (int i = 0; i < 200; ++i) {
    const util::Time t = (i + 1) * 10 * util::kMillisecond;
    rec.append_f64("est.cell1.cf_bits_sf", "bits/sf", t, 35000.0 + 13.5 * i);
    rec.append_f64("truth.cell1.fair_bits_sf", "bits/sf", t,
                   36000.0 - 7.25 * i);
    rec.append_i64("check.violations", "count", t, i / 50);
    rec.append_i64("pbe.degradation_state", "state", t, i < 100 ? 0 : 1);
  }
  return rec;
}

TEST(TelFile, RoundTripPreservesEverything) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  const tel::Recorder rec = sample_recording();
  const auto bytes = tel::encode(rec);

  tel::Recorder back;
  std::string err;
  ASSERT_TRUE(tel::decode(bytes.data(), bytes.size(), &back, &err)) << err;
  EXPECT_EQ(back.digest(), rec.digest());
  EXPECT_EQ(back.meta(), rec.meta());
  ASSERT_EQ(back.series().size(), rec.series().size());
  const tel::Series* s = back.find("est.cell1.cf_bits_sf");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 200u);
  EXPECT_DOUBLE_EQ(s->f64[7], 35000.0 + 13.5 * 7);
}

TEST(TelFile, FileRoundTrip) {
  const tel::Recorder rec = sample_recording();
  const std::string path = tmp_path("roundtrip.tsv.pbt");
  std::string err;
  ASSERT_TRUE(tel::write_file(rec, path, &err)) << err;
  tel::Recorder back;
  ASSERT_TRUE(tel::read_file(path, &back, &err)) << err;
  EXPECT_EQ(back.digest(), rec.digest());
  std::remove(path.c_str());
}

TEST(TelFile, TruncationAtEveryByteFailsClosed) {
  const auto bytes = tel::encode(sample_recording());
  // Every strict prefix must decode to an error, never to a silently
  // shortened recording. Step through the file to keep runtime sane.
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : 97)) {
    tel::Recorder back;
    std::string err;
    EXPECT_FALSE(tel::decode(bytes.data(), len, &back, &err))
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(err.empty());
  }
}

TEST(TelFile, BitFlipsFailClosed) {
  const auto bytes = tel::encode(sample_recording());
  // CRC framing: flipping any payload byte is detected. Sample positions
  // across the whole file.
  for (std::size_t pos = 8; pos < bytes.size(); pos += 211) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x40;
    tel::Recorder back;
    std::string err;
    EXPECT_FALSE(tel::decode(corrupted.data(), corrupted.size(), &back, &err))
        << "flip at " << pos << " decoded";
  }
}

TEST(TelFile, BadMagicAndVersionRejected) {
  auto bytes = tel::encode(sample_recording());
  {
    auto bad = bytes;
    bad[0] = 'X';
    tel::Recorder back;
    std::string err;
    EXPECT_FALSE(tel::decode(bad.data(), bad.size(), &back, &err));
  }
  {
    auto bad = bytes;
    bad[4] = 0xEE;  // container version
    tel::Recorder back;
    std::string err;
    EXPECT_FALSE(tel::decode(bad.data(), bad.size(), &back, &err));
  }
}

// --- sampler cadence -----------------------------------------------------

TEST(TelSampler, SamplesOnIntervalBoundaries) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec;
  tel::PipelineSampler sampler(&rec, 10 * util::kMillisecond);
  pbe::CapacityEstimator est;
  sampler.attach(nullptr, &est);

  // One batch per subframe, 100 subframes: samples land at exactly
  // t = 10 ms, 20 ms, ... (the estimator `now` convention).
  for (std::int64_t sf = 0; sf < 100; ++sf) sampler.on_batch_end(sf);

  const tel::Series* s = rec.find("est.cf_bits_sf");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 10u);
  for (std::size_t i = 0; i < s->size(); ++i) {
    EXPECT_EQ(s->t[i], static_cast<util::Time>(i + 1) * 10 *
                           util::kMillisecond);
  }
}

TEST(TelSampler, SparseBatchesSampleAtFirstBoundaryAfterGap) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec;
  tel::PipelineSampler sampler(&rec, 10 * util::kMillisecond);
  pbe::CapacityEstimator est;
  sampler.attach(nullptr, &est);

  sampler.on_batch_end(4);   // t=5ms  < 10ms: no sample
  sampler.on_batch_end(14);  // t=15ms >= 10ms: sample at 15ms
  sampler.on_batch_end(15);  // t=16ms < next boundary 20ms: no sample
  sampler.on_batch_end(47);  // t=48ms >= 20ms: sample at 48ms

  const tel::Series* s = rec.find("est.cf_bits_sf");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 2u);
  EXPECT_EQ(s->t[0], 15 * util::kMillisecond);
  EXPECT_EQ(s->t[1], 48 * util::kMillisecond);
}

// --- analysis ------------------------------------------------------------

TEST(TelAnalyze, ErrorStatsJoinOnEqualTimestamps) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec;
  // 2 s of 10 ms samples; estimate = truth * 1.10 after warmup.
  for (int i = 1; i <= 200; ++i) {
    const util::Time t = i * 10 * util::kMillisecond;
    rec.append_f64("truth.cell1.fair_bits_sf", "bits/sf", t, 10000.0);
    rec.append_f64("est.cell1.cf_bits_sf", "bits/sf", t, 11000.0);
  }
  tel::AnalyzeConfig cfg;
  cfg.warmup = util::kSecond;
  const auto s = tel::summarize(rec, cfg);
  ASSERT_EQ(s.cells.size(), 1u);
  EXPECT_EQ(s.cells[0].cell, "1");
  // Joined samples at-or-after the 1 s warmup: t = 1000, 1010, ... 2000 ms.
  EXPECT_EQ(s.cells[0].err.n, 101u);
  EXPECT_NEAR(s.cells[0].err.p50_rel, 0.10, 1e-9);
  EXPECT_NEAR(s.cells[0].err.p95_rel, 0.10, 1e-9);
  EXPECT_NEAR(s.cells[0].err.p95_abs, 1000.0, 1e-6);
}

TEST(TelAnalyze, DwellTimesAndTransitions) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder rec;
  for (int i = 0; i < 300; ++i) {
    const util::Time t = (i + 1) * 10 * util::kMillisecond;
    const std::int64_t st = i < 100 ? 0 : (i < 200 ? 1 : 2);
    rec.append_i64("pbe.degradation_state", "state", t, st);
  }
  const auto s = tel::summarize(rec);
  ASSERT_TRUE(s.has_dwell);
  EXPECT_NEAR(s.dwell.precise_s, 1.0, 0.02);
  EXPECT_NEAR(s.dwell.degraded_s, 1.0, 0.02);
  EXPECT_NEAR(s.dwell.fallback_s, 1.0, 0.02);
  EXPECT_EQ(s.dwell.transitions, 2u);
}

TEST(TelAnalyze, DiffFlagsMeanShiftAndCountMismatch) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder a, b;
  a.set_meta("interval_us", "10000");
  b.set_meta("interval_us", "10000");
  for (int i = 0; i < 50; ++i) {
    const util::Time t = (i + 1) * 10 * util::kMillisecond;
    a.append_f64("same", "bps", t, 100.0);
    b.append_f64("same", "bps", t, 100.0);
    a.append_f64("shifted", "bps", t, 100.0);
    b.append_f64("shifted", "bps", t, 103.0);  // +3% > 1% threshold
    a.append_i64("short", "count", t, 1);
    if (i < 40) b.append_i64("short", "count", t, 1);
    a.append_f64("gone", "bps", t, 1.0);
    b.append_f64("born", "bps", t, 1.0);
  }
  const auto d = tel::diff(a, b);
  EXPECT_FALSE(d.schema_mismatch);
  EXPECT_TRUE(d.regression());
  bool same_ok = false, shifted_bad = false, short_bad = false,
       gone_bad = false, born_bad = false;
  for (const auto& delta : d.deltas) {
    if (delta.name == "same") same_ok = !delta.flagged;
    if (delta.name == "shifted") shifted_bad = delta.flagged;
    if (delta.name == "short") short_bad = delta.flagged;
    if (delta.name == "gone") gone_bad = delta.flagged;
    if (delta.name == "born") born_bad = delta.flagged;
  }
  EXPECT_TRUE(same_ok);
  EXPECT_TRUE(shifted_bad);
  EXPECT_TRUE(short_bad);
  EXPECT_TRUE(gone_bad);
  EXPECT_TRUE(born_bad);
}

TEST(TelAnalyze, IdenticalRunsDiffClean) {
  const tel::Recorder a = sample_recording();
  const tel::Recorder b = sample_recording();
  const auto d = tel::diff(a, b);
  EXPECT_FALSE(d.regression());
  EXPECT_EQ(d.flagged, 0u);
}

TEST(TelAnalyze, IntervalMetaMismatchIsSchemaMismatch) {
  if constexpr (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  tel::Recorder a, b;
  a.set_meta("interval_us", "10000");
  b.set_meta("interval_us", "20000");
  a.append_f64("s", "bps", 1000, 1.0);
  b.append_f64("s", "bps", 1000, 1.0);
  const auto d = tel::diff(a, b);
  EXPECT_TRUE(d.schema_mismatch);
  EXPECT_TRUE(d.regression());
}

// --- end-to-end byte-identity guarantees ---------------------------------

// Filter a recording down to the pipeline-driven series (the ones a replay
// can reproduce without a simulator).
std::uint64_t pipeline_series_digest(const tel::Recorder& rec) {
  tel::Recorder filtered;
  for (const auto& [name, s] : rec.series()) {
    if (name.rfind("est.", 0) != 0 && name.rfind("decode.", 0) != 0) continue;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s.kind == tel::ValueKind::kF64) {
        filtered.append_f64(name, s.unit, s.t[i], s.f64[i]);
      } else {
        filtered.append_i64(name, s.unit, s.t[i], s.i64[i]);
      }
    }
  }
  return filtered.digest();
}

TEST(TelEndToEnd, ReplayExportsByteIdenticalPipelineSeries) {
  if (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  const std::string trace = tmp_path("e2e.pbt");

  // Live run: record the pipeline and sample telemetry simultaneously.
  tel::Sampler live;
  std::uint64_t live_digest = 0;
  {
    cap::TraceWriter writer(trace);
    sim::CaptureOptions capture;
    capture.writer = &writer;
    capture.telemetry = &live;
    sim::run_location(sim::location(2), "pbe", 3 * util::kSecond, nullptr, 1,
                      capture);
    ASSERT_TRUE(writer.close()) << writer.error();
    live_digest = pipeline_series_digest(live.recorder());
    // The live run sampled more than just pipeline series.
    EXPECT_NE(live.recorder().find("truth.cell1.fair_bits_sf"), nullptr);
    EXPECT_NE(live.recorder().find("flow.pacing_bps"), nullptr);
    EXPECT_NE(live.recorder().find("check.violations"), nullptr);
  }

  // Replay the trace; the pipeline half must reproduce the series exactly.
  tel::Sampler replayed;
  {
    cap::TraceReader reader(trace);
    ASSERT_TRUE(reader.ok()) << reader.error();
    cap::ReplayDriver driver(reader.header());
    replayed.pipeline().attach(&driver.monitor(), &driver.estimator());
    driver.set_batch_end_hook([&](std::int64_t sf) {
      replayed.pipeline().on_batch_end(sf);
    });
    driver.run(reader);
    ASSERT_TRUE(reader.ok()) << reader.error();
  }
  EXPECT_EQ(pipeline_series_digest(replayed.recorder()), live_digest);
  EXPECT_NE(live_digest, 0u);
  std::remove(trace.c_str());
}

TEST(TelEndToEnd, TelemetryIsByteIdenticalAcrossThreadCounts) {
  if (!tel::kCompiled) GTEST_SKIP() << "built with PBECC_TEL=OFF";
  std::uint64_t digests[2] = {0, 0};
  const int thread_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    par::set_default_threads(thread_counts[i]);
    tel::Sampler telemetry;
    sim::CaptureOptions capture;
    capture.telemetry = &telemetry;
    sim::run_location(sim::location(2), "pbe", 3 * util::kSecond, nullptr, 1,
                      capture);
    digests[i] = telemetry.recorder().digest();
  }
  par::set_default_threads(1);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_NE(digests[0], 0u);
}

}  // namespace
}  // namespace pbecc
