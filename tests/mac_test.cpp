// Unit tests for src/mac: schedulers, HARQ, reordering, carrier
// aggregation, control traffic, and the integrated base station.
#include <gtest/gtest.h>

#include <numeric>

#include "decoder/blind_decoder.h"
#include "mac/base_station.h"
#include "mac/carrier_aggregation.h"
#include "mac/control_traffic.h"
#include "mac/harq.h"
#include "mac/reordering_buffer.h"
#include "mac/scheduler.h"
#include "util/stats.h"

namespace pbecc::mac {
namespace {

SchedRequest req(UeId ue, std::int64_t bytes, double bits_per_prb = 1000.0) {
  return SchedRequest{ue, bytes, bits_per_prb};
}

int granted(const std::vector<SchedAllocation>& allocs, UeId ue) {
  for (const auto& a : allocs) {
    if (a.ue == ue) return a.n_prbs;
  }
  return 0;
}

int total(const std::vector<SchedAllocation>& allocs) {
  int t = 0;
  for (const auto& a : allocs) t += a.n_prbs;
  return t;
}

// -------------------------------------------------------------- scheduler

TEST(FairShare, EqualSplitWhenSaturated) {
  FairShareScheduler s;
  const auto allocs = s.allocate(90, {req(1, 1'000'000), req(2, 1'000'000),
                                      req(3, 1'000'000)});
  EXPECT_EQ(granted(allocs, 1), 30);
  EXPECT_EQ(granted(allocs, 2), 30);
  EXPECT_EQ(granted(allocs, 3), 30);
}

TEST(FairShare, SurplusRedistributed) {
  FairShareScheduler s;
  // User 1 wants only 10 PRBs (10 * 1000 bits = 1250 bytes).
  const auto allocs = s.allocate(90, {req(1, 1250), req(2, 1'000'000),
                                      req(3, 1'000'000)});
  EXPECT_EQ(granted(allocs, 1), 10);
  EXPECT_EQ(granted(allocs, 2), 40);
  EXPECT_EQ(granted(allocs, 3), 40);
}

TEST(FairShare, DemandLimited) {
  FairShareScheduler s;
  const auto allocs = s.allocate(100, {req(1, 1250), req(2, 2500)});
  EXPECT_EQ(granted(allocs, 1), 10);
  EXPECT_EQ(granted(allocs, 2), 20);
  EXPECT_EQ(total(allocs), 30);
}

TEST(FairShare, MorePrbsNeverAllocatedThanAvailable) {
  FairShareScheduler s;
  const auto allocs = s.allocate(7, {req(1, 1e6), req(2, 1e6), req(3, 1e6),
                                     req(4, 1e6), req(5, 1e6)});
  EXPECT_LE(total(allocs), 7);
  EXPECT_GE(total(allocs), 5);  // everyone gets at least one when possible
}

TEST(FairShare, ZeroDemandSkipped) {
  FairShareScheduler s;
  const auto allocs = s.allocate(50, {req(1, 0), req(2, 1e6)});
  EXPECT_EQ(granted(allocs, 1), 0);
  EXPECT_EQ(granted(allocs, 2), 50);
}

TEST(FairShare, EmptyRequests) {
  FairShareScheduler s;
  EXPECT_TRUE(s.allocate(50, {}).empty());
}

TEST(DemandPrbs, Rounding) {
  EXPECT_EQ(demand_prbs(req(1, 125, 1000.0)), 1);   // 1000 bits exactly
  EXPECT_EQ(demand_prbs(req(1, 126, 1000.0)), 2);   // 1008 bits
  EXPECT_EQ(demand_prbs(req(1, 0, 1000.0)), 0);
  EXPECT_EQ(demand_prbs(SchedRequest{1, 100, 0.0}), 0);
}

TEST(ProportionalFair, ConvergesNearEqualForEqualRates) {
  ProportionalFairScheduler s;
  std::map<UeId, long> totals;
  for (int sf = 0; sf < 500; ++sf) {
    for (const auto& a : s.allocate(48, {req(1, 1e6), req(2, 1e6), req(3, 1e6)})) {
      totals[a.ue] += a.n_prbs;
    }
  }
  const double avg = (totals[1] + totals[2] + totals[3]) / 3.0;
  for (const auto& [ue, t] : totals) {
    EXPECT_NEAR(static_cast<double>(t), avg, avg * 0.1) << "ue " << ue;
  }
}

TEST(ProportionalFair, FavoursBetterChannelInstantaneously) {
  ProportionalFairScheduler s;
  // First-ever allocation: both users at equal average, user 2 has double
  // the spectral efficiency -> gets served first.
  const auto allocs = s.allocate(4, {req(1, 1e6, 500.0), req(2, 1e6, 1000.0)});
  EXPECT_EQ(granted(allocs, 2), 4);
}

TEST(RoundRobin, Rotates) {
  RoundRobinScheduler s;
  const auto a1 = s.allocate(10, {req(1, 1e6), req(2, 1e6)});
  const auto a2 = s.allocate(10, {req(1, 1e6), req(2, 1e6)});
  // Each turn one user is served to the PRB limit; the next turn starts
  // after the previously served user.
  EXPECT_EQ(total(a1), 10);
  EXPECT_EQ(total(a2), 10);
  EXPECT_NE(a1.front().ue, a2.front().ue);
}

TEST(SchedulerFactory, Names) {
  EXPECT_EQ(make_scheduler("fair-share")->name(), "fair-share");
  EXPECT_EQ(make_scheduler("proportional-fair")->name(), "proportional-fair");
  EXPECT_EQ(make_scheduler("round-robin")->name(), "round-robin");
  EXPECT_THROW(make_scheduler("nope"), std::invalid_argument);
}

// ------------------------------------------------------------------- harq

TransportBlock tb(std::uint64_t seq) {
  TransportBlock t;
  t.tb_seq = seq;
  t.n_prbs = 10;
  t.bits = 1000;
  return t;
}

TEST(Harq, ProcessLifecycle) {
  HarqEntity h;
  EXPECT_EQ(h.busy_processes(), 0);
  const auto p = h.free_process();
  ASSERT_TRUE(p.has_value());
  h.start(*p, tb(1), 100);
  EXPECT_EQ(h.busy_processes(), 1);
  EXPECT_FALSE(h.retx_due(100).size());
  const auto done = h.complete(*p);
  EXPECT_EQ(done.tb_seq, 1u);
  EXPECT_EQ(h.busy_processes(), 0);
}

TEST(Harq, RetxScheduledEightSubframesLater) {
  HarqEntity h;
  h.start(0, tb(1), 100);
  EXPECT_TRUE(h.fail(0, 100));
  EXPECT_TRUE(h.retx_due(107).empty());
  const auto due = h.retx_due(108);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 0);
  EXPECT_EQ(h.block(0).attempt, 1);
}

TEST(Harq, MaxThreeRetransmissions) {
  HarqEntity h;
  h.start(3, tb(9), 0);
  EXPECT_TRUE(h.fail(3, 0));    // attempt 1
  EXPECT_TRUE(h.fail(3, 8));    // attempt 2
  EXPECT_TRUE(h.fail(3, 16));   // attempt 3
  EXPECT_FALSE(h.fail(3, 24));  // exhausted
  const auto dead = h.take_abandoned(3);
  EXPECT_EQ(dead.tb_seq, 9u);
  EXPECT_EQ(h.busy_processes(), 0);
}

TEST(Harq, AllProcessesBusyBlocksNewTbs) {
  HarqEntity h;
  for (int i = 0; i < kHarqProcesses; ++i) {
    const auto p = h.free_process();
    ASSERT_TRUE(p.has_value());
    h.start(*p, tb(static_cast<std::uint64_t>(i)), 0);
  }
  EXPECT_FALSE(h.free_process().has_value());
}

TEST(Harq, MisuseThrows) {
  HarqEntity h;
  EXPECT_THROW(h.complete(0), std::logic_error);
  EXPECT_THROW(h.fail(0, 0), std::logic_error);
  h.start(0, tb(1), 0);
  EXPECT_THROW(h.start(0, tb(2), 0), std::logic_error);
}

// ------------------------------------------------------------- reordering

TEST(Reorder, InOrderPassesThrough) {
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto t = tb(i);
    net::Packet pkt;
    pkt.seq = i;
    t.completed_packets.push_back(pkt);
    rb.on_tb_decoded(0, std::move(t));
  }
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(rb.buffered_blocks(), 0u);
}

TEST(Reorder, HoldsUntilGapFilled) {
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  rb.on_tb_decoded(0, mk(1, 11));  // TB 0 missing (being retransmitted)
  rb.on_tb_decoded(0, mk(2, 12));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(rb.buffered_blocks(), 2u);
  rb.on_tb_decoded(0, mk(0, 10));  // retransmission arrives
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST(Reorder, AbandonedTbSkipped) {
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto t1 = tb(1);
  net::Packet p;
  p.seq = 21;
  t1.completed_packets.push_back(p);
  rb.on_tb_decoded(0, std::move(t1));
  EXPECT_TRUE(out.empty());
  rb.on_tb_abandoned(0, 0);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{21}));
  EXPECT_EQ(rb.next_expected(), 2u);
}

TEST(Reorder, StaleDuplicatesIgnored) {
  int delivered = 0;
  ReorderingBuffer rb([&](net::Packet) { ++delivered; });
  auto mk = [](std::uint64_t tbseq) {
    auto t = tb(tbseq);
    t.completed_packets.push_back(net::Packet{});
    return t;
  };
  rb.on_tb_decoded(0, mk(0));
  rb.on_tb_decoded(0, mk(0));  // duplicate
  rb.on_tb_abandoned(0, 0);    // stale abandon
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rb.next_expected(), 1u);
}

TEST(Reorder, TimeoutSkipsStuckGap) {
  using util::kMillisecond;
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  // TB 0 is lost and its abandon notification never arrives (e.g. wiped by
  // a handover). TBs 1-2 wait behind the gap.
  rb.on_tb_decoded(10 * kMillisecond, mk(1, 11));
  rb.on_tb_decoded(11 * kMillisecond, mk(2, 12));
  rb.expire(50 * kMillisecond);  // before timeout: still waiting
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(rb.expired_skips(), 0u);
  rb.expire(70 * kMillisecond);  // 60 ms after TB 1 arrived: skip the gap
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11, 12}));
  EXPECT_EQ(rb.expired_skips(), 1u);
  EXPECT_EQ(rb.next_expected(), 3u);
  // The late decode of TB 0 is now stale and must not be delivered.
  rb.on_tb_decoded(80 * kMillisecond, mk(0, 10));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11, 12}));
}

TEST(Reorder, OutOfOrderAcrossTimeoutBoundary) {
  using util::kMillisecond;
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  // Two independent gaps: 0 (lost forever) and 2 (arrives late but within
  // its own timeout, measured from when TB 3 started waiting).
  rb.on_tb_decoded(0, mk(1, 11));
  rb.on_tb_decoded(55 * kMillisecond, mk(3, 13));
  rb.expire(60 * kMillisecond);  // gap 0 expires (waited 60 ms behind TB 1)
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11}));
  EXPECT_EQ(rb.next_expected(), 2u);
  rb.expire(80 * kMillisecond);  // TB 3 has only waited 25 ms: gap 2 lives
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11}));
  rb.on_tb_decoded(90 * kMillisecond, mk(2, 12));  // late retransmission
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11, 12, 13}));
  EXPECT_EQ(rb.expired_skips(), 1u);
}

TEST(Reorder, DuplicateSequenceNumbersKeepFirstCopy) {
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  // A spurious HARQ retransmission decodes TB 1 twice with different
  // payload snapshots while it waits behind gap 0: first copy wins.
  rb.on_tb_decoded(0, mk(1, 11));
  rb.on_tb_decoded(1, mk(1, 99));
  rb.on_tb_decoded(2, mk(0, 10));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(rb.buffered_blocks(), 0u);
}

TEST(Reorder, ExpireSkipsMultipleConsecutiveGaps) {
  using util::kMillisecond;
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  // TBs 0-4 and 6-8 all lost without abandon notifications (handover wipe):
  // the buffer holds 5 and 9 behind two separate head-of-line gaps.
  rb.on_tb_decoded(0, mk(5, 15));
  rb.on_tb_decoded(1 * kMillisecond, mk(9, 19));
  rb.expire(59 * kMillisecond);
  EXPECT_TRUE(out.empty());
  // One expire() sweep must clear *both* stuck gaps (each TB has waited
  // past the timeout), not just the first.
  rb.expire(70 * kMillisecond);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{15, 19}));
  EXPECT_EQ(rb.expired_skips(), 2u);
  EXPECT_EQ(rb.next_expected(), 10u);
  EXPECT_EQ(rb.buffered_blocks(), 0u);
}

TEST(Reorder, AbandonedThenLateDecodeRescued) {
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  // TB 1 is abandoned at handover while its final retransmission is still
  // in flight — which then decodes. The data exists: rescue it rather than
  // recording a loss. (TB 0 is still missing, so 1 sits buffered.)
  rb.on_tb_abandoned(0, 1);
  rb.on_tb_decoded(1, mk(1, 11));
  EXPECT_TRUE(out.empty());
  rb.on_tb_decoded(2, mk(0, 10));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 11}));
}

TEST(Reorder, SpuriousAbandonAfterDecodeKeepsData) {
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  // Decode first, spurious abandon second (reversed race): the decoded
  // packets must survive and deliver once the gap fills.
  rb.on_tb_decoded(0, mk(1, 11));
  rb.on_tb_abandoned(1, 1);
  rb.on_tb_decoded(2, mk(0, 10));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 11}));
}

TEST(Reorder, DeliveryOrderedAfterSkip) {
  using util::kMillisecond;
  std::vector<std::uint64_t> out;
  ReorderingBuffer rb([&](net::Packet p) { out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  // Gap 0 expires; the cursor jumps to 1. Later TBs must still come out in
  // sequence order, including one that arrives after the skip.
  rb.on_tb_decoded(0, mk(1, 11));
  rb.on_tb_decoded(30 * kMillisecond, mk(3, 13));
  rb.expire(60 * kMillisecond);  // skip gap 0, deliver 1; 3 (30 ms old)
                                 // keeps waiting on gap 2
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11}));
  rb.on_tb_decoded(61 * kMillisecond, mk(2, 12));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11, 12, 13}));
  EXPECT_EQ(rb.next_expected(), 4u);
}

// --------------------------------------------------- carrier aggregation

TEST(CarrierAggregation, QueueTriggeredActivation) {
  CaConfig cfg;
  cfg.activation_queue_bytes = 1000;
  cfg.activation_delay = 10 * util::kMillisecond;
  CaManager ca({1, 2, 3}, cfg);
  EXPECT_EQ(ca.num_active(), 1u);
  util::Time t = 0;
  bool activated = false;
  for (int i = 0; i < 30; ++i) {
    t += util::kSubframe;
    activated |= ca.on_subframe(t, 5000, 0, 0, 50).activated;
  }
  EXPECT_TRUE(activated);
  EXPECT_EQ(ca.num_active(), 2u);
  EXPECT_TRUE(ca.ever_aggregated());
  EXPECT_EQ(ca.active_cells()[1], 2u);
}

TEST(CarrierAggregation, UtilizationTriggeredActivation) {
  // No queue at all, but the user holds ~90% of the serving cell.
  CaConfig cfg;
  cfg.utilization_delay = 50 * util::kMillisecond;
  CaManager ca({1, 2}, cfg);
  util::Time t = 0;
  bool activated = false;
  for (int i = 0; i < 400 && !activated; ++i) {
    t += util::kSubframe;
    activated = ca.on_subframe(t, 0, 0, 45, 50).activated;
  }
  EXPECT_TRUE(activated);
}

TEST(CarrierAggregation, IdleSecondaryDeactivated) {
  CaConfig cfg;
  cfg.activation_queue_bytes = 1000;
  cfg.activation_delay = 5 * util::kMillisecond;
  cfg.deactivation_delay = 100 * util::kMillisecond;
  CaManager ca({1, 2}, cfg);
  util::Time t = 0;
  while (ca.num_active() == 1) {
    t += util::kSubframe;
    ca.on_subframe(t, 5000, 20, 40, 50);
    ASSERT_LT(t, util::kSecond);
  }
  // Queue gone, secondary unused.
  bool deactivated = false;
  for (int i = 0; i < 2000 && !deactivated; ++i) {
    t += util::kSubframe;
    deactivated = ca.on_subframe(t, 0, 0, 5, 100).deactivated;
  }
  EXPECT_TRUE(deactivated);
  EXPECT_EQ(ca.num_active(), 1u);
}

TEST(CarrierAggregation, NeverExceedsConfiguredCells) {
  CaConfig cfg;
  cfg.activation_queue_bytes = 1;
  cfg.activation_delay = util::kMillisecond;
  cfg.activation_cooldown = util::kMillisecond;
  CaManager ca({7}, cfg);
  util::Time t = 0;
  for (int i = 0; i < 100; ++i) {
    t += util::kSubframe;
    EXPECT_FALSE(ca.on_subframe(t, 1 << 20, 0, 50, 50).activated);
  }
  EXPECT_EQ(ca.num_active(), 1u);
  EXPECT_FALSE(ca.ever_aggregated());
}

TEST(CarrierAggregation, EmptyCellListThrows) {
  EXPECT_THROW(CaManager({}, CaConfig{}), std::invalid_argument);
}

// --------------------------------------------------------- control traffic

TEST(ControlTraffic, RateMatchesConfig) {
  ControlTrafficConfig cfg;
  cfg.users_per_subframe = 0.4;
  cfg.seed = 5;
  ControlTrafficGenerator gen{cfg};
  double grants = 0;
  const int n = 20000;
  for (int sf = 0; sf < n; ++sf) grants += static_cast<double>(gen.tick(sf).size());
  // Slightly above 0.4/sf because a minority of sessions span subframes.
  EXPECT_NEAR(grants / n, 0.42, 0.05);
}

TEST(ControlTraffic, MostGrantsAreCanonical) {
  ControlTrafficConfig cfg;
  cfg.users_per_subframe = 1.0;
  cfg.canonical_fraction = 0.9;
  ControlTrafficGenerator gen{cfg};
  int canonical = 0, totalg = 0;
  for (int sf = 0; sf < 5000; ++sf) {
    for (const auto& g : gen.tick(sf)) {
      ++totalg;
      canonical += g.n_prbs == 4 ? 1 : 0;
      EXPECT_GE(g.rnti, phy::kMinCRnti);
      EXPECT_LE(g.rnti, phy::kMaxCRnti);
      EXPECT_GT(g.n_prbs, 0);
    }
  }
  EXPECT_GT(static_cast<double>(canonical) / totalg, 0.8);
}

// ------------------------------------------------------------ base station

struct BsHarness {
  net::EventLoop loop;
  std::unique_ptr<BaseStation> bs;
  std::vector<net::Packet> delivered;

  explicit BsHarness(std::vector<phy::CellConfig> cells = {{1, 10.0}},
                     BaseStationConfig cfg = {}) {
    cfg.control_traffic.users_per_subframe = 0;  // quiet unless asked
    bs = std::make_unique<BaseStation>(loop, std::move(cells), cfg);
  }

  void add_default_ue(UeId id = 1, double rssi = -92.0,
                      std::vector<phy::CellId> cells = {1}) {
    UeConfig cfg;
    cfg.id = id;
    cfg.rnti = static_cast<phy::Rnti>(0x100 + id);
    cfg.aggregated_cells = std::move(cells);
    cfg.channel.trace = phy::MobilityTrace::stationary(rssi);
    cfg.channel.seed = 17 + id;
    bs->add_ue(cfg, [this](net::Packet p) { delivered.push_back(p); });
  }

  void enqueue_n(UeId ue, int n, std::uint64_t first_seq = 0) {
    for (int i = 0; i < n; ++i) {
      net::Packet p;
      p.flow = 1;
      p.seq = first_seq + static_cast<std::uint64_t>(i);
      p.sent_time = loop.now();
      bs->enqueue(ue, p);
    }
  }
};

TEST(BaseStation, DeliversInOrder) {
  BsHarness h;
  h.add_default_ue();
  h.bs->start();
  h.loop.schedule_at(10 * util::kMillisecond, [&] { h.enqueue_n(1, 200); });
  h.loop.run_until(util::kSecond);
  ASSERT_EQ(h.delivered.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(h.delivered[i].seq, i);
}

TEST(BaseStation, DeliveryTakesAtLeastOneSubframe) {
  BsHarness h;
  h.add_default_ue();
  h.bs->start();
  h.loop.schedule_at(10 * util::kMillisecond + 500, [&] { h.enqueue_n(1, 1); });
  h.loop.run_until(util::kSecond);
  ASSERT_EQ(h.delivered.size(), 1u);
  // Enqueued mid-subframe 10; scheduled in subframe 11; decoded at 12 ms.
  EXPECT_GE(h.delivered[0].recv_time, 0);  // recv_time set by receiver layer
  EXPECT_GE(h.loop.now(), 12 * util::kMillisecond);
}

TEST(BaseStation, QueueDropsWhenFull) {
  BsHarness h;
  UeConfig cfg;
  cfg.id = 1;
  cfg.rnti = 0x101;
  cfg.aggregated_cells = {1};
  cfg.queue_capacity_bytes = 10 * 1500;
  cfg.channel.trace = phy::MobilityTrace::stationary(-92);
  int drops = 0;
  h.bs->set_drop_handler([&](UeId, const net::Packet&) { ++drops; });
  h.bs->add_ue(cfg, [&](net::Packet p) { h.delivered.push_back(p); });
  h.bs->start();
  h.loop.schedule_at(5 * util::kMillisecond, [&] { h.enqueue_n(1, 50); });
  h.loop.run_until(util::kSecond);
  EXPECT_EQ(drops, 40);
  EXPECT_EQ(h.delivered.size(), 10u);
}

TEST(BaseStation, AllocationRecordsConsistent) {
  BsHarness h;
  h.add_default_ue();
  std::vector<AllocationRecord> records;
  h.bs->set_allocation_observer([&](const AllocationRecord& r) {
    records.push_back(r);
  });
  h.bs->start();
  h.loop.schedule_at(5 * util::kMillisecond, [&] { h.enqueue_n(1, 500); });
  h.loop.run_until(200 * util::kMillisecond);
  ASSERT_FALSE(records.empty());
  const int cell_prbs = phy::CellConfig{1, 10.0}.n_prbs();
  bool saw_data = false;
  for (const auto& r : records) {
    int used = r.control_prbs + r.retx_prbs;
    for (const auto& a : r.data_allocs) used += a.n_prbs;
    EXPECT_EQ(used + r.idle_prbs, cell_prbs);
    saw_data |= !r.data_allocs.empty();
  }
  EXPECT_TRUE(saw_data);
}

TEST(BaseStation, PdcchObserverSeesOwnDci) {
  BsHarness h;
  h.add_default_ue();
  decoder::BlindDecoder probe{phy::CellConfig{1, 10.0}};
  int own_msgs = 0;
  h.bs->add_pdcch_observer([&](const phy::PdcchSubframe& sf) {
    for (const auto& dci : probe.decode(sf)) {
      own_msgs += dci.rnti == 0x101 ? 1 : 0;
    }
  });
  h.bs->start();
  h.loop.schedule_at(5 * util::kMillisecond, [&] { h.enqueue_n(1, 500); });
  h.loop.run_until(300 * util::kMillisecond);
  EXPECT_GT(own_msgs, 50);
}

TEST(BaseStation, FairAcrossBackloggedUsers) {
  BsHarness h;
  h.add_default_ue(1);
  h.add_default_ue(2);
  std::map<UeId, long> prbs;
  h.bs->set_allocation_observer([&](const AllocationRecord& r) {
    for (const auto& a : r.data_allocs) prbs[a.ue] += a.n_prbs;
  });
  h.bs->start();
  // Keep both users permanently backlogged.
  for (int ms = 5; ms < 2000; ms += 10) {
    h.loop.schedule_at(ms * util::kMillisecond, [&] {
      h.enqueue_n(1, 30);
      h.enqueue_n(2, 30);
    });
  }
  h.loop.run_until(2 * util::kSecond);
  const double a = static_cast<double>(prbs[1]);
  const double b = static_cast<double>(prbs[2]);
  const double alloc_arr[] = {a, b};
  EXPECT_GT(util::jain_index(alloc_arr), 0.99);
}

TEST(BaseStation, CarrierAggregationEndToEnd) {
  BsHarness h{{{1, 10.0}, {2, 10.0}}};
  UeConfig cfg;
  cfg.id = 1;
  cfg.rnti = 0x101;
  cfg.aggregated_cells = {1, 2};
  cfg.channel.trace = phy::MobilityTrace::stationary(-92);
  cfg.channel.seed = 3;
  h.bs->add_ue(cfg, [&](net::Packet p) { h.delivered.push_back(p); });
  h.bs->start();
  EXPECT_EQ(h.bs->ca(1).num_active(), 1u);
  // Saturating load -> deep queue -> secondary activates.
  for (int ms = 5; ms < 1000; ms += 2) {
    h.loop.schedule_at(ms * util::kMillisecond, [&] { h.enqueue_n(1, 20); });
  }
  h.loop.run_until(util::kSecond);
  EXPECT_EQ(h.bs->ca(1).num_active(), 2u);
  EXPECT_TRUE(h.bs->ca(1).ever_aggregated());
}

TEST(BaseStation, RetransmissionsHappen) {
  BsHarness h;
  h.add_default_ue(1, -110.0);  // weak signal: high residual BER
  h.bs->start();
  for (int ms = 5; ms < 3000; ms += 5) {
    h.loop.schedule_at(ms * util::kMillisecond, [&] { h.enqueue_n(1, 15); });
  }
  h.loop.run_until(3 * util::kSecond);
  EXPECT_GT(h.bs->total_tbs_sent(), 100u);
  EXPECT_GT(h.bs->total_tb_errors(), 0u);
  // Packets survive via HARQ: deliveries continue despite the errors.
  // (-110 dBm leaves only ~CQI 3-4: roughly 3 kbit/subframe of capacity.)
  EXPECT_GT(h.delivered.size(), 400u);
}

TEST(BaseStation, ChannelStateDefaultBeforeFirstTick) {
  BsHarness h;
  h.add_default_ue();
  const auto s = h.bs->channel_state(1, 1);
  EXPECT_GT(s.cqi, 0);  // neutral default, no throw
}

TEST(BaseStation, HandoverEvictsDepartedCellState) {
  BsHarness h{{{1, 10.0}, {2, 10.0}, {3, 10.0}}};
  h.add_default_ue(1, -92.0, {1, 2});
  EXPECT_EQ(h.bs->ue_tracked_cells(1), 2u);
  h.bs->start();
  h.loop.schedule_at(5 * util::kMillisecond, [&] { h.enqueue_n(1, 300); });
  h.loop.run_until(100 * util::kMillisecond);
  // Hand over to cell 3 only: per-cell HARQ/channel state for cells 1-2
  // must be evicted, not accumulated — a UE churning through a city of
  // cells would otherwise grow its maps forever.
  h.bs->handover(1, {3});
  EXPECT_EQ(h.bs->ue_tracked_cells(1), 1u);
  h.loop.run_until(200 * util::kMillisecond);
  EXPECT_EQ(h.bs->ue_tracked_cells(1), 1u);
  // Repeated handover cycles stay flat.
  for (int i = 0; i < 10; ++i) {
    h.bs->handover(1, {static_cast<phy::CellId>(1 + i % 3),
                       static_cast<phy::CellId>(1 + (i + 1) % 3)});
    EXPECT_EQ(h.bs->ue_tracked_cells(1), 2u);
  }
  // Delivery still works on the final cell pair.
  const auto before = h.delivered.size();
  h.loop.schedule_at(210 * util::kMillisecond, [&] { h.enqueue_n(1, 50, 300) ; });
  h.loop.run_until(400 * util::kMillisecond);
  EXPECT_GT(h.delivered.size(), before);
}

TEST(BaseStation, RemoveUeSafeWithInFlightDeliveries) {
  BsHarness h;
  h.add_default_ue(1);
  h.add_default_ue(2);
  EXPECT_EQ(h.bs->num_ues(), 2u);
  h.bs->start();
  h.loop.schedule_at(5 * util::kMillisecond, [&] {
    h.enqueue_n(1, 100);
    h.enqueue_n(2, 100);
  });
  // Remove UE 1 right after a tick: decode/abandon callbacks for its TBs
  // are already scheduled one subframe out and must become no-ops instead
  // of touching freed state.
  h.loop.schedule_at(20 * util::kMillisecond + 1, [&] { h.bs->remove_ue(1); });
  h.loop.run_until(util::kSecond);
  EXPECT_EQ(h.bs->num_ues(), 1u);
  EXPECT_THROW(h.bs->enqueue(1, net::Packet{}), std::out_of_range);
  // UE 2 is unaffected and fully served.
  EXPECT_GE(h.delivered.size(), 100u);
  // Removing an unknown UE is a harmless no-op; the id can then be reused.
  h.bs->remove_ue(1);
  h.add_default_ue(1);
  EXPECT_EQ(h.bs->num_ues(), 2u);
}

// ------------------------------------ cross-shard migration (DESIGN.md §15)

TEST(Reorder, SnapshotRestoreCarriesResidue) {
  // A UE migrating with a head-of-line gap must carry the packets queued
  // behind it; dropping the residue at the handover would lose them.
  std::vector<std::uint64_t> src_out;
  ReorderingBuffer src([&](net::Packet p) { src_out.push_back(p.seq); });
  auto mk = [](std::uint64_t tbseq, std::uint64_t pktseq) {
    auto t = tb(tbseq);
    net::Packet p;
    p.seq = pktseq;
    t.completed_packets.push_back(p);
    return t;
  };
  src.on_tb_decoded(100, mk(1, 11));  // TB 0 missing: both held
  src.on_tb_decoded(200, mk(2, 12));
  ASSERT_TRUE(src_out.empty());

  std::vector<std::uint64_t> dst_out;
  ReorderingBuffer dst([&](net::Packet p) { dst_out.push_back(p.seq); });
  dst.restore(src.snapshot());
  EXPECT_EQ(dst.next_expected(), 0u);
  EXPECT_EQ(dst.buffered_blocks(), 2u);
  // The gap resolves (abandon notification) after the move: the carried
  // residue drains in order, with `since` stamps intact for the timer.
  dst.on_tb_abandoned(300, 0);
  EXPECT_EQ(dst_out, (std::vector<std::uint64_t>{11, 12}));
  EXPECT_EQ(dst.buffered_blocks(), 0u);
}

TEST(CarrierAggregation, RestoreHistoryIsSticky) {
  CaManager fresh({1, 2}, CaConfig{});
  EXPECT_FALSE(fresh.ever_aggregated());
  fresh.restore_history(true);
  EXPECT_TRUE(fresh.ever_aggregated());
  fresh.restore_history(false);  // OR-semantics: history never un-happens
  EXPECT_TRUE(fresh.ever_aggregated());
}

TEST(BaseStation, HandoverPreservesCaHistory) {
  // PR-4 regression: handover() rebuilt the CaManager for the new cell
  // set, silently zeroing ever_aggregated — the Fig-15 statistic — for
  // every UE that ever moved.
  BsHarness h{{{1, 10.0}, {2, 10.0}}};
  UeConfig cfg;
  cfg.id = 1;
  cfg.rnti = 0x101;
  cfg.aggregated_cells = {1, 2};
  cfg.channel.trace = phy::MobilityTrace::stationary(-92);
  cfg.channel.seed = 3;
  h.bs->add_ue(cfg, [&](net::Packet p) { h.delivered.push_back(p); });
  h.bs->start();
  for (int ms = 5; ms < 1000; ms += 2) {
    h.loop.schedule_at(ms * util::kMillisecond, [&] { h.enqueue_n(1, 20); });
  }
  h.loop.run_until(util::kSecond);
  ASSERT_TRUE(h.bs->ca(1).ever_aggregated());
  h.bs->handover(1, {2, 1});
  EXPECT_TRUE(h.bs->ca(1).ever_aggregated());
}

TEST(BaseStation, ExtractUeAbandonsInFlightSynchronously) {
  BsHarness h;
  // Weak signal so TB errors occur; a failed block then sits on its HARQ
  // process awaiting retransmission for 8 subframes — extract inside that
  // window to catch a block genuinely in flight.
  h.add_default_ue(1, -110.0);
  h.bs->start();
  h.loop.schedule_at(5 * util::kMillisecond, [&] { h.enqueue_n(1, 600); });
  long t = 30;
  while (h.bs->total_tb_errors() == 0 && t < 5000) {
    h.loop.run_until(++t * util::kMillisecond);
  }
  ASSERT_GT(h.bs->total_tb_errors(), 0u) << "no TB error within 5 s";
  const auto abandoned_before = h.bs->total_tbs_abandoned();
  UeMigration m = h.bs->extract_ue(1);
  // In-flight blocks were abandoned at extract time — synchronously, not
  // via scheduled callbacks that would no-op once the UE is gone.
  EXPECT_GT(h.bs->total_tbs_abandoned(), abandoned_before);
  EXPECT_GT(m.next_tb_seq, 0u);          // seq cursor travels
  EXPECT_FALSE(m.queue.empty());         // backlog travels
  EXPECT_GT(m.queue_bytes, 0);
  EXPECT_EQ(h.bs->num_ues(), 0u);
  EXPECT_THROW(h.bs->enqueue(1, net::Packet{}), std::out_of_range);
  EXPECT_THROW(h.bs->extract_ue(1), std::out_of_range);
}

TEST(BaseStation, MigrationRoundTripKeepsInOrderDelivery) {
  // Full extract→admit across two base stations on one clock: delivery
  // stays strictly in order across the move and the carried backlog is
  // fully served by the target.
  net::EventLoop loop;
  BaseStationConfig quiet;
  quiet.control_traffic.users_per_subframe = 0;
  BaseStation bs1(loop, {{1, 10.0}}, quiet);
  BaseStation bs2(loop, {{1, 10.0}, {2, 10.0}}, quiet);
  std::vector<std::uint64_t> seqs;
  UeConfig cfg;
  cfg.id = 7;
  cfg.rnti = 0x107;
  cfg.aggregated_cells = {1};
  cfg.channel.trace = phy::MobilityTrace::stationary(-92);
  cfg.channel.seed = 17;
  bs1.add_ue(cfg, [&](net::Packet p) { seqs.push_back(p.seq); });
  bs1.start();
  bs2.start();
  loop.schedule_at(5 * util::kMillisecond, [&] {
    for (int i = 0; i < 400; ++i) {
      net::Packet p;
      p.flow = 1;
      p.seq = static_cast<std::uint64_t>(i);
      p.sent_time = loop.now();
      bs1.enqueue(7, p);
    }
  });
  loop.schedule_at(50 * util::kMillisecond + 1, [&] {
    UeMigration m = bs1.extract_ue(7);
    bs2.admit_ue(std::move(m), {2, 1},
                 [&](net::Packet p) { seqs.push_back(p.seq); });
  });
  loop.run_until(3 * util::kSecond);
  // Some packets riding abandoned TBs are lost at the move; everything
  // else arrives exactly once, in order, ending with the last packet.
  ASSERT_FALSE(seqs.empty());
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
  EXPECT_EQ(std::adjacent_find(seqs.begin(), seqs.end()), seqs.end());
  EXPECT_EQ(seqs.back(), 399u);
  EXPECT_GT(seqs.size(), 350u);
  EXPECT_EQ(bs2.queue_bytes(7), 0);
}

TEST(BaseStation, AdmitUeValidates) {
  BsHarness h;
  h.add_default_ue(1);
  UeMigration m = h.bs->extract_ue(1);
  EXPECT_THROW(h.bs->admit_ue(m, {9}, [](net::Packet) {}),
               std::invalid_argument);  // unknown cell
  h.bs->admit_ue(m, {1}, [](net::Packet) {});
  EXPECT_THROW(h.bs->admit_ue(m, {1}, [](net::Packet) {}),
               std::invalid_argument);  // duplicate id
}

// --------------------------------------- aggregate background (city scale)

TEST(AggregateTraffic, GrantsBoundedAndDeterministic) {
  AggregateTrafficConfig cfg;
  cfg.sessions_per_sec = 50;
  cfg.seed = 42;
  AggregateTraffic a(1, cfg);
  AggregateTraffic b(1, cfg);
  int peak_sessions = 0;
  for (std::int64_t sf = 0; sf < 2000; ++sf) {
    const auto ga = a.tick(sf, 50, 1);
    const auto gb = b.tick(sf, 50, 1);
    int prbs = 0;
    for (const auto& g : ga) {
      prbs += g.n_prbs;
      EXPECT_GT(g.n_prbs, 0);
      EXPECT_GE(g.rnti, 0xC000u);  // aggregate RNTI space
    }
    EXPECT_LE(prbs, 50);
    // Same seed, same cell -> byte-identical session schedule.
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i].rnti, gb[i].rnti);
      EXPECT_EQ(ga[i].n_prbs, gb[i].n_prbs);
    }
    peak_sessions = std::max(peak_sessions, a.active_sessions());
  }
  EXPECT_GT(peak_sessions, 0);
  EXPECT_LE(peak_sessions, cfg.max_sessions);
}

TEST(BaseStation, AggregateTrafficContendsWithRealUsers) {
  // The synthetic population must show up exactly where background UEs
  // would: PRB occupancy (less room for the foreground user) and the
  // active-user count N of Eqns 1-2.
  BsHarness loaded;
  loaded.bs->set_aggregate_traffic(1, [] {
    AggregateTrafficConfig c;
    c.sessions_per_sec = 40;
    c.rate_lo_bps = 4e6;
    c.rate_hi_bps = 12e6;
    c.seed = 7;
    return c;
  }());
  loaded.add_default_ue(1);
  BsHarness quiet;
  quiet.add_default_ue(1);
  for (BsHarness* h : {&loaded, &quiet}) {
    h->bs->start();
    for (int ms = 5; ms < 2000; ms += 2) {
      h->loop.schedule_at(ms * util::kMillisecond,
                          [h] { h->enqueue_n(1, 20); });
    }
    h->loop.run_until(2 * util::kSecond);
  }
  EXPECT_LT(loaded.delivered.size(), quiet.delivered.size());
  EXPECT_GT(loaded.delivered.size(), 0u);
  EXPECT_GT(loaded.bs->ground_truth(1).at(0).active_users, 1);
  EXPECT_THROW(loaded.bs->set_aggregate_traffic(9, AggregateTrafficConfig{}),
               std::invalid_argument);
}

TEST(BaseStation, InvalidConfigThrows) {
  net::EventLoop loop;
  EXPECT_THROW(BaseStation(loop, {}, BaseStationConfig{}), std::invalid_argument);
  BsHarness h;
  UeConfig bad;
  bad.id = 9;
  bad.aggregated_cells = {};
  EXPECT_THROW(h.bs->add_ue(bad, [](net::Packet) {}), std::invalid_argument);
  h.add_default_ue(1);
  UeConfig dup;
  dup.id = 1;
  dup.aggregated_cells = {1};
  EXPECT_THROW(h.bs->add_ue(dup, [](net::Packet) {}), std::invalid_argument);
}

}  // namespace
}  // namespace pbecc::mac
