// pbecc::cap test suite (DESIGN.md §11): wire codec properties, .pbt
// round-trips, fail-closed behaviour on truncated/bit-flipped traces,
// trace surgery (cut/merge), a pinned golden-format digest, and the
// tentpole guarantee — record→replay digest equality across fault
// profiles, seeds and thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cap/replay.h"
#include "cap/taps.h"
#include "cap/tools.h"
#include "cap/trace_reader.h"
#include "cap/trace_writer.h"
#include "fault/fault.h"
#include "par/thread_pool.h"
#include "sim/location.h"
#include "util/digest.h"
#include "util/rng.h"

namespace pbecc {
namespace {

// Whole-file FNV-1a of a fixed synthetic trace; pinned by
// CapGolden.FormatDigestIsPinned. Changing the on-disk format requires a
// kFormatVersion bump alongside an update here (v2 value; the v1 stream
// is pinned separately by CapGolden.V1FormatDigestIsPinned).
constexpr std::uint64_t kGoldenFormatDigest = 0xb71cb82813050b54ull;
// Same synthetic stream written with version 1: must stay bit-for-bit
// what pre-NR builds produced, forever.
constexpr std::uint64_t kGoldenV1FormatDigest = 0x5de14db212f2e18full;

// --- helpers -------------------------------------------------------------

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "cap_test_" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  std::fclose(f);
}

cap::TraceHeader sample_header(bool with_fault) {
  cap::TraceHeader h;
  h.own_rnti = 0x104;
  h.monitor_seed = 777;
  h.tracker.window = 60 * util::kMillisecond;
  h.tracker.min_active_subframes = 3;
  h.tracker.min_average_prbs = 5.5;
  if (with_fault) {
    h.fault_active = true;
    h.fault = *fault::profile_by_name("blackout");
    h.fault_seed = 42;
  }
  phy::CellConfig c1{1, 10.0, 1.94, phy::PdcchCoding::kRepetition};
  phy::CellConfig c2{2, 5.0, 2.63, phy::PdcchCoding::kConvolutional};
  h.cells = {c1, c2};
  return h;
}

cap::CellCapture random_cell(util::Rng& rng, phy::CellId id, int n_cces) {
  cap::CellCapture c;
  c.cell = id;
  c.n_cces = n_cces;
  c.coding = (rng.next_u64() & 1) ? phy::PdcchCoding::kConvolutional
                                  : phy::PdcchCoding::kRepetition;
  c.control_ber = rng.uniform(0.0, 0.01);
  c.bits_per_prb = rng.uniform(100.0, 700.0);
  for (int i = 0; i < n_cces * phy::kBitsPerCce; ++i) {
    c.bits.push_bit((rng.next_u64() & 1) != 0);
  }
  for (int i = 0; i < n_cces; ++i) c.cce_used.push_back((rng.next_u64() & 3) != 0);
  return c;
}

// A randomized mixed-kind record stream shaped like a real capture:
// strictly increasing batch subframes, and timed records sandwiched
// between the subframes of their surrounding batches, so the stream is
// globally time-ordered (what cut/merge rely on).
std::vector<cap::Record> random_records(util::Rng& rng, int n) {
  std::vector<cap::Record> recs;
  std::int64_t sf = rng.uniform_int(0, 100);  // next batch's subframe
  util::Time t = util::subframe_start(sf);
  std::int64_t last_sf = sf;
  for (int i = 0; i < n; ++i) {
    cap::Record rec;
    const auto pick = rng.uniform_int(0, 9);
    if (pick < 6) {
      rec.kind = cap::Record::Kind::kBatch;
      rec.batch.sf_index = sf;
      last_sf = sf;
      sf += rng.uniform_int(1, 5);
      const int n_cells = static_cast<int>(rng.uniform_int(1, 3));
      for (int c = 0; c < n_cells; ++c) {
        auto cell = random_cell(rng, static_cast<phy::CellId>(c + 1),
                                static_cast<int>(rng.uniform_int(1, 84)));
        cell.sf_index = rec.batch.sf_index;  // 1 ms clock (LTE cells)
        rec.batch.cells.push_back(std::move(cell));
      }
    } else {
      t = std::clamp(t + rng.uniform_int(0, 2000),
                     util::subframe_start(last_sf), util::subframe_start(sf));
      if (pick < 8) {
        rec.kind = cap::Record::Kind::kWindow;
        rec.window.t = t;
        rec.window.window = rng.uniform_int(20, 400) * util::kMillisecond;
      } else {
        rec.kind = cap::Record::Kind::kProbe;
        rec.probe.t = t;
      }
    }
    recs.push_back(std::move(rec));
  }
  return recs;
}

void expect_record_eq(const cap::Record& a, const cap::Record& b) {
  ASSERT_EQ(a.kind, b.kind);
  switch (a.kind) {
    case cap::Record::Kind::kBatch:
      EXPECT_EQ(a.batch, b.batch);
      break;
    case cap::Record::Kind::kWindow:
      EXPECT_EQ(a.window, b.window);
      break;
    case cap::Record::Kind::kProbe:
      EXPECT_EQ(a.probe, b.probe);
      break;
  }
}

// --- wire codec ----------------------------------------------------------

TEST(CapWire, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {0, 1, 127, 128, 16383, 16384,
                                 0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
  for (std::uint64_t v : cases) {
    cap::ByteWriter w;
    w.put_varint(v);
    cap::ByteReader r(w.buf().data(), w.size());
    EXPECT_EQ(r.get_varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
  }
}

TEST(CapWire, SvarintRoundTripBoundaries) {
  const std::int64_t cases[] = {0, 1, -1, 63, -64, 64, -65,
                                INT64_MAX, INT64_MIN};
  for (std::int64_t v : cases) {
    cap::ByteWriter w;
    w.put_svarint(v);
    cap::ByteReader r(w.buf().data(), w.size());
    EXPECT_EQ(r.get_svarint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(CapWire, VarintRandomRoundTrip) {
  util::Rng rng(11);
  cap::ByteWriter w;
  std::vector<std::uint64_t> vals;
  std::vector<std::int64_t> svals;
  for (int i = 0; i < 2000; ++i) {
    // Mix magnitudes so every LEB128 length is exercised.
    const int shift = static_cast<int>(rng.uniform_int(0, 63));
    vals.push_back(rng.next_u64() >> shift);
    svals.push_back(static_cast<std::int64_t>(rng.next_u64() >> shift) *
                    ((rng.next_u64() & 1) ? 1 : -1));
    w.put_varint(vals.back());
    w.put_svarint(svals.back());
  }
  cap::ByteReader r(w.buf().data(), w.size());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(r.get_varint(), vals[static_cast<std::size_t>(i)]);
    EXPECT_EQ(r.get_svarint(), svals[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(CapWire, TruncatedVarintFailsClosed) {
  cap::ByteWriter w;
  w.put_varint(0xFFFFFFFFFFFFFFFFull);
  // Drop the final byte: every remaining byte has the continuation bit.
  cap::ByteReader r(w.buf().data(), w.size() - 1);
  r.get_varint();
  EXPECT_FALSE(r.ok());
}

TEST(CapWire, OverlongVarintFailsClosed) {
  // 11 continuation bytes: no valid 64-bit varint is this long.
  std::vector<std::uint8_t> bytes(11, 0x80);
  bytes.push_back(0x00);
  cap::ByteReader r(bytes.data(), bytes.size());
  r.get_varint();
  EXPECT_FALSE(r.ok());
}

// --- header / record codec ----------------------------------------------

TEST(CapFormat, HeaderRoundTrip) {
  for (bool with_fault : {false, true}) {
    const auto h = sample_header(with_fault);
    cap::ByteWriter w;
    cap::encode_header(h, w);
    cap::ByteReader r(w.buf().data(), w.size());
    cap::TraceHeader back;
    std::string err;
    ASSERT_TRUE(cap::decode_header(r, back, err)) << err;
    EXPECT_EQ(h, back);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(CapFormat, RecordStreamRandomRoundTrip) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    util::Rng rng(seed);
    const auto recs = random_records(rng, 200);
    cap::ByteWriter w;
    cap::DeltaState enc{};
    for (const auto& rec : recs) cap::encode_record(rec, enc, w);

    cap::ByteReader r(w.buf().data(), w.size());
    cap::DeltaState dec{};
    for (const auto& rec : recs) {
      cap::Record back;
      std::string err;
      ASSERT_TRUE(cap::decode_record(r, dec, back, err)) << err;
      expect_record_eq(rec, back);
    }
    EXPECT_TRUE(r.at_end());
  }
}

// --- file round-trip -----------------------------------------------------

TEST(CapTrace, FileRoundTripAcrossChunks) {
  const auto path = tmp_path("roundtrip.pbt");
  util::Rng rng(7);
  const auto recs = random_records(rng, 700);  // > 2 chunks at 256/chunk

  cap::TraceWriter writer(path, /*chunk_records=*/256);
  writer.begin(sample_header(true));
  for (const auto& rec : recs) {
    switch (rec.kind) {
      case cap::Record::Kind::kBatch:
        writer.record_batch(rec.batch);
        break;
      case cap::Record::Kind::kWindow:
        writer.record_window(rec.window.t, rec.window.window);
        break;
      case cap::Record::Kind::kProbe:
        writer.record_probe(rec.probe.t);
        break;
    }
  }
  ASSERT_TRUE(writer.close()) << writer.error();
  EXPECT_EQ(writer.records_written(), recs.size());

  cap::TraceReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.header(), sample_header(true));
  cap::Record back;
  for (const auto& rec : recs) {
    ASSERT_TRUE(reader.next(back)) << reader.error();
    expect_record_eq(rec, back);
  }
  EXPECT_FALSE(reader.next(back));
  EXPECT_TRUE(reader.ok()) << reader.error();  // clean EOF, not damage
  EXPECT_GT(reader.chunks_read(), 1u);
  std::remove(path.c_str());
}

// --- fail-closed ---------------------------------------------------------

// Writes a small valid trace and returns its bytes.
std::vector<std::uint8_t> valid_trace_bytes(const std::string& path) {
  util::Rng rng(5);
  const auto recs = random_records(rng, 300);
  cap::TraceWriter writer(path, 64);
  writer.begin(sample_header(false));
  for (const auto& rec : recs) {
    if (rec.kind == cap::Record::Kind::kBatch) writer.record_batch(rec.batch);
    if (rec.kind == cap::Record::Kind::kWindow) {
      writer.record_window(rec.window.t, rec.window.window);
    }
    if (rec.kind == cap::Record::Kind::kProbe) writer.record_probe(rec.probe.t);
  }
  EXPECT_TRUE(writer.close()) << writer.error();
  return read_file(path);
}

// Drain a reader; returns how many records were served before it stopped.
std::uint64_t drain(cap::TraceReader& reader) {
  cap::Record rec;
  while (reader.next(rec)) {
  }
  return reader.records_read();
}

TEST(CapFailClosed, TruncationAtEveryRegionReportsError) {
  const auto path = tmp_path("trunc.pbt");
  const auto bytes = valid_trace_bytes(path);
  // Representative truncation points: inside the fixed header, inside the
  // header payload, inside chunk framing, mid-chunk-payload, and one byte
  // short of the end.
  const std::size_t cuts[] = {3,  9,  bytes.size() / 4, bytes.size() / 2,
                              bytes.size() - 1};
  for (std::size_t cut : cuts) {
    write_file(path, {bytes.begin(), bytes.begin() + static_cast<long>(cut)});
    cap::TraceReader reader(path);
    drain(reader);
    EXPECT_FALSE(reader.ok()) << "cut at " << cut << " went undetected";
    EXPECT_FALSE(reader.error().empty());
  }
  std::remove(path.c_str());
}

TEST(CapFailClosed, BitFlipAnywhereIsDetected) {
  const auto path = tmp_path("flip.pbt");
  const auto bytes = valid_trace_bytes(path);
  // Flip one bit in several spots spanning header and chunk payloads. A
  // CRC (header or chunk) must catch every one of them.
  for (std::size_t pos : {std::size_t{8}, std::size_t{20}, bytes.size() / 3,
                          bytes.size() / 2, bytes.size() - 10}) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x10;
    write_file(path, corrupted);
    cap::TraceReader reader(path);
    drain(reader);
    EXPECT_FALSE(reader.ok()) << "flip at byte " << pos << " went undetected";
  }
  std::remove(path.c_str());
}

TEST(CapFailClosed, ValidPrefixIsServedBeforeDamage) {
  const auto path = tmp_path("prefix.pbt");
  const auto bytes = valid_trace_bytes(path);
  // Corrupt only the final chunk: everything before it must still decode.
  auto corrupted = bytes;
  corrupted[bytes.size() - 5] ^= 0xFF;
  write_file(path, corrupted);
  cap::TraceReader reader(path);
  const auto served = drain(reader);
  EXPECT_FALSE(reader.ok());
  EXPECT_GT(served, 0u);
  std::remove(path.c_str());
}

TEST(CapFailClosed, BadMagicAndFutureVersion) {
  const auto path = tmp_path("magic.pbt");
  const auto bytes = valid_trace_bytes(path);

  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  write_file(path, bad_magic);
  {
    cap::TraceReader reader(path);
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.error().find("magic"), std::string::npos);
  }

  auto future = bytes;
  future[4] = 99;  // version u16 little-endian low byte
  write_file(path, future);
  {
    cap::TraceReader reader(path);
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.error().find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CapFailClosed, EmptyAndGarbageFiles) {
  const auto path = tmp_path("garbage.pbt");
  write_file(path, {});
  {
    cap::TraceReader reader(path);
    EXPECT_FALSE(reader.ok());
  }
  write_file(path, std::vector<std::uint8_t>(64, 0xAB));
  {
    cap::TraceReader reader(path);
    EXPECT_FALSE(reader.ok());
  }
  std::remove(path.c_str());
}

// --- golden format digest ------------------------------------------------

// Pins the on-disk byte stream: any change to the wire format, header
// layout, chunking or CRC must bump kFormatVersion — this test failing
// without a version bump means old traces silently changed meaning.
std::uint64_t golden_stream_digest(std::uint16_t version) {
  const auto path = tmp_path("golden.pbt");
  util::Rng rng(1234);
  cap::TraceWriter writer(path, 16, version);
  writer.begin(sample_header(true));
  for (const auto& rec : random_records(rng, 64)) {
    if (rec.kind == cap::Record::Kind::kBatch) writer.record_batch(rec.batch);
    if (rec.kind == cap::Record::Kind::kWindow) {
      writer.record_window(rec.window.t, rec.window.window);
    }
    if (rec.kind == cap::Record::Kind::kProbe) writer.record_probe(rec.probe.t);
  }
  EXPECT_TRUE(writer.close()) << writer.error();
  const auto bytes = read_file(path);
  std::remove(path.c_str());
  return util::fnv1a64(bytes.data(), bytes.size());
}

TEST(CapGolden, FormatDigestIsPinned) {
  const std::uint64_t digest = golden_stream_digest(cap::kFormatVersion);
  EXPECT_EQ(digest, kGoldenFormatDigest)
      << "on-disk format changed: bump cap::kFormatVersion and update "
         "this digest (got 0x" << std::hex << digest << ")";
}

// The version-1 encoder must keep producing the exact byte stream pre-NR
// builds wrote: old readers and archived traces depend on it.
TEST(CapGolden, V1FormatDigestIsPinned) {
  const std::uint64_t digest = golden_stream_digest(1);
  EXPECT_EQ(digest, kGoldenV1FormatDigest)
      << "the version-1 stream regressed (got 0x" << std::hex << digest
      << ") - v1 is frozen; only the current version may change";
}

// --- trace surgery (cut / merge / verify) --------------------------------

std::vector<cap::Record> read_all(const std::string& path) {
  cap::TraceReader reader(path);
  EXPECT_TRUE(reader.ok()) << reader.error();
  std::vector<cap::Record> recs;
  cap::Record rec;
  while (reader.next(rec)) recs.push_back(rec);
  EXPECT_TRUE(reader.ok()) << reader.error();
  return recs;
}

TEST(CapTools, CutThenMergeReassemblesTheStream) {
  const auto full = tmp_path("surgery_full.pbt");
  const auto lo = tmp_path("surgery_lo.pbt");
  const auto hi = tmp_path("surgery_hi.pbt");
  const auto merged = tmp_path("surgery_merged.pbt");
  valid_trace_bytes(full);

  cap::TraceSummary s;
  std::string err;
  ASSERT_TRUE(cap::verify(full, s, err)) << err;
  const std::int64_t mid = (s.first_sf + s.last_sf) / 2;
  // The synthetic stream's timed records are not bound to the batch range,
  // so span both when slicing.
  const std::int64_t lo_from =
      std::min<std::int64_t>(s.first_sf, util::subframe_index(s.first_t));
  const std::int64_t hi_to =
      std::max<std::int64_t>(s.last_sf, util::subframe_index(s.last_t));

  ASSERT_TRUE(cap::cut(full, lo, lo_from, mid, err)) << err;
  ASSERT_TRUE(cap::cut(full, hi, mid + 1, hi_to, err)) << err;
  ASSERT_TRUE(cap::merge({lo, hi}, merged, err)) << err;

  const auto orig = read_all(full);
  const auto back = read_all(merged);
  ASSERT_EQ(orig.size(), back.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    expect_record_eq(orig[i], back[i]);
  }
  cap::TraceSummary ms;
  ASSERT_TRUE(cap::verify(merged, ms, err)) << err;
  EXPECT_EQ(ms.records, s.records);

  for (const auto& p : {full, lo, hi, merged}) std::remove(p.c_str());
}

TEST(CapTools, MergeRejectsMismatchedHeaders) {
  const auto a = tmp_path("merge_a.pbt");
  const auto b = tmp_path("merge_b.pbt");
  const auto out = tmp_path("merge_out.pbt");
  {
    cap::TraceWriter w(a);
    w.begin(sample_header(false));
    w.record_probe(1000);
    ASSERT_TRUE(w.close());
  }
  {
    cap::TraceWriter w(b);
    w.begin(sample_header(true));  // different config
    w.record_probe(2000);
    ASSERT_TRUE(w.close());
  }
  std::string err;
  EXPECT_FALSE(cap::merge({a, b}, out, err));
  EXPECT_NE(err.find("header"), std::string::npos);
  for (const auto& p : {a, b, out}) std::remove(p.c_str());
}

// --- record → replay fidelity (the tentpole guarantee) -------------------

struct LiveCapture {
  cap::PipelineDigest digest;
  double tput = 0;
  std::uint64_t attempts = 0;
};

LiveCapture record_live(const std::string& profile_name, std::uint64_t seed,
                        const std::string& trace_path,
                        const std::string& algo = "pbe") {
  par::set_default_threads(1);
  auto loc = sim::location(26);  // 3-cell busy indoor
  loc.seed = seed;
  const auto profile = *fault::profile_by_name(profile_name);

  cap::TraceWriter writer(trace_path);
  LiveCapture out;
  sim::CaptureOptions capture{&writer, &out.digest};
  const auto r =
      sim::run_location(loc, algo, 2 * util::kSecond,
                        profile.active() ? &profile : nullptr,
                        /*fault_seed=*/3, capture);
  EXPECT_TRUE(writer.close()) << writer.error();
  out.tput = r.avg_tput_mbps;
  out.attempts = r.decode_candidates;
  return out;
}

cap::PipelineDigest replay_trace(const std::string& trace_path, int threads) {
  par::set_default_threads(threads);
  cap::TraceReader reader(trace_path);
  EXPECT_TRUE(reader.ok()) << reader.error();
  cap::PipelineDigest digest;
  cap::ReplayDriver driver(reader.header(), &digest);
  driver.run(reader);
  EXPECT_TRUE(reader.ok()) << reader.error();
  return digest;
}

class CapFidelityTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  void TearDown() override { par::set_default_threads(1); }
};

TEST_P(CapFidelityTest, ReplayMatchesLivePipelineAtAnyThreadCount) {
  const auto& [profile, seed] = GetParam();
  const auto path = tmp_path("fidelity_" + profile + "_" +
                             std::to_string(seed) + ".pbt");

  const auto live = record_live(profile, seed, path);
  EXPECT_GT(live.digest.observations(), 0u);
  EXPECT_GT(live.digest.probes(), 0u);

  const auto serial = replay_trace(path, 1);
  const auto parallel = replay_trace(path, 8);

  // Field-by-field first so a failure names the divergent stream.
  EXPECT_EQ(live.digest.observations(), serial.observations());
  EXPECT_EQ(live.digest.probes(), serial.probes());
  EXPECT_EQ(live.digest.observation_digest(), serial.observation_digest());
  EXPECT_EQ(live.digest.probe_digest(), serial.probe_digest());
  EXPECT_TRUE(live.digest == serial);
  EXPECT_TRUE(live.digest == parallel);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, CapFidelityTest,
    ::testing::Combine(::testing::Values("none", "blackout", "handover-storm"),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const auto& info) {
      auto name = std::get<0>(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// Hybrid lane: the blended sender shapes the traffic the monitor observes
// (different pacing -> different grants -> different capture stream), so
// its recordings must replay to the same digests too — under the profile
// that swings the blend weight hardest.
TEST(CapFidelity, HybridRecordReplayAcrossThreadCounts) {
  const auto path = tmp_path("fidelity_hybrid.pbt");
  const auto live = record_live("blackout", 2, path, "hybrid");
  EXPECT_GT(live.digest.observations(), 0u);
  EXPECT_GT(live.digest.probes(), 0u);

  const auto serial = replay_trace(path, 1);
  const auto parallel = replay_trace(path, 8);
  par::set_default_threads(1);
  EXPECT_TRUE(live.digest == serial);
  EXPECT_TRUE(live.digest == parallel);
  std::remove(path.c_str());
}

// Capture must be passive: the taps may not perturb the simulation they
// observe. (They only read const channel state and copy pipeline outputs.)
TEST(CapFidelity, RecordingDoesNotPerturbTheRun) {
  par::set_default_threads(1);
  auto loc = sim::location(26);
  loc.seed = 9;

  const auto bare = sim::run_location(loc, "pbe", 2 * util::kSecond);

  const auto path = tmp_path("passive.pbt");
  cap::TraceWriter writer(path);
  cap::PipelineDigest digest;
  sim::CaptureOptions capture{&writer, &digest};
  const auto taped =
      sim::run_location(loc, "pbe", 2 * util::kSecond, nullptr, 1, capture);
  ASSERT_TRUE(writer.close()) << writer.error();

  EXPECT_EQ(bare.avg_tput_mbps, taped.avg_tput_mbps);
  EXPECT_EQ(bare.avg_delay_ms, taped.avg_delay_ms);
  EXPECT_EQ(bare.p95_delay_ms, taped.p95_delay_ms);
  EXPECT_EQ(bare.decode_candidates, taped.decode_candidates);
  std::remove(path.c_str());
}

// A recorded trace must carry the fault schedule: replay reconstructs the
// injector from the header, so header fields are load-bearing.
TEST(CapFidelity, HeaderCarriesTheFaultSchedule) {
  const auto path = tmp_path("faulthdr.pbt");
  record_live("blackout", 1, path);
  cap::TraceReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(reader.header().fault_active);
  EXPECT_EQ(reader.header().fault_seed, 3u);
  EXPECT_EQ(reader.header().cells.size(), 3u);
  EXPECT_EQ(reader.header().own_rnti, 0x101);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pbecc
