// Tests for the paper's §7 extensions and the supporting substrate:
// misreport detection, weighted fairness policies, inter-site handover,
// and the ABC-style explicit-feedback oracle.
#include <gtest/gtest.h>

#include "mac/base_station.h"
#include "mac/scheduler.h"
#include "pbe/misreport_detector.h"
#include "pbe/pbe_sender.h"
#include "sim/scenario.h"
#include "util/stats.h"

namespace pbecc {
namespace {

using util::kMillisecond;
using util::kSecond;

// ------------------------------------------------------ misreport detector

net::AckSample sample(util::Time now, double delivery_rate) {
  net::AckSample s;
  s.now = now;
  s.rtt = 50 * kMillisecond;
  s.acked_bytes = 1500;
  s.delivery_rate = delivery_rate;
  return s;
}

TEST(MisreportDetector, HonestClientNeverFlagged) {
  pbe::MisreportDetector det;
  util::Time t = 0;
  // Reported rate tracks achieved rate within normal noise.
  for (int i = 0; i < 10000; ++i) {
    t += kMillisecond;
    det.on_ack(sample(t, 20e6), 22e6);
    ASSERT_FALSE(det.flagged()) << i;
  }
  EXPECT_NEAR(det.achieved_rate(t), 20e6, 1e5);
}

TEST(MisreportDetector, LiarFlaggedAfterGracePeriod) {
  pbe::MisreportDetector det;
  util::Time t = 0;
  // Claims 100 Mbit/s while the path delivers 20.
  bool flagged_before_deadline = false;
  for (int i = 0; i < 1900; ++i) {
    t += kMillisecond;
    det.on_ack(sample(t, 20e6), 100e6);
    flagged_before_deadline |= det.flagged();
  }
  EXPECT_FALSE(flagged_before_deadline);  // 2 s grace not yet elapsed
  for (int i = 0; i < 300; ++i) {
    t += kMillisecond;
    det.on_ack(sample(t, 20e6), 100e6);
  }
  EXPECT_TRUE(det.flagged());
  // Cap near the achieved rate.
  EXPECT_LT(det.rate_cap(t), 25e6);
}

TEST(MisreportDetector, RecoversWhenHonestyReturns) {
  pbe::MisreportDetector det;
  util::Time t = 0;
  for (int i = 0; i < 3000; ++i) det.on_ack(sample(t += kMillisecond, 20e6), 100e6);
  ASSERT_TRUE(det.flagged());
  // Unflagging is hysteretic: a brief honest spell must NOT clear the flag
  // (a liar could otherwise reset the cap with one honest ack).
  for (int i = 0; i < 100; ++i) det.on_ack(sample(t += kMillisecond, 20e6), 21e6);
  EXPECT_TRUE(det.flagged());
  // Honest for the full flag_after window (2 s default): trust restored.
  for (int i = 0; i < 2000; ++i) det.on_ack(sample(t += kMillisecond, 20e6), 21e6);
  EXPECT_FALSE(det.flagged());
  EXPECT_GT(det.rate_cap(t), 1e12);  // effectively uncapped
}

TEST(MisreportDetector, ReflagsWhenLyingResumes) {
  pbe::MisreportDetector det;
  util::Time t = 0;
  // Flag -> recover -> lie again: the grace period applies afresh each time.
  for (int i = 0; i < 3000; ++i) det.on_ack(sample(t += kMillisecond, 20e6), 100e6);
  ASSERT_TRUE(det.flagged());
  for (int i = 0; i < 2100; ++i) det.on_ack(sample(t += kMillisecond, 20e6), 21e6);
  ASSERT_FALSE(det.flagged());
  bool flagged_early = false;
  for (int i = 0; i < 1900; ++i) {
    det.on_ack(sample(t += kMillisecond, 20e6), 100e6);
    flagged_early |= det.flagged();
  }
  EXPECT_FALSE(flagged_early);
  for (int i = 0; i < 300; ++i) det.on_ack(sample(t += kMillisecond, 20e6), 100e6);
  EXPECT_TRUE(det.flagged());
}

TEST(PbeSenderMisreport, PacingCappedForLiar) {
  pbe::PbeSenderConfig cfg;
  cfg.detect_misreports = true;
  pbe::PbeSender snd{cfg};
  util::Time t = 0;
  for (int i = 0; i < 4000; ++i) {
    t += kMillisecond;
    auto s = sample(t, 10e6);
    // Client advertises 80 Mbit/s.
    s.pbe_rate_interval_us = static_cast<std::uint32_t>(1500.0 * 8.0 / 80e6 * 1e6);
    snd.on_ack(s);
  }
  EXPECT_TRUE(snd.misreport_detector().flagged());
  EXPECT_LT(snd.pacing_rate(t), 15e6);  // ~1.1x achieved, not 80
}

// ------------------------------------------------------- weighted fairness

TEST(WeightedFairShare, SplitsByWeight) {
  mac::FairShareScheduler s;
  std::vector<mac::SchedRequest> reqs = {
      {1, 1 << 20, 1000.0, 3.0},
      {2, 1 << 20, 1000.0, 1.0},
  };
  const auto allocs = s.allocate(80, reqs);
  int got[3] = {};
  for (const auto& a : allocs) got[a.ue] = a.n_prbs;
  EXPECT_NEAR(static_cast<double>(got[1]) / got[2], 3.0, 0.15);
  EXPECT_LE(got[1] + got[2], 80);
  EXPECT_GE(got[1] + got[2], 78);
}

TEST(WeightedFairShare, SurplusFollowsWeights) {
  mac::FairShareScheduler s;
  // The heavy user only wants 10 PRBs; the rest goes to the others in
  // weight proportion.
  std::vector<mac::SchedRequest> reqs = {
      {1, 1250, 1000.0, 10.0},     // demand 10 PRBs
      {2, 1 << 20, 1000.0, 2.0},
      {3, 1 << 20, 1000.0, 1.0},
  };
  const auto allocs = s.allocate(100, reqs);
  int got[4] = {};
  for (const auto& a : allocs) got[a.ue] = a.n_prbs;
  EXPECT_EQ(got[1], 10);
  EXPECT_NEAR(static_cast<double>(got[2]) / got[3], 2.0, 0.2);
}

TEST(WeightedFairShare, EndToEndWeightedShares) {
  // Two saturating users with weights 2:1 on one cell.
  net::EventLoop loop;
  mac::BaseStationConfig bscfg;
  bscfg.control_traffic.users_per_subframe = 0;
  mac::BaseStation bs(loop, {{1, 10.0}}, bscfg);
  std::map<mac::UeId, long> prbs;
  for (mac::UeId id = 1; id <= 2; ++id) {
    mac::UeConfig cfg;
    cfg.id = id;
    cfg.rnti = static_cast<phy::Rnti>(0x100 + id);
    cfg.aggregated_cells = {1};
    cfg.channel.trace = phy::MobilityTrace::stationary(-92);
    cfg.channel.seed = id;
    cfg.scheduling_weight = id == 1 ? 2.0 : 1.0;
    bs.add_ue(cfg, [](net::Packet) {});
  }
  bs.set_allocation_observer([&](const mac::AllocationRecord& r) {
    for (const auto& a : r.data_allocs) prbs[a.ue] += a.n_prbs;
  });
  bs.start();
  for (int ms = 5; ms < 2000; ms += 5) {
    loop.schedule_at(ms * kMillisecond, [&] {
      for (mac::UeId id = 1; id <= 2; ++id) {
        for (int i = 0; i < 20; ++i) {
          net::Packet p;
          p.flow = id;
          bs.enqueue(id, p);
        }
      }
    });
  }
  loop.run_until(2 * kSecond);
  EXPECT_NEAR(static_cast<double>(prbs[1]) / static_cast<double>(prbs[2]),
              2.0, 0.2);
}

// ------------------------------------------------------------- handover

TEST(Handover, FlowSurvivesPrimaryChange) {
  sim::ScenarioConfig cfg;
  cfg.seed = 41;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  // The client is configured with both cells (a phone knows its neighbor
  // list); the network serves cell 1 first, then hands over to cell 2.
  ue.cell_indices = {0, 1};
  s.add_ue(ue);
  sim::FlowSpec fs;
  fs.algo = "pbe";
  fs.stop = 10 * kSecond;
  const int f = s.add_flow(fs);

  s.run_until(5 * kSecond);
  const auto bytes_before = s.stats(f).bytes();
  s.bs().handover(1, {2, 1});  // cell 2 becomes the primary
  s.run_until(10 * kSecond);
  s.stats(f).finish(10 * kSecond);

  // Data kept flowing on the new primary.
  EXPECT_GT(s.stats(f).bytes(), bytes_before + (1 << 20));
  EXPECT_EQ(s.bs().ca(1).active_cells().front(), 2u);
  // The handover transient is bounded (no multi-second stall).
  EXPECT_GT(s.stats(f).avg_tput_mbps(), 20.0);
}

TEST(Handover, RejectsBadTargets) {
  net::EventLoop loop;
  mac::BaseStation bs(loop, {{1, 10.0}}, mac::BaseStationConfig{});
  mac::UeConfig cfg;
  cfg.id = 1;
  cfg.rnti = 0x101;
  cfg.aggregated_cells = {1};
  bs.add_ue(cfg, [](net::Packet) {});
  EXPECT_THROW(bs.handover(1, {}), std::invalid_argument);
  EXPECT_THROW(bs.handover(1, {99}), std::invalid_argument);
}

// ------------------------------------------ explicit feedback (ABC oracle)

TEST(ExplicitFeedback, OracleMatchesCapacity) {
  sim::ScenarioConfig cfg;
  cfg.seed = 43;
  cfg.cells = {{10.0, 0.0}};
  sim::Scenario s{cfg};
  s.add_ue(sim::UeSpec{});
  sim::FlowSpec fs;
  fs.algo = "fixed";
  fs.fixed_rate = 60e6;  // saturate
  fs.stop = 3 * kSecond;
  s.add_flow(fs);
  // Sole saturating user at -92 dBm on a 10 MHz cell: the oracle should
  // report roughly the deliverable goodput (40-65 Mbit/s) on average —
  // sample across shadowing fluctuations.
  util::OnlineStats r;
  for (int ms = 500; ms <= 3000; ms += 100) {
    s.run_until(ms * kMillisecond);
    r.add(s.bs().explicit_rate_bps(1));
  }
  EXPECT_GT(r.mean(), 35e6);
  EXPECT_LT(r.mean(), 70e6);
}

TEST(ExplicitFeedback, AbcFlowTracksOracle) {
  sim::ScenarioConfig cfg;
  cfg.seed = 47;
  cfg.cells = {{10.0, 0.02}};
  sim::Scenario s{cfg};
  s.add_ue(sim::UeSpec{});
  sim::FlowSpec fs;
  fs.algo = "abc";
  fs.stop = 8 * kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop);
  s.stats(f).finish(fs.stop);
  EXPECT_GT(s.stats(f).avg_tput_mbps(), 25.0);
  EXPECT_LT(s.stats(f).p95_delay_ms(), 60.0);
  EXPECT_EQ(s.sender(f).controller().name(), "abc");
}

TEST(ExplicitFeedback, PbeWithinReachOfOracle) {
  // The paper's core claim, quantified: endpoint-side measurement gets
  // within a few percent of what explicit network feedback achieves.
  sim::ScenarioConfig cfg;
  cfg.seed = 53;
  cfg.cells = {{10.0, 0.02}};

  double tput[2];
  int i = 0;
  for (const std::string algo : {"pbe", "abc"}) {
    sim::Scenario s{cfg};
    s.add_ue(sim::UeSpec{});
    sim::FlowSpec fs;
    fs.algo = algo;
    fs.stop = 8 * kSecond;
    const int f = s.add_flow(fs);
    s.run_until(fs.stop);
    s.stats(f).finish(fs.stop);
    tput[i++] = s.stats(f).avg_tput_mbps();
  }
  EXPECT_GT(tput[0], 0.8 * tput[1]) << "pbe=" << tput[0] << " abc=" << tput[1];
}

}  // namespace
}  // namespace pbecc
