// pbecc::bwe unit tests: the delay-gradient estimator that backs both the
// "gcc" baseline and the hybrid PBE sender's sidecar (DESIGN.md §13).
//
//   * TrendlineEstimator on canned inter-arrival patterns — capacity step
//     (queue growth), queue drain, bounded jitter — with convergence
//     bounds on how fast each verdict must land;
//   * AimdRateControl state behaviour: cut basis, hold, clamp, seed,
//     startup grace;
//   * DelayBasedBwe closed-loop convergence against a toy bottleneck;
//   * the 10M-update float-drift regression (DESIGN.md §10 discipline):
//     the trendline's fitted slope must stay within 1e-9 of a brute-force
//     mirror fit after ten million updates of epoch re-anchoring;
//   * DegradationMachine blend-weight hysteresis: bounded confidence noise
//     commits at most one weight move per hold window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "bwe/delay_bwe.h"
#include "pbe/degradation.h"

namespace pbecc::bwe {
namespace {

constexpr util::Time kMs = util::kMillisecond;

// Feed `n` samples at a fixed 5 ms cadence with per-sample delay from `fn`.
template <typename Fn>
util::Time drive(TrendlineEstimator& tr, util::Time start, int n, Fn fn) {
  util::Time t = start;
  for (int i = 0; i < n; ++i, t += 5 * kMs) tr.update(t, fn(i));
  return t;
}

// --- trendline: canned patterns ------------------------------------------

TEST(Trendline, FlatDelayStaysNormal) {
  TrendlineEstimator tr;
  drive(tr, 0, 200, [](int) { return 30.0; });
  EXPECT_EQ(tr.state(), BandwidthUsage::kNormal);
  EXPECT_NEAR(tr.slope(), 0.0, 1e-12);
}

// Capacity step down: delay starts growing ~2 ms per sample (a queue
// building at a saturated bottleneck). The verdict must land within 40
// samples of the onset — 200 ms at this cadence, fast enough that the
// AIMD cuts before the queue doubles the base RTT.
TEST(Trendline, SustainedQueueGrowthIsOveruseWithinBound) {
  TrendlineEstimator tr;
  util::Time t = drive(tr, 0, 60, [](int) { return 30.0; });  // settle
  ASSERT_EQ(tr.state(), BandwidthUsage::kNormal);
  int verdict_at = -1;
  for (int i = 0; i < 80; ++i, t += 5 * kMs) {
    tr.update(t, 30.0 + 2.0 * i);
    if (tr.state() == BandwidthUsage::kOverusing) {
      verdict_at = i;
      break;
    }
  }
  ASSERT_GE(verdict_at, 0) << "never declared overuse";
  EXPECT_LE(verdict_at, 40);
  EXPECT_GT(tr.slope(), 0.0);
}

// Queue drain: delay falling back down reads as underuse (the AIMD holds,
// letting the queue empty instead of re-filling it).
TEST(Trendline, QueueDrainIsUnderuse) {
  TrendlineEstimator tr;
  util::Time t = drive(tr, 0, 60, [](int) { return 130.0; });
  int verdict_at = -1;
  for (int i = 0; i < 80; ++i, t += 5 * kMs) {
    tr.update(t, std::max(30.0, 130.0 - 2.0 * i));
    if (tr.state() == BandwidthUsage::kUnderusing) {
      verdict_at = i;
      break;
    }
  }
  ASSERT_GE(verdict_at, 0) << "never declared underuse";
  EXPECT_LE(verdict_at, 40);
}

// Bounded jitter (deterministic ±3 ms square wave) must not trip overuse:
// the EWMA plus the adaptive threshold absorb zero-mean noise.
TEST(Trendline, BoundedJitterStaysNormal) {
  TrendlineEstimator tr;
  drive(tr, 0, 400, [](int i) { return 30.0 + ((i % 2 == 0) ? 3.0 : -3.0); });
  EXPECT_EQ(tr.state(), BandwidthUsage::kNormal);
}

// The detector must not act on a window still filling: even a steep ramp
// reads kNormal until window_size points have arrived.
TEST(Trendline, NoVerdictBeforeWindowFills) {
  TrendlineConfig cfg;
  TrendlineEstimator tr(cfg);
  util::Time t = 0;
  for (std::size_t i = 0; i + 1 < cfg.window_size; ++i, t += 5 * kMs) {
    tr.update(t, 30.0 + 5.0 * static_cast<double>(i));
    EXPECT_EQ(tr.state(), BandwidthUsage::kNormal) << "point " << i;
  }
}

// The threshold adapts toward |trend|: a sustained in-band excursion pulls
// it up (the link's own noise widens the deadband), a quiet link pulls it
// down to the floor — and reset() must not clear it either way: the noise
// floor survives a feed gap.
TEST(Trendline, ThresholdAdaptsAndSurvivesReset) {
  TrendlineEstimator tr;
  const double initial = tr.threshold_ms();
  // Sustained 0.25 ms/ms ramp: modified trend ~20 ms, above the initial
  // threshold but inside the +15 ms outlier cutoff, so k_up applies.
  drive(tr, 0, 300, [](int i) { return 30.0 + 1.25 * i; });
  EXPECT_GT(tr.threshold_ms(), initial);
  const double adapted = tr.threshold_ms();
  tr.reset();
  EXPECT_EQ(tr.threshold_ms(), adapted);
  EXPECT_EQ(tr.num_points(), 0u);
  EXPECT_EQ(tr.state(), BandwidthUsage::kNormal);

  // Flat delay from here: the threshold decays toward its floor.
  TrendlineEstimator quiet;
  drive(quiet, 0, 600, [](int) { return 30.0; });
  EXPECT_LT(quiet.threshold_ms(), initial);
}

// --- trendline: 10M-update float-drift regression ------------------------

// Brute-force mirror: absolute arrival times, its own EWMA (same formula,
// same order of operations), and a least-squares fit recomputed from
// scratch with times relative to the window head. The estimator re-anchors
// its epoch on every expiry (ten million subtract-and-store cycles); this
// test is the regression net that all that re-anchoring leaves the fitted
// slope within 1e-9 of the exact fit.
struct MirrorFit {
  std::deque<double> t_ms, d_ms;
  double smoothed = 0.0;
  bool have = false;

  void update(double t_abs_ms, double delay_ms, std::size_t window) {
    smoothed = have ? 0.9 * smoothed + 0.1 * delay_ms : delay_ms;
    have = true;
    t_ms.push_back(t_abs_ms);
    d_ms.push_back(smoothed);
    if (t_ms.size() > window) {
      t_ms.pop_front();
      d_ms.pop_front();
    }
  }

  double slope() const {
    const std::size_t n = t_ms.size();
    if (n < 2) return 0.0;
    const double t0 = t_ms.front();
    double sum_t = 0.0, sum_d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum_t += t_ms[i] - t0;
      sum_d += d_ms[i];
    }
    const double mt = sum_t / static_cast<double>(n);
    const double md = sum_d / static_cast<double>(n);
    double cov = 0.0, var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cov += (t_ms[i] - t0 - mt) * (d_ms[i] - md);
      var += (t_ms[i] - t0 - mt) * (t_ms[i] - t0 - mt);
    }
    return var > 0.0 ? cov / var : 0.0;
  }
};

TEST(TrendlineDrift, TenMillionUpdatesStayWithin1e9OfBruteForce) {
  TrendlineConfig cfg;
  TrendlineEstimator tr(cfg);
  MirrorFit mirror;

  constexpr int kUpdates = 10'000'000;
  constexpr int kCheckEvery = 100'000;
  util::Time t = 0;
  double max_err = 0.0;
  for (int i = 0; i < kUpdates; ++i) {
    // Deterministic non-trivial signal: slow delay swell + fast ripple,
    // non-uniform cadence. No RNG — the stream must be reproducible.
    const double delay =
        30.0 + 10.0 * ((i / 1000) % 7) + 2.0 * static_cast<double>(i % 5);
    t += (4 + i % 3) * kMs;
    tr.update(t, delay);
    mirror.update(static_cast<double>(t) / 1000.0, delay, cfg.window_size);
    if ((i + 1) % kCheckEvery == 0) {
      max_err = std::max(max_err, std::abs(tr.slope() - mirror.slope()));
    }
  }
  max_err = std::max(max_err, std::abs(tr.slope() - mirror.slope()));
  EXPECT_LT(max_err, 1e-9) << "slope drifted from the brute-force fit";
}

// --- AIMD ----------------------------------------------------------------

// Grace is measured from the first update() call, so every test that wants
// steady-state behaviour burns it with one update and then jumps the clock.
util::Time past_grace(AimdRateControl& aimd, const AimdConfig& cfg) {
  aimd.update(0, BandwidthUsage::kNormal, 0.0, 40 * kMs);
  return cfg.startup_grace + 100 * kMs;
}

TEST(Aimd, OveruseCutsToBetaTimesAcked) {
  AimdConfig cfg;
  AimdRateControl aimd(cfg, 10e6);
  util::Time t = past_grace(aimd, cfg);
  aimd.update(t, BandwidthUsage::kNormal, 8e6, 40 * kMs);
  t += 100 * kMs;
  const double target =
      aimd.update(t, BandwidthUsage::kOverusing, 8e6, 40 * kMs);
  EXPECT_DOUBLE_EQ(target, cfg.beta * 8e6);
  EXPECT_EQ(aimd.last_decrease(), t);
}

TEST(Aimd, CutsAreRateLimited) {
  AimdConfig cfg;
  AimdRateControl aimd(cfg, 10e6);
  util::Time t = past_grace(aimd, cfg);
  aimd.update(t, BandwidthUsage::kOverusing, 8e6, 40 * kMs);
  const double after_first = aimd.target_bps();
  // A second verdict inside min_decrease_interval must not cut again.
  t += cfg.min_decrease_interval / 2;
  aimd.update(t, BandwidthUsage::kOverusing, 5e6, 40 * kMs);
  EXPECT_DOUBLE_EQ(aimd.target_bps(), after_first);
}

TEST(Aimd, UnderuseHoldsTheRate) {
  AimdConfig cfg;
  AimdRateControl aimd(cfg, 10e6);
  util::Time t = past_grace(aimd, cfg);
  aimd.update(t, BandwidthUsage::kNormal, 9e6, 40 * kMs);
  const double before = aimd.target_bps();
  for (int i = 0; i < 20; ++i) {
    t += 20 * kMs;
    aimd.update(t, BandwidthUsage::kUnderusing, 9e6, 40 * kMs);
  }
  EXPECT_TRUE(aimd.holding());
  EXPECT_DOUBLE_EQ(aimd.target_bps(), before);
}

TEST(Aimd, IncreaseIsClampedToAckedMultiple) {
  AimdConfig cfg;
  AimdRateControl aimd(cfg, 10e6);
  util::Time t = past_grace(aimd, cfg);
  // Many normal verdicts with delivery pinned at 8 Mbit/s: growth may not
  // outrun max_vs_acked x acked.
  for (int i = 0; i < 200; ++i) {
    t += 20 * kMs;
    aimd.update(t, BandwidthUsage::kNormal, 8e6, 40 * kMs);
  }
  EXPECT_LE(aimd.target_bps(), cfg.max_vs_acked * 8e6 * (1.0 + 1e-12));
}

TEST(Aimd, SeedSuspendsTheClampUntilEvidence) {
  AimdConfig cfg;
  AimdRateControl aimd(cfg, 2e6);
  util::Time t = past_grace(aimd, cfg);
  aimd.update(t, BandwidthUsage::kNormal, 2e6, 40 * kMs);
  aimd.seed(20e6);
  EXPECT_DOUBLE_EQ(aimd.target_bps(), 20e6);
  // Next normal verdict with stale acked (2 Mbit/s): a live clamp would
  // snap the target back to 2.5 Mbit/s and the jump-start would be void.
  t += 20 * kMs;
  aimd.update(t, BandwidthUsage::kNormal, 2e6, 40 * kMs);
  EXPECT_GE(aimd.target_bps(), 20e6);
  // ...but an overuse verdict is evidence, and cuts it like any target.
  t += 200 * kMs;
  const double cut = aimd.update(t, BandwidthUsage::kOverusing, 3e6, 40 * kMs);
  EXPECT_DOUBLE_EQ(cut, cfg.beta * 3e6);
}

TEST(Aimd, StartupGraceFloorsAtInitialRate) {
  AimdConfig cfg;
  AimdRateControl aimd(cfg, 5e6);
  // Overuse on the very first verdicts (the startup-burst transient): the
  // target must not dig below the initial rate, and the capacity tracker
  // must not learn the bogus basis.
  util::Time t = 10 * kMs;
  for (int i = 0; i < 3; ++i) {
    t += cfg.min_decrease_interval + 10 * kMs;
    aimd.update(t, BandwidthUsage::kOverusing, 0.2e6, 40 * kMs);
  }
  EXPECT_GE(aimd.target_bps(), 5e6);
  EXPECT_FALSE(aimd.link_capacity().has_estimate());
}

// --- DelayBasedBwe: closed-loop convergence ------------------------------

// Toy bottleneck: serves `capacity` bps; pacing above it builds queue at
// the excess rate, below it drains. Delivery tracks min(target, capacity).
// Drives the full estimator (trendline -> AIMD -> sparse cap) through the
// ACK interface exactly as a flow driver would.
struct ToyLink {
  double capacity;
  double queue_ms = 0.0;

  net::AckSample ack(util::Time now, double paced_bps, double dt_s) {
    const double served = std::min(paced_bps, capacity);
    queue_ms += (paced_bps - capacity) / capacity * dt_s * 1e3;
    queue_ms = std::max(queue_ms, 0.0);
    net::AckSample s;
    s.now = now;
    s.one_way_delay =
        static_cast<util::Duration>((20.0 + queue_ms) * 1000.0);
    s.rtt = 2 * s.one_way_delay;
    s.delivery_rate = served;
    return s;
  }
};

double converge(DelayBasedBwe& bwe, ToyLink& link, util::Time from,
                util::Time until) {
  constexpr util::Time kDt = 5 * kMs;
  for (util::Time t = from; t < until; t += kDt) {
    bwe.on_ack(link.ack(t, bwe.target_bps(),
                        static_cast<double>(kDt) / 1e6));
  }
  return bwe.target_bps();
}

TEST(DelayBwe, ConvergesUpToCapacity) {
  DelayBasedBwe bwe;  // initial 2 Mbit/s
  ToyLink link{12e6};
  const double target = converge(bwe, link, 0, 6 * util::kSecond);
  // Converged into the AIMD's operating band around capacity: above the
  // post-cut floor (beta x capacity, minus margin), below the probing
  // ceiling (max_vs_acked x capacity).
  EXPECT_GE(target, 0.8 * 12e6);
  EXPECT_LE(target, 1.3 * 12e6);
}

// Capacity step down. Two properties, each the regression net for a real
// failure mode:
//   * the target must re-converge near the new capacity. Before the
//     max_decrease_interval clamp this spiralled: the queue built by the
//     overshoot inflated the RTT (and with it the cut spacing) faster
//     than wall time passed, so no cut ever landed and the target stayed
//     at the old capacity while the queue grew at ~2 s of delay per
//     second of wall time;
//   * any residual queue creep must stay under the trendline's detection
//     floor. A gradient detector cannot see overshoot below
//     min_threshold / (gain x window) ~ 7.5% of capacity, so a small
//     standing-queue creep is inherent to this estimator class (the
//     hybrid's RTT-level re-seed gate exists because of exactly this) —
//     but it must be that floor, not a runaway.
TEST(DelayBwe, TracksACapacityDrop) {
  DelayBasedBwe bwe;
  ToyLink link{12e6};
  converge(bwe, link, 0, 6 * util::kSecond);
  link.capacity = 4e6;  // step down
  converge(bwe, link, 6 * util::kSecond, 9 * util::kSecond);  // settle
  const double queue_settled = link.queue_ms;
  const double target =
      converge(bwe, link, 9 * util::kSecond, 22 * util::kSecond);
  EXPECT_GE(target, 0.7 * 4e6);
  EXPECT_LE(target, 1.15 * 4e6);
  const double creep_ms_per_s = (link.queue_ms - queue_settled) / 13.0;
  EXPECT_LT(creep_ms_per_s, 60.0) << "queue creep above the detection floor";
}

TEST(DelayBwe, TracksACapacityRaise) {
  DelayBasedBwe bwe;
  ToyLink link{4e6};
  converge(bwe, link, 0, 6 * util::kSecond);
  link.capacity = 12e6;
  const double target =
      converge(bwe, link, 6 * util::kSecond, 14 * util::kSecond);
  EXPECT_GE(target, 0.8 * 12e6);
}

// The regression ISSUE 9 satellite 1 pins: a canned persistent +7.5%
// overshoot. With max_vs_acked = 1.075 the AIMD's probing ceiling paces
// 7.5% over capacity forever once the queue is standing (acked ==
// capacity), writing an OWD slope of 0.075 ms/ms. The trendline's
// modified trend is 0.075 x 20 (window) x 4 (gain) = 6.0 — exactly its
// min threshold, and the comparison is strict — so gradient detection
// NEVER fires and the queue grows ~75 ms of delay per second, unbounded.
// The standing-queue level detector must catch this by OWD level alone,
// with no hybrid/PBE assistance: sustained excess over the windowed-min
// base forces an AIMD cut, and the latch caps probing at the acked rate
// until the queue demonstrably drains. The result is a bounded sawtooth.
TEST(DelayBwe, StandingQueueLevelDetectorBoundsSubThresholdOvershoot) {
  DelayBasedBweConfig cfg;
  cfg.aimd.max_vs_acked = 1.075;
  DelayBasedBweConfig blind = cfg;
  blind.level_threshold_ms = 0;  // detector disabled: the counterfactual

  DelayBasedBwe bwe(cfg);
  DelayBasedBwe off(blind);
  ToyLink link{10e6};
  ToyLink link_off{10e6};
  constexpr util::Time kDt = 5 * kMs;
  constexpr util::Time kEnd = 30 * util::kSecond;
  double peak_tail_ms = 0;  // worst queue depth over the final 5 s
  for (util::Time t = 0; t < kEnd; t += kDt) {
    bwe.on_ack(link.ack(t, bwe.target_bps(), 5e-3));
    off.on_ack(link_off.ack(t, off.target_bps(), 5e-3));
    if (t >= kEnd - 5 * util::kSecond) {
      peak_tail_ms = std::max(peak_tail_ms, link.queue_ms);
    }
  }
  // Counterfactual first: with the detector off, the overshoot really is
  // invisible to the trendline and the queue runs away.
  EXPECT_GT(link_off.queue_ms, 500.0);
  // The detector fired...
  EXPECT_GT(bwe.level_trips(), 0u);
  // ...and the steady state is a bounded standing queue, not a runaway.
  EXPECT_LT(peak_tail_ms, 120.0);
  EXPECT_LT(link.queue_ms, 120.0);
}

TEST(DelayBwe, SilenceResetsTheTrendlineWindow) {
  DelayBasedBwe bwe;
  ToyLink link{8e6};
  converge(bwe, link, 0, 2 * util::kSecond);
  ASSERT_GT(bwe.trendline().num_points(), 0u);
  // A gap longer than silence_reset: the next ACK arrives to an empty
  // window (plus its own fresh point).
  net::AckSample s = link.ack(3 * util::kSecond, bwe.target_bps(), 0.005);
  bwe.on_ack(s);
  EXPECT_EQ(bwe.trendline().num_points(), 1u);
}

TEST(DelayBwe, SeedLiftsTheTargetImmediately) {
  DelayBasedBwe bwe;
  EXPECT_LT(bwe.target_bps(), 10e6);
  bwe.seed_target(10e6);
  EXPECT_DOUBLE_EQ(bwe.target_bps(), 10e6);
}

// --- blend-weight hysteresis (DegradationMachine) ------------------------

// Property: bounded confidence noise commits at most one weight move per
// hold window — i.e. consecutive committed-weight changes are at least
// `hold` apart, for any noise sequence inside the deadband-scale band.
TEST(BlendHysteresis, AtMostOneWeightMovePerHoldWindow) {
  pbe::DegradationConfig cfg;
  cfg.blend.enabled = true;
  pbe::DegradationMachine m(cfg);

  // Confidence oscillating across the whole trust ramp: raw targets swing
  // well past the deadband, so an unhysteresed weight would flip on nearly
  // every feedback.
  std::vector<util::Time> commits;
  double prev_w = m.phy_weight();
  // Deterministic pseudo-noise: i*7919 mod 101 spans [0,100] uniformly.
  for (int i = 0; i < 1000; ++i) {
    const util::Time t = i * 10 * kMs;
    const double noise = static_cast<double>((i * 7919) % 101) / 100.0;
    const double conf =
        cfg.blend.zero_trust_below +
        noise * (cfg.blend.full_trust_above - cfg.blend.zero_trust_below);
    m.on_feedback(t, conf);
    m.on_estimates(t, 10e6, 10e6, 10e6, 10e6, false);
    if (m.phy_weight() != prev_w) {
      commits.push_back(t);
      prev_w = m.phy_weight();
    }
  }
  ASSERT_GT(commits.size(), 1u) << "weight never moved — test is vacuous";
  for (std::size_t i = 1; i < commits.size(); ++i) {
    EXPECT_GE(commits[i] - commits[i - 1], cfg.blend.hold)
        << "two weight commits inside one hold window (commits " << i - 1
        << " and " << i << ")";
  }
}

// Small oscillations inside the deadband must never move the weight at
// all, no matter how long they persist.
TEST(BlendHysteresis, DeadbandAbsorbsSmallOscillation) {
  pbe::DegradationConfig cfg;
  cfg.blend.enabled = true;
  pbe::DegradationMachine m(cfg);
  // Center of the ramp, wobble worth ~half the deadband in weight terms.
  const double mid =
      0.5 * (cfg.blend.zero_trust_below + cfg.blend.full_trust_above);
  const double span = cfg.blend.full_trust_above - cfg.blend.zero_trust_below;
  const double wobble = 0.4 * cfg.blend.deadband * span;
  m.on_feedback(0, mid);
  m.on_estimates(0, 10e6, 10e6, 10e6, 10e6, false);
  // Let the first commit land, then wobble.
  m.on_feedback(cfg.blend.hold + 10 * kMs, mid);
  m.on_estimates(cfg.blend.hold + 10 * kMs, 10e6, 10e6, 10e6, 10e6, false);
  const double committed = m.phy_weight();
  for (int i = 0; i < 500; ++i) {
    const util::Time t = cfg.blend.hold + (20 + i * 10) * kMs;
    const double conf = mid + ((i % 2 == 0) ? wobble : -wobble);
    m.on_feedback(t, conf);
    m.on_estimates(t, 10e6, 10e6, 10e6, 10e6, false);
    ASSERT_EQ(m.phy_weight(), committed) << "iteration " << i;
  }
}

}  // namespace
}  // namespace pbecc::bwe
