// Fault injection and graceful degradation (DESIGN.md §8): the
// deterministic injector, the three-state degradation machine, the
// sender's hold-and-decay / fallback behaviour, the monitor's decode
// accounting, the client confidence score, and end-to-end recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "decoder/monitor.h"
#include "fault/fault.h"
#include "net/congestion_controller.h"
#include "obs/obs.h"
#include "pbe/degradation.h"
#include "pbe/pbe_client.h"
#include "pbe/pbe_sender.h"
#include "phy/pdcch.h"
#include "sim/location.h"
#include "sim/scenario.h"

namespace pbecc {
namespace {

using pbe::DegradationState;

// ------------------------------------------------- FaultInjector basics

fault::FaultProfile busy_profile() {
  fault::FaultProfile p;
  p.blackout_duty = 0.5;
  p.sinr_collapse_per_sec = 2.0;
  p.false_dci_per_subframe = 0.5;
  p.stall_duty = 0.25;
  p.feedback_loss = 0.3;
  p.feedback_corrupt = 0.3;
  p.feedback_delay_spike = 100 * util::kMillisecond;
  p.feedback_spike_duty = 0.25;
  p.handover_storm_duty = 0.5;
  return p;
}

TEST(FaultInjector, SameSeedSameScheduleAnyQueryOrder) {
  const auto p = busy_profile();
  fault::FaultInjector a{p, 42};
  fault::FaultInjector b{p, 42};
  fault::FaultInjector c{p, 43};

  // Record every query family forward from `a`, backward from `b`: a
  // stateless injector must not care about query order.
  struct Probe {
    bool blackout, stalled, storm, drop, corrupt;
    double ber;
    int false_dcis;
    util::Duration delay;
    std::uint32_t word;
  };
  const auto probe = [](const fault::FaultInjector& inj, std::int64_t sf) {
    const util::Time t = sf * util::kSubframe;
    const auto f = inj.feedback_fault(t, 1, static_cast<std::uint64_t>(sf));
    return Probe{inj.dci_blackout(t, 1),
                 inj.monitor_stalled(t),
                 inj.handover_storm(t),
                 f.drop,
                 f.corrupt,
                 inj.extra_control_ber(t, 1),
                 inj.false_dci_count(sf, 1),
                 f.extra_delay,
                 inj.corrupt_word(600, 1, static_cast<std::uint64_t>(sf))};
  };

  constexpr std::int64_t kSubframes = 3000;
  std::vector<Probe> fwd, bwd, other;
  for (std::int64_t sf = 0; sf < kSubframes; ++sf) fwd.push_back(probe(a, sf));
  for (std::int64_t sf = kSubframes - 1; sf >= 0; --sf) {
    bwd.push_back(probe(b, sf));
  }
  std::reverse(bwd.begin(), bwd.end());
  for (std::int64_t sf = 0; sf < kSubframes; ++sf) other.push_back(probe(c, sf));

  int seed_diffs = 0;
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    ASSERT_EQ(fwd[i].blackout, bwd[i].blackout) << i;
    ASSERT_EQ(fwd[i].stalled, bwd[i].stalled) << i;
    ASSERT_EQ(fwd[i].storm, bwd[i].storm) << i;
    ASSERT_EQ(fwd[i].drop, bwd[i].drop) << i;
    ASSERT_EQ(fwd[i].corrupt, bwd[i].corrupt) << i;
    ASSERT_EQ(fwd[i].ber, bwd[i].ber) << i;
    ASSERT_EQ(fwd[i].false_dcis, bwd[i].false_dcis) << i;
    ASSERT_EQ(fwd[i].delay, bwd[i].delay) << i;
    ASSERT_EQ(fwd[i].word, bwd[i].word) << i;
    seed_diffs += fwd[i].drop != other[i].drop ||
                  fwd[i].ber != other[i].ber ||
                  fwd[i].false_dcis != other[i].false_dcis ||
                  fwd[i].word != other[i].word;
  }
  // A different seed must yield a genuinely different schedule.
  EXPECT_GT(seed_diffs, 0);
}

TEST(FaultInjector, BlackoutWindowsBoundedAndDutyCycled) {
  fault::FaultProfile p;
  p.blackout_duty = 0.5;
  p.blackout_period = util::kSecond;
  p.blackout_from = 2 * util::kSecond;
  p.blackout_until = 6 * util::kSecond;
  fault::FaultInjector inj{p, 1};

  EXPECT_FALSE(inj.dci_blackout(0, 1));
  EXPECT_FALSE(inj.dci_blackout(2 * util::kSecond - 1, 1));
  // Windows are anchored at blackout_from: the outage starts exactly there.
  EXPECT_TRUE(inj.dci_blackout(2 * util::kSecond, 1));
  EXPECT_TRUE(inj.dci_blackout(2 * util::kSecond + 499 * util::kMillisecond, 1));
  EXPECT_FALSE(inj.dci_blackout(2 * util::kSecond + 500 * util::kMillisecond, 1));
  EXPECT_TRUE(inj.dci_blackout(3 * util::kSecond, 1));
  EXPECT_FALSE(inj.dci_blackout(6 * util::kSecond, 1));
  EXPECT_FALSE(inj.dci_blackout(10 * util::kSecond, 1));

  int on = 0;
  for (util::Time t = 2 * util::kSecond; t < 6 * util::kSecond;
       t += util::kMillisecond) {
    on += inj.dci_blackout(t, 1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(on) / 4000.0, 0.5, 0.01);
}

TEST(FaultInjector, CorruptWordNeverIdentityNorZero) {
  fault::FaultInjector inj{busy_profile(), 9};
  for (const std::uint32_t word : {0u, 1u, 600u, 0xFFFFFFFFu}) {
    for (std::uint64_t seq = 0; seq < 500; ++seq) {
      const auto garbled = inj.corrupt_word(word, 3, seq);
      EXPECT_NE(garbled, word);
      EXPECT_NE(garbled, 0u);
    }
  }
}

TEST(FaultInjector, FalseDcisArePlausibleAndRecurring) {
  fault::FaultProfile p;
  p.false_dci_per_subframe = 1.5;
  fault::FaultInjector inj{p, 4};
  constexpr int kCellPrbs = 50;
  int total = 0;
  std::vector<phy::Rnti> rntis;
  for (std::int64_t sf = 0; sf < 4000; ++sf) {
    const int n = inj.false_dci_count(sf, 1);
    ASSERT_GE(n, 1);
    ASSERT_LE(n, 2);
    total += n;
    for (int k = 0; k < n; ++k) {
      const auto d = inj.make_false_dci(sf, 1, kCellPrbs, k);
      EXPECT_GE(d.n_prbs, 1);
      EXPECT_LE(d.prb_start + d.n_prbs, kCellPrbs);
      EXPECT_GE(d.rnti, 0xF000);
      rntis.push_back(d.rnti);
    }
  }
  EXPECT_NEAR(static_cast<double>(total) / 4000.0, 1.5, 0.05);
  // CRC aliasing clusters on a small recurring pool, not fresh RNTIs.
  std::sort(rntis.begin(), rntis.end());
  rntis.erase(std::unique(rntis.begin(), rntis.end()), rntis.end());
  EXPECT_LE(rntis.size(), 4u);
}

// ------------------------------------------------- DegradationMachine

TEST(DegradationMachine, InertUntilFirstFeedback) {
  pbe::DegradationMachine m;
  EXPECT_FALSE(m.engaged());
  // Hours of silence before the first feedback must not degrade anything:
  // the connection simply has not heard from its client yet.
  m.advance(3600 * util::kSecond);
  EXPECT_EQ(m.state(), DegradationState::kPrecise);
  m.on_feedback(3600 * util::kSecond, 1.0);
  EXPECT_TRUE(m.engaged());
  EXPECT_EQ(m.state(), DegradationState::kPrecise);
}

TEST(DegradationMachine, LowConfidenceDegradesImmediately) {
  pbe::DegradationMachine m;
  m.on_feedback(0, 1.0);
  EXPECT_EQ(m.state(), DegradationState::kPrecise);
  m.on_feedback(10 * util::kMillisecond, 0.3);
  EXPECT_EQ(m.state(), DegradationState::kDegraded);
}

TEST(DegradationMachine, MidBandHoldsEitherState) {
  const pbe::DegradationConfig cfg;
  const double mid = (cfg.degrade_below + cfg.recover_above) / 2;

  pbe::DegradationMachine precise;
  precise.on_feedback(0, 1.0);
  for (util::Time t = 0; t < util::kSecond; t += 10 * util::kMillisecond) {
    precise.on_feedback(t, mid);
    ASSERT_EQ(precise.state(), DegradationState::kPrecise) << t;
  }

  pbe::DegradationMachine degraded;
  degraded.on_feedback(0, 1.0);
  degraded.on_feedback(10 * util::kMillisecond, 0.3);
  ASSERT_EQ(degraded.state(), DegradationState::kDegraded);
  // Mid-band confidence neither recovers nor escalates to FALLBACK, no
  // matter how long it persists.
  for (util::Time t = 20 * util::kMillisecond; t < util::kSecond;
       t += 10 * util::kMillisecond) {
    degraded.on_feedback(t, mid);
    ASSERT_EQ(degraded.state(), DegradationState::kDegraded) << t;
  }
}

TEST(DegradationMachine, EscalatesToFallbackAfterContinuousIllHealth) {
  const pbe::DegradationConfig cfg;
  pbe::DegradationMachine m{cfg};
  m.on_feedback(0, 1.0);
  util::Time t = 0;
  while (m.state() != DegradationState::kFallback && t < 2 * util::kSecond) {
    t += 10 * util::kMillisecond;
    m.on_feedback(t, 0.2);
  }
  EXPECT_EQ(m.state(), DegradationState::kFallback);
  // DEGRADED fires on the first bad word; FALLBACK needs fallback_after of
  // continuous ill health on top.
  EXPECT_GE(t, cfg.fallback_after);
  EXPECT_LE(t, cfg.fallback_after + 30 * util::kMillisecond);
}

TEST(DegradationMachine, SilenceTripsTheWatchdog) {
  const pbe::DegradationConfig cfg;
  pbe::DegradationMachine m{cfg};
  m.on_feedback(0, 1.0);
  // Feedback stops entirely; only the clock advances (sends / bare acks).
  m.advance(cfg.feedback_timeout);
  EXPECT_EQ(m.state(), DegradationState::kPrecise);  // exactly at the edge
  m.advance(cfg.feedback_timeout + 10 * util::kMillisecond);
  EXPECT_EQ(m.state(), DegradationState::kDegraded);
  m.advance(cfg.feedback_timeout + cfg.fallback_after +
            20 * util::kMillisecond);
  EXPECT_EQ(m.state(), DegradationState::kFallback);
}

TEST(DegradationMachine, RecoveryRequiresContinuousHealth) {
  const pbe::DegradationConfig cfg;
  pbe::DegradationMachine m{cfg};
  m.on_feedback(0, 0.2);
  m.on_feedback(cfg.fallback_after + 10 * util::kMillisecond, 0.2);
  ASSERT_EQ(m.state(), DegradationState::kFallback);

  // Healthy feedback resumes at t0 — but flickers mid-band at t0+60 ms,
  // which must restart the recover_hold clock.
  const util::Time t0 = util::kSecond;
  m.on_feedback(t0, 0.9);
  m.on_feedback(t0 + 50 * util::kMillisecond, 0.9);
  ASSERT_EQ(m.state(), DegradationState::kFallback);
  m.on_feedback(t0 + 60 * util::kMillisecond, 0.65);  // mid-band flicker
  m.on_feedback(t0 + 70 * util::kMillisecond, 0.9);
  m.on_feedback(t0 + 160 * util::kMillisecond, 0.9);  // only 90 ms continuous
  EXPECT_EQ(m.state(), DegradationState::kFallback);
  m.on_feedback(t0 + 70 * util::kMillisecond + cfg.recover_hold, 0.9);
  EXPECT_EQ(m.state(), DegradationState::kPrecise);
}

TEST(DegradationMachine, TransitionHookSeesEveryState) {
  pbe::DegradationMachine m;
  std::vector<std::pair<DegradationState, DegradationState>> switches;
  m.set_transition_hook([&](util::Time, DegradationState from,
                            DegradationState to) {
    switches.emplace_back(from, to);
    EXPECT_EQ(m.state(), to);  // hook fires after the state updates
  });
  m.on_feedback(0, 1.0);
  util::Time t = 0;
  while (m.state() != DegradationState::kFallback) {
    t += 10 * util::kMillisecond;
    m.on_feedback(t, 0.2);
  }
  while (m.state() != DegradationState::kPrecise) {
    t += 10 * util::kMillisecond;
    m.on_feedback(t, 0.95);
  }
  const std::vector<std::pair<DegradationState, DegradationState>> expected = {
      {DegradationState::kPrecise, DegradationState::kDegraded},
      {DegradationState::kDegraded, DegradationState::kFallback},
      {DegradationState::kFallback, DegradationState::kPrecise},
  };
  EXPECT_EQ(switches, expected);
}

// ------------------------------------------------- PbeSender degradation

net::AckSample good_ack(util::Time now, std::uint64_t seq, double rate_bps,
                        std::uint8_t conf = 255) {
  net::AckSample s;
  s.now = now;
  s.seq = seq;
  s.acked_bytes = net::kDefaultMss;
  s.rtt = 40 * util::kMillisecond;
  s.one_way_delay = 20 * util::kMillisecond;
  s.delivery_rate = rate_bps;
  s.pbe_rate_interval_us = static_cast<std::uint32_t>(
      static_cast<double>(net::kDefaultMss) * 8.0 / rate_bps * 1e6);
  s.pbe_confidence = conf;
  return s;
}

TEST(PbeSenderFault, DegradesDecaysThenFallsBackAndRecovers) {
  pbe::PbeSender sender;
  constexpr double kRate = 20e6;
  util::Time t = 0;
  std::uint64_t seq = 0;
  for (; t < 500 * util::kMillisecond; t += 10 * util::kMillisecond) {
    sender.on_ack(good_ack(t, seq++, kRate));
  }
  ASSERT_EQ(sender.degradation_state(), DegradationState::kPrecise);
  EXPECT_NEAR(sender.pacing_rate(t), kRate, kRate * 0.05);

  // Client confidence collapses: one low-confidence word degrades.
  sender.on_ack(good_ack(t, seq++, kRate, /*conf=*/40));
  ASSERT_EQ(sender.degradation_state(), DegradationState::kDegraded);

  // DEGRADED paces at the held rate and halves it every hold_half_life.
  const double r0 = sender.pacing_rate(t);
  EXPECT_NEAR(r0, kRate, kRate * 0.05);
  const auto half_life = sender.degradation().config().hold_half_life;
  EXPECT_NEAR(sender.pacing_rate(t + half_life), r0 / 2, r0 * 0.05);
  EXPECT_NEAR(sender.pacing_rate(t + 2 * half_life), r0 / 4, r0 * 0.05);

  // Sustained low confidence escalates to FALLBACK: a plain BBR paces.
  const util::Time degrade_at = t;
  while (sender.degradation_state() != DegradationState::kFallback &&
         t < degrade_at + util::kSecond) {
    t += 10 * util::kMillisecond;
    sender.on_ack(good_ack(t, seq++, kRate, /*conf=*/40));
  }
  ASSERT_EQ(sender.degradation_state(), DegradationState::kFallback);
  EXPECT_FALSE(sender.in_internet_mode());
  EXPECT_GT(sender.pacing_rate(t), 0.0);

  // Internet-mode switching is ignored while the feedback is untrusted.
  auto internet = good_ack(t + 10 * util::kMillisecond, seq++, kRate, 40);
  internet.pbe_internet_bottleneck = true;
  sender.on_ack(internet);
  EXPECT_FALSE(sender.in_internet_mode());

  // The feed heals: healthy words recover PRECISE and pacing returns to
  // exactly the reported rate.
  const util::Time heal_at = t;
  while (sender.degradation_state() != DegradationState::kPrecise &&
         t < heal_at + util::kSecond) {
    t += 10 * util::kMillisecond;
    sender.on_ack(good_ack(t, seq++, kRate));
  }
  ASSERT_EQ(sender.degradation_state(), DegradationState::kPrecise);
  EXPECT_LE(t - heal_at, 200 * util::kMillisecond);
  EXPECT_NEAR(sender.pacing_rate(t), kRate, kRate * 0.05);
}

TEST(PbeSenderFault, ImplausibleFeedbackWordIsRejected) {
  pbe::PbeSender sender;
  constexpr double kRate = 20e6;
  util::Time t = 0;
  std::uint64_t seq = 0;
  for (; t < 300 * util::kMillisecond; t += 10 * util::kMillisecond) {
    sender.on_ack(good_ack(t, seq++, kRate));
  }
  ASSERT_NEAR(sender.feedback_rate(), kRate, 1.0);
  ASSERT_DOUBLE_EQ(sender.misreport_detector().plausibility(), 1.0);

  // A corrupted word decoding to 12 Gbps must not steer pacing.
  auto garbled = good_ack(t, seq++, kRate);
  garbled.pbe_rate_interval_us = 1;
  sender.on_ack(garbled);
  EXPECT_NEAR(sender.feedback_rate(), kRate, 1.0);
  EXPECT_LT(sender.misreport_detector().plausibility(), 1.0);
  EXPECT_EQ(sender.degradation_state(), DegradationState::kPrecise);
}

TEST(PbeSenderFault, SustainedCorruptionDragsConfidenceDown) {
  pbe::PbeSender sender;
  constexpr double kRate = 20e6;
  util::Time t = 0;
  std::uint64_t seq = 0;
  for (; t < 300 * util::kMillisecond; t += 10 * util::kMillisecond) {
    sender.on_ack(good_ack(t, seq++, kRate));
  }
  ASSERT_EQ(sender.degradation_state(), DegradationState::kPrecise);

  // Three of four words garbled: the plausibility EWMA sinks until even
  // the intact words (carrying full client confidence) stop being trusted.
  int rounds = 0;
  while (sender.degradation_state() == DegradationState::kPrecise &&
         rounds < 200) {
    for (int k = 0; k < 3; ++k) {
      t += 10 * util::kMillisecond;
      auto garbled = good_ack(t, seq++, kRate);
      garbled.pbe_rate_interval_us = 1;
      sender.on_ack(garbled);
    }
    t += 10 * util::kMillisecond;
    sender.on_ack(good_ack(t, seq++, kRate));
    ++rounds;
  }
  EXPECT_NE(sender.degradation_state(), DegradationState::kPrecise);
  EXPECT_LT(sender.misreport_detector().plausibility(), 0.55);
}

TEST(PbeSenderFault, TotalSilenceFallsBackViaSends) {
  pbe::PbeSender sender;
  constexpr double kRate = 20e6;
  util::Time t = 0;
  std::uint64_t seq = 0;
  for (; t < 200 * util::kMillisecond; t += 10 * util::kMillisecond) {
    sender.on_ack(good_ack(t, seq++, kRate));
  }
  ASSERT_EQ(sender.degradation_state(), DegradationState::kPrecise);

  // Feedback stops dead (e.g. the ACK path drops everything). Sends are
  // the only clock the watchdog has left.
  net::Packet pkt;
  bool saw_degraded = false;
  for (; t < util::kSecond; t += 10 * util::kMillisecond) {
    sender.on_packet_sent(t, pkt, 0);
    saw_degraded |= sender.degradation_state() == DegradationState::kDegraded;
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_EQ(sender.degradation_state(), DegradationState::kFallback);
}

// ------------------------------------------------- Monitor accounting

struct MonitorHarness {
  phy::CellConfig cell{1, 10.0};
  std::vector<decoder::CellObservation> last;
  decoder::Monitor mon;
  std::int64_t sf = 0;

  explicit MonitorHarness(const fault::FaultInjector* faults = nullptr)
      : mon(0x100, {cell},
            [this](const std::vector<decoder::CellObservation>& obs) {
              last = obs;
            },
            {}, {}, 99, faults) {}

  // Feed one subframe carrying our grant; returns that subframe's start
  // time (the instant the monitor accounted it).
  util::Time step() {
    phy::PdcchBuilder b(cell, sf);
    phy::Dci d;
    d.rnti = 0x100;
    d.format = phy::DciFormat::kFormat1;
    d.n_prbs = 4;
    d.mcs = {11, 1};
    b.add(d, 1);
    mon.on_pdcch(std::move(b).build());
    return (sf++) * util::kSubframe;
  }
};

TEST(MonitorFault, CleanFeedScoresFullRate) {
  MonitorHarness h;
  util::Time now = 0;
  for (int i = 0; i < 300; ++i) now = h.step();
  EXPECT_DOUBLE_EQ(h.mon.decode_success_rate(now), 1.0);
  EXPECT_EQ(h.mon.decode_failures(), 0u);
  EXPECT_EQ(h.mon.decode_attempts(), 300u);
}

TEST(MonitorFault, BlackoutDecaysRateMonotonically) {
  fault::FaultProfile p;
  p.blackout_duty = 1.0;
  p.blackout_from = 100 * util::kMillisecond;
  fault::FaultInjector inj{p, 2};
  MonitorHarness h{&inj};

  util::Time now = 0;
  for (int i = 0; i < 100; ++i) now = h.step();
  ASSERT_DOUBLE_EQ(h.mon.decode_success_rate(now), 1.0);

  // Every subframe from here on fails to decode: the success rate must
  // fall monotonically toward zero — this is what feeds the client
  // confidence score, so it may never bounce.
  double prev = 1.0;
  for (int i = 0; i < 300; ++i) {
    now = h.step();
    const double rate = h.mon.decode_success_rate(now);
    ASSERT_LE(rate, prev + 1e-9) << "subframe " << i;
    prev = rate;
  }
  EXPECT_LE(prev, 0.05);
  EXPECT_GE(h.mon.decode_failures(), 290u);
}

TEST(MonitorFault, HalfDutyScoresHalfRate) {
  fault::FaultProfile p;
  p.blackout_duty = 0.5;
  p.blackout_period = 100 * util::kMillisecond;
  fault::FaultInjector inj{p, 2};
  MonitorHarness h{&inj};
  util::Time now = 0;
  for (int i = 0; i < 600; ++i) now = h.step();
  EXPECT_NEAR(h.mon.decode_success_rate(now), 0.5, 0.15);
}

TEST(MonitorFault, RateRecoversWhenBlackoutEnds) {
  fault::FaultProfile p;
  p.blackout_duty = 1.0;
  p.blackout_from = 0;
  p.blackout_until = 300 * util::kMillisecond;
  fault::FaultInjector inj{p, 2};
  MonitorHarness h{&inj};
  util::Time now = 0;
  for (int i = 0; i < 300; ++i) now = h.step();
  ASSERT_LE(h.mon.decode_success_rate(now), 0.05);
  for (int i = 0; i < 300; ++i) now = h.step();
  EXPECT_GE(h.mon.decode_success_rate(now), 0.95);
}

TEST(MonitorFault, StallChargesTheDenominator) {
  // A frozen monitor processes nothing at all; the wall-clock denominator
  // must still charge that time so a stall looks exactly like failing.
  fault::FaultProfile p;
  p.stall_duty = 0.5;
  p.stall_period = 100 * util::kMillisecond;
  fault::FaultInjector inj{p, 2};
  MonitorHarness h{&inj};
  util::Time now = 0;
  for (int i = 0; i < 600; ++i) now = h.step();
  EXPECT_NEAR(h.mon.decode_success_rate(now), 0.5, 0.15);
}

// ------------------------------------------------- Client confidence

TEST(PbeClientFault, ConfidenceTracksBlackoutMonotonically) {
  fault::FaultProfile p;
  p.blackout_duty = 1.0;
  p.blackout_from = 200 * util::kMillisecond;
  fault::FaultInjector inj{p, 2};

  phy::CellConfig cell{1, 10.0};
  pbe::PbeClientConfig cfg;
  cfg.rnti = 0x100;
  cfg.cells = {cell};
  cfg.faults = &inj;
  pbe::PbeClient client{cfg, [](phy::CellId) {
                          phy::ChannelState s;
                          s.rssi_dbm = -95;
                          s.sinr_db = 15;
                          s.cqi = 11;
                          s.data_ber = 1e-6;
                          s.control_ber = 0;
                          return s;
                        }};

  std::int64_t sf = 0;
  std::uint64_t seq = 0;
  const auto step = [&] {
    phy::PdcchBuilder b(cell, sf);
    phy::Dci d;
    d.rnti = 0x100;
    d.format = phy::DciFormat::kFormat1;
    d.n_prbs = 8;
    d.mcs = {11, 1};
    b.add(d, 1);
    client.on_pdcch(std::move(b).build());
    ++sf;
    const util::Time now = sf * util::kSubframe;
    net::Packet pkt;
    pkt.seq = seq++;
    pkt.bytes = 1500;
    pkt.sent_time = now - 20 * util::kMillisecond;
    net::Ack ack;
    client.fill_feedback(pkt, now, ack);
    return ack;
  };

  for (int i = 0; i < 200; ++i) step();
  ASSERT_GE(step().pbe_confidence, 250);

  // During the blackout the stamped confidence decays without ever
  // bouncing back up (decode rate and estimate freshness both monotone).
  int prev = 255;
  for (int i = 0; i < 400; ++i) {
    const int conf = step().pbe_confidence;
    ASSERT_LE(conf, prev + 1) << "subframe " << i;  // +1 absorbs rounding
    prev = conf;
  }
  EXPECT_LE(prev, 30);
}

// ------------------------------------------------- Scenario integration

std::vector<obs::Event> run_traced_scenario(std::uint64_t fault_seed) {
  obs::Trace::instance().clear();
  obs::Trace::instance().start({});
  {
    sim::ScenarioConfig cfg = sim::scenario_config_for(sim::location(2));
    cfg.fault = *fault::profile_by_name("feedback-loss");
    cfg.fault_seed = fault_seed;
    sim::Scenario s{std::move(cfg)};
    s.add_ue(sim::ue_spec_for(sim::location(2)));
    sim::FlowSpec flow;
    flow.algo = "pbe";
    flow.path.one_way_delay = 25 * util::kMillisecond;
    flow.start = 100 * util::kMillisecond;
    flow.stop = 3 * util::kSecond;
    s.add_flow(flow);
    s.run_until(3 * util::kSecond);
  }
  obs::Trace::instance().stop();
  std::vector<obs::Event> out;
  for (const auto& e : obs::Trace::instance().snapshot()) {
    if (e.kind == obs::EventKind::kFaultInjected ||
        e.kind == obs::EventKind::kDegradationSwitch) {
      out.push_back(e);
    }
  }
  obs::Trace::instance().clear();
  return out;
}

TEST(FaultScenario, SameFaultSeedSameEventSchedule) {
  if (!obs::kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  const auto a = run_traced_scenario(7);
  const auto b = run_traced_scenario(7);
  const auto c = run_traced_scenario(8);

  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].id, b[i].id) << i;
    EXPECT_EQ(a[i].id2, b[i].id2) << i;
    EXPECT_EQ(a[i].a, b[i].a) << i;
    EXPECT_EQ(a[i].x, b[i].x) << i;
    EXPECT_EQ(a[i].y, b[i].y) << i;
  }

  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].t != c[i].t || a[i].kind != c[i].kind ||
              a[i].id2 != c[i].id2 || a[i].a != c[i].a;
  }
  EXPECT_TRUE(differs) << "fault seed must change the schedule";
}

TEST(FaultScenario, BlackoutForcesFallbackThenTimelyRecovery) {
  constexpr util::Time kHealAt = 3 * util::kSecond;
  fault::FaultProfile p;
  p.blackout_duty = 1.0;
  p.blackout_from = util::kSecond;
  p.blackout_until = kHealAt;

  sim::ScenarioConfig cfg = sim::scenario_config_for(sim::location(2));
  cfg.fault = p;
  cfg.fault_seed = 3;
  sim::Scenario s{std::move(cfg)};
  s.add_ue(sim::ue_spec_for(sim::location(2)));
  sim::FlowSpec flow;
  flow.algo = "pbe";
  flow.path.one_way_delay = 25 * util::kMillisecond;
  flow.start = 100 * util::kMillisecond;
  flow.stop = 5 * util::kSecond;
  const int f = s.add_flow(flow);
  auto& sender = dynamic_cast<pbe::PbeSender&>(s.sender(f).controller());

  bool saw_fallback = false;
  util::Time precise_again = -1;
  for (util::Time t = flow.start; t < flow.stop;
       t += 10 * util::kMillisecond) {
    s.run_until(t);
    const auto st = sender.degradation_state();
    if (t < kHealAt && st == DegradationState::kFallback) saw_fallback = true;
    if (saw_fallback && precise_again < 0 && t >= kHealAt &&
        st == DegradationState::kPrecise) {
      precise_again = t;
    }
  }
  EXPECT_TRUE(saw_fallback) << "solid blackout must reach FALLBACK";
  ASSERT_GE(precise_again, 0) << "never re-entered PRECISE";
  // Acceptance criterion: PRECISE re-entry within 500 ms of the feed
  // returning.
  EXPECT_LE(precise_again - kHealAt, 500 * util::kMillisecond);
}

}  // namespace
}  // namespace pbecc
