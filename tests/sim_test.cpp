// Unit tests for src/sim: metrics, algorithm factory, location profiles,
// and scenario wiring.
#include <gtest/gtest.h>

#include <cmath>

#include "pbe/pbe_sender.h"
#include "sim/algorithms.h"
#include "sim/location.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace pbecc::sim {
namespace {

using util::kMillisecond;
using util::kSecond;

// ----------------------------------------------------------------- metrics

TEST(FlowStatsTest, WindowedThroughput) {
  FlowStats st;
  net::Packet p;
  p.bytes = 1500;
  // 10 packets per 100 ms window for 5 windows = 1.2 Mbit/s.
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 10; ++i) {
      const util::Time now = w * 100 * kMillisecond + i * 10 * kMillisecond;
      p.sent_time = now - 30 * kMillisecond;
      st.on_delivery(p, now);
    }
  }
  st.finish(5 * 100 * kMillisecond);
  EXPECT_EQ(st.packets(), 50u);
  ASSERT_GE(st.window_tputs_mbps().count(), 4u);
  EXPECT_NEAR(st.window_tputs_mbps().percentile(50), 1.2, 0.01);
  EXPECT_NEAR(st.avg_delay_ms(), 30.0, 0.01);
}

TEST(FlowStatsTest, DelayPercentiles) {
  FlowStats st;
  net::Packet p;
  p.bytes = 1500;
  for (int i = 1; i <= 100; ++i) {
    const util::Time now = i * kMillisecond;
    p.sent_time = now - i * kMillisecond;  // delay = i ms
    st.on_delivery(p, now);
  }
  EXPECT_NEAR(st.p95_delay_ms(), 95.05, 0.1);
  EXPECT_NEAR(st.median_delay_ms(), 50.5, 0.1);
}

TEST(FlowStatsTest, EmptyFlow) {
  FlowStats st;
  st.finish(kSecond);
  EXPECT_EQ(st.packets(), 0u);
  EXPECT_DOUBLE_EQ(st.avg_tput_mbps(), 0.0);
  // No deliveries -> no delay distribution: NaN, not a fake perfect 0 ms.
  EXPECT_TRUE(std::isnan(st.avg_delay_ms()));
  EXPECT_TRUE(std::isnan(st.median_delay_ms()));
  EXPECT_TRUE(std::isnan(st.p95_delay_ms()));
  EXPECT_TRUE(st.delays_ms().empty());
  EXPECT_EQ(st.window_tputs_mbps().count(), 0u);
}

TEST(FlowStatsTest, FinishBeforeAnyDeliveryIsIdempotent) {
  FlowStats st;
  st.finish(kSecond);
  st.finish(2 * kSecond);  // double finish must not crash or emit windows
  // A delivery after finish() is ignored.
  net::Packet p;
  p.bytes = 1500;
  p.sent_time = 3 * kSecond - 10 * kMillisecond;
  st.on_delivery(p, 3 * kSecond);
  EXPECT_EQ(st.packets(), 0u);
  EXPECT_EQ(st.bytes(), 0u);
  EXPECT_TRUE(std::isnan(st.avg_delay_ms()));
}

TEST(FlowStatsTest, DeliveryExactlyOnWindowBoundary) {
  FlowStats st;  // 100 ms windows
  net::Packet p;
  p.bytes = 1250;  // 1250 B / 100 ms = 0.1 Mbit/s
  // First delivery opens the window at t=1s; the second lands exactly on
  // the boundary and must roll into (and open) the next window, not be
  // double-counted in the first.
  p.sent_time = kSecond - 20 * kMillisecond;
  st.on_delivery(p, kSecond);
  p.sent_time = kSecond + 80 * kMillisecond;
  st.on_delivery(p, kSecond + 100 * kMillisecond);
  st.finish(kSecond + 200 * kMillisecond);

  ASSERT_EQ(st.window_tputs_mbps().count(), 2u);
  const auto wins = st.window_tputs_mbps().samples();
  EXPECT_NEAR(wins[0], 0.1, 1e-9);  // only the first packet
  EXPECT_NEAR(wins[1], 0.1, 1e-9);  // boundary packet, full-window flush
  EXPECT_EQ(st.packets(), 2u);
}

TEST(FlowStatsTest, SinglePacketFlow) {
  FlowStats st;
  net::Packet p;
  p.bytes = 1500;
  p.sent_time = kSecond - 25 * kMillisecond;
  st.on_delivery(p, kSecond);
  st.finish(kSecond + 50 * kMillisecond);

  EXPECT_EQ(st.packets(), 1u);
  // All percentiles of a single sample are that sample.
  EXPECT_DOUBLE_EQ(st.avg_delay_ms(), 25.0);
  EXPECT_DOUBLE_EQ(st.median_delay_ms(), 25.0);
  EXPECT_DOUBLE_EQ(st.p95_delay_ms(), 25.0);
  // last == first: the elapsed-time throughput is undefined; reported as 0.
  EXPECT_DOUBLE_EQ(st.avg_tput_mbps(), 0.0);
  // The partial window still flushes: 1500 B over 50 ms = 0.24 Mbit/s.
  ASSERT_EQ(st.window_tputs_mbps().count(), 1u);
  EXPECT_NEAR(st.window_tputs_mbps().samples()[0], 0.24, 1e-9);
}

// ------------------------------------------------------------- algorithms

TEST(Algorithms, FactoryConstructsAll) {
  for (const auto& name : all_algorithms()) {
    auto cc = make_controller(name, 1);
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(cc->name(), name == "pcc" ? "pcc" : cc->name());
    EXPECT_GT(cc->pacing_rate(0), 0.0) << name;
  }
  EXPECT_EQ(all_algorithms().size(), 8u);
  EXPECT_THROW(make_controller("quic", 1), std::invalid_argument);
}

// The extras (delay-gradient baseline + hybrid) construct through the same
// factory but stay out of all_algorithms() so paper-figure sweeps keep the
// paper's competitor set.
TEST(Algorithms, ExtraAlgorithmsConstruct) {
  ASSERT_EQ(extra_algorithms(), (std::vector<std::string>{"gcc", "hybrid"}));
  for (const auto& name : extra_algorithms()) {
    auto cc = make_controller(name, 1);
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(cc->name(), name);
    EXPECT_GT(cc->pacing_rate(0), 0.0) << name;
  }
  // The hybrid is a PbeSender with the sidecar holding pacing authority.
  auto hybrid = make_controller("hybrid", 1);
  auto& sender = dynamic_cast<pbe::PbeSender&>(*hybrid);
  EXPECT_TRUE(sender.hybrid());
  EXPECT_TRUE(sender.degradation().config().blend.enabled);
  EXPECT_EQ(sender.blend_weight(), 1.0);  // full PHY trust until evidence
}

TEST(Algorithms, PbeNeedsClient) {
  EXPECT_TRUE(needs_pbe_client("pbe"));
  EXPECT_FALSE(needs_pbe_client("bbr"));
  // The hybrid consumes PHY feedback, so it needs the client; the pure
  // delay-gradient baseline is endpoint-only.
  EXPECT_TRUE(needs_pbe_client("hybrid"));
  EXPECT_FALSE(needs_pbe_client("gcc"));
}

// -------------------------------------------------------------- locations

TEST(Locations, PaperMix) {
  int idle = 0, one_cc = 0, two_cc = 0, three_cc = 0, indoor = 0;
  for (int i = 0; i < kNumLocations; ++i) {
    const auto loc = location(i);
    EXPECT_EQ(loc.index, i);
    idle += loc.busy ? 0 : 1;
    one_cc += loc.n_cells == 1;
    two_cc += loc.n_cells == 2;
    three_cc += loc.n_cells == 3;
    indoor += loc.indoor;
    EXPECT_GE(loc.n_cells, 1);
    EXPECT_LE(loc.n_cells, 3);
    EXPECT_LT(loc.rssi_dbm, -80);
    EXPECT_GT(loc.rssi_dbm, -110);
    EXPECT_FALSE(loc.describe().empty());
  }
  // The paper's split: 15 idle / 25 busy links; 10 locations with the
  // single-cell Redmi 8, 15 each with the 2-CC MIX3 and 3-CC S8.
  EXPECT_EQ(idle, 15);
  EXPECT_EQ(one_cc, 10);
  EXPECT_EQ(two_cc, 15);
  EXPECT_EQ(three_cc, 15);
  EXPECT_EQ(indoor, 20);
}

TEST(Locations, ConfigMatchesProfile) {
  const auto loc = location(27);  // three-cell location
  const auto cfg = scenario_config_for(loc);
  EXPECT_EQ(cfg.cells.size(), 3u);
  const auto ue = ue_spec_for(loc);
  EXPECT_EQ(ue.cell_indices.size(), 3u);
  const auto loc1 = location(3);  // single-cell location
  EXPECT_EQ(ue_spec_for(loc1).cell_indices.size(), 1u);
}

// --------------------------------------------------------------- scenario

TEST(Scenario, SingleFlowDelivers) {
  ScenarioConfig cfg;
  cfg.cells = {{10.0, 0.0}};
  Scenario s{cfg};
  s.add_ue(UeSpec{});
  FlowSpec fs;
  fs.algo = "fixed";
  fs.fixed_rate = 8e6;
  fs.stop = kSecond;
  const int f = s.add_flow(fs);
  s.run_until(1200 * kMillisecond);
  s.stats(f).finish(kSecond);
  EXPECT_NEAR(s.stats(f).avg_tput_mbps(), 8.0, 1.0);
  // Idle cell: delay ~ propagation + a couple of subframes.
  EXPECT_LT(s.stats(f).median_delay_ms(), 35.0);
}

TEST(Scenario, TwoFlowsOneDevice) {
  ScenarioConfig cfg;
  cfg.cells = {{10.0, 0.0}};
  Scenario s{cfg};
  s.add_ue(UeSpec{});
  FlowSpec fs;
  fs.algo = "fixed";
  fs.fixed_rate = 5e6;
  fs.stop = kSecond;
  const int f1 = s.add_flow(fs);
  const int f2 = s.add_flow(fs);
  s.run_until(1200 * kMillisecond);
  EXPECT_GT(s.stats(f1).packets(), 300u);
  EXPECT_GT(s.stats(f2).packets(), 300u);
}

TEST(Scenario, UnknownUeThrows) {
  Scenario s{ScenarioConfig{}};
  FlowSpec fs;
  fs.ue = 99;
  EXPECT_THROW(s.add_flow(fs), std::invalid_argument);
}

TEST(Scenario, FixedFlowNeedsRate) {
  Scenario s{ScenarioConfig{}};
  s.add_ue(UeSpec{});
  FlowSpec fs;
  fs.algo = "fixed";
  fs.fixed_rate = 0;
  EXPECT_THROW(s.add_flow(fs), std::invalid_argument);
}

TEST(Scenario, BackgroundTrafficConsumesPrbs) {
  ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.cells = {{10.0, 0.0}};
  Scenario busy{cfg};
  busy.add_ue(UeSpec{});
  BackgroundSpec bg;
  bg.n_users = 4;
  bg.sessions_per_sec = 4.0;
  bg.rate_lo = 5e6;
  bg.rate_hi = 10e6;
  busy.add_background(bg);

  long idle_prbs = 0, sfs = 0;
  busy.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    idle_prbs += r.idle_prbs;
    ++sfs;
  });
  busy.run_until(3 * kSecond);
  // Background sessions occupy a noticeable share of the cell.
  EXPECT_LT(static_cast<double>(idle_prbs) / (static_cast<double>(sfs) * 50.0),
            0.9);
}

TEST(Scenario, InternetBottleneckLimitsRate) {
  ScenarioConfig cfg;
  cfg.cells = {{10.0, 0.0}};
  Scenario s{cfg};
  s.add_ue(UeSpec{});
  FlowSpec fs;
  fs.algo = "fixed";
  fs.fixed_rate = 30e6;
  fs.path.internet_rate = 6e6;  // far below the offered load
  fs.stop = 2 * kSecond;
  const int f = s.add_flow(fs);
  s.run_until(2500 * kMillisecond);
  s.stats(f).finish(2 * kSecond);
  EXPECT_NEAR(s.stats(f).avg_tput_mbps(), 6.0, 0.8);
}

TEST(Scenario, PbeFlowGetsClient) {
  ScenarioConfig cfg;
  cfg.cells = {{10.0, 0.0}};
  Scenario s{cfg};
  s.add_ue(UeSpec{});
  FlowSpec fs;
  fs.algo = "pbe";
  const int f = s.add_flow(fs);
  EXPECT_NE(s.pbe_client(f), nullptr);
  FlowSpec other;
  other.algo = "bbr";
  const int g = s.add_flow(other);
  EXPECT_EQ(s.pbe_client(g), nullptr);
}

}  // namespace
}  // namespace pbecc::sim
