// Tests for pbecc::par — the work-stealing pool behind the parallel
// scenario engine and the blind-decode fan-out. The determinism contract
// (DESIGN.md §9) rests on parallel_for/parallel_map merging results by
// index, the serial path being literally inline execution, and errors
// propagating by lowest index.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "par/thread_pool.h"

namespace pbecc::par {
namespace {

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool{1};
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool{8};
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, ResultsMergeByIndexDeterministically) {
  ThreadPool serial{1};
  ThreadPool wide{8};
  for (ThreadPool* pool : {&serial, &wide}) {
    std::vector<std::uint64_t> out(5000);
    pool->parallel_for(out.size(), [&](std::size_t i) {
      out[i] = i * 2654435761ull;  // any pure function of the index
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * 2654435761ull);
    }
  }
}

TEST(ThreadPool, ZeroAndOneIterationEdgeCases) {
  ThreadPool pool{4};
  int ran = 0;
  pool.parallel_for(0, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  ThreadPool pool{8};
  // Iterations 3, 700 and 4900 throw; the loop must finish every other
  // iteration and rethrow the *lowest*-index error regardless of which
  // worker hit its exception first.
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(5000, [&](std::size_t i) {
      if (i == 3 || i == 700 || i == 4900) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  EXPECT_EQ(ran.load(), 4997);
}

TEST(ThreadPool, ExceptionOnSingleThreadPool) {
  ThreadPool pool{1};
  EXPECT_THROW(pool.parallel_for(
                   10, [&](std::size_t i) {
                     if (i == 7) throw std::logic_error("seven");
                   }),
               std::logic_error);
  // The pool stays usable afterwards.
  int ran = 0;
  pool.parallel_for(4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 4);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool{4};
  std::vector<std::vector<std::uint32_t>> out(8);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i].resize(64);
    pool.parallel_for(out[i].size(), [&, i](std::size_t j) {
      out[i][j] = static_cast<std::uint32_t>(i * 1000 + j);
    });
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = 0; j < out[i].size(); ++j) {
      ASSERT_EQ(out[i][j], i * 1000 + j);
    }
  }
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool{4};
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ShutdownDrainsPendingSubmittedWork) {
  // The destructor must run every queued task before joining — dropping
  // fire-and-forget work on shutdown would make bench teardown racy.
  std::atomic<int> done{0};
  {
    ThreadPool pool{3};
    for (int i = 0; i < 500; ++i) {
      pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle(): ~ThreadPool drains.
  }
  EXPECT_EQ(done.load(), 500);
}

TEST(ThreadPool, ManyMoreIterationsThanThreads) {
  ThreadPool pool{2};
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kN = 100000;
  pool.parallel_for(kN, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(DefaultPool, SetThreadsReconfigures) {
  set_default_threads(1);
  EXPECT_EQ(default_threads(), 1);
  std::vector<std::size_t> order;
  parallel_for(8, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);

  set_default_threads(4);
  EXPECT_EQ(default_threads(), 4);
  const auto out = parallel_map(
      64, [](std::size_t i) { return static_cast<int>(i) * 3; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
  set_default_threads(1);  // leave the process default serial for others
}

}  // namespace
}  // namespace pbecc::par
