// Property-based tests: parameterized sweeps asserting invariants across
// large input grids and randomized traces.
#include <gtest/gtest.h>

#include <tuple>

#include "mac/reordering_buffer.h"
#include "mac/scheduler.h"
#include "phy/dci.h"
#include "phy/error_model.h"
#include "phy/pdcch.h"
#include "pbe/rate_translator.h"
#include "decoder/blind_decoder.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/windowed_filter.h"

namespace pbecc {
namespace {

// -------------------------------------------- DCI roundtrip over a grid

using DciParam = std::tuple<int /*format*/, int /*n_prbs*/, int /*cqi*/>;

class DciRoundtrip : public ::testing::TestWithParam<DciParam> {};

TEST_P(DciRoundtrip, EncodeDecodeIdentity) {
  const auto [f, n_prbs, cqi] = GetParam();
  const auto format = static_cast<phy::DciFormat>(f);
  phy::Dci d;
  d.rnti = static_cast<phy::Rnti>(0x100 + f * 31 + n_prbs);
  d.format = format;
  d.prb_start = static_cast<std::uint16_t>(100 - n_prbs);
  d.n_prbs = static_cast<std::uint16_t>(n_prbs);
  const bool mimo = format == phy::DciFormat::kFormat2 ||
                    format == phy::DciFormat::kFormat2A;
  d.mcs = {cqi, mimo ? 2 : 1};
  d.harq_id = static_cast<std::uint8_t>((f + n_prbs) % 8);
  d.new_data = (n_prbs % 2) == 0;

  const auto back = phy::decode_dci(phy::encode_dci(d), format, 100);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DciRoundtrip,
    ::testing::Combine(::testing::Range(0, phy::kNumDciFormats),
                       ::testing::Values(1, 4, 25, 50, 100),
                       ::testing::Values(1, 7, 11, 15)));

// --------------------------------------- TB error model monotonicity

class TbErrorPropTest
    : public ::testing::TestWithParam<std::tuple<double /*p*/, double /*L*/>> {};

TEST_P(TbErrorPropTest, BoundsAndMonotonicity) {
  const auto [p, len] = GetParam();
  const double e = phy::tb_error_rate(p, len);
  EXPECT_GE(e, 0.0);
  EXPECT_LE(e, 1.0);
  // Monotone in both arguments.
  EXPECT_LE(e, phy::tb_error_rate(p * 2, len) + 1e-12);
  EXPECT_LE(e, phy::tb_error_rate(p, len * 2) + 1e-12);
  // Union bound: TBER <= p * L.
  EXPECT_LE(e, p * len + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TbErrorPropTest,
    ::testing::Combine(::testing::Values(1e-7, 5e-7, 1e-6, 3e-6, 5e-6, 1e-5),
                       ::testing::Values(1e3, 1e4, 5e4, 1e5, 2e5)));

// ------------------------------------------ Eqn 5 translation roundtrip

class TranslatorProp
    : public ::testing::TestWithParam<std::tuple<double /*cp*/, double /*p*/>> {};

TEST_P(TranslatorProp, InverseConsistency) {
  const auto [cp, p] = GetParam();
  pbe::RateTranslator tr;
  const double ct = tr.to_transport(cp, p);
  EXPECT_GT(ct, 0.0);
  EXPECT_LT(ct, cp);
  EXPECT_NEAR(tr.to_physical(ct, p), cp, cp * 0.02);
  // Overhead never exceeds ~60% nor dips below gamma.
  EXPECT_GT(ct, cp * 0.4);
  EXPECT_LT(ct, cp * (1.0 - pbe::kProtocolOverhead) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TranslatorProp,
    ::testing::Combine(::testing::Values(2e3, 1e4, 4e4, 8e4, 1.5e5, 2e5),
                       ::testing::Values(2e-7, 1e-6, 2e-6, 5e-6)));

// ------------------------------------------- scheduler never over-allocates

class SchedulerProp : public ::testing::TestWithParam<
                          std::tuple<std::string, int /*prbs*/, int /*users*/>> {};

TEST_P(SchedulerProp, ConservationAndDemandLimits) {
  const auto& [name, prbs, users] = GetParam();
  auto sched = mac::make_scheduler(name);
  util::Rng rng{static_cast<std::uint64_t>(prbs * 100 + users)};
  for (int round = 0; round < 50; ++round) {
    std::vector<mac::SchedRequest> reqs;
    for (int u = 0; u < users; ++u) {
      reqs.push_back(mac::SchedRequest{
          static_cast<mac::UeId>(u + 1),
          rng.uniform_int(0, 200000),
          rng.uniform(100.0, 1800.0)});
    }
    const auto allocs = sched->allocate(prbs, reqs);
    int total = 0;
    for (const auto& a : allocs) {
      EXPECT_GT(a.n_prbs, 0);
      total += a.n_prbs;
      // No allocation beyond demand.
      for (const auto& r : reqs) {
        if (r.ue == a.ue) EXPECT_LE(a.n_prbs, mac::demand_prbs(r));
      }
    }
    EXPECT_LE(total, prbs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerProp,
    ::testing::Combine(::testing::Values("fair-share", "proportional-fair",
                                         "round-robin"),
                       ::testing::Values(6, 25, 50, 100),
                       ::testing::Values(1, 3, 8, 20)));

TEST(FairShareProp, MaxMinInvariant) {
  // In every fair-share allocation, a user below its demand is never
  // granted fewer PRBs than any other user (max-min fairness).
  mac::FairShareScheduler s;
  util::Rng rng{99};
  for (int round = 0; round < 200; ++round) {
    const int prbs = static_cast<int>(rng.uniform_int(4, 100));
    const int users = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<mac::SchedRequest> reqs;
    for (int u = 0; u < users; ++u) {
      reqs.push_back(mac::SchedRequest{static_cast<mac::UeId>(u + 1),
                                       rng.uniform_int(0, 100000), 1000.0});
    }
    const auto allocs = s.allocate(prbs, reqs);
    std::map<mac::UeId, int> granted;
    for (const auto& a : allocs) granted[a.ue] = a.n_prbs;
    for (const auto& r : reqs) {
      const int mine = granted[r.ue];
      if (mine >= mac::demand_prbs(r)) continue;  // satisfied: exempt
      for (const auto& other : allocs) {
        EXPECT_GE(mine + 1, other.n_prbs)
            << "unsatisfied user " << r.ue << " got " << mine
            << " while user " << other.ue << " got " << other.n_prbs;
      }
    }
  }
}

// --------------------------------- reordering: in-order delivery invariant

TEST(ReorderProp, AlwaysInOrderUnderRandomCompletion) {
  util::Rng rng{123};
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint64_t> delivered;
    mac::ReorderingBuffer rb(
        [&](net::Packet p) { delivered.push_back(p.seq); });

    const int n_tbs = 60;
    // Random permutation-ish arrival: each TB arrives after a random
    // number of HARQ retransmissions; ~5% are abandoned.
    struct Ev {
      std::int64_t when;
      std::uint64_t tb;
      bool abandoned;
    };
    std::vector<Ev> events;
    for (std::uint64_t i = 0; i < n_tbs; ++i) {
      const auto retx = rng.uniform_int(0, 3);
      events.push_back(Ev{static_cast<std::int64_t>(i) + retx * 8,
                          i, rng.bernoulli(0.05)});
    }
    std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
      if (a.when != b.when) return a.when < b.when;
      return a.tb < b.tb;
    });
    std::vector<std::uint64_t> expected;
    for (const auto& e : events) {
      const util::Time now = e.when * util::kMillisecond;
      if (e.abandoned) {
        rb.on_tb_abandoned(now, e.tb);
      } else {
        mac::TransportBlock tb;
        tb.tb_seq = e.tb;
        net::Packet p;
        p.seq = e.tb;
        tb.completed_packets.push_back(p);
        rb.on_tb_decoded(now, std::move(tb));
      }
    }
    // Invariant: strictly increasing packet sequence at delivery.
    for (std::size_t i = 1; i < delivered.size(); ++i) {
      ASSERT_LT(delivered[i - 1], delivered[i]) << "trial " << trial;
    }
    // Everything not abandoned is eventually delivered.
    std::size_t abandoned = 0;
    for (const auto& e : events) abandoned += e.abandoned;
    EXPECT_EQ(delivered.size(), n_tbs - abandoned);
  }
}

// --------------------------------- windowed filter vs brute force (min)

TEST(WindowedFilterProp, MinMatchesBruteForce) {
  util::Rng rng{77};
  util::WindowedMin<double> f{150};
  std::vector<std::pair<util::Time, double>> hist;
  util::Time t = 0;
  for (int i = 0; i < 400; ++i) {
    t += rng.uniform_int(1, 40);
    const double v = rng.uniform(0, 1000);
    hist.emplace_back(t, v);
    f.update(t, v);
    double expect = 1e18;
    for (const auto& [ht, hv] : hist) {
      if (ht >= t - 150) expect = std::min(expect, hv);
    }
    ASSERT_DOUBLE_EQ(f.get(t, 1e18), expect);
  }
}

// --------------------------------------------- Jain index bounds property

TEST(JainProp, AlwaysWithinBounds) {
  util::Rng rng{55};
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<double> xs;
    for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(0, 100));
    const double j = util::jain_index(xs);
    EXPECT_GE(j, 1.0 / static_cast<double>(n) - 1e-12);
    EXPECT_LE(j, 1.0 + 1e-12);
  }
}

// ----------------------------- PDCCH: whatever fits, decodes (clean air)

class PdcchLoadProp : public ::testing::TestWithParam<int /*messages*/> {};

TEST_P(PdcchLoadProp, EverythingPlacedIsDecodable) {
  const int target = GetParam();
  phy::CellConfig cell{1, 20.0};
  phy::PdcchBuilder b(cell, 9);
  util::Rng rng{static_cast<std::uint64_t>(target)};
  int placed = 0;
  for (int i = 0; i < target; ++i) {
    phy::Dci d;
    d.rnti = static_cast<phy::Rnti>(0x100 + i);
    d.format = static_cast<phy::DciFormat>(rng.uniform_int(0, 4));
    d.n_prbs = static_cast<std::uint16_t>(rng.uniform_int(1, 20));
    d.prb_start = 0;
    const bool mimo = d.format == phy::DciFormat::kFormat2 ||
                      d.format == phy::DciFormat::kFormat2A;
    d.mcs = {static_cast<int>(rng.uniform_int(1, 15)), mimo ? 2 : 1};
    const int al = 1 << rng.uniform_int(0, 3);
    placed += b.add(d, al) ? 1 : 0;
  }
  const auto sf = std::move(b).build();
  decoder::BlindDecoder dec{cell};
  EXPECT_EQ(dec.decode(sf).size(), static_cast<std::size_t>(placed));
}

INSTANTIATE_TEST_SUITE_P(Load, PdcchLoadProp,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace pbecc
