// Determinism suite (DESIGN.md §9): the parallel scenario engine and the
// per-subframe parallel blind-decode path must produce byte-identical
// results for any thread count. Three seeds x {clean, blackout,
// handover-storm} x threads {1, 8}, compared field-for-field: FlowStats
// (every throughput window and delay sample), blind-decode attempt
// counters, and the obs event-trace digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cap/replay.h"
#include "cap/taps.h"
#include "cap/trace_reader.h"
#include "cap/trace_writer.h"
#include "decoder/blind_decoder.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "par/thread_pool.h"
#include "sim/location.h"

namespace pbecc {
namespace {

struct RunDigest {
  double tput = 0, avg_d = 0, p95_d = 0, p50_d = 0;
  bool ca = false;
  std::vector<double> wins, delays;
  std::uint64_t attempts = 0;
  std::uint64_t trace_digest = 0;

  bool operator==(const RunDigest&) const = default;
};

RunDigest run_once(const std::string& profile_name, std::uint64_t seed,
                   int threads, const std::string& algo = "pbe") {
  par::set_default_threads(threads);
  obs::Trace::instance().start(obs::TraceConfig{});

  auto loc = sim::location(3);  // 2-cell busy indoor
  loc.seed = seed;
  const auto profile = *fault::profile_by_name(profile_name);
  const auto r =
      sim::run_location(loc, algo, 3 * util::kSecond,
                        profile.active() ? &profile : nullptr, /*fault_seed=*/3);

  obs::Trace::instance().stop();
  RunDigest d;
  d.tput = r.avg_tput_mbps;
  d.avg_d = r.avg_delay_ms;
  d.p95_d = r.p95_delay_ms;
  d.p50_d = r.median_delay_ms;
  d.ca = r.ca_triggered;
  d.wins.assign(r.window_tputs.samples().begin(),
                r.window_tputs.samples().end());
  d.delays.assign(r.delays_ms.samples().begin(), r.delays_ms.samples().end());
  d.attempts = r.decode_candidates;
  d.trace_digest = obs::Trace::instance().digest();
  obs::Trace::instance().clear();
  return d;
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  void TearDown() override { par::set_default_threads(1); }
};

TEST_P(DeterminismTest, SerialAndParallelAreByteIdentical) {
  const auto& [profile, seed] = GetParam();
  const auto serial = run_once(profile, seed, 1);
  const auto parallel = run_once(profile, seed, 8);

  // Field-by-field first so a failure names the divergent quantity...
  EXPECT_EQ(serial.tput, parallel.tput);
  EXPECT_EQ(serial.avg_d, parallel.avg_d);
  EXPECT_EQ(serial.p95_d, parallel.p95_d);
  EXPECT_EQ(serial.p50_d, parallel.p50_d);
  EXPECT_EQ(serial.ca, parallel.ca);
  EXPECT_EQ(serial.attempts, parallel.attempts);
  ASSERT_EQ(serial.wins.size(), parallel.wins.size());
  for (std::size_t i = 0; i < serial.wins.size(); ++i) {
    ASSERT_EQ(serial.wins[i], parallel.wins[i]) << "window " << i;
  }
  ASSERT_EQ(serial.delays.size(), parallel.delays.size());
  for (std::size_t i = 0; i < serial.delays.size(); ++i) {
    ASSERT_EQ(serial.delays[i], parallel.delays[i]) << "delay sample " << i;
  }
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
  // ...then the blanket check (also covers future RunDigest fields).
  EXPECT_TRUE(serial == parallel);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByProfile, DeterminismTest,
    ::testing::Combine(::testing::Values("none", "blackout", "handover-storm"),
                       ::testing::Values(std::uint64_t{11}, std::uint64_t{12},
                                         std::uint64_t{13})),
    [](const auto& info) {
      return std::get<0>(info.param) == "handover-storm"
                 ? "handover_storm_" + std::to_string(std::get<1>(info.param))
                 : std::get<0>(info.param) + "_" +
                       std::to_string(std::get<1>(info.param));
    });

// Hybrid lane: the blended sender adds the delay-gradient sidecar, the
// divergence detector, and the claim re-seed to the ACK path — all of
// which must stay pure functions of the ACK stream (DESIGN.md §13). Same
// byte-identity contract, across the profile that exercises the blend
// hardest (blackout drives the full weight swing) and the clean one.
class HybridDeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  void TearDown() override { par::set_default_threads(1); }
};

TEST_P(HybridDeterminismTest, SerialAndParallelAreByteIdentical) {
  const auto& [profile, seed] = GetParam();
  const auto serial = run_once(profile, seed, 1, "hybrid");
  const auto parallel = run_once(profile, seed, 8, "hybrid");

  EXPECT_EQ(serial.tput, parallel.tput);
  EXPECT_EQ(serial.attempts, parallel.attempts);
  ASSERT_EQ(serial.wins.size(), parallel.wins.size());
  for (std::size_t i = 0; i < serial.wins.size(); ++i) {
    ASSERT_EQ(serial.wins[i], parallel.wins[i]) << "window " << i;
  }
  ASSERT_EQ(serial.delays.size(), parallel.delays.size());
  for (std::size_t i = 0; i < serial.delays.size(); ++i) {
    ASSERT_EQ(serial.delays[i], parallel.delays[i]) << "delay sample " << i;
  }
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
  EXPECT_TRUE(serial == parallel);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByProfile, HybridDeterminismTest,
    ::testing::Combine(::testing::Values("none", "blackout"),
                       ::testing::Values(std::uint64_t{11}, std::uint64_t{12})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// The convolutional-PDCCH decode path (Viterbi + span memoization) has its
// own parallel lane; check it separately since no location profile enables
// it.
RunDigest run_conv_once(int threads) {
  par::set_default_threads(threads);
  obs::Trace::instance().start(obs::TraceConfig{});
  sim::ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.cells = {{10.0, 0.3}};
  cfg.cells.front().convolutional_pdcch = true;
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.cell_indices = {0};
  s.add_ue(ue);
  sim::BackgroundSpec bg;
  bg.n_users = 4;
  bg.sessions_per_sec = 0.8;
  s.add_background(bg);
  sim::FlowSpec fs;
  fs.algo = "pbe";
  fs.stop = 3 * util::kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop);
  s.stats(f).finish(fs.stop);

  obs::Trace::instance().stop();
  RunDigest d;
  d.tput = s.stats(f).avg_tput_mbps();
  d.avg_d = s.stats(f).avg_delay_ms();
  d.p95_d = s.stats(f).p95_delay_ms();
  d.p50_d = s.stats(f).median_delay_ms();
  const auto& wins = s.stats(f).window_tputs_mbps().samples();
  d.wins.assign(wins.begin(), wins.end());
  const auto& dl = s.stats(f).delays_ms().samples();
  d.delays.assign(dl.begin(), dl.end());
  d.attempts = s.pbe_client(f)->monitor().total_candidates_tried();
  d.trace_digest = obs::Trace::instance().digest();
  obs::Trace::instance().clear();
  return d;
}

TEST(DeterminismConvolutional, SerialAndParallelAreByteIdentical) {
  const auto serial = run_conv_once(1);
  const auto parallel = run_conv_once(8);
  par::set_default_threads(1);
  EXPECT_GT(serial.attempts, 0u);
  EXPECT_TRUE(serial == parallel);
  EXPECT_EQ(serial.tput, parallel.tput);
  EXPECT_EQ(serial.attempts, parallel.attempts);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
}

// Lockstep-lane determinism (DESIGN.md §14): the scalar per-candidate
// path (lanes=1) and the SIMD batch path must produce byte-identical
// FlowStats and trace digests at every lane width and thread count — on
// the Viterbi pipeline AND the repetition-coded one (whose batch path
// adds the CRC-first screen).
TEST(DeterminismLanes, ScalarAndLockstepAreByteIdentical) {
  struct LaneGuard {
    ~LaneGuard() {
      decoder::set_decode_lanes(8);
      par::set_default_threads(1);
    }
  } guard;

  decoder::set_decode_lanes(1);
  const auto conv_scalar = run_conv_once(1);
  const auto rep_scalar = run_once("none", 21, 1);
  EXPECT_GT(conv_scalar.attempts, 0u);
  EXPECT_GT(rep_scalar.attempts, 0u);

  for (const int lanes : {8, 16}) {
    for (const int threads : {1, 8}) {
      decoder::set_decode_lanes(lanes);
      const auto conv = run_conv_once(threads);
      EXPECT_TRUE(conv_scalar == conv)
          << "conv pipeline diverged at lanes=" << lanes
          << " threads=" << threads;
      EXPECT_EQ(conv_scalar.trace_digest, conv.trace_digest)
          << "lanes=" << lanes << " threads=" << threads;
      const auto rep = run_once("none", 21, threads);
      EXPECT_TRUE(rep_scalar == rep)
          << "repetition pipeline diverged at lanes=" << lanes
          << " threads=" << threads;
      EXPECT_EQ(rep_scalar.trace_digest, rep.trace_digest)
          << "lanes=" << lanes << " threads=" << threads;
    }
  }
}

// --- shard lanes (DESIGN.md §15) -----------------------------------------
//
// The sharded engine's contract: ScenarioConfig::shards is purely a
// parallelism knob. Cross-cluster effects (migrations, deliveries to
// migrated UEs) always go through the barrier mailbox, so FlowStats and
// the trace digest must be byte-identical for any shard count x thread
// count — clean and under a handover storm that drives UEs across
// cluster (= shard) boundaries every storm tick.

constexpr util::Time kShardStop = 3 * util::kSecond;

sim::ScenarioConfig sharded_config(const std::string& profile,
                                   std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.cells.clear();
  for (int c = 0; c < 8; ++c) {
    sim::CellSpec cell;
    cell.bandwidth_mhz = 10.0;
    cell.control_users_per_subframe = 0.3;
    cell.cluster = c / 2;  // 4 clusters x 2 cells
    cfg.cells.push_back(cell);
  }
  cfg.fault = *fault::profile_by_name(profile);
  cfg.fault_seed = 3;
  return cfg;
}

// Three flows spanning the cluster graph: a stationary PBE flow (cluster
// 0; PBE cannot migrate), a gcc UE the storm bounces between clusters 1
// and 3, and a cubic UE that migrates into the PBE flow's own cluster —
// cross-shard arrivals perturbing the cell under measurement.
std::vector<int> populate_sharded(sim::Scenario& s) {
  sim::UeSpec u1;
  u1.id = 1;
  u1.cell_indices = {0, 1};
  s.add_ue(u1);
  sim::UeSpec u2;
  u2.id = 2;
  u2.cell_indices = {2};
  u2.serving_sets = {{6}, {3}, {7, 6}};  // cross, same-cluster, cross
  s.add_ue(u2);
  sim::UeSpec u3;
  u3.id = 3;
  u3.cell_indices = {4, 5};
  u3.serving_sets = {{1}, {5, 4}};
  s.add_ue(u3);

  sim::BackgroundSpec bg;
  bg.cell_index = 2;
  bg.n_users = 3;
  s.add_background(bg);
  sim::AggregateBackgroundSpec agg;
  agg.cell_index = 6;
  agg.traffic.sessions_per_sec = 30;
  s.add_background_aggregate(agg);

  std::vector<int> flows;
  const char* algos[] = {"pbe", "gcc", "cubic"};
  for (int i = 0; i < 3; ++i) {
    sim::FlowSpec fs;
    fs.algo = algos[i];
    fs.ue = static_cast<mac::UeId>(i + 1);
    fs.stop = kShardStop;
    flows.push_back(s.add_flow(fs));
  }
  return flows;
}

RunDigest run_sharded_once(const std::string& profile, std::uint64_t seed,
                           int shards, int threads) {
  sim::set_default_shards(shards);
  par::set_default_threads(threads);
  obs::Trace::instance().start(obs::TraceConfig{});

  auto cfg = sharded_config(profile, seed);
  sim::Scenario s{cfg};
  const auto flows = populate_sharded(s);
  s.run_until(kShardStop);

  RunDigest d;
  for (int f : flows) {
    s.stats(f).finish(kShardStop);
    d.tput += s.stats(f).avg_tput_mbps();
    d.avg_d += s.stats(f).avg_delay_ms();
    const auto& wins = s.stats(f).window_tputs_mbps().samples();
    d.wins.insert(d.wins.end(), wins.begin(), wins.end());
    const auto& dl = s.stats(f).delays_ms().samples();
    d.delays.insert(d.delays.end(), dl.begin(), dl.end());
  }
  d.attempts = s.pbe_client(flows[0])->monitor().total_candidates_tried();
  // Final shard residence of the churned UEs is part of the contract too.
  d.p50_d = s.ue_domain(2);
  d.p95_d = s.ue_domain(3);

  obs::Trace::instance().stop();
  d.trace_digest = obs::Trace::instance().digest();
  obs::Trace::instance().clear();
  sim::set_default_shards(1);
  par::set_default_threads(1);
  return d;
}

class ShardDeterminismTest : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override {
    par::set_default_threads(1);
    sim::set_default_shards(1);
  }
};

TEST_P(ShardDeterminismTest, AnyShardAndThreadCountIsByteIdentical) {
  const auto& profile = GetParam();
  const std::uint64_t storms_before =
      obs::counter("fault.storm_handovers").value();
  const auto base = run_sharded_once(profile, 11, 1, 1);
  ASSERT_GT(base.wins.size(), 0u);
  ASSERT_GT(base.attempts, 0u);
  if (profile == "handover-storm") {
    // The lane must actually exercise cross-shard churn, not vacuously
    // pass on a quiet scenario.
    EXPECT_GT(obs::counter("fault.storm_handovers").value(), storms_before);
  }
  for (const int shards : {2, 8}) {
    for (const int threads : {1, 8}) {
      const auto r = run_sharded_once(profile, 11, shards, threads);
      EXPECT_EQ(base.tput, r.tput) << "shards=" << shards
                                   << " threads=" << threads;
      EXPECT_EQ(base.attempts, r.attempts)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(base.trace_digest, r.trace_digest)
          << "shards=" << shards << " threads=" << threads;
      ASSERT_EQ(base.wins.size(), r.wins.size());
      for (std::size_t i = 0; i < base.wins.size(); ++i) {
        ASSERT_EQ(base.wins[i], r.wins[i])
            << "window " << i << " shards=" << shards
            << " threads=" << threads;
      }
      ASSERT_EQ(base.delays.size(), r.delays.size());
      for (std::size_t i = 0; i < base.delays.size(); ++i) {
        ASSERT_EQ(base.delays[i], r.delays[i])
            << "delay sample " << i << " shards=" << shards
            << " threads=" << threads;
      }
      EXPECT_TRUE(base == r) << "shards=" << shards
                             << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ShardDeterminismTest,
                         ::testing::Values("none", "handover-storm"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// --- mixed LTE+NR lane (DESIGN.md §16) -----------------------------------
//
// Heterogeneous slot clocks add slot-major cell stepping, time-keyed
// fusion and per-cell tick arithmetic to everything the sharded engine
// already parallelizes. The contract is unchanged: FlowStats and the
// trace digest are byte-identical for any shard count x thread count,
// clean and under a handover storm whose serving sets cross the RAT
// boundary (LTE<->NR handovers).

sim::ScenarioConfig mixed_nr_config(const std::string& profile,
                                    std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.cells.clear();
  for (int c = 0; c < 8; ++c) {
    sim::CellSpec cell;
    cell.control_users_per_subframe = 0.3;
    cell.cluster = c / 2;  // 4 clusters x 2 cells
    if (c % 2 == 1) {
      // Odd cells are NR: alternate 30 kHz and 120 kHz so the set mixes
      // three clocks (1 ms / 500 us / 125 us); one mini-slot cell.
      cell.nr = true;
      cell.scs_khz = (c % 4 == 1) ? 30 : 120;
      cell.bandwidth_mhz = (c % 4 == 1) ? 20.0 : 50.0;
      cell.coreset_rbs = (c % 4 == 1) ? 48 : 30;
      cell.mini_slot = (c == 7);
    } else {
      cell.bandwidth_mhz = 10.0;
    }
    cfg.cells.push_back(cell);
  }
  cfg.fault = *fault::profile_by_name(profile);
  cfg.fault_seed = 3;
  return cfg;
}

// UE 1: a PBE flow aggregating an LTE+NR pair — the measurement pipeline
// itself fuses heterogeneous clocks. UEs 2 and 3 migrate across shards
// AND across RATs under the storm.
std::vector<int> populate_mixed_nr(sim::Scenario& s) {
  sim::UeSpec u1;
  u1.id = 1;
  u1.cell_indices = {0, 1};  // LTE primary + NR 30 kHz secondary
  s.add_ue(u1);
  sim::UeSpec u2;
  u2.id = 2;
  u2.cell_indices = {2};                 // LTE
  u2.serving_sets = {{7}, {3}, {6, 7}};  // NR cross, NR same-cluster, mixed
  s.add_ue(u2);
  sim::UeSpec u3;
  u3.id = 3;
  u3.cell_indices = {4, 5};      // mixed pair
  u3.serving_sets = {{1}, {4}};  // NR-only cross, LTE-only same-cluster
  s.add_ue(u3);

  sim::BackgroundSpec bg;
  bg.cell_index = 3;  // background load on a 120 kHz cell
  bg.n_users = 3;
  s.add_background(bg);

  std::vector<int> flows;
  const char* algos[] = {"pbe", "gcc", "cubic"};
  for (int i = 0; i < 3; ++i) {
    sim::FlowSpec fs;
    fs.algo = algos[i];
    fs.ue = static_cast<mac::UeId>(i + 1);
    fs.stop = kShardStop;
    flows.push_back(s.add_flow(fs));
  }
  return flows;
}

RunDigest run_mixed_nr_once(const std::string& profile, std::uint64_t seed,
                            int shards, int threads) {
  sim::set_default_shards(shards);
  par::set_default_threads(threads);
  obs::Trace::instance().start(obs::TraceConfig{});

  auto cfg = mixed_nr_config(profile, seed);
  sim::Scenario s{cfg};
  const auto flows = populate_mixed_nr(s);
  s.run_until(kShardStop);

  RunDigest d;
  for (int f : flows) {
    s.stats(f).finish(kShardStop);
    d.tput += s.stats(f).avg_tput_mbps();
    d.avg_d += s.stats(f).avg_delay_ms();
    const auto& wins = s.stats(f).window_tputs_mbps().samples();
    d.wins.insert(d.wins.end(), wins.begin(), wins.end());
    const auto& dl = s.stats(f).delays_ms().samples();
    d.delays.insert(d.delays.end(), dl.begin(), dl.end());
  }
  d.attempts = s.pbe_client(flows[0])->monitor().total_candidates_tried();
  d.p50_d = s.ue_domain(2);
  d.p95_d = s.ue_domain(3);

  obs::Trace::instance().stop();
  d.trace_digest = obs::Trace::instance().digest();
  obs::Trace::instance().clear();
  sim::set_default_shards(1);
  par::set_default_threads(1);
  return d;
}

class MixedNrDeterminismTest : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override {
    par::set_default_threads(1);
    sim::set_default_shards(1);
  }
};

TEST_P(MixedNrDeterminismTest, AnyShardAndThreadCountIsByteIdentical) {
  const auto& profile = GetParam();
  const auto base = run_mixed_nr_once(profile, 11, 1, 1);
  ASSERT_GT(base.wins.size(), 0u);
  ASSERT_GT(base.attempts, 0u);
  for (const int shards : {1, 4}) {
    for (const int threads : {1, 8}) {
      if (shards == 1 && threads == 1) continue;  // the base itself
      const auto r = run_mixed_nr_once(profile, 11, shards, threads);
      EXPECT_EQ(base.tput, r.tput)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(base.attempts, r.attempts)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(base.trace_digest, r.trace_digest)
          << "shards=" << shards << " threads=" << threads;
      ASSERT_EQ(base.wins.size(), r.wins.size());
      for (std::size_t i = 0; i < base.wins.size(); ++i) {
        ASSERT_EQ(base.wins[i], r.wins[i])
            << "window " << i << " shards=" << shards
            << " threads=" << threads;
      }
      ASSERT_EQ(base.delays.size(), r.delays.size());
      for (std::size_t i = 0; i < base.delays.size(); ++i) {
        ASSERT_EQ(base.delays[i], r.delays[i])
            << "delay sample " << i << " shards=" << shards
            << " threads=" << threads;
      }
      EXPECT_TRUE(base == r) << "shards=" << shards
                             << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, MixedNrDeterminismTest,
                         ::testing::Values("none", "handover-storm"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// A capture recorded from a fully sharded, fully threaded run must carry
// the same pipeline digest as a serial unsharded run, and replay to it
// byte-identically (pbecc::cap's tentpole guarantee, now from shards).
TEST(ShardDeterminism, ShardedRecordingReplaysByteIdentical) {
  const std::string path =
      ::testing::TempDir() + "determinism_shard_cap.pbt";

  sim::set_default_shards(8);
  par::set_default_threads(8);
  cap::TraceWriter writer(path);
  cap::PipelineDigest live;
  {
    auto cfg = sharded_config("handover-storm", 11);
    cfg.capture = &writer;
    cfg.digest = &live;
    sim::Scenario s{cfg};
    populate_sharded(s);
    s.run_until(kShardStop);
  }
  ASSERT_TRUE(writer.close()) << writer.error();
  EXPECT_GT(live.observations(), 0u);
  EXPECT_GT(live.probes(), 0u);

  // Same scenario, no shards, one thread: the tap stream itself must not
  // depend on the execution geometry.
  sim::set_default_shards(1);
  par::set_default_threads(1);
  cap::PipelineDigest unsharded;
  {
    auto cfg = sharded_config("handover-storm", 11);
    cfg.digest = &unsharded;
    sim::Scenario s{cfg};
    populate_sharded(s);
    s.run_until(kShardStop);
  }
  EXPECT_TRUE(live == unsharded);

  cap::TraceReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  cap::PipelineDigest replayed;
  cap::ReplayDriver driver(reader.header(), &replayed);
  driver.run(reader);
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(live == replayed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pbecc
