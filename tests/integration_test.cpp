// Integration tests: whole-system behaviours the paper's evaluation relies
// on, run end to end through the scenario harness (decoder in the loop).
#include <gtest/gtest.h>

#include "sim/algorithms.h"
#include "sim/location.h"
#include "sim/scenario.h"
#include "util/stats.h"

namespace pbecc::sim {
namespace {

using util::kMillisecond;
using util::kSecond;

Scenario idle_two_cell_scenario(std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
  return Scenario{cfg};
}

TEST(Integration, PbeFillsIdleWirelessPipeWithLowDelay) {
  auto s = idle_two_cell_scenario();
  UeSpec ue;
  ue.cell_indices = {0, 1};
  ue.trace = phy::MobilityTrace::stationary(-92.0);
  s.add_ue(ue);
  FlowSpec fs;
  fs.algo = "pbe";
  fs.path.one_way_delay = 25 * kMillisecond;
  fs.stop = fs.start + 8 * kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop + 200 * kMillisecond);
  s.stats(f).finish(fs.stop);

  // Two 10 MHz carriers at -92 dBm support roughly 100-130 Mbit/s of
  // goodput; PBE-CC must find it (including activating the secondary)...
  EXPECT_GT(s.stats(f).avg_tput_mbps(), 70.0);
  EXPECT_TRUE(s.bs().ca(1).ever_aggregated());
  // ...while keeping delay near the 25 ms propagation floor.
  EXPECT_LT(s.stats(f).median_delay_ms(), 40.0);
  EXPECT_LT(s.stats(f).p95_delay_ms(), 60.0);
}

TEST(Integration, PbeSwitchesToInternetBottleneckState) {
  auto s = idle_two_cell_scenario();
  UeSpec ue;
  ue.cell_indices = {0};
  s.add_ue(ue);
  FlowSpec fs;
  fs.algo = "pbe";
  fs.path.internet_rate = 8e6;  // wireless supports ~45: Internet wins
  fs.path.internet_buffer_bytes = 128 * 1024;
  fs.stop = fs.start + 8 * kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop + 200 * kMillisecond);
  s.stats(f).finish(fs.stop);

  // Rate converges to the Internet bottleneck without collapsing.
  EXPECT_NEAR(s.stats(f).avg_tput_mbps(), 8.0, 2.0);
  // The client detected the Internet bottleneck for a substantial share
  // of the flow.
  EXPECT_GT(s.pbe_client(f)->internet_state_fraction(), 0.3);
  // And the bounded probing kept the bottleneck queue from standing full:
  // delay stays well below the 128 KB buffer's worst case (~128 ms extra).
  EXPECT_LT(s.stats(f).p95_delay_ms(), 130.0);
}

TEST(Integration, PbeBeatsBbrDelayAtSimilarThroughput) {
  // The paper's headline (Table 1): comparable throughput, a fraction of
  // the delay. One busy single-carrier location, identical seeds.
  const auto loc = location(2);
  const auto pbe = run_location(loc, "pbe", 10 * kSecond);
  const auto bbr = run_location(loc, "bbr", 10 * kSecond);
  EXPECT_GT(pbe.avg_tput_mbps, bbr.avg_tput_mbps * 0.85);
  EXPECT_LT(pbe.p95_delay_ms, bbr.p95_delay_ms * 0.6);
}

TEST(Integration, CubicBufferbloats) {
  const auto loc = location(2);
  const auto cubic = run_location(loc, "cubic", 8 * kSecond);
  const auto pbe = run_location(loc, "pbe", 8 * kSecond);
  EXPECT_GT(cubic.p95_delay_ms, pbe.p95_delay_ms * 2.0);
}

TEST(Integration, ConservativeAlgorithmsDontTriggerCa) {
  // Fig 15: Sprout/PCC never push hard enough to activate a secondary
  // carrier, PBE-CC does.
  ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
  for (const std::string algo : {"pbe", "sprout", "pcc"}) {
    Scenario s{cfg};
    UeSpec ue;
    ue.cell_indices = {0, 1};
    s.add_ue(ue);
    FlowSpec fs;
    fs.algo = algo;
    fs.stop = fs.start + 6 * kSecond;
    s.add_flow(fs);
    s.run_until(fs.stop);
    if (algo == "pbe") {
      EXPECT_TRUE(s.bs().ca(1).ever_aggregated()) << algo;
    } else {
      EXPECT_FALSE(s.bs().ca(1).ever_aggregated()) << algo;
    }
  }
}

TEST(Integration, MultiUserFairnessOfPbe) {
  // §6.4.1: concurrent PBE-CC flows converge to a fair share of the
  // shared primary cell.
  ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.cells = {{10.0, 0.02}};
  Scenario s{cfg};
  for (mac::UeId id = 1; id <= 3; ++id) {
    UeSpec ue;
    ue.id = id;
    ue.cell_indices = {0};
    s.add_ue(ue);
  }
  std::vector<int> flows;
  for (mac::UeId id = 1; id <= 3; ++id) {
    FlowSpec fs;
    fs.algo = "pbe";
    fs.ue = id;
    fs.start = 100 * kMillisecond;
    fs.stop = 8 * kSecond;
    flows.push_back(s.add_flow(fs));
  }
  // Measure allocated PRBs over the steady-state second half.
  std::map<mac::UeId, long> prbs;
  s.run_until(4 * kSecond);
  s.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    for (const auto& a : r.data_allocs) prbs[a.ue] += a.n_prbs;
  });
  s.run_until(8 * kSecond);
  std::vector<double> shares;
  for (const auto& [id, p] : prbs) shares.push_back(static_cast<double>(p));
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_GT(util::jain_index(shares), 0.9);
}

TEST(Integration, RttFairnessOfPbe) {
  // §6.4.2: flows with very different propagation delays still share the
  // cell fairly (PBE computes its fair share explicitly).
  ScenarioConfig cfg;
  cfg.seed = 17;
  cfg.cells = {{10.0, 0.02}};
  Scenario s{cfg};
  const util::Duration delays[] = {26 * kMillisecond, 32 * kMillisecond,
                                   148 * kMillisecond};  // RTT 52/64/297 ms
  for (mac::UeId id = 1; id <= 3; ++id) {
    UeSpec ue;
    ue.id = id;
    ue.cell_indices = {0};
    s.add_ue(ue);
    FlowSpec fs;
    fs.algo = "pbe";
    fs.ue = id;
    fs.path.one_way_delay = delays[id - 1];
    fs.start = 100 * kMillisecond;
    fs.stop = 16 * kSecond;
    s.add_flow(fs);
  }
  // The 297 ms flow's control loop runs ~6x slower than the others'; give
  // the explicit fair-share mechanism a few of its RTTs to equalize, then
  // measure the steady state.
  std::map<mac::UeId, long> prbs;
  s.run_until(8 * kSecond);
  s.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    for (const auto& a : r.data_allocs) prbs[a.ue] += a.n_prbs;
  });
  s.run_until(16 * kSecond);
  std::vector<double> shares;
  for (const auto& [id, p] : prbs) shares.push_back(static_cast<double>(p));
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_GT(util::jain_index(shares), 0.9);
}

TEST(Integration, TcpFriendliness) {
  // §6.4.3: PBE-CC coexists with a loss-based flow; the base station's
  // per-user fair scheduler prevents either from starving.
  ScenarioConfig cfg;
  cfg.seed = 19;
  cfg.cells = {{10.0, 0.02}};
  Scenario s{cfg};
  for (mac::UeId id = 1; id <= 2; ++id) {
    UeSpec ue;
    ue.id = id;
    ue.cell_indices = {0};
    s.add_ue(ue);
  }
  FlowSpec pbe;
  pbe.algo = "pbe";
  pbe.ue = 1;
  pbe.stop = 10 * kSecond;
  const int f_pbe = s.add_flow(pbe);
  FlowSpec cubic;
  cubic.algo = "cubic";
  cubic.ue = 2;
  cubic.stop = 10 * kSecond;
  const int f_cubic = s.add_flow(cubic);
  s.run_until(10 * kSecond);
  s.stats(f_pbe).finish(10 * kSecond);
  s.stats(f_cubic).finish(10 * kSecond);
  const double a = s.stats(f_pbe).avg_tput_mbps();
  const double b = s.stats(f_cubic).avg_tput_mbps();
  const double shares[] = {a, b};
  EXPECT_GT(util::jain_index(shares), 0.85) << "pbe=" << a << " cubic=" << b;
}

TEST(Integration, MobilityTracking) {
  // §6.3.2: the -85 -> -105 -> -85 dBm walk. PBE-CC must ride capacity
  // down and up without building a large queue.
  ScenarioConfig cfg;
  cfg.seed = 23;
  cfg.cells = {{10.0, 0.02}};
  Scenario s{cfg};
  UeSpec ue;
  ue.cell_indices = {0};
  ue.trace = phy::MobilityTrace({{0, -88},
                                 {5 * kSecond, -88},
                                 {10 * kSecond, -105},
                                 {12 * kSecond, -88},
                                 {16 * kSecond, -88}});
  s.add_ue(ue);
  FlowSpec fs;
  fs.algo = "pbe";
  fs.stop = 16 * kSecond;
  const int f = s.add_flow(fs);
  s.run_until(16 * kSecond);
  s.stats(f).finish(16 * kSecond);
  EXPECT_GT(s.stats(f).avg_tput_mbps(), 15.0);
  // Weak-signal phase has less capacity but delay must not blow up.
  EXPECT_LT(s.stats(f).p95_delay_ms(), 90.0);
}

TEST(Integration, CompetitorOnOffTracking) {
  // §6.3.3: a 4-second on / 4-second off fixed-rate competitor; PBE-CC
  // sheds rate during "on" and reclaims the idle capacity during "off".
  ScenarioConfig cfg;
  cfg.seed = 29;
  cfg.cells = {{10.0, 0.02}};
  Scenario s{cfg};
  for (mac::UeId id = 1; id <= 2; ++id) {
    UeSpec ue;
    ue.id = id;
    ue.cell_indices = {0};
    s.add_ue(ue);
  }
  FlowSpec fs;
  fs.algo = "pbe";
  fs.stop = 16 * kSecond;
  const int f = s.add_flow(fs);
  // Competitor active on seconds [4,8) and [12,16).
  for (int burst = 0; burst < 2; ++burst) {
    FlowSpec comp;
    comp.algo = "fixed";
    comp.fixed_rate = 60e6;
    comp.ue = 2;
    comp.start = (4 + burst * 8) * kSecond;
    comp.stop = comp.start + 4 * kSecond;
    s.add_flow(comp);
  }
  s.run_until(16 * kSecond);
  s.stats(f).finish(16 * kSecond);
  // Delay stays controlled through both competitor bursts.
  EXPECT_LT(s.stats(f).p95_delay_ms(), 110.0);
  EXPECT_GT(s.stats(f).avg_tput_mbps(), 15.0);
}

TEST(Integration, DeterministicGivenSeed) {
  const auto loc = location(5);
  const auto a = run_location(loc, "pbe", 3 * kSecond);
  const auto b = run_location(loc, "pbe", 3 * kSecond);
  EXPECT_DOUBLE_EQ(a.avg_tput_mbps, b.avg_tput_mbps);
  EXPECT_DOUBLE_EQ(a.p95_delay_ms, b.p95_delay_ms);
}

TEST(Integration, HarqDelaySignature) {
  // Fig 8: under load, one-way delays show the +8 ms retransmission step.
  ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.cells = {{10.0, 0.0}};
  Scenario s{cfg};
  UeSpec ue;
  ue.cell_indices = {0};
  // -94 dBm: plenty of capacity (~50 Mbit/s) so no queue forms, but large
  // transport blocks at 24 Mbit/s still see a ~2% block error rate.
  ue.trace = phy::MobilityTrace::stationary(-94.0);
  s.add_ue(ue);
  FlowSpec fs;
  fs.algo = "fixed";
  fs.fixed_rate = 24e6;
  fs.path.jitter = 0;
  fs.stop = 10 * kSecond;
  const int f = s.add_flow(fs);
  s.run_until(10 * kSecond);
  s.stats(f).finish(10 * kSecond);
  const auto& d = s.stats(f).delays_ms();
  // Most packets near the floor; an 8 ms (or multiple) step for the tail.
  const double floor_ms = d.percentile(10);
  EXPECT_GT(d.percentile(99), floor_ms + 7.0);
  EXPECT_LT(d.percentile(50), floor_ms + 4.0);
}

}  // namespace
}  // namespace pbecc::sim
