// Unit tests for the pbecc::check invariant layer: recording semantics,
// per-name counts, deep-check gating, reset isolation, and the obs mirror.
#include <gtest/gtest.h>

#include "check/check.h"
#include "obs/metrics.h"

namespace pbecc {
namespace {

// Each test resets the registry: invariants fire from anywhere in the
// process (that is the point of the layer), so only deltas are meaningful.
class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override { check::reset(); }
  void TearDown() override { check::reset(); }
};

TEST_F(CheckTest, PassingInvariantRecordsNothing) {
  PBECC_INVARIANT(1 + 1 == 2, "check_test_pass");
  EXPECT_EQ(check::violations(), 0u);
  EXPECT_EQ(check::violations("check_test_pass"), 0u);
  EXPECT_TRUE(check::describe_violations().empty());
}

TEST_F(CheckTest, FailingInvariantIsRecordedNotThrown) {
  // Never throws or aborts in the default mode: a congestion controller
  // must not crash a connection over a diagnostic.
  PBECC_INVARIANT(false, "check_test_fail_a");
  PBECC_INVARIANT(false, "check_test_fail_a");
  PBECC_INVARIANT(false, "check_test_fail_b");
  EXPECT_EQ(check::violations(), 3u);
  EXPECT_EQ(check::violations("check_test_fail_a"), 2u);
  EXPECT_EQ(check::violations("check_test_fail_b"), 1u);
  EXPECT_EQ(check::violations("check_test_never_fired"), 0u);
}

TEST_F(CheckTest, DescribeNamesEverySiteWithCounts) {
  PBECC_INVARIANT(false, "check_test_digest");
  PBECC_INVARIANT(false, "check_test_digest");
  const std::string d = check::describe_violations();
  EXPECT_NE(d.find("check_test_digest"), std::string::npos);
  EXPECT_NE(d.find("x2"), std::string::npos);
  EXPECT_NE(d.find("check_test.cpp"), std::string::npos);

  const auto all = check::all_violations();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].first, "check_test_digest");
  EXPECT_EQ(all[0].second, 2u);
}

TEST_F(CheckTest, ResetZeroesEverything) {
  PBECC_INVARIANT(false, "check_test_reset");
  ASSERT_GT(check::violations(), 0u);
  check::reset();
  EXPECT_EQ(check::violations(), 0u);
  EXPECT_EQ(check::violations("check_test_reset"), 0u);
  EXPECT_TRUE(check::all_violations().empty());
}

TEST_F(CheckTest, DeepInvariantGatedByBuildFlag) {
  // In a -DPBECC_CHECK=ON build the condition is evaluated and recorded;
  // otherwise the macro compiles to nothing (the condition must not even
  // be evaluated — side effects prove it).
  int evaluations = 0;
  PBECC_DEEP_INVARIANT((++evaluations, false), "check_test_deep");
  if constexpr (check::kDeep) {
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(check::violations("check_test_deep"), 1u);
  } else {
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(check::violations("check_test_deep"), 0u);
  }
}

TEST_F(CheckTest, MirroredIntoObsRegistry) {
  const std::uint64_t before = obs::counter("check.violations").value();
  const std::uint64_t named_before =
      obs::counter("check.violation.check_test_mirror").value();
  PBECC_INVARIANT(false, "check_test_mirror");
  if constexpr (obs::kCompiled) {
    EXPECT_EQ(obs::counter("check.violations").value(), before + 1);
    EXPECT_EQ(obs::counter("check.violation.check_test_mirror").value(),
              named_before + 1);
  } else {
    // Metrics compiled out: the check layer's own bookkeeping still works.
    EXPECT_EQ(check::violations("check_test_mirror"), 1u);
  }
}

TEST_F(CheckTest, AbortModeToggle) {
  EXPECT_FALSE(check::abort_on_violation());
  check::set_abort_on_violation(true);
  EXPECT_TRUE(check::abort_on_violation());
  check::set_abort_on_violation(false);
  EXPECT_FALSE(check::abort_on_violation());
}

}  // namespace
}  // namespace pbecc
