// Scaled-down runs of the soak drivers (src/sim/soak.h): the full
// city-scale lengths live in bench_soak; here we verify the harness itself
// — zero invariant violations, bounded state maps, sub-1e-9 WindowedMean
// drift, and that the scenarios actually exercise churn/storms/reconfig.
#include <gtest/gtest.h>

#include "check/check.h"
#include "sim/soak.h"

namespace pbecc::sim {
namespace {

TEST(PipelineSoak, CleanAtSmallScale) {
  PipelineSoakConfig cfg;
  cfg.subframes = 30'000;
  cfg.reconfig_period_sf = 10'000;   // scaled so reconfigs still happen
  cfg.rotate_period_sf = 2'000;
  cfg.storm_period_sf = 8'000;
  cfg.storm_len_sf = 500;
  cfg.window_jitter_period_sf = 1'000;
  const SoakReport r = run_pipeline_soak(cfg);

  EXPECT_EQ(r.invariant_violations, 0u) << r.violation_digest;
  for (const auto& f : r.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(r.ok());
  EXPECT_LT(r.max_mean_drift, 1e-9);

  // The run must be non-trivial: churn, storms and reconfigs all occurred.
  EXPECT_GT(r.churn_events, 100u);
  EXPECT_GT(r.handovers, 5u);
  EXPECT_EQ(r.reconfigs, 3u);  // sf 10k, 20k, 30k
  EXPECT_GT(r.decode_attempts, 0u);

  // Bounded state: never more cells than configured, tracker maps capped.
  EXPECT_LE(r.max_estimator_cells, 3u);
  EXPECT_GT(r.max_estimator_cells, 0u);
  // Pool + own RNTI + the window-scaled alias allowance (see soak.cpp).
  EXPECT_LE(r.max_tracker_users,
            static_cast<std::size_t>(cfg.rnti_pool) + 1 + 200);
}

TEST(MacSoak, CleanAtSmallScale) {
  MacSoakConfig cfg;
  cfg.subframes = 12'000;
  cfg.storm_period_sf = 4'000;
  cfg.storm_len_sf = 400;
  cfg.churn_per_sf = 0.01;  // scaled up so short runs still churn
  const SoakReport r = run_mac_soak(cfg);

  EXPECT_EQ(r.invariant_violations, 0u) << r.violation_digest;
  for (const auto& f : r.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(r.ok());

  EXPECT_GT(r.delivered_packets, 1000u);
  EXPECT_GT(r.churn_events, 10u);
  EXPECT_GT(r.handovers, 10u);
  EXPECT_LE(r.max_ues, static_cast<std::size_t>(cfg.fg_ues + cfg.bg_ue_pool));
  EXPECT_LE(r.max_ue_cells, 2u);
  EXPECT_GT(r.max_ue_cells, 0u);
}

TEST(SoakReport, JsonCarriesVerdict) {
  SoakReport r;
  r.subframes = 5;
  r.max_mean_drift = 2.5e-12;
  EXPECT_NE(r.to_json().find("\"ok\": true"), std::string::npos);
  r.failures.push_back("boom");
  EXPECT_NE(r.to_json().find("\"ok\": false"), std::string::npos);
  r.failures.clear();
  r.invariant_violations = 1;
  EXPECT_NE(r.to_json().find("\"ok\": false"), std::string::npos);
}

TEST(SoakDrivers, DeterministicPerSeed) {
  PipelineSoakConfig cfg;
  cfg.subframes = 5'000;
  const SoakReport a = run_pipeline_soak(cfg);
  const SoakReport b = run_pipeline_soak(cfg);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.decode_attempts, b.decode_attempts);
  EXPECT_EQ(a.churn_events, b.churn_events);
}

}  // namespace
}  // namespace pbecc::sim
