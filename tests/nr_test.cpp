// Unit tests for src/nr and the NR-aware paths threaded through the
// pipeline: scalable numerology, CORESET/search-space candidate
// enumeration (per SCS, encode and decode side), the polar coding seam,
// heterogeneous-clock message fusion, the mixed LTE+NR scenario axis, and
// the .pbt v1/v2 compatibility contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <vector>

#include "cap/replay.h"
#include "cap/taps.h"
#include "cap/trace_reader.h"
#include "cap/trace_writer.h"
#include "decoder/blind_decoder.h"
#include "decoder/message_fusion.h"
#include "nr/coreset.h"
#include "nr/numerology.h"
#include "nr/polar.h"
#include "phy/convolutional.h"
#include "phy/pdcch.h"
#include "sim/location.h"
#include "util/rng.h"

namespace pbecc {
namespace {

// ------------------------------------------------------------- numerology

TEST(Numerology, SlotClockScalesByPowerOfTwo) {
  EXPECT_EQ(nr::scs_khz(nr::Scs::k15kHz), 15);
  EXPECT_EQ(nr::scs_khz(nr::Scs::k30kHz), 30);
  EXPECT_EQ(nr::scs_khz(nr::Scs::k120kHz), 120);
  EXPECT_EQ(nr::slots_per_subframe(nr::Scs::k15kHz), 1);
  EXPECT_EQ(nr::slots_per_subframe(nr::Scs::k30kHz), 2);
  EXPECT_EQ(nr::slots_per_subframe(nr::Scs::k120kHz), 8);
  EXPECT_EQ(nr::slot_duration(nr::Scs::k15kHz), 1000 * util::kMicrosecond);
  EXPECT_EQ(nr::slot_duration(nr::Scs::k30kHz), 500 * util::kMicrosecond);
  EXPECT_EQ(nr::slot_duration(nr::Scs::k120kHz), 125 * util::kMicrosecond);
}

TEST(Numerology, ScsFromKhz) {
  EXPECT_EQ(nr::scs_from_khz(15), nr::Scs::k15kHz);
  EXPECT_EQ(nr::scs_from_khz(30), nr::Scs::k30kHz);
  EXPECT_EQ(nr::scs_from_khz(120), nr::Scs::k120kHz);
  EXPECT_TRUE(nr::valid_scs_khz(30));
  EXPECT_FALSE(nr::valid_scs_khz(60));  // mu 2 not modeled
  EXPECT_THROW(nr::scs_from_khz(60), std::invalid_argument);
}

TEST(Numerology, PrbTablesMatch38101) {
  // 38.101-1 Table 5.3.2-1 (FR1) and 38.101-2 (FR2) spot checks.
  EXPECT_EQ(nr::nr_prbs_for(nr::Scs::k15kHz, 10.0), 52);
  EXPECT_EQ(nr::nr_prbs_for(nr::Scs::k15kHz, 50.0), 270);
  EXPECT_EQ(nr::nr_prbs_for(nr::Scs::k30kHz, 20.0), 51);
  EXPECT_EQ(nr::nr_prbs_for(nr::Scs::k30kHz, 100.0), 273);
  EXPECT_EQ(nr::nr_prbs_for(nr::Scs::k120kHz, 50.0), 32);
  EXPECT_EQ(nr::nr_prbs_for(nr::Scs::k120kHz, 400.0), 264);
  EXPECT_THROW(nr::nr_prbs_for(nr::Scs::k120kHz, 10.0),
               std::invalid_argument);
}

TEST(Numerology, CellConfigTick) {
  phy::CellConfig lte{1, 10.0};
  EXPECT_EQ(lte.tick(), util::kSubframe);
  EXPECT_EQ(lte.slots_per_subframe(), 1);

  phy::CellConfig c{2, 50.0};
  c.rat = phy::Rat::kNr;
  c.scs = nr::Scs::k120kHz;
  EXPECT_EQ(c.slots_per_subframe(), 8);
  EXPECT_EQ(c.tick(), util::kSubframe / 8);
  EXPECT_EQ(c.n_prbs(), 32);
  EXPECT_EQ(c.n_cces(), c.coreset.n_cces());
}

// ------------------------------------------------ CORESET candidate starts

TEST(Coreset, CandidateStartsAreAlignedMonotoneAndInPool) {
  for (const int n_cces : {6, 8, 10, 16, 24, 32}) {
    for (const int al : nr::kNrAggregationLevels) {
      for (const int m : {1, 2, 4, 8}) {
        const auto starts = nr::candidate_starts(n_cces, al, m);
        EXPECT_LE(static_cast<int>(starts.size()), m);
        int prev = -1;
        for (const int s : starts) {
          EXPECT_EQ(s % al, 0) << "n_cces=" << n_cces << " al=" << al;
          EXPECT_LE(s + al, n_cces);
          EXPECT_GT(s, prev);  // strictly increasing => deduped
          prev = s;
        }
      }
    }
  }
}

TEST(Coreset, CandidateStarts38213SpotChecks) {
  // 38.213 §10.1 hashing, Y_p = 0: start(m) = L*floor(m*N_cce/(L*M_L)).
  using V = std::vector<int>;
  EXPECT_EQ(nr::candidate_starts(16, 1, 4), (V{0, 4, 8, 12}));
  EXPECT_EQ(nr::candidate_starts(16, 2, 4), (V{0, 4, 8, 12}));
  EXPECT_EQ(nr::candidate_starts(16, 4, 2), (V{0, 8}));
  EXPECT_EQ(nr::candidate_starts(16, 8, 2), (V{0, 8}));
  EXPECT_EQ(nr::candidate_starts(16, 16, 1), (V{0}));
  // AL wider than the pool: no candidates.
  EXPECT_TRUE(nr::candidate_starts(8, 16, 1).empty());
  // More candidates than slots: duplicates collapse.
  EXPECT_EQ(nr::candidate_starts(8, 4, 4), (V{0, 4}));
}

// The default 48x2 CORESET (16 CCEs) and the per-SCS scenario CORESETs:
// candidate enumeration is what the decoder blindly walks, so its size is
// the decoder's per-tick work budget.
TEST(Coreset, DefaultSearchSpaceCandidateCount) {
  const nr::CoresetConfig coreset;  // 48 RBs x 2 symbols
  ASSERT_EQ(coreset.n_cces(), 16);
  const nr::SearchSpaceConfig ss;
  int total = 0;
  for (int i = 0; i < nr::kNumNrAggregationLevels; ++i) {
    const int al = nr::kNrAggregationLevels[i];
    total += static_cast<int>(
        nr::candidate_starts(coreset.n_cces(), al, ss.candidates_for(al))
            .size());
  }
  // {4,4,2,2,1} candidates at ALs {1,2,4,8,16} in 16 CCEs: 4+4+2+2+1.
  EXPECT_EQ(total, 13);
}

// -------------------------------------------------------- polar seam pin

// The polar_* functions are a documented stand-in delegating to the
// 36.212 convolutional codec; PdcchBuilder's kPolar encode side uses
// conv_encode directly. Pin both sides to identical bits so the seam
// cannot silently split (swapping in a real polar codec must replace
// both at once).
TEST(PolarSeam, EncodeMatchesConvolutionalStandIn) {
  util::Rng rng{42};
  for (const int bits : {30, 37, 45, 51}) {
    util::BitVec payload;
    for (int i = 0; i < bits; ++i) payload.push_bit(rng.uniform() < 0.5);
    const auto mother = nr::polar_encode(payload);
    EXPECT_EQ(mother, phy::conv_encode(payload));
    const std::size_t target = 2 * mother.size();
    EXPECT_EQ(nr::polar_rate_match(mother, target),
              phy::rate_match(mother, target));
    const auto decoded = nr::polar_decode(
        nr::polar_rate_match(mother, target), payload.size());
    EXPECT_EQ(decoded, payload);
  }
}

TEST(PolarSeam, MinRegionBitsMatchesConvRule) {
  for (const std::size_t bits : {30u, 45u, 53u}) {
    EXPECT_EQ(nr::polar_min_region_bits(bits),
              2 * (bits + phy::kConvTailBits));
  }
}

// -------------------------------------- NR PDCCH builder->decoder, per SCS

phy::Dci nr_dci(phy::Rnti rnti, int n_prbs,
                phy::DciFormat fmt = phy::DciFormat::kNrFormat1_0) {
  phy::Dci d;
  d.rnti = rnti;
  d.format = fmt;
  d.n_prbs = static_cast<std::uint16_t>(n_prbs);
  d.mcs = {10, phy::format_is_mimo(fmt) ? 2 : 1};
  return d;
}

phy::CellConfig nr_cell_for(nr::Scs scs) {
  // The scenario_config_for carriers: a 38.101 bandwidth per SCS with a
  // CORESET that fits it.
  phy::CellConfig c{7, scs == nr::Scs::k15kHz   ? 10.0
                       : scs == nr::Scs::k30kHz ? 20.0
                                                : 50.0};
  c.rat = phy::Rat::kNr;
  c.scs = scs;
  c.coreset.rbs = scs == nr::Scs::k120kHz ? 30 : 48;
  c.coreset.symbols = 2;
  c.pdcch_coding = phy::PdcchCoding::kPolar;
  return c;
}

// Polar-coded feasibility rule: a format fits an AL-`al` candidate iff the
// region keeps real redundancy after rate matching.
bool polar_fits(phy::DciFormat fmt, int al) {
  const std::size_t msg_bits =
      static_cast<std::size_t>(phy::dci_payload_bits(fmt)) + 16;
  return static_cast<std::size_t>(al * phy::kBitsPerCce) >=
         nr::polar_min_region_bits(msg_bits);
}

TEST(NrPdcch, BuilderDecoderRoundTripPerScs) {
  for (const auto scs :
       {nr::Scs::k15kHz, nr::Scs::k30kHz, nr::Scs::k120kHz}) {
    const auto cell = nr_cell_for(scs);
    for (const int al : {1, 2, 4, 8, 16}) {
      phy::PdcchBuilder b(cell, 3);
      const bool has_candidate =
          !nr::candidate_starts(cell.n_cces(), al,
                                cell.search_space.candidates_for(al))
               .empty();
      if (!polar_fits(phy::DciFormat::kNrFormat1_0, al) || !has_candidate) {
        // Either one CCE cannot keep rate-matched redundancy for a 61-bit
        // message, or the AL is wider than the CORESET's CCE pool (AL16 in
        // the 120 kHz cell's 10 CCEs): the builder must refuse rather than
        // emit a candidate the decoder would never walk.
        EXPECT_FALSE(b.add(nr_dci(0x210, 12), al))
            << "scs=" << nr::scs_khz(scs) << " al=" << al;
        continue;
      }
      ASSERT_TRUE(b.add(nr_dci(0x210, 12), al))
          << "scs=" << nr::scs_khz(scs) << " al=" << al;
      const auto sf = std::move(b).build();
      EXPECT_EQ(sf.tick, nr::slot_duration(scs));
      decoder::BlindDecoder dec{cell};
      const auto msgs = dec.decode(sf);
      ASSERT_EQ(msgs.size(), 1u)
          << "scs=" << nr::scs_khz(scs) << " al=" << al;
      EXPECT_EQ(msgs[0].rnti, 0x210);
      EXPECT_EQ(msgs[0].n_prbs, 12);
      EXPECT_EQ(msgs[0].format, phy::DciFormat::kNrFormat1_0);
    }
  }
}

TEST(NrPdcch, DecoderWalksExactlyTheSearchSpaceCandidates) {
  // An empty but fully-energized CORESET forces the decoder to try every
  // candidate: the per-AL attempt counters must equal the candidate list
  // sizes times the NR format count — the decoder walks the configured
  // search space, not every aligned start the way LTE does.
  for (const auto scs :
       {nr::Scs::k15kHz, nr::Scs::k30kHz, nr::Scs::k120kHz}) {
    const auto cell = nr_cell_for(scs);
    phy::PdcchBuilder b(cell, 0);
    auto sf = std::move(b).build();
    std::fill(sf.cce_used.begin(), sf.cce_used.end(), true);
    decoder::BlindDecoder dec{cell};
    dec.decode(sf);
    const auto& st = dec.stats();
    for (int i = 0; i < nr::kNumNrAggregationLevels; ++i) {
      const int al = nr::kNrAggregationLevels[i];
      const auto starts = nr::candidate_starts(
          cell.n_cces(), al, cell.search_space.candidates_for(al));
      std::size_t feasible_formats = 0;
      for (const auto fmt : phy::kNrDciFormats) {
        if (polar_fits(fmt, al)) ++feasible_formats;
      }
      EXPECT_EQ(st.candidates_by_al[static_cast<std::size_t>(
                    decoder::al_index(al))],
                starts.size() * feasible_formats)
          << "scs=" << nr::scs_khz(scs) << " al=" << al;
    }
  }
}

TEST(NrPdcch, Al16IsNrOnly) {
  // AL16 candidates exist only in NR search spaces; the LTE builder
  // rejects the level outright.
  phy::CellConfig lte{1, 20.0};
  phy::PdcchBuilder lb(lte, 0);
  EXPECT_THROW(lb.add(nr_dci(0x111, 8, phy::DciFormat::kFormat1), 16),
               std::invalid_argument);

  const auto cell = nr_cell_for(nr::Scs::k30kHz);
  phy::PdcchBuilder nb(cell, 0);
  ASSERT_TRUE(nb.add(nr_dci(0x111, 8), 16));
  const auto sf = std::move(nb).build();
  decoder::BlindDecoder dec{cell};
  const auto msgs = dec.decode(sf);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].rnti, 0x111);
}

// ------------------------------------------- heterogeneous-clock fusion

TEST(MixedFusion, LteAndNrClocksInterleave) {
  std::vector<decoder::FusedSubframe> out;
  decoder::MessageFusion fusion(
      [&](const decoder::FusedSubframe& f) { out.push_back(f); });
  fusion.register_cell(1, util::kSubframe);      // LTE
  fusion.register_cell(2, util::kSubframe / 2);  // NR 30 kHz

  // Master subframe 10: the LTE cell ticks once at t=10ms; the NR cell
  // ticks at t=10ms (slot 20) and t=10.5ms (slot 21).
  fusion.on_decoded(1, 10, {});
  EXPECT_TRUE(out.empty());  // t=10ms still waiting on the NR cell
  fusion.on_decoded(2, 20, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, 10 * util::kSubframe);
  ASSERT_EQ(out[0].cells.size(), 2u);  // both cells due on the ms boundary
  fusion.on_decoded(2, 21, {});
  ASSERT_EQ(out.size(), 2u);  // NR-only instant needs no LTE report
  EXPECT_EQ(out[1].time, 10 * util::kSubframe + util::kSubframe / 2);
  ASSERT_EQ(out[1].cells.size(), 1u);
  EXPECT_EQ(out[1].cells[0].cell, 2u);
  EXPECT_EQ(out[1].cells[0].sf_index, 21);
}

// --------------------------------------------- mixed LTE+NR scenario axis

TEST(NrScenario, MixedCarrierRunTracksBothRats) {
  auto loc = sim::location(12);  // 2-cell busy
  loc.seed = 99;
  loc.nr_numerology = 1;  // 30 kHz secondaries
  const auto r = sim::run_location(loc, "pbe", 2 * util::kSecond);
  EXPECT_GT(r.avg_tput_mbps, 1.0);
  EXPECT_GT(r.decode_candidates, 0u);
}

TEST(NrScenario, ScenarioConfigBuildsNrSecondaries) {
  auto loc = sim::location(30);  // 3-cell
  loc.nr_numerology = 3;
  const auto cfg = sim::scenario_config_for(loc);
  ASSERT_EQ(cfg.cells.size(), 3u);
  EXPECT_FALSE(cfg.cells[0].nr);  // primary always stays LTE
  EXPECT_TRUE(cfg.cells[1].nr);
  EXPECT_EQ(cfg.cells[1].scs_khz, 120);
  EXPECT_TRUE(cfg.cells[2].nr);
  EXPECT_TRUE(cfg.cells[2].mini_slot);

  const auto ue = sim::ue_spec_for(loc);
  ASSERT_GE(ue.serving_sets.size(), 2u);  // LTE<->NR handover sets
  EXPECT_EQ(ue.serving_sets[0], (std::vector<std::size_t>{0}));
}

// ----------------------------------------------- .pbt v1/v2 compatibility

// Record the same LTE run with the v1 (pre-NR) and v2 writers: both files
// must replay to the digest of the live run — the version bump cannot
// perturb LTE replays.
TEST(CapCompat, V1LteTraceReplaysByteIdentical) {
  const std::string v1_path = ::testing::TempDir() + "nr_compat_v1.pbt";
  const std::string v2_path = ::testing::TempDir() + "nr_compat_v2.pbt";

  auto loc = sim::location(3);
  loc.seed = 1234;
  cap::PipelineDigest live[2];
  const std::string paths[2] = {v1_path, v2_path};
  for (int v = 1; v <= 2; ++v) {
    cap::TraceWriter writer(paths[v - 1], 256,
                            static_cast<std::uint16_t>(v));
    sim::CaptureOptions capture;
    capture.writer = &writer;
    capture.digest = &live[v - 1];
    sim::run_location(loc, "pbe", 2 * util::kSecond, nullptr, 1, capture);
    ASSERT_TRUE(writer.close()) << writer.error();
    EXPECT_EQ(writer.version(), v);
  }
  // Same seed, same scenario: the live tap stream does not depend on the
  // writer version.
  EXPECT_TRUE(live[0] == live[1]);
  EXPECT_GT(live[0].observations(), 0u);

  for (int v = 1; v <= 2; ++v) {
    cap::TraceReader reader(paths[v - 1]);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.version(), v);
    cap::PipelineDigest replayed;
    cap::ReplayDriver driver(reader.header(), &replayed);
    driver.run(reader);
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_TRUE(live[v - 1] == replayed) << "version " << v;
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(CapCompat, V1WriterRejectsNrConfigurations) {
  const std::string path = ::testing::TempDir() + "nr_compat_reject.pbt";
  cap::TraceWriter writer(path, 256, 1);
  cap::TraceHeader h;
  h.cells.push_back(nr_cell_for(nr::Scs::k30kHz));
  writer.begin(h);
  EXPECT_FALSE(writer.ok());
  std::remove(path.c_str());
}

// NR record -> replay: the tentpole fidelity check. A mixed-carrier
// capture at 120 kHz must replay to the identical pipeline digest.
TEST(CapCompat, NrRecordingReplaysByteIdentical) {
  const std::string path = ::testing::TempDir() + "nr_replay.pbt";
  auto loc = sim::location(12);
  loc.seed = 77;
  loc.nr_numerology = 3;
  cap::TraceWriter writer(path);
  cap::PipelineDigest live;
  sim::CaptureOptions capture;
  capture.writer = &writer;
  capture.digest = &live;
  sim::run_location(loc, "pbe", 2 * util::kSecond, nullptr, 1, capture);
  ASSERT_TRUE(writer.close()) << writer.error();
  EXPECT_GT(live.observations(), 0u);

  cap::TraceReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.version(), cap::kFormatVersion);
  cap::PipelineDigest replayed;
  cap::ReplayDriver driver(reader.header(), &replayed);
  driver.run(reader);
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(live == replayed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pbecc
