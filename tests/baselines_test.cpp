// Unit tests for src/baselines: BBR, CUBIC, Copa, Verus, Sprout, PCC
// Allegro and PCC Vivace. These exercise the published control laws
// directly through synthetic ACK streams.
#include <gtest/gtest.h>

#include "baselines/bbr.h"
#include "baselines/copa.h"
#include "baselines/cubic.h"
#include "baselines/pcc.h"
#include "baselines/sprout.h"
#include "baselines/verus.h"

namespace pbecc::baselines {
namespace {

using util::kMillisecond;
using util::kSecond;

net::AckSample ack(util::Time now, double delivery_rate,
                   util::Duration rtt = 50 * kMillisecond,
                   std::uint64_t delivered = 0) {
  net::AckSample s;
  s.now = now;
  s.rtt = rtt;
  s.one_way_delay = rtt / 2;
  s.acked_bytes = 1500;
  s.delivery_rate = delivery_rate;
  s.total_delivered_bytes = delivered;
  s.bytes_in_flight = 30000;
  return s;
}

// -------------------------------------------------------------------- bbr

TEST(Bbr, StartupUsesHighGain) {
  Bbr bbr;
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  bbr.on_ack(ack(kMillisecond, 10e6));
  EXPECT_NEAR(bbr.pacing_rate(kMillisecond), 2.885 * 10e6, 1e5);
}

TEST(Bbr, BtlBwIsWindowedMax) {
  Bbr bbr;
  bbr.on_ack(ack(kMillisecond, 10e6));
  bbr.on_ack(ack(2 * kMillisecond, 25e6));
  bbr.on_ack(ack(3 * kMillisecond, 15e6));
  EXPECT_NEAR(bbr.btl_bw(3 * kMillisecond), 25e6, 1.0);
}

TEST(Bbr, RtpropIsMin) {
  Bbr bbr;
  bbr.on_ack(ack(kMillisecond, 10e6, 80 * kMillisecond));
  bbr.on_ack(ack(2 * kMillisecond, 10e6, 42 * kMillisecond));
  bbr.on_ack(ack(3 * kMillisecond, 10e6, 90 * kMillisecond));
  EXPECT_EQ(bbr.rtprop(), 42 * kMillisecond);
}

TEST(Bbr, LeavesStartupWhenBandwidthPlateaus) {
  Bbr bbr;
  util::Time t = 0;
  std::uint64_t delivered = 0;
  // Keep delivering the same rate: after 3 plateau rounds -> drain ->
  // probe-bw.
  for (int i = 0; i < 2000 && bbr.mode() != Bbr::Mode::kProbeBw; ++i) {
    t += 5 * kMillisecond;
    delivered += 30000;  // force round turnover
    auto s = ack(t, 20e6);
    s.total_delivered_bytes = delivered;
    s.bytes_in_flight = 10000;
    bbr.on_ack(s);
  }
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
}

TEST(Bbr, ProbeBwCyclesThroughGains) {
  BbrConfig cfg;
  cfg.enter_probe_bw_directly = true;
  Bbr bbr{cfg};
  bbr.seed_estimates(0, 20e6, 40 * kMillisecond);
  util::Time t = 0;
  // Walk past the entry drain.
  for (int i = 0; i < 10; ++i) bbr.on_ack(ack(t += 20 * kMillisecond, 20e6, 40 * kMillisecond));
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
  bool saw_probe = false, saw_drain = false, saw_cruise = false;
  for (int i = 0; i < 100; ++i) {
    bbr.on_ack(ack(t += 20 * kMillisecond, 20e6, 40 * kMillisecond));
    const double gain = bbr.pacing_rate(t) / bbr.btl_bw(t);
    saw_probe |= gain > 1.2;
    saw_drain |= gain < 0.8;
    saw_cruise |= gain > 0.95 && gain < 1.05;
  }
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_cruise);
}

TEST(Bbr, ProbeCapBindsBelowBtlBw) {
  BbrConfig cfg;
  cfg.enter_probe_bw_directly = true;
  cfg.probe_cap = [] { return 8e6; };  // Cf below BtlBw
  Bbr bbr{cfg};
  bbr.seed_estimates(0, 20e6, 40 * kMillisecond);
  util::Time t = 0;
  for (int i = 0; i < 200; ++i) {
    bbr.on_ack(ack(t += 10 * kMillisecond, 20e6, 40 * kMillisecond));
    if (bbr.mode() == Bbr::Mode::kProbeBw) {
      EXPECT_LE(bbr.pacing_rate(t), 20e6 * 0.76);  // only the 0.75 drain exceeds the cap logic
    }
  }
}

TEST(Bbr, ProbeRttShrinksWindow) {
  Bbr bbr;
  util::Time t = 0;
  std::uint64_t delivered = 0;
  bbr.on_ack(ack(t += kMillisecond, 20e6, 40 * kMillisecond, delivered));
  // No new RTT minimum for > 10 s forces PROBE_RTT.
  for (int i = 0; i < 1300; ++i) {
    delivered += 60000;  // keep rounds turning so STARTUP can complete
    auto s = ack(t += 10 * kMillisecond, 20e6, 60 * kMillisecond);
    s.total_delivered_bytes = delivered;
    s.bytes_in_flight = 10000;
    bbr.on_ack(s);
    if (bbr.mode() == Bbr::Mode::kProbeRtt) break;
  }
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  EXPECT_DOUBLE_EQ(bbr.cwnd_bytes(t), 4.0 * 1500);
}

TEST(Bbr, EntryDrainHalvesRate) {
  BbrConfig cfg;
  cfg.enter_probe_bw_directly = true;
  Bbr bbr{cfg};
  bbr.seed_estimates(0, 20e6, 40 * kMillisecond);
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kEntryDrain);
  EXPECT_NEAR(bbr.pacing_rate(0), 10e6, 1e5);
}

// ------------------------------------------------------------------ cubic

TEST(Cubic, SlowStartDoublesPerRtt) {
  Cubic c;
  const double w0 = c.cwnd_segments();
  for (int i = 0; i < 10; ++i) c.on_ack(ack(kMillisecond * (i + 1), 10e6));
  EXPECT_NEAR(c.cwnd_segments(), w0 + 10, 0.01);
}

TEST(Cubic, LossMultiplicativeDecrease) {
  Cubic c;
  for (int i = 0; i < 90; ++i) c.on_ack(ack(kMillisecond * (i + 1), 10e6));
  const double before = c.cwnd_segments();
  net::LossSample l;
  l.now = 200 * kMillisecond;
  l.bytes_in_flight = 100000;
  c.on_loss(l);
  EXPECT_NEAR(c.cwnd_segments(), before * 0.7, 0.01);
}

TEST(Cubic, OneDecreasePerRtt) {
  Cubic c;
  for (int i = 0; i < 90; ++i) c.on_ack(ack(kMillisecond * (i + 1), 10e6));
  net::LossSample l;
  l.now = 200 * kMillisecond;
  l.bytes_in_flight = 100000;
  c.on_loss(l);
  const double after_first = c.cwnd_segments();
  l.now += kMillisecond;  // within the same RTT
  c.on_loss(l);
  EXPECT_DOUBLE_EQ(c.cwnd_segments(), after_first);
}

TEST(Cubic, GrowsTowardWmaxAfterLoss) {
  Cubic c;
  for (int i = 0; i < 200; ++i) c.on_ack(ack(kMillisecond * (i + 1), 10e6));
  net::LossSample l;
  l.now = 300 * kMillisecond;
  l.bytes_in_flight = 100000;
  c.on_loss(l);
  const double after_loss = c.cwnd_segments();
  util::Time t = 300 * kMillisecond;
  for (int i = 0; i < 2000; ++i) c.on_ack(ack(t += 5 * kMillisecond, 10e6));
  EXPECT_GT(c.cwnd_segments(), after_loss * 1.2);
}

TEST(Cubic, RtoCollapses) {
  Cubic c;
  for (int i = 0; i < 200; ++i) c.on_ack(ack(kMillisecond * (i + 1), 10e6));
  net::LossSample l;
  l.now = 300 * kMillisecond;
  l.bytes_in_flight = 0;  // timeout signature
  c.on_loss(l);
  EXPECT_NEAR(c.cwnd_segments(), 10.0, 0.01);
}

// ------------------------------------------------------------------- copa

TEST(Copa, GrowsWhenNoQueueing) {
  Copa c;
  util::Time t = 0;
  const double w0 = c.cwnd_bytes(0);
  // Constant RTT = no queueing delay measured -> dq tiny -> target huge.
  for (int i = 0; i < 500; ++i) c.on_ack(ack(t += 2 * kMillisecond, 10e6, 40 * kMillisecond));
  EXPECT_GT(c.cwnd_bytes(t), w0 * 2);
}

TEST(Copa, BacksOffUnderQueueing) {
  Copa c;
  util::Time t = 0;
  for (int i = 0; i < 500; ++i) c.on_ack(ack(t += 2 * kMillisecond, 10e6, 40 * kMillisecond));
  const double grown = c.cwnd_bytes(t);
  // RTT inflates 3x: standing queue detected; once velocity rebuilds in
  // the downward direction the window collapses.
  for (int i = 0; i < 3000; ++i) c.on_ack(ack(t += 2 * kMillisecond, 10e6, 120 * kMillisecond));
  EXPECT_LT(c.cwnd_bytes(t), grown * 0.5);
}

TEST(Copa, VelocityAcceleratesGrowth) {
  Copa c;
  util::Time t = 0;
  double prev = c.cwnd_bytes(0);
  double first_delta = -1, late_delta = -1;
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 25; ++j) c.on_ack(ack(t += 2 * kMillisecond, 10e6, 40 * kMillisecond));
    const double d = c.cwnd_bytes(t) - prev;
    if (i == 1) first_delta = d;
    if (i == 39) late_delta = d;
    prev = c.cwnd_bytes(t);
  }
  EXPECT_GT(late_delta, first_delta);
}

// ------------------------------------------------------------------ verus

TEST(Verus, LearnsDelayProfile) {
  Verus v;
  util::Time t = 0;
  // Low delay while window small -> profile lets the window grow.
  const double w0 = v.cwnd_bytes(0);
  for (int i = 0; i < 2000; ++i) {
    auto s = ack(t += kMillisecond, 10e6, 45 * kMillisecond);
    s.bytes_in_flight = static_cast<std::uint64_t>(v.cwnd_bytes(t));
    v.on_ack(s);
  }
  EXPECT_GT(v.cwnd_bytes(t), w0);
}

TEST(Verus, ShrinksOnDelaySurge) {
  Verus v;
  util::Time t = 0;
  for (int i = 0; i < 2000; ++i) {
    auto s = ack(t += kMillisecond, 10e6, 45 * kMillisecond);
    s.bytes_in_flight = static_cast<std::uint64_t>(v.cwnd_bytes(t));
    v.on_ack(s);
  }
  const double grown = v.cwnd_bytes(t);
  for (int i = 0; i < 2000; ++i) {
    auto s = ack(t += kMillisecond, 10e6, 400 * kMillisecond);
    s.bytes_in_flight = static_cast<std::uint64_t>(v.cwnd_bytes(t));
    v.on_ack(s);
  }
  EXPECT_LT(v.cwnd_bytes(t), grown);
}

TEST(Verus, LossHalvesWindow) {
  Verus v;
  util::Time t = 0;
  for (int i = 0; i < 1000; ++i) {
    auto s = ack(t += kMillisecond, 10e6, 45 * kMillisecond);
    s.bytes_in_flight = static_cast<std::uint64_t>(v.cwnd_bytes(t));
    v.on_ack(s);
  }
  const double before = v.cwnd_bytes(t);
  net::LossSample l;
  l.now = t;
  l.bytes_in_flight = 10000;
  v.on_loss(l);
  EXPECT_NEAR(v.cwnd_bytes(t), before / 2, 1500.0);
}

// ----------------------------------------------------------------- sprout

TEST(Sprout, TracksStableRateConservatively) {
  Sprout s;
  util::Time t = 0;
  for (int i = 0; i < 3000; ++i) s.on_ack(ack(t += kMillisecond, 12e6));
  // Paces somewhere at-or-below the observed 12 Mbit/s (its acked-bytes
  // stream), never above it by much.
  EXPECT_LT(s.pacing_rate(t), 16e6);
  EXPECT_GT(s.pacing_rate(t), 1e6);
}

TEST(Sprout, WindowCoversHorizonOnly) {
  Sprout s;
  util::Time t = 0;
  for (int i = 0; i < 3000; ++i) s.on_ack(ack(t += kMillisecond, 12e6));
  // cwnd ~ rate * 100 ms.
  const double rate = s.pacing_rate(t);
  EXPECT_NEAR(s.cwnd_bytes(t), rate / 8.0 * 0.1, rate / 8.0 * 0.05);
}

TEST(Sprout, VarianceReducesRate) {
  // A bursty ack stream must produce a more cautious rate than a smooth
  // one with the same mean.
  Sprout smooth, bursty;
  util::Time t = 0;
  for (int i = 0; i < 4000; ++i) {
    t += kMillisecond;
    smooth.on_ack(ack(t, 12e6));
    auto s = ack(t, 12e6);
    s.acked_bytes = (i / 40) % 2 == 0 ? 3000 : 0;  // on-off bursts
    bursty.on_ack(s);
  }
  EXPECT_LT(bursty.pacing_rate(t), smooth.pacing_rate(t));
}

// -------------------------------------------------------------------- pcc

TEST(MonitorIntervalsTest, Accounting) {
  MonitorIntervals mi;
  auto s = ack(kMillisecond, 0, 40 * kMillisecond);
  mi.on_ack(s);
  net::LossSample l;
  l.lost_bytes = 1500;
  mi.on_loss(l);
  for (int i = 2; i <= 20; ++i) mi.on_ack(ack(i * kMillisecond, 0, 40 * kMillisecond));
  const auto r = mi.poll(21 * kMillisecond, 20 * kMillisecond);
  ASSERT_TRUE(r.has_value());
  // 20 acks x 1500 B over 20 ms = 12 Mbit/s.
  EXPECT_NEAR(r->throughput_bps, 12e6, 1e6);
  EXPECT_NEAR(r->loss_rate, 1500.0 / (20 * 1500 + 1500), 1e-6);
  EXPECT_NEAR(r->avg_rtt_ms, 40.0, 0.1);
  // Not ready again immediately.
  EXPECT_FALSE(mi.poll(22 * kMillisecond, 20 * kMillisecond).has_value());
}

TEST(PccAllegro, StartingDoublesWhileUtilityImproves) {
  PccConfig cfg;
  cfg.initial_rate = 1e6;
  PccAllegro pcc{cfg};
  util::Time t = 0;
  const double r0 = pcc.pacing_rate(0);
  // Deliver exactly what is sent: utility keeps improving with rate.
  for (int i = 0; i < 400; ++i) {
    auto s = ack(t += kMillisecond, 0, 30 * kMillisecond);
    s.acked_bytes = static_cast<std::int32_t>(pcc.pacing_rate(t) / 8.0 / 1000.0);
    pcc.on_ack(s);
  }
  EXPECT_GT(pcc.pacing_rate(t), 4 * r0);
}

TEST(PccAllegro, RateStaysWithinBounds) {
  PccConfig cfg;
  PccAllegro pcc{cfg};
  util::Time t = 0;
  util::Rng rng{3};
  for (int i = 0; i < 3000; ++i) {
    auto s = ack(t += kMillisecond, 0, 30 * kMillisecond);
    s.acked_bytes = static_cast<std::int32_t>(rng.uniform(0, 3000));
    pcc.on_ack(s);
    if (i % 7 == 0) {
      net::LossSample l;
      l.lost_bytes = 1500;
      pcc.on_loss(l);
    }
    EXPECT_GE(pcc.pacing_rate(t), cfg.min_rate * 0.9);
    EXPECT_LE(pcc.pacing_rate(t), cfg.max_rate * 1.1);
  }
}

TEST(PccVivace, GradientMovesTowardCapacity) {
  PccConfig cfg;
  cfg.initial_rate = 4e6;
  PccVivace v{cfg};
  util::Time t = 0;
  // Link with 20 Mbit/s capacity, no queue penalty below it.
  for (int i = 0; i < 5000; ++i) {
    auto s = ack(t += kMillisecond, 0, 30 * kMillisecond);
    const double rate = std::min(v.pacing_rate(t), 20e6);
    s.acked_bytes = static_cast<std::int32_t>(rate / 8.0 / 1000.0);
    v.on_ack(s);
  }
  EXPECT_GT(v.pacing_rate(t), 6e6);  // moved up from 4
}

TEST(PccVivace, RttGradientPenalizesOvershoot) {
  PccConfig cfg;
  cfg.initial_rate = 30e6;
  PccVivace v{cfg};
  util::Time t = 0;
  // 10 Mbit/s bottleneck with a real integrating queue: the +eps trial
  // inflates RTT faster than the -eps trial, producing a negative
  // utility gradient that pushes the rate down toward capacity.
  constexpr double cap = 10e6;
  double queue_bits = 0;
  for (int i = 0; i < 20000; ++i) {
    const double rate = v.pacing_rate(t);
    queue_bits = std::max(0.0, queue_bits + (rate - cap) / 1000.0);
    const auto rtt = 30 * kMillisecond +
                     static_cast<util::Duration>(queue_bits / cap * 1e6);
    auto s = ack(t += kMillisecond, 0, rtt);
    s.acked_bytes = static_cast<std::int32_t>(std::min(rate, cap) / 8.0 / 1000.0);
    v.on_ack(s);
  }
  EXPECT_LT(v.pacing_rate(t), 24e6);  // well below the 30 Mbit/s start
}

}  // namespace
}  // namespace pbecc::baselines
