// Unit tests for src/decoder: blind decoding, message fusion, user
// tracking, and the assembled monitor pipeline.
#include <gtest/gtest.h>

#include "decoder/blind_decoder.h"
#include "decoder/message_fusion.h"
#include "decoder/monitor.h"
#include "decoder/user_tracker.h"
#include "nr/numerology.h"
#include "phy/pdcch.h"
#include "util/rng.h"

namespace pbecc::decoder {
namespace {

phy::Dci make_dci(phy::Rnti rnti, int n_prbs, int prb_start = 0,
                  phy::DciFormat fmt = phy::DciFormat::kFormat1, int cqi = 10) {
  phy::Dci d;
  d.rnti = rnti;
  d.format = fmt;
  d.prb_start = static_cast<std::uint16_t>(prb_start);
  d.n_prbs = static_cast<std::uint16_t>(n_prbs);
  d.mcs = {cqi, phy::format_is_mimo(fmt) ? 2 : 1};
  return d;
}

// ---------------------------------------------------------- blind decoder

TEST(BlindDecoder, DecodesCleanSubframe) {
  phy::CellConfig cell{1, 20.0};
  phy::PdcchBuilder b(cell, 3);
  ASSERT_TRUE(b.add(make_dci(0x100, 30, 0), 1));
  ASSERT_TRUE(b.add(make_dci(0x200, 20, 30, phy::DciFormat::kFormat2), 2));
  ASSERT_TRUE(b.add(make_dci(0x300, 4, 50, phy::DciFormat::kFormat1A, 3), 4));
  const auto sf = std::move(b).build();

  BlindDecoder dec{cell};
  const auto msgs = dec.decode(sf);
  ASSERT_EQ(msgs.size(), 3u);
  int prbs_by_rnti[4] = {};
  for (const auto& m : msgs) {
    if (m.rnti == 0x100) prbs_by_rnti[1] = m.n_prbs;
    if (m.rnti == 0x200) prbs_by_rnti[2] = m.n_prbs;
    if (m.rnti == 0x300) prbs_by_rnti[3] = m.n_prbs;
  }
  EXPECT_EQ(prbs_by_rnti[1], 30);
  EXPECT_EQ(prbs_by_rnti[2], 20);
  EXPECT_EQ(prbs_by_rnti[3], 4);
  EXPECT_EQ(dec.stats().messages_decoded, 3u);
}

TEST(BlindDecoder, NoMessagesNoDecodes) {
  phy::CellConfig cell{1, 10.0};
  phy::PdcchBuilder b(cell, 0);
  const auto sf = std::move(b).build();
  BlindDecoder dec{cell};
  EXPECT_TRUE(dec.decode(sf).empty());
}

TEST(BlindDecoder, NoDuplicatesFromNestedCandidates) {
  // A message at AL4 is self-similar at the nested AL2/AL1 candidates;
  // the claimed-CCE rule must report it exactly once.
  phy::CellConfig cell{1, 10.0};
  phy::PdcchBuilder b(cell, 0);
  ASSERT_TRUE(b.add(make_dci(0x150, 10), 4));
  const auto sf = std::move(b).build();
  BlindDecoder dec{cell};
  const auto msgs = dec.decode(sf);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].rnti, 0x150);
}

TEST(BlindDecoder, HighAggregationSurvivesNoise) {
  phy::CellConfig cell{1, 20.0};
  util::Rng rng{5};
  int decoded_al8 = 0, decoded_al1 = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    for (int al : {1, 8}) {
      phy::PdcchBuilder b(cell, t);
      ASSERT_TRUE(b.add(make_dci(0x100, 30), al));
      auto sf = std::move(b).build();
      phy::apply_bit_noise(sf, 0.04, rng);
      BlindDecoder dec{cell};
      const auto msgs = dec.decode(sf);
      const bool ok = msgs.size() == 1 && msgs[0].rnti == 0x100 &&
                      msgs[0].n_prbs == 30;
      (al == 8 ? decoded_al8 : decoded_al1) += ok ? 1 : 0;
    }
  }
  // 4% BER: a single 66-bit copy usually breaks, 8 repetitions majority-
  // vote it back out.
  EXPECT_GT(decoded_al8, decoded_al1);
  EXPECT_GT(decoded_al8, trials / 2);
}

TEST(BlindDecoder, NoFalsePositivesOnNoise) {
  // Pure-noise regions marked "energized" must (essentially) never decode.
  phy::CellConfig cell{1, 20.0};
  util::Rng rng{7};
  BlindDecoder dec{cell};
  int phantom = 0;
  for (int t = 0; t < 200; ++t) {
    phy::PdcchBuilder b(cell, t);
    auto sf = std::move(b).build();
    std::fill(sf.cce_used.begin(), sf.cce_used.end(), true);
    phy::apply_bit_noise(sf, 0.5, rng);  // random bits
    phantom += static_cast<int>(dec.decode(sf).size());
  }
  EXPECT_LE(phantom, 1);
}

TEST(BlindDecoder, WrongFormatNeverWins) {
  // Exhaustive: place every format of each RAT at every AL it fits and
  // verify the decode returns exactly the placed message with its own
  // format.
  phy::CellConfig cell{1, 20.0};
  for (const auto fmt : phy::kLteDciFormats) {
    for (int al : {1, 2, 4, 8}) {
      phy::PdcchBuilder b(cell, 0);
      auto d = make_dci(0x123, fmt == phy::DciFormat::kFormat0 ? 4 : 25, 0,
                        fmt);
      ASSERT_TRUE(b.add(d, al));
      const auto sf = std::move(b).build();
      BlindDecoder dec{cell};
      const auto msgs = dec.decode(sf);
      ASSERT_EQ(msgs.size(), 1u) << "format " << static_cast<int>(fmt)
                                 << " AL " << al;
      EXPECT_EQ(msgs[0].format, fmt);
      EXPECT_EQ(msgs[0].rnti, 0x123);
    }
  }
  phy::CellConfig nr_cell{2, 20.0};
  nr_cell.rat = phy::Rat::kNr;
  nr_cell.scs = nr::Scs::k30kHz;
  for (const auto fmt : phy::kNrDciFormats) {
    for (int al : {1, 2, 4, 8, 16}) {
      phy::PdcchBuilder b(nr_cell, 0);
      auto d = make_dci(0x123,
                        fmt == phy::DciFormat::kNrFormat0_0 ? 4 : 25, 0, fmt);
      ASSERT_TRUE(b.add(d, al));
      const auto sf = std::move(b).build();
      BlindDecoder dec{nr_cell};
      const auto msgs = dec.decode(sf);
      ASSERT_EQ(msgs.size(), 1u) << "format " << static_cast<int>(fmt)
                                 << " AL " << al;
      EXPECT_EQ(msgs[0].format, fmt);
      EXPECT_EQ(msgs[0].rnti, 0x123);
    }
  }
}

// ---------------------------------------------------------------- fusion

TEST(MessageFusion, AlignsBySubframe) {
  std::vector<FusedSubframe> out;
  MessageFusion fusion([&](const FusedSubframe& f) { out.push_back(f); });
  fusion.register_cell(1);
  fusion.register_cell(2);

  fusion.on_decoded(1, 100, {make_dci(0x100, 5)});
  EXPECT_TRUE(out.empty());  // waiting for cell 2
  fusion.on_decoded(2, 100, {make_dci(0x200, 7)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, 100 * util::kSubframe);
  ASSERT_EQ(out[0].cells.size(), 2u);
  EXPECT_EQ(out[0].cells[0].cell, 1u);
  EXPECT_EQ(out[0].cells[1].cell, 2u);
  EXPECT_EQ(out[0].cells[0].messages[0].rnti, 0x100);
}

TEST(MessageFusion, MissingCellFlushedByNextSubframe) {
  std::vector<FusedSubframe> out;
  MessageFusion fusion([&](const FusedSubframe& f) { out.push_back(f); });
  fusion.register_cell(1);
  fusion.register_cell(2);

  fusion.on_decoded(1, 100, {});     // cell 2 never reports sf 100
  fusion.on_decoded(1, 101, {});
  EXPECT_EQ(out.size(), 1u);         // sf 100 flushed incomplete
  fusion.on_decoded(2, 101, {});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].time, 100 * util::kSubframe);
  EXPECT_EQ(out[0].cells[0].sf_index, 100);
  EXPECT_TRUE(out[0].cells[1].messages.empty());
  EXPECT_EQ(out[1].time, 101 * util::kSubframe);
}

TEST(MessageFusion, SingleCellImmediate) {
  int n = 0;
  MessageFusion fusion([&](const FusedSubframe&) { ++n; });
  fusion.register_cell(9);
  for (int sf = 0; sf < 5; ++sf) fusion.on_decoded(9, sf, {});
  EXPECT_EQ(n, 5);
}

// ------------------------------------------------------------ user tracker

TEST(UserTracker, TracksOwnAllocationAndIdle) {
  UserTracker tr{50};
  const auto s =
      tr.on_subframe(0, {make_dci(0x100, 20), make_dci(0x200, 10)}, 0x100);
  EXPECT_EQ(s.own_prbs, 20);
  EXPECT_GT(s.own_bits_per_prb, 0);
  EXPECT_EQ(s.allocated_prbs, 30);
  EXPECT_EQ(s.idle_prbs, 20);
  EXPECT_EQ(s.raw_active_users, 2);
}

TEST(UserTracker, UplinkGrantsIgnoredForPrbs) {
  UserTracker tr{50};
  const auto s =
      tr.on_subframe(0, {make_dci(0x300, 4, 0, phy::DciFormat::kFormat0)}, 0x100);
  EXPECT_EQ(s.allocated_prbs, 0);
  EXPECT_EQ(s.idle_prbs, 50);
}

TEST(UserTracker, ControlTrafficFiltered) {
  UserTracker tr{50};
  // A one-subframe, 4-PRB user: the paper's canonical parameter-update
  // pattern; must not count as a data user.
  tr.on_subframe(0, {make_dci(0x100, 20), make_dci(0x900, 4)}, 0x100);
  const auto s = tr.on_subframe(1, {make_dci(0x100, 20)}, 0x100);
  EXPECT_EQ(s.raw_active_users, 2);
  EXPECT_EQ(s.data_users, 1);  // just us
}

TEST(UserTracker, PersistentWideUserCounts) {
  UserTracker tr{50};
  UserTracker::SubframeSummary s;
  for (int sf = 0; sf < 10; ++sf) {
    s = tr.on_subframe(sf, {make_dci(0x100, 20), make_dci(0x777, 12)}, 0x100);
  }
  EXPECT_EQ(s.data_users, 2);
}

TEST(UserTracker, SelfAlwaysCounted) {
  UserTracker tr{50};
  const auto s = tr.on_subframe(0, {}, 0x100);
  EXPECT_EQ(s.data_users, 1);
}

TEST(UserTracker, WindowExpiry) {
  UserTrackerConfig cfg;
  cfg.window = 10 * util::kMillisecond;
  UserTracker tr{50, cfg};
  tr.on_subframe(0, {make_dci(0x777, 12)}, 0x100);
  tr.on_subframe(1, {make_dci(0x777, 12)}, 0x100);
  EXPECT_EQ(tr.raw_users(), 1);
  tr.on_subframe(30, {}, 0x100);  // far beyond the window
  EXPECT_EQ(tr.raw_users(), 0);
}

TEST(UserTracker, ActivitySnapshot) {
  UserTracker tr{50};
  tr.on_subframe(0, {make_dci(0x777, 10)}, 0x100);
  tr.on_subframe(1, {make_dci(0x777, 20)}, 0x100);
  const auto acts = tr.activity();
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].rnti, 0x777);
  EXPECT_EQ(acts[0].active_subframes, 2);
  EXPECT_DOUBLE_EQ(acts[0].average_prbs, 15.0);
}

// ----------------------------------------------------------------- monitor

TEST(Monitor, EndToEndPipeline) {
  phy::CellConfig c1{1, 10.0};
  phy::CellConfig c2{2, 10.0};
  std::vector<std::vector<CellObservation>> outputs;
  Monitor mon(0x100, {c1, c2},
              [&](const std::vector<CellObservation>& obs) {
                outputs.push_back(obs);
              });

  for (int sf = 0; sf < 5; ++sf) {
    phy::PdcchBuilder b1(c1, sf);
    ASSERT_TRUE(b1.add(make_dci(0x100, 30), 1));
    mon.on_pdcch(std::move(b1).build());
    phy::PdcchBuilder b2(c2, sf);
    ASSERT_TRUE(b2.add(make_dci(0x200, 10), 1));
    mon.on_pdcch(std::move(b2).build());
  }
  ASSERT_EQ(outputs.size(), 5u);
  ASSERT_EQ(outputs[0].size(), 2u);
  EXPECT_EQ(outputs[0][0].cell, 1u);
  EXPECT_EQ(outputs[0][0].summary.own_prbs, 30);
  EXPECT_EQ(outputs[0][1].cell, 2u);
  EXPECT_EQ(outputs[0][1].summary.own_prbs, 0);
  EXPECT_EQ(outputs[0][1].summary.allocated_prbs, 10);
}

TEST(Monitor, IgnoresForeignCells) {
  phy::CellConfig c1{1, 10.0};
  phy::CellConfig c9{9, 10.0};
  int outputs = 0;
  Monitor mon(0x100, {c1}, [&](const auto&) { ++outputs; });
  phy::PdcchBuilder b(c9, 0);
  mon.on_pdcch(std::move(b).build());
  EXPECT_EQ(outputs, 0);
  EXPECT_FALSE(mon.has_cell(9));
  EXPECT_TRUE(mon.has_cell(1));
}

TEST(Monitor, NoisyChannelLosesSomeMessages) {
  phy::CellConfig c1{1, 10.0};
  int own_seen = 0, sfs = 0;
  Monitor mon(0x100, {c1},
              [&](const std::vector<CellObservation>& obs) {
                ++sfs;
                own_seen += obs[0].summary.own_prbs > 0 ? 1 : 0;
              },
              [](phy::CellId) { return 0.02; });  // lossy control channel
  for (int sf = 0; sf < 100; ++sf) {
    phy::PdcchBuilder b(c1, sf);
    ASSERT_TRUE(b.add(make_dci(0x100, 30), 1));  // AL1: fragile
    mon.on_pdcch(std::move(b).build());
  }
  EXPECT_EQ(sfs, 100);
  EXPECT_LT(own_seen, 100);  // some messages genuinely lost
  EXPECT_GT(own_seen, 0);    // but not all
}

}  // namespace
}  // namespace pbecc::decoder
