// Unit tests for src/phy: cell geometry, MCS tables, error models, DCI
// wire format, the synthetic PDCCH, and the wireless channel model.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/cell_config.h"
#include "phy/channel.h"
#include "phy/dci.h"
#include "phy/error_model.h"
#include "phy/mcs.h"
#include "phy/pdcch.h"
#include "phy/transport_block.h"
#include "util/crc.h"

namespace pbecc::phy {
namespace {

// ----------------------------------------------------------- cell config

TEST(CellConfig, PrbsPerBandwidth) {
  EXPECT_EQ(prbs_for_bandwidth_mhz(5.0), 25);
  EXPECT_EQ(prbs_for_bandwidth_mhz(10.0), 50);
  EXPECT_EQ(prbs_for_bandwidth_mhz(20.0), 100);
  EXPECT_EQ(prbs_for_bandwidth_mhz(1.4), 6);
  EXPECT_THROW(prbs_for_bandwidth_mhz(7.0), std::invalid_argument);
}

TEST(CellConfig, CceScalesWithBandwidth) {
  CellConfig c10{1, 10.0};
  CellConfig c20{2, 20.0};
  EXPECT_EQ(c10.n_cces() * 2, c20.n_cces());
  EXPECT_GT(c10.n_cces(), 0);
}

// ------------------------------------------------------------------- mcs

TEST(Mcs, TableShape) {
  EXPECT_EQ(cqi_entry(0).modulation_order, 0);
  EXPECT_EQ(cqi_entry(1).modulation_order, 2);   // QPSK
  EXPECT_EQ(cqi_entry(7).modulation_order, 4);   // 16QAM
  EXPECT_EQ(cqi_entry(15).modulation_order, 6);  // 64QAM
  EXPECT_THROW(cqi_entry(16), std::out_of_range);
  EXPECT_THROW(cqi_entry(-1), std::out_of_range);
}

TEST(Mcs, SpectralEfficiencyMonotonic) {
  for (int cqi = 2; cqi < kNumCqi; ++cqi) {
    EXPECT_GT(bits_per_prb(cqi, 1), bits_per_prb(cqi - 1, 1)) << "cqi " << cqi;
  }
}

TEST(Mcs, TwoStreamsDouble) {
  EXPECT_DOUBLE_EQ(bits_per_prb(10, 2), 2 * bits_per_prb(10, 1));
  // Stream counts clamp to [1, 2].
  EXPECT_DOUBLE_EQ(bits_per_prb(10, 5), bits_per_prb(10, 2));
  EXPECT_DOUBLE_EQ(bits_per_prb(10, 0), bits_per_prb(10, 1));
}

TEST(Mcs, PaperRateCeiling) {
  // Max ~1.8-1.9 kbit per PRB per subframe = 1.8-1.9 Mbit/s/PRB: the
  // paper's Fig 11(b) ceiling.
  const double peak = bits_per_prb(15, 2);
  EXPECT_GT(peak, 1700.0);
  EXPECT_LT(peak, 1950.0);
}

TEST(Mcs, CqiFromSinrMonotonicAndBounded) {
  int prev = 0;
  for (double s = -12; s <= 30; s += 0.5) {
    const int c = cqi_from_sinr_db(s);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 15);
    prev = c;
  }
  EXPECT_EQ(cqi_from_sinr_db(-20), 0);
  EXPECT_EQ(cqi_from_sinr_db(30), 15);
}

// ----------------------------------------------------------- error model

TEST(ErrorModel, TbErrorRateFormula) {
  // Matches 1-(1-p)^L computed directly.
  const double p = 1e-6, L = 40000;
  EXPECT_NEAR(tb_error_rate(p, L), 1.0 - std::pow(1.0 - p, L), 1e-10);
}

TEST(ErrorModel, TbErrorRateEdges) {
  EXPECT_DOUBLE_EQ(tb_error_rate(0.0, 1e5), 0.0);
  EXPECT_DOUBLE_EQ(tb_error_rate(1e-6, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(tb_error_rate(1.0, 10), 1.0);
}

TEST(ErrorModel, TbErrorRateMonotonic) {
  double prev = 0;
  for (double L = 1e3; L <= 2e5; L += 1e3) {
    const double e = tb_error_rate(3e-6, L);
    EXPECT_GE(e, prev);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

TEST(ErrorModel, ResidualBerPaperAnchors) {
  // The paper's measured anchors (Fig 6): p ~ 1e-6 at -98 dBm and
  // ~5e-6 at -113 dBm.
  EXPECT_NEAR(residual_ber_from_rssi(-98.0), 1e-6, 1e-8);
  EXPECT_NEAR(residual_ber_from_rssi(-113.0), 5e-6, 5e-8);
  // Monotonically worse with weaker signal.
  EXPECT_GT(residual_ber_from_rssi(-110), residual_ber_from_rssi(-100));
  // Clamped.
  EXPECT_LE(residual_ber_from_rssi(-200), 1e-3);
  EXPECT_GE(residual_ber_from_rssi(-10), 1e-8);
}

TEST(ErrorModel, QpskBer) {
  // ~0.5 at very low SINR, vanishing at high SINR, monotone.
  EXPECT_NEAR(qpsk_ber(-30), 0.5, 0.05);
  EXPECT_LT(qpsk_ber(10), 1e-5);
  EXPECT_GT(qpsk_ber(0), qpsk_ber(5));
}

// ------------------------------------------------------------------- dci

TEST(Dci, FormatLengthsDistinctAndSmall) {
  for (int a = 0; a < kNumDciFormats; ++a) {
    for (int b = a + 1; b < kNumDciFormats; ++b) {
      EXPECT_NE(dci_payload_bits(static_cast<DciFormat>(a)),
                dci_payload_bits(static_cast<DciFormat>(b)));
    }
    // Paper §7: control messages are less than 70 bits.
    EXPECT_LT(dci_payload_bits(static_cast<DciFormat>(a)) + 16, 70 + 16);
  }
}

TEST(Dci, EncodeDecodeRoundtrip) {
  Dci d;
  d.rnti = 0x1234;
  d.format = DciFormat::kFormat1;
  d.prb_start = 17;
  d.n_prbs = 33;
  d.mcs = {11, 1};
  d.harq_id = 5;
  d.new_data = false;
  const auto bits = encode_dci(d);
  EXPECT_EQ(bits.size(),
            static_cast<std::size_t>(dci_payload_bits(d.format)) + 16);
  const auto back = decode_dci(bits, DciFormat::kFormat1, 100);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
}

TEST(Dci, MimoRoundtrip) {
  Dci d;
  d.rnti = 0x0777;
  d.format = DciFormat::kFormat2;
  d.prb_start = 0;
  d.n_prbs = 100;
  d.mcs = {15, 2};
  d.harq_id = 7;
  const auto back = decode_dci(encode_dci(d), DciFormat::kFormat2, 100);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
}

TEST(Dci, TwoStreamsRequireMimoFormat) {
  Dci d;
  d.rnti = 0x200;
  d.format = DciFormat::kFormat1;
  d.n_prbs = 4;
  d.mcs = {9, 2};
  EXPECT_THROW(encode_dci(d), std::invalid_argument);
}

TEST(Dci, WrongFormatRejectedByTag) {
  Dci d;
  d.rnti = 0x1111;
  d.format = DciFormat::kFormat1;
  d.n_prbs = 10;
  d.mcs = {8, 1};
  const auto bits = encode_dci(d);
  // Same bit string deliberately parsed as every other format must fail
  // (length mismatch or tag mismatch) — this is what kills the phantom
  // decodes that plagued format-blind monitors.
  for (int f = 0; f < kNumDciFormats; ++f) {
    if (static_cast<DciFormat>(f) == d.format) continue;
    EXPECT_FALSE(decode_dci(bits, static_cast<DciFormat>(f), 100).has_value());
  }
}

TEST(Dci, CorruptionDetected) {
  Dci d;
  d.rnti = 0x0456;
  d.format = DciFormat::kFormat1A;
  d.n_prbs = 8;
  d.mcs = {6, 1};
  auto bits = encode_dci(d);
  int rejected = 0, accepted_wrong = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto c = bits;
    c.flip_bit(i);
    const auto back = decode_dci(c, d.format, 100);
    if (!back.has_value()) {
      ++rejected;
    } else if (!(*back == d)) {
      // A flipped CRC bit re-targets the message to rnti^mask — LTE
      // monitors accept it; it just belongs to another (phantom) user.
      ++accepted_wrong;
    }
  }
  // All corruptions are either rejected or at least never mistaken for the
  // original message.
  EXPECT_EQ(rejected + accepted_wrong, static_cast<int>(bits.size()));
  EXPECT_GT(rejected, 0);
}

TEST(Dci, StructuralValidation) {
  Dci d;
  d.rnti = 0x0456;
  d.format = DciFormat::kFormat1;
  d.prb_start = 40;
  d.n_prbs = 20;
  d.mcs = {6, 1};
  const auto bits = encode_dci(d);
  // Fits a 100-PRB cell, not a 50-PRB cell.
  EXPECT_TRUE(decode_dci(bits, d.format, 100).has_value());
  EXPECT_FALSE(decode_dci(bits, d.format, 50).has_value());
}

TEST(Dci, InvalidRntiRangeRejected) {
  Dci d;
  d.rnti = 0x0010;  // below the C-RNTI floor
  d.format = DciFormat::kFormat1A;
  d.n_prbs = 4;
  d.mcs = {5, 1};
  EXPECT_FALSE(decode_dci(encode_dci(d), d.format, 100).has_value());
}

// The cheap CRC-first screen must be a sound filter for decode_dci: a
// screened-out message can never have decoded (no payload copy, no field
// parse), and every genuine message passes it. The screen is exactly
// "CRC residue lands in the C-RNTI window", so appending
// crc16(payload) ^ rnti to a random payload pins the residue to `rnti`
// and lets us probe both sides of every window boundary directly —
// random sampling would hit the narrow reject band (~0.1% of the 16-bit
// space) almost never.
TEST(Dci, CrcScreenNeverRejectsDecodable) {
  util::Rng rng{41};
  const Rnti out_of_range[] = {0x0000, 0x0001, 0x003C, 0xFFF4, 0xFFFE, 0xFFFF};
  const Rnti in_range[] = {kMinCRnti, 0x0456, 0x8A21, kMaxCRnti};
  for (int f = 0; f < kNumDciFormats; ++f) {
    const auto fmt = static_cast<DciFormat>(f);
    const auto payload_len = static_cast<std::size_t>(dci_payload_bits(fmt));
    for (int trial = 0; trial < 200; ++trial) {
      util::BitVec payload;
      for (std::size_t i = 0; i < payload_len; ++i) {
        payload.push_bit(rng.bernoulli(0.5));
      }
      const std::uint16_t residue = util::crc16(payload);
      for (const Rnti rnti : out_of_range) {
        util::BitVec bits = payload;
        bits.push_uint(static_cast<std::uint16_t>(residue ^ rnti), 16);
        EXPECT_FALSE(dci_crc_screen(bits, fmt)) << "format " << f;
        EXPECT_FALSE(decode_dci(bits, fmt, 100).has_value()) << "format " << f;
      }
      for (const Rnti rnti : in_range) {
        util::BitVec bits = payload;
        bits.push_uint(static_cast<std::uint16_t>(residue ^ rnti), 16);
        EXPECT_TRUE(dci_crc_screen(bits, fmt)) << "format " << f;
      }
    }
  }
  // Genuine messages always pass.
  Dci d;
  d.rnti = 0x0456;
  d.format = DciFormat::kFormat1;
  d.prb_start = 4;
  d.n_prbs = 20;
  d.mcs = {6, 1};
  EXPECT_TRUE(dci_crc_screen(encode_dci(d), d.format));
  // Wrong-length input is screened out, same as decode_dci rejects it.
  EXPECT_FALSE(dci_crc_screen(encode_dci(d), DciFormat::kFormat2));
}

// ----------------------------------------------------------------- pdcch

TEST(Pdcch, AggregationLevelFromSinr) {
  EXPECT_EQ(aggregation_level_for_sinr(15.0), 1);
  EXPECT_EQ(aggregation_level_for_sinr(10.0), 2);
  EXPECT_EQ(aggregation_level_for_sinr(4.0), 4);
  EXPECT_EQ(aggregation_level_for_sinr(0.0), 8);
}

TEST(Pdcch, RepetitionsThatFit) {
  EXPECT_EQ(repetitions_that_fit(72, 1), 1);
  EXPECT_EQ(repetitions_that_fit(73, 1), 0);
  EXPECT_EQ(repetitions_that_fit(60, 4), 4);
  EXPECT_EQ(repetitions_that_fit(0, 4), 0);
}

TEST(Pdcch, PlacementConsumesCces) {
  CellConfig cell{1, 10.0};
  PdcchBuilder b(cell, 5);
  const int total = cell.n_cces();
  EXPECT_EQ(b.cces_free(), total);

  Dci d;
  d.rnti = 0x300;
  d.format = DciFormat::kFormat1A;
  d.n_prbs = 4;
  d.mcs = {5, 1};
  ASSERT_TRUE(b.add(d, 4));
  EXPECT_EQ(b.cces_free(), total - 4);
  const auto sf = std::move(b).build();
  EXPECT_EQ(sf.sf_index, 5);
  EXPECT_EQ(sf.cell_id, 1u);
  int used = 0;
  for (bool u : sf.cce_used) used += u;
  EXPECT_EQ(used, 4);
}

TEST(Pdcch, RegionExhaustion) {
  CellConfig cell{1, 5.0};  // 21 CCEs
  PdcchBuilder b(cell, 0);
  Dci d;
  d.rnti = 0x300;
  d.format = DciFormat::kFormat1A;
  d.n_prbs = 1;
  d.mcs = {5, 1};
  int placed = 0;
  while (b.add(d, 8)) ++placed;
  EXPECT_EQ(placed, 2);  // 21 / 8 = 2 aligned slots
  // Smaller aggregation still fits in the leftovers.
  EXPECT_TRUE(b.add(d, 1));
}

TEST(Pdcch, InvalidAggregationThrows) {
  CellConfig cell{1, 10.0};
  PdcchBuilder b(cell, 0);
  Dci d;
  d.rnti = 0x300;
  d.format = DciFormat::kFormat1A;
  d.n_prbs = 1;
  d.mcs = {5, 1};
  EXPECT_THROW(b.add(d, 3), std::invalid_argument);
}

TEST(Pdcch, NoiseFlipsBitsDeterministically) {
  CellConfig cell{1, 10.0};
  PdcchBuilder b1(cell, 0);
  auto sf1 = std::move(b1).build();
  auto sf2 = sf1;
  util::Rng r1{5}, r2{5};
  apply_bit_noise(sf1, 0.1, r1);
  apply_bit_noise(sf2, 0.1, r2);
  EXPECT_EQ(sf1.bits, sf2.bits);
  int flips = 0;
  for (std::size_t i = 0; i < sf1.bits.size(); ++i) flips += sf1.bits.bit(i);
  EXPECT_NEAR(flips / static_cast<double>(sf1.bits.size()), 0.1, 0.02);
}

// --------------------------------------------------------------- channel

TEST(Channel, MobilityTraceInterpolation) {
  MobilityTrace t({{0, -85}, {1000, -105}});
  EXPECT_DOUBLE_EQ(t.rssi_at(-5), -85);
  EXPECT_DOUBLE_EQ(t.rssi_at(0), -85);
  EXPECT_DOUBLE_EQ(t.rssi_at(500), -95);
  EXPECT_DOUBLE_EQ(t.rssi_at(1000), -105);
  EXPECT_DOUBLE_EQ(t.rssi_at(99999), -105);
}

TEST(Channel, TraceValidation) {
  EXPECT_THROW(MobilityTrace({}), std::invalid_argument);
  EXPECT_THROW(MobilityTrace({{10, -80}, {5, -90}}), std::invalid_argument);
}

TEST(Channel, StationarySampleBounded) {
  ChannelConfig cfg;
  cfg.trace = MobilityTrace::stationary(-92);
  cfg.seed = 3;
  ChannelModel m{cfg};
  for (util::Time t = 0; t < 2 * util::kSecond; t += util::kSubframe) {
    const auto s = m.sample(t);
    EXPECT_NEAR(s.rssi_dbm, -92, 8.0);
    EXPECT_GE(s.cqi, 1);
    EXPECT_LE(s.cqi, 15);
    EXPECT_GT(s.data_ber, 0);
    EXPECT_GE(s.control_ber, 0);
  }
}

TEST(Channel, MobilityDegradesCqi) {
  ChannelConfig cfg;
  cfg.trace = MobilityTrace({{0, -85}, {util::kSecond, -110}});
  cfg.seed = 9;
  ChannelModel m{cfg};
  const auto strong = m.sample(0);
  const auto weak = m.sample(util::kSecond);
  EXPECT_GT(strong.cqi, weak.cqi);
  EXPECT_LT(strong.data_ber, weak.data_ber);
}

TEST(Channel, Deterministic) {
  ChannelConfig cfg;
  cfg.seed = 77;
  ChannelModel a{cfg}, b{cfg};
  for (util::Time t = 0; t < 200 * util::kMillisecond; t += util::kSubframe) {
    EXPECT_DOUBLE_EQ(a.sample(t).sinr_db, b.sample(t).sinr_db);
  }
}

// --------------------------------------------------------- transport block

TEST(TransportBlock, Sizing) {
  const Mcs mcs{10, 1};
  EXPECT_DOUBLE_EQ(transport_block_bits(10, mcs), 10 * mcs.bits_per_prb());
  EXPECT_DOUBLE_EQ(transport_block_bits(0, mcs), 0.0);
  EXPECT_THROW(transport_block_bits(-1, mcs), std::invalid_argument);
}

TEST(TransportBlock, FromDci) {
  Dci d;
  d.format = DciFormat::kFormat1;
  d.n_prbs = 25;
  d.mcs = {9, 1};
  EXPECT_DOUBLE_EQ(transport_block_bits(d), 25 * d.mcs.bits_per_prb());
  d.format = DciFormat::kFormat0;  // uplink grant
  EXPECT_THROW(transport_block_bits(d), std::invalid_argument);
}

}  // namespace
}  // namespace pbecc::phy
