// Unit + integration tests for pbecc::obs — the metrics registry, the
// event trace (ring semantics, sampling, exporters) and the profiler,
// plus an end-to-end check that a traced scenario run populates events
// and counters from every pipeline stage.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "sim/scenario.h"

namespace pbecc::obs {
namespace {

// Every test starts from a clean slate; the registry and trace are
// process-global and other tests in this binary mutate them.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_all(); }
  void TearDown() override { reset_all(); }
};

// ------------------------------------------------------------- registry

TEST_F(ObsTest, CounterGaugeBasics) {
  Counter& c = counter("test.counter");
  Gauge& g = gauge("test.gauge");
  c.inc();
  c.inc(4);
  g.set(2.5);
  g.set(7.25);  // last write wins
  if constexpr (kCompiled) {
    EXPECT_EQ(c.value(), 5u);
    EXPECT_DOUBLE_EQ(g.value(), 7.25);
  } else {
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
  }
}

TEST_F(ObsTest, FindOrCreateReturnsSameObject) {
  Counter& a = counter("test.same");
  Counter& b = counter("test.same");
  EXPECT_EQ(&a, &b);
  // Same name in different metric families are distinct objects.
  gauge("test.same");
  histogram("test.same");
  EXPECT_EQ(Registry::instance().counters().size(), 1u);
  EXPECT_EQ(Registry::instance().gauges().size(), 1u);
  EXPECT_EQ(Registry::instance().histograms().size(), 1u);
}

TEST_F(ObsTest, ResetZeroesButKeepsRegistrations) {
  Counter& c = counter("test.reset");
  c.inc(10);
  Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);  // cached reference still valid and zeroed
  ASSERT_EQ(Registry::instance().counters().size(), 1u);
  EXPECT_EQ(Registry::instance().counters()[0].first, "test.reset");
  c.inc();
  if constexpr (kCompiled) EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsTest, ExpHistogramBucketsAndStats) {
  ExpHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  if constexpr (!kCompiled) GTEST_SKIP() << "record() compiled out";

  h.record(0);  // bucket 0
  h.record(1);  // bucket 0
  h.record(2);  // [2,4) -> bucket 1
  h.record(3);
  h.record(1000);  // [2^9, 2^10) -> bucket 9
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1000);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[9], 1u);

  // Percentiles are bucket-midpoint approximations, clamped to [min,max]:
  // p100 must not exceed the true max, p0 not undershoot the true min.
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 4.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.buckets()[1], 0u);
}

TEST_F(ObsTest, PercentileMonotoneOnWideRange) {
  if constexpr (!kCompiled) GTEST_SKIP() << "record() compiled out";
  ExpHistogram h;
  for (std::uint64_t v = 1; v < (1ull << 20); v *= 3) h.record(v);
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev) << "p" << p;
    prev = q;
  }
}

TEST_F(ObsTest, PercentileOnEmptyHistogramIsZero) {
  ExpHistogram h;
  for (double p : {0.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 0.0) << "p" << p;
  }
}

TEST_F(ObsTest, PercentileWithSingleSampleIsThatSample) {
  if constexpr (!kCompiled) GTEST_SKIP() << "record() compiled out";
  ExpHistogram h;
  h.record(37);
  // Every quantile of a one-sample distribution is the sample; the [min,max]
  // clamp must collapse the bucket-midpoint estimate to it exactly.
  for (double p : {0.0, 1.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 37.0) << "p" << p;
  }
}

TEST_F(ObsTest, PercentileWithAllSamplesInOneBucket) {
  if constexpr (!kCompiled) GTEST_SKIP() << "record() compiled out";
  ExpHistogram h;
  // 100 samples, all in bucket [64, 128).
  for (int i = 0; i < 100; ++i) h.record(64 + (i % 64));
  EXPECT_DOUBLE_EQ(h.percentile(0), 64.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 127.0);
  // Interior quantiles all resolve to the same bucket estimate, clamped
  // within the exact extremes — monotone and in-range by construction.
  double prev = 64.0;
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev) << "p" << p;
    EXPECT_GE(q, 64.0) << "p" << p;
    EXPECT_LE(q, 127.0) << "p" << p;
    prev = q;
  }
}

TEST_F(ObsTest, RegistryJsonContainsEverything) {
  counter("decoder.test_counter").inc(3);
  gauge("pbe.test_gauge").set(1.5);
  histogram("prof.test_hist").record(100);
  const std::string json = Registry::instance().to_json();
  // Versioned schema, and the version leads the object so consumers can
  // dispatch before parsing the sections.
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_LT(json.find("\"schema_version\""), json.find("\"counters\""));
  EXPECT_NE(json.find("\"decoder.test_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"pbe.test_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"prof.test_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if constexpr (kCompiled) {
    EXPECT_NE(json.find("\"decoder.test_counter\": 3"), std::string::npos);
  }
}

// ---------------------------------------------------------------- trace

TEST_F(ObsTest, EmitWithoutActiveTraceIsSafe) {
  EXPECT_FALSE(Trace::instance().active());
  emit(EventKind::kHandover, 1000, 1, 2, 3);  // must not crash or record
  EXPECT_EQ(Trace::instance().size(), 0u);
}

TEST_F(ObsTest, RecordsInOrderAndStops) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  Trace::instance().start();
  emit(EventKind::kHandover, 10, 1, 7, 2);
  emit(EventKind::kQueueDrop, 20, 0, 7, 1500);
  Trace::instance().stop();
  emit(EventKind::kHandover, 30, 1, 7, 2);  // after stop: ignored

  const auto events = Trace::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].t, 10);
  EXPECT_EQ(events[0].kind, EventKind::kHandover);
  EXPECT_EQ(events[0].id2, 7u);
  EXPECT_EQ(events[1].t, 20);
  EXPECT_EQ(events[1].a, 1500);
}

TEST_F(ObsTest, RingWrapKeepsNewestOldestFirst) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  TraceConfig cfg;
  cfg.capacity = 4;
  Trace::instance().start(cfg);
  for (int i = 0; i < 10; ++i) {
    emit(EventKind::kHandover, i, 1, 1, i);
  }
  Trace& tr = Trace::instance();
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The four newest survive, oldest first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].t, 6 + i);
}

TEST_F(ObsTest, HighFrequencySampling) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  TraceConfig cfg;
  cfg.sample_every = 4;
  Trace::instance().start(cfg);
  // kDciDecoded is high-frequency: 1 in 4 kept. kHandover is not: all kept.
  for (int i = 0; i < 16; ++i) emit(EventKind::kDciDecoded, i, 1, 2, 3);
  for (int i = 0; i < 3; ++i) emit(EventKind::kHandover, 100 + i, 1, 1, 1);
  Trace& tr = Trace::instance();
  EXPECT_EQ(tr.size(), 4u + 3u);
  EXPECT_EQ(tr.sampled_out(), 12u);
}

TEST_F(ObsTest, SchemaTableIsComplete) {
  for (int k = 0; k < kNumEventKinds; ++k) {
    const EventSchema& s = schema(static_cast<EventKind>(k));
    EXPECT_NE(s.name, nullptr) << "kind " << k;
    EXPECT_NE(s.category, nullptr) << "kind " << k;
    const std::string cat = s.category;
    EXPECT_TRUE(cat == "decoder" || cat == "pbe" || cat == "mac" ||
                cat == "net" || cat == "fault")
        << "kind " << k << " category " << cat;
  }
}

TEST_F(ObsTest, JsonlExportRoundTrips) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  Trace::instance().start();
  emit(EventKind::kDciDecoded, 5000, 1, 61453, 25, 374.0, 8);
  emit(EventKind::kRtoFired, 6000, 0, 3, 0, 12000.0);
  const std::string path = ::testing::TempDir() + "/obs_test_trace.jsonl";
  ASSERT_TRUE(Trace::instance().write_jsonl(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"t_us\": 5000"), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\": \"dci_decoded\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"rnti\": 61453"), std::string::npos);
  EXPECT_NE(lines[0].find("\"al\": 8"), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\": \"rto_fired\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"bytes_lost\": 12000"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, ChromeExportIsWellFormed) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  Trace::instance().start();
  emit(EventKind::kCapacityUpdate, 1000, 0, 0, 2, 5000.0, 4000.0);
  emit(EventKind::kHarqRetx, 2000, 1, 9, 3, 12.0);
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(Trace::instance().write_chrome(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"capacity_update\""), std::string::npos);
  EXPECT_NE(doc.find("\"harq_retx\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\": 1000"), std::string::npos);
  // Braces and brackets balance (cheap well-formedness check).
  std::int64_t braces = 0, brackets = 0;
  for (char ch : doc) {
    braces += ch == '{';
    braces -= ch == '}';
    brackets += ch == '[';
    brackets -= ch == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- profiler

TEST_F(ObsTest, ProfilerRecordsOnlyWhenEnabled) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  const auto burn = [] {
    PBECC_PROF_SCOPE("obs_test_site");
    volatile int sink = 0;
    for (int i = 0; i < 100; ++i) sink += i;
  };
  set_profiling(false);
  burn();
  EXPECT_EQ(histogram("prof.obs_test_site").count(), 0u);

  set_profiling(true);
  burn();
  burn();
  set_profiling(false);
  EXPECT_EQ(histogram("prof.obs_test_site").count(), 2u);
}

TEST_F(ObsTest, ProfilerSampling) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  set_profiling(true, /*sample_every=*/8);
  for (int i = 0; i < 32; ++i) {
    PBECC_PROF_SCOPE("obs_test_sampled");
  }
  set_profiling(false);
  EXPECT_EQ(histogram("prof.obs_test_sampled").count(), 4u);
}

// ------------------------------------------------- end-to-end (scenario)

TEST_F(ObsTest, TracedScenarioRunCoversPipeline) {
  if constexpr (!kCompiled) GTEST_SKIP() << "built with PBECC_TRACE=OFF";
  using util::kMillisecond;
  using util::kSecond;

  Trace::instance().start();
  set_profiling(true);

  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.cells = {{10.0, 0.05}};
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.cell_indices = {0};
  s.add_ue(ue);
  sim::FlowSpec fs;
  fs.algo = "pbe";
  fs.stop = fs.start + 2 * kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop + 100 * kMillisecond);
  s.stats(f).finish(fs.stop);

  set_profiling(false);
  Trace::instance().stop();

  // Events from decoder and PBE stages are on the timeline...
  bool saw_dci = false, saw_subframe = false, saw_capacity = false,
       saw_feedback = false;
  util::Time prev_t = 0;
  for (const Event& e : Trace::instance().snapshot()) {
    saw_dci |= e.kind == EventKind::kDciDecoded;
    saw_subframe |= e.kind == EventKind::kSubframeObserved;
    saw_capacity |= e.kind == EventKind::kCapacityUpdate;
    saw_feedback |= e.kind == EventKind::kFeedbackSent;
    // Emission order tracks sim time to within one subframe (the capacity
    // estimator stamps its update at the *next* subframe boundary, so it
    // can precede packet-clocked events inside that subframe).
    EXPECT_GE(e.t, prev_t - util::kMillisecond)
        << "event timestamps drifted more than one subframe out of order";
    prev_t = std::max(prev_t, e.t);
  }
  EXPECT_TRUE(saw_dci);
  EXPECT_TRUE(saw_subframe);
  EXPECT_TRUE(saw_capacity);
  EXPECT_TRUE(saw_feedback);

  // ...and the registry saw every stage: decoder, estimator, MAC, net.
  EXPECT_GT(counter("decoder.messages_decoded").value(), 0u);
  EXPECT_GT(counter("decoder.subframes_decoded").value(), 0u);
  EXPECT_GT(counter("decoder.fused_subframes").value(), 0u);
  EXPECT_GT(counter("pbe.estimator.updates").value(), 0u);
  EXPECT_GT(counter("mac.tbs_sent").value(), 0u);
  EXPECT_GT(counter("mac.prbs_total").value(), 0u);
  EXPECT_GT(counter("net.packets_sent").value(), 0u);
  EXPECT_GT(counter("net.acks_received").value(), 0u);
  EXPECT_GT(counter("net.events_dispatched").value(), 0u);
  EXPECT_GT(gauge("pbe.sender.pacing_bps").value(), 0.0);

  // PRB ledger adds up: total = data + control + retx + idle.
  EXPECT_EQ(counter("mac.prbs_total").value(),
            counter("mac.prbs_data").value() +
                counter("mac.prbs_control").value() +
                counter("mac.prbs_retx").value() +
                counter("mac.prbs_idle").value());

  // The profiler measured real blind-decode work.
  EXPECT_GT(histogram("prof.blind_decode").count(), 0u);
  EXPECT_GT(histogram("prof.blind_decode").sum(), 0u);
  EXPECT_GT(histogram("prof.event_dispatch").count(), 0u);
}

}  // namespace
}  // namespace pbecc::obs
