// Blind control-channel decoder — the endpoint measurement front end.
//
// This replaces the paper's USRP+srsLTE decoder (§5): "each decoder decodes
// the control channel by searching every possible message position inside
// the control channel of one subframe and trying all possible formats at
// each location until finding the correct message." We do exactly that
// over the synthetic PDCCH: for every aggregation level (8/4/2/1), every
// aligned candidate position, and every DCI format, majority-vote the
// repetition-coded bits and validate the RNTI-masked CRC plus structural
// field checks. Decoding runs on the *noisy* control region, so weak
// channels genuinely lose messages.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "phy/cell_config.h"
#include "phy/dci.h"
#include "phy/pdcch.h"

namespace pbecc::decoder {

// Index of aggregation level {1, 2, 4, 8} in the per-AL stat arrays.
constexpr int al_index(int al) { return al == 1 ? 0 : al == 2 ? 1 : al == 4 ? 2 : 3; }
inline constexpr int kAggregationLevels[4] = {1, 2, 4, 8};

struct DecodeStats {
  std::uint64_t candidates_tried = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t messages_decoded = 0;
  std::uint64_t subframes = 0;
  // Broken out per aggregation level (index via al_index): the decode
  // success/failure profile per AL is OWL's primary health signal.
  std::array<std::uint64_t, 4> candidates_by_al{};
  std::array<std::uint64_t, 4> crc_failures_by_al{};
  std::array<std::uint64_t, 4> decoded_by_al{};
};

class BlindDecoder {
 public:
  explicit BlindDecoder(phy::CellConfig cell);

  // All DCI messages recovered from one subframe's control region.
  std::vector<phy::Dci> decode(const phy::PdcchSubframe& sf);

  const DecodeStats& stats() const { return stats_; }
  const phy::CellConfig& cell() const { return cell_; }

 private:
  // Majority-vote the repetitions of a msg_bits-long message stored in
  // `n_cces` CCEs starting at `first_cce`.
  util::BitVec majority_decode(const phy::PdcchSubframe& sf, int first_cce,
                               int n_cces, int msg_bits) const;

  // Re-encoding agreement check (path-metric stand-in): true when the
  // candidate message is consistent with >=97% of the raw region bits.
  bool region_agrees(const phy::PdcchSubframe& sf, int first_cce, int n_cces,
                     const util::BitVec& msg) const;

  phy::CellConfig cell_;
  DecodeStats stats_;

  // Registry counters cached at construction: decode() runs per subframe
  // per cell and must not pay name lookups on the hot path. All decoder
  // instances share the process-wide aggregate counters.
  struct ObsCounters {
    std::array<obs::Counter*, 4> candidates;
    std::array<obs::Counter*, 4> crc_failures;
    obs::Counter* decoded;
    obs::Counter* subframes;
  };
  ObsCounters obs_{};
};

}  // namespace pbecc::decoder
