// Blind control-channel decoder — the endpoint measurement front end.
//
// This replaces the paper's USRP+srsLTE decoder (§5): "each decoder decodes
// the control channel by searching every possible message position inside
// the control channel of one subframe and trying all possible formats at
// each location until finding the correct message." We do exactly that
// over the synthetic PDCCH: for every aggregation level (8/4/2/1), every
// aligned candidate position, and every DCI format, majority-vote the
// repetition-coded bits and validate the RNTI-masked CRC plus structural
// field checks. Decoding runs on the *noisy* control region, so weak
// channels genuinely lose messages.
//
// The search is split into a side-effect-free compute phase and an ordered
// apply phase so candidate positions (and, one level up, whole cells) can
// be decoded on pbecc::par pool threads while stats, registry counters and
// trace events stay byte-identical to a serial run: decode_compute() only
// reads the subframe (plus the per-position memo cache it owns), and
// decode_apply() folds the resulting deltas in deterministic order.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "phy/cell_config.h"
#include "phy/dci.h"
#include "phy/pdcch.h"

namespace pbecc::decoder {

// Index of aggregation level {1, 2, 4, 8, 16} in the per-AL stat arrays.
// AL16 exists only in NR search spaces; LTE decoders never touch lane 4.
constexpr int al_index(int al) {
  return al == 1 ? 0 : al == 2 ? 1 : al == 4 ? 2 : al == 8 ? 3 : 4;
}
inline constexpr int kAggregationLevels[5] = {1, 2, 4, 8, 16};
inline constexpr int kNumAlLanes = 5;

// Candidates decoded in lockstep per batch (DESIGN.md §14): 1 selects the
// scalar per-candidate path (the pre-batching hot path, kept both as the
// fallback and as the honest A/B baseline for bench_replay --corpus);
// 2..phy::kMaxDecodeLanes selects the SIMD-friendly lane-major batch path.
// Results are byte-identical for every setting — the knob trades nothing
// but speed. Set once before a run (like par::set_default_threads); reads
// on the hot path are relaxed atomics.
void set_decode_lanes(int lanes);
int decode_lanes();

struct DecodeStats {
  std::uint64_t candidates_tried = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t messages_decoded = 0;
  std::uint64_t subframes = 0;
  // Candidates answered from the span memo instead of a fresh decode
  // (the span's soft bits were unchanged since the previous subframe).
  std::uint64_t memo_hits = 0;
  // Batch-path diagnostics (all zero on the scalar lanes==1 path; none of
  // them feed the determinism digests): lockstep Viterbi batches run,
  // candidate-format attempts retired early because no surviving path
  // could reach the acceptance metric, and attempts rejected by the
  // CRC-first screen before any field parse.
  std::uint64_t lane_batches = 0;
  std::uint64_t early_aborts = 0;
  std::uint64_t screen_rejects = 0;
  // Broken out per aggregation level (index via al_index): the decode
  // success/failure profile per AL is OWL's primary health signal.
  std::array<std::uint64_t, kNumAlLanes> candidates_by_al{};
  std::array<std::uint64_t, kNumAlLanes> crc_failures_by_al{};
  std::array<std::uint64_t, kNumAlLanes> decoded_by_al{};
};

// Everything decode_compute() learned from one subframe, pending apply.
struct DecodeRun {
  struct Found {
    phy::Dci dci;
    int al = 0;
  };
  std::vector<Found> found;  // in (AL descending, position ascending) order
  DecodeStats delta;         // stat increments for this subframe
  std::int64_t sf_index = 0;
  // Tick duration of the decoded subframe's cell clock (1 ms LTE, the slot
  // length for NR): decode_apply stamps trace events at sf_index * tick.
  util::Duration tick = util::kSubframe;
};

class BlindDecoder {
 public:
  explicit BlindDecoder(phy::CellConfig cell);

  // All DCI messages recovered from one subframe's control region.
  // Equivalent to decode_apply(decode_compute(sf)).
  std::vector<phy::Dci> decode(const phy::PdcchSubframe& sf);

  // Phase 1: search the control region. Touches no stats, counters or
  // trace state — safe to run on a pool thread (one thread per decoder
  // instance; candidate positions inside fan out on the pool themselves).
  DecodeRun decode_compute(const phy::PdcchSubframe& sf);

  // Phase 2: fold the run's deltas into stats_/registry and emit trace
  // events. Call in deterministic order (e.g. cell order) on one thread.
  std::vector<phy::Dci> decode_apply(const DecodeRun& run);

  // Carrier reconfiguration: adopt the cell's new parameters (PRB count /
  // control region size) and drop the span memo — memoized candidate
  // outcomes are only valid against the coding geometry they were recorded
  // under. Stats persist across reconfigurations.
  void reconfigure(const phy::CellConfig& cell);

  const DecodeStats& stats() const { return stats_; }
  const phy::CellConfig& cell() const { return cell_; }

 private:
  // Outcome of the format loop at one (AL, position) candidate. Depends
  // only on the span's bits, so it is memoizable across subframes. The
  // abort/screen tallies are memoized too: replaying them on a memo hit
  // keeps every counter byte-identical with the memo disabled.
  struct CandidateResult {
    int attempts = 0;
    int failures = 0;
    int early_aborts = 0;
    int screen_rejects = 0;
    bool memo_hit = false;
    std::optional<phy::Dci> dci;
  };

  // Run all DCI formats at CCEs [start, start+al). Consults / refreshes
  // the span memo; distinct positions touch distinct entries, so parallel
  // calls for different candidates never race.
  CandidateResult try_candidate(const phy::PdcchSubframe& sf, int al,
                                int start);
  CandidateResult run_formats(const phy::PdcchSubframe& sf, int al, int start,
                              const util::BitVec& span) const;

  // Lockstep path (decode_lanes() > 1): decode one lane-sized block of
  // memo-miss candidates — per-DCI-format waves through
  // phy::conv_decode_batch (convolutional cells) or the CRC-screened
  // majority vote (repetition cells), then memo store. `miss[0..n_miss)`
  // index into the AL's full `starts`/`spans`/`out` arrays (the caller
  // already extracted spans and resolved memo hits); distinct blocks touch
  // disjoint indices, so blocks run on pool threads without racing.
  // Returns the number of Viterbi batches launched. Byte-identical
  // outcomes to try_candidate() on each candidate.
  std::uint64_t decode_block(const phy::PdcchSubframe& sf, int al,
                             const int* starts, const util::BitVec* spans,
                             const std::size_t* miss, std::size_t n_miss,
                             CandidateResult* out);

  // Majority-vote the repetitions of a msg_bits-long message stored in
  // `n_cces` CCEs starting at `first_cce`.
  util::BitVec majority_decode(const phy::PdcchSubframe& sf, int first_cce,
                               int n_cces, int msg_bits) const;

  // Re-encoding agreement check (path-metric stand-in): true when the
  // candidate message is consistent with >=97% of the raw region bits.
  bool region_agrees(const phy::PdcchSubframe& sf, int first_cce, int n_cces,
                     const util::BitVec& msg) const;

  phy::CellConfig cell_;
  DecodeStats stats_;

  // Span memo, per AL lane then candidate position: if a candidate's exact
  // soft bits reappear (idle spans, static interferers, repeated noise-free
  // payloads), replay the recorded outcome instead of re-running Viterbi /
  // majority voting. Counters are still replayed, keeping metrics
  // byte-identical with the memo disabled.
  struct MemoEntry {
    bool valid = false;
    phy::PdcchCoding coding{};
    util::BitVec span;
    CandidateResult result;
  };
  std::array<std::vector<MemoEntry>, kNumAlLanes> memo_;

  // Registry counters cached at construction: decode() runs per subframe
  // per cell and must not pay name lookups on the hot path. All decoder
  // instances share the process-wide aggregate counters.
  struct ObsCounters {
    std::array<obs::Counter*, kNumAlLanes> candidates;
    std::array<obs::Counter*, kNumAlLanes> crc_failures;
    obs::Counter* decoded;
    obs::Counter* subframes;
    obs::Counter* memo_hits;
    obs::Counter* lane_batches;
    obs::Counter* early_aborts;
    obs::Counter* screen_rejects;
  };
  ObsCounters obs_{};
};

}  // namespace pbecc::decoder
