// Message Fusion (paper Fig 10a): aligns the decoded control messages from
// multiple per-cell decoders by subframe index and hands the congestion
// control module one consolidated view per subframe.
//
// Decoders may report cells in any order within a subframe; fusion emits a
// subframe once every registered cell has reported it (or, if a decoder
// misses a subframe entirely, when the next subframe completes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "phy/cell_config.h"
#include "phy/dci.h"

namespace pbecc::decoder {

struct CellMessages {
  phy::CellId cell = 0;
  std::vector<phy::Dci> messages;
};

struct FusedSubframe {
  std::int64_t sf_index = 0;
  std::vector<CellMessages> cells;  // one entry per registered cell
};

class MessageFusion {
 public:
  using Output = std::function<void(const FusedSubframe&)>;

  explicit MessageFusion(Output out) : out_(std::move(out)) {}

  void register_cell(phy::CellId cell) { expected_.push_back(cell); }
  std::size_t num_cells() const { return expected_.size(); }

  // Feed one cell's decode result for one subframe.
  void on_decoded(phy::CellId cell, std::int64_t sf_index,
                  std::vector<phy::Dci> messages);

 private:
  void flush_through(std::int64_t sf_index);

  Output out_;
  std::vector<phy::CellId> expected_;
  // sf_index -> per-cell messages collected so far.
  std::map<std::int64_t, std::map<phy::CellId, std::vector<phy::Dci>>> pending_;
};

}  // namespace pbecc::decoder
