// Message Fusion (paper Fig 10a): aligns the decoded control messages from
// multiple per-cell decoders and hands the congestion control module one
// consolidated view per decode instant.
//
// With LTE-only carrier sets every cell ticks at 1 ms and fusion degenerates
// to the classic per-subframe alignment. Mixed LTE+NR sets run heterogeneous
// slot clocks (an NR cell at 120 kHz reports eight slots per LTE subframe),
// so pending work is keyed on the tick's start *time* in microseconds: a
// cell is "due" at time t iff t is a multiple of its tick, and an emission
// at t carries exactly the due cells. Decoders may report cells in any
// order within one instant; fusion emits an instant once every due cell has
// reported it (or, if a decoder misses a tick entirely, when a later
// instant completes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "phy/cell_config.h"
#include "phy/dci.h"
#include "util/time.h"

namespace pbecc::decoder {

struct CellMessages {
  phy::CellId cell = 0;
  // The cell-local tick index this list was decoded at (time / tick).
  std::int64_t sf_index = 0;
  std::vector<phy::Dci> messages;
};

struct FusedSubframe {
  // Start instant of the fused tick (µs). For LTE-only sets this is
  // sf_index * kSubframe of the classic per-subframe emission.
  util::Time time = 0;
  std::vector<CellMessages> cells;  // one entry per cell due at `time`
};

class MessageFusion {
 public:
  using Output = std::function<void(const FusedSubframe&)>;

  explicit MessageFusion(Output out) : out_(std::move(out)) {}

  void register_cell(phy::CellId cell, util::Duration tick = util::kSubframe) {
    expected_.push_back({cell, tick});
  }
  std::size_t num_cells() const { return expected_.size(); }
  // Carrier reconfiguration changed a cell's numerology; unknown cells are
  // ignored.
  void set_cell_tick(phy::CellId cell, util::Duration tick);

  // Feed one cell's decode result for one tick of its own clock.
  void on_decoded(phy::CellId cell, std::int64_t sf_index,
                  std::vector<phy::Dci> messages);

 private:
  struct Expected {
    phy::CellId cell = 0;
    util::Duration tick = util::kSubframe;
  };

  void flush_through(util::Time t);

  Output out_;
  std::vector<Expected> expected_;
  // tick start time -> per-cell messages collected so far.
  std::map<util::Time, std::map<phy::CellId, std::vector<phy::Dci>>> pending_;
};

}  // namespace pbecc::decoder
