#include "decoder/message_fusion.h"

#include "check/check.h"
#include "obs/obs.h"

namespace pbecc::decoder {

void MessageFusion::set_cell_tick(phy::CellId cell, util::Duration tick) {
  for (Expected& e : expected_) {
    if (e.cell == cell) e.tick = tick;
  }
}

void MessageFusion::on_decoded(phy::CellId cell, std::int64_t sf_index,
                               std::vector<phy::Dci> messages) {
  util::Duration tick = util::kSubframe;
  for (const Expected& e : expected_) {
    if (e.cell == cell) tick = e.tick;
  }
  const util::Time t = sf_index * tick;
  auto& slot = pending_[t];
  slot[cell] = std::move(messages);

  // Complete when every cell due at t (those whose tick divides t) has
  // reported; otherwise emit any strictly older, incomplete instants — a
  // decoder that skipped a tick must not stall the pipeline (capacity
  // estimates are time-critical).
  std::size_t due = 0;
  for (const Expected& e : expected_) {
    if (t % e.tick == 0) ++due;
  }
  if (slot.size() == due) {
    flush_through(t);
  } else {
    flush_through(t - 1);
  }
  // Every call flushes everything older than the current instant, so with
  // (near-)monotonic decoder feeds only the current instant — plus a
  // small out-of-order slack — may stay pending. Unbounded growth here
  // means the flush logic regressed and the pipeline is silently stalling.
  PBECC_INVARIANT(pending_.size() <= 4, "fusion_pending_bounded");
  if constexpr (check::kDeep) {
    bool known = true;
    for (const auto& [pt, cells] : pending_) {
      for (const auto& [c, msgs] : cells) {
        bool found = false;
        for (const Expected& e : expected_) found = found || e.cell == c;
        known = known && found;
      }
    }
    PBECC_DEEP_INVARIANT(known, "fusion_pending_cells_registered");
  }
}

void MessageFusion::flush_through(util::Time t) {
  auto it = pending_.begin();
  while (it != pending_.end() && it->first <= t) {
    FusedSubframe fused;
    fused.time = it->first;
    for (const Expected& e : expected_) {
      if (fused.time % e.tick != 0) continue;  // cell not due at this instant
      CellMessages cm;
      cm.cell = e.cell;
      cm.sf_index = fused.time / e.tick;
      if (auto found = it->second.find(e.cell); found != it->second.end()) {
        cm.messages = std::move(found->second);
      } else if constexpr (obs::kCompiled) {
        // A decoder skipped this tick on cell `e.cell`; fusion papers over
        // the gap with an empty message list (the correction the paper's
        // Fig 10a pipeline applies). Surface it — gap rate is the health
        // signal for control-channel monitoring.
        static obs::Counter& gaps = obs::counter("decoder.fusion.gaps");
        gaps.inc();
        obs::emit(obs::EventKind::kFusionIncomplete, fused.time,
                  static_cast<std::uint16_t>(e.cell), 0, cm.sf_index);
      }
      fused.cells.push_back(std::move(cm));
    }
    out_(fused);
    it = pending_.erase(it);
  }
}

}  // namespace pbecc::decoder
