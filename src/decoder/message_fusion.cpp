#include "decoder/message_fusion.h"

#include "check/check.h"
#include "obs/obs.h"
#include "util/time.h"

namespace pbecc::decoder {

void MessageFusion::on_decoded(phy::CellId cell, std::int64_t sf_index,
                               std::vector<phy::Dci> messages) {
  pending_[sf_index][cell] = std::move(messages);
  if (pending_[sf_index].size() == expected_.size()) {
    flush_through(sf_index);
  } else {
    // Emit any older, incomplete subframes — a decoder that skipped one
    // must not stall the pipeline (capacity estimates are time-critical).
    flush_through(sf_index - 1);
  }
  // Every call flushes everything older than the current subframe, so with
  // (near-)monotonic decoder feeds only the current subframe — plus a
  // small out-of-order slack — may stay pending. Unbounded growth here
  // means the flush logic regressed and the pipeline is silently stalling.
  PBECC_INVARIANT(pending_.size() <= 4, "fusion_pending_bounded");
  if constexpr (check::kDeep) {
    bool known = true;
    for (const auto& [sf, cells] : pending_) {
      for (const auto& [c, msgs] : cells) {
        bool found = false;
        for (phy::CellId e : expected_) found = found || e == c;
        known = known && found;
      }
    }
    PBECC_DEEP_INVARIANT(known, "fusion_pending_cells_registered");
  }
}

void MessageFusion::flush_through(std::int64_t sf_index) {
  auto it = pending_.begin();
  while (it != pending_.end() && it->first <= sf_index) {
    FusedSubframe fused;
    fused.sf_index = it->first;
    for (phy::CellId c : expected_) {
      CellMessages cm;
      cm.cell = c;
      if (auto found = it->second.find(c); found != it->second.end()) {
        cm.messages = std::move(found->second);
      } else if constexpr (obs::kCompiled) {
        // A decoder skipped this subframe on cell `c`; fusion papers over
        // the gap with an empty message list (the correction the paper's
        // Fig 10a pipeline applies). Surface it — gap rate is the health
        // signal for control-channel monitoring.
        static obs::Counter& gaps = obs::counter("decoder.fusion.gaps");
        gaps.inc();
        obs::emit(obs::EventKind::kFusionIncomplete,
                  util::subframe_start(it->first),
                  static_cast<std::uint16_t>(c), 0, it->first);
      }
      fused.cells.push_back(std::move(cm));
    }
    out_(fused);
    it = pending_.erase(it);
  }
}

}  // namespace pbecc::decoder
