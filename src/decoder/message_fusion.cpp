#include "decoder/message_fusion.h"

namespace pbecc::decoder {

void MessageFusion::on_decoded(phy::CellId cell, std::int64_t sf_index,
                               std::vector<phy::Dci> messages) {
  pending_[sf_index][cell] = std::move(messages);
  if (pending_[sf_index].size() == expected_.size()) {
    flush_through(sf_index);
  } else {
    // Emit any older, incomplete subframes — a decoder that skipped one
    // must not stall the pipeline (capacity estimates are time-critical).
    flush_through(sf_index - 1);
  }
}

void MessageFusion::flush_through(std::int64_t sf_index) {
  auto it = pending_.begin();
  while (it != pending_.end() && it->first <= sf_index) {
    FusedSubframe fused;
    fused.sf_index = it->first;
    for (phy::CellId c : expected_) {
      CellMessages cm;
      cm.cell = c;
      if (auto found = it->second.find(c); found != it->second.end()) {
        cm.messages = std::move(found->second);
      }
      fused.cells.push_back(std::move(cm));
    }
    out_(fused);
    it = pending_.erase(it);
  }
}

}  // namespace pbecc::decoder
