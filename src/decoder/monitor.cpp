#include "decoder/monitor.h"

#include <string>

#include "obs/obs.h"

namespace pbecc::decoder {

Monitor::Monitor(phy::Rnti own_rnti, std::vector<phy::CellConfig> cells,
                 Output out, ControlBerFn ber_fn,
                 UserTrackerConfig tracker_cfg, std::uint64_t seed)
    : own_rnti_(own_rnti), out_(std::move(out)), ber_fn_(std::move(ber_fn)),
      rng_(seed) {
  fusion_ = std::make_unique<MessageFusion>([this](const FusedSubframe& fused) {
    fused_subframes_->inc();
    std::vector<CellObservation> obs;
    obs.reserve(fused.cells.size());
    for (const auto& cm : fused.cells) {
      CellObservation o;
      o.cell = cm.cell;
      o.sf_index = fused.sf_index;
      o.cell_prbs = cell_prbs_.at(cm.cell);
      o.summary = trackers_.at(cm.cell)->on_subframe(fused.sf_index,
                                                     cm.messages, own_rnti_);
      if constexpr (obs::kCompiled) {
        const auto& g = gauges_.at(cm.cell);
        g.data_users->set(o.summary.data_users);
        g.raw_users->set(o.summary.raw_active_users);
        obs::emit(obs::EventKind::kSubframeObserved,
                  util::subframe_start(fused.sf_index),
                  static_cast<std::uint16_t>(cm.cell), 0,
                  o.summary.data_users, o.summary.own_prbs,
                  o.summary.idle_prbs);
      }
      obs.push_back(o);
    }
    out_(obs);
  });
  fused_subframes_ = &obs::counter("decoder.fused_subframes");
  for (const auto& c : cells) {
    decoders_.emplace(c.id, std::make_unique<BlindDecoder>(c));
    trackers_.emplace(c.id, std::make_unique<UserTracker>(c.n_prbs(), tracker_cfg));
    cell_prbs_[c.id] = c.n_prbs();
    fusion_->register_cell(c.id);
    const std::string cell_tag = ".cell" + std::to_string(c.id);
    gauges_[c.id] = CellGauges{
        &obs::gauge("decoder.data_users" + cell_tag),
        &obs::gauge("decoder.raw_users" + cell_tag)};
  }
}

void Monitor::on_pdcch(const phy::PdcchSubframe& sf) {
  auto dit = decoders_.find(sf.cell_id);
  if (dit == decoders_.end()) return;

  // The monitor receives the control region over its own radio channel.
  phy::PdcchSubframe noisy = sf;
  if (ber_fn_) {
    const double ber = ber_fn_(sf.cell_id);
    phy::apply_bit_noise(noisy, ber, rng_);
  }
  fusion_->on_decoded(sf.cell_id, sf.sf_index, dit->second->decode(noisy));
}

void Monitor::set_tracker_window(util::Duration w) {
  for (auto& [id, t] : trackers_) t->set_window(w);
}

}  // namespace pbecc::decoder
