#include "decoder/monitor.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "par/thread_pool.h"

namespace pbecc::decoder {

namespace {
// Effective control-channel BER beyond which we model the decode as an
// outright failure (real decoders report CRC failure storms well before
// this). Only reachable through injected SINR collapses — the benign noise
// path stays below it.
constexpr double kDecodableBerLimit = 0.05;
}  // namespace

Monitor::Monitor(phy::Rnti own_rnti, std::vector<phy::CellConfig> cells,
                 Output out, ControlBerFn ber_fn,
                 UserTrackerConfig tracker_cfg, std::uint64_t seed,
                 const fault::FaultInjector* faults)
    : own_rnti_(own_rnti), out_(std::move(out)), ber_fn_(std::move(ber_fn)),
      faults_(faults), rng_(seed) {
  fusion_ = std::make_unique<MessageFusion>([this](const FusedSubframe& fused) {
    fused_subframes_->inc();
    std::vector<CellObservation> obs;
    obs.reserve(fused.cells.size());
    for (const auto& cm : fused.cells) {
      CellObservation o;
      o.cell = cm.cell;
      o.sf_index = cm.sf_index;
      o.tick = cell_tick_.at(cm.cell);
      o.cell_prbs = cell_prbs_.at(cm.cell);
      o.summary = trackers_.at(cm.cell)->on_subframe(cm.sf_index,
                                                     cm.messages, own_rnti_);
      if constexpr (obs::kCompiled) {
        const auto& g = gauges_.at(cm.cell);
        g.data_users->set(o.summary.data_users);
        g.raw_users->set(o.summary.raw_active_users);
        obs::emit(obs::EventKind::kSubframeObserved, fused.time,
                  static_cast<std::uint16_t>(cm.cell), 0,
                  o.summary.data_users, o.summary.own_prbs,
                  o.summary.idle_prbs);
      }
      obs.push_back(o);
    }
    out_(obs);
  });
  fused_subframes_ = &obs::counter("decoder.fused_subframes");
  for (const auto& c : cells) {
    decoders_.emplace(c.id, std::make_unique<BlindDecoder>(c));
    trackers_.emplace(c.id, std::make_unique<UserTracker>(c.n_prbs(),
                                                          tracker_cfg,
                                                          c.tick()));
    cell_prbs_[c.id] = c.n_prbs();
    cell_tick_[c.id] = c.tick();
    fusion_->register_cell(c.id, c.tick());
    const std::string cell_tag = ".cell" + std::to_string(c.id);
    gauges_[c.id] = CellGauges{
        &obs::gauge("decoder.data_users" + cell_tag),
        &obs::gauge("decoder.raw_users" + cell_tag)};
  }
}

void Monitor::note_fault_edge(bool& state, bool now_active,
                              fault::FaultType type, phy::CellId cell,
                              util::Time t, std::int64_t detail) {
  if (now_active && !state) {
    if constexpr (obs::kCompiled) {
      static obs::Counter& injections = obs::counter("fault.monitor_injections");
      injections.inc();
      obs::emit(obs::EventKind::kFaultInjected, t,
                static_cast<std::uint16_t>(cell),
                static_cast<std::uint32_t>(type), detail);
    }
  }
  state = now_active;
}

void Monitor::on_pdcch(const phy::PdcchSubframe& sf) {
  on_pdcch_batch({sf});
}

void Monitor::on_pdcch_batch(const std::vector<phy::PdcchSubframe>& sfs) {
  struct Pending {
    phy::PdcchSubframe noisy;
    BlindDecoder* dec = nullptr;
    phy::CellId cell{};
    std::int64_t sf_index = 0;
    util::Time now = 0;
    DecodeRun run;
  };
  std::vector<Pending> pending;
  pending.reserve(sfs.size());

  // Phase 1 — serial preparation, in input order. Every fault decision,
  // accounting update and rng_ noise draw happens here, so the random
  // stream each cell sees is independent of how phase 2 is scheduled.
  for (const auto& sf : sfs) {
    auto dit = decoders_.find(sf.cell_id);
    if (dit == decoders_.end()) continue;

    // sf_index counts ticks on the cell's own clock (subframes for LTE,
    // slots for NR), so the start instant scales by the tick length.
    const util::Time now = sf.sf_index * sf.tick;
    if (first_pdcch_ < 0) first_pdcch_ = now;
    ++attempts_;
    // Keep the success log bounded even if decode_success_rate() is never
    // polled.
    while (!success_times_.empty() &&
           success_times_.front() < now - success_window_) {
      success_times_.pop_front();
    }

    double extra_ber = 0;
    if (faults_ != nullptr) {
      if (faults_->monitor_stalled(now)) {
        // Frozen subframe clock: the monitor processes nothing. Wall time
        // still advances, which is what decays the success rate.
        note_fault_edge(in_stall_, true, fault::FaultType::kMonitorStall, 0,
                        now, 0);
        ++failures_;
        continue;
      }
      note_fault_edge(in_stall_, false, fault::FaultType::kMonitorStall, 0,
                      now, 0);

      bool& bo = in_blackout_[sf.cell_id];
      if (faults_->dci_blackout(now, sf.cell_id)) {
        note_fault_edge(bo, true, fault::FaultType::kBlackout, sf.cell_id, now,
                        sf.sf_index);
        ++failures_;
        continue;
      }
      note_fault_edge(bo, false, fault::FaultType::kBlackout, sf.cell_id, now,
                      sf.sf_index);

      extra_ber = faults_->extra_control_ber(now, sf.cell_id);
      note_fault_edge(in_collapse_[sf.cell_id], extra_ber > 0,
                      fault::FaultType::kSinrCollapse, sf.cell_id, now,
                      sf.sf_index);
    }

    // The monitor receives the control region over its own radio channel.
    const double base_ber = ber_fn_ ? ber_fn_(sf.cell_id) : 0.0;
    if (faults_ != nullptr && base_ber + extra_ber > kDecodableBerLimit) {
      // Collapsed SINR: the control region is not decodable this subframe.
      ++failures_;
      continue;
    }
    Pending p;
    p.noisy = sf;
    if (base_ber + extra_ber > 0) {
      phy::apply_bit_noise(p.noisy, base_ber + extra_ber, rng_);
    }
    p.dec = dit->second.get();
    p.cell = sf.cell_id;
    p.sf_index = sf.sf_index;
    p.now = now;
    pending.push_back(std::move(p));
  }

  // Phase 2 — blind decode, the expensive part. Each entry is a distinct
  // cell, hence a distinct BlindDecoder instance, and decode_compute
  // touches nothing shared — safe to fan out on the pool.
  par::parallel_for(pending.size(), [&](std::size_t i) {
    pending[i].run = pending[i].dec->decode_compute(pending[i].noisy);
  });

  // Phase 3 — apply + fusion, serial, back in input order: stats,
  // counters, trace events, false-DCI injection and downstream fusion
  // callbacks all land exactly as in a per-subframe serial run.
  for (Pending& p : pending) {
    auto messages = p.dec->decode_apply(p.run);
    if (faults_ != nullptr) {
      const int n_false = faults_->false_dci_count(p.sf_index, p.cell);
      for (int k = 0; k < n_false; ++k) {
        messages.push_back(faults_->make_false_dci(
            p.sf_index, p.cell, cell_prbs_.at(p.cell), k));
      }
      if (n_false > 0) {
        if constexpr (obs::kCompiled) {
          static obs::Counter& false_dcis =
              obs::counter("fault.false_dcis");
          false_dcis.inc(static_cast<std::uint64_t>(n_false));
          obs::emit(obs::EventKind::kFaultInjected, p.now,
                    static_cast<std::uint16_t>(p.cell),
                    static_cast<std::uint32_t>(fault::FaultType::kFalseDci),
                    n_false);
        }
      }
    }
    success_times_.push_back(p.now);
    fusion_->on_decoded(p.cell, p.sf_index, std::move(messages));
  }
}

std::uint64_t Monitor::total_candidates_tried() const {
  std::uint64_t total = 0;
  for (const auto& [id, dec] : decoders_) total += dec->stats().candidates_tried;
  return total;
}

std::uint64_t Monitor::total_lane_batches() const {
  std::uint64_t total = 0;
  for (const auto& [id, dec] : decoders_) total += dec->stats().lane_batches;
  return total;
}

std::uint64_t Monitor::total_early_aborts() const {
  std::uint64_t total = 0;
  for (const auto& [id, dec] : decoders_) total += dec->stats().early_aborts;
  return total;
}

double Monitor::decode_success_rate(util::Time now) const {
  if (first_pdcch_ < 0) return 1.0;
  const util::Time lo = std::max(first_pdcch_, now - success_window_);
  while (!success_times_.empty() && success_times_.front() < lo) {
    success_times_.pop_front();
  }
  bool all_subframe_tick = true;
  for (const auto& [id, tick] : cell_tick_) {
    all_subframe_tick = all_subframe_tick && tick == util::kSubframe;
  }
  double expected = 0;
  if (all_subframe_tick) {
    // LTE-only fast path, kept verbatim (one multiply instead of a per-cell
    // sum) so pre-NR runs stay bit-identical.
    const double span_sf =
        static_cast<double>(now - lo) / static_cast<double>(util::kSubframe) +
        1.0;
    expected = span_sf * static_cast<double>(decoders_.size());
  } else {
    // Heterogeneous clocks: each cell contributes one expected decode per
    // tick of its own cadence over the window span.
    for (const auto& [id, tick] : cell_tick_) {
      expected += static_cast<double>(now - lo) / static_cast<double>(tick) +
                  1.0;
    }
  }
  if (expected <= 0) return 1.0;
  return std::min(1.0, static_cast<double>(success_times_.size()) / expected);
}

void Monitor::set_tracker_window(util::Duration w) {
  for (auto& [id, t] : trackers_) t->set_window(w);
}

void Monitor::reconfigure_cell(const phy::CellConfig& cell) {
  auto dit = decoders_.find(cell.id);
  if (dit == decoders_.end()) return;
  dit->second->reconfigure(cell);
  trackers_.at(cell.id)->set_cell_prbs(cell.n_prbs());
  cell_prbs_[cell.id] = cell.n_prbs();
  cell_tick_[cell.id] = cell.tick();
  fusion_->set_cell_tick(cell.id, cell.tick());
}

}  // namespace pbecc::decoder
