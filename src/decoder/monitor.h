// The complete endpoint measurement module: per-cell blind decoders (fed
// with the monitor's own noisy copy of each control region), message
// fusion, and per-cell user trackers — the full pipeline of paper Fig 10a,
// ending in the per-subframe cell observations the capacity estimator
// consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "decoder/blind_decoder.h"
#include "decoder/message_fusion.h"
#include "decoder/user_tracker.h"
#include "obs/metrics.h"
#include "phy/pdcch.h"
#include "util/rng.h"

namespace pbecc::decoder {

// One cell's digest for one subframe, after decode + fusion + tracking.
struct CellObservation {
  phy::CellId cell = 0;
  std::int64_t sf_index = 0;
  int cell_prbs = 0;
  UserTracker::SubframeSummary summary{};
};

class Monitor {
 public:
  using Output = std::function<void(const std::vector<CellObservation>&)>;

  // `control_ber` is evaluated per subframe per cell to noise the monitor's
  // copy of the control region (0 = clean).
  using ControlBerFn = std::function<double(phy::CellId)>;

  Monitor(phy::Rnti own_rnti, std::vector<phy::CellConfig> cells,
          Output out, ControlBerFn ber_fn = {},
          UserTrackerConfig tracker_cfg = {}, std::uint64_t seed = 99);

  // Feed a (clean) control region broadcast from the base station; the
  // monitor applies its own reception noise before decoding. Cells the
  // monitor is not configured for are ignored (it only runs decoders for
  // the aggregated cells of its own UE, as in the paper's prototype).
  void on_pdcch(const phy::PdcchSubframe& sf);

  // RTprop changes adjust the activity window (paper averages over the
  // most recent RTprop of subframes).
  void set_tracker_window(util::Duration w);

  const UserTracker& tracker(phy::CellId cell) const { return *trackers_.at(cell); }
  const BlindDecoder& decoder(phy::CellId cell) const { return *decoders_.at(cell); }
  bool has_cell(phy::CellId cell) const { return decoders_.contains(cell); }

 private:
  phy::Rnti own_rnti_;
  Output out_;
  ControlBerFn ber_fn_;
  std::map<phy::CellId, std::unique_ptr<BlindDecoder>> decoders_;
  std::map<phy::CellId, std::unique_ptr<UserTracker>> trackers_;
  std::map<phy::CellId, int> cell_prbs_;
  // Per-cell activity gauges (`decoder.active_users.cell<N>` etc.),
  // registered once at construction.
  struct CellGauges {
    obs::Gauge* data_users;
    obs::Gauge* raw_users;
  };
  std::map<phy::CellId, CellGauges> gauges_;
  obs::Counter* fused_subframes_ = nullptr;
  std::unique_ptr<MessageFusion> fusion_;
  util::Rng rng_;
};

}  // namespace pbecc::decoder
