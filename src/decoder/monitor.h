// The complete endpoint measurement module: per-cell blind decoders (fed
// with the monitor's own noisy copy of each control region), message
// fusion, and per-cell user trackers — the full pipeline of paper Fig 10a,
// ending in the per-subframe cell observations the capacity estimator
// consumes.
//
// Robustness: an optional fault::FaultInjector models real decoder
// pathologies (PDCCH blackouts, SINR collapses, CRC-aliased false
// positives, frozen subframe clocks). The monitor accounts every decode
// attempt and exposes a sliding-window decode-success rate — one of the
// inputs to the PBE client's feedback confidence score.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "decoder/blind_decoder.h"
#include "decoder/message_fusion.h"
#include "decoder/user_tracker.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "phy/pdcch.h"
#include "util/rng.h"

namespace pbecc::decoder {

// One cell's digest for one tick (subframe / NR slot), after decode +
// fusion + tracking. `sf_index` counts ticks on the cell's own clock; the
// tick's start instant is sf_index * tick.
struct CellObservation {
  phy::CellId cell = 0;
  std::int64_t sf_index = 0;
  util::Duration tick = util::kSubframe;
  int cell_prbs = 0;
  UserTracker::SubframeSummary summary{};
};

class Monitor {
 public:
  using Output = std::function<void(const std::vector<CellObservation>&)>;

  // `control_ber` is evaluated per subframe per cell to noise the monitor's
  // copy of the control region (0 = clean).
  using ControlBerFn = std::function<double(phy::CellId)>;

  // `faults` (optional, unowned, may outlive-checked by caller) injects
  // deterministic decode faults; nullptr = no fault path at all.
  Monitor(phy::Rnti own_rnti, std::vector<phy::CellConfig> cells,
          Output out, ControlBerFn ber_fn = {},
          UserTrackerConfig tracker_cfg = {}, std::uint64_t seed = 99,
          const fault::FaultInjector* faults = nullptr);

  // Feed a (clean) control region broadcast from the base station; the
  // monitor applies its own reception noise before decoding. Cells the
  // monitor is not configured for are ignored (it only runs decoders for
  // the aggregated cells of its own UE, as in the paper's prototype).
  void on_pdcch(const phy::PdcchSubframe& sf);

  // Batched form: all cells' control regions for one tick at once, in cell
  // order. Runs in three phases so the expensive blind decode can fan out
  // on the pbecc::par pool: (1) serial fault/noise preparation in the given
  // order (every rng_ draw happens here, so the noise stream is identical
  // for any thread count), (2) side-effect-free decode_compute per cell,
  // potentially in parallel, (3) serial apply + fusion in the given order.
  // Byte-identical to calling on_pdcch per subframe in the same order.
  void on_pdcch_batch(const std::vector<phy::PdcchSubframe>& sfs);

  // RTprop changes adjust the activity window (paper averages over the
  // most recent RTprop of subframes).
  void set_tracker_window(util::Duration w);

  // Carrier reconfiguration: the network changed a monitored cell's
  // parameters (PRB count / control region geometry) mid-run. Pushes the
  // new config into the cell's blind decoder (clearing its span memo),
  // user tracker and the fusion-callback PRB table so downstream capacity
  // estimates see the new Pcell immediately. Unknown cells are ignored.
  void reconfigure_cell(const phy::CellConfig& cell);

  // Fraction of the cell-subframes expected over the recent accounting
  // window (~200 ms) that decoded successfully. 1.0 before any PDCCH has
  // been seen. Stalls lower the rate too: the denominator is wall time, so
  // a frozen monitor that processes nothing decays exactly like one whose
  // decodes all fail.
  double decode_success_rate(util::Time now) const;
  std::uint64_t decode_attempts() const { return attempts_; }
  std::uint64_t decode_failures() const { return failures_; }
  // Blind-decode candidates tried across all cell decoders (bench JSON).
  std::uint64_t total_candidates_tried() const;
  // Lockstep-path diagnostics summed across all cell decoders: Viterbi lane
  // batches launched and candidate attempts retired by the exact-safe early
  // abort. Both zero when decode_lanes() == 1.
  std::uint64_t total_lane_batches() const;
  std::uint64_t total_early_aborts() const;

  const UserTracker& tracker(phy::CellId cell) const { return *trackers_.at(cell); }
  const BlindDecoder& decoder(phy::CellId cell) const { return *decoders_.at(cell); }
  bool has_cell(phy::CellId cell) const { return decoders_.contains(cell); }

 private:
  void note_fault_edge(bool& state, bool now_active, fault::FaultType type,
                       phy::CellId cell, util::Time t, std::int64_t detail);

  phy::Rnti own_rnti_;
  Output out_;
  ControlBerFn ber_fn_;
  const fault::FaultInjector* faults_ = nullptr;
  std::map<phy::CellId, std::unique_ptr<BlindDecoder>> decoders_;
  std::map<phy::CellId, std::unique_ptr<UserTracker>> trackers_;
  std::map<phy::CellId, int> cell_prbs_;
  std::map<phy::CellId, util::Duration> cell_tick_;
  // Per-cell activity gauges (`decoder.active_users.cell<N>` etc.),
  // registered once at construction.
  struct CellGauges {
    obs::Gauge* data_users;
    obs::Gauge* raw_users;
  };
  std::map<phy::CellId, CellGauges> gauges_;
  obs::Counter* fused_subframes_ = nullptr;
  std::unique_ptr<MessageFusion> fusion_;
  util::Rng rng_;

  // Decode accounting: timestamps of successful cell-subframe decodes in
  // the recent window. Failures are implicit — the expected count comes
  // from the wall-clock span, which also charges stall time.
  util::Duration success_window_ = 200 * util::kMillisecond;
  mutable std::deque<util::Time> success_times_;
  util::Time first_pdcch_ = -1;
  std::uint64_t attempts_ = 0;
  std::uint64_t failures_ = 0;
  // Edge state for fault trace events (emit on onset, not per subframe).
  bool in_stall_ = false;
  std::map<phy::CellId, bool> in_blackout_;
  std::map<phy::CellId, bool> in_collapse_;
};

}  // namespace pbecc::decoder
