#include "decoder/user_tracker.h"

#include <algorithm>

#include "check/check.h"

namespace pbecc::decoder {

void UserTracker::expire(std::int64_t current_sf) {
  const auto window_sf = std::max<std::int64_t>(1, cfg_.window / tick_);
  while (!history_.empty() && history_.front().sf <= current_sf - window_sf) {
    const auto& o = history_.front();
    auto it = users_.find(o.rnti);
    if (it != users_.end()) {
      it->second.active_subframes -= 1;
      it->second.average_prbs -= o.prbs;  // holds the *sum* internally
      if (it->second.active_subframes <= 0) users_.erase(it);
    }
    history_.pop_front();
  }
}

UserTracker::SubframeSummary UserTracker::on_subframe(
    std::int64_t sf_index, const std::vector<phy::Dci>& messages,
    phy::Rnti own_rnti) {
  expire(sf_index);

  SubframeSummary s;
  for (const auto& dci : messages) {
    if (!dci.is_downlink()) continue;  // uplink grants don't consume DL PRBs
    s.allocated_prbs += dci.n_prbs;
    if (dci.rnti == own_rnti) {
      s.own_prbs += dci.n_prbs;
      s.own_bits_per_prb = dci.mcs.bits_per_prb();
    }
    history_.push_back({sf_index, dci.rnti, dci.n_prbs});
    auto& u = users_[dci.rnti];
    u.rnti = dci.rnti;
    u.active_subframes += 1;
    u.average_prbs += dci.n_prbs;  // sum; divided out on read
    u.last_seen_sf = sf_index;
  }

  s.idle_prbs = std::max(0, cell_prbs_ - s.allocated_prbs);
  s.raw_active_users = static_cast<int>(users_.size());
  s.data_users = data_users(own_rnti);

  // The RNTI map only holds users with in-window observations, so it can
  // never outgrow the observation history (RNTI churn must not leak).
  PBECC_INVARIANT(users_.size() <= history_.size() || history_.empty(),
                  "tracker_users_bounded_by_history");
  if constexpr (check::kDeep) {
    if (++deep_tick_ % 256 != 0) return s;
    // Exact cross-check: per-user Ta counts and PRB sums are maintained
    // incrementally on ingest/expire; re-derive both from the history.
    std::int64_t ta_total = 0;
    bool per_user_ok = true;
    for (const auto& [rnti, a] : users_) {
      ta_total += a.active_subframes;
      std::int64_t ta = 0;
      double prbs = 0;
      for (const auto& o : history_) {
        if (o.rnti == rnti) {
          ++ta;
          prbs += o.prbs;
        }
      }
      if (ta != a.active_subframes || prbs != a.average_prbs) {
        per_user_ok = false;
      }
    }
    PBECC_DEEP_INVARIANT(
        ta_total == static_cast<std::int64_t>(history_.size()),
        "tracker_ta_matches_history");
    PBECC_DEEP_INVARIANT(per_user_ok, "tracker_per_user_sums_exact");
  }
  return s;
}

bool UserTracker::passes_filter(const UserActivity& a, phy::Rnti own_rnti,
                                phy::Rnti candidate) const {
  if (candidate == own_rnti) return true;  // we are always a data user
  if (a.active_subframes < cfg_.min_active_subframes) return false;
  const double pave =
      a.average_prbs / std::max(1, a.active_subframes);  // sum -> mean
  return pave > cfg_.min_average_prbs;
}

int UserTracker::data_users(phy::Rnti own_rnti) const {
  int n = 0;
  bool own_seen = false;
  for (const auto& [rnti, a] : users_) {
    if (passes_filter(a, own_rnti, rnti)) ++n;
    if (rnti == own_rnti) own_seen = true;
  }
  // We share the cell even when momentarily unscheduled: count ourselves.
  if (!own_seen) ++n;
  return n;
}

int UserTracker::raw_users() const { return static_cast<int>(users_.size()); }

std::vector<UserActivity> UserTracker::activity() const {
  std::vector<UserActivity> out;
  out.reserve(users_.size());
  for (const auto& [rnti, a] : users_) {
    UserActivity ua = a;
    ua.average_prbs = a.average_prbs / std::max(1, a.active_subframes);
    out.push_back(ua);
  }
  return out;
}

}  // namespace pbecc::decoder
