#include "decoder/blind_decoder.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "nr/coreset.h"
#include "nr/polar.h"
#include "obs/obs.h"
#include "par/thread_pool.h"
#include "phy/convolutional.h"

namespace pbecc::decoder {

namespace {

std::atomic<int> g_decode_lanes{8};

// Blind-search format list per RAT: an LTE cell carries exactly the five
// 36.212 formats (byte-identical with the pre-NR decoder), an NR cell
// exactly the three 38.212 ones.
const phy::DciFormat* format_list(const phy::CellConfig& cell, int* n) {
  if (cell.rat == phy::Rat::kNr) {
    *n = static_cast<int>(std::size(phy::kNrDciFormats));
    return phy::kNrDciFormats;
  }
  *n = static_cast<int>(std::size(phy::kLteDciFormats));
  return phy::kLteDciFormats;
}

// Smallest integer `matches` count that satisfies region_agrees()'s
// `matches >= frac * total` double comparison — derived with the same
// double arithmetic so the lockstep path's integer threshold is exactly
// the scalar path's acceptance boundary.
std::int32_t min_passing_matches(double frac, std::size_t total) {
  auto m = static_cast<std::int32_t>(frac * static_cast<double>(total));
  while (static_cast<double>(m) < frac * static_cast<double>(total)) ++m;
  return m;
}

}  // namespace

void set_decode_lanes(int lanes) {
  g_decode_lanes.store(std::clamp(lanes, 1, phy::kMaxDecodeLanes),
                       std::memory_order_relaxed);
}

int decode_lanes() { return g_decode_lanes.load(std::memory_order_relaxed); }

BlindDecoder::BlindDecoder(phy::CellConfig cell) : cell_(cell) {
  for (int i = 0; i < kNumAlLanes; ++i) {
    const std::string al = std::to_string(kAggregationLevels[i]);
    obs_.candidates[static_cast<std::size_t>(i)] =
        &obs::counter("decoder.candidates.al" + al);
    obs_.crc_failures[static_cast<std::size_t>(i)] =
        &obs::counter("decoder.crc_failures.al" + al);
  }
  obs_.decoded = &obs::counter("decoder.messages_decoded");
  obs_.subframes = &obs::counter("decoder.subframes_decoded");
  obs_.memo_hits = &obs::counter("decoder.memo_hits");
  obs_.lane_batches = &obs::counter("decoder.lane_batches");
  obs_.early_aborts = &obs::counter("decoder.early_aborts");
  obs_.screen_rejects = &obs::counter("decoder.crc_screen_rejects");
}

void BlindDecoder::reconfigure(const phy::CellConfig& cell) {
  cell_ = cell;
  for (auto& lane : memo_) lane.clear();
}

util::BitVec BlindDecoder::majority_decode(const phy::PdcchSubframe& sf,
                                           int first_cce, int n_cces,
                                           int msg_bits) const {
  const int reps = phy::repetitions_that_fit(msg_bits, n_cces);
  util::BitVec out(static_cast<std::size_t>(msg_bits));
  const auto base = static_cast<std::size_t>(first_cce) * phy::kBitsPerCce;
  for (int b = 0; b < msg_bits; ++b) {
    int votes = 0;
    for (int r = 0; r < reps; ++r) {
      const auto idx = base + static_cast<std::size_t>(r) * msg_bits + b;
      votes += sf.bits.bit(idx) ? 1 : -1;
    }
    out.set_bit(static_cast<std::size_t>(b), votes > 0);
  }
  return out;
}

bool BlindDecoder::region_agrees(const phy::PdcchSubframe& sf, int first_cce,
                                 int n_cces, const util::BitVec& msg) const {
  const auto base_idx = static_cast<std::size_t>(first_cce) * phy::kBitsPerCce;
  if (sf.coding != phy::PdcchCoding::kRepetition) {
    // Re-encode the Viterbi decision and correlate with the raw block:
    // a genuine codeword agrees except for channel noise; a wrong-format
    // or cross-message decision lands near 50%. kPolar re-encodes through
    // the nr::polar_* seam (today the identical convolutional stand-in).
    const auto region = static_cast<std::size_t>(n_cces) * phy::kBitsPerCce;
    const util::BitVec re =
        sf.coding == phy::PdcchCoding::kPolar
            ? nr::polar_rate_match(nr::polar_encode(msg), region)
            : phy::rate_match(phy::conv_encode(msg), region);
    std::size_t matches = 0;
    for (std::size_t i = 0; i < re.size(); ++i) {
      matches += sf.bits.bit(base_idx + i) == re.bit(i) ? 1 : 0;
    }
    return static_cast<double>(matches) >= 0.85 * static_cast<double>(re.size());
  }

  // Path-metric stand-in: the decoded message, re-modulated, must agree
  // with the raw region across every repetition. A true message differs
  // only by channel noise; a phantom formed from a majority over unrelated
  // content disagrees with the repetitions that produced it.
  const int reps =
      phy::repetitions_that_fit(static_cast<int>(msg.size()), n_cces);
  const auto base = static_cast<std::size_t>(first_cce) * phy::kBitsPerCce;
  std::size_t matches = 0;
  const auto rep_bits = static_cast<std::size_t>(reps) * msg.size();
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < msg.size(); ++i) {
      const auto idx = base + static_cast<std::size_t>(r) * msg.size() + i;
      matches += sf.bits.bit(idx) == msg.bit(i) ? 1 : 0;
    }
  }
  // 0.93: passes the worst channel we decode through (~4-5% control BER)
  // while rejecting majorities formed over two unrelated messages (~75%).
  if (static_cast<double>(matches) < 0.93 * static_cast<double>(rep_bits)) {
    return false;
  }
  // The filler tail between the last repetition and the aggregation
  // boundary is transmitted as zeros. For single-repetition candidates the
  // repetition check above is vacuous (the majority IS the only copy), and
  // the filler is the only redundancy separating a real message from noise
  // that happened to satisfy the CRC-residue plausibility checks.
  const auto region_bits = static_cast<std::size_t>(n_cces) * phy::kBitsPerCce;
  std::size_t filler_zeros = 0;
  for (std::size_t i = rep_bits; i < region_bits; ++i) {
    filler_zeros += sf.bits.bit(base + i) ? 0 : 1;
  }
  const auto filler_total = region_bits - rep_bits;
  return filler_total == 0 ||
         static_cast<double>(filler_zeros) >=
             0.9 * static_cast<double>(filler_total);
}

BlindDecoder::CandidateResult BlindDecoder::run_formats(
    const phy::PdcchSubframe& sf, int al, int start,
    const util::BitVec& span) const {
  CandidateResult res;
  int n_formats = 0;
  const phy::DciFormat* formats = format_list(cell_, &n_formats);
  for (int f = 0; f < n_formats; ++f) {
    const auto format = formats[f];
    const int msg_bits = phy::dci_payload_bits(format) + 16;
    const bool conv = sf.coding != phy::PdcchCoding::kRepetition;
    util::BitVec bits;
    if (conv) {
      const auto region_bits = static_cast<std::size_t>(al) * phy::kBitsPerCce;
      const std::size_t steps =
          static_cast<std::size_t>(msg_bits) + phy::kConvTailBits;
      if (region_bits < 2 * steps) continue;  // infeasible rate
      ++res.attempts;
      bits = sf.coding == phy::PdcchCoding::kPolar
                 ? nr::polar_decode(span, static_cast<std::size_t>(msg_bits))
                 : phy::conv_decode(span, static_cast<std::size_t>(msg_bits));
    } else {
      if (phy::repetitions_that_fit(msg_bits, al) == 0) continue;
      ++res.attempts;
      bits = majority_decode(sf, start, al, msg_bits);
    }
    auto dci = phy::decode_dci(bits, format, cell_.n_prbs());
    if (!dci.has_value()) {
      ++res.failures;
      continue;
    }
    if (!region_agrees(sf, start, al, bits)) {
      ++res.failures;
      continue;
    }
    res.dci = *dci;
    break;  // this candidate is consumed
  }
  return res;
}

BlindDecoder::CandidateResult BlindDecoder::try_candidate(
    const phy::PdcchSubframe& sf, int al, int start) {
  // Extract the candidate span once: it is both the Viterbi input and the
  // memo key.
  const auto region_bits = static_cast<std::size_t>(al) * phy::kBitsPerCce;
  const auto base = static_cast<std::size_t>(start) * phy::kBitsPerCce;
  util::BitVec span;
  for (std::size_t i = 0; i < region_bits; ++i) {
    span.push_bit(sf.bits.bit(base + i));
  }

  const auto ai = static_cast<std::size_t>(al_index(al));
  const auto pos = static_cast<std::size_t>(start / al);
  MemoEntry& entry = memo_[ai][pos];
  if (entry.valid && entry.coding == sf.coding && entry.span == span) {
    CandidateResult res = entry.result;
    res.memo_hit = true;
    return res;
  }
  CandidateResult res = run_formats(sf, al, start, span);
  entry.valid = true;
  entry.coding = sf.coding;
  entry.span = std::move(span);
  entry.result = res;
  return res;
}

std::uint64_t BlindDecoder::decode_block(const phy::PdcchSubframe& sf, int al,
                                         const int* starts,
                                         const util::BitVec* spans,
                                         const std::size_t* miss,
                                         std::size_t n_miss,
                                         CandidateResult* out) {
  const auto region_bits = static_cast<std::size_t>(al) * phy::kBitsPerCce;
  const auto ai = static_cast<std::size_t>(al_index(al));
  int n_formats = 0;
  const phy::DciFormat* formats = format_list(cell_, &n_formats);
  std::uint64_t batches = 0;
  if (sf.coding != phy::PdcchCoding::kRepetition) {
    // Per-format waves: every still-undecided missing candidate decodes
    // format f's shape in one lockstep Viterbi batch. A candidate that
    // validates drops out of the remaining waves, exactly like the scalar
    // format loop's break.
    //
    // Every wave rate-matches the same span, so scan each span exactly
    // once into vote prefix sums: each format's log-likelihoods then cost
    // one subtraction per mother bit. Thread-local storage — blocks on
    // different pool threads get their own.
    const std::size_t pre_stride = region_bits + 1;
    thread_local std::vector<std::int32_t> prefixes;
    if (prefixes.size() < n_miss * pre_stride) {
      prefixes.resize(n_miss * pre_stride);
    }
    for (std::size_t m = 0; m < n_miss; ++m) {
      const util::BitVec& span = spans[miss[m]];
      std::int32_t* pre = prefixes.data() + m * pre_stride;
      pre[0] = 0;
      for (std::size_t b = 0; b < region_bits; ++b) {
        pre[b + 1] = pre[b] + (span.bit(b) ? 1 : -1);
      }
    }
    std::array<bool, phy::kMaxDecodeLanes> done{};
    for (int f = 0; f < n_formats; ++f) {
      const auto format = formats[f];
      const int msg_bits = phy::dci_payload_bits(format) + 16;
      const std::size_t steps =
          static_cast<std::size_t>(msg_bits) + phy::kConvTailBits;
      if (region_bits < 2 * steps) continue;  // infeasible rate, no attempt

      // The acceptance test downstream is region_agrees(): re-encoded
      // matches >= 0.85 * region_bits. The final Viterbi metric M and the
      // match count are linked exactly (matches = (M + T) / 2), so the
      // threshold doubles as the per-lane early-abort floor and replaces
      // the re-encode pass entirely.
      const std::int32_t thr =
          2 * min_passing_matches(0.85, region_bits) -
          static_cast<std::int32_t>(region_bits);

      std::array<phy::BatchDecodeJob, phy::kMaxDecodeLanes> jobs;
      std::array<std::size_t, phy::kMaxDecodeLanes> lane_cand{};
      int n_lanes = 0;
      for (std::size_t m = 0; m < n_miss; ++m) {
        if (done[m]) continue;
        jobs[static_cast<std::size_t>(n_lanes)] = {
            &spans[miss[m]], prefixes.data() + m * pre_stride, thr};
        lane_cand[static_cast<std::size_t>(n_lanes)] = m;
        ++n_lanes;
      }
      if (n_lanes == 0) break;

      std::array<phy::BatchDecodeResult, phy::kMaxDecodeLanes> res;
      if (sf.coding == phy::PdcchCoding::kPolar) {
        nr::polar_decode_batch(jobs.data(), n_lanes,
                               static_cast<std::size_t>(msg_bits), res.data());
      } else {
        phy::conv_decode_batch(jobs.data(), n_lanes,
                               static_cast<std::size_t>(msg_bits), res.data());
      }
      ++batches;

      for (int k = 0; k < n_lanes; ++k) {
        const std::size_t m = lane_cand[static_cast<std::size_t>(k)];
        const std::size_t i = miss[m];
        CandidateResult& r = out[i];
        ++r.attempts;
        const phy::BatchDecodeResult& d = res[static_cast<std::size_t>(k)];
        if (d.aborted) {
          ++r.failures;
          ++r.early_aborts;
          continue;
        }
        if (d.metric < thr) {  // == region_agrees() false, without re-encode
          ++r.failures;
          continue;
        }
        if (!phy::dci_crc_screen(d.decoded, format)) {
          ++r.failures;
          ++r.screen_rejects;
          continue;
        }
        auto dci = phy::decode_dci(d.decoded, format, cell_.n_prbs());
        if (!dci.has_value()) {
          ++r.failures;
          continue;
        }
        r.dci = *dci;
        done[m] = true;
      }
    }
  } else {
    // Repetition cells: per-candidate majority vote with the CRC-first
    // screen ahead of the field parse.
    for (std::size_t m = 0; m < n_miss; ++m) {
      const std::size_t i = miss[m];
      CandidateResult& r = out[i];
      for (int f = 0; f < n_formats; ++f) {
        const auto format = formats[f];
        const int msg_bits = phy::dci_payload_bits(format) + 16;
        if (phy::repetitions_that_fit(msg_bits, al) == 0) continue;
        ++r.attempts;
        const util::BitVec bits = majority_decode(sf, starts[i], al, msg_bits);
        if (!phy::dci_crc_screen(bits, format)) {
          ++r.failures;
          ++r.screen_rejects;
          continue;
        }
        auto dci = phy::decode_dci(bits, format, cell_.n_prbs());
        if (!dci.has_value()) {
          ++r.failures;
          continue;
        }
        if (!region_agrees(sf, starts[i], al, bits)) {
          ++r.failures;
          continue;
        }
        r.dci = *dci;
        break;
      }
    }
  }

  // Memo store, exactly as the scalar path would have recorded each
  // candidate (memo_hit stays false inside the stored result).
  for (std::size_t m = 0; m < n_miss; ++m) {
    const std::size_t i = miss[m];
    MemoEntry& entry = memo_[ai][static_cast<std::size_t>(starts[i] / al)];
    entry.valid = true;
    entry.coding = sf.coding;
    entry.span = spans[i];
    entry.result = out[i];
  }
  return batches;
}

DecodeRun BlindDecoder::decode_compute(const phy::PdcchSubframe& sf) {
  PBECC_PROF_SCOPE("blind_decode");
  DecodeRun run;
  run.sf_index = sf.sf_index;
  run.tick = sf.tick;
  run.delta.subframes = 1;
  std::vector<bool> claimed(static_cast<std::size_t>(sf.n_cces), false);

  // Largest aggregation level first: a message placed at AL4 would also
  // pass the CRC at the AL2/AL1 candidates nested inside it (its
  // repetitions are self-similar), so once a candidate validates we claim
  // its CCEs and skip anything overlapping them. Positions within one AL
  // are disjoint, so they decode independently (in parallel) and the
  // position-ascending merge below reproduces the serial claim order.
  //
  // Candidate enumeration per RAT mirrors the encoder exactly: every
  // AL-aligned start for LTE, the cell's 38.213 search-space candidate
  // list for NR (which also adds the AL16 rung). NR candidate starts are
  // AL-aligned too, so the memo's start/al position indexing and the
  // claimed-CCE pruning carry over unchanged.
  const bool is_nr = cell_.rat == phy::Rat::kNr;
  const int al_ladder_lte[] = {8, 4, 2, 1};
  const int al_ladder_nr[] = {16, 8, 4, 2, 1};
  const int* ladder = is_nr ? al_ladder_nr : al_ladder_lte;
  const int ladder_len = is_nr ? 5 : 4;
  for (int li = 0; li < ladder_len; ++li) {
    const int al = ladder[li];
    std::vector<int> all_starts;
    if (is_nr) {
      all_starts = nr::candidate_starts(
          sf.n_cces, al, cell_.search_space.candidates_for(al));
    } else {
      for (int start = 0; start + al <= sf.n_cces; start += al) {
        all_starts.push_back(start);
      }
    }
    std::vector<int> starts;
    for (int start : all_starts) {
      bool skip = false;
      for (int c = start; c < start + al; ++c) {
        // Claimed by an already-decoded message, or carrying no transmit
        // energy (real monitors sense per-CCE energy before decoding, so
        // a candidate spanning silent CCEs is never attempted).
        if (claimed[static_cast<std::size_t>(c)] ||
            !sf.cce_used[static_cast<std::size_t>(c)]) {
          skip = true;
          break;
        }
      }
      if (!skip) starts.push_back(start);
    }
    if (starts.empty()) continue;

    const auto ai = static_cast<std::size_t>(al_index(al));
    const auto n_positions = static_cast<std::size_t>(sf.n_cces / al);
    if (memo_[ai].size() < n_positions) memo_[ai].resize(n_positions);

    std::vector<CandidateResult> results(starts.size());
    const auto lanes = static_cast<std::size_t>(decode_lanes());
    if (lanes > 1) {
      // Lockstep path. Extract every span and probe the memo up front
      // (cheap, serial), then pack only the misses into lane-sized blocks:
      // steady-state subframes answer most candidates from the memo, and
      // interleaving hits with misses would run mostly-empty batches. The
      // block partition is a pure function of the miss list, so results
      // and counters are independent of the thread count the blocks then
      // fan out on.
      const auto region_bits = static_cast<std::size_t>(al) * phy::kBitsPerCce;
      thread_local std::vector<util::BitVec> spans;
      if (spans.size() < starts.size()) spans.resize(starts.size());
      std::vector<std::size_t> misses;
      misses.reserve(starts.size());
      for (std::size_t i = 0; i < starts.size(); ++i) {
        util::BitVec& span = spans[i];
        span.clear();
        span.reserve(region_bits);
        const auto base =
            static_cast<std::size_t>(starts[i]) * phy::kBitsPerCce;
        for (std::size_t b = 0; b < region_bits; ++b) {
          span.push_bit(sf.bits.bit(base + b));
        }
        MemoEntry& entry = memo_[ai][static_cast<std::size_t>(starts[i] / al)];
        if (entry.valid && entry.coding == sf.coding && entry.span == span) {
          results[i] = entry.result;
          results[i].memo_hit = true;
        } else {
          misses.push_back(i);
        }
      }
      if (!misses.empty()) {
        const std::size_t n_blocks = (misses.size() + lanes - 1) / lanes;
        std::vector<std::uint64_t> block_batches(n_blocks, 0);
        par::parallel_for(n_blocks, [&](std::size_t b) {
          const std::size_t lo = b * lanes;
          const std::size_t n = std::min(lanes, misses.size() - lo);
          block_batches[b] = decode_block(sf, al, starts.data(), spans.data(),
                                          misses.data() + lo, n,
                                          results.data());
        });
        for (const std::uint64_t n : block_batches) {
          run.delta.lane_batches += n;
        }
      }
    } else {
      par::parallel_for(starts.size(), [&](std::size_t i) {
        results[i] = try_candidate(sf, al, starts[i]);
      });
    }

    for (std::size_t i = 0; i < starts.size(); ++i) {
      const CandidateResult& r = results[i];
      run.delta.candidates_tried += static_cast<std::uint64_t>(r.attempts);
      run.delta.candidates_by_al[ai] += static_cast<std::uint64_t>(r.attempts);
      run.delta.crc_failures += static_cast<std::uint64_t>(r.failures);
      run.delta.crc_failures_by_al[ai] += static_cast<std::uint64_t>(r.failures);
      run.delta.early_aborts += static_cast<std::uint64_t>(r.early_aborts);
      run.delta.screen_rejects += static_cast<std::uint64_t>(r.screen_rejects);
      if (r.memo_hit) ++run.delta.memo_hits;
      if (r.dci.has_value()) {
        ++run.delta.messages_decoded;
        ++run.delta.decoded_by_al[ai];
        run.found.push_back({*r.dci, al});
        for (int c = starts[i]; c < starts[i] + al; ++c) {
          claimed[static_cast<std::size_t>(c)] = true;
        }
      }
    }
  }
  return run;
}

std::vector<phy::Dci> BlindDecoder::decode_apply(const DecodeRun& run) {
  const DecodeStats& d = run.delta;
  stats_.candidates_tried += d.candidates_tried;
  stats_.crc_failures += d.crc_failures;
  stats_.messages_decoded += d.messages_decoded;
  stats_.subframes += d.subframes;
  stats_.memo_hits += d.memo_hits;
  stats_.lane_batches += d.lane_batches;
  stats_.early_aborts += d.early_aborts;
  stats_.screen_rejects += d.screen_rejects;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kNumAlLanes); ++i) {
    stats_.candidates_by_al[i] += d.candidates_by_al[i];
    stats_.crc_failures_by_al[i] += d.crc_failures_by_al[i];
    stats_.decoded_by_al[i] += d.decoded_by_al[i];
    obs_.candidates[i]->inc(d.candidates_by_al[i]);
    obs_.crc_failures[i]->inc(d.crc_failures_by_al[i]);
  }
  obs_.decoded->inc(d.messages_decoded);
  obs_.subframes->inc(d.subframes);
  obs_.memo_hits->inc(d.memo_hits);
  obs_.lane_batches->inc(d.lane_batches);
  obs_.early_aborts->inc(d.early_aborts);
  obs_.screen_rejects->inc(d.screen_rejects);

  std::vector<phy::Dci> found;
  found.reserve(run.found.size());
  for (const DecodeRun::Found& f : run.found) {
    obs::emit(obs::EventKind::kDciDecoded, run.sf_index * run.tick,
              static_cast<std::uint16_t>(cell_.id), f.dci.rnti, f.dci.n_prbs,
              f.dci.mcs.bits_per_prb(), f.al);
    found.push_back(f.dci);
  }
  return found;
}

std::vector<phy::Dci> BlindDecoder::decode(const phy::PdcchSubframe& sf) {
  return decode_apply(decode_compute(sf));
}

}  // namespace pbecc::decoder
