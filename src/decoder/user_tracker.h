// Per-cell user activity tracking from decoded control messages
// (paper §4.1, §4.2.1, Fig 5, Fig 7).
//
// From each subframe's DCI list the tracker maintains, over a sliding
// window, per-RNTI activity records: how many subframes the user was
// scheduled (Ta) and its average allocated PRBs (Pave). It answers the
// three questions PBE-CC's capacity estimator asks:
//   * N   — how many *data* users share the cell (control-plane users
//           filtered with the paper's Ta > 1, Pave > 4 thresholds);
//   * Pa  — PRBs allocated to *me* this subframe;
//   * Pidle — PRBs allocated to nobody this subframe (every identified
//           user counts here, filtered or not — paper end of §4.2.1).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "phy/cell_config.h"
#include "phy/dci.h"
#include "util/time.h"

namespace pbecc::decoder {

struct UserTrackerConfig {
  // Sliding window over which activity statistics are kept.
  util::Duration window = 40 * util::kMillisecond;
  // Control-traffic filter thresholds (paper: Ta > 1 subframe AND
  // Pave > 4 PRBs).
  int min_active_subframes = 2;   // Ta > 1
  double min_average_prbs = 4.0;  // Pave > 4 (strict)

  bool operator==(const UserTrackerConfig&) const = default;
};

struct UserActivity {
  phy::Rnti rnti = 0;
  int active_subframes = 0;  // Ta within the window
  double average_prbs = 0;   // Pave within the window
  std::int64_t last_seen_sf = 0;
};

class UserTracker {
 public:
  // `tick` is the duration of one scheduling tick on the tracked cell's
  // clock (1 ms for LTE, the slot length for NR): the sliding window is
  // time-based, so an NR cell at 120 kHz keeps 8x the tick count of an LTE
  // cell for the same window. Ta thresholds count ticks.
  UserTracker(int cell_prbs, UserTrackerConfig cfg = {},
              util::Duration tick = util::kSubframe)
      : cell_prbs_(cell_prbs), cfg_(cfg), tick_(tick > 0 ? tick : util::kSubframe) {}

  struct SubframeSummary {
    int own_prbs = 0;          // Pa for `own_rnti`
    double own_bits_per_prb = 0;  // Rw from our own DCI (0 if unscheduled)
    int allocated_prbs = 0;    // sum over all identified users
    int idle_prbs = 0;         // Pcell - allocated (floored at 0)
    int raw_active_users = 0;  // users seen in window, unfiltered
    int data_users = 0;        // N after the control-traffic filter
  };

  // Ingest one subframe's downlink DCIs; returns this subframe's summary.
  SubframeSummary on_subframe(std::int64_t sf_index,
                              const std::vector<phy::Dci>& messages,
                              phy::Rnti own_rnti);

  // Number of data users after filtering, over the current window.
  int data_users(phy::Rnti own_rnti) const;
  int raw_users() const;

  // Snapshot of all per-user records (Fig 7 statistics).
  std::vector<UserActivity> activity() const;

  void set_window(util::Duration w) { cfg_.window = w; }
  // Carrier reconfiguration changed the cell's PRB count; idle-PRB
  // computation uses the new total from the next subframe on.
  void set_cell_prbs(int cell_prbs) { cell_prbs_ = cell_prbs; }
  int cell_prbs() const { return cell_prbs_; }
  // History length (bounded by window subframes × messages per subframe);
  // exposed for soak bound checks.
  std::size_t history_size() const { return history_.size(); }
  std::size_t tracked_users() const { return users_.size(); }

 private:
  void expire(std::int64_t current_sf);
  bool passes_filter(const UserActivity& a, phy::Rnti own_rnti,
                     phy::Rnti candidate) const;

  struct Observation {
    std::int64_t sf;
    phy::Rnti rnti;
    int prbs;
  };

  int cell_prbs_;
  UserTrackerConfig cfg_;
  util::Duration tick_ = util::kSubframe;
  std::deque<Observation> history_;
  std::map<phy::Rnti, UserActivity> users_;
  // Deep-check pacing: the full O(users x history) re-derivation only runs
  // every few hundred subframes so -DPBECC_CHECK soaks stay tractable.
  std::uint64_t deep_tick_ = 0;
};

}  // namespace pbecc::decoder
