// The interface every congestion-control algorithm in this repository
// implements — PBE-CC's sender as well as the seven baselines the paper
// compares against. The flow driver (net::Flow) feeds it send/ack/loss
// events and obeys its pacing rate and congestion window.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "net/packet.h"
#include "util/rate.h"
#include "util/time.h"

namespace pbecc::net {

// Everything an algorithm may want to know about one acknowledgement.
struct AckSample {
  util::Time now = 0;
  std::uint64_t seq = 0;
  std::int32_t acked_bytes = 0;

  util::Duration rtt = 0;            // ack receipt - data send
  util::Duration one_way_delay = 0;  // data receipt - data send

  // BBR-style delivery rate sample (bytes acked per unit time between the
  // delivered-counter snapshots), in bits per second. 0 when undefined.
  util::RateBps delivery_rate = 0;
  bool is_app_limited = false;

  std::uint64_t total_delivered_bytes = 0;  // sender cumulative
  std::uint64_t bytes_in_flight = 0;

  // PBE-CC explicit feedback, forwarded verbatim from the ACK.
  std::uint32_t pbe_rate_interval_us = 0;
  bool pbe_internet_bottleneck = false;
  std::uint8_t pbe_confidence = 255;
};

struct LossSample {
  util::Time now = 0;
  std::uint64_t seq = 0;
  std::int32_t lost_bytes = 0;
  std::uint64_t bytes_in_flight = 0;
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void on_packet_sent(util::Time /*now*/, const Packet& /*pkt*/,
                              std::uint64_t /*bytes_in_flight*/) {}
  virtual void on_ack(const AckSample& sample) = 0;
  virtual void on_loss(const LossSample& /*sample*/) {}

  // Bits per second the flow driver should pace at. Must be > 0.
  virtual util::RateBps pacing_rate(util::Time now) const = 0;

  // Congestion window in bytes; in-flight data never exceeds this.
  virtual double cwnd_bytes(util::Time /*now*/) const {
    return std::numeric_limits<double>::max();
  }

  virtual std::string name() const = 0;
};

// Fixed-rate (constant-bit-rate) "controller": used for the paper's
// controlled competitors and fixed-offered-load drill-downs (Figs 2, 8, 18).
class FixedRateController final : public CongestionController {
 public:
  explicit FixedRateController(util::RateBps rate) : rate_(rate) {}

  void on_ack(const AckSample&) override {}
  util::RateBps pacing_rate(util::Time) const override { return rate_; }
  void set_rate(util::RateBps rate) { rate_ = rate; }
  std::string name() const override { return "fixed"; }

 private:
  util::RateBps rate_;
};

}  // namespace pbecc::net
