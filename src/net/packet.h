// Transport-layer packet and acknowledgement records.
//
// The prototype in the paper is UDP-based with its own ACK format: the
// mobile client echoes timing information and piggybacks PBE-CC's
// physical-layer feedback — a 32-bit word describing the estimated
// capacity as an inter-packet interval, plus one bit flagging the current
// bottleneck state (paper §5). We carry those fields verbatim.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace pbecc::net {

using FlowId = std::uint32_t;

inline constexpr int kDefaultMss = 1500;  // bytes, as in the paper's feedback definition

struct Packet {
  FlowId flow = 0;
  std::uint64_t seq = 0;   // per-flow packet number, monotonically increasing
  std::int32_t bytes = kDefaultMss;

  util::Time sent_time = 0;        // stamped by the sender
  util::Time bs_enqueue_time = 0;  // when it entered the base-station queue
  util::Time recv_time = 0;        // when the mobile delivered it upward

  // Sender-side delivery bookkeeping for BBR-style rate samples
  // (delivered counter state at the moment this packet left).
  std::uint64_t delivered_at_send = 0;
  util::Time delivered_time_at_send = 0;
};

struct Ack {
  FlowId flow = 0;
  std::uint64_t seq = 0;           // the packet being acknowledged
  std::int32_t acked_bytes = 0;
  util::Time data_sent_time = 0;   // echo of Packet::sent_time
  util::Time data_recv_time = 0;   // when the client received the data

  std::uint64_t delivered_at_send = 0;          // echoes of sender state
  util::Time delivered_time_at_send = 0;

  // --- PBE-CC feedback fields ---
  // Interval in microseconds between two 1500-byte packets that would
  // exactly match the estimated bottleneck capacity; 0 = no estimate.
  std::uint32_t pbe_rate_interval_us = 0;
  // One bit: true when the client believes the bottleneck is in the
  // Internet (switch the sender to cellular-tailored BBR).
  bool pbe_internet_bottleneck = false;
  // Client confidence in the feedback word, 0..255 (255 = fully trusted).
  // Combines the monitor's decode-success rate with estimator freshness;
  // drives the sender's PRECISE/DEGRADED/FALLBACK machine. Left at 255 by
  // receivers without a PBE client so non-PBE flows are unaffected.
  std::uint8_t pbe_confidence = 255;
};

}  // namespace pbecc::net
