#include "net/link.h"

#include <algorithm>
#include <utility>

namespace pbecc::net {

DelayLink::DelayLink(EventLoop& loop, util::Duration delay, PacketHandler sink,
                     util::Duration max_jitter, std::uint64_t seed)
    : loop_(loop), delay_(delay), max_jitter_(max_jitter),
      sink_(std::move(sink)), rng_(seed) {}

void DelayLink::send(Packet pkt) {
  util::Duration jitter = 0;
  if (max_jitter_ > 0) {
    jitter = static_cast<util::Duration>(rng_.uniform() * static_cast<double>(max_jitter_));
  }
  util::Time deliver_at = loop_.now() + delay_ + jitter;
  // FIFO: never deliver before a previously sent packet.
  deliver_at = std::max(deliver_at, last_delivery_);
  last_delivery_ = deliver_at;
  loop_.schedule_at(deliver_at, [this, pkt = std::move(pkt)]() mutable {
    sink_(std::move(pkt));
  });
}

BottleneckLink::BottleneckLink(EventLoop& loop, Config cfg, PacketHandler sink)
    : loop_(loop), cfg_(cfg), sink_(std::move(sink)) {}

void BottleneckLink::send(Packet pkt) {
  if (cfg_.rate <= 0) {
    // Unlimited link: pure propagation delay.
    loop_.schedule_in(cfg_.propagation_delay, [this, pkt = std::move(pkt)]() mutable {
      sink_(std::move(pkt));
    });
    return;
  }
  if (queued_bytes_ + pkt.bytes > cfg_.buffer_bytes) {
    ++drops_;  // droptail
    return;
  }
  queue_.push_back(std::move(pkt));
  queued_bytes_ += queue_.back().bytes;
  if (!transmitting_) transmit_head();
}

void BottleneckLink::transmit_head() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= pkt.bytes;
  const util::Duration ser = util::transmission_delay(pkt.bytes, cfg_.rate);
  loop_.schedule_in(ser, [this, pkt = std::move(pkt)]() mutable {
    loop_.schedule_in(cfg_.propagation_delay, [this, pkt = std::move(pkt)]() mutable {
      sink_(std::move(pkt));
    });
    transmit_head();
  });
}

}  // namespace pbecc::net
