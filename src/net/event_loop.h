// Discrete-event simulation core.
//
// A binary heap of (time, sequence, callback). Everything in a simulation
// domain — subframe ticks, packet arrivals, pacing timers — runs off one
// clock, so cellular and transport events interleave correctly at
// microsecond granularity. Ties break by insertion order (FIFO by `seq`),
// which keeps runs deterministic.
//
// Sharded scenarios run one EventLoop per cell-cluster domain and step
// them in lockstep between subframe-aligned barriers (DESIGN.md §15), so
// `run_until` has an explicit barrier contract:
//
//  1. run_until(end) executes every pending event with time <= end —
//     including events scheduled exactly at `end` by a callback that
//     itself runs at `end` during this call. None are skipped across the
//     barrier.
//  2. On return, now() == end and no pending event has time <= end.
//  3. `seq` is monotonic over the loop's lifetime and is never reset by
//     run_until. Events scheduled at time `end` *after* run_until(end)
//     returns (e.g. by a shard barrier applying cross-shard messages) run
//     on the next run_until(end2 >= end), at time `end`, in FIFO order
//     relative to each other and before any strictly later event.
//  4. run_until(end) with end < now() is a no-op: the clock never moves
//     backward, and no pending event can have time < now().
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/time.h"

namespace pbecc::net {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  util::Time now() const { return now_; }

  // Run `cb` at absolute time `t` (>= now).
  void schedule_at(util::Time t, Callback cb);
  // Run `cb` after `d` microseconds.
  void schedule_in(util::Duration d, Callback cb) { schedule_at(now_ + d, std::move(cb)); }

  // Execute the earliest pending event. Returns false if none remain.
  bool run_one();

  // Drain events through `end` per the barrier contract documented above;
  // leaves now() == end (so periodic processes can resume cleanly).
  void run_until(util::Time end);

  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    util::Time time;
    std::uint64_t seq;
    Callback cb;
  };
  // Max-heap comparator inverted so the *earliest* (time, seq) surfaces.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  util::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  // Explicit heap (std::push_heap/pop_heap) rather than std::priority_queue
  // so the popped element can be moved out legally — priority_queue::top()
  // only exposes a const reference.
  std::vector<Event> heap_;
};

}  // namespace pbecc::net
