// Discrete-event simulation core.
//
// A single binary heap of (time, sequence, callback). Everything in the
// system — subframe ticks, packet arrivals, pacing timers — runs off this
// one clock, so cellular and transport events interleave correctly at
// microsecond granularity. Ties break by insertion order (FIFO), which
// keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace pbecc::net {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  util::Time now() const { return now_; }

  // Run `cb` at absolute time `t` (>= now).
  void schedule_at(util::Time t, Callback cb);
  // Run `cb` after `d` microseconds.
  void schedule_in(util::Duration d, Callback cb) { schedule_at(now_ + d, std::move(cb)); }

  // Execute the earliest pending event. Returns false if none remain.
  bool run_one();

  // Run events until the queue is empty or the clock would pass `end`;
  // leaves now() == end (so periodic processes can resume cleanly).
  void run_until(util::Time end);

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    util::Time time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  util::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace pbecc::net
