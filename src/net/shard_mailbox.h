// Cross-shard message exchange with a canonical merge order (DESIGN.md §15).
//
// Each shard domain owns one *lane* per mailbox. During the parallel phase
// of a barrier interval, a domain posts only to its own lane (lanes are
// disjoint, so no locking is needed). At the serial barrier the caller
// drains the mailbox: all lanes are merged into a single list ordered by
// (time, source, seq) and applied in that order.
//
// Determinism argument: `time` is the posting domain's sim-clock stamp,
// `source` is the posting domain's index, and `seq` is a per-source counter
// stamped at post() — all three are functions of the domain's own event
// sequence, which is independent of how many worker threads stepped the
// domains. The merged order is therefore byte-identical for any shard
// (worker) count. Per-source seq counters persist across drains, so FIFO
// order within a source is global across barriers too.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "util/time.h"

namespace pbecc::net {

template <typename Payload>
class ShardMailbox {
 public:
  struct Message {
    util::Time time = 0;
    std::uint32_t source = 0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  ShardMailbox() = default;
  explicit ShardMailbox(std::size_t sources) { reset(sources); }

  void reset(std::size_t sources) {
    lanes_.assign(sources, {});
    next_seq_.assign(sources, 0);
  }

  std::size_t sources() const { return lanes_.size(); }

  // Parallel-phase API: domain `source` posts to its own lane. Safe to call
  // concurrently from distinct sources; never call for the same source from
  // two threads.
  void post(std::uint32_t source, util::Time time, Payload payload) {
    lanes_[source].push_back(
        Message{time, source, next_seq_[source]++, std::move(payload)});
  }

  bool empty() const {
    for (const auto& lane : lanes_) {
      if (!lane.empty()) return false;
    }
    return true;
  }

  // Serial-barrier API: merge every lane into (time, source, seq) order and
  // clear the lanes. Seq counters are NOT reset.
  std::vector<Message> drain() {
    std::vector<Message> out;
    std::size_t total = 0;
    for (const auto& lane : lanes_) total += lane.size();
    out.reserve(total);
    for (auto& lane : lanes_) {
      for (auto& m : lane) out.push_back(std::move(m));
      lane.clear();
    }
    std::sort(out.begin(), out.end(), [](const Message& a, const Message& b) {
      return std::tie(a.time, a.source, a.seq) <
             std::tie(b.time, b.source, b.seq);
    });
    return out;
  }

 private:
  std::vector<std::vector<Message>> lanes_;
  std::vector<std::uint64_t> next_seq_;
};

}  // namespace pbecc::net
