#include "net/flow.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"

namespace pbecc::net {

FlowSender::FlowSender(EventLoop& loop, Config cfg,
                       std::unique_ptr<CongestionController> cc,
                       PacketHandler egress)
    : loop_(loop), cfg_(cfg), cc_(std::move(cc)), egress_(std::move(egress)) {
  next_send_time_ = cfg_.start_time;
  delivered_time_ = cfg_.start_time;
  last_ack_time_ = cfg_.start_time;
  loop_.schedule_at(cfg_.start_time, [this] { try_send(); });
}

void FlowSender::wake() {
  if (wake_pending_) return;
  wake_pending_ = true;
  const util::Time at = std::max(next_send_time_, loop_.now());
  loop_.schedule_at(at, [this] {
    wake_pending_ = false;
    try_send();
  });
}

void FlowSender::try_send() {
  const util::Time now = loop_.now();
  if (now >= cfg_.stop_time) return;
  if (now < cfg_.start_time) return;

  const double cwnd = cc_->cwnd_bytes(now);
  while (loop_.now() >= next_send_time_ &&
         static_cast<double>(bytes_in_flight_ + static_cast<std::uint64_t>(cfg_.mss)) <= cwnd) {
    send_packet();
    const util::RateBps rate = std::max(cc_->pacing_rate(loop_.now()), 1000.0);
    next_send_time_ = std::max(next_send_time_, loop_.now()) +
                      util::transmission_delay(cfg_.mss, rate);
    if (loop_.now() >= cfg_.stop_time) return;
  }
  // If pacing (not cwnd) is the limiter, arm a timer for the next slot;
  // cwnd-limited flows resume from on_ack().
  if (static_cast<double>(bytes_in_flight_ + static_cast<std::uint64_t>(cfg_.mss)) <= cwnd) {
    wake();
  }
  arm_watchdog();
}

void FlowSender::send_packet() {
  Packet pkt;
  pkt.flow = cfg_.id;
  pkt.seq = next_seq_++;
  pkt.bytes = cfg_.mss;
  pkt.sent_time = loop_.now();
  pkt.delivered_at_send = delivered_bytes_;
  pkt.delivered_time_at_send = delivered_time_;

  in_flight_.emplace(pkt.seq, InFlight{pkt.bytes, pkt.sent_time});
  bytes_in_flight_ += static_cast<std::uint64_t>(pkt.bytes);
  total_sent_bytes_ += static_cast<std::uint64_t>(pkt.bytes);

  cc_->on_packet_sent(loop_.now(), pkt, bytes_in_flight_);
  if constexpr (obs::kCompiled) {
    static obs::Counter& sent = obs::counter("net.packets_sent");
    sent.inc();
  }
  egress_(std::move(pkt));
}

void FlowSender::on_ack(const Ack& ack) {
  const util::Time now = loop_.now();
  last_ack_time_ = now;

  const auto it = in_flight_.find(ack.seq);
  if (it == in_flight_.end()) return;  // already deemed lost, or duplicate
  bytes_in_flight_ -= static_cast<std::uint64_t>(it->second.bytes);
  in_flight_.erase(it);

  delivered_bytes_ += static_cast<std::uint64_t>(ack.acked_bytes);
  delivered_time_ = now;

  AckSample s;
  s.now = now;
  s.seq = ack.seq;
  s.acked_bytes = ack.acked_bytes;
  s.rtt = now - ack.data_sent_time;
  s.one_way_delay = ack.data_recv_time - ack.data_sent_time;
  s.total_delivered_bytes = delivered_bytes_;
  s.bytes_in_flight = bytes_in_flight_;
  s.pbe_rate_interval_us = ack.pbe_rate_interval_us;
  s.pbe_internet_bottleneck = ack.pbe_internet_bottleneck;
  s.pbe_confidence = ack.pbe_confidence;

  // BBR-style delivery rate: bytes delivered since this packet left,
  // divided by the elapsed delivery-clock time.
  const util::Duration interval = now - ack.delivered_time_at_send;
  if (interval > 0) {
    const auto bytes = static_cast<double>(delivered_bytes_ - ack.delivered_at_send);
    s.delivery_rate = bytes * util::kBitsPerByte /
                      util::to_seconds(interval);
  }

  if (srtt_ == 0) {
    srtt_ = s.rtt;
  } else {
    srtt_ = (7 * srtt_ + s.rtt) / 8;
  }

  if constexpr (obs::kCompiled) {
    static obs::Counter& acks = obs::counter("net.acks_received");
    acks.inc();
  }
  cc_->on_ack(s);
  detect_threshold_losses(ack.seq);
  try_send();
}

void FlowSender::detect_threshold_losses(std::uint64_t acked_seq) {
  if (acked_seq < cfg_.reorder_threshold) return;
  const std::uint64_t lost_below = acked_seq - cfg_.reorder_threshold;
  while (!in_flight_.empty() && in_flight_.begin()->first < lost_below) {
    const auto [seq, meta] = *in_flight_.begin();
    in_flight_.erase(in_flight_.begin());
    bytes_in_flight_ -= static_cast<std::uint64_t>(meta.bytes);
    ++lost_packets_;
    if constexpr (obs::kCompiled) {
      static obs::Counter& losses = obs::counter("net.packets_lost");
      losses.inc();
      obs::emit(obs::EventKind::kPacketLoss, loop_.now(), 0,
                static_cast<std::uint32_t>(cfg_.id),
                static_cast<std::int64_t>(seq), meta.bytes);
    }
    LossSample ls;
    ls.now = loop_.now();
    ls.seq = seq;
    ls.lost_bytes = meta.bytes;
    ls.bytes_in_flight = bytes_in_flight_;
    cc_->on_loss(ls);
  }
}

void FlowSender::arm_watchdog() {
  if (watchdog_armed_) return;
  watchdog_armed_ = true;
  loop_.schedule_in(100 * util::kMillisecond, [this] {
    watchdog_armed_ = false;
    const util::Time now = loop_.now();
    if (now >= cfg_.stop_time) return;
    const util::Duration rto =
        std::max<util::Duration>(cfg_.min_rto, 4 * srtt_);
    if (bytes_in_flight_ > 0 && now - last_ack_time_ > rto) {
      // Retransmission timeout: everything outstanding is presumed lost
      // (e.g. an entire window tail-dropped at the Internet bottleneck).
      std::uint64_t lost = 0;
      for (const auto& [seq, meta] : in_flight_) {
        lost += static_cast<std::uint64_t>(meta.bytes);
        ++lost_packets_;
      }
      const std::uint64_t first_seq = in_flight_.begin()->first;
      in_flight_.clear();
      bytes_in_flight_ = 0;
      if constexpr (obs::kCompiled) {
        static obs::Counter& rtos = obs::counter("net.rtos_fired");
        rtos.inc();
        obs::emit(obs::EventKind::kRtoFired, now, 0,
                  static_cast<std::uint32_t>(cfg_.id), 0,
                  static_cast<double>(lost));
      }
      LossSample ls;
      ls.now = now;
      ls.seq = first_seq;
      ls.lost_bytes = static_cast<std::int32_t>(std::min<std::uint64_t>(lost, INT32_MAX));
      ls.bytes_in_flight = 0;
      cc_->on_loss(ls);
      last_ack_time_ = now;
    }
    try_send();
  });
}

FlowReceiver::FlowReceiver(EventLoop& loop, FlowId id, AckHandler ack_out)
    : loop_(loop), id_(id), ack_out_(std::move(ack_out)) {}

void FlowReceiver::on_packet(Packet pkt) {
  const util::Time now = loop_.now();
  pkt.recv_time = now;
  ++packets_received_;
  bytes_received_ += static_cast<std::uint64_t>(pkt.bytes);

  if (observer_) observer_(pkt, now);

  Ack ack;
  ack.flow = id_;
  ack.seq = pkt.seq;
  ack.acked_bytes = pkt.bytes;
  ack.data_sent_time = pkt.sent_time;
  ack.data_recv_time = now;
  ack.delivered_at_send = pkt.delivered_at_send;
  ack.delivered_time_at_send = pkt.delivered_time_at_send;
  if (feedback_) feedback_(pkt, now, ack);
  ack_out_(std::move(ack));
}

}  // namespace pbecc::net
