// Flow driver: the sender/receiver plumbing around a congestion controller.
//
// FlowSender owns sequence numbers, pacing, the congestion window, in-flight
// accounting, BBR-style delivery-rate samples, and packet-threshold + timeout
// loss detection. FlowReceiver acknowledges every delivered packet and lets
// an attached feedback source (the PBE-CC mobile client) stamp its
// physical-layer capacity feedback into each ACK, mirroring Fig 4 of the
// paper.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/congestion_controller.h"
#include "net/event_loop.h"
#include "net/link.h"
#include "net/packet.h"

namespace pbecc::net {

using AckHandler = std::function<void(Ack)>;

class FlowSender {
 public:
  struct Config {
    FlowId id = 0;
    std::int32_t mss = kDefaultMss;
    util::Time start_time = 0;
    util::Time stop_time = util::kNever;
    // Packets sent this far (in packet numbers) behind the latest ack are
    // declared lost (QUIC-style packet threshold).
    std::uint64_t reorder_threshold = 3;
    util::Duration min_rto = 500 * util::kMillisecond;
  };

  FlowSender(EventLoop& loop, Config cfg,
             std::unique_ptr<CongestionController> cc, PacketHandler egress);

  // Deliver an arriving ACK (wired up by the scenario's return path).
  void on_ack(const Ack& ack);

  CongestionController& controller() { return *cc_; }
  const CongestionController& controller() const { return *cc_; }

  std::uint64_t bytes_in_flight() const { return bytes_in_flight_; }
  std::uint64_t total_sent_bytes() const { return total_sent_bytes_; }
  std::uint64_t total_delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t total_lost_packets() const { return lost_packets_; }
  util::Duration smoothed_rtt() const { return srtt_; }
  bool stopped() const { return loop_.now() >= cfg_.stop_time; }

 private:
  void wake();
  void try_send();
  void send_packet();
  void detect_threshold_losses(std::uint64_t acked_seq);
  void arm_watchdog();

  struct InFlight {
    std::int32_t bytes;
    util::Time sent_time;
  };

  EventLoop& loop_;
  Config cfg_;
  std::unique_ptr<CongestionController> cc_;
  PacketHandler egress_;

  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t bytes_in_flight_ = 0;

  std::uint64_t delivered_bytes_ = 0;       // cumulative acked
  util::Time delivered_time_ = 0;           // time of last delivery update
  std::uint64_t total_sent_bytes_ = 0;
  std::uint64_t lost_packets_ = 0;

  util::Time next_send_time_ = 0;
  bool wake_pending_ = false;

  util::Time last_ack_time_ = 0;
  util::Duration srtt_ = 0;
  bool watchdog_armed_ = false;
};

class FlowReceiver {
 public:
  // Called for every delivered packet, before the ACK is emitted; the
  // PBE-CC client uses this to fill the feedback fields.
  using FeedbackFiller = std::function<void(const Packet&, util::Time now, Ack&)>;
  // Observer for metrics collection.
  using DeliveryObserver = std::function<void(const Packet&, util::Time now)>;

  FlowReceiver(EventLoop& loop, FlowId id, AckHandler ack_out);

  // Entry point from the last hop (the cellular stack's in-order delivery).
  void on_packet(Packet pkt);

  void set_feedback_filler(FeedbackFiller f) { feedback_ = std::move(f); }
  void set_delivery_observer(DeliveryObserver o) { observer_ = std::move(o); }

  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  EventLoop& loop_;
  FlowId id_;
  AckHandler ack_out_;
  FeedbackFiller feedback_;
  DeliveryObserver observer_;
  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace pbecc::net
