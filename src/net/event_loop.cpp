#include "net/event_loop.h"

#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace pbecc::net {

void EventLoop::schedule_at(util::Time t, Callback cb) {
  if (t < now_) throw std::logic_error("scheduling event in the past");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool EventLoop::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out
  // before pop, so copy the metadata and steal the callback.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  if constexpr (obs::kCompiled) {
    static obs::Counter& dispatched = obs::counter("net.events_dispatched");
    dispatched.inc();
  }
  {
    PBECC_PROF_SCOPE("event_dispatch");
    ev.cb();
  }
  return true;
}

void EventLoop::run_until(util::Time end) {
  while (!queue_.empty() && queue_.top().time <= end) {
    run_one();
  }
  if (now_ < end) now_ = end;
}

}  // namespace pbecc::net
