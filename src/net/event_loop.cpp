#include "net/event_loop.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace pbecc::net {

void EventLoop::schedule_at(util::Time t, Callback cb) {
  if (t < now_) throw std::logic_error("scheduling event in the past");
  heap_.push_back(Event{t, next_seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventLoop::run_one() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.time;
  if constexpr (obs::kCompiled) {
    static obs::Counter& dispatched = obs::counter("net.events_dispatched");
    dispatched.inc();
  }
  {
    PBECC_PROF_SCOPE("event_dispatch");
    ev.cb();
  }
  return true;
}

void EventLoop::run_until(util::Time end) {
  // The loop condition re-examines the heap top after every dispatch, so an
  // event scheduled exactly at `end` by a callback running at `end` is
  // picked up in this same drain (barrier contract point 1). Pending events
  // always satisfy time >= now(), so when end < now() the body never runs
  // and the clock is left untouched (point 4).
  while (!heap_.empty() && heap_.front().time <= end) {
    run_one();
  }
  if (now_ < end) now_ = end;
}

}  // namespace pbecc::net
