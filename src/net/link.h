// Wired network path elements: a droptail bottleneck queue + serialization
// stage, and a pure propagation-delay stage with optional jitter. Composed
// by sim::Scenario into "server -> Internet -> base station" paths.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/event_loop.h"
#include "net/packet.h"
#include "util/rate.h"
#include "util/rng.h"

namespace pbecc::net {

// Receives packets at the far end of a link stage.
using PacketHandler = std::function<void(Packet)>;

// Fixed propagation delay with optional uniform jitter in [0, max_jitter].
// Jitter never reorders packets (delivery time is clamped to be monotonic),
// matching FIFO queue behaviour.
class DelayLink {
 public:
  DelayLink(EventLoop& loop, util::Duration delay, PacketHandler sink,
            util::Duration max_jitter = 0, std::uint64_t seed = 1);

  void send(Packet pkt);

  util::Duration delay() const { return delay_; }

 private:
  EventLoop& loop_;
  util::Duration delay_;
  util::Duration max_jitter_;
  PacketHandler sink_;
  util::Rng rng_;
  util::Time last_delivery_ = 0;
};

// Rate-limited droptail queue: models the Internet bottleneck the paper's
// Internet-bottleneck state reacts to. Unlimited rate = pass-through.
class BottleneckLink {
 public:
  struct Config {
    util::RateBps rate = 0;               // 0 or negative = unlimited
    std::int64_t buffer_bytes = 256 * 1024;
    util::Duration propagation_delay = 0;
  };

  BottleneckLink(EventLoop& loop, Config cfg, PacketHandler sink);

  void send(Packet pkt);

  std::int64_t queued_bytes() const { return queued_bytes_; }
  std::uint64_t drops() const { return drops_; }
  void set_rate(util::RateBps rate) { cfg_.rate = rate; }
  util::RateBps rate() const { return cfg_.rate; }

 private:
  void transmit_head();

  EventLoop& loop_;
  Config cfg_;
  PacketHandler sink_;
  std::deque<Packet> queue_;
  std::int64_t queued_bytes_ = 0;
  bool transmitting_ = false;
  std::uint64_t drops_ = 0;
};

}  // namespace pbecc::net
