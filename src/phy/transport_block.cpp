#include "phy/transport_block.h"

#include <stdexcept>

namespace pbecc::phy {

double transport_block_bits(int n_prbs, const Mcs& mcs) {
  if (n_prbs < 0) throw std::invalid_argument("negative PRB count");
  return static_cast<double>(n_prbs) * mcs.bits_per_prb();
}

double transport_block_bits(const Dci& dci) {
  if (!dci.is_downlink()) throw std::invalid_argument("uplink DCI has no downlink TB");
  return transport_block_bits(dci.n_prbs, dci.mcs);
}

}  // namespace pbecc::phy
