#include "phy/convolutional.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <limits>

#include "obs/profile.h"
#include "util/arena.h"

namespace pbecc::phy {

namespace {

// 3GPP 36.212 generators, octal 133 / 171 / 165, MSB = current input bit.
constexpr std::array<std::uint32_t, 3> kGenerators = {0b1011011, 0b1111001,
                                                      0b1110101};
constexpr int kNumStates = 1 << (kConvConstraint - 1);  // 64

bool parity(std::uint32_t v) { return __builtin_popcount(v) & 1; }

// Register layout: bit6 = current input, bits5..0 = previous six inputs
// (newest at bit5). The successor state is reg >> 1.
std::uint32_t make_reg(int input_bit, std::uint32_t state) {
  return (static_cast<std::uint32_t>(input_bit) << 6) | state;
}

// kBranchOut[reg] packs the three coded output bits for register value
// reg: bit k = parity(reg & kGenerators[k]). One table lookup replaces
// three popcount-parities per trellis branch.
constexpr std::array<std::uint8_t, 2 * kNumStates> make_branch_out() {
  std::array<std::uint8_t, 2 * kNumStates> t{};
  for (std::uint32_t reg = 0; reg < 2 * kNumStates; ++reg) {
    std::uint8_t out = 0;
    for (int k = 0; k < kConvRateInv; ++k) {
      std::uint32_t v = reg & kGenerators[static_cast<std::size_t>(k)];
      std::uint32_t p = 0;
      while (v != 0) {
        p ^= v & 1u;
        v >>= 1;
      }
      out |= static_cast<std::uint8_t>(p << k);
    }
    t[reg] = out;
  }
  return t;
}
constexpr auto kBranchOut = make_branch_out();

// Reusable per-thread decoder workspace. Blind decoding runs thousands of
// candidate decodes per subframe (and, with pbecc::par, on several pool
// threads at once); per-call vector allocation dominated the original
// profile. The rate-match layout cache also lives here: a monitor sees
// only a handful of (coded_bits, target_bits) shapes, one per
// (payload size, aggregation level) pair.
struct ViterbiScratch {
  std::vector<std::int32_t> metric;
  std::vector<std::int32_t> next_metric;
  std::vector<std::uint8_t> survivor;    // flat [step * kNumStates + state]
  std::vector<std::uint8_t> prev_state;  // flat, same layout
  std::vector<std::int32_t> llr;
  std::vector<std::int32_t> suffix_gain;

  struct CountsEntry {
    std::size_t coded = 0;
    std::size_t target = 0;
    std::vector<int> counts;
  };
  std::vector<CountsEntry> counts_cache;

  const std::vector<int>& counts_for(std::size_t coded, std::size_t target) {
    for (const auto& e : counts_cache) {
      if (e.coded == coded && e.target == target) return e.counts;
    }
    counts_cache.push_back({coded, target, rate_match_counts(coded, target)});
    return counts_cache.back().counts;
  }
};

ViterbiScratch& scratch() {
  thread_local ViterbiScratch ws;
  return ws;
}

// Workspace for the lockstep batch decoder: one arena per decode thread
// (pool workers included) plus the same rate-match layout cache the scalar
// path keeps. Every per-batch array lives in the arena and is recycled
// wholesale, so after warm-up a batch performs zero heap allocations.
struct BatchScratch {
  util::Arena arena;

  std::vector<ViterbiScratch::CountsEntry> counts_cache;
  const std::vector<int>& counts_for(std::size_t coded, std::size_t target) {
    for (const auto& e : counts_cache) {
      if (e.coded == coded && e.target == target) return e.counts;
    }
    counts_cache.push_back({coded, target, rate_match_counts(coded, target)});
    return counts_cache.back().counts;
  }
};

BatchScratch& batch_scratch() {
  thread_local BatchScratch ws;
  return ws;
}

}  // namespace

util::BitVec conv_encode(const util::BitVec& payload) {
  util::BitVec out;
  std::uint32_t state = 0;
  const std::size_t total = payload.size() + kConvTailBits;
  for (std::size_t i = 0; i < total; ++i) {
    const int bit = i < payload.size() ? (payload.bit(i) ? 1 : 0) : 0;
    const std::uint32_t reg = make_reg(bit, state);
    const std::uint8_t o = kBranchOut[reg];
    for (int k = 0; k < kConvRateInv; ++k) out.push_bit(((o >> k) & 1) != 0);
    state = reg >> 1;
  }
  return out;
}

std::vector<int> rate_match_counts(std::size_t coded_bits,
                                   std::size_t target_bits) {
  // counts[i] = occurrences of mother-code bit i in the rate-matched
  // block: floor((i+1)*T/N) - floor(i*T/N). Uniformly spreads punctures
  // (T < N) and repetitions (T > N) — the effect of LTE's sub-block
  // interleaver + circular buffer without modelling the interleaver.
  std::vector<int> counts(coded_bits, 0);
  for (std::size_t i = 0; i < coded_bits; ++i) {
    const auto lo = (i * target_bits) / coded_bits;
    const auto hi = ((i + 1) * target_bits) / coded_bits;
    counts[i] = static_cast<int>(hi - lo);
  }
  return counts;
}

util::BitVec rate_match(const util::BitVec& coded, std::size_t target_bits) {
  const auto counts = rate_match_counts(coded.size(), target_bits);
  util::BitVec out;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    for (int c = 0; c < counts[i]; ++c) out.push_bit(coded.bit(i));
  }
  return out;
}

util::BitVec conv_decode(const util::BitVec& received,
                         std::size_t payload_bits) {
  PBECC_PROF_SCOPE("viterbi");
  const std::size_t steps = payload_bits + kConvTailBits;
  const std::size_t coded_bits = kConvRateInv * steps;

  auto& ws = scratch();

  // Per-mother-bit log-likelihood from the (possibly repeated/punctured)
  // received block: +count votes for 1, -count for 0, 0 = erasure.
  ws.llr.assign(coded_bits, 0);
  {
    const auto& counts = ws.counts_for(coded_bits, received.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < coded_bits; ++i) {
      for (int c = 0; c < counts[i]; ++c) {
        ws.llr[i] += received.bit(j++) ? 1 : -1;
      }
    }
  }

  // suffix_gain[t] = the largest total branch gain any path can still
  // collect from step t onward (each step contributes at most
  // |v0|+|v1|+|v2|), and -suffix_gain[t] the smallest. Basis for the
  // exact-safe pruning bound below.
  ws.suffix_gain.assign(steps + 1, 0);
  for (std::size_t t = steps; t-- > 0;) {
    ws.suffix_gain[t] = ws.suffix_gain[t + 1] +
                        std::abs(ws.llr[kConvRateInv * t]) +
                        std::abs(ws.llr[kConvRateInv * t + 1]) +
                        std::abs(ws.llr[kConvRateInv * t + 2]);
  }

  // Viterbi: maximize correlation between the path's coded bits and llr.
  constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;
  ws.metric.assign(kNumStates, kNegInf);
  ws.metric[0] = 0;  // encoder starts zeroed
  ws.next_metric.assign(kNumStates, kNegInf);
  ws.survivor.resize(steps * kNumStates);
  ws.prev_state.resize(steps * kNumStates);

  std::int32_t best = 0;  // max over ws.metric (only state 0 is live)
  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(ws.next_metric.begin(), ws.next_metric.end(), kNegInf);
    const std::int32_t v0 = ws.llr[kConvRateInv * t];
    const std::int32_t v1 = ws.llr[kConvRateInv * t + 1];
    const std::int32_t v2 = ws.llr[kConvRateInv * t + 2];
    // gains[p] = branch gain when the branch outputs bit pattern p.
    std::int32_t gains[8];
    for (int p = 0; p < 8; ++p) {
      gains[p] = ((p & 1) != 0 ? v0 : -v0) + ((p & 2) != 0 ? v1 : -v1) +
                 ((p & 4) != 0 ? v2 : -v2);
    }
    // Exact-safe pruning: any continuation of state s gains at most
    // suffix_gain[t]; the leader's zero-tail continuation to state 0 (which
    // always exists) gains at least -suffix_gain[t]. A state strictly below
    // best - 2*suffix_gain[t] therefore cannot reach state 0 with the
    // winning metric — dropping it cannot change the traceback. (Ties are
    // kept, so tie-breaking matches the reference decoder bit-for-bit.)
    const std::int32_t prune_below = best - 2 * ws.suffix_gain[t];
    const int max_input = t < payload_bits ? 1 : 0;  // tail forces zeros
    std::uint8_t* surv = ws.survivor.data() + t * kNumStates;
    std::uint8_t* prev = ws.prev_state.data() + t * kNumStates;
    std::int32_t next_best = kNegInf;
    for (int s = 0; s < kNumStates; ++s) {
      const std::int32_t m = ws.metric[static_cast<std::size_t>(s)];
      if (m == kNegInf || m < prune_below) continue;
      for (int u = 0; u <= max_input; ++u) {
        const std::uint32_t reg = make_reg(u, static_cast<std::uint32_t>(s));
        const auto ns = static_cast<std::size_t>(reg >> 1);
        const std::int32_t cand = m + gains[kBranchOut[reg]];
        if (cand > ws.next_metric[ns]) {
          ws.next_metric[ns] = cand;
          surv[ns] = static_cast<std::uint8_t>(u);
          prev[ns] = static_cast<std::uint8_t>(s);
          if (cand > next_best) next_best = cand;
        }
      }
    }
    ws.metric.swap(ws.next_metric);
    best = next_best;
  }

  // The zero tail drives the encoder back to state 0: trace from there.
  util::BitVec decoded(payload_bits);
  std::size_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const std::size_t row = t * kNumStates;
    if (t < payload_bits) {
      decoded.set_bit(t, ws.survivor[row + state] != 0);
    }
    state = ws.prev_state[row + state];
  }
  return decoded;
}

util::BitVec conv_decode_reference(const util::BitVec& received,
                                   std::size_t payload_bits) {
  const std::size_t steps = payload_bits + kConvTailBits;
  const std::size_t coded_bits = kConvRateInv * steps;

  std::vector<int> llr(coded_bits, 0);
  {
    const auto counts = rate_match_counts(coded_bits, received.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < coded_bits; ++i) {
      for (int c = 0; c < counts[i]; ++c) {
        llr[i] += received.bit(j++) ? 1 : -1;
      }
    }
  }

  constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;
  std::vector<std::int32_t> metric(kNumStates, kNegInf);
  metric[0] = 0;
  std::vector<std::int32_t> next_metric(kNumStates);
  std::vector<std::array<std::uint8_t, kNumStates>> survivor(steps);
  std::vector<std::array<std::uint8_t, kNumStates>> prev_state(steps);

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    const int max_input = t < payload_bits ? 1 : 0;
    for (int s = 0; s < kNumStates; ++s) {
      if (metric[static_cast<std::size_t>(s)] == kNegInf) continue;
      for (int u = 0; u <= max_input; ++u) {
        const std::uint32_t reg = make_reg(u, static_cast<std::uint32_t>(s));
        std::int32_t gain = 0;
        for (std::size_t k = 0; k < kGenerators.size(); ++k) {
          const int v = llr[kConvRateInv * t + k];
          gain += parity(reg & kGenerators[k]) ? v : -v;
        }
        const auto ns = static_cast<std::size_t>(reg >> 1);
        const std::int32_t cand = metric[static_cast<std::size_t>(s)] + gain;
        if (cand > next_metric[ns]) {
          next_metric[ns] = cand;
          survivor[t][ns] = static_cast<std::uint8_t>(u);
          prev_state[t][ns] = static_cast<std::uint8_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }

  util::BitVec decoded(payload_bits);
  std::size_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    if (t < payload_bits) decoded.set_bit(t, survivor[t][state] != 0);
    state = prev_state[t][state];
  }
  return decoded;
}

void conv_decode_batch(const BatchDecodeJob* jobs, int n_jobs,
                       std::size_t payload_bits, BatchDecodeResult* results) {
  PBECC_PROF_SCOPE("viterbi_batch");
  if (n_jobs <= 0) return;
  const auto L = static_cast<std::size_t>(
      n_jobs <= kMaxDecodeLanes ? n_jobs : kMaxDecodeLanes);
  const std::size_t steps = payload_bits + kConvTailBits;
  const std::size_t coded_bits = kConvRateInv * steps;
  const std::size_t target = jobs[0].received->size();
  constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

  auto& ws = batch_scratch();
  ws.arena.reset();

  // Lane-major (structure-of-arrays) layout throughout: element i of lane
  // l lives at [i * L + l], so the innermost loops below run over
  // contiguous lanes and vectorize.

  // Per-mother-bit log-likelihoods, one column per lane. All lanes share
  // one rate-match layout — that is what makes the batch a batch.
  std::int32_t* llr = ws.arena.alloc<std::int32_t>(coded_bits * L);
  std::fill_n(llr, coded_bits * L, 0);
  {
    const auto& counts = ws.counts_for(coded_bits, target);
    for (std::size_t l = 0; l < L; ++l) {
      if (jobs[l].prefix != nullptr) {
        const std::int32_t* pre = jobs[l].prefix;
        std::size_t j = 0;
        for (std::size_t i = 0; i < coded_bits; ++i) {
          const auto c = static_cast<std::size_t>(counts[i]);
          llr[i * L + l] = pre[j + c] - pre[j];
          j += c;
        }
      } else {
        const util::BitVec& rx = *jobs[l].received;
        std::size_t j = 0;
        for (std::size_t i = 0; i < coded_bits; ++i) {
          for (int c = 0; c < counts[i]; ++c) {
            llr[i * L + l] += rx.bit(j++) ? 1 : -1;
          }
        }
      }
    }
  }

  // suffix_gain[t][l]: the most any path can still gain from step t on —
  // the same exact bound the scalar decoder prunes with, here driving the
  // per-lane early abort.
  std::int32_t* suffix = ws.arena.alloc<std::int32_t>((steps + 1) * L);
  std::fill_n(suffix + steps * L, L, 0);
  for (std::size_t t = steps; t-- > 0;) {
    const std::int32_t* v = llr + kConvRateInv * t * L;
    for (std::size_t l = 0; l < L; ++l) {
      suffix[t * L + l] = suffix[(t + 1) * L + l] + std::abs(v[l]) +
                          std::abs(v[L + l]) + std::abs(v[2 * L + l]);
    }
  }

  std::int32_t* metric = ws.arena.alloc<std::int32_t>(kNumStates * L);
  std::int32_t* next = ws.arena.alloc<std::int32_t>(kNumStates * L);
  std::fill_n(metric, kNumStates * L, kNegInf);
  for (std::size_t l = 0; l < L; ++l) metric[l] = 0;  // state 0 live

  // One traceback bit per (step, state, lane): the destination state alone
  // determines the input bit (u = ns >> 5) and all but the lowest bit of
  // the predecessor, so the ACS only needs to remember which of the two
  // predecessors won.
  std::uint8_t* take = ws.arena.alloc<std::uint8_t>(steps * kNumStates * L);

  bool aborted[kMaxDecodeLanes] = {};
  bool any_abort_enabled = false;
  for (std::size_t l = 0; l < L; ++l) {
    if (jobs[l].abort_below != INT32_MIN) any_abort_enabled = true;
  }
  std::size_t n_live = L;

  for (std::size_t t = 0; t < steps; ++t) {
    // Branch gain per 3-bit output pattern, per lane.
    std::int32_t gains[8 * kMaxDecodeLanes];
    const std::int32_t* v = llr + kConvRateInv * t * L;
    for (int p = 0; p < 8; ++p) {
      std::int32_t* g = gains + static_cast<std::size_t>(p) * L;
      for (std::size_t l = 0; l < L; ++l) {
        g[l] = ((p & 1) != 0 ? v[l] : -v[l]) +
               ((p & 2) != 0 ? v[L + l] : -v[L + l]) +
               ((p & 4) != 0 ? v[2 * L + l] : -v[2 * L + l]);
      }
    }

    // Destination-major ACS: dest ns has exactly two predecessors,
    // p0 = (ns << 1) & 63 and p1 = p0 | 1, both reached with input
    // u = ns >> 5. Tie-break keeps p0 (strict >), matching the reference
    // decoder's source-ascending scan bit-for-bit. During the zero tail
    // only u = 0 destinations exist.
    const int ns_end = t < payload_bits ? kNumStates : kNumStates / 2;
    std::uint8_t* tk = take + t * kNumStates * L;
    for (int ns = 0; ns < ns_end; ++ns) {
      const int u = ns >> 5;
      const int p0 = (ns << 1) & 63;
      const std::uint8_t g0 = kBranchOut[static_cast<std::size_t>((u << 6) | p0)];
      const std::uint8_t g1 =
          kBranchOut[static_cast<std::size_t>((u << 6) | (p0 | 1))];
      const std::int32_t* m0 = metric + static_cast<std::size_t>(p0) * L;
      const std::int32_t* m1 = m0 + L;
      const std::int32_t* ga = gains + static_cast<std::size_t>(g0) * L;
      const std::int32_t* gb = gains + static_cast<std::size_t>(g1) * L;
      std::int32_t* nx = next + static_cast<std::size_t>(ns) * L;
      std::uint8_t* tt = tk + static_cast<std::size_t>(ns) * L;
      for (std::size_t l = 0; l < L; ++l) {
        const std::int32_t c0 = m0[l] + ga[l];
        const std::int32_t c1 = m1[l] + gb[l];
        const bool sel = c1 > c0;
        nx[l] = sel ? c1 : c0;
        tt[l] = sel ? 1 : 0;
      }
    }
    if (ns_end < kNumStates) {
      std::fill(next + static_cast<std::size_t>(ns_end) * L,
                next + static_cast<std::size_t>(kNumStates) * L, kNegInf);
    }
    std::swap(metric, next);

    // Early abort: a lane whose best surviving metric plus the largest
    // possible remaining gain is still below its caller-supplied floor can
    // never produce an accepted codeword — stop charging it work the
    // moment that is provable. (The floor maps 1:1 to the acceptance test
    // the caller runs afterwards, so this never changes an outcome.) The
    // 64xL max-reduction costs about as much as one ACS step, so it runs
    // every 8th step: a doomed lane survives at most 7 extra steps, which
    // is far cheaper than paying the reduction at every one.
    if (any_abort_enabled && (t & 7) == 7) {
      std::int32_t best[kMaxDecodeLanes];
      std::fill_n(best, L, kNegInf);
      for (int s = 0; s < kNumStates; ++s) {
        const std::int32_t* m = metric + static_cast<std::size_t>(s) * L;
        for (std::size_t l = 0; l < L; ++l) {
          if (m[l] > best[l]) best[l] = m[l];
        }
      }
      const std::int32_t* suf = suffix + (t + 1) * L;
      for (std::size_t l = 0; l < L; ++l) {
        if (aborted[l] || jobs[l].abort_below == INT32_MIN) continue;
        if (best[l] + suf[l] < jobs[l].abort_below) {
          aborted[l] = true;
          --n_live;
        }
      }
      if (n_live == 0) break;
    }
  }

  for (std::size_t l = 0; l < L; ++l) {
    BatchDecodeResult& r = results[l];
    if (aborted[l]) {
      r.decoded = util::BitVec{};
      r.aborted = true;
      r.metric = 0;
      continue;
    }
    r.aborted = false;
    r.metric = metric[l];  // state 0, where the zero tail always lands
    util::BitVec out(payload_bits);
    std::size_t state = 0;
    for (std::size_t t = steps; t-- > 0;) {
      if (t < payload_bits) out.set_bit(t, (state >> 5) != 0);
      state = ((state << 1) & 63) |
              take[(t * kNumStates + state) * L + l];
    }
    r.decoded = std::move(out);
  }
}

}  // namespace pbecc::phy
