#include "phy/convolutional.h"

#include <algorithm>
#include <array>
#include <limits>

#include "obs/profile.h"

namespace pbecc::phy {

namespace {

// 3GPP 36.212 generators, octal 133 / 171 / 165, MSB = current input bit.
constexpr std::array<std::uint32_t, 3> kGenerators = {0b1011011, 0b1111001,
                                                      0b1110101};
constexpr int kNumStates = 1 << (kConvConstraint - 1);  // 64

bool parity(std::uint32_t v) { return __builtin_popcount(v) & 1; }

// Register layout: bit6 = current input, bits5..0 = previous six inputs
// (newest at bit5). The successor state is reg >> 1.
std::uint32_t make_reg(int input_bit, std::uint32_t state) {
  return (static_cast<std::uint32_t>(input_bit) << 6) | state;
}

}  // namespace

util::BitVec conv_encode(const util::BitVec& payload) {
  util::BitVec out;
  std::uint32_t state = 0;
  const std::size_t total = payload.size() + kConvTailBits;
  for (std::size_t i = 0; i < total; ++i) {
    const int bit = i < payload.size() ? (payload.bit(i) ? 1 : 0) : 0;
    const std::uint32_t reg = make_reg(bit, state);
    for (const auto g : kGenerators) out.push_bit(parity(reg & g));
    state = reg >> 1;
  }
  return out;
}

std::vector<int> rate_match_counts(std::size_t coded_bits,
                                   std::size_t target_bits) {
  // counts[i] = occurrences of mother-code bit i in the rate-matched
  // block: floor((i+1)*T/N) - floor(i*T/N). Uniformly spreads punctures
  // (T < N) and repetitions (T > N) — the effect of LTE's sub-block
  // interleaver + circular buffer without modelling the interleaver.
  std::vector<int> counts(coded_bits, 0);
  for (std::size_t i = 0; i < coded_bits; ++i) {
    const auto lo = (i * target_bits) / coded_bits;
    const auto hi = ((i + 1) * target_bits) / coded_bits;
    counts[i] = static_cast<int>(hi - lo);
  }
  return counts;
}

util::BitVec rate_match(const util::BitVec& coded, std::size_t target_bits) {
  const auto counts = rate_match_counts(coded.size(), target_bits);
  util::BitVec out;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    for (int c = 0; c < counts[i]; ++c) out.push_bit(coded.bit(i));
  }
  return out;
}

util::BitVec conv_decode(const util::BitVec& received,
                         std::size_t payload_bits) {
  PBECC_PROF_SCOPE("viterbi");
  const std::size_t steps = payload_bits + kConvTailBits;
  const std::size_t coded_bits = kConvRateInv * steps;

  // Per-mother-bit log-likelihood from the (possibly repeated/punctured)
  // received block: +count votes for 1, -count for 0, 0 = erasure.
  std::vector<int> llr(coded_bits, 0);
  {
    const auto counts = rate_match_counts(coded_bits, received.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < coded_bits; ++i) {
      for (int c = 0; c < counts[i]; ++c) {
        llr[i] += received.bit(j++) ? 1 : -1;
      }
    }
  }

  // Viterbi: maximize correlation between the path's coded bits and llr.
  constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;
  std::vector<std::int32_t> metric(kNumStates, kNegInf);
  metric[0] = 0;  // encoder starts zeroed
  std::vector<std::int32_t> next_metric(kNumStates);
  // survivor[t][next_state] = input bit chosen on the best branch.
  std::vector<std::array<std::uint8_t, kNumStates>> survivor(steps);
  std::vector<std::array<std::uint8_t, kNumStates>> prev_state(steps);

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    const int max_input = t < payload_bits ? 1 : 0;  // tail forces zeros
    for (int s = 0; s < kNumStates; ++s) {
      if (metric[static_cast<std::size_t>(s)] == kNegInf) continue;
      for (int u = 0; u <= max_input; ++u) {
        const std::uint32_t reg = make_reg(u, static_cast<std::uint32_t>(s));
        std::int32_t gain = 0;
        for (std::size_t k = 0; k < kGenerators.size(); ++k) {
          const int v = llr[kConvRateInv * t + k];
          gain += parity(reg & kGenerators[k]) ? v : -v;
        }
        const auto ns = static_cast<std::size_t>(reg >> 1);
        const std::int32_t cand = metric[static_cast<std::size_t>(s)] + gain;
        if (cand > next_metric[ns]) {
          next_metric[ns] = cand;
          survivor[t][ns] = static_cast<std::uint8_t>(u);
          prev_state[t][ns] = static_cast<std::uint8_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }

  // The zero tail drives the encoder back to state 0: trace from there.
  util::BitVec decoded(payload_bits);
  std::size_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    if (t < payload_bits) decoded.set_bit(t, survivor[t][state] != 0);
    state = prev_state[t][state];
  }
  return decoded;
}

}  // namespace pbecc::phy
