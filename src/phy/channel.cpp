#include "phy/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pbecc::phy {

MobilityTrace MobilityTrace::stationary(double rssi_dbm) {
  return MobilityTrace{{{0, rssi_dbm}}};
}

MobilityTrace::MobilityTrace(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (waypoints_.empty()) throw std::invalid_argument("empty mobility trace");
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].time < waypoints_[i - 1].time) {
      throw std::invalid_argument("mobility waypoints must be time-sorted");
    }
  }
}

double MobilityTrace::rssi_at(util::Time t) const {
  if (t <= waypoints_.front().time) return waypoints_.front().rssi_dbm;
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (t <= waypoints_[i].time) {
      const auto& a = waypoints_[i - 1];
      const auto& b = waypoints_[i];
      if (b.time == a.time) return b.rssi_dbm;
      const double frac = static_cast<double>(t - a.time) /
                          static_cast<double>(b.time - a.time);
      return a.rssi_dbm + frac * (b.rssi_dbm - a.rssi_dbm);
    }
  }
  return waypoints_.back().rssi_dbm;
}

ChannelModel::ChannelModel(ChannelConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {}

ChannelState ChannelModel::sample(util::Time t) {
  // Advance the Gauss-Markov shadowing process one step per coherence
  // interval that elapsed.
  if (cfg_.shadowing_coherence > 0) {
    const auto interval = cfg_.shadowing_coherence;
    if (last_shadow_update_ < 0) {
      shadow_db_ = rng_.normal(0.0, cfg_.shadowing_sigma_db);
      last_shadow_update_ = t;
    }
    while (t - last_shadow_update_ >= interval) {
      constexpr double rho = 0.8;  // AR(1) correlation between intervals
      shadow_db_ = rho * shadow_db_ +
                   std::sqrt(1 - rho * rho) * rng_.normal(0.0, cfg_.shadowing_sigma_db);
      last_shadow_update_ += interval;
    }
  }

  ChannelState s;
  s.rssi_dbm = cfg_.trace.rssi_at(t) + shadow_db_;
  const double fading = rng_.normal(0.0, cfg_.fast_fading_sigma_db);
  s.sinr_db = s.rssi_dbm - cfg_.noise_floor_dbm + fading;
  s.cqi = std::max(1, cqi_from_sinr_db(s.sinr_db));
  s.data_ber = residual_ber_from_rssi(s.rssi_dbm);
  s.control_ber = qpsk_ber(s.sinr_db);
  return s;
}

}  // namespace pbecc::phy
