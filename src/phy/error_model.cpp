#include "phy/error_model.h"

#include <algorithm>
#include <cmath>

namespace pbecc::phy {

double residual_ber_from_rssi(double rssi_dbm) {
  // Log-linear interpolation through the paper's anchors:
  //   (-98 dBm, 1e-6) and (-113 dBm, 5e-6).
  // slope = log10(5) / 15 dB of attenuation.
  constexpr double kAnchorRssi = -98.0;
  constexpr double kAnchorBer = 1e-6;
  constexpr double kSlopePerDb = 0.69897 / 15.0;  // log10(5)/15
  const double exponent = (kAnchorRssi - rssi_dbm) * kSlopePerDb;
  const double p = kAnchorBer * std::pow(10.0, exponent);
  return std::clamp(p, 1e-8, 1e-3);
}

double tb_error_rate(double p, double tb_bits) {
  if (p <= 0.0 || tb_bits <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // 1 - (1-p)^L via expm1/log1p for numerical stability at small p.
  return -std::expm1(tb_bits * std::log1p(-p));
}

double qpsk_ber(double sinr_db) {
  const double snr = std::pow(10.0, sinr_db / 10.0);
  // Q(sqrt(2*snr)) = 0.5 * erfc(sqrt(snr))
  return 0.5 * std::erfc(std::sqrt(std::max(snr, 0.0)));
}

}  // namespace pbecc::phy
