// LTE-style convolutional coding for the control channel.
//
// The paper's prototype reuses srsLTE's convolutional decoder (§5); this
// module provides the equivalent: the 3GPP 36.212 rate-1/3, constraint-
// length-7 code (generators 133/171/165 octal) with circular-buffer rate
// matching to the aggregation-level capacity, and a hard-decision Viterbi
// decoder that treats punctured positions as erasures.
//
// Deviation from 36.212: we terminate the trellis with six zero tail bits
// instead of tail-biting (documented in DESIGN.md) — decoding is simpler
// and the behaviourally relevant property (coding gain growing with
// aggregation level) is identical.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.h"

namespace pbecc::phy {

inline constexpr int kConvConstraint = 7;   // K: 6 memory bits
inline constexpr int kConvRateInv = 3;      // rate 1/3
inline constexpr int kConvTailBits = kConvConstraint - 1;

// Encode `payload` (+ 6 zero tail bits) with the rate-1/3 code:
// output length = 3 * (payload.size() + 6).
util::BitVec conv_encode(const util::BitVec& payload);

// Rate-match `coded` to exactly `target_bits` via a circular buffer:
// repetition when target > coded size, uniform puncturing otherwise.
util::BitVec rate_match(const util::BitVec& coded, std::size_t target_bits);

// Which mother-code positions survive rate matching to `target_bits`
// (inverse mapping used by the decoder to place received bits/erasures).
std::vector<int> rate_match_counts(std::size_t coded_bits,
                                   std::size_t target_bits);

// Viterbi-decode `received` (a rate-matched block of `target_bits` bits)
// back to `payload_bits` information bits. Punctured positions contribute
// no branch metric; repeated positions vote. Always returns a best-effort
// decision — callers validate with the CRC.
//
// This is the optimized hot path (flattened branch-metric tables, per-step
// gain lookup, exact-safe path pruning, thread-local scratch reuse); it is
// bit-exact with conv_decode_reference on every input.
util::BitVec conv_decode(const util::BitVec& received,
                         std::size_t payload_bits);

// Straightforward textbook implementation kept as the oracle for the
// equivalence tests in tests/convolutional_test.cpp. Not for hot paths:
// it allocates its trellis per call.
util::BitVec conv_decode_reference(const util::BitVec& received,
                                   std::size_t payload_bits);

// ---------------------------------------------------------------------------
// Batched lockstep decode (DESIGN.md §14).
//
// The blind decoder tries the same (payload length, block length) shape at
// every candidate position of an aggregation level; conv_decode_batch
// decodes up to kMaxDecodeLanes such same-shape blocks through one trellis
// walk with lane-major (structure-of-arrays) path metrics, so the
// add-compare-select inner loops vectorize across candidates. Non-aborted
// lanes are byte-exact with conv_decode_reference — the decoder's
// determinism contract does not bend for speed.

inline constexpr int kMaxDecodeLanes = 16;

struct BatchDecodeJob {
  const util::BitVec* received = nullptr;  // same size() for every lane
  // Optional vote prefix sums over `received`: prefix[j] = sum over bits
  // [0, j) of (bit ? +1 : -1), length received->size() + 1. The blind
  // decoder tries ~5 DCI formats against the same span; the prefix lets
  // every format's rate-matched log-likelihoods come from one shared span
  // scan (a subtraction per mother bit) instead of re-reading the span
  // bit-by-bit per format. nullptr falls back to the direct bit loop —
  // both produce identical integers.
  const std::int32_t* prefix = nullptr;
  // Exact-safe early abort: the decode gives up on this lane as soon as no
  // completion of any surviving path can reach a final state-0 correlation
  // metric >= abort_below (metric = matches - mismatches against the
  // received block, so the caller derives it from its acceptance
  // threshold). INT32_MIN disables the abort. An aborted lane is one the
  // caller would provably have rejected, never a maybe.
  std::int32_t abort_below = INT32_MIN;
};

struct BatchDecodeResult {
  util::BitVec decoded;   // empty when aborted
  bool aborted = false;
  // Final state-0 path metric (valid when !aborted): the correlation of
  // the decoded codeword with the received block.
  std::int32_t metric = 0;
};

// Decode `n_jobs` (1..kMaxDecodeLanes) equally-shaped blocks in lockstep.
// Every jobs[i].received must have the same size, every lane decodes to
// `payload_bits` information bits. Scratch comes from a per-thread arena:
// steady state performs no heap allocation.
void conv_decode_batch(const BatchDecodeJob* jobs, int n_jobs,
                       std::size_t payload_bits, BatchDecodeResult* results);

}  // namespace pbecc::phy
