// LTE-style convolutional coding for the control channel.
//
// The paper's prototype reuses srsLTE's convolutional decoder (§5); this
// module provides the equivalent: the 3GPP 36.212 rate-1/3, constraint-
// length-7 code (generators 133/171/165 octal) with circular-buffer rate
// matching to the aggregation-level capacity, and a hard-decision Viterbi
// decoder that treats punctured positions as erasures.
//
// Deviation from 36.212: we terminate the trellis with six zero tail bits
// instead of tail-biting (documented in DESIGN.md) — decoding is simpler
// and the behaviourally relevant property (coding gain growing with
// aggregation level) is identical.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.h"

namespace pbecc::phy {

inline constexpr int kConvConstraint = 7;   // K: 6 memory bits
inline constexpr int kConvRateInv = 3;      // rate 1/3
inline constexpr int kConvTailBits = kConvConstraint - 1;

// Encode `payload` (+ 6 zero tail bits) with the rate-1/3 code:
// output length = 3 * (payload.size() + 6).
util::BitVec conv_encode(const util::BitVec& payload);

// Rate-match `coded` to exactly `target_bits` via a circular buffer:
// repetition when target > coded size, uniform puncturing otherwise.
util::BitVec rate_match(const util::BitVec& coded, std::size_t target_bits);

// Which mother-code positions survive rate matching to `target_bits`
// (inverse mapping used by the decoder to place received bits/erasures).
std::vector<int> rate_match_counts(std::size_t coded_bits,
                                   std::size_t target_bits);

// Viterbi-decode `received` (a rate-matched block of `target_bits` bits)
// back to `payload_bits` information bits. Punctured positions contribute
// no branch metric; repeated positions vote. Always returns a best-effort
// decision — callers validate with the CRC.
//
// This is the optimized hot path (flattened branch-metric tables, per-step
// gain lookup, exact-safe path pruning, thread-local scratch reuse); it is
// bit-exact with conv_decode_reference on every input.
util::BitVec conv_decode(const util::BitVec& received,
                         std::size_t payload_bits);

// Straightforward textbook implementation kept as the oracle for the
// equivalence tests in tests/convolutional_test.cpp. Not for hot paths:
// it allocates its trellis per call.
util::BitVec conv_decode_reference(const util::BitVec& received,
                                   std::size_t payload_bits);

}  // namespace pbecc::phy
