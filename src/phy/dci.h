// Downlink Control Information (DCI) messages and their bit-level wire
// format on the synthetic control channel.
//
// 3GPP defines ten DCI formats; the base station never announces which
// format a message uses, so monitors (and the phone itself) blind-decode by
// trying every format at every search-space candidate (paper §5, footnote 2).
// We carry the fields PBE-CC's algorithm actually consumes — RNTI, PRB
// allocation, MCS, spatial streams, HARQ process and new-data indicator —
// in formats of genuinely different bit lengths so the blind search is real.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/cell_config.h"
#include "phy/mcs.h"
#include "util/bitvec.h"

namespace pbecc::phy {

// A subset of 3GPP 36.212 DCI formats that differ in payload size.
// Format0 is an uplink grant (present on the channel, ignored by the
// downlink capacity monitor); 1A is the compact downlink allocation;
// 1 the full bitmap allocation; 2/2A carry MIMO (2-stream) allocations.
// Formats 5-7 are the 38.212 NR set: 0_0 the fallback uplink grant, 1_0
// the fallback downlink allocation, 1_1 the full (MIMO-capable) downlink
// allocation. NR formats widen the PRB fields to 9 bits (bandwidth parts
// reach 273 PRBs) and the HARQ field to 4 bits; an LTE cell never carries
// them and an NR cell never carries the LTE formats, so each RAT's blind
// search stays confined to its own format list.
enum class DciFormat : std::uint8_t {
  kFormat0 = 0,      // LTE uplink grant
  kFormat1A = 1,     // LTE compact downlink, 1 stream
  kFormat1 = 2,      // LTE full downlink, 1 stream
  kFormat2 = 3,      // LTE downlink MIMO, up to 2 streams
  kFormat2A = 4,     // LTE downlink MIMO (open loop), up to 2 streams
  kNrFormat0_0 = 5,  // NR uplink grant
  kNrFormat1_0 = 6,  // NR fallback downlink, 1 stream
  kNrFormat1_1 = 7,  // NR downlink, up to 2 streams
};

inline constexpr int kNumDciFormats = 8;

// The blind-decode format list per RAT (pointers into static arrays).
// LTE cells try exactly the five 36.212 formats — byte-identical with the
// pre-NR decoder — and NR cells exactly the three 38.212 ones.
inline constexpr DciFormat kLteDciFormats[] = {
    DciFormat::kFormat0, DciFormat::kFormat1A, DciFormat::kFormat1,
    DciFormat::kFormat2, DciFormat::kFormat2A};
inline constexpr DciFormat kNrDciFormats[] = {
    DciFormat::kNrFormat0_0, DciFormat::kNrFormat1_0, DciFormat::kNrFormat1_1};

constexpr bool is_nr_format(DciFormat f) {
  return f == DciFormat::kNrFormat0_0 || f == DciFormat::kNrFormat1_0 ||
         f == DciFormat::kNrFormat1_1;
}

// Formats that carry a two-stream (MIMO) allocation and therefore a
// second-stream MCS field.
constexpr bool format_is_mimo(DciFormat f) {
  return f == DciFormat::kFormat2 || f == DciFormat::kFormat2A ||
         f == DciFormat::kNrFormat1_1;
}

// Payload bit length of each format (excluding the 16-bit CRC). Distinct
// lengths are what force a real blind search. All under the 70-bit bound
// the paper cites for control messages (§7).
int dci_payload_bits(DciFormat f);

struct Dci {
  Rnti rnti = 0;
  DciFormat format = DciFormat::kFormat1A;
  bool is_downlink() const {
    return format != DciFormat::kFormat0 && format != DciFormat::kNrFormat0_0;
  }

  // Resource allocation: contiguous for our scheduler.
  std::uint16_t prb_start = 0;
  std::uint16_t n_prbs = 0;

  Mcs mcs{};                    // CQI-equivalent MCS + stream count
  std::uint8_t harq_id = 0;     // 0..7
  bool new_data = true;         // NDI: toggled for new TBs, kept for retx

  bool operator==(const Dci&) const = default;
};

// Serialize to payload bits (MSB-first fields) + 16-bit RNTI-masked CRC.
// Total on-air bits = dci_payload_bits(format) + 16.
util::BitVec encode_dci(const Dci& d);

// Attempt to parse `bits` as a `format` message. Checks structural
// validity (field ranges vs `n_cell_prbs`) and returns the message with the
// RNTI recovered from the CRC mask; returns nullopt if the CRC residue is
// not a plausible C-RNTI or fields are out of range. The caller layers
// further RNTI plausibility filtering on top (see decoder::RntiTracker).
std::optional<Dci> decode_dci(const util::BitVec& bits, DciFormat format,
                              int n_cell_prbs);

// CRC-first cheap screen: evaluates exactly the length and CRC-residue
// plausibility checks decode_dci() applies first, without building the
// payload copy or parsing any field. Returns false only when decode_dci()
// is guaranteed to return nullopt, so callers may skip it entirely —
// stat-for-stat identical, an order of magnitude cheaper on the (typical)
// garbage candidate. Used by the batched blind-decode path (DESIGN.md §14).
bool dci_crc_screen(const util::BitVec& bits, DciFormat format);

}  // namespace pbecc::phy
