// Downlink Control Information (DCI) messages and their bit-level wire
// format on the synthetic control channel.
//
// 3GPP defines ten DCI formats; the base station never announces which
// format a message uses, so monitors (and the phone itself) blind-decode by
// trying every format at every search-space candidate (paper §5, footnote 2).
// We carry the fields PBE-CC's algorithm actually consumes — RNTI, PRB
// allocation, MCS, spatial streams, HARQ process and new-data indicator —
// in formats of genuinely different bit lengths so the blind search is real.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/cell_config.h"
#include "phy/mcs.h"
#include "util/bitvec.h"

namespace pbecc::phy {

// A subset of 3GPP 36.212 DCI formats that differ in payload size.
// Format0 is an uplink grant (present on the channel, ignored by the
// downlink capacity monitor); 1A is the compact downlink allocation;
// 1 the full bitmap allocation; 2/2A carry MIMO (2-stream) allocations.
enum class DciFormat : std::uint8_t {
  kFormat0 = 0,   // uplink grant
  kFormat1A = 1,  // compact downlink, 1 stream
  kFormat1 = 2,   // full downlink, 1 stream
  kFormat2 = 3,   // downlink MIMO, up to 2 streams
  kFormat2A = 4,  // downlink MIMO (open loop), up to 2 streams
};

inline constexpr int kNumDciFormats = 5;

// Payload bit length of each format (excluding the 16-bit CRC). Distinct
// lengths are what force a real blind search. All under the 70-bit bound
// the paper cites for control messages (§7).
int dci_payload_bits(DciFormat f);

struct Dci {
  Rnti rnti = 0;
  DciFormat format = DciFormat::kFormat1A;
  bool is_downlink() const { return format != DciFormat::kFormat0; }

  // Resource allocation: contiguous for our scheduler.
  std::uint16_t prb_start = 0;
  std::uint16_t n_prbs = 0;

  Mcs mcs{};                    // CQI-equivalent MCS + stream count
  std::uint8_t harq_id = 0;     // 0..7
  bool new_data = true;         // NDI: toggled for new TBs, kept for retx

  bool operator==(const Dci&) const = default;
};

// Serialize to payload bits (MSB-first fields) + 16-bit RNTI-masked CRC.
// Total on-air bits = dci_payload_bits(format) + 16.
util::BitVec encode_dci(const Dci& d);

// Attempt to parse `bits` as a `format` message. Checks structural
// validity (field ranges vs `n_cell_prbs`) and returns the message with the
// RNTI recovered from the CRC mask; returns nullopt if the CRC residue is
// not a plausible C-RNTI or fields are out of range. The caller layers
// further RNTI plausibility filtering on top (see decoder::RntiTracker).
std::optional<Dci> decode_dci(const util::BitVec& bits, DciFormat format,
                              int n_cell_prbs);

// CRC-first cheap screen: evaluates exactly the length and CRC-residue
// plausibility checks decode_dci() applies first, without building the
// payload copy or parsing any field. Returns false only when decode_dci()
// is guaranteed to return nullopt, so callers may skip it entirely —
// stat-for-stat identical, an order of magnitude cheaper on the (typical)
// garbage candidate. Used by the batched blind-decode path (DESIGN.md §14).
bool dci_crc_screen(const util::BitVec& bits, DciFormat format);

}  // namespace pbecc::phy
