#include "phy/mcs.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace pbecc::phy {

namespace {

// 3GPP 36.213 Table 7.2.3-1. Index 0 means "out of range" (no transmission).
constexpr std::array<CqiEntry, kNumCqi> kCqiTable = {{
    {0, 0.0},       // 0: out of range
    {2, 78.0 / 1024.0},
    {2, 120.0 / 1024.0},
    {2, 193.0 / 1024.0},
    {2, 308.0 / 1024.0},
    {2, 449.0 / 1024.0},
    {2, 602.0 / 1024.0},
    {4, 378.0 / 1024.0},
    {4, 490.0 / 1024.0},
    {4, 616.0 / 1024.0},
    {6, 466.0 / 1024.0},
    {6, 567.0 / 1024.0},
    {6, 666.0 / 1024.0},
    {6, 772.0 / 1024.0},
    {6, 873.0 / 1024.0},
    {6, 948.0 / 1024.0},
}};

// SINR (dB) thresholds at which each CQI becomes sustainable, from the
// standard AWGN link-level curves at the 10% BLER operating point.
constexpr std::array<double, kNumCqi> kCqiSinrThresholdDb = {{
    -10.0,  // CQI 0 placeholder
    -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7,
    14.1, 16.3, 18.7, 21.0, 22.7,
}};

}  // namespace

const CqiEntry& cqi_entry(int cqi) {
  if (cqi < 0 || cqi >= kNumCqi) throw std::out_of_range("cqi");
  return kCqiTable[static_cast<std::size_t>(cqi)];
}

double bits_per_prb(int cqi, int n_streams) {
  const auto& e = cqi_entry(cqi);
  n_streams = std::clamp(n_streams, 1, 2);
  return kResourceElementsPerPrb * e.modulation_order * e.code_rate *
         static_cast<double>(n_streams);
}

int cqi_from_sinr_db(double sinr_db) {
  int cqi = 0;
  for (int i = 1; i < kNumCqi; ++i) {
    if (sinr_db >= kCqiSinrThresholdDb[static_cast<std::size_t>(i)]) cqi = i;
  }
  return cqi;
}

}  // namespace pbecc::phy
