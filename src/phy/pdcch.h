// Synthetic physical downlink control channel (PDCCH).
//
// This is the encode side of the SDR substitution: instead of live I/Q
// samples, each cell emits one PdcchSubframe per millisecond — a control
// region of CCEs (control channel elements, 72 bits each) into which DCI
// messages are packed at an aggregation level of 1/2/4/8 CCEs with
// repetition coding. A channel then flips bits at the monitor's control
// BER, and the blind decoder (src/decoder) searches candidates exactly the
// way the paper's srsLTE-based decoder does.
#pragma once

#include <cstdint>
#include <vector>

#include "nr/coreset.h"
#include "phy/cell_config.h"
#include "phy/convolutional.h"
#include "phy/dci.h"
#include "util/bitvec.h"
#include "util/rng.h"
#include "util/time.h"

namespace pbecc::phy {

inline constexpr int kBitsPerCce = 72;
inline constexpr int kAggregationLevels[] = {1, 2, 4, 8};
// NR search spaces extend the ladder to AL16 (nr::kNrAggregationLevels);
// the largest level any cell type may use.
inline constexpr int kMaxAggregationLevel = 16;

// Pick the aggregation level the base station would use for a user at the
// given control-channel SINR: poorer channels get more CCEs.
int aggregation_level_for_sinr(double sinr_db);

struct PdcchSubframe {
  CellId cell_id = 0;
  // Tick index on this cell's clock: the subframe index for LTE cells, the
  // slot index (subframe * slots_per_subframe + slot) for NR cells. The
  // tick's start instant is sf_index * tick.
  std::int64_t sf_index = 0;
  int n_cces = 0;
  PdcchCoding coding = PdcchCoding::kRepetition;
  // Duration of one tick on this cell's clock (1 ms for LTE, the slot
  // length for NR numerologies).
  util::Duration tick = util::kSubframe;
  util::BitVec bits;           // n_cces * kBitsPerCce bits
  std::vector<bool> cce_used;  // encoder-side occupancy (ground truth)

  bool operator==(const PdcchSubframe&) const = default;
};

// Packs DCI messages into one tick's control region.
class PdcchBuilder {
 public:
  PdcchBuilder(const CellConfig& cfg, std::int64_t sf_index);

  // Place `dci` at the first free candidate of the level: LTE sweeps every
  // aggregation-aligned start, NR walks exactly the cell's search-space
  // candidate list (nr::candidate_starts) so the blind decoder's
  // enumeration provably covers every placement. Returns false if no
  // candidate is free (message dropped, as in a real cell whose PDCCH is
  // exhausted).
  bool add(const Dci& dci, int aggregation_level);

  // As add(), but escalates the aggregation level (doubling up to 8 on
  // LTE, 16 on NR) when the requested one cannot carry the message — e.g.
  // a long DCI under convolutional coding needs at least the AL whose
  // rate-matched block keeps the code rate below 1/2.
  bool add_escalating(const Dci& dci, int aggregation_level);

  int cces_free() const;
  PdcchSubframe build() &&;

 private:
  CellConfig cfg_;
  PdcchCoding coding_;
  PdcchSubframe sf_;
};

// Flip each bit independently with probability `ber` — the monitor-side
// reception noise. (The scheduled user itself sees the same channel.)
void apply_bit_noise(PdcchSubframe& sf, double ber, util::Rng& rng);

// Number of repetitions of a (payload+CRC) message of `msg_bits` bits that
// fit in `agg_level` CCEs; 0 if it does not fit at all.
int repetitions_that_fit(int msg_bits, int agg_level);

}  // namespace pbecc::phy
