// Residual-error models after link adaptation.
//
// The paper (Fig 6b) models transport-block errors as i.i.d. bit errors:
//   TBER(L) = 1 - (1 - p)^L
// with the residual bit error rate p set by the channel (p ~ 1e-6 at
// RSSI -98 dBm, ~5e-6 at -113 dBm in their measurements). We reproduce
// exactly that model, with p derived from RSSI/SINR.
#pragma once

#include <cstdint>

namespace pbecc::phy {

// Residual post-HARQ-combining bit error rate as a function of received
// signal strength (dBm). Calibrated to the paper's two measured anchors:
// p(-98 dBm) = 1e-6 and p(-113 dBm) = 5e-6.
double residual_ber_from_rssi(double rssi_dbm);

// Transport block error rate for TB of `tb_bits` bits under i.i.d. bit
// error rate `p` (paper Fig 6b): 1 - (1-p)^L, computed stably.
double tb_error_rate(double p, double tb_bits);

// Uncoded QPSK bit error rate at the given SINR (dB); used for control
// channel (PDCCH) bit flips in the synthetic decoder front end.
double qpsk_ber(double sinr_db);

}  // namespace pbecc::phy
