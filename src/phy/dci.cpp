#include "phy/dci.h"

#include <stdexcept>

#include "util/crc.h"

namespace pbecc::phy {

namespace {

// Field widths shared by all formats.
// The 3-bit format tag makes messages self-identifying: real LTE
// disambiguates formats through exact length matching after rate matching,
// which our repetition-coded control region cannot reproduce — without the
// tag, a message read at the wrong format deterministically yields phantom
// decodes (wrong-format reads pass the CRC-residue test with fabricated
// RNTIs). See decoder::BlindDecoder.
constexpr std::size_t kFormatTagBits = 3;
constexpr std::size_t kMcsBits = 4;  // CQI 1..15
constexpr std::size_t kNdiBits = 1;

// PRB-allocation field width: LTE carriers top out at 100 PRBs (7 bits),
// NR bandwidth parts at 273 (9 bits).
constexpr std::size_t prb_field_bits(DciFormat f) {
  return is_nr_format(f) ? 9 : 7;
}

// HARQ-process field: 8 processes on LTE (3 bits), 16 on NR (4 bits).
constexpr std::size_t harq_field_bits(DciFormat f) {
  return is_nr_format(f) ? 4 : 3;
}

// Per-format padding to give each format a distinct total length;
// stands in for the fields (TPC, DAI, precoding info, ...) we don't model.
// NR paddings are chosen so no NR total collides with an LTE total
// (LTE: 30/34/42/53/49 bits, NR: 37/45/51) — collisions would be benign
// (the format tag disambiguates) but would let one span decode serve two
// formats, weakening the blind-search realism.
constexpr int format_padding(DciFormat f) {
  switch (f) {
    case DciFormat::kFormat0: return 5;
    case DciFormat::kFormat1A: return 9;
    case DciFormat::kFormat1: return 17;
    case DciFormat::kFormat2: return 27;
    case DciFormat::kFormat2A: return 23;
    case DciFormat::kNrFormat0_0: return 7;
    case DciFormat::kNrFormat1_0: return 15;
    case DciFormat::kNrFormat1_1: return 20;
  }
  return 0;
}

}  // namespace

int dci_payload_bits(DciFormat f) {
  // tag + start + nprb + mcs + harq + ndi (+ streams bit for MIMO) + padding
  const int base = static_cast<int>(kFormatTagBits + 2 * prb_field_bits(f) +
                                    kMcsBits + harq_field_bits(f) + kNdiBits);
  return base + (format_is_mimo(f) ? 1 : 0) + format_padding(f);
}

util::BitVec encode_dci(const Dci& d) {
  util::BitVec bits;
  bits.push_uint(static_cast<std::uint64_t>(d.format), kFormatTagBits);
  bits.push_uint(d.prb_start, prb_field_bits(d.format));
  bits.push_uint(d.n_prbs, prb_field_bits(d.format));
  bits.push_uint(static_cast<std::uint64_t>(d.mcs.cqi), kMcsBits);
  bits.push_uint(d.harq_id, harq_field_bits(d.format));
  bits.push_uint(d.new_data ? 1 : 0, kNdiBits);
  if (format_is_mimo(d.format)) {
    bits.push_uint(d.mcs.n_streams == 2 ? 1 : 0, 1);
  } else if (d.mcs.n_streams != 1) {
    throw std::invalid_argument("2-stream DCI requires format 2/2A/1_1");
  }
  bits.push_uint(0, static_cast<std::size_t>(format_padding(d.format)));

  const std::uint16_t crc = util::crc16_rnti(bits, d.rnti);
  bits.push_uint(crc, 16);
  return bits;
}

bool dci_crc_screen(const util::BitVec& bits, DciFormat format) {
  const auto payload_len = static_cast<std::size_t>(dci_payload_bits(format));
  if (bits.size() != payload_len + 16) return false;
  const auto rx_crc =
      static_cast<std::uint16_t>(bits.read_uint(payload_len, 16));
  const auto rnti =
      static_cast<Rnti>(util::crc16_range(bits, 0, payload_len) ^ rx_crc);
  return rnti >= kMinCRnti && rnti <= kMaxCRnti;
}

std::optional<Dci> decode_dci(const util::BitVec& bits, DciFormat format,
                              int n_cell_prbs) {
  const auto payload_len = static_cast<std::size_t>(dci_payload_bits(format));
  if (bits.size() != payload_len + 16) return std::nullopt;

  util::BitVec payload;
  for (std::size_t i = 0; i < payload_len; ++i) payload.push_bit(bits.bit(i));
  const auto rx_crc = static_cast<std::uint16_t>(bits.read_uint(payload_len, 16));
  const auto rnti = static_cast<Rnti>(util::crc16(payload) ^ rx_crc);
  if (rnti < kMinCRnti || rnti > kMaxCRnti) return std::nullopt;

  Dci d;
  d.rnti = rnti;
  d.format = format;
  std::size_t pos = 0;
  if (payload.read_uint(pos, kFormatTagBits) !=
      static_cast<std::uint64_t>(format)) {
    return std::nullopt;  // self-identification mismatch: not this format
  }
  pos += kFormatTagBits;
  const std::size_t prb_bits = prb_field_bits(format);
  const std::size_t harq_bits = harq_field_bits(format);
  d.prb_start = static_cast<std::uint16_t>(payload.read_uint(pos, prb_bits));
  pos += prb_bits;
  d.n_prbs = static_cast<std::uint16_t>(payload.read_uint(pos, prb_bits));
  pos += prb_bits;
  d.mcs.cqi = static_cast<int>(payload.read_uint(pos, kMcsBits));
  pos += kMcsBits;
  d.harq_id = static_cast<std::uint8_t>(payload.read_uint(pos, harq_bits));
  pos += harq_bits;
  d.new_data = payload.read_uint(pos, kNdiBits) != 0;
  pos += kNdiBits;
  d.mcs.n_streams = 1;
  if (format_is_mimo(format)) {
    d.mcs.n_streams = payload.read_uint(pos, 1) != 0 ? 2 : 1;
    pos += 1;
  }
  // Padding must be all-zero; a corrupted message that still passed the
  // CRC-RNTI plausibility test usually fails here.
  const auto padding = static_cast<std::size_t>(format_padding(format));
  if (payload.read_uint(pos, padding) != 0) return std::nullopt;

  // Structural validation against the cell geometry.
  if (d.mcs.cqi < 1 || d.mcs.cqi > 15) return std::nullopt;
  if (d.is_downlink()) {
    if (d.n_prbs == 0 || d.prb_start + d.n_prbs > n_cell_prbs) return std::nullopt;
  }
  return d;
}

}  // namespace pbecc::phy
