#include "phy/dci.h"

#include <stdexcept>

#include "util/crc.h"

namespace pbecc::phy {

namespace {

// Field widths shared by all formats.
// The 3-bit format tag makes messages self-identifying: real LTE
// disambiguates formats through exact length matching after rate matching,
// which our repetition-coded control region cannot reproduce — without the
// tag, a message read at the wrong format deterministically yields phantom
// decodes (wrong-format reads pass the CRC-residue test with fabricated
// RNTIs). See decoder::BlindDecoder.
constexpr std::size_t kFormatTagBits = 3;
constexpr std::size_t kPrbStartBits = 7;  // up to 100 PRBs
constexpr std::size_t kNPrbBits = 7;
constexpr std::size_t kMcsBits = 4;   // CQI 1..15
constexpr std::size_t kHarqBits = 3;  // 8 HARQ processes
constexpr std::size_t kNdiBits = 1;

// Per-format padding to give each format a distinct total length;
// stands in for the fields (TPC, DAI, precoding info, ...) we don't model.
constexpr int format_padding(DciFormat f) {
  switch (f) {
    case DciFormat::kFormat0: return 5;
    case DciFormat::kFormat1A: return 9;
    case DciFormat::kFormat1: return 17;
    case DciFormat::kFormat2: return 27;
    case DciFormat::kFormat2A: return 23;
  }
  return 0;
}

}  // namespace

int dci_payload_bits(DciFormat f) {
  // tag + start + nprb + mcs + harq + ndi (+ streams bit for MIMO) + padding
  const int base = kFormatTagBits + kPrbStartBits + kNPrbBits + kMcsBits +
                   kHarqBits + kNdiBits;
  const bool mimo = f == DciFormat::kFormat2 || f == DciFormat::kFormat2A;
  return base + (mimo ? 1 : 0) + format_padding(f);
}

util::BitVec encode_dci(const Dci& d) {
  util::BitVec bits;
  bits.push_uint(static_cast<std::uint64_t>(d.format), kFormatTagBits);
  bits.push_uint(d.prb_start, kPrbStartBits);
  bits.push_uint(d.n_prbs, kNPrbBits);
  bits.push_uint(static_cast<std::uint64_t>(d.mcs.cqi), kMcsBits);
  bits.push_uint(d.harq_id, kHarqBits);
  bits.push_uint(d.new_data ? 1 : 0, kNdiBits);
  const bool mimo =
      d.format == DciFormat::kFormat2 || d.format == DciFormat::kFormat2A;
  if (mimo) {
    bits.push_uint(d.mcs.n_streams == 2 ? 1 : 0, 1);
  } else if (d.mcs.n_streams != 1) {
    throw std::invalid_argument("2-stream DCI requires format 2/2A");
  }
  bits.push_uint(0, static_cast<std::size_t>(format_padding(d.format)));

  const std::uint16_t crc = util::crc16_rnti(bits, d.rnti);
  bits.push_uint(crc, 16);
  return bits;
}

bool dci_crc_screen(const util::BitVec& bits, DciFormat format) {
  const auto payload_len = static_cast<std::size_t>(dci_payload_bits(format));
  if (bits.size() != payload_len + 16) return false;
  const auto rx_crc =
      static_cast<std::uint16_t>(bits.read_uint(payload_len, 16));
  const auto rnti =
      static_cast<Rnti>(util::crc16_range(bits, 0, payload_len) ^ rx_crc);
  return rnti >= kMinCRnti && rnti <= kMaxCRnti;
}

std::optional<Dci> decode_dci(const util::BitVec& bits, DciFormat format,
                              int n_cell_prbs) {
  const auto payload_len = static_cast<std::size_t>(dci_payload_bits(format));
  if (bits.size() != payload_len + 16) return std::nullopt;

  util::BitVec payload;
  for (std::size_t i = 0; i < payload_len; ++i) payload.push_bit(bits.bit(i));
  const auto rx_crc = static_cast<std::uint16_t>(bits.read_uint(payload_len, 16));
  const auto rnti = static_cast<Rnti>(util::crc16(payload) ^ rx_crc);
  if (rnti < kMinCRnti || rnti > kMaxCRnti) return std::nullopt;

  Dci d;
  d.rnti = rnti;
  d.format = format;
  std::size_t pos = 0;
  if (payload.read_uint(pos, kFormatTagBits) !=
      static_cast<std::uint64_t>(format)) {
    return std::nullopt;  // self-identification mismatch: not this format
  }
  pos += kFormatTagBits;
  d.prb_start = static_cast<std::uint16_t>(payload.read_uint(pos, kPrbStartBits));
  pos += kPrbStartBits;
  d.n_prbs = static_cast<std::uint16_t>(payload.read_uint(pos, kNPrbBits));
  pos += kNPrbBits;
  d.mcs.cqi = static_cast<int>(payload.read_uint(pos, kMcsBits));
  pos += kMcsBits;
  d.harq_id = static_cast<std::uint8_t>(payload.read_uint(pos, kHarqBits));
  pos += kHarqBits;
  d.new_data = payload.read_uint(pos, kNdiBits) != 0;
  pos += kNdiBits;
  d.mcs.n_streams = 1;
  if (format == DciFormat::kFormat2 || format == DciFormat::kFormat2A) {
    d.mcs.n_streams = payload.read_uint(pos, 1) != 0 ? 2 : 1;
    pos += 1;
  }
  // Padding must be all-zero; a corrupted message that still passed the
  // CRC-RNTI plausibility test usually fails here.
  const auto padding = static_cast<std::size_t>(format_padding(format));
  if (payload.read_uint(pos, padding) != 0) return std::nullopt;

  // Structural validation against the cell geometry.
  if (d.mcs.cqi < 1 || d.mcs.cqi > 15) return std::nullopt;
  if (d.is_downlink()) {
    if (d.n_prbs == 0 || d.prb_start + d.n_prbs > n_cell_prbs) return std::nullopt;
  }
  return d;
}

}  // namespace pbecc::phy
