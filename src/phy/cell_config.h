// Static configuration of one LTE/NR component carrier ("cell").
//
// The paper evaluates on commercial 10 MHz and 20 MHz FDD LTE cells;
// bandwidth determines the number of physical resource blocks (PRBs)
// available per subframe and the size of the control region. NR cells
// (rat == Rat::kNr) additionally carry a scalable numerology — the slot
// shrinks to 1 ms / 2^mu while the PRB count grows with the wider
// bandwidth parts — and confine their PDCCH to a CORESET + search-space
// layout instead of LTE's full-width control region.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "nr/coreset.h"
#include "nr/numerology.h"
#include "util/time.h"

namespace pbecc::phy {

using CellId = std::uint32_t;
// Radio Network Temporary Identifier: per-user address within one cell.
using Rnti = std::uint16_t;

// RNTIs 0x0001..0xFFF3 are valid C-RNTIs (3GPP 36.321); outside that range
// lie broadcast/paging identities that the user tracker must ignore.
inline constexpr Rnti kMinCRnti = 0x003D;
inline constexpr Rnti kMaxCRnti = 0xFFF3;

// PRBs per downlink bandwidth (3GPP 36.101 Table 5.6-1).
constexpr int prbs_for_bandwidth_mhz(double mhz) {
  if (mhz == 1.4) return 6;
  if (mhz == 3.0) return 15;
  if (mhz == 5.0) return 25;
  if (mhz == 10.0) return 50;
  if (mhz == 15.0) return 75;
  if (mhz == 20.0) return 100;
  throw std::invalid_argument("unsupported LTE bandwidth");
}

// Radio access technology of a component carrier.
enum class Rat : std::uint8_t { kLte = 0, kNr = 1 };

// Channel coding used on the control channel. The srsLTE stack the paper
// builds on uses the 36.212 convolutional code; repetition is the
// default here because it is an order of magnitude cheaper to blind-decode
// in large simulations while giving the same aggregation-level-dependent
// robustness (see bench_ablation / phy tests for the comparison). kPolar
// is the NR PDCCH's 38.212 code, currently a convolutional stand-in
// behind the nr::polar_* seam (src/nr/polar.h).
enum class PdcchCoding : std::uint8_t { kRepetition, kConvolutional, kPolar };

struct CellConfig {
  CellId id = 0;
  double bandwidth_mhz = 20.0;
  // Carrier frequency, informational (the paper's shared primary cell sits
  // at 1.94 GHz).
  double carrier_ghz = 1.94;
  PdcchCoding pdcch_coding = PdcchCoding::kRepetition;

  // --- NR extension (ignored while rat == Rat::kLte) ---
  Rat rat = Rat::kLte;
  nr::Scs scs = nr::Scs::k30kHz;
  nr::CoresetConfig coreset{};
  nr::SearchSpaceConfig search_space{};
  // Schedule HARQ retransmissions on a mini-slot cadence (2 slots instead
  // of the 8-slot HARQ RTT): retransmissions preempt new data almost
  // immediately, the 38.214 URLLC-style option.
  bool mini_slot_preemption = false;

  int n_prbs() const {
    return rat == Rat::kLte ? prbs_for_bandwidth_mhz(bandwidth_mhz)
                            : nr::nr_prbs_for(scs, bandwidth_mhz);
  }

  // Control channel elements available for DCI messages per tick. LTE:
  // roughly one CCE per 1.33 PRBs with a 3-symbol control region (a simple
  // proportional rule yielding 21/42/84 CCEs for 5/10/20 MHz). NR: the
  // configured CORESET's CCE pool.
  int n_cces() const {
    return rat == Rat::kLte ? (n_prbs() * 84) / 100 : coreset.n_cces();
  }

  // Scheduling ticks (slots) per 1 ms subframe: 1 for LTE, 2^mu for NR.
  int slots_per_subframe() const {
    return rat == Rat::kLte ? 1 : nr::slots_per_subframe(scs);
  }

  // Duration of one scheduling tick (the cell's slot clock).
  util::Duration tick() const {
    return util::kSubframe / slots_per_subframe();
  }

  bool operator==(const CellConfig&) const = default;
};

}  // namespace pbecc::phy
