// Static configuration of one LTE/NR component carrier ("cell").
//
// The paper evaluates on commercial 10 MHz and 20 MHz FDD cells; bandwidth
// determines the number of physical resource blocks (PRBs) available per
// subframe and the size of the control region.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace pbecc::phy {

using CellId = std::uint32_t;
// Radio Network Temporary Identifier: per-user address within one cell.
using Rnti = std::uint16_t;

// RNTIs 0x0001..0xFFF3 are valid C-RNTIs (3GPP 36.321); outside that range
// lie broadcast/paging identities that the user tracker must ignore.
inline constexpr Rnti kMinCRnti = 0x003D;
inline constexpr Rnti kMaxCRnti = 0xFFF3;

// PRBs per downlink bandwidth (3GPP 36.101 Table 5.6-1).
constexpr int prbs_for_bandwidth_mhz(double mhz) {
  if (mhz == 1.4) return 6;
  if (mhz == 3.0) return 15;
  if (mhz == 5.0) return 25;
  if (mhz == 10.0) return 50;
  if (mhz == 15.0) return 75;
  if (mhz == 20.0) return 100;
  throw std::invalid_argument("unsupported LTE bandwidth");
}

// Channel coding used on the control channel. The srsLTE stack the paper
// builds on uses the 36.212 convolutional code; repetition is the
// default here because it is an order of magnitude cheaper to blind-decode
// in large simulations while giving the same aggregation-level-dependent
// robustness (see bench_ablation / phy tests for the comparison).
enum class PdcchCoding : std::uint8_t { kRepetition, kConvolutional };

struct CellConfig {
  CellId id = 0;
  double bandwidth_mhz = 20.0;
  // Carrier frequency, informational (the paper's shared primary cell sits
  // at 1.94 GHz).
  double carrier_ghz = 1.94;
  PdcchCoding pdcch_coding = PdcchCoding::kRepetition;

  int n_prbs() const { return prbs_for_bandwidth_mhz(bandwidth_mhz); }

  // Control channel elements available for DCI messages per subframe.
  // Roughly one CCE per 1.33 PRBs with a 3-symbol control region; we use a
  // simple proportional rule that yields 21/42/84 CCEs for 5/10/20 MHz.
  int n_cces() const { return (n_prbs() * 84) / 100; }

  bool operator==(const CellConfig&) const = default;
};

}  // namespace pbecc::phy
