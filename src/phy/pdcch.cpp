#include "phy/pdcch.h"

#include <stdexcept>

namespace pbecc::phy {

int aggregation_level_for_sinr(double sinr_db) {
  // Conservative link adaptation for the control channel: losing a DCI is
  // far costlier than the extra CCEs (an unseen grant looks like idle
  // spectrum to monitors and stalls the scheduled user), so cells move to
  // high aggregation well before the cell edge.
  if (sinr_db >= 13.0) return 1;
  if (sinr_db >= 8.0) return 2;
  if (sinr_db >= 2.0) return 4;
  return 8;
}

int repetitions_that_fit(int msg_bits, int agg_level) {
  if (msg_bits <= 0) return 0;
  return (agg_level * kBitsPerCce) / msg_bits;
}

PdcchBuilder::PdcchBuilder(const CellConfig& cfg, std::int64_t sf_index)
    : coding_(cfg.pdcch_coding) {
  sf_.cell_id = cfg.id;
  sf_.sf_index = sf_index;
  sf_.n_cces = cfg.n_cces();
  sf_.coding = coding_;
  sf_.bits = util::BitVec(static_cast<std::size_t>(sf_.n_cces) * kBitsPerCce);
  sf_.cce_used.assign(static_cast<std::size_t>(sf_.n_cces), false);
}

int PdcchBuilder::cces_free() const {
  int free = 0;
  for (bool used : sf_.cce_used) free += used ? 0 : 1;
  return free;
}

bool PdcchBuilder::add(const Dci& dci, int aggregation_level) {
  const int al = aggregation_level;
  if (al != 1 && al != 2 && al != 4 && al != 8) {
    throw std::invalid_argument("aggregation level must be 1/2/4/8");
  }
  const util::BitVec msg = encode_dci(dci);
  const auto region_bits = static_cast<std::size_t>(al) * kBitsPerCce;

  util::BitVec block;
  if (coding_ == PdcchCoding::kRepetition) {
    if (repetitions_that_fit(static_cast<int>(msg.size()), al) == 0) {
      return false;
    }
  } else {
    // Convolutional: the rate-matched block must leave actual redundancy
    // (effective rate well below 1) or the Viterbi decoder cannot recover
    // the punctured positions. Long formats therefore need AL >= 2.
    const std::size_t steps = msg.size() + kConvTailBits;
    if (region_bits < 2 * steps) return false;
    block = rate_match(conv_encode(msg), region_bits);
  }

  // First-fit over AL-aligned candidates (the LTE search space structure).
  for (int start = 0; start + al <= sf_.n_cces; start += al) {
    bool free = true;
    for (int c = start; c < start + al; ++c) {
      if (sf_.cce_used[static_cast<std::size_t>(c)]) { free = false; break; }
    }
    if (!free) continue;

    const auto base = static_cast<std::size_t>(start) * kBitsPerCce;
    if (coding_ == PdcchCoding::kRepetition) {
      // Repetition-code the message across the aggregated CCEs; leftover
      // bits keep their (zero) filler value.
      const int reps = repetitions_that_fit(static_cast<int>(msg.size()), al);
      for (int r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < msg.size(); ++i) {
          sf_.bits.set_bit(base + static_cast<std::size_t>(r) * msg.size() + i,
                           msg.bit(i));
        }
      }
    } else {
      for (std::size_t i = 0; i < region_bits; ++i) {
        sf_.bits.set_bit(base + i, block.bit(i));
      }
    }
    for (int c = start; c < start + al; ++c) {
      sf_.cce_used[static_cast<std::size_t>(c)] = true;
    }
    return true;
  }
  return false;
}

bool PdcchBuilder::add_escalating(const Dci& dci, int aggregation_level) {
  for (int al = aggregation_level; al <= 8; al *= 2) {
    if (add(dci, al)) return true;
  }
  return false;
}

PdcchSubframe PdcchBuilder::build() && { return std::move(sf_); }

void apply_bit_noise(PdcchSubframe& sf, double ber, util::Rng& rng) {
  if (ber <= 0.0) return;
  for (std::size_t i = 0; i < sf.bits.size(); ++i) {
    if (rng.bernoulli(ber)) sf.bits.flip_bit(i);
  }
}

}  // namespace pbecc::phy
