#include "phy/pdcch.h"

#include <stdexcept>

namespace pbecc::phy {

int aggregation_level_for_sinr(double sinr_db) {
  // Conservative link adaptation for the control channel: losing a DCI is
  // far costlier than the extra CCEs (an unseen grant looks like idle
  // spectrum to monitors and stalls the scheduled user), so cells move to
  // high aggregation well before the cell edge.
  if (sinr_db >= 13.0) return 1;
  if (sinr_db >= 8.0) return 2;
  if (sinr_db >= 2.0) return 4;
  return 8;
}

int repetitions_that_fit(int msg_bits, int agg_level) {
  if (msg_bits <= 0) return 0;
  return (agg_level * kBitsPerCce) / msg_bits;
}

PdcchBuilder::PdcchBuilder(const CellConfig& cfg, std::int64_t sf_index)
    : cfg_(cfg), coding_(cfg.pdcch_coding) {
  sf_.cell_id = cfg.id;
  sf_.sf_index = sf_index;
  sf_.n_cces = cfg.n_cces();
  sf_.coding = coding_;
  sf_.tick = cfg.tick();
  sf_.bits = util::BitVec(static_cast<std::size_t>(sf_.n_cces) * kBitsPerCce);
  sf_.cce_used.assign(static_cast<std::size_t>(sf_.n_cces), false);
}

int PdcchBuilder::cces_free() const {
  int free = 0;
  for (bool used : sf_.cce_used) free += used ? 0 : 1;
  return free;
}

bool PdcchBuilder::add(const Dci& dci, int aggregation_level) {
  const int al = aggregation_level;
  const bool is_nr = cfg_.rat == Rat::kNr;
  if (al != 1 && al != 2 && al != 4 && al != 8 && !(is_nr && al == 16)) {
    throw std::invalid_argument(is_nr ? "aggregation level must be 1/2/4/8/16"
                                      : "aggregation level must be 1/2/4/8");
  }
  const util::BitVec msg = encode_dci(dci);
  const auto region_bits = static_cast<std::size_t>(al) * kBitsPerCce;

  util::BitVec block;
  if (coding_ == PdcchCoding::kRepetition) {
    if (repetitions_that_fit(static_cast<int>(msg.size()), al) == 0) {
      return false;
    }
  } else {
    // Convolutional (and its kPolar stand-in, see nr/polar.h): the
    // rate-matched block must leave actual redundancy (effective rate well
    // below 1) or the decoder cannot recover the punctured positions. Long
    // formats therefore need AL >= 2.
    const std::size_t steps = msg.size() + kConvTailBits;
    if (region_bits < 2 * steps) return false;
    block = rate_match(conv_encode(msg), region_bits);
  }

  // First-fit over the level's candidates: every AL-aligned start for LTE
  // (the 36.213 UE-specific search space, simplified), the cell's
  // search-space candidate list for NR (38.213 §10.1 — the decoder walks
  // the identical list, so anything placed here is findable).
  std::vector<int> nr_starts;
  if (is_nr) {
    nr_starts = nr::candidate_starts(sf_.n_cces, al,
                                     cfg_.search_space.candidates_for(al));
  }
  const std::size_t n_candidates =
      is_nr ? nr_starts.size()
            : static_cast<std::size_t>(sf_.n_cces >= al ? (sf_.n_cces / al) : 0);
  for (std::size_t cand = 0; cand < n_candidates; ++cand) {
    const int start = is_nr ? nr_starts[cand] : static_cast<int>(cand) * al;
    if (start + al > sf_.n_cces) break;
    bool free = true;
    for (int c = start; c < start + al; ++c) {
      if (sf_.cce_used[static_cast<std::size_t>(c)]) { free = false; break; }
    }
    if (!free) continue;

    const auto base = static_cast<std::size_t>(start) * kBitsPerCce;
    if (coding_ == PdcchCoding::kRepetition) {
      // Repetition-code the message across the aggregated CCEs; leftover
      // bits keep their (zero) filler value.
      const int reps = repetitions_that_fit(static_cast<int>(msg.size()), al);
      for (int r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < msg.size(); ++i) {
          sf_.bits.set_bit(base + static_cast<std::size_t>(r) * msg.size() + i,
                           msg.bit(i));
        }
      }
    } else {
      for (std::size_t i = 0; i < region_bits; ++i) {
        sf_.bits.set_bit(base + i, block.bit(i));
      }
    }
    for (int c = start; c < start + al; ++c) {
      sf_.cce_used[static_cast<std::size_t>(c)] = true;
    }
    return true;
  }
  return false;
}

bool PdcchBuilder::add_escalating(const Dci& dci, int aggregation_level) {
  const int max_al = cfg_.rat == Rat::kNr ? kMaxAggregationLevel : 8;
  for (int al = aggregation_level; al <= max_al; al *= 2) {
    if (add(dci, al)) return true;
  }
  return false;
}

PdcchSubframe PdcchBuilder::build() && { return std::move(sf_); }

void apply_bit_noise(PdcchSubframe& sf, double ber, util::Rng& rng) {
  if (ber <= 0.0) return;
  for (std::size_t i = 0; i < sf.bits.size(); ++i) {
    if (rng.bernoulli(ber)) sf.bits.flip_bit(i);
  }
}

}  // namespace pbecc::phy
