// Link adaptation: CQI <-> MCS <-> spectral efficiency.
//
// The base station picks a modulation-and-coding scheme from the user's
// reported channel quality indicator (CQI); the DCI announces the MCS and
// number of spatial streams, from which both the scheduled user and a
// PBE-CC monitor compute the wireless physical data rate Rw (bits per PRB
// per subframe, paper Eqn 2).
#pragma once

#include <cstdint>

namespace pbecc::phy {

// 3GPP 36.213 Table 7.2.3-1 (4-bit CQI table).
struct CqiEntry {
  int modulation_order;  // bits per symbol: 2 = QPSK, 4 = 16QAM, 6 = 64QAM
  double code_rate;      // effective channel code rate
};

inline constexpr int kNumCqi = 16;  // CQI 0 (out of range) .. 15

const CqiEntry& cqi_entry(int cqi);

// Resource elements usable for data per PRB pair per subframe
// (12 subcarriers x 14 OFDM symbols = 168; reference-signal and control
// overhead is accounted separately via the paper's protocol overhead gamma).
inline constexpr int kResourceElementsPerPrb = 168;

// Physical data rate in bits per PRB per subframe for a given CQI and
// number of spatial streams (1 or 2). Max ~1.87 kbit/PRB/subframe
// = 1.87 Mbit/s/PRB, matching the paper's 1.8 Mbit/s/PRB ceiling (Fig 11b).
double bits_per_prb(int cqi, int n_streams);

// Map a post-equalization SINR (dB) to the highest CQI whose code rate the
// channel supports (standard BLER<=10% operating point approximation).
int cqi_from_sinr_db(double sinr_db);

// 5-bit MCS index carried in the DCI. We use a direct CQI<->MCS identity
// mapping plus the stream count; real deployments use a finer 29-entry
// table but the information content is the same.
struct Mcs {
  int cqi = 1;        // 1..15
  int n_streams = 1;  // 1..2 spatial streams

  double bits_per_prb() const { return phy::bits_per_prb(cqi, n_streams); }
  bool operator==(const Mcs&) const = default;
};

}  // namespace pbecc::phy
