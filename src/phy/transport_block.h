// Transport-block sizing and the per-subframe downlink grant.
//
// One transport block (TB) carries the data scheduled for one user in one
// subframe; its size is n_prbs * bits_per_prb(MCS). TBs fail as a whole
// with probability 1-(1-p)^L (paper Fig 6b) and are then HARQ-retransmitted
// 8 subframes later (paper Fig 3).
#pragma once

#include <cstdint>

#include "phy/dci.h"

namespace pbecc::phy {

// Usable TB payload bits for an allocation.
double transport_block_bits(int n_prbs, const Mcs& mcs);

// As above but from a decoded DCI (downlink formats only).
double transport_block_bits(const Dci& dci);

}  // namespace pbecc::phy
