// Wireless channel model for one user <-> cell link.
//
// Produces the time-varying quantities the rest of the stack consumes:
// RSSI (driven by a mobility trace), log-normal shadowing with a coherence
// time, fast-fading SINR wiggle, the CQI the user would report, and the
// residual data/control bit error rates. Deterministic per seed.
#pragma once

#include <vector>

#include "phy/error_model.h"
#include "phy/mcs.h"
#include "util/rng.h"
#include "util/time.h"

namespace pbecc::phy {

// Piecewise-linear RSSI-vs-time trajectory; models user mobility the way
// the paper's §6.3.2 experiment moves a phone between -85 and -105 dBm
// locations. Time beyond the last waypoint holds the last value.
class MobilityTrace {
 public:
  struct Waypoint {
    util::Time time;
    double rssi_dbm;
  };

  // Stationary user at a fixed RSSI.
  static MobilityTrace stationary(double rssi_dbm);
  // Explicit waypoints (must be time-sorted).
  explicit MobilityTrace(std::vector<Waypoint> waypoints);

  double rssi_at(util::Time t) const;

 private:
  std::vector<Waypoint> waypoints_;
};

struct ChannelState {
  double rssi_dbm = -90.0;
  double sinr_db = 15.0;
  int cqi = 10;
  double data_ber = 1e-6;     // residual BER for transport blocks
  double control_ber = 0.0;   // raw QPSK BER for PDCCH bits
};

struct ChannelConfig {
  MobilityTrace trace = MobilityTrace::stationary(-90.0);
  // Effective noise+interference floor; busier cells see more interference.
  double noise_floor_dbm = -110.0;
  double shadowing_sigma_db = 1.5;
  util::Duration shadowing_coherence = 200 * util::kMillisecond;
  double fast_fading_sigma_db = 0.8;
  std::uint64_t seed = 1;
};

class ChannelModel {
 public:
  explicit ChannelModel(ChannelConfig cfg);

  // Channel state for the subframe containing `t`. Shadowing evolves as a
  // first-order autoregressive (Gauss-Markov) process across coherence
  // intervals; fast fading is redrawn each subframe. Must be called with
  // non-decreasing `t` (the simulator's clock only moves forward).
  ChannelState sample(util::Time t);

 private:
  ChannelConfig cfg_;
  util::Rng rng_;
  util::Time last_shadow_update_ = -1;
  double shadow_db_ = 0.0;
};

}  // namespace pbecc::phy
