// 5G NR scalable numerology (3GPP 38.211 §4.2-4.3).
//
// NR scales the LTE grid by powers of two: subcarrier spacing
// 15 * 2^mu kHz shrinks the slot to 1 ms / 2^mu while keeping 14 OFDM
// symbols per slot. We model the three numerologies the PBE-CC paper's 5G
// discussion (§8) spans — mu 0 (15 kHz, LTE-like 1 ms slots), mu 1
// (30 kHz, 500 us, the common FR1 deployment) and mu 3 (120 kHz, 125 us,
// FR2 mmWave). Because a slot always carries 14 symbols, per-PRB-per-slot
// spectral efficiency matches the LTE per-subframe table (phy/mcs.h); the
// slot *rate* is what scales, which is exactly the quantity the capacity
// estimator normalizes back to bits-per-subframe.
//
// Header-only on purpose: phy::CellConfig embeds these types without
// creating a phy -> nr link dependency.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/time.h"

namespace pbecc::nr {

// Numerology mu; the enum value IS mu, so 15 << mu is the SCS in kHz.
enum class Scs : std::uint8_t {
  k15kHz = 0,   // mu 0: 1 ms slot (LTE-compatible cadence)
  k30kHz = 1,   // mu 1: 500 us slot
  k120kHz = 3,  // mu 3: 125 us slot
};

constexpr int mu_of(Scs s) { return static_cast<int>(s); }
constexpr int scs_khz(Scs s) { return 15 << mu_of(s); }
constexpr int slots_per_subframe(Scs s) { return 1 << mu_of(s); }
constexpr util::Duration slot_duration(Scs s) {
  return util::kSubframe / slots_per_subframe(s);
}

constexpr bool valid_scs_khz(int khz) {
  return khz == 15 || khz == 30 || khz == 120;
}

constexpr Scs scs_from_khz(int khz) {
  if (khz == 15) return Scs::k15kHz;
  if (khz == 30) return Scs::k30kHz;
  if (khz == 120) return Scs::k120kHz;
  throw std::invalid_argument("unsupported NR subcarrier spacing");
}

// Maximum transmission bandwidth in PRBs (3GPP 38.101-1 Table 5.3.2-1 for
// FR1 numerologies, 38.101-2 Table 5.3.2-1 for 120 kHz / FR2).
constexpr int nr_prbs_for(Scs scs, double mhz) {
  switch (scs) {
    case Scs::k15kHz:
      if (mhz == 5.0) return 25;
      if (mhz == 10.0) return 52;
      if (mhz == 20.0) return 106;
      if (mhz == 40.0) return 216;
      if (mhz == 50.0) return 270;
      break;
    case Scs::k30kHz:
      if (mhz == 10.0) return 24;
      if (mhz == 20.0) return 51;
      if (mhz == 40.0) return 106;
      if (mhz == 50.0) return 133;
      if (mhz == 80.0) return 217;
      if (mhz == 100.0) return 273;
      break;
    case Scs::k120kHz:
      if (mhz == 50.0) return 32;
      if (mhz == 100.0) return 66;
      if (mhz == 200.0) return 132;
      if (mhz == 400.0) return 264;
      break;
  }
  throw std::invalid_argument("unsupported NR bandwidth for this SCS");
}

}  // namespace pbecc::nr
