// NR PDCCH layout: CORESET + search spaces (3GPP 38.213 §10.1, Takeda et
// al.'s NR PDCCH overview).
//
// Where LTE's control region spans the whole carrier for 1-3 symbols, NR
// confines the PDCCH to a configured CORESET — a block of resource blocks
// (a multiple of 6) times 1-3 OFDM symbols, six REGs forming one CCE — and
// a UE monitors only the *candidates* its search-space configuration
// enumerates per aggregation level. A PBE-CC monitor therefore does not
// sweep every aligned start the way the LTE blind decoder does: it walks
// exactly the candidate list below, which both the encode side
// (phy::PdcchBuilder) and the decode side (decoder::BlindDecoder) share.
//
// Header-only on purpose: phy::CellConfig embeds the config structs and
// PdcchBuilder calls candidate_starts() without a phy -> nr link edge.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pbecc::nr {

// Aggregation levels an NR search space may use (38.213 Table 10.1-1);
// extends LTE's 1/2/4/8 with AL16 for cell-edge robustness.
inline constexpr int kNrAggregationLevels[] = {1, 2, 4, 8, 16};
inline constexpr int kNumNrAggregationLevels = 5;

// One CORESET: `rbs` resource blocks (multiple of 6) over `symbols` OFDM
// symbols; each CCE is 6 REGs, so the CCE pool is rbs * symbols / 6.
struct CoresetConfig {
  int rbs = 48;
  int symbols = 2;  // 1..3

  int n_cces() const { return rbs * symbols / 6; }

  bool operator==(const CoresetConfig&) const = default;
};

// Candidates monitored per aggregation level {1, 2, 4, 8, 16}. The default
// mirrors a typical UE-specific search-space configuration (Chen et al.,
// "On the Performance of PDCCH in LTE and 5G NR"): dense at low ALs,
// sparse at the robust ones.
struct SearchSpaceConfig {
  std::array<std::uint8_t, 5> candidates = {4, 4, 2, 2, 1};

  int candidates_for(int al) const {
    for (int i = 0; i < kNumNrAggregationLevels; ++i) {
      if (kNrAggregationLevels[i] == al) return candidates[static_cast<std::size_t>(i)];
    }
    return 0;
  }

  bool operator==(const SearchSpaceConfig&) const = default;
};

// Start CCEs of the AL-`al` candidates in a CORESET of `n_cces` CCEs:
// the 38.213 §10.1 hashing with Y_p = 0 and non-interleaved mapping,
// start(m) = L * floor(m * N_cce / (L * M_L)). Every start is a multiple
// of L (the floor's argument is divided *after* scaling by L), which the
// blind decoder's span memo and claimed-CCE pruning rely on. Duplicate
// starts (possible when M_L > N_cce / L) are collapsed; the formula is
// monotone in m, so adjacent-only dedup is exact.
inline std::vector<int> candidate_starts(int n_cces, int al, int n_candidates) {
  std::vector<int> out;
  if (al <= 0 || n_candidates <= 0 || al > n_cces) return out;
  for (int m = 0; m < n_candidates; ++m) {
    const long long scaled = static_cast<long long>(m) * n_cces;
    const int start =
        al * static_cast<int>(scaled / (static_cast<long long>(al) * n_candidates));
    if (start + al > n_cces) break;
    if (out.empty() || out.back() != start) out.push_back(start);
  }
  return out;
}

}  // namespace pbecc::nr
