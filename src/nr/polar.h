// Polar-coding seam for the NR PDCCH (3GPP 38.212 §7.3).
//
// NR control channels are polar-coded where LTE's are convolutional. A
// real CRC-aided successive-cancellation-list decoder is out of scope for
// this reproduction; what the pipeline needs is (a) a coding mode whose
// blind-decode cost and robustness scale with aggregation level and (b) a
// single seam where a real polar codec can land later without touching the
// decoder's candidate-enumeration or batching machinery.
//
// This module is that seam: polar_* functions carry the NR decode path's
// entire dependence on the code, and today they delegate to the 36.212
// convolutional codec (src/phy/convolutional.h) as a documented stand-in.
// The encode side (phy::PdcchBuilder with PdcchCoding::kPolar) uses the
// same conv_encode + rate_match pair directly — tests/nr_test.cpp pins the
// two sides to identical bits so the seam cannot silently split. Swapping
// in a real polar codec means replacing both at once.
#pragma once

#include "phy/convolutional.h"
#include "util/bitvec.h"

namespace pbecc::nr {

// Encode `payload` for the NR PDCCH. Stand-in: the rate-1/3 convolutional
// mother code (output 3 * (payload.size() + kConvTailBits) bits).
util::BitVec polar_encode(const util::BitVec& payload);

// Rate-match the mother code block to `target_bits`.
util::BitVec polar_rate_match(const util::BitVec& coded,
                              std::size_t target_bits);

// Decode one rate-matched block back to `payload_bits` information bits.
// Best-effort like the Viterbi path: callers validate with the CRC.
util::BitVec polar_decode(const util::BitVec& received,
                          std::size_t payload_bits);

// Lockstep batch decode: same contract as phy::conv_decode_batch (equally
// shaped lanes, exact-safe abort thresholds, per-lane metrics). The NR
// blind decoder routes every kPolar candidate wave through here.
void polar_decode_batch(const phy::BatchDecodeJob* jobs, int n_jobs,
                        std::size_t payload_bits,
                        phy::BatchDecodeResult* results);

// Minimum control-region bits for a `msg_bits`-bit message to keep real
// redundancy after rate matching (the PdcchBuilder/BlindDecoder
// feasibility rule, identical on both sides of the seam).
constexpr std::size_t polar_min_region_bits(std::size_t msg_bits) {
  return 2 * (msg_bits + phy::kConvTailBits);
}

}  // namespace pbecc::nr
