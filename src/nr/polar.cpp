#include "nr/polar.h"

namespace pbecc::nr {

util::BitVec polar_encode(const util::BitVec& payload) {
  return phy::conv_encode(payload);
}

util::BitVec polar_rate_match(const util::BitVec& coded,
                              std::size_t target_bits) {
  return phy::rate_match(coded, target_bits);
}

util::BitVec polar_decode(const util::BitVec& received,
                          std::size_t payload_bits) {
  return phy::conv_decode(received, payload_bits);
}

void polar_decode_batch(const phy::BatchDecodeJob* jobs, int n_jobs,
                        std::size_t payload_bits,
                        phy::BatchDecodeResult* results) {
  phy::conv_decode_batch(jobs, n_jobs, payload_bits, results);
}

}  // namespace pbecc::nr
