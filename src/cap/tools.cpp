#include "cap/tools.h"

#include <memory>
#include <optional>

#include "cap/trace_reader.h"
#include "cap/trace_writer.h"

namespace pbecc::cap {

namespace {

void tally(const Record& rec, TraceSummary& s) {
  ++s.records;
  switch (rec.kind) {
    case Record::Kind::kBatch:
      if (s.batches == 0) s.first_sf = rec.batch.sf_index;
      s.last_sf = rec.batch.sf_index;
      ++s.batches;
      s.cell_subframes += rec.batch.cells.size();
      for (const auto& c : rec.batch.cells) ++s.cell_counts[c.cell];
      break;
    case Record::Kind::kWindow:
    case Record::Kind::kProbe: {
      const util::Time t =
          rec.kind == Record::Kind::kWindow ? rec.window.t : rec.probe.t;
      if (s.window_sets + s.probes == 0) s.first_t = t;
      s.last_t = t;
      if (rec.kind == Record::Kind::kWindow) {
        ++s.window_sets;
      } else {
        ++s.probes;
      }
      break;
    }
  }
}

std::vector<std::uint8_t> encoded_header(const TraceHeader& h) {
  ByteWriter w;
  encode_header(h, w);
  return std::move(w).take();
}

// The timestamp a record orders by when slicing: batches use their
// subframe's start, timed records their own t.
util::Time record_time(const Record& rec) {
  switch (rec.kind) {
    case Record::Kind::kBatch:
      return util::subframe_start(rec.batch.sf_index);
    case Record::Kind::kWindow:
      return rec.window.t;
    case Record::Kind::kProbe:
      return rec.probe.t;
  }
  return 0;
}

}  // namespace

bool summarize(const std::string& path, TraceSummary& out, std::string& err) {
  out = TraceSummary{};
  TraceReader reader(path);
  if (!reader.ok()) {
    err = reader.error();
    return false;
  }
  out.header = reader.header();
  Record rec;
  while (reader.next(rec)) tally(rec, out);
  out.chunks = reader.chunks_read();
  out.complete = reader.ok();
  if (!out.complete) out.damage = reader.error();
  return true;
}

bool verify(const std::string& path, TraceSummary& out, std::string& err) {
  out = TraceSummary{};
  TraceReader reader(path);
  if (!reader.ok()) {
    err = reader.error();
    return false;
  }
  out.header = reader.header();
  std::optional<std::int64_t> prev_sf;
  util::Time prev_t = 0;
  Record rec;
  while (reader.next(rec)) {
    if (rec.kind == Record::Kind::kBatch) {
      if (prev_sf && rec.batch.sf_index <= *prev_sf) {
        err = path + ": batch sf_index not strictly increasing (" +
              std::to_string(*prev_sf) + " then " +
              std::to_string(rec.batch.sf_index) + ")";
        return false;
      }
      prev_sf = rec.batch.sf_index;
    } else {
      const util::Time t =
          rec.kind == Record::Kind::kWindow ? rec.window.t : rec.probe.t;
      if (t < prev_t) {
        err = path + ": timed records run backwards (" +
              std::to_string(prev_t) + "us then " + std::to_string(t) + "us)";
        return false;
      }
      prev_t = t;
    }
    tally(rec, out);
  }
  out.chunks = reader.chunks_read();
  out.complete = reader.ok();
  if (!out.complete) {
    err = reader.error();
    return false;
  }
  return true;
}

bool cut(const std::string& in, const std::string& out_path,
         std::int64_t sf_from, std::int64_t sf_to, std::string& err) {
  if (sf_from > sf_to) {
    err = "cut range is empty (from " + std::to_string(sf_from) + " to " +
          std::to_string(sf_to) + ")";
    return false;
  }
  TraceReader reader(in);
  if (!reader.ok()) {
    err = reader.error();
    return false;
  }
  TraceWriter writer(out_path);
  writer.begin(reader.header());
  const util::Time t_from = util::subframe_start(sf_from);
  const util::Time t_to = util::subframe_start(sf_to + 1);
  Record rec;
  while (reader.next(rec)) {
    const util::Time t = record_time(rec);
    if (t < t_from || t >= t_to) continue;
    switch (rec.kind) {
      case Record::Kind::kBatch:
        writer.record_batch(rec.batch);
        break;
      case Record::Kind::kWindow:
        writer.record_window(rec.window.t, rec.window.window);
        break;
      case Record::Kind::kProbe:
        writer.record_probe(rec.probe.t);
        break;
    }
  }
  if (!reader.ok()) {
    err = reader.error();
    return false;
  }
  if (!writer.close()) {
    err = writer.error();
    return false;
  }
  return true;
}

bool merge(const std::vector<std::string>& inputs,
           const std::string& out_path, std::string& err) {
  if (inputs.empty()) {
    err = "merge needs at least one input trace";
    return false;
  }
  std::unique_ptr<TraceWriter> writer;
  std::vector<std::uint8_t> header_bytes;
  std::int64_t last_sf = 0;
  bool any_batch = false;
  for (const auto& in : inputs) {
    TraceReader reader(in);
    if (!reader.ok()) {
      err = reader.error();
      return false;
    }
    if (!writer) {
      header_bytes = encoded_header(reader.header());
      writer = std::make_unique<TraceWriter>(out_path);
      writer->begin(reader.header());
    } else if (encoded_header(reader.header()) != header_bytes) {
      err = in + ": header differs from " + inputs.front() +
            " (merge requires identical pipeline configuration)";
      return false;
    }
    Record rec;
    while (reader.next(rec)) {
      switch (rec.kind) {
        case Record::Kind::kBatch:
          if (any_batch && rec.batch.sf_index < last_sf) {
            err = in + ": batch sf " + std::to_string(rec.batch.sf_index) +
                  " precedes sf " + std::to_string(last_sf) +
                  " from an earlier input (inputs must be in stream order)";
            return false;
          }
          last_sf = rec.batch.sf_index;
          any_batch = true;
          writer->record_batch(rec.batch);
          break;
        case Record::Kind::kWindow:
          writer->record_window(rec.window.t, rec.window.window);
          break;
        case Record::Kind::kProbe:
          writer->record_probe(rec.probe.t);
          break;
      }
    }
    if (!reader.ok()) {
      err = reader.error();
      return false;
    }
  }
  if (!writer->close()) {
    err = writer->error();
    return false;
  }
  return true;
}

}  // namespace pbecc::cap
