// Byte-level wire codec for the .pbt trace format: little-endian fixed
// integers, LEB128 varints, zigzag-coded signed varints, and IEEE-754
// doubles by bit pattern. The reader is fully bounds-checked and never
// throws: any malformed input flips it into a sticky failed state with a
// message, so corrupt traces fail closed instead of reading out of range.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pbecc::cap {

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

class ByteWriter {
 public:
  const std::vector<std::uint8_t>& buf() const { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  // LEB128: low 7 bits first, high bit = continuation (at most 10 bytes).
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_svarint(std::int64_t v) { put_varint(zigzag_encode(v)); }

  void put_f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }

  void put_bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  bool ok() const { return err_.empty(); }
  const std::string& error() const { return err_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok() ? len_ - pos_ : 0; }
  bool at_end() const { return pos_ >= len_; }

  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t get_u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      if (!need(1)) return 0;
      const std::uint8_t b = data_[pos_++];
      if (shift == 63 && (b & 0x7Eu) != 0) {
        fail("varint overflows 64 bits");
        return 0;
      }
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
    }
    fail("varint longer than 10 bytes");
    return 0;
  }

  std::int64_t get_svarint() { return zigzag_decode(get_varint()); }

  double get_f64() {
    if (!need(8)) return 0;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
              << (8 * i);
    }
    pos_ += 8;
    return std::bit_cast<double>(bits);
  }

  // Pointer to `len` raw bytes (advances past them); nullptr on underflow.
  const std::uint8_t* get_bytes(std::size_t len) {
    if (!need(len)) return nullptr;
    const std::uint8_t* p = data_ + pos_;
    pos_ += len;
    return p;
  }

  void fail(std::string msg) {
    if (err_.empty()) err_ = std::move(msg);
  }

 private:
  bool need(std::size_t n) {
    if (!ok()) return false;
    if (len_ - pos_ < n) {
      fail("unexpected end of data at byte " + std::to_string(pos_));
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace pbecc::cap
