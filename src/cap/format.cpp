#include "cap/format.h"

#include <array>

namespace pbecc::cap {

namespace {

// Sanity bounds applied while decoding: values outside these are treated
// as corruption (fail closed) rather than handed to the pipeline.
constexpr int kMaxCces = 4096;
constexpr std::uint64_t kMaxCellsPerBatch = 64;
constexpr std::uint64_t kMaxHeaderCells = 64;

void encode_fault_profile(const fault::FaultProfile& p, ByteWriter& w) {
  w.put_f64(p.blackout_duty);
  w.put_svarint(p.blackout_period);
  w.put_svarint(p.blackout_from);
  w.put_svarint(p.blackout_until);
  w.put_f64(p.sinr_collapse_per_sec);
  w.put_svarint(p.sinr_collapse_duration);
  w.put_f64(p.sinr_collapse_extra_ber);
  w.put_f64(p.false_dci_per_subframe);
  w.put_f64(p.stall_duty);
  w.put_svarint(p.stall_period);
  w.put_f64(p.feedback_loss);
  w.put_f64(p.feedback_corrupt);
  w.put_svarint(p.feedback_delay_spike);
  w.put_f64(p.feedback_spike_duty);
  w.put_svarint(p.feedback_spike_period);
  w.put_f64(p.handover_storm_duty);
  w.put_svarint(p.handover_storm_period);
  w.put_svarint(p.handover_interval);
}

void decode_fault_profile(ByteReader& r, fault::FaultProfile& p) {
  p.blackout_duty = r.get_f64();
  p.blackout_period = r.get_svarint();
  p.blackout_from = r.get_svarint();
  p.blackout_until = r.get_svarint();
  p.sinr_collapse_per_sec = r.get_f64();
  p.sinr_collapse_duration = r.get_svarint();
  p.sinr_collapse_extra_ber = r.get_f64();
  p.false_dci_per_subframe = r.get_f64();
  p.stall_duty = r.get_f64();
  p.stall_period = r.get_svarint();
  p.feedback_loss = r.get_f64();
  p.feedback_corrupt = r.get_f64();
  p.feedback_delay_spike = r.get_svarint();
  p.feedback_spike_duty = r.get_f64();
  p.feedback_spike_period = r.get_svarint();
  p.handover_storm_duty = r.get_f64();
  p.handover_storm_period = r.get_svarint();
  p.handover_interval = r.get_svarint();
}

}  // namespace

namespace {

// Highest PdcchCoding value a given format version may carry: kPolar is
// an NR mode and exists only from version 2 on.
std::uint8_t max_coding_for(std::uint16_t version) {
  return static_cast<std::uint8_t>(version >= 2 ? phy::PdcchCoding::kPolar
                                                : phy::PdcchCoding::kConvolutional);
}

}  // namespace

void encode_header(const TraceHeader& h, ByteWriter& w,
                   std::uint16_t version) {
  w.put_varint(h.own_rnti);
  w.put_varint(h.monitor_seed);
  w.put_svarint(h.tracker.window);
  w.put_varint(static_cast<std::uint64_t>(h.tracker.min_active_subframes));
  w.put_f64(h.tracker.min_average_prbs);
  w.put_u8(h.fault_active ? 1 : 0);
  if (h.fault_active) {
    encode_fault_profile(h.fault, w);
    w.put_varint(h.fault_seed);
  }
  w.put_varint(h.cells.size());
  for (const auto& c : h.cells) {
    w.put_varint(c.id);
    w.put_f64(c.bandwidth_mhz);
    w.put_f64(c.carrier_ghz);
    w.put_u8(static_cast<std::uint8_t>(c.pdcch_coding));
    if (version >= 2) {
      w.put_u8(static_cast<std::uint8_t>(c.rat));
      if (c.rat == phy::Rat::kNr) {
        w.put_u8(static_cast<std::uint8_t>(c.scs));  // value == mu
        w.put_varint(static_cast<std::uint64_t>(c.coreset.rbs));
        w.put_u8(static_cast<std::uint8_t>(c.coreset.symbols));
        for (const std::uint8_t n : c.search_space.candidates) w.put_u8(n);
        w.put_u8(c.mini_slot_preemption ? 1 : 0);
      }
    }
  }
}

bool decode_header(ByteReader& r, TraceHeader& out, std::string& err,
                   std::uint16_t version) {
  out = TraceHeader{};
  out.own_rnti = static_cast<phy::Rnti>(r.get_varint());
  out.monitor_seed = r.get_varint();
  out.tracker.window = r.get_svarint();
  out.tracker.min_active_subframes = static_cast<int>(r.get_varint());
  out.tracker.min_average_prbs = r.get_f64();
  const std::uint8_t fault_flag = r.get_u8();
  if (fault_flag > 1) {
    err = "header: bad fault flag";
    return false;
  }
  out.fault_active = fault_flag == 1;
  if (out.fault_active) {
    decode_fault_profile(r, out.fault);
    out.fault_seed = r.get_varint();
  }
  const std::uint64_t n_cells = r.get_varint();
  if (!r.ok()) {
    err = "header: " + r.error();
    return false;
  }
  if (n_cells == 0 || n_cells > kMaxHeaderCells) {
    err = "header: implausible cell count " + std::to_string(n_cells);
    return false;
  }
  out.cells.reserve(n_cells);
  for (std::uint64_t i = 0; i < n_cells; ++i) {
    phy::CellConfig c;
    c.id = static_cast<phy::CellId>(r.get_varint());
    c.bandwidth_mhz = r.get_f64();
    c.carrier_ghz = r.get_f64();
    const std::uint8_t coding = r.get_u8();
    if (!r.ok()) {
      err = "header: " + r.error();
      return false;
    }
    if (coding > max_coding_for(version)) {
      err = "header: unknown PDCCH coding " + std::to_string(coding);
      return false;
    }
    c.pdcch_coding = static_cast<phy::PdcchCoding>(coding);
    if (version >= 2) {
      const std::uint8_t rat = r.get_u8();
      if (!r.ok()) {
        err = "header: " + r.error();
        return false;
      }
      if (rat > static_cast<std::uint8_t>(phy::Rat::kNr)) {
        err = "header: unknown RAT " + std::to_string(rat);
        return false;
      }
      c.rat = static_cast<phy::Rat>(rat);
      if (c.rat == phy::Rat::kNr) {
        const std::uint8_t mu = r.get_u8();
        const std::uint64_t rbs = r.get_varint();
        const std::uint8_t symbols = r.get_u8();
        std::array<std::uint8_t, 5> candidates{};
        for (auto& n : candidates) n = r.get_u8();
        const std::uint8_t mini = r.get_u8();
        if (!r.ok()) {
          err = "header: " + r.error();
          return false;
        }
        if (mu != 0 && mu != 1 && mu != 3) {
          err = "header: unsupported NR numerology mu=" + std::to_string(mu);
          return false;
        }
        if (rbs == 0 || rbs % 6 != 0 || rbs > 1024) {
          err = "header: implausible CORESET rbs " + std::to_string(rbs);
          return false;
        }
        if (symbols < 1 || symbols > 3) {
          err = "header: implausible CORESET symbols " +
                std::to_string(symbols);
          return false;
        }
        if (mini > 1) {
          err = "header: bad mini-slot flag";
          return false;
        }
        c.scs = static_cast<nr::Scs>(mu);
        c.coreset.rbs = static_cast<int>(rbs);
        c.coreset.symbols = symbols;
        c.search_space.candidates = candidates;
        c.mini_slot_preemption = mini == 1;
      }
    }
    out.cells.push_back(c);
  }
  if (!r.ok()) {
    err = "header: " + r.error();
    return false;
  }
  return true;
}

void encode_record(const Record& rec, DeltaState& ds, ByteWriter& w,
                   std::uint16_t version) {
  w.put_u8(static_cast<std::uint8_t>(rec.kind));
  switch (rec.kind) {
    case Record::Kind::kBatch: {
      const BatchRecord& b = rec.batch;
      w.put_svarint(b.sf_index - ds.prev_sf);
      ds.prev_sf = b.sf_index;
      w.put_varint(b.cells.size());
      for (const auto& c : b.cells) {
        w.put_varint(c.cell);
        if (version >= 2) {
          // Slot clock: slots per subframe, then the capture's slot within
          // the master subframe (c.sf_index on a spsf-per-ms clock).
          const std::int64_t spsf =
              c.tick > 0 ? util::kSubframe / c.tick : 1;
          w.put_varint(static_cast<std::uint64_t>(spsf));
          w.put_svarint(c.sf_index - b.sf_index * spsf);
        }
        w.put_varint(static_cast<std::uint64_t>(c.n_cces));
        w.put_u8(static_cast<std::uint8_t>(c.coding));
        w.put_f64(c.control_ber);
        w.put_f64(c.bits_per_prb);
        const auto bytes = c.bits.to_bytes();
        w.put_bytes(bytes.data(), bytes.size());
        util::BitVec energy;
        for (int i = 0; i < c.n_cces; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          energy.push_bit(idx < c.cce_used.size() && c.cce_used[idx]);
        }
        const auto ebytes = energy.to_bytes();
        w.put_bytes(ebytes.data(), ebytes.size());
      }
      break;
    }
    case Record::Kind::kWindow:
      w.put_svarint(rec.window.t - ds.prev_t);
      ds.prev_t = rec.window.t;
      w.put_svarint(rec.window.window);
      break;
    case Record::Kind::kProbe:
      w.put_svarint(rec.probe.t - ds.prev_t);
      ds.prev_t = rec.probe.t;
      break;
  }
}

bool decode_record(ByteReader& r, DeltaState& ds, Record& out,
                   std::string& err, std::uint16_t version) {
  out = Record{};
  const std::uint8_t tag = r.get_u8();
  if (!r.ok()) {
    err = "record: " + r.error();
    return false;
  }
  switch (tag) {
    case static_cast<std::uint8_t>(Record::Kind::kBatch): {
      out.kind = Record::Kind::kBatch;
      out.batch.sf_index = ds.prev_sf + r.get_svarint();
      ds.prev_sf = out.batch.sf_index;
      const std::uint64_t n = r.get_varint();
      if (!r.ok()) break;
      if (n > kMaxCellsPerBatch) {
        err = "record: implausible batch cell count " + std::to_string(n);
        return false;
      }
      out.batch.cells.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        CellCapture c;
        c.cell = static_cast<phy::CellId>(r.get_varint());
        if (version >= 2) {
          const std::uint64_t spsf = r.get_varint();
          const std::int64_t slot = r.get_svarint();
          if (!r.ok()) break;
          if (spsf == 0 || spsf > 16 || (spsf & (spsf - 1)) != 0) {
            err = "record: implausible slots/subframe " + std::to_string(spsf);
            return false;
          }
          if (slot < 0 || slot >= static_cast<std::int64_t>(spsf)) {
            err = "record: slot " + std::to_string(slot) +
                  " outside subframe (spsf=" + std::to_string(spsf) + ")";
            return false;
          }
          c.tick = util::kSubframe / static_cast<util::Duration>(spsf);
          c.sf_index =
              out.batch.sf_index * static_cast<std::int64_t>(spsf) + slot;
        } else {
          c.tick = util::kSubframe;
          c.sf_index = out.batch.sf_index;
        }
        const std::uint64_t n_cces = r.get_varint();
        if (!r.ok()) break;
        if (n_cces == 0 || n_cces > kMaxCces) {
          err = "record: implausible CCE count " + std::to_string(n_cces);
          return false;
        }
        c.n_cces = static_cast<int>(n_cces);
        const std::uint8_t coding = r.get_u8();
        if (coding > max_coding_for(version)) {
          err = "record: unknown PDCCH coding " + std::to_string(coding);
          return false;
        }
        c.coding = static_cast<phy::PdcchCoding>(coding);
        c.control_ber = r.get_f64();
        c.bits_per_prb = r.get_f64();
        const std::size_t nbits =
            static_cast<std::size_t>(c.n_cces) * phy::kBitsPerCce;
        const std::uint8_t* bytes = r.get_bytes((nbits + 7) / 8);
        if (bytes == nullptr) break;
        c.bits = util::BitVec::from_bytes(bytes, nbits);
        const auto ncces = static_cast<std::size_t>(c.n_cces);
        const std::uint8_t* ebytes = r.get_bytes((ncces + 7) / 8);
        if (ebytes == nullptr) break;
        const auto energy = util::BitVec::from_bytes(ebytes, ncces);
        c.cce_used.resize(ncces);
        for (std::size_t j = 0; j < ncces; ++j) c.cce_used[j] = energy.bit(j);
        out.batch.cells.push_back(std::move(c));
      }
      break;
    }
    case static_cast<std::uint8_t>(Record::Kind::kWindow):
      out.kind = Record::Kind::kWindow;
      out.window.t = ds.prev_t + r.get_svarint();
      ds.prev_t = out.window.t;
      out.window.window = r.get_svarint();
      break;
    case static_cast<std::uint8_t>(Record::Kind::kProbe):
      out.kind = Record::Kind::kProbe;
      out.probe.t = ds.prev_t + r.get_svarint();
      ds.prev_t = out.probe.t;
      break;
    default:
      err = "record: unknown tag " + std::to_string(tag);
      return false;
  }
  if (!r.ok()) {
    err = "record: " + r.error();
    return false;
  }
  return true;
}

}  // namespace pbecc::cap
