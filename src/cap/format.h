// The versioned .pbt binary trace format (DESIGN.md §11).
//
// A trace is everything the PBE-CC measurement pipeline consumes for one
// connection: the monitor's configuration (cells, coding mode, RNTI, seed,
// tracker thresholds, fault schedule) in a self-describing header, then a
// stream of three record kinds —
//   * batch  — one PDCCH tick: every monitored cell's clean control region
//              and per-CCE energy map, plus the control BER and own-CSI
//              bits/PRB the pipeline applied to it (sf_index delta-coded
//              between batches);
//   * window — an RTprop-driven averaging-window update (estimator +
//              tracker), delta-timed against the previous timed record;
//   * probe  — an ACK-time estimator query point (Cf/Cp/active-cells are
//              recomputed on replay, never stored).
// Records are framed into chunks, each protected by a CRC-32, so a
// truncated or bit-flipped file is reported as a structured error instead
// of being decoded into garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cap/wire.h"
#include "decoder/user_tracker.h"
#include "fault/fault.h"
#include "phy/cell_config.h"
#include "phy/pdcch.h"
#include "util/time.h"

namespace pbecc::cap {

inline constexpr std::uint8_t kMagic[4] = {'P', 'B', 'T', '1'};
// Version 2 adds 5G NR: per-cell RAT + numerology + CORESET/search-space
// layout in the header, the kPolar coding mode, and per-cell slot indices
// in batch records (an NR cell contributes one capture per slot, not per
// 1 ms subframe). Version 1 files decode exactly as before; version-1
// encoding is still supported so LTE-only traces stay byte-identical with
// old builds.
inline constexpr std::uint16_t kFormatVersion = 2;
inline constexpr std::uint16_t kMinFormatVersion = 1;
// Upper bound on any length field read from disk; anything larger is
// treated as corruption rather than allocated.
inline constexpr std::uint32_t kMaxChunkBytes = 1u << 26;  // 64 MiB

// Everything needed to rebuild the live pipeline: Monitor(rnti, cells,
// seed, tracker config, fault injector) + CapacityEstimator(primary =
// cells.front()). The cell list keeps configuration order (primary first).
struct TraceHeader {
  phy::Rnti own_rnti = 0;
  std::uint64_t monitor_seed = 0;
  decoder::UserTrackerConfig tracker{};
  bool fault_active = false;
  fault::FaultProfile fault{};
  std::uint64_t fault_seed = 0;
  std::vector<phy::CellConfig> cells;

  bool operator==(const TraceHeader&) const = default;
};

// One cell's slice of a batch record.
struct CellCapture {
  phy::CellId cell = 0;
  // Tick index on the cell's own slot clock and that clock's period. The
  // instant captured is sf_index * tick. For LTE cells (and every v1
  // trace) tick == util::kSubframe and sf_index equals the batch's
  // subframe index; an NR cell at 2^mu slots/subframe appears 2^mu times
  // per batch with consecutive sf_index values. v2 stores the pair as
  // (slots_per_subframe, slot-within-subframe) per cell.
  std::int64_t sf_index = 0;
  util::Duration tick = util::kSubframe;
  int n_cces = 0;
  phy::PdcchCoding coding = phy::PdcchCoding::kRepetition;
  double control_ber = 0;   // base BER the monitor's ber_fn returned
  double bits_per_prb = 0;  // own-CSI Rw hint fed to the estimator
  util::BitVec bits;        // clean control region, n_cces * 72 bits
  // Per-CCE transmit-energy map (n_cces bits): real monitors sense energy
  // before blind-decoding, and the decoder prunes candidates over silent
  // CCEs — replay needs the same map to try the same candidates.
  std::vector<bool> cce_used;

  bool operator==(const CellCapture&) const = default;
};

struct BatchRecord {
  std::int64_t sf_index = 0;  // master 1 ms subframe index
  std::vector<CellCapture> cells;

  bool operator==(const BatchRecord&) const = default;
};

struct WindowRecord {
  util::Time t = 0;
  util::Duration window = 0;

  bool operator==(const WindowRecord&) const = default;
};

struct ProbeRecord {
  util::Time t = 0;

  bool operator==(const ProbeRecord&) const = default;
};

struct Record {
  enum class Kind : std::uint8_t { kBatch = 1, kWindow = 2, kProbe = 3 };
  Kind kind = Kind::kBatch;
  BatchRecord batch;
  WindowRecord window;
  ProbeRecord probe;
};

// Delta-coding state threaded through a record stream; both sides must
// walk records in the same order. Chunk boundaries do not reset it.
struct DeltaState {
  std::int64_t prev_sf = 0;
  util::Time prev_t = 0;
};

// --- Header codec (payload only; file-level framing is the writer's and
// reader's job). decode returns false with `err` set on malformed input.
// `version` selects the wire layout; both sides must agree (the reader
// passes the file header's version).
void encode_header(const TraceHeader& h, ByteWriter& w,
                   std::uint16_t version = kFormatVersion);
bool decode_header(ByteReader& r, TraceHeader& out, std::string& err,
                   std::uint16_t version = kFormatVersion);

// --- Record codec.
void encode_record(const Record& rec, DeltaState& ds, ByteWriter& w,
                   std::uint16_t version = kFormatVersion);
bool decode_record(ByteReader& r, DeltaState& ds, Record& out,
                   std::string& err, std::uint16_t version = kFormatVersion);

}  // namespace pbecc::cap
