#include "cap/trace_reader.h"

#include <cerrno>
#include <cstring>

#include "util/crc.h"

namespace pbecc::cap {

TraceReader::TraceReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    fail(path_ + ": open failed: " + std::strerror(errno));
    return;
  }
  // --- File header: magic, version, framed header payload.
  std::uint8_t fixed[4 + 2 + 4 + 4];
  if (std::fread(fixed, 1, sizeof fixed, file_) != sizeof fixed) {
    fail(path_ + ": truncated file header");
    return;
  }
  ByteReader fr(fixed, sizeof fixed);
  const std::uint8_t* magic = fr.get_bytes(4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    fail(path_ + ": not a .pbt trace (bad magic)");
    return;
  }
  const std::uint16_t version = fr.get_u16();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    fail(path_ + ": unsupported trace version " + std::to_string(version) +
         " (this build reads versions " + std::to_string(kMinFormatVersion) +
         ".." + std::to_string(kFormatVersion) + ")");
    return;
  }
  version_ = version;
  const std::uint32_t header_len = fr.get_u32();
  const std::uint32_t header_crc = fr.get_u32();
  if (header_len == 0 || header_len > kMaxChunkBytes) {
    fail(path_ + ": implausible header length " + std::to_string(header_len));
    return;
  }
  std::vector<std::uint8_t> payload(header_len);
  if (std::fread(payload.data(), 1, header_len, file_) != header_len) {
    fail(path_ + ": truncated header");
    return;
  }
  if (util::crc32(payload.data(), payload.size()) != header_crc) {
    fail(path_ + ": header CRC mismatch (corrupt trace)");
    return;
  }
  ByteReader hr(payload.data(), payload.size());
  std::string err;
  if (!decode_header(hr, header_, err, version_)) {
    fail(path_ + ": " + err);
    return;
  }
  if (!hr.at_end()) {
    fail(path_ + ": trailing bytes after header payload");
  }
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceReader::fail(std::string msg) {
  if (err_.empty()) err_ = std::move(msg);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool TraceReader::load_chunk() {
  if (file_ == nullptr) return false;
  std::uint8_t framing[12];
  const std::size_t got = std::fread(framing, 1, sizeof framing, file_);
  if (got == 0 && std::feof(file_)) {
    // Clean end-of-trace at a chunk boundary.
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  if (got != sizeof framing) {
    fail(path_ + ": truncated chunk framing after " +
         std::to_string(chunks_read_) + " chunk(s)");
    return false;
  }
  ByteReader fr(framing, sizeof framing);
  const std::uint32_t payload_len = fr.get_u32();
  const std::uint32_t n_records = fr.get_u32();
  const std::uint32_t crc = fr.get_u32();
  if (payload_len == 0 || payload_len > kMaxChunkBytes ||
      n_records == 0 || n_records > payload_len) {
    fail(path_ + ": implausible chunk framing (len=" +
         std::to_string(payload_len) + ", records=" +
         std::to_string(n_records) + ")");
    return false;
  }
  std::vector<std::uint8_t> payload(payload_len);
  if (std::fread(payload.data(), 1, payload_len, file_) != payload_len) {
    fail(path_ + ": truncated chunk payload after " +
         std::to_string(chunks_read_) + " chunk(s)");
    return false;
  }
  if (util::crc32(payload.data(), payload.size()) != crc) {
    fail(path_ + ": chunk " + std::to_string(chunks_read_) +
         " CRC mismatch (corrupt trace)");
    return false;
  }
  ByteReader br(payload.data(), payload.size());
  std::string err;
  for (std::uint32_t i = 0; i < n_records; ++i) {
    Record rec;
    if (!decode_record(br, delta_, rec, err, version_)) {
      fail(path_ + ": chunk " + std::to_string(chunks_read_) + ": " + err);
      pending_.clear();  // a chunk is all-or-nothing
      return false;
    }
    pending_.push_back(std::move(rec));
  }
  if (!br.at_end()) {
    fail(path_ + ": chunk " + std::to_string(chunks_read_) +
         " has trailing bytes after its records");
    pending_.clear();
    return false;
  }
  ++chunks_read_;
  return true;
}

bool TraceReader::next(Record& out) {
  if (!ok()) return false;
  while (pending_.empty()) {
    if (!load_chunk()) return false;
  }
  out = std::move(pending_.front());
  pending_.pop_front();
  ++records_read_;
  return true;
}

}  // namespace pbecc::cap
