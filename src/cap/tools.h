// Trace inspection and surgery shared by the trace_tool CLI and the test
// suite: summarize (info/stats), verify (strict integrity + ordering
// checks), cut (extract a subframe range), and merge (concatenate
// same-configuration traces).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cap/format.h"

namespace pbecc::cap {

struct TraceSummary {
  TraceHeader header;
  std::uint64_t records = 0;
  std::uint64_t chunks = 0;
  std::uint64_t batches = 0;
  std::uint64_t cell_subframes = 0;
  std::uint64_t window_sets = 0;
  std::uint64_t probes = 0;
  std::int64_t first_sf = 0, last_sf = 0;  // valid iff batches > 0
  util::Time first_t = 0, last_t = 0;      // valid iff window_sets+probes > 0
  std::map<phy::CellId, std::uint64_t> cell_counts;
  bool complete = false;  // reader reached a clean end-of-trace
  std::string damage;     // set when !complete: what stopped the walk
};

// Walks the whole trace. Returns false (with `err`) only when the header
// itself is unreadable — mid-stream damage still yields the valid prefix,
// with `out.complete == false` and `out.damage` naming the fault.
bool summarize(const std::string& path, TraceSummary& out, std::string& err);

// Strict variant: any damage, or a batch stream whose sf_index is not
// strictly increasing, or timed records running backwards, is an error.
bool verify(const std::string& path, TraceSummary& out, std::string& err);

// Copies records from `in` whose subframe falls in [sf_from, sf_to] —
// batches by sf_index, window/probe records by their timestamp's subframe —
// into a fresh trace at `out_path` with the same header.
bool cut(const std::string& in, const std::string& out_path,
         std::int64_t sf_from, std::int64_t sf_to, std::string& err);

// Concatenates traces recorded with byte-identical headers (same pipeline
// configuration) into `out_path`. Inputs must be in stream order: each
// input's first batch may not precede the previous input's last batch.
bool merge(const std::vector<std::string>& inputs,
           const std::string& out_path, std::string& err);

}  // namespace pbecc::cap
