#include "cap/trace_writer.h"

#include <cerrno>
#include <cstring>

#include "util/crc.h"

namespace pbecc::cap {

namespace {
// Flush the open chunk once its encoded payload crosses this size even if
// the record-count bound has not been reached (keeps chunks of large
// convolutional-PDCCH batches from ballooning).
constexpr std::size_t kChunkFlushBytes = 256 * 1024;
}  // namespace

TraceWriter::TraceWriter(std::string path, std::size_t chunk_records,
                         std::uint16_t version)
    : path_(std::move(path)),
      chunk_records_(chunk_records == 0 ? 1 : chunk_records),
      version_(version) {
  if (version_ < kMinFormatVersion || version_ > kFormatVersion) {
    fail(path_ + ": unwritable trace version " + std::to_string(version_));
  }
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::fail(std::string msg) {
  if (err_.empty()) err_ = std::move(msg);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void TraceWriter::write_bytes(const void* data, std::size_t len) {
  if (file_ == nullptr || len == 0) return;
  if (std::fwrite(data, 1, len, file_) != len) {
    fail(path_ + ": write failed: " + std::strerror(errno));
    return;
  }
  bytes_written_ += len;
}

void TraceWriter::begin(const TraceHeader& header) {
  if (begun_) {
    fail(path_ + ": begin() called twice");
    return;
  }
  begun_ = true;
  if (!ok()) return;
  if (version_ < 2) {
    // Version 1 has no wire layout for NR cells or the polar coding mode.
    for (const auto& c : header.cells) {
      if (c.rat != phy::Rat::kLte ||
          c.pdcch_coding == phy::PdcchCoding::kPolar) {
        fail(path_ + ": version 1 cannot record NR cells (cell " +
             std::to_string(c.id) + ")");
        return;
      }
    }
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    fail(path_ + ": open failed: " + std::strerror(errno));
    return;
  }
  ByteWriter payload;
  encode_header(header, payload, version_);
  ByteWriter framed;
  framed.put_bytes(kMagic, sizeof kMagic);
  framed.put_u16(version_);
  framed.put_u32(static_cast<std::uint32_t>(payload.size()));
  framed.put_u32(util::crc32(payload.buf().data(), payload.size()));
  framed.put_bytes(payload.buf().data(), payload.size());
  write_bytes(framed.buf().data(), framed.size());
}

void TraceWriter::append(const Record& rec) {
  if (!begun_) {
    fail(path_ + ": record before begin()");
    return;
  }
  if (!ok()) return;
  encode_record(rec, delta_, chunk_, version_);
  ++chunk_count_;
  ++records_written_;
  if (chunk_count_ >= chunk_records_ || chunk_.size() >= kChunkFlushBytes) {
    flush_chunk();
  }
}

void TraceWriter::record_batch(const BatchRecord& batch) {
  Record rec;
  rec.kind = Record::Kind::kBatch;
  rec.batch = batch;
  append(rec);
}

void TraceWriter::record_window(util::Time t, util::Duration window) {
  Record rec;
  rec.kind = Record::Kind::kWindow;
  rec.window = {t, window};
  append(rec);
}

void TraceWriter::record_probe(util::Time t) {
  Record rec;
  rec.kind = Record::Kind::kProbe;
  rec.probe = {t};
  append(rec);
}

void TraceWriter::flush_chunk() {
  if (!ok() || chunk_count_ == 0) return;
  ByteWriter framing;
  framing.put_u32(static_cast<std::uint32_t>(chunk_.size()));
  framing.put_u32(static_cast<std::uint32_t>(chunk_count_));
  framing.put_u32(util::crc32(chunk_.buf().data(), chunk_.size()));
  write_bytes(framing.buf().data(), framing.size());
  write_bytes(chunk_.buf().data(), chunk_.size());
  chunk_.clear();
  chunk_count_ = 0;
}

bool TraceWriter::close() {
  if (file_ != nullptr) {
    flush_chunk();
    if (file_ != nullptr && std::fclose(file_) != 0) {
      file_ = nullptr;
      fail(path_ + ": close failed: " + std::strerror(errno));
    }
    file_ = nullptr;
  }
  return ok();
}

}  // namespace pbecc::cap
