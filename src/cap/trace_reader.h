// Streaming .pbt trace reader (DESIGN.md §11).
//
// Fail-closed by construction: every length field is bounds-checked before
// allocation, every chunk's CRC-32 is verified before a single record in
// it is decoded, and any violation — truncation, bit flips, unknown
// versions, implausible counts — parks the reader in a sticky error state
// with a human-readable message. A valid prefix of a damaged trace is
// still served: records from complete, CRC-clean chunks are returned
// before the error is reported.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "cap/format.h"

namespace pbecc::cap {

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  bool ok() const { return err_.empty(); }
  const std::string& error() const { return err_; }
  const TraceHeader& header() const { return header_; }
  // On-disk format version of the open trace (kMinFormatVersion ..
  // kFormatVersion); 0 until the file header parsed.
  std::uint16_t version() const { return version_; }

  // Fills `out` with the next record. Returns false at end-of-trace or on
  // error — distinguish with ok().
  bool next(Record& out);

  std::uint64_t records_read() const { return records_read_; }
  std::uint64_t chunks_read() const { return chunks_read_; }

 private:
  bool load_chunk();  // decode one chunk into pending_
  void fail(std::string msg);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint16_t version_ = 0;
  TraceHeader header_{};
  std::string err_;
  std::deque<Record> pending_;
  DeltaState delta_{};
  std::uint64_t records_read_ = 0;
  std::uint64_t chunks_read_ = 0;
};

}  // namespace pbecc::cap
