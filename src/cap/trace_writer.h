// Buffered .pbt trace capture (DESIGN.md §11).
//
// File layout:
//   magic "PBT1" | version u16 | header_len u32 | header_crc32 u32 | header
//   repeated chunks:
//     payload_len u32 | n_records u32 | payload_crc32 u32 | payload
// All multi-byte integers little-endian. Records accumulate in memory and
// are flushed one CRC-protected chunk at a time, so a capture that dies
// mid-run leaves a trace valid up to its last complete chunk.
//
// Errors (open/IO failures, records before begin()) are sticky: the writer
// goes inert, `ok()` turns false and `error()` names the first failure —
// a capture tap inside the hot path never throws.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "cap/format.h"

namespace pbecc::cap {

class TraceWriter {
 public:
  // `chunk_records` bounds how many records a chunk holds (a size cap on
  // the encoded payload applies too, whichever is hit first). `version`
  // selects the on-disk format: the current kFormatVersion by default;
  // pass 1 to emit traces readable by pre-NR builds (only valid for
  // LTE-only configurations — begin() fails on an NR cell or kPolar
  // coding).
  explicit TraceWriter(std::string path, std::size_t chunk_records = 256,
                       std::uint16_t version = kFormatVersion);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Opens the file and writes the header; must be called exactly once,
  // before the first record. (Deferred from the constructor because the
  // capture tap learns the pipeline configuration only when the scenario
  // builds its PBE client.)
  void begin(const TraceHeader& header);
  bool begun() const { return begun_; }

  void record_batch(const BatchRecord& batch);
  void record_window(util::Time t, util::Duration window);
  void record_probe(util::Time t);

  // Flushes the final chunk and closes the file. Returns ok(). Called by
  // the destructor if not called explicitly.
  bool close();

  bool ok() const { return err_.empty(); }
  const std::string& error() const { return err_; }
  const std::string& path() const { return path_; }
  std::uint16_t version() const { return version_; }
  std::uint64_t records_written() const { return records_written_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void append(const Record& rec);
  void flush_chunk();
  void write_bytes(const void* data, std::size_t len);
  void fail(std::string msg);

  std::string path_;
  std::size_t chunk_records_;
  std::uint16_t version_ = kFormatVersion;
  std::FILE* file_ = nullptr;
  bool begun_ = false;
  std::string err_;

  ByteWriter chunk_;
  std::size_t chunk_count_ = 0;  // records in the open chunk
  DeltaState delta_{};
  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace pbecc::cap
