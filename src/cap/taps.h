// Glue between a live PBE client and the capture subsystem: builds the
// pbe::ClientTaps bundle that routes the client's pipeline inputs into a
// TraceWriter and/or its pipeline outputs into a PipelineDigest. Kept in
// pbecc::cap so pbecc::pbe stays free of any capture dependency — the
// client only sees plain std::function hooks.
#pragma once

#include "cap/replay.h"
#include "cap/trace_writer.h"
#include "pbe/pbe_client.h"

namespace pbecc::cap {

// Either pointer may be null (that side's hooks stay unset). The writer
// must have been begun() with the client's configuration header first;
// build one with capture_header() below.
pbe::ClientTaps make_client_taps(TraceWriter* writer, PipelineDigest* digest);

// The trace header describing a PBE client's pipeline configuration —
// exactly what ReplayDriver needs to rebuild it. `faults` may be null.
TraceHeader capture_header(const pbe::PbeClientConfig& cfg,
                           const fault::FaultInjector* faults);

}  // namespace pbecc::cap
