#include "cap/taps.h"

namespace pbecc::cap {

pbe::ClientTaps make_client_taps(TraceWriter* writer, PipelineDigest* digest) {
  pbe::ClientTaps taps;
  if (writer != nullptr) {
    taps.on_batch = [writer](const std::vector<phy::PdcchSubframe>& sfs,
                             const std::vector<double>& control_ber,
                             const std::vector<double>& bits_per_prb) {
      if (sfs.empty()) return;
      BatchRecord batch;
      // Master 1 ms subframe: every subframe in one batch belongs to the
      // same master tick, so any member's instant / kSubframe works.
      batch.sf_index =
          sfs.front().sf_index * sfs.front().tick / util::kSubframe;
      batch.cells.reserve(sfs.size());
      for (std::size_t i = 0; i < sfs.size(); ++i) {
        CellCapture c;
        c.cell = sfs[i].cell_id;
        c.sf_index = sfs[i].sf_index;
        c.tick = sfs[i].tick;
        c.n_cces = sfs[i].n_cces;
        c.coding = sfs[i].coding;
        c.control_ber = control_ber[i];
        c.bits_per_prb = bits_per_prb[i];
        c.bits = sfs[i].bits;
        c.cce_used = sfs[i].cce_used;
        batch.cells.push_back(std::move(c));
      }
      writer->record_batch(batch);
    };
    taps.on_window_set = [writer](util::Time t, util::Duration w) {
      writer->record_window(t, w);
    };
    taps.on_probe = [writer](util::Time t) { writer->record_probe(t); };
  }
  if (digest != nullptr) {
    taps.on_observations =
        [digest](const std::vector<decoder::CellObservation>& obs) {
          digest->on_observations(obs);
        };
    taps.on_probe_values = [digest](double cf, double cp, int cells) {
      digest->on_probe(cf, cp, cells);
    };
  }
  return taps;
}

TraceHeader capture_header(const pbe::PbeClientConfig& cfg,
                           const fault::FaultInjector* faults) {
  TraceHeader h;
  h.own_rnti = cfg.rnti;
  h.monitor_seed = cfg.seed;
  h.tracker = cfg.tracker;
  h.cells = cfg.cells;
  if (faults != nullptr) {
    h.fault_active = true;
    h.fault = faults->profile();
    h.fault_seed = faults->seed();
  }
  return h;
}

}  // namespace pbecc::cap
