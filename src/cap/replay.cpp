#include "cap/replay.h"

#include <algorithm>

#include "util/time.h"

namespace pbecc::cap {

void PipelineDigest::on_observations(
    const std::vector<decoder::CellObservation>& obs) {
  std::uint64_t h = obs_digest_;
  for (const auto& o : obs) {
    h = util::fnv1a64_value(o.cell, h);
    h = util::fnv1a64_value(o.sf_index, h);
    // Fold the slot-clock period only when it deviates from the 1 ms
    // subframe: LTE-only streams keep their pre-NR digest values.
    if (o.tick != util::kSubframe) h = util::fnv1a64_value(o.tick, h);
    h = util::fnv1a64_value(o.cell_prbs, h);
    // SubframeSummary member-by-member: whole-struct hashing would fold
    // padding bytes in.
    h = util::fnv1a64_value(o.summary.own_prbs, h);
    h = util::fnv1a64_value(o.summary.own_bits_per_prb, h);
    h = util::fnv1a64_value(o.summary.allocated_prbs, h);
    h = util::fnv1a64_value(o.summary.idle_prbs, h);
    h = util::fnv1a64_value(o.summary.raw_active_users, h);
    h = util::fnv1a64_value(o.summary.data_users, h);
  }
  obs_digest_ = h;
  observations_ += obs.size();
}

void PipelineDigest::on_probe(double cf_bits_sf, double cp_bits_sf,
                              int active_cells) {
  std::uint64_t h = probe_digest_;
  h = util::fnv1a64_value(cf_bits_sf, h);
  h = util::fnv1a64_value(cp_bits_sf, h);
  h = util::fnv1a64_value(active_cells, h);
  probe_digest_ = h;
  ++probes_;
}

ReplayDriver::ReplayDriver(const TraceHeader& header, PipelineDigest* digest)
    : digest_(digest) {
  if (header.fault_active) {
    faults_ =
        std::make_unique<fault::FaultInjector>(header.fault, header.fault_seed);
  }
  // Mirrors PbeClient's construction exactly: primary cell, observation
  // routing into the estimator, and the same `now` convention (the tick
  // after the observed subframe).
  if (!header.cells.empty()) {
    estimator_.set_primary_cell(header.cells.front().id);
  }
  monitor_ = std::make_unique<decoder::Monitor>(
      header.own_rnti, header.cells,
      [this](const std::vector<decoder::CellObservation>& obs) {
        if (obs.empty()) return;
        if (digest_ != nullptr) digest_->on_observations(obs);
        // PbeClient's `now` formula, verbatim: end of the latest tick in
        // the fused emission — keep the two in lockstep.
        util::Time now = 0;
        for (const auto& o : obs) {
          now = std::max(now, (o.sf_index + 1) * o.tick);
        }
        estimator_.on_observations(now, obs, [this](phy::CellId c) {
          const auto it = cur_bpp_.find(c);
          return it != cur_bpp_.end() ? it->second : 0.0;
        });
      },
      [this](phy::CellId c) {
        const auto it = cur_ber_.find(c);
        return it != cur_ber_.end() ? it->second : 0.0;
      },
      header.tracker, header.monitor_seed, faults_.get());
}

void ReplayDriver::step(const Record& rec) {
  switch (rec.kind) {
    case Record::Kind::kBatch: {
      std::vector<phy::PdcchSubframe> sfs;
      sfs.reserve(rec.batch.cells.size());
      for (const auto& c : rec.batch.cells) {
        cur_ber_[c.cell] = c.control_ber;
        cur_bpp_[c.cell] = c.bits_per_prb;
        phy::PdcchSubframe sf;
        sf.cell_id = c.cell;
        sf.sf_index = c.sf_index;
        sf.tick = c.tick;
        sf.n_cces = c.n_cces;
        sf.coding = c.coding;
        sf.bits = c.bits;
        sf.cce_used = c.cce_used;
        sfs.push_back(std::move(sf));
      }
      monitor_->on_pdcch_batch(sfs);
      if (batch_end_) batch_end_(rec.batch.sf_index);
      ++stats_.batches;
      stats_.cell_subframes += sfs.size();
      break;
    }
    case Record::Kind::kWindow:
      // Same pair of calls, in the same order, as the live client's
      // RTprop update in fill_feedback.
      estimator_.set_window(rec.window.window);
      monitor_->set_tracker_window(rec.window.window);
      ++stats_.window_sets;
      break;
    case Record::Kind::kProbe: {
      // The live client's estimator query sequence at an ACK, verbatim —
      // these calls expire window state, so order and time must match.
      const double cf = estimator_.fair_share_capacity(rec.probe.t);
      const double cp = estimator_.available_capacity(rec.probe.t);
      const int cells = estimator_.active_cell_count(rec.probe.t);
      if (digest_ != nullptr) digest_->on_probe(cf, cp, cells);
      ++stats_.probes;
      break;
    }
  }
}

ReplayStats ReplayDriver::run(TraceReader& reader) {
  Record rec;
  while (reader.next(rec)) step(rec);
  return stats_;
}

}  // namespace pbecc::cap
