// Replay-driven monitor pipeline (DESIGN.md §11).
//
// ReplayDriver rebuilds the measurement pipeline a live PBE client runs —
// per-cell blind decoders, message fusion, user trackers, and the capacity
// estimator — purely from a trace header, then streams recorded batches
// into Monitor::on_pdcch_batch. No MAC simulator, base station, or event
// loop is instantiated: the decode path runs as fast as the CPU allows,
// and (like the live batch path) is byte-identical for any thread count.
//
// PipelineDigest is the fidelity instrument: both the live client (via
// pbe::ClientTaps) and the replay fold the same pipeline outputs — every
// CellObservation field, and the estimator's Cf/Cp/active-cell answers at
// each recorded probe point — into order-sensitive FNV-1a digests, so
// record→replay equality is one 64-bit compare per stream.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cap/format.h"
#include "cap/trace_reader.h"
#include "decoder/monitor.h"
#include "fault/fault.h"
#include "pbe/capacity_estimator.h"
#include "util/digest.h"

namespace pbecc::cap {

// Order-sensitive digest over the pipeline's two output streams.
class PipelineDigest {
 public:
  void on_observations(const std::vector<decoder::CellObservation>& obs);
  void on_probe(double cf_bits_sf, double cp_bits_sf, int active_cells);

  std::uint64_t observation_digest() const { return obs_digest_; }
  std::uint64_t probe_digest() const { return probe_digest_; }
  std::uint64_t observations() const { return observations_; }
  std::uint64_t probes() const { return probes_; }

  bool operator==(const PipelineDigest&) const = default;

 private:
  std::uint64_t obs_digest_ = util::kFnv1aOffset;
  std::uint64_t probe_digest_ = util::kFnv1aOffset;
  std::uint64_t observations_ = 0;
  std::uint64_t probes_ = 0;
};

struct ReplayStats {
  std::uint64_t batches = 0;
  std::uint64_t cell_subframes = 0;
  std::uint64_t window_sets = 0;
  std::uint64_t probes = 0;
};

class ReplayDriver {
 public:
  // `digest` (optional, unowned) receives the pipeline outputs exactly as
  // a live client's capture digest does.
  explicit ReplayDriver(const TraceHeader& header,
                        PipelineDigest* digest = nullptr);

  // Apply one record: batches decode, window records resize the averaging
  // windows, probes query the estimator.
  void step(const Record& rec);

  // Drain a reader to end-of-trace or error (check reader.ok()).
  ReplayStats run(TraceReader& reader);

  // Mirror of pbe::ClientTaps::on_batch_end: fires after each batch
  // record's decode, with the record's subframe index. A plain
  // std::function keeps this module free of any telemetry dependency;
  // tel::PipelineSampler plugs in here so a replay exports the same
  // est.* / decode.* series the live run recorded.
  void set_batch_end_hook(std::function<void(std::int64_t)> hook) {
    batch_end_ = std::move(hook);
  }

  const ReplayStats& stats() const { return stats_; }
  const decoder::Monitor& monitor() const { return *monitor_; }
  const pbe::CapacityEstimator& estimator() const { return estimator_; }

 private:
  PipelineDigest* digest_;
  std::unique_ptr<fault::FaultInjector> faults_;
  pbe::CapacityEstimator estimator_;
  std::unique_ptr<decoder::Monitor> monitor_;
  // Latest recorded per-cell inputs, consulted by the monitor's ber_fn and
  // the estimator's own-CSI hint during the current batch.
  std::map<phy::CellId, double> cur_ber_;
  std::map<phy::CellId, double> cur_bpp_;
  std::function<void(std::int64_t)> batch_end_;
  ReplayStats stats_{};
};

}  // namespace pbecc::cap
