#include "bwe/trendline.h"

#include <algorithm>
#include <cmath>

namespace pbecc::bwe {

TrendlineEstimator::TrendlineEstimator(TrendlineConfig cfg)
    : cfg_(cfg), threshold_(cfg.initial_threshold_ms) {}

void TrendlineEstimator::reset() {
  points_.clear();
  epoch_ = -1;
  have_sample_ = false;
  smoothed_ms_ = 0.0;
  slope_ = 0.0;
  modified_trend_ = 0.0;
  over_since_ = -1;
  over_count_ = 0;
  prev_slope_ = 0.0;
  state_ = BandwidthUsage::kNormal;
  // The threshold is *not* reset: it encodes what the link's noise floor
  // looked like, which survives a feed gap.
}

void TrendlineEstimator::update(util::Time arrival, double one_way_delay_ms) {
  if (epoch_ < 0) epoch_ = arrival;
  if (!have_sample_) {
    have_sample_ = true;
    smoothed_ms_ = one_way_delay_ms;
  } else {
    smoothed_ms_ = cfg_.smoothing * smoothed_ms_ +
                   (1.0 - cfg_.smoothing) * one_way_delay_ms;
  }

  points_.push_back(
      {static_cast<double>(arrival - epoch_) / 1000.0, smoothed_ms_});
  if (points_.size() > cfg_.window_size) {
    points_.pop_front();
    // Re-anchor the epoch at the window head so t_ms stays small over
    // unbounded runs (a multi-hour soak would otherwise push t into the
    // 1e9 range and shred the fit's precision). The subtraction is applied
    // to every stored point, so the fit is unchanged.
    const double t0 = points_.front().t_ms;
    if (t0 > 0) {
      epoch_ += static_cast<util::Time>(t0 * 1000.0);
      for (Point& p : points_) p.t_ms -= t0;
    }
  }

  // Exact least-squares fit over the window: recomputed from the stored
  // points on every update, never maintained incrementally (see header).
  if (points_.size() >= 2) {
    const double n = static_cast<double>(points_.size());
    double sum_t = 0.0, sum_d = 0.0;
    for (const Point& p : points_) {
      sum_t += p.t_ms;
      sum_d += p.d_ms;
    }
    const double mean_t = sum_t / n;
    const double mean_d = sum_d / n;
    double cov = 0.0, var = 0.0;
    for (const Point& p : points_) {
      cov += (p.t_ms - mean_t) * (p.d_ms - mean_d);
      var += (p.t_ms - mean_t) * (p.t_ms - mean_t);
    }
    slope_ = var > 0.0 ? cov / var : 0.0;
  } else {
    slope_ = 0.0;
  }

  detect(arrival);
  last_update_ = arrival;
}

void TrendlineEstimator::detect(util::Time arrival) {
  const double count_scale =
      std::min<double>(static_cast<double>(points_.size()), 60.0);
  modified_trend_ = slope_ * count_scale * cfg_.gain;

  if (points_.size() < cfg_.window_size) {
    // Window still filling (startup or post-reset): the fit is too noisy
    // to act on either way.
    state_ = BandwidthUsage::kNormal;
    over_since_ = -1;
    over_count_ = 0;
    adapt_threshold(arrival);
    return;
  }

  if (modified_trend_ > threshold_) {
    if (over_since_ < 0) {
      over_since_ = arrival;
      over_count_ = 0;
    }
    ++over_count_;
    // Sustained, repeated, and not already easing off: overuse.
    if (arrival - over_since_ >= cfg_.overuse_time && over_count_ > 1 &&
        slope_ >= prev_slope_) {
      state_ = BandwidthUsage::kOverusing;
    }
  } else if (modified_trend_ < -threshold_) {
    over_since_ = -1;
    over_count_ = 0;
    state_ = BandwidthUsage::kUnderusing;
  } else {
    over_since_ = -1;
    over_count_ = 0;
    state_ = BandwidthUsage::kNormal;
  }
  prev_slope_ = slope_;
  adapt_threshold(arrival);
}

void TrendlineEstimator::adapt_threshold(util::Time arrival) {
  const double abs_trend = std::abs(modified_trend_);
  // Ignore wild outliers (goog_cc: a spike >15 ms above gamma would drag
  // the threshold up and blind the detector to real congestion onset).
  if (abs_trend > threshold_ + 15.0) {
    last_update_ = arrival;
    return;
  }
  const double k = abs_trend < threshold_ ? cfg_.k_down : cfg_.k_up;
  const double dt_ms =
      last_update_ >= 0
          ? std::min(static_cast<double>(arrival - last_update_) / 1000.0,
                     100.0)
          : 0.0;
  threshold_ += k * (abs_trend - threshold_) * dt_ms;
  threshold_ =
      std::clamp(threshold_, cfg_.min_threshold_ms, cfg_.max_threshold_ms);
}

}  // namespace pbecc::bwe
