// Delay-gradient trendline filter with adaptive overuse detection, in the
// style of goog_cc (WebRTC's send-side delay-based BWE; see SNIPPETS.md and
// ROADMAP item 4). This is the endpoint-only half of the hybrid estimator:
// it needs nothing but per-ACK one-way-delay samples, so it keeps producing
// a congestion verdict when the physical-layer feed is blind.
//
// Pipeline per sample:
//   1. EWMA-smooth the one-way delay (jitter suppression),
//   2. least-squares slope of smoothed delay vs arrival time over a small
//      sliding window (the "trendline": ms of queue growth per ms),
//   3. compare the count-scaled slope against an *adaptive* threshold
//      (gamma adapts toward |trend| with asymmetric gains, so a noisy link
//      widens its own deadband) and require the excursion to be sustained
//      before declaring overuse.
//
// Float-drift discipline (the PR-4 WindowedMean lesson, DESIGN.md §10): the
// slope is recomputed exactly over the window's points on every update —
// never maintained incrementally — so there is no subtract-rounding residue
// to accumulate over multi-hour soaks. The window is O(20) points, so the
// exact pass is noise. The 10M-update regression test in bwe_test holds the
// slope within 1e-9 of a brute-force mirror.
#pragma once

#include <cstddef>
#include <deque>

#include "util/time.h"

namespace pbecc::bwe {

// The congestion verdict the detector hands the rate controller.
enum class BandwidthUsage : std::uint8_t {
  kNormal = 0,
  kOverusing = 1,
  kUnderusing = 2,
};

struct TrendlineConfig {
  // Sliding window of (arrival time, smoothed delay) points the slope is
  // fit over. Small keeps the fit responsive and the exact recompute cheap.
  std::size_t window_size = 20;
  // EWMA retention on the delay samples (goog_cc's smoothing_coef).
  double smoothing = 0.9;
  // The fitted slope is scaled by min(#points, 60) x this gain before the
  // threshold comparison (goog_cc's threshold_gain).
  double gain = 4.0;
  // Adaptive threshold gamma: moves toward |trend| with k_up when below it
  // and k_down when above (down faster than up, per Holmer et al.), within
  // [min_threshold, max_threshold]. Units: milliseconds.
  double initial_threshold_ms = 12.5;
  double min_threshold_ms = 6.0;
  double max_threshold_ms = 600.0;
  double k_up = 0.0087;
  double k_down = 0.039;
  // An excursion beyond gamma must persist this long (and over >= 2
  // samples, with a non-decreasing slope) before kOverusing is declared.
  util::Duration overuse_time = 10 * util::kMillisecond;
};

class TrendlineEstimator {
 public:
  explicit TrendlineEstimator(TrendlineConfig cfg = {});

  // One ACK's sample: `arrival` is the ACK receipt time on the sender's
  // clock, `one_way_delay_ms` the data packet's measured one-way delay.
  void update(util::Time arrival, double one_way_delay_ms);

  // Drop all window state (exact reset: every accumulator returns to its
  // construction value, no residue). Call after a long feed gap.
  void reset();

  // Raw fitted slope: ms of delay growth per ms of arrival time.
  double slope() const { return slope_; }
  // Count-scaled, gain-multiplied trend the threshold compares against.
  double modified_trend() const { return modified_trend_; }
  double threshold_ms() const { return threshold_; }
  BandwidthUsage state() const { return state_; }
  std::size_t num_points() const { return points_.size(); }

 private:
  struct Point {
    double t_ms;  // arrival relative to the window epoch
    double d_ms;  // smoothed delay
  };

  void detect(util::Time arrival);
  void adapt_threshold(util::Time arrival);

  TrendlineConfig cfg_;
  std::deque<Point> points_;
  util::Time epoch_ = -1;  // window epoch: first arrival after a reset
  bool have_sample_ = false;
  double smoothed_ms_ = 0.0;
  double slope_ = 0.0;
  double modified_trend_ = 0.0;
  double threshold_;
  util::Time last_update_ = -1;
  // Sustained-overuse bookkeeping.
  util::Time over_since_ = -1;
  int over_count_ = 0;
  double prev_slope_ = 0.0;
  BandwidthUsage state_ = BandwidthUsage::kNormal;
};

}  // namespace pbecc::bwe
