// AIMD rate control for the delay-gradient estimator, after goog_cc's
// AimdRateControl + LinkCapacityTracker (SNIPPETS.md snippet 2;
// /root/related naivertc idiom). The trendline's verdict drives a
// three-state controller:
//
//   kOverusing  -> Decrease: cut to beta x the acked bitrate and teach the
//                  capacity tracker what the link just demonstrated;
//   kUnderusing -> Hold: the queue built by an overshoot is draining —
//                  touching the rate now would misread the transient;
//   kNormal     -> Increase: multiplicative (8%/s) while far from the
//                  tracked link capacity, additive (~one MSS per RTT) once
//                  inside its confidence band.
//
// The LinkCapacityTracker keeps an EWMA of capacity-revealing samples
// (acked bitrate at each overuse-triggered decrease) plus a variance
// estimate; "near capacity" means within 3 standard deviations, which is
// what flips increase from multiplicative to additive. Estimates far
// outside the band reset the tracker — the link genuinely changed.
#pragma once

#include <optional>

#include "net/packet.h"
#include "util/rate.h"
#include "util/time.h"

#include "bwe/trendline.h"

namespace pbecc::bwe {

class LinkCapacityTracker {
 public:
  // A capacity-revealing sample: the acked bitrate at the moment overuse
  // forced a decrease (the link was saturated, so this *is* capacity).
  void on_overuse(double acked_bps);
  // A delay-based estimate far outside the band invalidates the tracked
  // capacity (handover, carrier change): start over.
  void maybe_reset(double estimate_bps);

  bool has_estimate() const { return estimate_bps_.has_value(); }
  double estimate_bps() const { return estimate_bps_.value_or(0.0); }
  // Standard deviation of the tracked capacity, in bps.
  double stddev_bps() const;

 private:
  std::optional<double> estimate_bps_;
  // Variance is tracked normalized by the estimate (goog_cc idiom) so a
  // 100 Mbit/s link and a 1 Mbit/s link use comparable bands.
  double var_norm_ = 0.4;
};

struct AimdConfig {
  double beta = 0.9;  // multiplicative decrease factor
  // Multiplicative increase while far from the tracked capacity. Stock
  // goog_cc uses 1.08/s — tuned for video sources that also send probe
  // bursts. This estimator has no prober and must re-find cellular
  // capacity on its own after an outage, so it climbs much faster and
  // relies on the trendline cut (plus the max_vs_acked clamp) to rein in
  // the overshoot.
  double increase_per_second = 2.0;
  util::RateBps min_rate = 1e5;
  util::RateBps max_rate = 2.5e9;
  std::int32_t mss = net::kDefaultMss;
  // Increase is clamped to this multiple of the acked bitrate, so the
  // target cannot run away from what the path demonstrably delivers.
  double max_vs_acked = 1.25;
  // Minimum spacing between multiplicative decreases. A sustained overuse
  // verdict arrives on every ACK; cutting on each one compounds through
  // the acked bitrate (pace lower -> deliver lower -> cut lower) and
  // spirals to the floor. One cut, then let the queue drain and the acked
  // estimate settle before judging again. The effective interval is the
  // smoothed RTT clamped to [min_decrease_interval, max_decrease_interval].
  util::Duration min_decrease_interval = 150 * util::kMillisecond;
  // Upper clamp on that spacing. The RTT fed in includes the queue the
  // overshoot itself built, so after a sharp capacity drop it can inflate
  // faster than wall-clock time passes — an uncapped spacing then recedes
  // forever and the controller never cuts again while the queue grows
  // without bound (cut-starvation spiral; see bwe_test's capacity-drop
  // convergence test).
  util::Duration max_decrease_interval = 500 * util::kMillisecond;
  // Growth rate during startup_grace. The steady-state rate is tuned for
  // re-finding capacity after an outage, but a fresh flow knows nothing —
  // like BBR's startup it should discover the link in RTTs, not seconds.
  // The max_vs_acked clamp stays active, so the effective climb is a
  // ladder bounded by demonstrated delivery, not open-loop growth.
  double startup_increase_per_second = 6.0;
  // For this long after the first update the target will not drop below
  // the initial rate, and overuse cuts do not teach the capacity tracker.
  // The first verdicts of a flow fire on the startup-burst delay
  // transient with an acked basis that reflects the pacing ramp, not the
  // link; cutting on them digs a hole that takes seconds to climb out of
  // (and seeds the tracker with a bogus "capacity").
  util::Duration startup_grace = util::kSecond;
};

class AimdRateControl {
 public:
  explicit AimdRateControl(AimdConfig cfg, util::RateBps initial_rate);

  // One verdict from the trendline; `acked_bps` is the current acked
  // bitrate (0 when unknown), `rtt` the smoothed RTT.
  util::RateBps update(util::Time now, BandwidthUsage usage, double acked_bps,
                       util::Duration rtt);

  // Raise the target to at least `bps` (clamped to the configured range).
  // Used by the hybrid sender to jump-start the sidecar from server-side
  // capacity memory when the PHY feed collapses — the next overuse verdict
  // cuts it right back if the memory is stale.
  void seed(util::RateBps bps);

  // Out-of-band multiplicative decrease, driven by evidence the trendline
  // cannot see (DelayBasedBwe's standing-queue *level* detector: a queue
  // that has stopped growing has zero delay gradient, so kOverusing never
  // fires no matter how deep it stands). Cuts to beta x the acked bitrate,
  // teaches the capacity tracker (the link is saturated — that *is*
  // capacity), and parks in Hold so the drain is not misread as underuse
  // headroom. Respects min_decrease_interval so a level cut cannot
  // compound with a fresh trendline cut.
  void force_decrease(util::Time now, double acked_bps);

  util::RateBps target_bps() const { return target_; }
  const LinkCapacityTracker& link_capacity() const { return capacity_; }
  // Time of the most recent overuse cut (-1 if none yet). The hybrid
  // sender treats a fresh cut as congestion evidence that quarantines
  // claim re-seeding.
  util::Time last_decrease() const { return last_decrease_; }
  // Exposed for tests: true while the controller is in its post-overuse
  // hold (underuse / queue draining).
  bool holding() const { return state_ == State::kHold; }

 private:
  enum class State { kHold, kIncrease, kDecrease };

  void change_state(BandwidthUsage usage);

  AimdConfig cfg_;
  LinkCapacityTracker capacity_;
  util::RateBps target_;
  util::RateBps initial_target_;
  State state_ = State::kHold;
  util::Time first_update_ = -1;
  util::Time last_update_ = -1;
  util::Time last_decrease_ = -1;
  // True between seed() and the first piece of evidence (an overuse cut,
  // or the acked bitrate catching up): the max_vs_acked clamp is
  // suspended, otherwise it would snap the seeded target straight back to
  // the pre-seed acked level and the jump-start would be a no-op.
  bool seeded_ = false;
};

}  // namespace pbecc::bwe
