// DelayBasedBwe: the complete endpoint-only delay-gradient bandwidth
// estimator (goog_cc lineage — trendline filter -> adaptive overuse
// detector -> AIMD rate control with a LinkCapacityTracker).
//
// Two roles in this repository (ROADMAP item 4 / DESIGN.md §13):
//   * standalone congestion controller (baselines::GoogCc, algo "gcc"),
//     the delay-based baseline the paper's family of competitors lacked;
//   * always-on sidecar inside the hybrid PBE sender: it consumes the
//     same AckSample stream the PHY feedback rides in on, so whenever the
//     physical-layer estimate goes blind or rogue there is a continuously
//     maintained, endpoint-only estimate to blend toward.
//
// Everything here is a pure function of the ACK stream — no RNG, no wall
// clock — so hybrid runs stay byte-identical across thread counts and
// record→replay (the determinism suite gates this).
#pragma once

#include "net/congestion_controller.h"
#include "util/windowed_filter.h"

#include "bwe/aimd.h"
#include "bwe/trendline.h"

namespace pbecc::bwe {

struct DelayBasedBweConfig {
  TrendlineConfig trendline{};
  AimdConfig aimd{};
  util::RateBps initial_rate = 2e6;
  // Acked-bitrate estimate: mean of the flow driver's delivery-rate
  // samples over this window (uses util::WindowedMean, which already
  // carries the exact re-sum discipline from DESIGN.md §10).
  util::Duration ack_rate_window = 250 * util::kMillisecond;
  // A silence longer than this resets the trendline window: delay samples
  // from before a feed gap describe a queue that no longer exists.
  util::Duration silence_reset = 500 * util::kMillisecond;
  // Fallback window for the acked-bitrate estimate when ACK loss keeps
  // the short window from filling (see delay_bwe.cpp).
  util::Duration ack_rate_long_window = util::kSecond;
  // Growth headroom over the acked estimate while in that sparse-ACK
  // regime. Much tighter than aimd.max_vs_acked: an ACK-starved
  // transport cannot turn pacing headroom into delivery, so anything
  // beyond a small probing margin just stands as queue.
  double sparse_headroom = 1.3;
  // Standing-queue *level* detector. The trendline reacts to the delay
  // gradient, so an overshoot small enough to sit under the adaptive
  // threshold (+7.5% of capacity fits the window slope to a modified
  // trend of 0.075 x 20 x 4 = 6.0 — exactly the threshold floor) builds
  // queue the detector never convicts; and once delivery becomes
  // ACK-clocked the queue stops growing, the gradient goes to zero, and
  // the backlog stands forever. The level detector compares an
  // EWMA-smoothed one-way delay against a long-window minimum (the
  // RTprop idiom): excess above `level_threshold_ms` sustained for
  // `level_sustain` forces one AIMD decrease, and growth stays capped at
  // the acked bitrate until the excess falls below `level_clear_ms`
  // (hysteresis). While the excess stays high, one cut per sustain
  // period — the drain needs time to show up in the delay signal.
  // Set level_threshold_ms <= 0 to disable.
  double level_threshold_ms = 30.0;
  double level_clear_ms = 15.0;
  util::Duration level_sustain = 400 * util::kMillisecond;
  util::Duration level_base_window = 10 * util::kSecond;
  // EWMA retention on the level signal (jitter must not trip it).
  double level_smoothing = 0.9;
};

class DelayBasedBwe {
 public:
  explicit DelayBasedBwe(DelayBasedBweConfig cfg = {});

  // Feed every ACK (works for any flow; only now / one_way_delay /
  // delivery_rate / rtt are consumed).
  void on_ack(const net::AckSample& s);

  // Jump-start the target to at least `bps` (hybrid: server-side capacity
  // memory, applied when the PHY feed collapses). Evidence-safe — the next
  // overuse verdict cuts an overambitious seed right back.
  void seed_target(util::RateBps bps);

  // The delay-based target rate. Const and clock-free on purpose: the
  // value advances only with ACKs, so concurrent telemetry sampling reads
  // the same committed state the pacing path does.
  util::RateBps target_bps() const { return target_; }
  double acked_bps() const { return acked_bps_; }
  // True while the short acked window is full — the dense-ACK regime in
  // which delivery evidence is fresh enough to corroborate (or cut) an
  // ambitious seed within a window or two.
  bool acked_fresh() const { return ack_rate_.size() >= 8; }

  // Introspection for telemetry, the blend, and tests.
  const TrendlineEstimator& trendline() const { return trendline_; }
  const AimdRateControl& aimd() const { return aimd_; }
  BandwidthUsage usage() const { return trendline_.state(); }
  // Standing-queue level detector state: latched while the smoothed OWD
  // excess is above the hysteresis band, total cuts it has forced, and
  // the excess (ms over the long-window base) as of the last ACK.
  bool standing_queue() const { return level_tripped_; }
  std::uint64_t level_trips() const { return level_trips_; }
  double level_excess_ms() const { return level_excess_ms_; }

 private:
  DelayBasedBweConfig cfg_;
  TrendlineEstimator trendline_;
  AimdRateControl aimd_;
  util::WindowedMean ack_rate_;
  // Longer-window backup: still holds enough samples when ACK loss makes
  // the short window unfillable.
  util::WindowedMean ack_rate_long_;
  util::Time last_ack_ = -1;
  util::RateBps target_;
  double acked_bps_ = 0.0;
  // Standing-queue level detector (see DelayBasedBweConfig).
  util::WindowedMin<double> base_owd_ms_;
  double owd_level_ms_ = -1.0;  // EWMA of the OWD; <0 = no sample yet
  double level_excess_ms_ = 0.0;
  util::Time level_high_since_ = -1;
  bool level_tripped_ = false;
  std::uint64_t level_trips_ = 0;
};

}  // namespace pbecc::bwe
