#include "bwe/aimd.h"

#include <algorithm>
#include <cmath>

namespace pbecc::bwe {

namespace {
// EWMA retention for the capacity tracker (goog_cc uses ~0.05 sample
// weight on both mean and deviation).
constexpr double kSampleWeight = 0.05;
// Samples this many normalized deviations outside the band reset the
// tracker instead of updating it.
constexpr double kResetDeviations = 3.0;
}  // namespace

void LinkCapacityTracker::on_overuse(double acked_bps) {
  if (acked_bps <= 0) return;
  if (!estimate_bps_.has_value()) {
    estimate_bps_ = acked_bps;
    return;
  }
  const double est = *estimate_bps_;
  const double err = acked_bps - est;
  estimate_bps_ = est + kSampleWeight * err;
  // Normalized variance so the band scales with the link. goog_cc's
  // clamp constants ([0.4, 2.5e3]) are calibrated for kbps, so normalize
  // in that domain — in raw bps the band collapses to a few hundred bps
  // and "near capacity" would never trigger.
  const double norm_kbps = std::max(est, 1.0) / 1e3;
  var_norm_ = (1.0 - kSampleWeight) * var_norm_ +
              kSampleWeight * (err / 1e3) * (err / 1e3) / norm_kbps;
  var_norm_ = std::clamp(var_norm_, 0.4, 2.5e3);
}

void LinkCapacityTracker::maybe_reset(double estimate_bps) {
  if (!estimate_bps_.has_value()) return;
  if (std::abs(estimate_bps - *estimate_bps_) >
      kResetDeviations * stddev_bps()) {
    estimate_bps_.reset();
    var_norm_ = 0.4;
  }
}

double LinkCapacityTracker::stddev_bps() const {
  if (!estimate_bps_.has_value()) return 0.0;
  return 1e3 * std::sqrt(var_norm_ * std::max(*estimate_bps_, 1.0) / 1e3);
}

AimdRateControl::AimdRateControl(AimdConfig cfg, util::RateBps initial_rate)
    : cfg_(cfg),
      target_(std::clamp(initial_rate, cfg.min_rate, cfg.max_rate)),
      initial_target_(target_) {}

void AimdRateControl::seed(util::RateBps bps) {
  const util::RateBps seeded =
      std::clamp(std::max(target_, bps), cfg_.min_rate, cfg_.max_rate);
  if (seeded > target_) {
    target_ = seeded;
    seeded_ = true;
  }
}

void AimdRateControl::force_decrease(util::Time now, double acked_bps) {
  if (last_decrease_ >= 0 && now - last_decrease_ < cfg_.min_decrease_interval) {
    return;  // a recent cut is already draining this queue
  }
  if (first_update_ < 0) first_update_ = now;
  const bool in_startup_grace = now - first_update_ < cfg_.startup_grace;
  const double basis = acked_bps > 0 ? acked_bps : target_;
  // The level detector fires only when the path has been saturated long
  // enough to stand a queue, so the acked bitrate is as capacity-revealing
  // here as at a trendline-driven cut.
  if (!in_startup_grace) capacity_.on_overuse(basis);
  target_ = std::min<util::RateBps>(target_, cfg_.beta * basis);
  if (in_startup_grace) target_ = std::max(target_, initial_target_);
  target_ = std::clamp(target_, cfg_.min_rate, cfg_.max_rate);
  last_decrease_ = now;
  seeded_ = false;
  state_ = State::kHold;
}

void AimdRateControl::change_state(BandwidthUsage usage) {
  // goog_cc's RateControlState transitions: overuse always decreases,
  // underuse always holds (the queue is draining — wait), normal leaves
  // hold for increase (and a completed decrease re-arms via hold).
  switch (usage) {
    case BandwidthUsage::kOverusing:
      state_ = State::kDecrease;
      break;
    case BandwidthUsage::kUnderusing:
      state_ = State::kHold;
      break;
    case BandwidthUsage::kNormal:
      if (state_ == State::kHold || state_ == State::kDecrease) {
        state_ = State::kIncrease;
      }
      break;
  }
}

util::RateBps AimdRateControl::update(util::Time now, BandwidthUsage usage,
                                      double acked_bps, util::Duration rtt) {
  change_state(usage);
  if (first_update_ < 0) first_update_ = now;
  const bool in_startup_grace = now - first_update_ < cfg_.startup_grace;
  const double dt_s =
      last_update_ >= 0
          ? std::min(util::to_seconds(now - last_update_), 1.0)
          : 0.0;
  last_update_ = now;

  switch (state_) {
    case State::kHold:
      break;
    case State::kDecrease: {
      const util::Duration spacing = std::clamp(
          rtt, cfg_.min_decrease_interval, cfg_.max_decrease_interval);
      if (last_decrease_ >= 0 && now - last_decrease_ < spacing) {
        state_ = State::kHold;
        break;
      }
      // Cut below what the path just delivered; that acked bitrate is a
      // capacity-revealing sample for the tracker.
      const double basis = acked_bps > 0 ? acked_bps : target_;
      if (!in_startup_grace) capacity_.on_overuse(basis);
      target_ = std::min<util::RateBps>(target_, cfg_.beta * basis);
      last_decrease_ = now;
      seeded_ = false;  // the cut is fresh evidence; the seed is spent
      // One cut per verdict: go to hold until the trendline reports
      // normal again (change_state re-arms increase from there).
      state_ = State::kHold;
      break;
    }
    case State::kIncrease: {
      // No growth without delivery evidence. When the ACK stream is too
      // sparse for an acked-bitrate estimate the max_vs_acked clamp below
      // is inert and the trendline window never fills — multiplicative
      // growth would then run away with nothing able to stop it (the
      // feedback-loss chaos profile turns exactly this into a standing
      // queue).
      if (acked_bps <= 0) break;
      const bool near_capacity =
          capacity_.has_estimate() &&
          std::abs(target_ - capacity_.estimate_bps()) <
              kResetDeviations * capacity_.stddev_bps();
      if (near_capacity) {
        // Additive: about one MSS per RTT (scaled to this update's dt).
        const double rtt_s = std::max(util::to_seconds(rtt), 1e-3);
        const double additive_bps_per_s =
            static_cast<double>(cfg_.mss) * util::kBitsPerByte / rtt_s;
        target_ += additive_bps_per_s * dt_s;
      } else {
        const double rate = in_startup_grace ? cfg_.startup_increase_per_second
                                             : cfg_.increase_per_second;
        target_ *= std::pow(rate, dt_s);
      }
      capacity_.maybe_reset(target_);
      break;
    }
  }

  if (seeded_ && acked_bps > 0 &&
      cfg_.max_vs_acked * acked_bps >= target_) {
    seeded_ = false;  // delivery caught up with the seed; clamp re-arms
  }
  if (acked_bps > 0 && state_ == State::kIncrease && !seeded_) {
    // Growth, not cuts, is what the clamp disciplines: the target may not
    // run more than max_vs_acked ahead of what the path demonstrably
    // delivers. Applying it outside kIncrease would let a transient dip in
    // the acked estimate drag an already-committed target down.
    target_ = std::min<util::RateBps>(target_, cfg_.max_vs_acked * acked_bps);
  }
  if (in_startup_grace) {
    target_ = std::max(target_, initial_target_);
  }
  target_ = std::clamp(target_, cfg_.min_rate, cfg_.max_rate);
  return target_;
}

}  // namespace pbecc::bwe
