#include "bwe/delay_bwe.h"

#include <algorithm>

namespace pbecc::bwe {

DelayBasedBwe::DelayBasedBwe(DelayBasedBweConfig cfg)
    : cfg_(cfg),
      trendline_(cfg.trendline),
      aimd_(cfg.aimd, cfg.initial_rate),
      ack_rate_(cfg.ack_rate_window),
      ack_rate_long_(cfg.ack_rate_long_window),
      target_(std::clamp(cfg.initial_rate, cfg.aimd.min_rate,
                         cfg.aimd.max_rate)),
      base_owd_ms_(cfg.level_base_window) {}

void DelayBasedBwe::on_ack(const net::AckSample& s) {
  if (last_ack_ >= 0 && s.now - last_ack_ > cfg_.silence_reset) {
    // The queue the old window described drained (or the path changed)
    // during the gap; stale slope points would fake an under/overuse.
    trendline_.reset();
    // Same for the level detector: the base OWD and the standing-queue
    // latch describe a path state that no longer exists.
    base_owd_ms_.clear();
    owd_level_ms_ = -1.0;
    level_high_since_ = -1;
    level_tripped_ = false;
  }
  last_ack_ = s.now;

  // Acked bitrate: mean of the driver's delivery-rate samples over a short
  // window. App-limited samples still count — they lower-bound capacity
  // and the AIMD only uses acked_bps as a cut basis / runaway clamp.
  // Until a window first holds a few samples the estimate is reported as
  // 0 (unknown): the first packets of a flow produce wild per-packet
  // rates that must not become a cut basis or growth clamp. Under heavy
  // ACK loss the short window may never fill again, so a longer window
  // backs it up — with acked stuck at 0 the AIMD has no sane cut basis
  // (it cuts against its own target, compounding into a hole) and no
  // growth clamp (it runs away into a standing queue). Once known the
  // estimate stays sticky across spells both windows miss.
  if (s.delivery_rate > 0) {
    ack_rate_.update(s.now, s.delivery_rate);
    ack_rate_long_.update(s.now, s.delivery_rate);
  }
  if (ack_rate_.size() >= 8) {
    acked_bps_ = ack_rate_.get(s.now, acked_bps_);
  } else if (ack_rate_long_.size() >= 8) {
    acked_bps_ = ack_rate_long_.get(s.now, acked_bps_);
  }

  const double owd_ms = util::to_seconds(s.one_way_delay) * 1e3;
  trendline_.update(s.now, owd_ms);
  target_ = aimd_.update(s.now, trendline_.state(), acked_bps_, s.rtt);

  // Standing-queue level detector (config comment has the full rationale):
  // smoothed OWD vs the long-window base. A sustained excess forces an
  // AIMD cut the gradient-blind trendline will never issue, and the latch
  // caps growth at the acked bitrate until the queue demonstrably drains.
  base_owd_ms_.update(s.now, owd_ms);
  owd_level_ms_ = owd_level_ms_ < 0
                      ? owd_ms
                      : cfg_.level_smoothing * owd_level_ms_ +
                            (1.0 - cfg_.level_smoothing) * owd_ms;
  level_excess_ms_ = owd_level_ms_ - base_owd_ms_.get(s.now, owd_ms);
  if (cfg_.level_threshold_ms > 0) {
    if (level_excess_ms_ > cfg_.level_threshold_ms) {
      if (level_high_since_ < 0) level_high_since_ = s.now;
      if (s.now - level_high_since_ >= cfg_.level_sustain) {
        aimd_.force_decrease(s.now, acked_bps_);
        target_ = aimd_.target_bps();
        level_tripped_ = true;
        ++level_trips_;
        // Re-arm: at most one forced cut per sustain period while the
        // excess stays high — the drain needs time to reach the signal.
        level_high_since_ = s.now;
      }
    } else {
      level_high_since_ = -1;
      if (level_excess_ms_ < cfg_.level_clear_ms) level_tripped_ = false;
    }
    if (level_tripped_ && acked_bps_ > 0) {
      target_ = std::clamp(std::min(target_, acked_bps_),
                           cfg_.aimd.min_rate, cfg_.aimd.max_rate);
    }
  }
  // Sparse-ACK cap: when the short acked window cannot fill but the long
  // one still does, delivery is ACK-clocked (cwnd stalls, not pacing,
  // bound it) and the AIMD's usual max_vs_acked headroom stands as queue
  // instead of buying throughput — hold the target to a tight probing
  // margin over measured delivery. When even the long window is starved
  // the sticky estimate is stale, and capping against it freezes the
  // flow at whatever rate the starvation began at; there the AIMD's own
  // growth is the only probe left, so let it run (the trendline window
  // is count-based and stays live on whatever ACKs do arrive, so a wrong
  // guess is still cut within a verdict).
  if (ack_rate_.size() < 8 && ack_rate_long_.size() >= 8 &&
      acked_bps_ > 0) {
    target_ = std::clamp(
        std::min(target_, cfg_.sparse_headroom * acked_bps_),
        cfg_.aimd.min_rate, cfg_.aimd.max_rate);
  }
}

void DelayBasedBwe::seed_target(util::RateBps bps) {
  aimd_.seed(bps);
  target_ = aimd_.target_bps();
}

}  // namespace pbecc::bwe
