// pbecc::check — the invariant layer behind long-horizon soak testing.
//
// Long runs (millions of subframes of user churn, RNTI reuse, handover
// storms and carrier reconfiguration) surface a bug class that figure-length
// scenarios never touch: incremental sums drifting away from their exact
// values, state maps growing without bound, and per-cell configuration going
// stale. The OWL monitor (Bui & Widmer) stays on-air for hours; a
// reproduction that claims continuous bandwidth tracking has to survive the
// same horizon. This layer gives every stateful subsystem a uniform way to
// declare its invariants:
//
//   PBECC_INVARIANT(cond, "name")       cheap (O(1)) check, on in EVERY
//                                       build — release binaries included;
//   PBECC_DEEP_INVARIANT(cond, "name")  compiled only with -DPBECC_CHECK=ON
//                                       (O(n) re-derivations, exact-resum
//                                       comparisons, full-map consistency).
//
// A failed invariant is *recorded*, never thrown: production code keeps
// running (a congestion controller must not crash a connection over a
// diagnostic), while soak drivers and tests poll violations() == 0 — or set
// abort_on_violation(true) to die loudly at the first failure with the
// invariant's name and location. Counts are mirrored into the pbecc::obs
// registry ("check.violations", "check.violation.<name>") so metrics JSON
// reports carry them; the layer's own bookkeeping works even when
// PBECC_TRACE is compiled out.
//
// Expensive *preparation* for a deep check (building the exact value to
// compare against) should be gated at the call site:
//
//   if constexpr (pbecc::check::kDeep) {
//     double exact = recompute();
//     PBECC_DEEP_INVARIANT(close(sum_, exact), "foo_sum_drift");
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pbecc::check {

#if defined(PBECC_CHECK_ENABLED)
inline constexpr bool kDeep = true;
#else
inline constexpr bool kDeep = false;
#endif

// Total invariant violations recorded since process start (or reset()).
std::uint64_t violations();
// Violations recorded against one named invariant.
std::uint64_t violations(const std::string& name);
// Sorted (name, count) snapshot of every invariant that ever fired.
std::vector<std::pair<std::string, std::uint64_t>> all_violations();
// "name (file:line) xN, ..." — human-readable digest for soak reports.
std::string describe_violations();
// Zero all counts (test isolation). Mirrored obs counters are reset by the
// obs registry's own reset().
void reset();

// When true, the first violation prints name/file/line to stderr and
// aborts. Soak drivers and CI smoke runs want the loud mode; the default
// (false) records silently apart from a one-line stderr note for the first
// few distinct invariants.
void set_abort_on_violation(bool abort_on_violation);
bool abort_on_violation();

namespace detail {
// Out of line so the macro body stays a cheap branch; thread-safe (pool
// threads run decode phases that carry invariants).
void fail(const char* name, const char* file, int line);
}  // namespace detail

}  // namespace pbecc::check

// Cheap, always-on invariant. `cond` must be O(1)-ish: these run on hot
// paths in release builds.
#define PBECC_INVARIANT(cond, name)                                  \
  do {                                                               \
    if (!(cond)) ::pbecc::check::detail::fail((name), __FILE__, __LINE__); \
  } while (0)

// Deep invariant: compiled (condition included) only with -DPBECC_CHECK=ON.
#if defined(PBECC_CHECK_ENABLED)
#define PBECC_DEEP_INVARIANT(cond, name) PBECC_INVARIANT(cond, name)
#else
// sizeof keeps `cond` unevaluated (zero cost) while still odr-"using" the
// variables it mentions, so deep-check-only locals do not warn as unused.
#define PBECC_DEEP_INVARIANT(cond, name) \
  do {                                   \
    (void)sizeof((cond) ? 1 : 0);        \
  } while (0)
#endif
