#include "check/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.h"

namespace pbecc::check {

namespace {

struct Site {
  std::uint64_t count = 0;
  const char* file = "";
  int line = 0;
};

struct State {
  std::mutex m;
  std::map<std::string, Site> sites;
};

State& state() {
  static State* s = new State();  // never destroyed: fail() may run late
  return *s;
}

std::atomic<std::uint64_t> total{0};
std::atomic<bool> abort_flag{false};

}  // namespace

std::uint64_t violations() { return total.load(std::memory_order_relaxed); }

std::uint64_t violations(const std::string& name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  const auto it = s.sites.find(name);
  return it == s.sites.end() ? 0 : it->second.count;
}

std::vector<std::pair<std::string, std::uint64_t>> all_violations() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(s.sites.size());
  for (const auto& [name, site] : s.sites) out.emplace_back(name, site.count);
  return out;
}

std::string describe_violations() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  std::string out;
  for (const auto& [name, site] : s.sites) {
    if (!out.empty()) out += ", ";
    out += name + " (" + site.file + ":" + std::to_string(site.line) + ") x" +
           std::to_string(site.count);
  }
  return out;
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  s.sites.clear();
  total.store(0, std::memory_order_relaxed);
}

void set_abort_on_violation(bool abort_on_violation) {
  abort_flag.store(abort_on_violation, std::memory_order_relaxed);
}

bool abort_on_violation() {
  return abort_flag.load(std::memory_order_relaxed);
}

namespace detail {

void fail(const char* name, const char* file, int line) {
  if (abort_flag.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "pbecc invariant violated: %s at %s:%d\n", name, file,
                 line);
    std::abort();
  }
  total.fetch_add(1, std::memory_order_relaxed);
  bool first_of_name = false;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.m);
    Site& site = s.sites[name];
    first_of_name = site.count == 0;
    ++site.count;
    site.file = file;
    site.line = line;
  }
  // One stderr note per distinct invariant: a drifting invariant firing per
  // subframe must not flood a multi-hour run's log.
  if (first_of_name) {
    std::fprintf(stderr, "pbecc invariant violated: %s at %s:%d\n", name, file,
                 line);
  }
  // Mirror into the metrics registry so soak reports carry the counts
  // (no-op value-wise when PBECC_TRACE is compiled out).
  obs::counter("check.violations").inc();
  obs::counter(std::string("check.violation.") + name).inc();
}

}  // namespace detail

}  // namespace pbecc::check
