#include "par/thread_pool.h"

#include <chrono>
#include <memory>
#include <utility>

namespace pbecc::par {

namespace {
// Which worker slot (0-based) the current thread occupies in its pool;
// SIZE_MAX for threads outside any pool (including the pool's caller).
thread_local std::size_t t_worker_slot = SIZE_MAX;
thread_local ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads_ = threads;
  const auto workers = static_cast<std::size_t>(threads_ - 1);
  deques_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();  // drain submitted work; pending tasks run, not leak
  stop_.store(true);
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline (the pool *is* the calling thread).
    task();
    return;
  }
  tasks_submitted_.fetch_add(1);
  Deque* dq = &inject_;
  if (t_worker_pool == this && t_worker_slot < deques_.size()) {
    dq = deques_[t_worker_slot].get();
  }
  {
    std::lock_guard<std::mutex> lk(dq->m);
    dq->q.push_back(std::move(task));
  }
  queued_tasks_.fetch_add(1);
  wake_cv_.notify_one();
}

bool ThreadPool::steal_task(std::size_t thief, std::function<void()>& out) {
  // Own deque first (LIFO), then the injection queue, then round-robin
  // FIFO steals from the other workers.
  if (thief < deques_.size()) {
    auto& own = *deques_[thief];
    std::lock_guard<std::mutex> lk(own.m);
    if (!own.q.empty()) {
      out = std::move(own.q.back());
      own.q.pop_back();
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(inject_.m);
    if (!inject_.q.empty()) {
      out = std::move(inject_.q.front());
      inject_.q.pop_front();
      return true;
    }
  }
  for (std::size_t k = 0; k < deques_.size(); ++k) {
    const std::size_t victim = (thief + 1 + k) % deques_.size();
    if (victim == thief) continue;
    auto& dq = *deques_[victim];
    std::lock_guard<std::mutex> lk(dq.m);
    if (!dq.q.empty()) {
      out = std::move(dq.q.front());
      dq.q.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_run_one_task(std::size_t self) {
  std::function<void()> task;
  if (!steal_task(self, task)) return false;
  queued_tasks_.fetch_sub(1);
  task();
  tasks_done_.fetch_add(1);
  if (tasks_done_.load() == tasks_submitted_.load()) {
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::drain_loop(ForLoop& loop) {
  std::size_t i;
  while ((i = loop.next.fetch_add(1)) < loop.n) {
    try {
      (*loop.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(loop.m);
      if (i < loop.first_error) {
        loop.first_error = i;
        loop.error = std::current_exception();
      }
    }
    if (loop.finished.fetch_add(1) + 1 == loop.n) {
      std::lock_guard<std::mutex> lk(loop.m);
      loop.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_main(std::size_t self) {
  t_worker_slot = self;
  t_worker_pool = this;
  while (!stop_.load()) {
    // Help the newest active loop, then submitted tasks, then sleep.
    ForLoop* loop = nullptr;
    {
      std::lock_guard<std::mutex> lk(loops_m_);
      if (!active_loops_.empty()) {
        loop = active_loops_.back();
        loop->helpers.fetch_add(1);  // keeps the loop object alive
      }
    }
    if (loop != nullptr) {
      drain_loop(*loop);
      {
        std::lock_guard<std::mutex> lk(loop->m);
        loop->helpers.fetch_sub(1);
        loop->done_cv.notify_all();
      }
      continue;
    }
    if (try_run_one_task(self)) continue;

    std::unique_lock<std::mutex> lk(sleep_m_);
    wake_cv_.wait_for(lk, std::chrono::milliseconds(5), [this] {
      if (stop_.load() || queued_tasks_.load() > 0) return true;
      std::lock_guard<std::mutex> g(loops_m_);
      return !active_loops_.empty();
    });
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial path: identical code path, strict index order.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ForLoop loop;
  loop.n = n;
  loop.fn = &fn;
  {
    std::lock_guard<std::mutex> lk(loops_m_);
    active_loops_.push_back(&loop);
  }
  wake_cv_.notify_all();

  // The caller claims iterations too, so progress never depends on a
  // worker being free (and a busy pool degrades to inline execution).
  drain_loop(loop);

  {
    std::unique_lock<std::mutex> lk(loop.m);
    loop.done_cv.wait(lk, [&] { return loop.finished.load() >= loop.n; });
  }
  {
    // Delist first (no new helpers), then wait out registered helpers.
    std::lock_guard<std::mutex> lk(loops_m_);
    for (auto it = active_loops_.begin(); it != active_loops_.end(); ++it) {
      if (*it == &loop) {
        active_loops_.erase(it);
        break;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lk(loop.m);
    loop.done_cv.wait(lk, [&] { return loop.helpers.load() == 0; });
  }
  if (loop.error) std::rethrow_exception(loop.error);
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  // Participate: an external caller helping to drain cannot deadlock.
  while (true) {
    std::function<void()> task;
    if (steal_task(SIZE_MAX, task)) {
      queued_tasks_.fetch_sub(1);
      task();
      tasks_done_.fetch_add(1);
      if (tasks_done_.load() == tasks_submitted_.load()) {
        idle_cv_.notify_all();
      }
      continue;
    }
    break;
  }
  std::unique_lock<std::mutex> lk(sleep_m_);
  idle_cv_.wait(lk, [this] {
    return tasks_done_.load() == tasks_submitted_.load();
  });
}

// --- default pool ----------------------------------------------------------

namespace {
std::mutex g_default_m;
std::unique_ptr<ThreadPool> g_default_pool;
int g_default_threads = 1;
}  // namespace

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lk(g_default_m);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(g_default_threads);
  }
  return *g_default_pool;
}

void set_default_threads(int threads) {
  std::lock_guard<std::mutex> lk(g_default_m);
  g_default_pool.reset();  // drains before rebuild
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  g_default_threads = threads;
}

int default_threads() {
  std::lock_guard<std::mutex> lk(g_default_m);
  return g_default_pool ? g_default_pool->threads() : g_default_threads;
}

}  // namespace pbecc::par
