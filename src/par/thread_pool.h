// pbecc::par — the parallel scenario/decode engine.
//
// A work-stealing thread pool sized once per process (benches and
// run_experiment set it from --threads). Two usage patterns:
//
//   * parallel_for(n, fn): run fn(0..n-1) across the pool. The calling
//     thread participates (so a 1-thread pool executes inline, in index
//     order — the serial path is literally the same code), workers steal
//     iterations through a shared claim index, and the first exception
//     (by lowest index) is rethrown after the loop completes. Nested
//     parallel_for from inside a worker is safe: the nested caller drains
//     its own loop, so no thread ever blocks while work remains.
//
//   * submit(task): fire-and-forget onto the per-worker deques (LIFO for
//     the owner, FIFO steal for everyone else). The destructor drains all
//     pending submitted work before joining.
//
// Determinism contract: parallel_for schedules *independent* iterations
// only; callers collect per-iteration results by index and merge serially
// (see DESIGN.md §9). Under that contract results are byte-identical for
// any thread count, including 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pbecc::par {

class ThreadPool {
 public:
  // `threads` = total parallelism including the calling thread, so the
  // pool spawns threads-1 workers. 0 = std::thread::hardware_concurrency.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Run fn(i) for every i in [0, n). Blocks until all iterations have
  // finished; rethrows the lowest-index exception if any iteration threw.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Queue a task on this thread's deque (or the pool's injection queue
  // when called from outside the pool). Tasks run on worker threads;
  // exceptions from submitted tasks terminate (fire-and-forget contract —
  // use parallel_for when errors must propagate).
  void submit(std::function<void()> task);

  // Block until every submitted task has been executed. (parallel_for
  // waits for its own iterations automatically; this is for submit().)
  void wait_idle();

 private:
  struct ForLoop {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    // Workers registered on this loop; the owner waits for 0 after
    // delisting so the stack-allocated loop never dangles.
    std::atomic<int> helpers{0};
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t first_error = SIZE_MAX;  // guarded by m
    std::exception_ptr error;            // guarded by m
  };

  void worker_main(std::size_t self);
  void drain_loop(ForLoop& loop);
  bool try_run_one_task(std::size_t self);
  bool steal_task(std::size_t thief, std::function<void()>& out);

  int threads_ = 1;
  std::atomic<bool> stop_{false};

  // Per-worker deques (index 0..workers-1) plus an injection queue for
  // external submitters; all guarded by one mutex apiece.
  struct Deque {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };
  std::vector<std::unique_ptr<Deque>> deques_;
  Deque inject_;
  std::atomic<std::size_t> queued_tasks_{0};

  // Loops currently accepting helpers (newest last; workers help the
  // newest first so nested loops finish before their parents starve).
  std::mutex loops_m_;
  std::vector<ForLoop*> active_loops_;

  std::mutex sleep_m_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> tasks_done_{0};
  std::atomic<std::size_t> tasks_submitted_{0};

  std::vector<std::thread> workers_;
};

// --- Process-default pool --------------------------------------------------
// Sized by set_default_threads() before first use (benches / --threads N);
// reconfiguring later replaces the pool (callers must be quiesced).

ThreadPool& default_pool();
void set_default_threads(int threads);
int default_threads();

// parallel_for on the default pool.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  default_pool().parallel_for(n, fn);
}

// Map i -> fn(i) into a vector, merged by index (deterministic regardless
// of execution order). Fn must be invocable with std::size_t.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  default_pool().parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace pbecc::par
