// Analysis over telemetry recordings: the paper-style accuracy statistics
// (estimate-vs-truth error distributions, Figs 5/6), capacity-step
// tracking lag, degradation dwell times, anomaly detection, and the
// machine-checkable two-run diff behind `telemetry_tool diff`.
//
// Series conventions consumed here (producers: tel::PipelineSampler and
// sim::Scenario's telemetry event — see DESIGN.md §12 for the full table):
//   est.cell<id>.cf_bits_sf     estimator fair share per cell (Eqns 1-2)
//   truth.cell<id>.fair_bits_sf scheduler ground truth for the same cell
//   pbe.degradation_state       0=PRECISE 1=DEGRADED 2=FALLBACK
//   decode.success_rate, check.violations, ...
// Estimate/truth pairs are joined on equal sim-clock timestamps — the
// cadence rules exist precisely so this join is exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tel/series.h"
#include "util/time.h"

namespace pbecc::tel {

struct ErrorStats {
  std::size_t n = 0;  // joined samples after warmup
  double p50_abs = 0, p95_abs = 0;  // bits/sf
  double p50_rel = 0, p95_rel = 0, mean_rel = 0, max_rel = 0;
};

struct StepLagStats {
  std::size_t steps = 0;      // capacity steps detected in the truth series
  std::size_t tracked = 0;    // converged within the search horizon
  double mean_lag_ms = 0, max_lag_ms = 0;  // over the tracked steps
};

struct CellAccuracy {
  std::string cell;  // "<id>"
  ErrorStats err;
  StepLagStats lag;
};

struct DwellStats {
  // Sim-seconds spent in each degradation state, plus transition count.
  double precise_s = 0, degraded_s = 0, fallback_s = 0;
  std::uint64_t transitions = 0;
};

struct Anomaly {
  std::string cell;
  util::Time start = 0, end = 0;
  double peak_rel_err = 0;
  std::size_t samples = 0;
};

struct Summary {
  std::uint32_t schema_version = 0;
  util::Time t_begin = 0, t_end = 0;
  std::size_t n_series = 0, n_samples = 0;
  std::vector<CellAccuracy> cells;
  bool has_dwell = false;
  DwellStats dwell;
  double final_decode_success = -1;  // -1 when the series is absent
  double candidates_per_sec = -1;
  std::int64_t violations = -1;
  std::vector<Anomaly> anomalies;
};

struct AnalyzeConfig {
  // Samples before this are startup transient (ramp, empty windows) and
  // excluded from the error distributions.
  util::Duration warmup = util::kSecond;
  // A truth-series move larger than this fraction between consecutive
  // samples is a capacity step.
  double step_fraction = 0.25;
  // The estimate has "tracked" a step once within this fraction of truth.
  double tracked_fraction = 0.15;
  util::Duration step_search_horizon = 2 * util::kSecond;
  // Anomaly: relative error above `anomaly_rel` for more than
  // `anomaly_min_samples` consecutive joined samples.
  double anomaly_rel = 0.35;
  std::size_t anomaly_min_samples = 8;
};

Summary summarize(const Recorder& rec, const AnalyzeConfig& cfg = {});
std::string render_summary_text(const Summary& s);

// ---- diff ----------------------------------------------------------------

struct DiffThresholds {
  // A shared series regresses when |mean(b) - mean(a)| exceeds this
  // fraction of max(|mean(a)|, floor) or the sample counts disagree by
  // more than `count_rel`.
  double mean_rel = 0.01;
  double count_rel = 0.0;
  double mean_floor = 1e-9;
};

struct SeriesDelta {
  std::string name;
  std::size_t n_a = 0, n_b = 0;
  double mean_a = 0, mean_b = 0;
  double rel_delta = 0;  // vs max(|mean_a|, floor)
  bool flagged = false;
  std::string note;  // "mean" / "count" / "missing-in-b" / "new-in-b"
};

struct DiffResult {
  std::vector<SeriesDelta> deltas;  // every series of either run, sorted
  std::size_t compared = 0, flagged = 0;
  bool schema_mismatch = false;
  bool regression() const { return flagged > 0 || schema_mismatch; }
};

DiffResult diff(const Recorder& a, const Recorder& b,
                const DiffThresholds& thresholds = {});
std::string render_diff_text(const DiffResult& d);

}  // namespace pbecc::tel
