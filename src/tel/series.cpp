#include "tel/series.h"

#include <bit>
#include <cstdio>

#include "util/digest.h"

namespace pbecc::tel {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_f64_text(std::string& out, double v) {
  char buf[40];
  // %.17g round-trips every finite double, and prints integral values
  // without trailing noise — both needed for byte-stable diffs.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

Recorder::Recorder(std::size_t max_samples_per_series)
    : max_samples_(max_samples_per_series < 2 ? 2 : max_samples_per_series) {}

void Recorder::set_meta(std::string_view key, std::string_view value) {
  if constexpr (!kCompiled) return;
  meta_[std::string(key)] = std::string(value);
}

Series& Recorder::series_for(std::string_view name, std::string_view unit,
                             ValueKind kind, bool& kind_ok) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    Series s;
    s.name = std::string(name);
    s.unit = std::string(unit);
    s.kind = kind;
    it = series_.emplace(s.name, std::move(s)).first;
  }
  kind_ok = it->second.kind == kind;
  return it->second;
}

void Recorder::append_f64(std::string_view name, std::string_view unit,
                          util::Time t, double v) {
  if constexpr (!kCompiled) return;
  bool kind_ok = false;
  Series& s = series_for(name, unit, ValueKind::kF64, kind_ok);
  if (!kind_ok) {
    ++kind_conflicts_;
    return;
  }
  if (s.t.size() >= max_samples_) {
    const std::size_t half = max_samples_ / 2;
    s.t.erase(s.t.begin(), s.t.begin() + static_cast<std::ptrdiff_t>(half));
    s.f64.erase(s.f64.begin(), s.f64.begin() + static_cast<std::ptrdiff_t>(half));
  }
  s.t.push_back(t);
  s.f64.push_back(v);
}

void Recorder::append_i64(std::string_view name, std::string_view unit,
                          util::Time t, std::int64_t v) {
  if constexpr (!kCompiled) return;
  bool kind_ok = false;
  Series& s = series_for(name, unit, ValueKind::kI64, kind_ok);
  if (!kind_ok) {
    ++kind_conflicts_;
    return;
  }
  if (s.t.size() >= max_samples_) {
    const std::size_t half = max_samples_ / 2;
    s.t.erase(s.t.begin(), s.t.begin() + static_cast<std::ptrdiff_t>(half));
    s.i64.erase(s.i64.begin(), s.i64.begin() + static_cast<std::ptrdiff_t>(half));
  }
  s.t.push_back(t);
  s.i64.push_back(v);
}

const Series* Recorder::find(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::size_t Recorder::total_samples() const {
  std::size_t n = 0;
  for (const auto& [name, s] : series_) n += s.size();
  return n;
}

std::uint64_t Recorder::digest() const {
  std::uint64_t h = util::kFnv1aOffset;
  for (const auto& [k, v] : meta_) {
    h = util::fnv1a64(k.data(), k.size(), h);
    h = util::fnv1a64(v.data(), v.size(), h);
  }
  for (const auto& [name, s] : series_) {
    h = util::fnv1a64(s.name.data(), s.name.size(), h);
    h = util::fnv1a64(s.unit.data(), s.unit.size(), h);
    h = util::fnv1a64_value(static_cast<std::uint8_t>(s.kind), h);
    for (std::size_t i = 0; i < s.size(); ++i) {
      h = util::fnv1a64_value(s.t[i], h);
      if (s.kind == ValueKind::kF64) {
        // Hash the bit pattern, not the rounded text: -0.0 vs 0.0 and NaN
        // payloads must all count as differences.
        h = util::fnv1a64_value(std::bit_cast<std::uint64_t>(s.f64[i]), h);
      } else {
        h = util::fnv1a64_value(s.i64[i], h);
      }
    }
  }
  return h;
}

std::string Recorder::to_json() const {
  std::string out;
  out.reserve(256 + total_samples() * 16);
  out += "{\"schema_version\":";
  out += std::to_string(kSchemaVersion);
  out += ",\"meta\":{";
  bool first = true;
  for (const auto& [k, v] : meta_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, k);
    out += "\":\"";
    append_json_escaped(out, v);
    out += '"';
  }
  out += "},\"series\":[";
  first = true;
  for (const auto& [name, s] : series_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\",\"unit\":\"";
    append_json_escaped(out, s.unit);
    out += "\",\"kind\":\"";
    out += s.kind == ValueKind::kF64 ? "f64" : "i64";
    out += "\",\"t\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(s.t[i]);
    }
    out += "],\"v\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i) out += ',';
      if (s.kind == ValueKind::kF64) {
        append_f64_text(out, s.f64[i]);
      } else {
        out += std::to_string(s.i64[i]);
      }
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string Recorder::to_csv() const {
  std::string out = "series,unit,t_us,value\n";
  out.reserve(64 + total_samples() * 32);
  for (const auto& [name, s] : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      out += s.name;
      out += ',';
      out += s.unit;
      out += ',';
      out += std::to_string(s.t[i]);
      out += ',';
      if (s.kind == ValueKind::kF64) {
        append_f64_text(out, s.f64[i]);
      } else {
        out += std::to_string(s.i64[i]);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace pbecc::tel
