// Self-contained single-file HTML dashboard for one telemetry recording:
// per-cell capacity-vs-estimate charts with anomaly shading, the
// degradation-state timeline, flow-rate and queue sparklines, and the
// summary statistics as stat tiles plus an accessible table view. No
// external assets — inline SVG and a few lines of vanilla JS for the
// hover crosshair — so the file can be attached to CI runs and opened
// anywhere.
#pragma once

#include <string>

#include "tel/analyze.h"
#include "tel/series.h"

namespace pbecc::tel {

std::string render_html(const Recorder& rec, const Summary& summary,
                        const std::string& title);

}  // namespace pbecc::tel
