#include "tel/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pbecc::tel {

namespace {

constexpr double kPlotX0 = 56, kPlotX1 = 748, kPlotY0 = 10, kPlotY1 = 150;
constexpr int kMaxPointsPerSeries = 1200;

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v, const char* format = "%.6g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

struct ChartSeries {
  const Series* s;
  std::string label;
  std::string css_class;  // series-1 / series-2
};

double x_of(util::Time t, util::Time t0, util::Time t1) {
  const double span = std::max<double>(static_cast<double>(t1 - t0), 1.0);
  return kPlotX0 + (static_cast<double>(t - t0) / span) * (kPlotX1 - kPlotX0);
}

double y_of(double v, double lo, double hi) {
  const double span = std::max(hi - lo, 1e-12);
  return kPlotY1 - ((v - lo) / span) * (kPlotY1 - kPlotY0);
}

// One line chart (single y axis). `spans` shade anomaly windows.
std::string line_chart(const std::string& title, const std::string& unit,
                       const std::vector<ChartSeries>& series,
                       const std::vector<Anomaly>& spans) {
  util::Time t0 = 0, t1 = 0;
  double vmax = 0;
  bool any = false;
  for (const auto& cs : series) {
    if (cs.s == nullptr || cs.s->size() == 0) continue;
    if (!any) {
      t0 = cs.s->t.front();
      t1 = cs.s->t.back();
      any = true;
    } else {
      t0 = std::min(t0, cs.s->t.front());
      t1 = std::max(t1, cs.s->t.back());
    }
    for (std::size_t i = 0; i < cs.s->size(); ++i) {
      vmax = std::max(vmax, cs.s->value(i));
    }
  }
  if (!any) return "";
  const double lo = 0, hi = vmax > 0 ? vmax * 1.05 : 1.0;

  std::string svg;
  svg += "<svg viewBox=\"0 0 760 176\" role=\"img\" aria-label=\"" +
         esc(title) + "\">";
  // Gridlines + axis labels (recessive chrome, text in muted ink).
  for (const double frac : {0.0, 0.5, 1.0}) {
    const double y = y_of(lo + frac * (hi - lo), lo, hi);
    svg += "<line class=\"grid\" x1=\"" + num(kPlotX0) + "\" y1=\"" + num(y) +
           "\" x2=\"" + num(kPlotX1) + "\" y2=\"" + num(y) + "\"/>";
    svg += "<text class=\"tick\" x=\"" + num(kPlotX0 - 6) + "\" y=\"" +
           num(y + 3) + "\" text-anchor=\"end\">" +
           num(lo + frac * (hi - lo), "%.3g") + "</text>";
  }
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const util::Time t = t0 + static_cast<util::Time>(
                                  frac * static_cast<double>(t1 - t0));
    svg += "<text class=\"tick\" x=\"" + num(x_of(t, t0, t1)) +
           "\" y=\"166\" text-anchor=\"middle\">" +
           num(util::to_seconds(t), "%.1f") + "s</text>";
  }
  // Anomaly shading under the data marks.
  for (const auto& a : spans) {
    const double x0 = x_of(a.start, t0, t1), x1 = x_of(a.end, t0, t1);
    svg += "<rect class=\"anomaly\" x=\"" + num(x0) + "\" y=\"" +
           num(kPlotY0) + "\" width=\"" + num(std::max(x1 - x0, 2.0)) +
           "\" height=\"" + num(kPlotY1 - kPlotY0) + "\"/>";
  }
  for (const auto& cs : series) {
    if (cs.s == nullptr || cs.s->size() == 0) continue;
    const std::size_t n = cs.s->size();
    const std::size_t stride = std::max<std::size_t>(1, n / kMaxPointsPerSeries);
    std::string pts;
    for (std::size_t i = 0; i < n; i += stride) {
      pts += num(x_of(cs.s->t[i], t0, t1), "%.1f") + "," +
             num(y_of(cs.s->value(i), lo, hi), "%.1f") + " ";
    }
    svg += "<polyline class=\"line " + cs.css_class + "\" points=\"" + pts +
           "\"/>";
  }
  svg += "<line class=\"cross\" x1=\"0\" y1=\"" + num(kPlotY0) +
         "\" x2=\"0\" y2=\"" + num(kPlotY1) + "\" visibility=\"hidden\"/>";
  svg += "</svg>";

  // Embedded samples drive the hover tooltip (nearest timestamp).
  std::string data = "[";
  for (std::size_t k = 0; k < series.size(); ++k) {
    const auto* s = series[k].s;
    if (k) data += ",";
    data += "{\"label\":\"" + esc(series[k].label) + "\",\"t\":[";
    if (s != nullptr) {
      const std::size_t stride =
          std::max<std::size_t>(1, s->size() / kMaxPointsPerSeries);
      for (std::size_t i = 0; i < s->size(); i += stride) {
        if (i) data += ",";
        data += num(util::to_seconds(s->t[i]), "%.3f");
      }
      data += "],\"v\":[";
      bool first = true;
      for (std::size_t i = 0; i < s->size(); i += stride) {
        if (!first) data += ",";
        first = false;
        data += num(s->value(i), "%.6g");
      }
    } else {
      data += "],\"v\":[";
    }
    data += "]}";
  }
  data += "]";

  std::string html = "<figure class=\"chart\">";
  html += "<figcaption>" + esc(title);
  if (series.size() > 1) {
    html += "<span class=\"legend\">";
    for (const auto& cs : series) {
      html += "<span class=\"key\"><span class=\"chip " + cs.css_class +
              "\"></span>" + esc(cs.label) + "</span>";
    }
    html += "</span>";
  }
  html += "</figcaption>";
  html += "<div class=\"plot\" data-unit=\"" + esc(unit) + "\">" + svg;
  html += "<script type=\"application/json\" class=\"pts\">" + data +
          "</script>";
  html += "<div class=\"tip\" hidden></div></div></figure>";
  return html;
}

const char* kStateNames[3] = {"PRECISE", "DEGRADED", "FALLBACK"};
const char* kStateClasses[3] = {"st-good", "st-warn", "st-crit"};

std::string state_timeline(const Series* st) {
  if (st == nullptr || st->size() == 0) return "";
  const util::Time t0 = st->t.front(), t1 = st->t.back();
  std::string svg = "<svg viewBox=\"0 0 760 64\" role=\"img\" "
                    "aria-label=\"degradation state timeline\">";
  std::size_t i = 0;
  while (i < st->size()) {
    std::size_t j = i;
    while (j + 1 < st->size() && st->i64[j + 1] == st->i64[i]) ++j;
    const util::Time seg_end = j + 1 < st->size() ? st->t[j + 1] : t1;
    const int state =
        static_cast<int>(std::clamp<std::int64_t>(st->i64[i], 0, 2));
    const double x0 = x_of(st->t[i], t0, t1), x1 = x_of(seg_end, t0, t1);
    svg += "<rect class=\"" + std::string(kStateClasses[state]) + "\" x=\"" +
           num(x0) + "\" y=\"10\" width=\"" + num(std::max(x1 - x0, 1.0)) +
           "\" height=\"24\"><title>" + kStateNames[state] + " " +
           num(util::to_seconds(st->t[i]), "%.2f") + "s-" +
           num(util::to_seconds(seg_end), "%.2f") + "s</title></rect>";
    // Direct label when the segment is wide enough to hold it — state is
    // never encoded by color alone.
    if (x1 - x0 > 70) {
      svg += "<text class=\"seg\" x=\"" + num((x0 + x1) / 2) +
             "\" y=\"26\" text-anchor=\"middle\">" + kStateNames[state] +
             "</text>";
    }
    i = j + 1;
  }
  for (const double frac : {0.0, 0.5, 1.0}) {
    const util::Time t = t0 + static_cast<util::Time>(
                                  frac * static_cast<double>(t1 - t0));
    svg += "<text class=\"tick\" x=\"" + num(x_of(t, t0, t1)) +
           "\" y=\"52\" text-anchor=\"middle\">" +
           num(util::to_seconds(t), "%.1f") + "s</text>";
  }
  svg += "</svg>";
  std::string html = "<figure class=\"chart\"><figcaption>Degradation state"
                     "<span class=\"legend\">";
  for (int s = 0; s < 3; ++s) {
    html += "<span class=\"key\"><span class=\"chip " +
            std::string(kStateClasses[s]) + "\"></span>" + kStateNames[s] +
            "</span>";
  }
  html += "</span></figcaption>" + svg + "</figure>";
  return html;
}

std::string stat_tile(const std::string& label, const std::string& value,
                      const std::string& detail) {
  return "<div class=\"tile\"><div class=\"tile-label\">" + esc(label) +
         "</div><div class=\"tile-value\">" + esc(value) +
         "</div><div class=\"tile-detail\">" + esc(detail) + "</div></div>";
}

// Styling follows the repo's chart conventions: validated categorical
// palette (slot 1 blue, slot 2 orange), status colors paired with text
// labels, text in ink tokens, dark mode as its own selected steps.
const char* kCss = R"css(
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px; background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  --surface-1: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --st-good: #0ca30c; --st-warn: #fab219; --st-crit: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  body {
    background: #0d0d0d; color: #ffffff;
    --surface-1: #1a1a19; --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile-label { color: var(--text-secondary); font-size: 12px; }
.tile-value { font-size: 26px; font-weight: 600; }
.tile-detail { color: var(--muted); font-size: 12px; }
figure.chart {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; margin: 0 0 16px; max-width: 820px;
}
figcaption {
  font-weight: 600; margin-bottom: 6px;
  display: flex; justify-content: space-between; align-items: baseline;
}
.legend { font-weight: 400; font-size: 12px; color: var(--text-secondary); }
.key { margin-left: 12px; }
.chip {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 4px; vertical-align: baseline;
}
.chip.series-1 { background: var(--series-1); }
.chip.series-2 { background: var(--series-2); }
.chip.st-good { background: var(--st-good); }
.chip.st-warn { background: var(--st-warn); }
.chip.st-crit { background: var(--st-crit); }
svg { width: 100%; height: auto; display: block; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.line.series-1 { stroke: var(--series-1); }
.line.series-2 { stroke: var(--series-2); }
.grid { stroke: var(--grid); stroke-width: 1; }
.tick, .seg { font-size: 10px; fill: var(--muted); }
.seg { fill: #0b0b0b; font-weight: 600; }
rect.st-good { fill: var(--st-good); }
rect.st-warn { fill: var(--st-warn); }
rect.st-crit { fill: var(--st-crit); }
.anomaly { fill: var(--st-crit); opacity: 0.12; }
.cross { stroke: var(--muted); stroke-width: 1; stroke-dasharray: 3 3; }
.plot { position: relative; }
.tip {
  position: absolute; pointer-events: none; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px; padding: 4px 8px;
  font-size: 12px; color: var(--text-primary); white-space: nowrap;
  box-shadow: 0 2px 8px rgba(0,0,0,0.15);
}
table { border-collapse: collapse; background: var(--surface-1); }
th, td {
  border: 1px solid var(--grid); padding: 4px 10px; text-align: right;
  font-variant-numeric: tabular-nums;
}
th:first-child, td:first-child { text-align: left; }
details { margin-bottom: 16px; }
summary { cursor: pointer; color: var(--text-secondary); }
)css";

// Hover crosshair + tooltip: nearest sample by x, all series' values.
const char* kJs = R"js(
document.querySelectorAll('.plot').forEach(function (plot) {
  var svg = plot.querySelector('svg');
  var tip = plot.querySelector('.tip');
  var cross = plot.querySelector('.cross');
  var ptsEl = plot.querySelector('.pts');
  if (!svg || !tip || !cross || !ptsEl) return;
  var series = JSON.parse(ptsEl.textContent);
  if (!series.length || !series[0].t.length) return;
  var t0 = Infinity, t1 = -Infinity;
  series.forEach(function (s) {
    if (s.t.length) { t0 = Math.min(t0, s.t[0]); t1 = Math.max(t1, s.t[s.t.length - 1]); }
  });
  var X0 = 56, X1 = 748;
  svg.addEventListener('mousemove', function (ev) {
    var box = svg.getBoundingClientRect();
    var xv = (ev.clientX - box.left) / box.width * 760;
    if (xv < X0 || xv > X1) { tip.hidden = true; cross.setAttribute('visibility', 'hidden'); return; }
    var tq = t0 + (xv - X0) / (X1 - X0) * (t1 - t0);
    var lines = [tq.toFixed(2) + ' s'];
    series.forEach(function (s) {
      if (!s.t.length) return;
      var lo = 0, hi = s.t.length - 1;
      while (hi - lo > 1) { var m = (lo + hi) >> 1; if (s.t[m] < tq) lo = m; else hi = m; }
      var i = (tq - s.t[lo] < s.t[hi] - tq) ? lo : hi;
      lines.push(s.label + ': ' + Number(s.v[i]).toPrecision(4));
    });
    tip.textContent = lines.join('  ·  ');
    tip.hidden = false;
    tip.style.left = Math.min(ev.clientX - box.left + 12, box.width - 160) + 'px';
    tip.style.top = '4px';
    cross.setAttribute('x1', xv); cross.setAttribute('x2', xv);
    cross.setAttribute('visibility', 'visible');
  });
  svg.addEventListener('mouseleave', function () {
    tip.hidden = true; cross.setAttribute('visibility', 'hidden');
  });
});
)js";

}  // namespace

std::string render_html(const Recorder& rec, const Summary& summary,
                        const std::string& title) {
  std::string html = "<!doctype html><html><head><meta charset=\"utf-8\">";
  html += "<meta name=\"viewport\" content=\"width=device-width\">";
  html += "<title>" + esc(title) + "</title><style>" + kCss +
          "</style></head><body>";
  html += "<h1>" + esc(title) + "</h1>";
  std::string sub = "span " +
                    num(util::to_seconds(summary.t_end - summary.t_begin),
                        "%.1f") +
                    " s · " + std::to_string(summary.n_series) + " series · " +
                    std::to_string(summary.n_samples) + " samples";
  for (const auto& [k, v] : rec.meta()) sub += " · " + k + "=" + v;
  html += "<div class=\"sub\">" + esc(sub) + "</div>";

  // --- Stat tiles.
  html += "<div class=\"tiles\">";
  for (const auto& c : summary.cells) {
    if (c.err.n == 0) continue;
    html += stat_tile("cell " + c.cell + " P95 rel error",
                      num(c.err.p95_rel * 100, "%.1f") + "%",
                      "P50 " + num(c.err.p50_rel * 100, "%.1f") + "% over " +
                          std::to_string(c.err.n) + " samples");
  }
  if (summary.final_decode_success >= 0) {
    html += stat_tile("decode success",
                      num(summary.final_decode_success * 100, "%.1f") + "%",
                      summary.candidates_per_sec >= 0
                          ? num(summary.candidates_per_sec, "%.0f") +
                                " candidates/s"
                          : "");
  }
  if (summary.violations >= 0) {
    html += stat_tile("invariant violations",
                      std::to_string(summary.violations),
                      summary.violations == 0 ? "clean run" : "check failed");
  }
  if (!summary.anomalies.empty() || !summary.cells.empty()) {
    html += stat_tile("anomaly windows",
                      std::to_string(summary.anomalies.size()),
                      "rel error above bound");
  }
  html += "</div>";

  // --- Per-cell capacity vs estimate.
  for (const auto& c : summary.cells) {
    std::vector<Anomaly> spans;
    for (const auto& a : summary.anomalies) {
      if (a.cell == c.cell) spans.push_back(a);
    }
    html += line_chart(
        "Cell " + c.cell + " — schedulable capacity vs estimate", "bits/sf",
        {{rec.find("truth.cell" + c.cell + ".fair_bits_sf"), "ground truth",
          "series-1"},
         {rec.find("est.cell" + c.cell + ".cf_bits_sf"), "estimate",
          "series-2"}},
        spans);
  }

  html += state_timeline(rec.find("pbe.degradation_state"));

  html += line_chart("Sender pacing rate vs PBE feedback", "bps",
                     {{rec.find("flow.pacing_bps"), "pacing", "series-1"},
                      {rec.find("pbe.feedback_bps"), "feedback", "series-2"}},
                     {});
  html += line_chart("Base-station queue depth", "bytes",
                     {{rec.find("bs.queue_bytes"), "queue", "series-1"}}, {});
  html += line_chart("Decode success rate", "ratio",
                     {{rec.find("decode.success_rate"), "success", "series-1"}},
                     {});

  // --- Accessible table view of the summary numbers.
  html += "<details><summary>Summary table</summary><table><tr>"
          "<th>cell</th><th>samples</th><th>P50 rel</th><th>P95 rel</th>"
          "<th>mean rel</th><th>steps</th><th>mean lag ms</th></tr>";
  for (const auto& c : summary.cells) {
    html += "<tr><td>" + esc(c.cell) + "</td><td>" +
            std::to_string(c.err.n) + "</td><td>" +
            num(c.err.p50_rel * 100, "%.2f") + "%</td><td>" +
            num(c.err.p95_rel * 100, "%.2f") + "%</td><td>" +
            num(c.err.mean_rel * 100, "%.2f") + "%</td><td>" +
            std::to_string(c.lag.steps) + "</td><td>" +
            num(c.lag.mean_lag_ms, "%.0f") + "</td></tr>";
  }
  html += "</table></details>";

  if (!summary.anomalies.empty()) {
    html += "<details open><summary>Anomalies</summary><table><tr>"
            "<th>cell</th><th>start s</th><th>end s</th><th>peak rel</th>"
            "<th>samples</th></tr>";
    for (const auto& a : summary.anomalies) {
      html += "<tr><td>" + esc(a.cell) + "</td><td>" +
              num(util::to_seconds(a.start), "%.2f") + "</td><td>" +
              num(util::to_seconds(a.end), "%.2f") + "</td><td>" +
              num(a.peak_rel_err * 100, "%.0f") + "%</td><td>" +
              std::to_string(a.samples) + "</td></tr>";
    }
    html += "</table></details>";
  }

  html += "<script>" + std::string(kJs) + "</script></body></html>";
  return html;
}

}  // namespace pbecc::tel
