#include "tel/sampler.h"

#include <string>

namespace pbecc::tel {

PipelineSampler::PipelineSampler(Recorder* rec, util::Duration interval)
    : rec_(rec),
      interval_(interval > 0 ? interval : util::kMillisecond),
      next_t_(interval_) {}

void PipelineSampler::attach(const decoder::Monitor* monitor,
                             const pbe::CapacityEstimator* estimator) {
  monitor_ = monitor;
  estimator_ = estimator;
}

void PipelineSampler::on_batch_end(std::int64_t sf_index) {
  const util::Time t = util::subframe_start(sf_index + 1);
  if (t < next_t_) return;
  sample(t);
  next_t_ = (t / interval_) * interval_ + interval_;
}

void PipelineSampler::sample(util::Time now) {
  if constexpr (!kCompiled) return;
  if (estimator_ != nullptr) {
    // The aggregate queries mirror the client's ACK-time probes; they only
    // expire window state monotonically, so sampling never perturbs the
    // estimates a run would otherwise produce (replay fidelity depends on
    // this — see cap_test's telemetry digest check).
    rec_->append_f64("est.cf_bits_sf", "bits/sf", now,
                     estimator_->fair_share_capacity(now));
    rec_->append_f64("est.cp_bits_sf", "bits/sf", now,
                     estimator_->available_capacity(now));
    rec_->append_i64("est.active_cells", "cells", now,
                     estimator_->active_cell_count(now));
    for (const auto& c : estimator_->cell_snapshots(now)) {
      const std::string prefix = "est.cell" + std::to_string(c.cell) + ".";
      rec_->append_f64(prefix + "cf_bits_sf", "bits/sf", now, c.cf_bits_sf);
      rec_->append_f64(prefix + "cp_bits_sf", "bits/sf", now, c.cp_bits_sf);
      rec_->append_f64(prefix + "users", "users", now, c.users);
      rec_->append_i64(prefix + "active", "bool", now, c.active ? 1 : 0);
      rec_->append_i64(prefix + "prbs", "prbs", now, c.cell_prbs);
    }
  }
  if (monitor_ != nullptr) {
    rec_->append_f64("decode.success_rate", "ratio", now,
                     monitor_->decode_success_rate(now));
    rec_->append_i64("decode.attempts", "count", now,
                     static_cast<std::int64_t>(monitor_->decode_attempts()));
    rec_->append_i64("decode.failures", "count", now,
                     static_cast<std::int64_t>(monitor_->decode_failures()));
    rec_->append_i64(
        "decode.candidates", "count", now,
        static_cast<std::int64_t>(monitor_->total_candidates_tried()));
  }
}

Sampler::Sampler(SamplerConfig cfg)
    : cfg_(cfg),
      rec_(cfg.max_samples_per_series),
      pipeline_(&rec_, cfg.interval) {}

}  // namespace pbecc::tel
