// Typed, columnar time series for run telemetry (DESIGN.md §12).
//
// A Recorder holds named series — each a column of (sim-time, value)
// samples, either f64 (rates, capacities, confidence) or i64 (counters,
// state enums, queue depths). Series are ring-bounded so an unbounded soak
// cannot grow memory without limit, and everything about them is
// deterministic: names sort lexicographically, values are appended in
// simulation order, and the digest() is a byte-exact FNV-1a over the whole
// recording — the instrument behind the record→replay and thread-count
// byte-identity checks.
//
// Timestamps are always simulation time (util::Time, microseconds). Never
// wall clock: telemetry must be byte-stable across reruns of the same
// seed, and wall-clock stamps would break that (see DESIGN.md §12).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tel/flags.h"
#include "util/time.h"

namespace pbecc::tel {

// Bumped whenever the series schema (names, units, encodings) changes
// incompatibly; stamped into exports and the .tsv.pbt header so diff
// tooling can refuse cross-schema comparisons instead of mis-joining.
inline constexpr std::uint32_t kSchemaVersion = 1;

enum class ValueKind : std::uint8_t { kF64 = 0, kI64 = 1 };

struct Series {
  std::string name;
  std::string unit;  // free-form: "bits/sf", "bps", "bytes", "state", ...
  ValueKind kind = ValueKind::kF64;
  std::vector<util::Time> t;
  std::vector<double> f64;        // parallel to t when kind == kF64
  std::vector<std::int64_t> i64;  // parallel to t when kind == kI64

  std::size_t size() const { return t.size(); }
  // Uniform read access for analysis code (i64 widened losslessly for the
  // magnitudes recorded here).
  double value(std::size_t i) const {
    return kind == ValueKind::kF64 ? f64[i] : static_cast<double>(i64[i]);
  }
};

class Recorder {
 public:
  // `max_samples_per_series`: ring bound. When a series fills up, its
  // oldest half is dropped in one deterministic step (amortised O(1) per
  // sample). The default holds ~3 hours of 10 ms samples.
  explicit Recorder(std::size_t max_samples_per_series = 1u << 20);

  // Run-level metadata (scenario name, seed, interval, fault profile...).
  // Keys are stored sorted; values must not contain newlines. Sim-clock
  // only — callers must never stamp wall-clock times here.
  void set_meta(std::string_view key, std::string_view value);
  const std::map<std::string, std::string>& meta() const { return meta_; }

  // Append one sample. The (name, unit, kind) triple is fixed by the first
  // append; later appends with a conflicting kind are ignored (and
  // counted) rather than corrupting the column. No-ops when the telemetry
  // layer is compiled out.
  void append_f64(std::string_view name, std::string_view unit, util::Time t,
                  double v);
  void append_i64(std::string_view name, std::string_view unit, util::Time t,
                  std::int64_t v);

  const std::map<std::string, Series, std::less<>>& series() const {
    return series_;
  }
  const Series* find(std::string_view name) const;
  std::size_t total_samples() const;
  std::uint64_t kind_conflicts() const { return kind_conflicts_; }
  std::size_t max_samples_per_series() const { return max_samples_; }

  // Order-sensitive FNV-1a over meta + every series (name, unit, kind,
  // timestamps, value bit patterns). One 64-bit compare decides
  // byte-identity of two recordings.
  std::uint64_t digest() const;

  // Deterministic exports: sorted keys, fixed field order, %.17g doubles
  // (round-trippable). JSON shape:
  //   {"schema_version":1,"meta":{...},"series":[{"name":...,"unit":...,
  //    "kind":"f64","t":[...],"v":[...]}, ...]}
  std::string to_json() const;
  // Long/tidy CSV: header "series,unit,t_us,value" then one row per sample.
  std::string to_csv() const;

 private:
  Series& series_for(std::string_view name, std::string_view unit,
                     ValueKind kind, bool& kind_ok);

  std::size_t max_samples_;
  std::map<std::string, Series, std::less<>> series_;
  std::map<std::string, std::string> meta_;
  std::uint64_t kind_conflicts_ = 0;
};

}  // namespace pbecc::tel
