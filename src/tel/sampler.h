// Cadenced snapshotting of the PBE pipeline into a Recorder.
//
// Two halves, split by what drives them:
//
//  * PipelineSampler is driven by the measurement pipeline itself — the
//    client's on_batch_end tap (live) or ReplayDriver's batch-end hook
//    (replay). Because both fire at the same subframe boundaries with the
//    same monitor/estimator state, a recording and its replay export
//    byte-identical `est.*` / `decode.*` series; that identity is the
//    acceptance gate for simulator-free postmortems.
//
//  * Everything only the simulator knows — ground-truth cell capacity,
//    flow cwnd/pacing/inflight, base-station queue depth, invariant
//    violation counts — is appended by the scenario's own sampling event
//    (sim::Scenario wires it; see scenario.cpp) into the same Recorder,
//    on the same sim-clock cadence. tel stays free of sim/mac/net
//    dependencies that way.
//
// Cadence rule (DESIGN.md §12): samples are taken on the simulation
// clock, at t = k * interval. The pipeline half samples at the first
// batch end at or after each boundary, so on the dense batch streams the
// base station produces (one batch per subframe), live, replayed, and
// loop-driven samples all land on identical timestamps and join exactly.
#pragma once

#include <cstdint>

#include "decoder/monitor.h"
#include "pbe/capacity_estimator.h"
#include "tel/series.h"
#include "util/time.h"

namespace pbecc::tel {

struct SamplerConfig {
  util::Duration interval = 10 * util::kMillisecond;
  std::size_t max_samples_per_series = 1u << 20;
};

class PipelineSampler {
 public:
  PipelineSampler(Recorder* rec, util::Duration interval);

  // Both unowned; must outlive the sampler. Either may be null (the
  // corresponding series are simply not recorded).
  void attach(const decoder::Monitor* monitor,
              const pbe::CapacityEstimator* estimator);

  // Wire to pbe::ClientTaps::on_batch_end / cap::ReplayDriver's batch-end
  // hook. `sf_index` is the subframe the batch covered; the sample carries
  // the estimator's `now` convention (start of the following subframe).
  void on_batch_end(std::int64_t sf_index);

  // Take one sample immediately, stamped `now` (cadence state unchanged).
  void sample(util::Time now);

 private:
  Recorder* rec_;
  const decoder::Monitor* monitor_ = nullptr;
  const pbe::CapacityEstimator* estimator_ = nullptr;
  util::Duration interval_;
  util::Time next_t_;
};

// Owns the Recorder and the pipeline half for one run.
class Sampler {
 public:
  explicit Sampler(SamplerConfig cfg = {});

  Recorder& recorder() { return rec_; }
  const Recorder& recorder() const { return rec_; }
  PipelineSampler& pipeline() { return pipeline_; }
  util::Duration interval() const { return cfg_.interval; }

 private:
  SamplerConfig cfg_;
  Recorder rec_;
  PipelineSampler pipeline_;
};

}  // namespace pbecc::tel
