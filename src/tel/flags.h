// Compile-time switch for the telemetry layer.
//
// The CMake option PBECC_TEL (default ON) defines PBECC_TEL_ENABLED on
// every target that links pbecc_tel. When the option is OFF the API still
// compiles — recorders drop samples on the floor and the wiring layers
// skip installing sampling hooks entirely — so call sites never need
// #ifdef guards and a release build pays nothing on the hot path (the
// per-batch tap stays an unset std::function, exactly like PBECC_TRACE).
#pragma once

namespace pbecc::tel {

#if defined(PBECC_TEL_ENABLED)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

}  // namespace pbecc::tel
