// On-disk format for telemetry recordings: `.tsv.pbt` (DESIGN.md §12).
//
// Layout (all little-endian, reusing the cap varint codec):
//
//   magic "PBTS" | u16 container version
//   block*                      -- framed: u32 len | payload | u32 crc32
//
// The first block is the header (schema version, series count, sorted
// meta key/value pairs); each following block is one series, in sorted
// name order: name, unit, value kind, sample count, then the timestamps
// as zigzag varint deltas and the values delta-coded (f64 as
// varint(bits XOR previous bits), i64 as zigzag varint deltas). Delta
// coding makes 10 ms cadence timestamps one byte each and flat stretches
// of a series nearly free.
//
// Reading fails closed exactly like the .pbt trace reader: every length is
// bounds-checked against a hard cap, every payload is CRC-verified, the
// header's series count must match the blocks present, and trailing bytes
// after the last series are an error — a truncated or bit-flipped file
// yields an error message, never a silently shortened recording.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tel/series.h"

namespace pbecc::tel {

inline constexpr char kFileMagic[4] = {'P', 'B', 'T', 'S'};
inline constexpr std::uint16_t kContainerVersion = 1;
// No legitimate block approaches this; a corrupt length field must not
// drive a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxBlockBytes = 1u << 26;

// Serialize the whole recording (meta + every series).
std::vector<std::uint8_t> encode(const Recorder& rec);

// Parse an encoded recording into `out` (which should be freshly
// constructed). Returns false and sets `*err` on any malformed input;
// `out` contents are unspecified on failure.
bool decode(const std::uint8_t* data, std::size_t len, Recorder* out,
            std::string* err);

// File convenience wrappers. Both return false and set `*err` on I/O or
// format errors.
bool write_file(const Recorder& rec, const std::string& path,
                std::string* err);
bool read_file(const std::string& path, Recorder* out, std::string* err);

}  // namespace pbecc::tel
