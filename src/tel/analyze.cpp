#include "tel/analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "util/stats.h"

namespace pbecc::tel {

namespace {

// Equal-timestamp inner join of two series (both time-sorted by
// construction). Calls fn(t, va, vb).
template <typename Fn>
void join(const Series& a, const Series& b, Fn&& fn) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.t[i] < b.t[j]) {
      ++i;
    } else if (b.t[j] < a.t[i]) {
      ++j;
    } else {
      fn(a.t[i], a.value(i), b.value(j));
      ++i;
      ++j;
    }
  }
}

// Cell ids appearing as est.cell<id>.cf_bits_sf or truth.cell<id>.*.
std::set<std::string> cell_ids(const Recorder& rec) {
  std::set<std::string> ids;
  for (const auto& [name, s] : rec.series()) {
    for (const std::string_view prefix : {"est.cell", "truth.cell"}) {
      if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      const std::size_t dot = name.find('.', prefix.size());
      if (dot == std::string::npos || dot == prefix.size()) continue;
      const std::string id = name.substr(prefix.size(), dot - prefix.size());
      if (std::all_of(id.begin(), id.end(),
                      [](char c) { return c >= '0' && c <= '9'; })) {
        ids.insert(id);
      }
    }
  }
  return ids;
}

ErrorStats error_stats(const Series& est, const Series& truth,
                       const AnalyzeConfig& cfg) {
  util::SampleSet abs_err, rel_err;
  join(est, truth, [&](util::Time t, double e, double tr) {
    if (t < cfg.warmup) return;
    if (tr <= 0) return;  // no schedulable capacity: relative error undefined
    const double abs = std::fabs(e - tr);
    abs_err.add(abs);
    rel_err.add(abs / tr);
  });
  ErrorStats out;
  out.n = rel_err.count();
  if (out.n == 0) return out;
  out.p50_abs = abs_err.percentile(50);
  out.p95_abs = abs_err.percentile(95);
  out.p50_rel = rel_err.percentile(50);
  out.p95_rel = rel_err.percentile(95);
  out.mean_rel = rel_err.mean();
  out.max_rel = rel_err.max();
  return out;
}

StepLagStats step_lag(const Series& est, const Series& truth,
                      const AnalyzeConfig& cfg) {
  // Collect the joined samples first; lag measurement walks forward from
  // each detected step.
  std::vector<util::Time> t;
  std::vector<double> e, tr;
  join(est, truth, [&](util::Time tt, double ee, double trr) {
    t.push_back(tt);
    e.push_back(ee);
    tr.push_back(trr);
  });
  StepLagStats out;
  util::SampleSet lags;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] < cfg.warmup) continue;
    const double base = std::max(std::fabs(tr[i - 1]), 1.0);
    if (std::fabs(tr[i] - tr[i - 1]) / base < cfg.step_fraction) continue;
    ++out.steps;
    bool tracked = false;
    for (std::size_t j = i; j < t.size() && t[j] - t[i] <= cfg.step_search_horizon;
         ++j) {
      if (tr[j] <= 0) continue;
      if (std::fabs(e[j] - tr[j]) / tr[j] <= cfg.tracked_fraction) {
        lags.add(util::to_millis(t[j] - t[i]));
        tracked = true;
        break;
      }
    }
    if (tracked) ++out.tracked;
  }
  if (!lags.empty()) {
    out.mean_lag_ms = lags.mean();
    out.max_lag_ms = lags.max();
  }
  return out;
}

std::vector<Anomaly> find_anomalies(const std::string& cell, const Series& est,
                                    const Series& truth,
                                    const AnalyzeConfig& cfg) {
  std::vector<Anomaly> out;
  Anomaly cur;
  std::size_t run = 0;
  const auto flush = [&](util::Time end) {
    if (run > cfg.anomaly_min_samples) {
      cur.cell = cell;
      cur.end = end;
      cur.samples = run;
      out.push_back(cur);
    }
    run = 0;
    cur = Anomaly{};
  };
  util::Time last_t = 0;
  join(est, truth, [&](util::Time t, double e, double tr) {
    last_t = t;
    const double rel = tr > 0 ? std::fabs(e - tr) / tr : 0.0;
    if (t >= cfg.warmup && rel > cfg.anomaly_rel) {
      if (run == 0) cur.start = t;
      cur.peak_rel_err = std::max(cur.peak_rel_err, rel);
      ++run;
    } else {
      flush(t);
    }
  });
  flush(last_t);
  return out;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace

Summary summarize(const Recorder& rec, const AnalyzeConfig& cfg) {
  Summary s;
  s.schema_version = kSchemaVersion;
  s.n_series = rec.series().size();
  s.n_samples = rec.total_samples();
  bool any = false;
  for (const auto& [name, ser] : rec.series()) {
    if (ser.size() == 0) continue;
    if (!any) {
      s.t_begin = ser.t.front();
      s.t_end = ser.t.back();
      any = true;
    } else {
      s.t_begin = std::min(s.t_begin, ser.t.front());
      s.t_end = std::max(s.t_end, ser.t.back());
    }
  }

  for (const std::string& id : cell_ids(rec)) {
    const Series* est = rec.find("est.cell" + id + ".cf_bits_sf");
    const Series* truth = rec.find("truth.cell" + id + ".fair_bits_sf");
    if (est == nullptr || truth == nullptr) continue;
    CellAccuracy acc;
    acc.cell = id;
    acc.err = error_stats(*est, *truth, cfg);
    acc.lag = step_lag(*est, *truth, cfg);
    s.cells.push_back(std::move(acc));
    for (Anomaly& a : find_anomalies(id, *est, *truth, cfg)) {
      s.anomalies.push_back(std::move(a));
    }
  }

  if (const Series* st = rec.find("pbe.degradation_state");
      st != nullptr && st->size() > 0) {
    s.has_dwell = true;
    for (std::size_t i = 0; i + 1 < st->size(); ++i) {
      const double dt = util::to_seconds(st->t[i + 1] - st->t[i]);
      switch (st->i64[i]) {
        case 0: s.dwell.precise_s += dt; break;
        case 1: s.dwell.degraded_s += dt; break;
        default: s.dwell.fallback_s += dt; break;
      }
      if (st->i64[i + 1] != st->i64[i]) ++s.dwell.transitions;
    }
  }

  if (const Series* d = rec.find("decode.success_rate");
      d != nullptr && d->size() > 0) {
    s.final_decode_success = d->f64.back();
  }
  if (const Series* c = rec.find("decode.candidates");
      c != nullptr && c->size() > 1 && c->t.back() > c->t.front()) {
    s.candidates_per_sec =
        static_cast<double>(c->i64.back() - c->i64.front()) /
        util::to_seconds(c->t.back() - c->t.front());
  }
  if (const Series* v = rec.find("check.violations");
      v != nullptr && v->size() > 0) {
    s.violations = v->i64.back();
  }
  return s;
}

std::string render_summary_text(const Summary& s) {
  std::string out;
  out += "telemetry summary: " + std::to_string(s.n_series) + " series, " +
         std::to_string(s.n_samples) + " samples, span " +
         fmt("%.2f", util::to_seconds(s.t_end - s.t_begin)) + " s\n";
  for (const auto& c : s.cells) {
    out += "  cell " + c.cell + " capacity estimate vs ground truth (" +
           std::to_string(c.err.n) + " joined samples)\n";
    if (c.err.n > 0) {
      out += "    abs error  P50 " + fmt("%.0f", c.err.p50_abs) + "  P95 " +
             fmt("%.0f", c.err.p95_abs) + " bits/sf\n";
      out += "    rel error  P50 " + fmt("%.1f", c.err.p50_rel * 100) +
             "%  P95 " + fmt("%.1f", c.err.p95_rel * 100) + "%  mean " +
             fmt("%.1f", c.err.mean_rel * 100) + "%  max " +
             fmt("%.1f", c.err.max_rel * 100) + "%\n";
    }
    if (c.lag.steps > 0) {
      out += "    capacity steps " + std::to_string(c.lag.steps) +
             ", tracked " + std::to_string(c.lag.tracked) + ", lag mean " +
             fmt("%.0f", c.lag.mean_lag_ms) + " ms  max " +
             fmt("%.0f", c.lag.max_lag_ms) + " ms\n";
    }
  }
  if (s.has_dwell) {
    out += "  degradation dwell: PRECISE " + fmt("%.2f", s.dwell.precise_s) +
           " s, DEGRADED " + fmt("%.2f", s.dwell.degraded_s) +
           " s, FALLBACK " + fmt("%.2f", s.dwell.fallback_s) + " s (" +
           std::to_string(s.dwell.transitions) + " transitions)\n";
  }
  if (s.final_decode_success >= 0) {
    out += "  decode success rate (final): " +
           fmt("%.1f", s.final_decode_success * 100) + "%";
    if (s.candidates_per_sec >= 0) {
      out += ", candidates/s " + fmt("%.0f", s.candidates_per_sec);
    }
    out += "\n";
  }
  if (s.violations >= 0) {
    out += "  check.violations: " + std::to_string(s.violations) + "\n";
  }
  if (s.anomalies.empty()) {
    out += "  anomalies: none\n";
  } else {
    out += "  anomalies: " + std::to_string(s.anomalies.size()) + "\n";
    for (const auto& a : s.anomalies) {
      out += "    cell " + a.cell + "  [" +
             fmt("%.2f", util::to_seconds(a.start)) + " s, " +
             fmt("%.2f", util::to_seconds(a.end)) + " s]  peak rel err " +
             fmt("%.0f", a.peak_rel_err * 100) + "% over " +
             std::to_string(a.samples) + " samples\n";
    }
  }
  return out;
}

DiffResult diff(const Recorder& a, const Recorder& b,
                const DiffThresholds& th) {
  DiffResult out;
  // Comparing runs recorded at different cadences would mis-join every
  // series; refuse rather than report nonsense deltas.
  const auto ia = a.meta().find("interval_us");
  const auto ib = b.meta().find("interval_us");
  if (ia != a.meta().end() && ib != b.meta().end() && ia->second != ib->second) {
    out.schema_mismatch = true;
  }

  std::set<std::string> names;
  for (const auto& [n, s] : a.series()) names.insert(n);
  for (const auto& [n, s] : b.series()) names.insert(n);
  for (const std::string& name : names) {
    const Series* sa = a.find(name);
    const Series* sb = b.find(name);
    SeriesDelta d;
    d.name = name;
    if (sa == nullptr || sb == nullptr) {
      d.flagged = true;
      d.note = sa == nullptr ? "new-in-b" : "missing-in-b";
      if (sa != nullptr) d.n_a = sa->size();
      if (sb != nullptr) d.n_b = sb->size();
      ++out.flagged;
      out.deltas.push_back(std::move(d));
      continue;
    }
    ++out.compared;
    d.n_a = sa->size();
    d.n_b = sb->size();
    double sum_a = 0, sum_b = 0;
    for (std::size_t i = 0; i < sa->size(); ++i) sum_a += sa->value(i);
    for (std::size_t i = 0; i < sb->size(); ++i) sum_b += sb->value(i);
    d.mean_a = sa->size() ? sum_a / static_cast<double>(sa->size()) : 0;
    d.mean_b = sb->size() ? sum_b / static_cast<double>(sb->size()) : 0;
    const double base = std::max(std::fabs(d.mean_a), th.mean_floor);
    d.rel_delta = std::fabs(d.mean_b - d.mean_a) / base;
    const double count_base =
        std::max<double>(static_cast<double>(d.n_a), 1.0);
    const double count_delta =
        std::fabs(static_cast<double>(d.n_b) - static_cast<double>(d.n_a)) /
        count_base;
    if (d.rel_delta > th.mean_rel) {
      d.flagged = true;
      d.note = "mean";
    } else if (count_delta > th.count_rel &&
               d.n_a != d.n_b) {
      d.flagged = true;
      d.note = "count";
    }
    if (d.flagged) ++out.flagged;
    out.deltas.push_back(std::move(d));
  }
  return out;
}

std::string render_diff_text(const DiffResult& d) {
  std::string out;
  if (d.schema_mismatch) {
    out += "DIFF: sampling interval mismatch between runs — not comparable\n";
  }
  out += "compared " + std::to_string(d.compared) + " series, " +
         std::to_string(d.flagged) + " flagged\n";
  for (const auto& s : d.deltas) {
    if (!s.flagged) continue;
    out += "  " + s.name + " [" + s.note + "]";
    if (s.note == "mean") {
      out += "  mean " + fmt("%.6g", s.mean_a) + " -> " + fmt("%.6g", s.mean_b) +
             " (" + fmt("%+.2f", (s.mean_b - s.mean_a) >= 0
                                     ? s.rel_delta * 100
                                     : -s.rel_delta * 100) +
             "%)";
    } else if (s.note == "count") {
      out += "  samples " + std::to_string(s.n_a) + " -> " +
             std::to_string(s.n_b);
    }
    out += "\n";
  }
  if (d.flagged == 0 && !d.schema_mismatch) out += "runs match within thresholds\n";
  return out;
}

}  // namespace pbecc::tel
