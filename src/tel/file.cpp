#include "tel/file.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "cap/wire.h"
#include "util/crc.h"

namespace pbecc::tel {

namespace {

enum BlockKind : std::uint8_t { kHeaderBlock = 0, kSeriesBlock = 1 };

void put_string(cap::ByteWriter& w, const std::string& s) {
  w.put_varint(s.size());
  w.put_bytes(s.data(), s.size());
}

bool get_string(cap::ByteReader& r, std::string* out) {
  const std::uint64_t n = r.get_varint();
  if (!r.ok()) return false;
  if (n > kMaxBlockBytes) {
    r.fail("string length exceeds block cap");
    return false;
  }
  const std::uint8_t* p = r.get_bytes(static_cast<std::size_t>(n));
  if (p == nullptr) return false;
  out->assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
  return true;
}

void frame_block(std::vector<std::uint8_t>& out, const cap::ByteWriter& payload) {
  cap::ByteWriter frame;
  frame.put_u32(static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), frame.buf().begin(), frame.buf().end());
  out.insert(out.end(), payload.buf().begin(), payload.buf().end());
  cap::ByteWriter crc;
  crc.put_u32(util::crc32(payload.buf().data(), payload.size()));
  out.insert(out.end(), crc.buf().begin(), crc.buf().end());
}

void encode_series(cap::ByteWriter& w, const Series& s) {
  w.put_u8(kSeriesBlock);
  put_string(w, s.name);
  put_string(w, s.unit);
  w.put_u8(static_cast<std::uint8_t>(s.kind));
  w.put_varint(s.size());
  util::Time prev_t = 0;
  for (const util::Time t : s.t) {
    w.put_svarint(t - prev_t);
    prev_t = t;
  }
  if (s.kind == ValueKind::kF64) {
    std::uint64_t prev_bits = 0;
    for (const double v : s.f64) {
      const auto bits = std::bit_cast<std::uint64_t>(v);
      // XOR against the previous sample: identical consecutive values — the
      // common case for state gauges and slow-moving rates — cost one byte.
      w.put_varint(bits ^ prev_bits);
      prev_bits = bits;
    }
  } else {
    std::int64_t prev = 0;
    for (const std::int64_t v : s.i64) {
      w.put_svarint(v - prev);
      prev = v;
    }
  }
}

bool decode_series(cap::ByteReader& r, Recorder* out) {
  Series s;
  if (!get_string(r, &s.name) || !get_string(r, &s.unit)) return false;
  const std::uint8_t kind = r.get_u8();
  if (kind > static_cast<std::uint8_t>(ValueKind::kI64)) {
    r.fail("unknown series value kind");
    return false;
  }
  s.kind = static_cast<ValueKind>(kind);
  const std::uint64_t n = r.get_varint();
  if (!r.ok()) return false;
  // Each sample needs at least two bytes (delta-t + value); anything
  // claiming more samples than bytes is corrupt.
  if (n > r.remaining()) {
    r.fail("series sample count exceeds payload size");
    return false;
  }
  util::Time prev_t = 0;
  std::vector<util::Time> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    prev_t += r.get_svarint();
    ts.push_back(prev_t);
  }
  if (s.kind == ValueKind::kF64) {
    std::uint64_t prev_bits = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      prev_bits ^= r.get_varint();
      if (!r.ok()) return false;
      out->append_f64(s.name, s.unit, ts[static_cast<std::size_t>(i)],
                      std::bit_cast<double>(prev_bits));
    }
  } else {
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      prev += r.get_svarint();
      if (!r.ok()) return false;
      out->append_i64(s.name, s.unit, ts[static_cast<std::size_t>(i)], prev);
    }
  }
  if (!r.ok()) return false;
  if (!r.at_end()) {
    r.fail("trailing bytes after series samples");
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode(const Recorder& rec) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kFileMagic, kFileMagic + 4);
  cap::ByteWriter ver;
  ver.put_u16(kContainerVersion);
  out.insert(out.end(), ver.buf().begin(), ver.buf().end());

  cap::ByteWriter header;
  header.put_u8(kHeaderBlock);
  header.put_varint(kSchemaVersion);
  header.put_varint(rec.series().size());
  header.put_varint(rec.meta().size());
  for (const auto& [k, v] : rec.meta()) {
    put_string(header, k);
    put_string(header, v);
  }
  frame_block(out, header);

  for (const auto& [name, s] : rec.series()) {
    cap::ByteWriter w;
    encode_series(w, s);
    frame_block(out, w);
  }
  return out;
}

bool decode(const std::uint8_t* data, std::size_t len, Recorder* out,
            std::string* err) {
  const auto fail = [&](const std::string& msg) {
    if (err != nullptr) *err = msg;
    return false;
  };
  cap::ByteReader top(data, len);
  const std::uint8_t* magic = top.get_bytes(4);
  if (magic == nullptr || std::memcmp(magic, kFileMagic, 4) != 0) {
    return fail("not a telemetry file (bad magic)");
  }
  const std::uint16_t version = top.get_u16();
  if (!top.ok()) return fail(top.error());
  if (version != kContainerVersion) {
    return fail("unsupported container version " + std::to_string(version));
  }

  bool have_header = false;
  std::uint64_t expect_series = 0;
  std::uint64_t got_series = 0;
  while (!top.at_end()) {
    const std::uint32_t blen = top.get_u32();
    if (!top.ok()) return fail(top.error());
    if (blen > kMaxBlockBytes) return fail("block length exceeds cap");
    const std::uint8_t* payload = top.get_bytes(blen);
    if (payload == nullptr) return fail("truncated block payload");
    const std::uint32_t want_crc = top.get_u32();
    if (!top.ok()) return fail("truncated block checksum");
    if (util::crc32(payload, blen) != want_crc) {
      return fail("block checksum mismatch (corrupt or truncated file)");
    }
    cap::ByteReader r(payload, blen);
    const std::uint8_t kind = r.get_u8();
    if (!r.ok()) return fail("empty block");
    if (!have_header) {
      if (kind != kHeaderBlock) return fail("first block is not the header");
      const std::uint64_t schema = r.get_varint();
      if (!r.ok()) return fail(r.error());
      if (schema != kSchemaVersion) {
        return fail("unsupported telemetry schema version " +
                    std::to_string(schema));
      }
      expect_series = r.get_varint();
      const std::uint64_t n_meta = r.get_varint();
      if (!r.ok()) return fail(r.error());
      for (std::uint64_t i = 0; i < n_meta; ++i) {
        std::string k, v;
        if (!get_string(r, &k) || !get_string(r, &v)) return fail(r.error());
        out->set_meta(k, v);
      }
      if (!r.at_end()) return fail("trailing bytes in header block");
      have_header = true;
      continue;
    }
    if (kind != kSeriesBlock) return fail("unexpected block kind after header");
    if (!decode_series(r, out)) return fail(r.error());
    ++got_series;
  }
  if (!have_header) return fail("missing header block");
  if (got_series != expect_series) {
    return fail("expected " + std::to_string(expect_series) +
                " series, file holds " + std::to_string(got_series) +
                " (truncated?)");
  }
  return true;
}

bool write_file(const Recorder& rec, const std::string& path,
                std::string* err) {
  const std::vector<std::uint8_t> bytes = encode(rec);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    if (err != nullptr) *err = "short write to " + path;
    return false;
  }
  return true;
}

bool read_file(const std::string& path, Recorder* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    if (err != nullptr) *err = "read error on " + path;
    return false;
  }
  return decode(bytes.data(), bytes.size(), out, err);
}

}  // namespace pbecc::tel
