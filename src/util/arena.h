// Bump-pointer arena for hot-path scratch memory (DESIGN.md §14).
//
// The lockstep blind-decode path allocates several short-lived arrays per
// candidate batch (lane-major LLRs, path metrics, survivor bits). Pulling
// them from the general heap put malloc/free on the per-candidate profile;
// an Arena instead hands out raw storage from one growing block and
// recycles the whole footprint with a single reset() per batch. After the
// first few batches warm the block up, the steady state performs zero heap
// operations.
//
// Not thread-safe by design: each decode thread owns a thread_local arena
// (see convolutional.cpp). Allocations are trivially-destructible raw
// storage — the arena never runs constructors or destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace pbecc::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 1 << 16)
      : initial_(initial_bytes) {}

  // Uninitialized storage for `n` objects of T, aligned for T. Pointers
  // stay valid until the next reset() (growth allocates fresh blocks and
  // leaves earlier ones in place).
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is never destructed");
    const std::size_t bytes = n * sizeof(T);
    std::size_t off = (offset_ + alignof(T) - 1) & ~(alignof(T) - 1);
    if (blocks_.empty() || off + bytes > blocks_.back().size) {
      grow(bytes);
      off = 0;  // fresh blocks are max-aligned
    }
    offset_ = off + bytes;
    used_ = high_water_mark();
    return reinterpret_cast<T*>(blocks_.back().data.get() + off);
  }

  // Recycle everything. When use outgrew the current block, coalesce into
  // one block sized for the whole previous footprint so the next cycle
  // allocates nothing.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      blocks_.clear();
      blocks_.push_back(make_block(total));
    }
    offset_ = 0;
  }

  // Total bytes handed out since construction peaked at this many per
  // cycle (diagnostic: sizes the steady-state block).
  std::size_t high_water() const { return used_; }
  std::size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static Block make_block(std::size_t size) {
    // operator new[] storage is aligned for std::max_align_t, enough for
    // every T the decode path stores (<= 8-byte alignment).
    return Block{std::make_unique<std::byte[]>(size), size};
  }

  void grow(std::size_t need) {
    std::size_t size = blocks_.empty() ? initial_ : blocks_.back().size * 2;
    if (size < need) size = need;
    blocks_.push_back(make_block(size));
    offset_ = 0;
  }

  std::size_t high_water_mark() const {
    std::size_t prior = 0;
    for (std::size_t i = 0; i + 1 < blocks_.size(); ++i) {
      prior += blocks_[i].size;
    }
    const std::size_t now = prior + offset_;
    return now > used_ ? now : used_;
  }

  std::size_t initial_;
  std::vector<Block> blocks_;
  std::size_t offset_ = 0;
  std::size_t used_ = 0;
};

}  // namespace pbecc::util
