#include "util/rng.h"

namespace pbecc::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  have_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 1e-18;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean > 64.0) {
    // Normal approximation keeps this O(1) for large means.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform();
  std::int64_t n = 0;
  while (prod > limit) {
    prod *= uniform();
    ++n;
  }
  return n;
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace pbecc::util
