// CRC-16/CCITT over bit strings, used to protect DCI payloads in the
// synthetic control channel. LTE scrambles the DCI CRC with the target
// user's RNTI so only that user (or a PBE-CC-style monitor trying every
// RNTI hypothesis) validates it; we reproduce that masking.
//
// Also CRC-32 (IEEE 802.3, reflected) over byte buffers, used by the
// pbecc::cap trace format to detect truncated or corrupted chunks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bitvec.h"

namespace pbecc::util {

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over the bits of `bits`.
std::uint16_t crc16(const BitVec& bits);

// Same CRC over the `len` bits starting at `pos` — lets the decoder's
// CRC-first screen checksum a message's payload prefix in place instead of
// copying it out first. Bit-identical to crc16() on the copied range.
std::uint16_t crc16_range(const BitVec& bits, std::size_t pos,
                          std::size_t len);

// CRC masked (xor-ed) with a 16-bit RNTI, as LTE does for DCI.
inline std::uint16_t crc16_rnti(const BitVec& bits, std::uint16_t rnti) {
  return crc16(bits) ^ rnti;
}

// CRC-32/ISO-HDLC (poly 0xEDB88320 reflected, init/xorout 0xFFFFFFFF) over
// `len` bytes — the standard zlib/Ethernet CRC. Streamable: pass the
// previous return value as `seed` to continue a running checksum.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace pbecc::util
