// CRC-16/CCITT over bit strings, used to protect DCI payloads in the
// synthetic control channel. LTE scrambles the DCI CRC with the target
// user's RNTI so only that user (or a PBE-CC-style monitor trying every
// RNTI hypothesis) validates it; we reproduce that masking.
#pragma once

#include <cstdint>

#include "util/bitvec.h"

namespace pbecc::util {

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over the bits of `bits`.
std::uint16_t crc16(const BitVec& bits);

// CRC masked (xor-ed) with a 16-bit RNTI, as LTE does for DCI.
inline std::uint16_t crc16_rnti(const BitVec& bits, std::uint16_t rnti) {
  return crc16(bits) ^ rnti;
}

}  // namespace pbecc::util
