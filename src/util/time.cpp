#include "util/time.h"

#include <cstdio>

namespace pbecc::util {

std::string format_duration(Duration d) {
  char buf[64];
  if (d >= kSecond || d <= -kSecond) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(d));
  } else if (d >= kMillisecond || d <= -kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_millis(d));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace pbecc::util
