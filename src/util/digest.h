// FNV-1a 64-bit hashing for determinism checks.
//
// The determinism test suite compares runs at different thread counts by
// hashing their event traces and stat blocks instead of serializing and
// diffing them. FNV-1a is not cryptographic — it only needs to make
// "byte-identical" checkable with one 64-bit compare.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pbecc::util {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t seed = kFnv1aOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

// Hash a trivially-copyable value field-by-value. Padding bytes inside T
// must not reach the hash — callers hash individual members instead of
// whole structs when the struct has padding.
template <typename T>
std::uint64_t fnv1a64_value(const T& v, std::uint64_t seed = kFnv1aOffset) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  return fnv1a64(bytes, sizeof(T), seed);
}

}  // namespace pbecc::util
