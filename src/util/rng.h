// Deterministic random number generation for reproducible simulations.
//
// xoshiro256** — fast, high-quality, and stable across platforms (unlike
// std::normal_distribution etc., whose output is implementation-defined).
// Every stochastic component takes an explicit Rng (or a seed) so that a
// whole experiment is a pure function of its configuration.
#pragma once

#include <cstdint>
#include <cmath>

namespace pbecc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform on the full 64-bit range.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with given mean (mean > 0).
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

  // Standard normal via Box–Muller (deterministic, platform-stable).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Poisson-distributed count with given mean (Knuth for small means,
  // normal approximation above 64 to stay O(1)).
  std::int64_t poisson(double mean);

  // Derive an independent stream (e.g. per-cell, per-user sub-RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace pbecc::util
