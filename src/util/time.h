// Simulation time: fixed-point microseconds since simulation start.
//
// All subsystems (PHY subframe clock, packet events, congestion-control
// timers) share this single time base so that cross-layer timestamps are
// directly comparable without conversion.
#pragma once

#include <cstdint>
#include <string>

namespace pbecc::util {

// Absolute simulation time in microseconds.
using Time = std::int64_t;
// Time difference in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;
// One LTE subframe (the scheduling granularity of the cellular MAC).
inline constexpr Duration kSubframe = kMillisecond;
// One LTE slot (half a subframe; PRB allocation is identical in both slots).
inline constexpr Duration kSlot = kMillisecond / 2;

inline constexpr Time kNever = INT64_MAX;

// Subframe index containing time `t` (subframes are 1 ms wide).
constexpr std::int64_t subframe_index(Time t) { return t / kSubframe; }

// Start time of subframe `sf`.
constexpr Time subframe_start(std::int64_t sf) { return sf * kSubframe; }

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / kSecond; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / kMillisecond; }
constexpr Duration from_seconds(double s) { return static_cast<Duration>(s * kSecond); }
constexpr Duration from_millis(double ms) { return static_cast<Duration>(ms * kMillisecond); }

// Human-readable rendering, e.g. "12.345ms", used in logs and bench output.
std::string format_duration(Duration d);

}  // namespace pbecc::util
