#include "util/crc.h"

namespace pbecc::util {

std::uint16_t crc16(const BitVec& bits) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool msb = (crc & 0x8000) != 0;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (msb != bits.bit(i)) crc ^= 0x1021;
  }
  return crc;
}

}  // namespace pbecc::util
