#include "util/crc.h"

namespace pbecc::util {

std::uint16_t crc16(const BitVec& bits) {
  return crc16_range(bits, 0, bits.size());
}

std::uint16_t crc16_range(const BitVec& bits, std::size_t pos,
                          std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = pos; i < pos + len; ++i) {
    const bool msb = (crc & 0x8000) != 0;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (msb != bits.bit(i)) crc ^= 0x1021;
  }
  return crc;
}

namespace {

struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace pbecc::util
