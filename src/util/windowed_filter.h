// Windowed extremum filters, in the style BBR uses for BtlBw (windowed max
// over ~10 RTTs) and RTprop (windowed min over 10 s). PBE-CC reuses both
// (§4.2.2–4.2.3 of the paper).
//
// Implementation: monotonic deque over (time, value) samples; O(1) amortized
// update, O(1) query.
#pragma once

#include <deque>

#include "util/time.h"

namespace pbecc::util {

template <typename V, typename Compare>
class WindowedExtremum {
 public:
  explicit WindowedExtremum(Duration window) : window_(window) {}

  void set_window(Duration window) { window_ = window; }
  Duration window() const { return window_; }

  void update(Time now, V value) {
    // Drop samples that are no longer extremal once `value` arrives.
    while (!samples_.empty() && !cmp_(samples_.back().value, value)) {
      samples_.pop_back();
    }
    samples_.push_back({now, value});
    expire(now);
  }

  // Extremum over samples newer than now - window. Returns `fallback` when
  // no sample survives.
  V get(Time now, V fallback = V{}) {
    expire(now);
    return samples_.empty() ? fallback : samples_.front().value;
  }

  bool empty() const { return samples_.empty(); }
  void clear() { samples_.clear(); }

 private:
  struct Sample {
    Time time;
    V value;
  };

  void expire(Time now) {
    while (!samples_.empty() && samples_.front().time < now - window_) {
      samples_.pop_front();
    }
  }

  Duration window_;
  Compare cmp_{};
  std::deque<Sample> samples_;
};

template <typename V>
struct StrictlyGreater {
  bool operator()(const V& a, const V& b) const { return a > b; }
};
template <typename V>
struct StrictlyLess {
  bool operator()(const V& a, const V& b) const { return a < b; }
};

template <typename V>
using WindowedMax = WindowedExtremum<V, StrictlyGreater<V>>;
template <typename V>
using WindowedMin = WindowedExtremum<V, StrictlyLess<V>>;

// Sliding-window mean over timestamped samples (used to average Rw, Pa and
// Pidle over the most recent RTprop subframes, paper §4.2.1).
class WindowedMean {
 public:
  explicit WindowedMean(Duration window) : window_(window) {}

  void set_window(Duration window) { window_ = window; }

  void update(Time now, double value) {
    samples_.push_back({now, value});
    sum_ += value;
    expire(now);
  }

  // Mean over the window; `fallback` when empty.
  double get(Time now, double fallback = 0.0) {
    expire(now);
    if (samples_.empty()) return fallback;
    return sum_ / static_cast<double>(samples_.size());
  }

  std::size_t size() const { return samples_.size(); }

 private:
  struct Sample {
    Time time;
    double value;
  };

  void expire(Time now) {
    while (!samples_.empty() && samples_.front().time < now - window_) {
      sum_ -= samples_.front().value;
      samples_.pop_front();
    }
  }

  Duration window_;
  double sum_ = 0.0;
  std::deque<Sample> samples_;
};

}  // namespace pbecc::util
