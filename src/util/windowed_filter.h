// Windowed extremum filters, in the style BBR uses for BtlBw (windowed max
// over ~10 RTTs) and RTprop (windowed min over 10 s). PBE-CC reuses both
// (§4.2.2–4.2.3 of the paper).
//
// Implementation: monotonic deque over (time, value) samples; O(1) amortized
// update, O(1) query.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>

#include "check/check.h"
#include "util/time.h"

namespace pbecc::util {

template <typename V, typename Compare>
class WindowedExtremum {
 public:
  explicit WindowedExtremum(Duration window) : window_(window) {}

  // Shrinking the window expires immediately against the newest sample's
  // time: PbeSender drives this from RTprop estimates, and a stale BtlBw
  // must not survive until the next update() arrives.
  void set_window(Duration window) {
    const bool shrank = window < window_;
    window_ = window;
    if (shrank && !samples_.empty()) expire(samples_.back().time);
  }
  Duration window() const { return window_; }

  void update(Time now, V value) {
    // Drop samples that are no longer extremal once `value` arrives.
    while (!samples_.empty() && !cmp_(samples_.back().value, value)) {
      samples_.pop_back();
    }
    samples_.push_back({now, value});
    expire(now);
  }

  // Extremum over samples newer than now - window. Returns `fallback` when
  // no sample survives.
  V get(Time now, V fallback = V{}) {
    expire(now);
    return samples_.empty() ? fallback : samples_.front().value;
  }

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  void clear() { samples_.clear(); }

 private:
  struct Sample {
    Time time;
    V value;
  };

  void expire(Time now) {
    while (!samples_.empty() && samples_.front().time < now - window_) {
      samples_.pop_front();
    }
  }

  Duration window_;
  Compare cmp_{};
  std::deque<Sample> samples_;
};

template <typename V>
struct StrictlyGreater {
  bool operator()(const V& a, const V& b) const { return a > b; }
};
template <typename V>
struct StrictlyLess {
  bool operator()(const V& a, const V& b) const { return a < b; }
};

template <typename V>
using WindowedMax = WindowedExtremum<V, StrictlyGreater<V>>;
template <typename V>
using WindowedMin = WindowedExtremum<V, StrictlyLess<V>>;

// Sliding-window mean over timestamped samples (used to average Rw, Pa and
// Pidle over the most recent RTprop subframes, paper §4.2.1).
//
// The mean is maintained incrementally (add on update, subtract on expire),
// which accumulates floating-point error over long runs: each subtraction
// rounds, and with millions of expirations — or with cancellation-heavy
// sample streams — the incremental sum walks away from the true sum of the
// surviving samples. Two resets keep it exact over any horizon:
//   - whenever the deque holds a single sample (window restart or full
//     expiry), the sum is the sample: reset it exactly;
//   - every kResumInterval expirations, recompute the sum from the deque.
class WindowedMean {
 public:
  // Resum period: 4096 expirations bounds accumulated rounding to a few
  // thousand ulps between exact recomputes, while the O(n) resum amortizes
  // to noise. Public so tests can target the boundary.
  static constexpr std::uint64_t kResumInterval = 4096;

  explicit WindowedMean(Duration window) : window_(window) {}

  void set_window(Duration window) {
    const bool shrank = window < window_;
    window_ = window;
    if (shrank && !samples_.empty()) expire(samples_.back().time);
  }
  Duration window() const { return window_; }

  void update(Time now, double value) {
    samples_.push_back({now, value});
    sum_ += value;
    expire(now);
    // The push above precedes expiry, so the deque is never empty on this
    // path — a window restart after a long gap instead leaves exactly the
    // new sample. Its sum is known exactly.
    if (samples_.size() == 1) sum_ = samples_.front().value;
    deep_check_sum();
  }

  // Mean over the window; `fallback` when empty.
  double get(Time now, double fallback = 0.0) {
    expire(now);
    deep_check_sum();
    if (samples_.empty()) return fallback;
    return sum_ / static_cast<double>(samples_.size());
  }

  std::size_t size() const { return samples_.size(); }

 private:
  struct Sample {
    Time time;
    double value;
  };

  void expire(Time now) {
    while (!samples_.empty() && samples_.front().time < now - window_) {
      sum_ -= samples_.front().value;
      samples_.pop_front();
      if (++expirations_ % kResumInterval == 0) sum_ = exact_sum();
    }
    if (samples_.empty()) {
      sum_ = 0.0;
      return;
    }
  }

  double exact_sum() const {
    double s = 0.0;
    for (const Sample& smp : samples_) s += smp.value;
    return s;
  }

  void deep_check_sum() const {
    if constexpr (check::kDeep) {
      // Pace the O(n) verification so CHECK builds stay usable in soaks.
      if (++deep_tick_ % 64 != 0) return;
      // Generous tolerance relative to the mass of the window: the strict
      // 1e-9 drift bound is enforced by the soak driver's exact mirror and
      // the 10M-update regression test; this catches gross divergence
      // (lost resets, double-subtracts) without false-firing under
      // cancellation-heavy streams.
      double mass = 0.0;
      for (const Sample& smp : samples_) mass += std::abs(smp.value);
      const double tol = 1e-6 * (mass > 1.0 ? mass : 1.0);
      PBECC_DEEP_INVARIANT(std::abs(sum_ - exact_sum()) <= tol,
                           "windowed_mean_sum_drift");
    }
  }

  Duration window_;
  double sum_ = 0.0;
  std::uint64_t expirations_ = 0;
  mutable std::uint64_t deep_tick_ = 0;
  std::deque<Sample> samples_;
};

}  // namespace pbecc::util
