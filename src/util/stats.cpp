#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pbecc::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values to the last (highest-fraction) point.
    if (!cdf.empty() && cdf.back().value == sorted[i]) {
      cdf.back().fraction = static_cast<double>(i + 1) / n;
    } else {
      cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("bad histogram range");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge case
    ++counts_[i];
  }
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double jain_index(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (double x : allocations) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sumsq);
}

}  // namespace pbecc::util
