// Data-rate helpers. The paper mixes three rate units:
//   * bits per second          (end-to-end send rates),
//   * bits per subframe        (Eqns 2-3: wireless capacity per 1 ms),
//   * bits per PRB             (Rw, the physical data rate).
// Keeping conversions in one place avoids unit slips.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace pbecc::util {

// Bits per second, as a plain double (rates get multiplied by gains etc.).
using RateBps = double;

inline constexpr double kBitsPerByte = 8.0;

constexpr RateBps bits_per_subframe_to_bps(double bits_per_sf) {
  return bits_per_sf * 1000.0;  // 1000 subframes per second
}

constexpr double bps_to_bits_per_subframe(RateBps bps) { return bps / 1000.0; }

constexpr RateBps mbps(double m) { return m * 1e6; }
constexpr double to_mbps(RateBps r) { return r / 1e6; }

// Time to serialize `bytes` at rate `r` (returns 0 for non-positive rates).
constexpr Duration transmission_delay(std::int64_t bytes, RateBps r) {
  if (r <= 0) return 0;
  return static_cast<Duration>(static_cast<double>(bytes) * kBitsPerByte / r * kSecond);
}

}  // namespace pbecc::util
