// A small append/read bit vector used for DCI message payloads and the
// synthetic PDCCH control region. Bits are stored MSB-first per message,
// matching how 3GPP describes DCI field packing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace pbecc::util {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false) : bits_(nbits, value) {}

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  void push_bit(bool b) { bits_.push_back(b); }

  // Drop all bits but keep the backing capacity — hot-path callers (the
  // blind decoder's candidate-span scratch) refill one reused vector per
  // candidate instead of allocating a fresh one.
  void clear() { bits_.clear(); }
  void reserve(std::size_t nbits) { bits_.reserve(nbits); }

  // Append the low `nbits` of `value`, most-significant bit first.
  void push_uint(std::uint64_t value, std::size_t nbits) {
    for (std::size_t i = nbits; i-- > 0;) {
      bits_.push_back(((value >> i) & 1ULL) != 0);
    }
  }

  bool bit(std::size_t i) const { return bits_.at(i); }
  void set_bit(std::size_t i, bool b) { bits_.at(i) = b; }
  void flip_bit(std::size_t i) { bits_.at(i) = !bits_.at(i); }

  // Read `nbits` starting at `pos`, MSB-first. Throws if out of range.
  std::uint64_t read_uint(std::size_t pos, std::size_t nbits) const {
    if (pos + nbits > bits_.size()) throw std::out_of_range("BitVec::read_uint");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < nbits; ++i) {
      v = (v << 1) | (bits_[pos + i] ? 1ULL : 0ULL);
    }
    return v;
  }

  void append(const BitVec& other) {
    bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
  }

  // Pack to bytes, MSB-first within each byte, the final byte zero-padded —
  // the on-disk representation used by the pbecc::cap trace format.
  std::vector<std::uint8_t> to_bytes() const {
    std::vector<std::uint8_t> out((bits_.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i]) out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
    }
    return out;
  }

  // Inverse of to_bytes(): read `nbits` bits from a packed byte buffer
  // (which must hold at least ceil(nbits/8) bytes).
  static BitVec from_bytes(const std::uint8_t* data, std::size_t nbits) {
    BitVec v;
    v.bits_.reserve(nbits);
    for (std::size_t i = 0; i < nbits; ++i) {
      v.bits_.push_back((data[i / 8] & (0x80u >> (i % 8))) != 0);
    }
    return v;
  }

  bool operator==(const BitVec&) const = default;

 private:
  std::vector<bool> bits_;
};

}  // namespace pbecc::util
