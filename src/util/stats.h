// Statistics helpers used across the evaluation harness:
//  - OnlineStats: streaming mean / variance / min / max (Welford).
//  - SampleSet:   exact order statistics (percentiles) over stored samples.
//  - Cdf:         empirical CDF points for plotting paper-style figures.
//  - Histogram:   fixed-bin counts.
//  - jain_index:  Jain's fairness index (paper §6.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pbecc::util {

class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples and answers exact percentile queries.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() { samples_.clear(); sorted_ = false; }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  // p in [0, 100]. Linear interpolation between closest ranks.
  // Returns 0 for an empty set.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  // NOTE: percentile()/min()/max() lazily sort in place, so the order of
  // samples() is insertion order only until the first such query. Callers
  // that need arrival order (e.g. time-series analysis) must copy first.
  std::span<const double> samples() const { return samples_; }

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Empirical CDF: (value, cumulative fraction) pairs at each distinct sample.
struct CdfPoint {
  double value;
  double fraction;  // in (0, 1]
};
std::vector<CdfPoint> empirical_cdf(std::span<const double> samples);

class Histogram {
 public:
  // Bins [lo, hi) split into `bins` equal cells plus under/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  std::size_t num_bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 is perfectly fair.
// Returns 1.0 for empty or all-zero input (nothing to be unfair about).
double jain_index(std::span<const double> allocations);

}  // namespace pbecc::util
