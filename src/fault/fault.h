// Deterministic fault injection for the PBE-CC feedback loop.
//
// The paper's measurement module rests on a fragile input — a continuously
// decoded DCI stream — and §7 acknowledges the control channel can be
// undecodable, feedback lost or stale, and reports corrupted. This layer
// reproduces those failure modes on the simulation clock so the endpoint's
// graceful-degradation machinery (src/pbe/degradation.h) can be exercised
// reproducibly:
//   * DCI decode blackouts and per-cell SINR collapses at the monitor,
//   * false-positive DCIs from CRC aliasing (OWL documents these),
//   * feedback-packet loss / corruption / delay spikes on the ACK path,
//   * monitor stalls (frozen subframe clock),
//   * handover storms (repeated inter-site handovers flushing HARQ).
//
// Determinism: every query is a pure function of (profile, seed, query
// arguments) via a splitmix64 hash — no internal RNG state, so fault
// decisions are independent of query order and two runs with the same seed
// produce byte-identical fault schedules (the acceptance criterion for
// `--fault-seed`). Periodic faults use duty-cycled windows anchored at t=0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "phy/cell_config.h"
#include "phy/dci.h"
#include "util/time.h"

namespace pbecc::fault {

// Payload code for obs::EventKind::kFaultInjected ("fault_type" field).
enum class FaultType : std::uint8_t {
  kBlackout = 1,
  kSinrCollapse = 2,
  kFalseDci = 3,
  kFeedbackDrop = 4,
  kFeedbackCorrupt = 5,
  kFeedbackDelay = 6,
  kMonitorStall = 7,
  kHandoverStorm = 8,
};

// Pure-data description of a chaos scenario. All knobs default to "off";
// a default-constructed profile is inactive and injects nothing.
struct FaultProfile {
  // --- DCI decode blackout: duty-cycled windows in which every decode
  // attempt fails outright (PDCCH undecodable). Bounded to
  // [blackout_from, blackout_until) so a run can demonstrate recovery.
  double blackout_duty = 0;  // fraction of each period, 1.0 = solid
  util::Duration blackout_period = util::kSecond;
  util::Time blackout_from = 0;
  util::Time blackout_until = util::kNever;

  // --- Per-cell SINR collapse: random episodes of control-channel BER high
  // enough that decoding fails on that cell only.
  double sinr_collapse_per_sec = 0;  // episodes per second, per cell
  util::Duration sinr_collapse_duration = 200 * util::kMillisecond;
  double sinr_collapse_extra_ber = 0.08;

  // --- False-positive DCIs (CRC aliasing): mean injected messages per
  // cell-subframe, drawn from a small pool of phantom RNTIs per cell so
  // they recur enough to pass the tracker's activity filter.
  double false_dci_per_subframe = 0;

  // --- Monitor stall: duty-cycled windows in which the monitor's subframe
  // clock freezes and it processes nothing at all.
  double stall_duty = 0;
  util::Duration stall_period = 2 * util::kSecond;

  // --- Feedback path (client -> sender ACK stream).
  double feedback_loss = 0;     // per-ACK drop probability
  double feedback_corrupt = 0;  // per-ACK rate-word corruption probability
  util::Duration feedback_delay_spike = 0;  // extra delay inside spike windows
  double feedback_spike_duty = 0;
  util::Duration feedback_spike_period = util::kSecond;

  // --- Handover storm: duty-cycled windows in which every UE is handed
  // over (rotating its aggregated-cell set) every handover_interval.
  double handover_storm_duty = 0;
  util::Duration handover_storm_period = 4 * util::kSecond;
  util::Duration handover_interval = 200 * util::kMillisecond;

  bool active() const;

  bool operator==(const FaultProfile&) const = default;
};

// Canned profiles for `run_experiment --fault-profile`:
//   none | blackout | flap | feedback-loss | handover-storm
// Returns nullopt for unknown names ("none" returns an inactive profile).
std::optional<FaultProfile> profile_by_name(std::string_view name);
const std::vector<std::string>& profile_names();

struct FeedbackFault {
  bool drop = false;
  bool corrupt = false;
  util::Duration extra_delay = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, std::uint64_t seed);

  const FaultProfile& profile() const { return profile_; }
  std::uint64_t seed() const { return seed_; }

  // --- Monitor-side queries (t = subframe start time). ---
  bool monitor_stalled(util::Time t) const;
  bool dci_blackout(util::Time t, phy::CellId cell) const;
  // Extra control-channel BER from an active SINR collapse (0 when none).
  double extra_control_ber(util::Time t, phy::CellId cell) const;
  // Number of false-positive DCIs to append for this cell-subframe.
  int false_dci_count(std::int64_t sf_index, phy::CellId cell) const;
  // The k-th aliased message for this cell-subframe: plausible fields, a
  // recurring phantom RNTI.
  phy::Dci make_false_dci(std::int64_t sf_index, phy::CellId cell,
                          int cell_prbs, int k) const;

  // --- Feedback-path query, keyed by (flow, ack seq) for order
  // independence. ---
  FeedbackFault feedback_fault(util::Time t, std::uint32_t flow,
                               std::uint64_t seq) const;
  // Replacement for a corrupted 32-bit rate word (never 0 = "no estimate").
  std::uint32_t corrupt_word(std::uint32_t word, std::uint32_t flow,
                             std::uint64_t seq) const;

  // --- Handover storm: true while a storm window is active. ---
  bool handover_storm(util::Time t) const;

 private:
  std::uint64_t hash(std::uint64_t a, std::uint64_t b, std::uint64_t c) const;
  double hash_uniform(std::uint64_t a, std::uint64_t b, std::uint64_t c) const;

  FaultProfile profile_;
  std::uint64_t seed_;
};

}  // namespace pbecc::fault
