#include "fault/fault.h"

#include <algorithm>

namespace pbecc::fault {

namespace {

// splitmix64 finalizer — the standard statelesss mixer.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Domain-separation salts, one per fault family.
constexpr std::uint64_t kSaltSinr = 0x51;
constexpr std::uint64_t kSaltFalseDciCount = 0xFD;
constexpr std::uint64_t kSaltFalseDciBody = 0xFB;
constexpr std::uint64_t kSaltFeedbackLoss = 0x10;
constexpr std::uint64_t kSaltFeedbackCorrupt = 0xC0;
constexpr std::uint64_t kSaltCorruptWord = 0xC1;

// Duty-cycled periodic window anchored at t = 0.
bool in_window(util::Time t, double duty, util::Duration period) {
  if (duty <= 0 || period <= 0 || t < 0) return false;
  if (duty >= 1.0) return true;
  const auto pos = t % period;
  return static_cast<double>(pos) < duty * static_cast<double>(period);
}

}  // namespace

bool FaultProfile::active() const {
  return blackout_duty > 0 || sinr_collapse_per_sec > 0 ||
         false_dci_per_subframe > 0 || stall_duty > 0 || feedback_loss > 0 ||
         feedback_corrupt > 0 ||
         (feedback_delay_spike > 0 && feedback_spike_duty > 0) ||
         handover_storm_duty > 0;
}

std::optional<FaultProfile> profile_by_name(std::string_view name) {
  FaultProfile p;
  if (name == "none") return p;
  if (name == "blackout") {
    // Total DCI decode outage from t=2s to t=6s: long enough to force the
    // sender through DEGRADED into FALLBACK, bounded so a default 12 s run
    // demonstrates the FALLBACK -> PRECISE recovery.
    p.blackout_duty = 1.0;
    p.blackout_from = 2 * util::kSecond;
    p.blackout_until = 6 * util::kSecond;
    return p;
  }
  if (name == "flap") {
    // Oscillating decode health: 45% blackout duty plus per-cell SINR
    // collapses and a trickle of aliased DCIs. Exercises the hysteresis on
    // both state-machine transitions.
    p.blackout_duty = 0.45;
    p.blackout_period = 900 * util::kMillisecond;
    p.sinr_collapse_per_sec = 0.5;
    p.false_dci_per_subframe = 0.3;
    return p;
  }
  if (name == "feedback-loss") {
    // The decoder is healthy but its reports rarely arrive intact: 95% of
    // ACKs dropped, half of the survivors carry a garbled rate word, and
    // periodic 250 ms delay spikes age whatever does get through.
    p.feedback_loss = 0.95;
    p.feedback_corrupt = 0.5;
    p.feedback_delay_spike = 250 * util::kMillisecond;
    p.feedback_spike_duty = 0.25;
    p.feedback_spike_period = 2 * util::kSecond;
    return p;
  }
  if (name == "handover-storm") {
    // Every UE is handed over (aggregated cells rotated) five times per
    // second for half of every 4 s period; each handover flushes HARQ.
    p.handover_storm_duty = 0.5;
    return p;
  }
  return std::nullopt;
}

const std::vector<std::string>& profile_names() {
  static const std::vector<std::string> names = {
      "none", "blackout", "flap", "feedback-loss", "handover-storm"};
  return names;
}

FaultInjector::FaultInjector(FaultProfile profile, std::uint64_t seed)
    : profile_(profile), seed_(seed) {}

std::uint64_t FaultInjector::hash(std::uint64_t a, std::uint64_t b,
                                  std::uint64_t c) const {
  return mix(mix(mix(seed_ ^ a) ^ b) ^ c);
}

double FaultInjector::hash_uniform(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) const {
  return static_cast<double>(hash(a, b, c) >> 11) * 0x1.0p-53;
}

bool FaultInjector::monitor_stalled(util::Time t) const {
  return in_window(t, profile_.stall_duty, profile_.stall_period);
}

bool FaultInjector::dci_blackout(util::Time t, phy::CellId /*cell*/) const {
  if (t < profile_.blackout_from || t >= profile_.blackout_until) return false;
  return in_window(t - profile_.blackout_from, profile_.blackout_duty,
                   profile_.blackout_period);
}

double FaultInjector::extra_control_ber(util::Time t, phy::CellId cell) const {
  if (profile_.sinr_collapse_per_sec <= 0 ||
      profile_.sinr_collapse_duration <= 0) {
    return 0;
  }
  // Time is sliced into collapse-length slots; each (slot, cell) pair is
  // independently collapsed with the probability that matches the
  // configured episode rate.
  const auto slot =
      static_cast<std::uint64_t>(t / profile_.sinr_collapse_duration);
  const double p_slot = std::min(
      1.0, profile_.sinr_collapse_per_sec *
               util::to_seconds(profile_.sinr_collapse_duration));
  if (hash_uniform(kSaltSinr, slot, static_cast<std::uint64_t>(cell)) < p_slot) {
    return profile_.sinr_collapse_extra_ber;
  }
  return 0;
}

int FaultInjector::false_dci_count(std::int64_t sf_index,
                                   phy::CellId cell) const {
  const double mean = profile_.false_dci_per_subframe;
  if (mean <= 0) return 0;
  const int whole = static_cast<int>(mean);
  const double frac = mean - whole;
  const double u = hash_uniform(kSaltFalseDciCount,
                                static_cast<std::uint64_t>(sf_index),
                                static_cast<std::uint64_t>(cell));
  return whole + (u < frac ? 1 : 0);
}

phy::Dci FaultInjector::make_false_dci(std::int64_t sf_index, phy::CellId cell,
                                       int cell_prbs, int k) const {
  const std::uint64_t h =
      hash(kSaltFalseDciBody,
           static_cast<std::uint64_t>(sf_index) * 64 +
               static_cast<std::uint64_t>(k),
           static_cast<std::uint64_t>(cell));
  phy::Dci d;
  // A small recurring pool of phantom RNTIs per cell: real CRC aliasing
  // clusters on a few values, and recurrence is what sneaks past the
  // tracker's activity filter to inflate the user count N.
  d.rnti = static_cast<phy::Rnti>(0xF000 + (static_cast<int>(cell) << 3) +
                                  static_cast<int>(h & 3));
  d.format = phy::DciFormat::kFormat1A;
  const int max_prbs = std::max(1, cell_prbs / 4);
  d.n_prbs = static_cast<std::uint16_t>(1 + ((h >> 8) % max_prbs));
  d.prb_start = static_cast<std::uint16_t>(
      (h >> 24) % static_cast<std::uint64_t>(
                      std::max(1, cell_prbs - static_cast<int>(d.n_prbs) + 1)));
  d.mcs = {static_cast<int>(4 + ((h >> 40) & 7)), 1};
  d.harq_id = static_cast<std::uint8_t>((h >> 48) & 7);
  d.new_data = ((h >> 52) & 1) != 0;
  return d;
}

FeedbackFault FaultInjector::feedback_fault(util::Time t, std::uint32_t flow,
                                            std::uint64_t seq) const {
  FeedbackFault f;
  const auto fl = static_cast<std::uint64_t>(flow);
  if (profile_.feedback_loss > 0 &&
      hash_uniform(kSaltFeedbackLoss, fl, seq) < profile_.feedback_loss) {
    f.drop = true;
    return f;
  }
  if (profile_.feedback_corrupt > 0 &&
      hash_uniform(kSaltFeedbackCorrupt, fl, seq) < profile_.feedback_corrupt) {
    f.corrupt = true;
  }
  if (profile_.feedback_delay_spike > 0 &&
      in_window(t, profile_.feedback_spike_duty,
                profile_.feedback_spike_period)) {
    f.extra_delay = profile_.feedback_delay_spike;
  }
  return f;
}

std::uint32_t FaultInjector::corrupt_word(std::uint32_t word,
                                          std::uint32_t flow,
                                          std::uint64_t seq) const {
  auto garbled = static_cast<std::uint32_t>(
      hash(kSaltCorruptWord, static_cast<std::uint64_t>(flow), seq));
  if (garbled == 0 || garbled == word) garbled = word ^ 0x80000001u;
  if (garbled == 0) garbled = 1;
  return garbled;
}

bool FaultInjector::handover_storm(util::Time t) const {
  return in_window(t, profile_.handover_storm_duty,
                   profile_.handover_storm_period);
}

}  // namespace pbecc::fault
