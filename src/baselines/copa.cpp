#include "baselines/copa.h"

#include <algorithm>

namespace pbecc::baselines {

Copa::Copa(CopaConfig cfg)
    : cfg_(cfg), cwnd_(cfg.initial_cwnd_segments),
      rtt_min_(cfg.rttmin_window),
      rtt_standing_(50 * util::kMillisecond) {}

void Copa::update_velocity(bool direction_up) {
  if (direction_up == last_direction_up_) {
    ++same_direction_count_;
    // Velocity doubles once the window has moved in the same direction
    // for three consecutive RTTs.
    if (same_direction_count_ >= 3) velocity_ = std::min(velocity_ * 2.0, 1024.0);
  } else {
    velocity_ = 1.0;
    same_direction_count_ = 0;
  }
  last_direction_up_ = direction_up;
}

void Copa::on_ack(const net::AckSample& s) {
  if (s.rtt <= 0) return;
  srtt_ = (7 * srtt_ + s.rtt) / 8;
  rtt_min_.update(s.now, s.rtt);
  rtt_standing_.set_window(std::max<util::Duration>(srtt_ / 2, util::kMillisecond));
  rtt_standing_.update(s.now, s.rtt);

  const util::Duration rtt_min = rtt_min_.get(s.now, s.rtt);
  const util::Duration standing = rtt_standing_.get(s.now, s.rtt);
  const double dq_sec = std::max(util::to_seconds(standing - rtt_min), 1e-5);

  // Target rate (packets/s) and the equivalent target window.
  const double target_rate = 1.0 / (cfg_.delta * dq_sec);
  const double current_rate = cwnd_ / std::max(util::to_seconds(srtt_), 1e-4);

  const bool direction_up = current_rate < target_rate;
  // A direction flip resets velocity at once (as deployed Copa
  // implementations do) — otherwise a stale high velocity applied in the
  // new direction slams the window across its whole range in one ACK.
  if (direction_up != last_direction_up_) {
    velocity_ = 1.0;
    same_direction_count_ = 0;
    last_direction_up_ = direction_up;
    last_velocity_update_ = s.now;
  } else if (s.now - last_velocity_update_ >= srtt_) {
    // Velocity doubling once per RTT of sustained direction.
    last_velocity_update_ = s.now;
    update_velocity(direction_up);
  }

  const double step = velocity_ / (cfg_.delta * std::max(cwnd_, 1.0));
  if (direction_up) {
    cwnd_ += step;
  } else {
    cwnd_ = std::max(cwnd_ - step, 2.0);
  }
}

void Copa::on_loss(const net::LossSample& s) {
  if (s.bytes_in_flight == 0) cwnd_ = cfg_.initial_cwnd_segments;
  // Copa's default mode reacts to delay, not individual losses.
}

util::RateBps Copa::pacing_rate(util::Time) const {
  // Copa paces at 2 * cwnd / RTT (two packets per ack pacing).
  const double rtt_sec = std::max(util::to_seconds(srtt_), 1e-4);
  return 2.0 * cwnd_ * cfg_.mss * util::kBitsPerByte / rtt_sec;
}

double Copa::cwnd_bytes(util::Time) const { return cwnd_ * cfg_.mss; }

}  // namespace pbecc::baselines
