// CUBIC (Ha, Rhee, Xu — SIGOPS OSR 2008), the Linux default loss-based
// controller the paper compares against.
//
// Window growth W(t) = C (t - K)^3 + Wmax with K = cbrt(Wmax * beta / C),
// multiplicative decrease by beta on loss, fast convergence, and the
// TCP-friendly (Reno-tracking) region. Loss-based: it fills whatever
// buffer the bottleneck has, which on cellular links is exactly the
// bufferbloat behaviour the paper's Figs 13-14 show.
#pragma once

#include "net/congestion_controller.h"

namespace pbecc::baselines {

struct CubicConfig {
  double c = 0.4;            // scaling constant (segments/sec^3)
  double beta = 0.7;         // multiplicative decrease factor
  bool fast_convergence = true;
  std::int32_t mss = net::kDefaultMss;
  double initial_cwnd_segments = 10;
  // Pacing headroom over cwnd/srtt so the window, not the pacer, limits.
  double pacing_gain = 1.25;
};

class Cubic : public net::CongestionController {
 public:
  explicit Cubic(CubicConfig cfg = {});

  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;

  util::RateBps pacing_rate(util::Time now) const override;
  double cwnd_bytes(util::Time now) const override;
  std::string name() const override { return "cubic"; }

  double cwnd_segments() const { return cwnd_; }

 private:
  double cubic_window(double t_sec) const;
  void enter_recovery(util::Time now);

  CubicConfig cfg_;
  double cwnd_;           // in segments
  double ssthresh_ = 1e9; // in segments
  double w_max_ = 0;
  double w_last_max_ = 0;
  util::Time epoch_start_ = -1;
  double k_ = 0;
  double w_tcp_ = 0;      // TCP-friendly estimate
  util::Duration srtt_ = 100 * util::kMillisecond;
  util::Time recovery_until_ = 0;
};

}  // namespace pbecc::baselines
