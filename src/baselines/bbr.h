// TCP BBR v1 (Cardwell et al., ACM Queue 2016) as a rate-based controller.
//
// Faithful to the published state machine: STARTUP (2.89x gain until the
// bottleneck bandwidth estimate plateaus over three rounds), DRAIN,
// PROBE_BW (the eight-phase [1.25, 0.75, 1 x6] gain cycle of paper Fig 9),
// and PROBE_RTT (cwnd of 4 segments for 200 ms every 10 s). BtlBw is a
// windowed max of delivery-rate samples; RTprop a windowed min of RTTs.
//
// PBE-CC's cellular-tailored BBR (paper §4.2.3) is this class with two
// extensions, both exposed here: a cap on the probing rate
// (Cprobe = min{1.25 BtlBw, Cf}) and an entry path that starts directly in
// PROBE_BW after a one-RTprop drain at 0.5 BtlBw.
#pragma once

#include <functional>

#include "net/congestion_controller.h"
#include "util/rng.h"
#include "util/windowed_filter.h"

namespace pbecc::baselines {

struct BbrConfig {
  double startup_gain = 2.885;  // 2/ln(2)
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  util::Duration rtprop_window = 10 * util::kSecond;
  // BtlBw max-filter window; BBR uses 10 round trips, we use time-based.
  util::Duration btlbw_window = 2 * util::kSecond;
  util::Duration probe_rtt_duration = 200 * util::kMillisecond;
  util::Duration probe_rtt_interval = 10 * util::kSecond;
  std::int32_t mss = net::kDefaultMss;
  util::RateBps initial_rate = 1e6;  // 1 Mbit/s until the first sample
  std::uint64_t seed = 3;

  // --- PBE-CC extensions (inactive by default) ---
  // When set, PROBE_BW pacing is capped at probe_cap() — the wireless
  // link's fair share Cf. The probing phase becomes
  // Cprobe = min(1.25 * BtlBw, Cf) (paper Eqn 7); the cap may bind below
  // BtlBw (e.g. when the BtlBw filter is transiently inflated by a burst
  // drained from the base-station queue), which is exactly what keeps the
  // cellular-tailored BBR from pacing above its wireless share.
  std::function<util::RateBps()> probe_cap;
  // Skip STARTUP: begin with a one-RTprop drain at 0.5 BtlBw, then enter
  // PROBE_BW (paper §4.2.3 entry sequence).
  bool enter_probe_bw_directly = false;
};

class Bbr : public net::CongestionController {
 public:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt, kEntryDrain };

  explicit Bbr(BbrConfig cfg = {});

  void on_packet_sent(util::Time now, const net::Packet& pkt,
                      std::uint64_t bytes_in_flight) override;
  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;

  util::RateBps pacing_rate(util::Time now) const override;
  double cwnd_bytes(util::Time now) const override;
  std::string name() const override { return "bbr"; }

  // Introspection for tests and for the PBE sender.
  Mode mode() const { return mode_; }
  util::RateBps btl_bw(util::Time now) const;
  util::Duration rtprop() const { return rtprop_; }

  // Used by the PBE sender when re-entering internet-bottleneck mode with
  // fresh estimates already in hand.
  void seed_estimates(util::Time now, util::RateBps btlbw, util::Duration rtprop);

 private:
  void advance_cycle(util::Time now);
  void check_full_pipe();
  void maybe_enter_probe_rtt(util::Time now, bool rtprop_expired);
  double bdp_bytes(util::Time now, double gain) const;

  BbrConfig cfg_;
  Mode mode_;
  mutable util::WindowedMax<double> btlbw_filter_;
  util::Duration rtprop_;
  util::Time rtprop_stamp_ = 0;

  // PROBE_BW cycle.
  int cycle_index_ = 0;
  util::Time cycle_start_ = 0;

  // STARTUP full-pipe detection.
  double full_bw_ = 0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // Round counting.
  std::uint64_t next_round_delivered_ = 0;
  std::uint64_t last_sent_bytes_total_ = 0;
  bool round_start_ = false;

  // PROBE_RTT.
  util::Time probe_rtt_done_ = 0;
  util::Time last_probe_rtt_ = 0;

  std::uint64_t bytes_in_flight_ = 0;
  util::Rng rng_;
};

}  // namespace pbecc::baselines
