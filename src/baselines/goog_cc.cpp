#include "baselines/goog_cc.h"

#include <algorithm>

namespace pbecc::baselines {

GoogCc::GoogCc(GoogCcConfig cfg)
    : cfg_(cfg), bwe_(cfg.bwe), rtprop_(cfg.rtprop_window) {}

void GoogCc::on_ack(const net::AckSample& s) {
  if (s.rtt > 0) {
    rtprop_.update(s.now, s.rtt);
    last_rtt_ = s.rtt;
  }
  bwe_.on_ack(s);
  // A delay target below the loss cap means the delay path has caught up
  // with (and gone under) the loss event; retire the cap.
  if (loss_cap_ > 0 && bwe_.target_bps() <= loss_cap_) loss_cap_ = 0.0;
}

void GoogCc::on_loss(const net::LossSample& s) {
  if (last_loss_cut_ >= 0 && s.now - last_loss_cut_ < cfg_.loss_backoff_hold) {
    return;  // one cut per burst
  }
  const double basis = loss_cap_ > 0
                           ? std::min<double>(loss_cap_, bwe_.target_bps())
                           : bwe_.target_bps();
  loss_cap_ = std::max(cfg_.loss_beta * basis, cfg_.bwe.aimd.min_rate);
  last_loss_cut_ = s.now;
}

util::RateBps GoogCc::pacing_rate(util::Time) const {
  const util::RateBps target = bwe_.target_bps();
  if (loss_cap_ > 0) return std::min<util::RateBps>(target, loss_cap_);
  return target;
}

double GoogCc::cwnd_bytes(util::Time now) const {
  const util::Duration rtprop = rtprop_.get(now, last_rtt_);
  const double bdp = pacing_rate(now) / util::kBitsPerByte *
                     util::to_seconds(std::max<util::Duration>(rtprop, 1));
  return std::max(cfg_.cwnd_gain * bdp,
                  4.0 * static_cast<double>(cfg_.bwe.aimd.mss));
}

}  // namespace pbecc::baselines
