// Copa (Arun & Balakrishnan, NSDI 2018): delay-based with a target rate of
// 1 / (delta * queueing-delay) and velocity-based window adjustment.
//
// Queueing delay is measured as RTTstanding - RTTmin. Copa is conservative
// on links with delay jitter it cannot distinguish from queueing — on
// cellular links the 8 ms HARQ retransmission spikes look like queueing,
// which is why the paper measures roughly an 11x throughput deficit for
// Copa against PBE-CC while its delay stays excellent.
#pragma once

#include "net/congestion_controller.h"
#include "util/windowed_filter.h"

namespace pbecc::baselines {

struct CopaConfig {
  double delta = 0.5;  // default mode: 1/(2 * dq) packets/s target
  std::int32_t mss = net::kDefaultMss;
  double initial_cwnd_segments = 10;
  util::Duration rttmin_window = 10 * util::kSecond;
};

class Copa : public net::CongestionController {
 public:
  explicit Copa(CopaConfig cfg = {});

  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;

  util::RateBps pacing_rate(util::Time now) const override;
  double cwnd_bytes(util::Time now) const override;
  std::string name() const override { return "copa"; }

 private:
  void update_velocity(bool direction_up);

  CopaConfig cfg_;
  double cwnd_;  // segments
  double velocity_ = 1.0;
  bool last_direction_up_ = true;
  int same_direction_count_ = 0;
  util::Time last_velocity_update_ = 0;
  util::Duration srtt_ = 100 * util::kMillisecond;
  mutable util::WindowedMin<util::Duration> rtt_min_;
  mutable util::WindowedMin<util::Duration> rtt_standing_;  // over srtt/2
};

}  // namespace pbecc::baselines
