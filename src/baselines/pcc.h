// PCC Allegro (Dong et al., NSDI 2015) and PCC Vivace (Dong et al., NSDI
// 2018): rate-based online-learning controllers that run micro-experiments
// over monitor intervals (MIs) and move the rate in the direction of higher
// empirical utility.
//
//  * Allegro: randomized 2x2 trials at rate*(1 +/- eps); loss-based
//    sigmoid utility.
//  * Vivace: gradient ascent on u = x^0.9 - b*x*(dRTT/dt) - c*x*L, with a
//    confidence-amplified step.
//
// On cellular links the utility signal is noisy (scheduler granting,
// HARQ delay spikes), and both algorithms converge to conservative rates —
// matching the paper's observation (§2, §6.3) that online learning
// "frequently converges to solutions that result in significant network
// under-utilization".
#pragma once

#include <array>
#include <optional>

#include "net/congestion_controller.h"
#include "util/rng.h"

namespace pbecc::baselines {

// Per-monitor-interval statistics shared by both PCC variants.
class MonitorIntervals {
 public:
  struct MiResult {
    double throughput_bps = 0;
    double loss_rate = 0;
    double avg_rtt_ms = 0;
    // Within-interval RTT slope (ms of RTT change per ms of time), the
    // d(RTT)/dt term of Vivace's utility, from a least-squares fit over
    // the MI's per-packet RTTs (as in the NSDI'18 implementation —
    // endpoint differences would be hypersensitive to single HARQ
    // retransmission spikes).
    double rtt_slope = 0;
    util::Duration duration = 0;
  };

  void on_ack(const net::AckSample& s);
  void on_loss(const net::LossSample& s);

  // Returns a finished MI once `mi_len` has elapsed, else nullopt.
  std::optional<MiResult> poll(util::Time now, util::Duration mi_len);

  util::Duration srtt() const { return srtt_; }

 private:
  util::Time mi_start_ = 0;
  double acked_bytes_ = 0;
  double lost_bytes_ = 0;
  double rtt_sum_ms_ = 0;
  std::uint64_t rtt_count_ = 0;
  // Regression accumulators for the within-MI RTT slope: x is time since
  // MI start (ms), y is RTT (ms).
  double sx_ = 0, sy_ = 0, sxx_ = 0, sxy_ = 0;
  util::Duration srtt_ = 100 * util::kMillisecond;
};

struct PccConfig {
  util::RateBps initial_rate = 2e6;
  util::RateBps min_rate = 2e5;
  util::RateBps max_rate = 500e6;
  double epsilon = 0.05;         // trial rate offset
  std::int32_t mss = net::kDefaultMss;
  std::uint64_t seed = 17;
};

class PccAllegro : public net::CongestionController {
 public:
  explicit PccAllegro(PccConfig cfg = {});

  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;
  util::RateBps pacing_rate(util::Time now) const override;
  std::string name() const override { return "pcc"; }

 private:
  enum class Mode { kStarting, kDecision };
  static double utility(const MonitorIntervals::MiResult& mi);
  void on_mi(const MonitorIntervals::MiResult& mi, util::Time now);

  PccConfig cfg_;
  MonitorIntervals mi_;
  Mode mode_ = Mode::kStarting;
  util::RateBps rate_;
  double prev_utility_ = -1e18;
  // Decision state: 4 trials, direction +,-,+,- in randomized pairing.
  int trial_index_ = 0;
  std::array<double, 4> trial_utility_{};
  std::array<int, 4> trial_sign_{};
  double eps_ = 0.01;
  util::Rng rng_;
};

class PccVivace : public net::CongestionController {
 public:
  explicit PccVivace(PccConfig cfg = {});

  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;
  util::RateBps pacing_rate(util::Time now) const override;
  std::string name() const override { return "vivace"; }

 private:
  static double utility(const MonitorIntervals::MiResult& mi);
  void on_mi(const MonitorIntervals::MiResult& mi, util::Time now);

  PccConfig cfg_;
  MonitorIntervals mi_;
  util::RateBps rate_;
  int trial_index_ = 0;          // 0: +eps MI, 1: -eps MI
  double trial_utility_[2] = {0, 0};
  double confidence_ = 1.0;
  double last_gradient_sign_ = 0;
};

}  // namespace pbecc::baselines
