#include "baselines/verus.h"

#include <algorithm>
#include <cmath>

namespace pbecc::baselines {

Verus::Verus(VerusConfig cfg) : cfg_(cfg) {
  profile_.assign(static_cast<std::size_t>(cfg_.max_window_segments) + 1, 0.0);
}

void Verus::on_ack(const net::AckSample& s) {
  if (s.rtt <= 0) return;
  srtt_ = (7 * srtt_ + s.rtt) / 8;
  const double delay_ms = util::to_millis(s.rtt);
  d_min_ms_ = std::min(d_min_ms_, delay_ms);
  d_est_ms_ = d_est_ms_ == 0
                  ? delay_ms
                  : (1 - cfg_.ewma_alpha) * d_est_ms_ + cfg_.ewma_alpha * delay_ms;

  // Update the delay profile at the in-flight window that produced this
  // sample.
  const auto w = static_cast<std::size_t>(std::clamp<double>(
      static_cast<double>(s.bytes_in_flight) / cfg_.mss, 1.0,
      static_cast<double>(cfg_.max_window_segments)));
  profile_[w] = profile_[w] == 0
                    ? delay_ms
                    : 0.8 * profile_[w] + 0.2 * delay_ms;

  if (s.now - last_epoch_ >= cfg_.epoch) {
    last_epoch_ = s.now;
    epoch_update(s.now);
  }
}

int Verus::window_for_delay(double target_delay_ms) const {
  // Largest window whose profiled delay does not exceed the target;
  // unprofiled entries inherit the nearest lower profiled value.
  int best = 2;
  double last_known = 0;
  for (int w = 1; w <= cfg_.max_window_segments; ++w) {
    const double d = profile_[static_cast<std::size_t>(w)];
    if (d > 0) last_known = d;
    if (last_known > 0 && last_known <= target_delay_ms) best = w;
    if (last_known > target_delay_ms) break;
  }
  return best;
}

void Verus::epoch_update(util::Time) {
  if (d_min_ms_ >= 1e9 || d_est_ms_ <= 0) return;
  // Steer the delay target: back off multiplicatively when the network is
  // over the delay-ratio threshold, otherwise creep upward.
  if (in_recovery_) {
    d_target_ms_ = d_min_ms_ * cfg_.r / 2;
    in_recovery_ = false;
  } else if (d_est_ms_ / d_min_ms_ > cfg_.r) {
    d_target_ms_ = std::max(d_min_ms_, d_target_ms_ - cfg_.delta2 * d_min_ms_ * 0.1);
  } else {
    d_target_ms_ = std::max(d_target_ms_, d_min_ms_) + cfg_.delta1 * d_min_ms_ * 0.1;
  }
  const int w = window_for_delay(d_target_ms_);
  // Smooth window moves to avoid huge jumps from a sparse profile.
  cwnd_ = std::clamp(0.7 * cwnd_ + 0.3 * static_cast<double>(w), 2.0,
                     static_cast<double>(cfg_.max_window_segments));
}

void Verus::on_loss(const net::LossSample& s) {
  in_recovery_ = true;
  cwnd_ = std::max(cwnd_ / 2, 2.0);
  if (s.bytes_in_flight == 0) cwnd_ = 2.0;
}

util::RateBps Verus::pacing_rate(util::Time) const {
  const double rtt_sec = std::max(util::to_seconds(srtt_), 1e-4);
  return 1.2 * cwnd_ * cfg_.mss * util::kBitsPerByte / rtt_sec;
}

double Verus::cwnd_bytes(util::Time) const { return cwnd_ * cfg_.mss; }

}  // namespace pbecc::baselines
