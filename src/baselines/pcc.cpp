#include "baselines/pcc.h"

#include <algorithm>
#include <cmath>

namespace pbecc::baselines {

void MonitorIntervals::on_ack(const net::AckSample& s) {
  if (mi_start_ == 0) mi_start_ = s.now;
  if (s.rtt > 0) {
    srtt_ = (7 * srtt_ + s.rtt) / 8;
    const double y = util::to_millis(s.rtt);
    const double x = util::to_millis(s.now - mi_start_);
    rtt_sum_ms_ += y;
    sx_ += x;
    sy_ += y;
    sxx_ += x * x;
    sxy_ += x * y;
    ++rtt_count_;
  }
  acked_bytes_ += s.acked_bytes;
}

void MonitorIntervals::on_loss(const net::LossSample& s) {
  lost_bytes_ += s.lost_bytes;
}

std::optional<MonitorIntervals::MiResult> MonitorIntervals::poll(
    util::Time now, util::Duration mi_len) {
  if (mi_start_ == 0 || now - mi_start_ < mi_len) return std::nullopt;
  MiResult r;
  r.duration = now - mi_start_;
  const double sec = util::to_seconds(r.duration);
  r.throughput_bps = acked_bytes_ * util::kBitsPerByte / sec;
  const double total = acked_bytes_ + lost_bytes_;
  r.loss_rate = total > 0 ? lost_bytes_ / total : 0.0;
  r.avg_rtt_ms = rtt_count_ > 0 ? rtt_sum_ms_ / static_cast<double>(rtt_count_)
                                : util::to_millis(srtt_);
  if (rtt_count_ >= 2) {
    const auto n = static_cast<double>(rtt_count_);
    const double denom = n * sxx_ - sx_ * sx_;
    if (denom > 1e-9) r.rtt_slope = (n * sxy_ - sx_ * sy_) / denom;
  }
  mi_start_ = now;
  acked_bytes_ = lost_bytes_ = rtt_sum_ms_ = 0;
  sx_ = sy_ = sxx_ = sxy_ = 0;
  rtt_count_ = 0;
  return r;
}

// ---------------------------------------------------------------- Allegro

PccAllegro::PccAllegro(PccConfig cfg)
    : cfg_(cfg), rate_(cfg.initial_rate), rng_(cfg.seed) {
  // Random pairing of the four trials: two +eps, two -eps.
  trial_sign_ = {+1, -1, +1, -1};
  if (rng_.bernoulli(0.5)) std::swap(trial_sign_[0], trial_sign_[1]);
  if (rng_.bernoulli(0.5)) std::swap(trial_sign_[2], trial_sign_[3]);
}

double PccAllegro::utility(const MonitorIntervals::MiResult& mi) {
  // NSDI'15 utility: throughput rewarded, loss punished through a sigmoid
  // cliff at 5%plus a linear term.
  const double t = mi.throughput_bps / 1e6;  // Mbit/s
  const double l = mi.loss_rate;
  const double sigmoid = 1.0 / (1.0 + std::exp(-100.0 * (l - 0.05)));
  return t * (1.0 - sigmoid) - t * l;
}

void PccAllegro::on_ack(const net::AckSample& s) {
  mi_.on_ack(s);
  // MI of ~1 RTT, bounded: without the upper bound a rapidly bloating
  // queue inflates the RTT faster than wall-clock time advances and no
  // monitor interval ever completes (the rate would freeze forever).
  const util::Duration mi_len = std::clamp<util::Duration>(
      mi_.srtt(), 10 * util::kMillisecond, 200 * util::kMillisecond);
  if (auto r = mi_.poll(s.now, mi_len)) on_mi(*r, s.now);
}

void PccAllegro::on_loss(const net::LossSample& s) { mi_.on_loss(s); }

void PccAllegro::on_mi(const MonitorIntervals::MiResult& mi, util::Time) {
  const double u = utility(mi);
  switch (mode_) {
    case Mode::kStarting:
      if (u > prev_utility_) {
        prev_utility_ = u;
        rate_ = std::min(rate_ * 2.0, cfg_.max_rate);
      } else {
        rate_ = std::max(rate_ / 2.0, cfg_.min_rate);
        mode_ = Mode::kDecision;
        trial_index_ = 0;
      }
      break;
    case Mode::kDecision: {
      trial_utility_[static_cast<std::size_t>(trial_index_)] = u;
      ++trial_index_;
      if (trial_index_ < 4) break;
      trial_index_ = 0;
      // Compare the two +eps trials against the two -eps trials.
      double up = 0, down = 0;
      for (int i = 0; i < 4; ++i) {
        (trial_sign_[static_cast<std::size_t>(i)] > 0 ? up : down) +=
            trial_utility_[static_cast<std::size_t>(i)];
      }
      if (up > down) {
        rate_ = std::min(rate_ * (1.0 + eps_), cfg_.max_rate);
        eps_ = 0.01;
      } else if (down > up) {
        rate_ = std::max(rate_ * (1.0 - eps_), cfg_.min_rate);
        eps_ = 0.01;
      } else {
        eps_ = std::min(eps_ + 0.01, cfg_.epsilon);
      }
      break;
    }
  }
}

util::RateBps PccAllegro::pacing_rate(util::Time) const {
  if (mode_ == Mode::kDecision) {
    const double sign = trial_sign_[static_cast<std::size_t>(trial_index_)];
    return rate_ * (1.0 + sign * eps_);
  }
  return rate_;
}

// ---------------------------------------------------------------- Vivace

PccVivace::PccVivace(PccConfig cfg) : cfg_(cfg), rate_(cfg.initial_rate) {}

double PccVivace::utility(const MonitorIntervals::MiResult& mi) {
  // u = x^0.9 - b * x * d(RTT)/dt - c * x * L   (x in Mbit/s)
  const double x = mi.throughput_bps / 1e6;
  const double l = mi.loss_rate;
  // Within-MI RTT slope (endpoint fit standing in for Vivace's per-packet
  // linear regression). b is scaled down from the NSDI'18 value (900):
  // the cellular link injects 8 ms HARQ delay steps that the regression
  // only partially damps; at b=900 the penalty swamps the reward and the
  // rate collapses to the floor.
  const double rtt_grad = std::max(mi.rtt_slope, 0.0);
  constexpr double b = 50.0, c = 11.35;
  return std::pow(std::max(x, 1e-6), 0.9) - b * x * rtt_grad - c * x * l;
}

void PccVivace::on_ack(const net::AckSample& s) {
  mi_.on_ack(s);
  // Bounded for the same reason as Allegro's MI (see above).
  const util::Duration mi_len = std::clamp<util::Duration>(
      mi_.srtt() / 2, 10 * util::kMillisecond, 100 * util::kMillisecond);
  if (auto r = mi_.poll(s.now, mi_len)) on_mi(*r, s.now);
}

void PccVivace::on_loss(const net::LossSample& s) { mi_.on_loss(s); }

void PccVivace::on_mi(const MonitorIntervals::MiResult& mi, util::Time) {
  trial_utility_[trial_index_] = utility(mi);
  if (++trial_index_ < 2) return;
  trial_index_ = 0;

  const double du = trial_utility_[0] - trial_utility_[1];  // +eps minus -eps
  const double dr = 2.0 * cfg_.epsilon * rate_ / 1e6;       // Mbit/s
  if (dr <= 0) return;
  double gradient = du / dr;

  // Confidence amplification: consecutive same-sign gradients take larger
  // steps; a sign flip resets.
  const double sign = gradient > 0 ? 1.0 : (gradient < 0 ? -1.0 : 0.0);
  confidence_ = (sign != 0 && sign == last_gradient_sign_)
                    ? std::min(confidence_ + 1.0, 8.0)
                    : 1.0;
  last_gradient_sign_ = sign;

  constexpr double theta = 0.02e6;  // rate step per unit utility gradient
  double step = theta * confidence_ * gradient;
  const double max_step = 0.08 * rate_;
  step = std::clamp(step, -max_step, max_step);
  rate_ = std::clamp(rate_ + step, cfg_.min_rate, cfg_.max_rate);
}

util::RateBps PccVivace::pacing_rate(util::Time) const {
  const double sign = trial_index_ == 0 ? +1.0 : -1.0;
  return rate_ * (1.0 + sign * cfg_.epsilon);
}

}  // namespace pbecc::baselines
