// Verus (Zaki et al., SIGCOMM 2015): learns a delay profile — a mapping
// from sending window to observed end-to-end delay — and each epoch picks
// the window whose profiled delay matches a delay target that is itself
// steered up/down by the measured delay gradient.
//
// Characteristic behaviour the paper reproduces (Figs 13-14): high
// throughput on cellular links but large standing delays, because the
// profile tolerates multi-hundred-ms queues while probing.
#pragma once

#include <vector>

#include "net/congestion_controller.h"
#include "util/windowed_filter.h"

namespace pbecc::baselines {

struct VerusConfig {
  util::Duration epoch = 5 * util::kMillisecond;
  double delta1 = 1.0;   // additive window increase when delay is low (segments)
  double delta2 = 2.0;   // multiplicative-ish decrease when delay is high
  double r = 2.0;        // delay-ratio threshold D_est / D_min
  std::int32_t mss = net::kDefaultMss;
  int max_window_segments = 4000;
  double ewma_alpha = 0.25;
};

class Verus : public net::CongestionController {
 public:
  explicit Verus(VerusConfig cfg = {});

  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;

  util::RateBps pacing_rate(util::Time now) const override;
  double cwnd_bytes(util::Time now) const override;
  std::string name() const override { return "verus"; }

 private:
  void epoch_update(util::Time now);
  int window_for_delay(double target_delay_ms) const;

  VerusConfig cfg_;
  double cwnd_ = 10;  // segments
  // Delay profile: profile_[w] = EWMA of delay (ms) observed when the
  // in-flight window was about w segments.
  std::vector<double> profile_;
  double d_est_ms_ = 0;      // smoothed current delay
  double d_min_ms_ = 1e9;    // minimum observed delay
  double d_target_ms_ = 0;
  util::Time last_epoch_ = 0;
  util::Duration srtt_ = 100 * util::kMillisecond;
  bool in_recovery_ = false;
};

}  // namespace pbecc::baselines
