// Sprout (Winstein, Sivaraman, Balakrishnan — NSDI 2013): models the
// cellular link rate as a stochastic (Brownian) process inferred from
// packet arrival times and sends only what the 5th-percentile forecast of
// the next 100 ms can absorb.
//
// The conservative percentile keeps delay low but sacrifices throughput —
// the paper groups Sprout with the four "low throughput" algorithms and
// shows it almost never triggers carrier aggregation (Fig 15).
#pragma once

#include "net/congestion_controller.h"

namespace pbecc::baselines {

struct SproutConfig {
  util::Duration tick = 20 * util::kMillisecond;   // forecast update period
  util::Duration horizon = 100 * util::kMillisecond;  // target in-network time
  double percentile_sigma = 1.64;  // ~5th percentile of a normal forecast
  double drift_gain = 0.2;         // uncertainty growth per tick
  std::int32_t mss = net::kDefaultMss;
};

class Sprout : public net::CongestionController {
 public:
  explicit Sprout(SproutConfig cfg = {});

  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample&) override {}

  util::RateBps pacing_rate(util::Time now) const override;
  double cwnd_bytes(util::Time now) const override;
  std::string name() const override { return "sprout"; }

 private:
  void tick_update(util::Time now);

  SproutConfig cfg_;
  // Delivery-rate process estimate (bits/s): mean and std dev.
  double rate_mean_ = 1e6;
  double rate_var_ = 1e12;
  double bytes_this_tick_ = 0;
  util::Time tick_start_ = 0;
  std::uint64_t bytes_in_flight_ = 0;
  double cautious_rate_ = 5e5;
};

}  // namespace pbecc::baselines
