#include "baselines/sprout.h"

#include <algorithm>
#include <cmath>

namespace pbecc::baselines {

Sprout::Sprout(SproutConfig cfg) : cfg_(cfg) {}

void Sprout::on_ack(const net::AckSample& s) {
  bytes_in_flight_ = s.bytes_in_flight;
  bytes_this_tick_ += s.acked_bytes;
  if (tick_start_ == 0) tick_start_ = s.now;
  if (s.now - tick_start_ >= cfg_.tick) tick_update(s.now);
}

void Sprout::tick_update(util::Time now) {
  const double elapsed_sec = util::to_seconds(now - tick_start_);
  tick_start_ = now;
  if (elapsed_sec <= 0) return;

  const double observed = bytes_this_tick_ * util::kBitsPerByte / elapsed_sec;
  bytes_this_tick_ = 0;

  // Brownian update: the mean tracks observations; the variance mixes
  // measurement noise with drift, so a quiet link narrows the forecast and
  // a bursty one widens it.
  const double innovation = observed - rate_mean_;
  rate_mean_ += 0.25 * innovation;
  rate_var_ = 0.75 * rate_var_ + 0.25 * innovation * innovation;
  rate_var_ *= (1.0 + cfg_.drift_gain * elapsed_sec);

  const double std_dev = std::sqrt(std::max(rate_var_, 0.0));
  cautious_rate_ = std::max(rate_mean_ - cfg_.percentile_sigma * std_dev,
                            0.3 * rate_mean_);
}

util::RateBps Sprout::pacing_rate(util::Time) const {
  // Small multiplicative headroom plus an additive probe: without it the
  // forecast can only ever observe what it itself sends and the rate pins
  // to the floor (the real Sprout probes through its tick-by-tick cwnd
  // slack). The conservative percentile still keeps utilization low.
  return std::max(cautious_rate_ * 1.1 + 3e5, 5e5);
}

double Sprout::cwnd_bytes(util::Time) const {
  // Send only what the cautious forecast drains within the horizon.
  const double budget_bytes = pacing_rate(0) / util::kBitsPerByte *
                              util::to_seconds(cfg_.horizon);
  return std::max(budget_bytes, 4.0 * cfg_.mss);
}

}  // namespace pbecc::baselines
