// GoogCc ("gcc"): the delay-gradient BWE from src/bwe exposed as a
// standalone congestion controller, so the hybrid blend's endpoint-only
// half can be benchmarked on its own against PBE-CC and the other
// baselines (ROADMAP item 4). Pacing rate is the AIMD target; the window
// is 2x the target's BDP against the tracked minimum RTT, enough to keep
// the pacer rate-limited rather than window-limited.
#pragma once

#include "net/congestion_controller.h"
#include "util/windowed_filter.h"

#include "bwe/delay_bwe.h"

namespace pbecc::baselines {

struct GoogCcConfig {
  bwe::DelayBasedBweConfig bwe{};
  double cwnd_gain = 2.0;
  util::Duration rtprop_window = 10 * util::kSecond;
  // Loss is a secondary signal for a delay-based scheme, but ignoring it
  // entirely lets a policer starve everyone: cut like AIMD's beta.
  double loss_beta = 0.85;
  util::Duration loss_backoff_hold = 200 * util::kMillisecond;
};

class GoogCc : public net::CongestionController {
 public:
  explicit GoogCc(GoogCcConfig cfg = {});

  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;

  util::RateBps pacing_rate(util::Time now) const override;
  double cwnd_bytes(util::Time now) const override;
  std::string name() const override { return "gcc"; }

  const bwe::DelayBasedBwe& estimator() const { return bwe_; }

 private:
  GoogCcConfig cfg_;
  bwe::DelayBasedBwe bwe_;
  mutable util::WindowedMin<util::Duration> rtprop_;
  util::Duration last_rtt_ = 100 * util::kMillisecond;
  // Multiplicative loss backoff, applied on top of the delay target and
  // decayed by re-arming only after a hold (one cut per loss burst).
  double loss_cap_ = 0.0;  // 0 = no active cap
  util::Time last_loss_cut_ = -1;
};

}  // namespace pbecc::baselines
