#include "baselines/cubic.h"

#include <algorithm>
#include <cmath>

namespace pbecc::baselines {

Cubic::Cubic(CubicConfig cfg) : cfg_(cfg), cwnd_(cfg.initial_cwnd_segments) {}

double Cubic::cubic_window(double t_sec) const {
  const double dt = t_sec - k_;
  return cfg_.c * dt * dt * dt + w_max_;
}

void Cubic::on_ack(const net::AckSample& s) {
  if (s.rtt > 0) srtt_ = (7 * srtt_ + s.rtt) / 8;

  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start: one segment per acked segment
    return;
  }

  // Congestion avoidance: cubic growth against wall-clock epoch time.
  if (epoch_start_ < 0) {
    epoch_start_ = s.now;
    if (w_max_ < cwnd_) {
      w_max_ = cwnd_;
      k_ = 0;
    } else {
      k_ = std::cbrt(w_max_ * (1.0 - cfg_.beta) / cfg_.c);
    }
    w_tcp_ = cwnd_;
  }
  const double t = util::to_seconds(s.now - epoch_start_);
  const double target = cubic_window(t);

  // TCP-friendly region (standard Reno-rate tracking).
  const double rtt_sec = std::max(util::to_seconds(srtt_), 1e-3);
  w_tcp_ += 3.0 * (1.0 - cfg_.beta) / (1.0 + cfg_.beta) * (1.0 / cwnd_);
  const double floor_w = std::max(target, w_tcp_);

  if (floor_w > cwnd_) {
    // Spread the increase over the RTT, approximated per ack.
    cwnd_ += (floor_w - cwnd_) / std::max(cwnd_, 1.0);
  } else {
    cwnd_ += 0.01 / std::max(cwnd_, 1.0);  // slow max-probing
  }
  (void)rtt_sec;
}

void Cubic::enter_recovery(util::Time now) {
  if (now < recovery_until_) return;  // one decrease per RTT-ish
  recovery_until_ = now + srtt_;
  if (cfg_.fast_convergence && cwnd_ < w_last_max_) {
    w_last_max_ = cwnd_;
    w_max_ = cwnd_ * (1.0 + cfg_.beta) / 2.0;
  } else {
    w_last_max_ = cwnd_;
    w_max_ = cwnd_;
  }
  cwnd_ = std::max(cwnd_ * cfg_.beta, 2.0);
  ssthresh_ = cwnd_;
  epoch_start_ = -1;
}

void Cubic::on_loss(const net::LossSample& s) {
  if (s.bytes_in_flight == 0) {
    // RTO: collapse like TCP.
    ssthresh_ = std::max(cwnd_ * cfg_.beta, 2.0);
    cwnd_ = cfg_.initial_cwnd_segments;
    epoch_start_ = -1;
    return;
  }
  enter_recovery(s.now);
}

util::RateBps Cubic::pacing_rate(util::Time) const {
  const double rtt_sec = std::max(util::to_seconds(srtt_), 1e-3);
  return cfg_.pacing_gain * cwnd_bytes(0) * util::kBitsPerByte / rtt_sec;
}

double Cubic::cwnd_bytes(util::Time) const { return cwnd_ * cfg_.mss; }

}  // namespace pbecc::baselines
