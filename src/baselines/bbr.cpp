#include "baselines/bbr.h"

#include <algorithm>

namespace pbecc::baselines {

namespace {
// The PROBE_BW gain cycle of the paper's Fig 9.
constexpr double kCycleGains[] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
constexpr int kCycleLen = 8;
}  // namespace

Bbr::Bbr(BbrConfig cfg)
    : cfg_(std::move(cfg)),
      mode_(cfg_.enter_probe_bw_directly ? Mode::kEntryDrain : Mode::kStartup),
      btlbw_filter_(cfg_.btlbw_window),
      rtprop_(100 * util::kMillisecond),
      rng_(cfg_.seed) {
  // Randomize the initial PROBE_BW phase (not the 0.75 drain phase), as in
  // the reference implementation, so competing flows don't synchronize probes.
  cycle_index_ = static_cast<int>(rng_.uniform_int(2, kCycleLen - 1));
}

void Bbr::seed_estimates(util::Time now, util::RateBps btlbw,
                         util::Duration rtprop) {
  if (btlbw > 0) btlbw_filter_.update(now, btlbw);
  if (rtprop > 0) {
    rtprop_ = rtprop;
    rtprop_stamp_ = now;
  }
}

util::RateBps Bbr::btl_bw(util::Time now) const {
  return btlbw_filter_.get(now, cfg_.initial_rate);
}

double Bbr::bdp_bytes(util::Time now, double gain) const {
  const double bdp = btl_bw(now) / util::kBitsPerByte * util::to_seconds(rtprop_);
  return std::max(gain * bdp, 4.0 * cfg_.mss);
}

void Bbr::on_packet_sent(util::Time, const net::Packet&, std::uint64_t bif) {
  bytes_in_flight_ = bif;
}

void Bbr::on_ack(const net::AckSample& s) {
  bytes_in_flight_ = s.bytes_in_flight;

  // Round accounting: one round per delivered-BDP of data.
  round_start_ = false;
  if (s.total_delivered_bytes >= next_round_delivered_) {
    next_round_delivered_ = s.total_delivered_bytes +
                            std::max<std::uint64_t>(bytes_in_flight_, 1);
    round_start_ = true;
  }

  if (s.delivery_rate > 0 && !s.is_app_limited) {
    btlbw_filter_.update(s.now, s.delivery_rate);
  }
  // Note the order: expiry must be observed *before* the refresh below, or
  // PROBE_RTT would never trigger (the refresh resets the staleness stamp).
  const bool rtprop_expired = s.now - rtprop_stamp_ > cfg_.rtprop_window;
  if (s.rtt > 0 && (s.rtt <= rtprop_ || rtprop_expired)) {
    rtprop_ = s.rtt;
    rtprop_stamp_ = s.now;
  }

  switch (mode_) {
    case Mode::kStartup:
      if (round_start_) check_full_pipe();
      if (filled_pipe_) mode_ = Mode::kDrain;
      break;
    case Mode::kDrain:
      if (static_cast<double>(bytes_in_flight_) <= bdp_bytes(s.now, 1.0)) {
        mode_ = Mode::kProbeBw;
        cycle_start_ = s.now;
      }
      break;
    case Mode::kEntryDrain:
      // Paper §4.2.3: drain at 0.5 BtlBw to empty the queue that triggered
      // the Internet-bottleneck switch, then probe. The paper suggests one
      // RTprop; we drain until the in-flight data actually fits one BDP
      // (with a 10-RTprop safety valve) — a large transition queue takes
      // several RTprop to clear, and probing on top of it would leave a
      // standing queue for the whole Internet-bottleneck episode.
      if (cycle_start_ == 0) cycle_start_ = s.now;
      if (static_cast<double>(bytes_in_flight_) <= bdp_bytes(s.now, 1.0) ||
          s.now - cycle_start_ >= 10 * rtprop_) {
        mode_ = Mode::kProbeBw;
        cycle_start_ = s.now;
        cycle_index_ = static_cast<int>(rng_.uniform_int(2, kCycleLen - 1));
      }
      break;
    case Mode::kProbeBw:
      advance_cycle(s.now);
      break;
    case Mode::kProbeRtt:
      if (s.now >= probe_rtt_done_) {
        last_probe_rtt_ = s.now;
        mode_ = Mode::kProbeBw;
        cycle_start_ = s.now;
      }
      break;
  }

  maybe_enter_probe_rtt(s.now, rtprop_expired);
}

void Bbr::check_full_pipe() {
  const double bw = btlbw_filter_.get(0, 0.0);
  if (bw > full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) filled_pipe_ = true;
}

void Bbr::advance_cycle(util::Time now) {
  if (now - cycle_start_ >= rtprop_) {
    cycle_index_ = (cycle_index_ + 1) % kCycleLen;
    cycle_start_ = now;
  }
}

void Bbr::maybe_enter_probe_rtt(util::Time now, bool rtprop_expired) {
  if (mode_ == Mode::kProbeRtt || mode_ == Mode::kStartup) return;
  if (rtprop_expired && now - last_probe_rtt_ > cfg_.probe_rtt_interval) {
    mode_ = Mode::kProbeRtt;
    probe_rtt_done_ = now + cfg_.probe_rtt_duration;
  }
}

void Bbr::on_loss(const net::LossSample& s) {
  bytes_in_flight_ = s.bytes_in_flight;
  // BBR v1 mostly ignores losses; a full in-flight loss (RTO) resets the
  // full-pipe latch so STARTUP can re-probe after an outage.
  if (s.bytes_in_flight == 0) {
    filled_pipe_ = false;
    full_bw_ = 0;
    full_bw_count_ = 0;
  }
}

util::RateBps Bbr::pacing_rate(util::Time now) const {
  const util::RateBps bw = btl_bw(now);
  switch (mode_) {
    case Mode::kStartup:
      return cfg_.startup_gain * bw;
    case Mode::kDrain:
      return cfg_.drain_gain * bw;
    case Mode::kEntryDrain:
      return 0.5 * bw;
    case Mode::kProbeRtt:
      return bw;  // cwnd (4 MSS) does the limiting
    case Mode::kProbeBw: {
      const double gain = kCycleGains[cycle_index_];
      util::RateBps rate = gain * bw;
      if (cfg_.probe_cap && gain >= 1.0) {
        const util::RateBps cap = cfg_.probe_cap();
        if (cap > 0) rate = std::min(rate, cap);
      }
      return rate;
    }
  }
  return bw;
}

double Bbr::cwnd_bytes(util::Time now) const {
  if (mode_ == Mode::kProbeRtt) return 4.0 * cfg_.mss;
  const double gain =
      mode_ == Mode::kStartup ? cfg_.startup_gain : cfg_.cwnd_gain;
  return bdp_bytes(now, gain);
}

}  // namespace pbecc::baselines
