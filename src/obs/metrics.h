// Process-wide metrics registry: named counters, gauges and exponential-
// bucket histograms that any module can register into.
//
// Naming convention: `module.metric[.detail]`, e.g.
//   decoder.messages_decoded     counter, monotonically increasing
//   pbe.sender.pacing_bps        gauge, last written value wins
//   prof.blind_decode            histogram of wall-clock ns per call
//
// The registry is process-global (the simulator is single-threaded, and a
// run exercises one scenario at a time). Metric objects returned by the
// registry are never deallocated, so call sites may cache the reference
// once and update it on the hot path; reset() zeroes values but keeps the
// registrations (and cached references) valid.
//
// With the PBECC_TRACE compile flag off (see flags.h) every mutator is an
// empty inline function: registration still works, values stay zero.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/flags.h"

namespace pbecc::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (kCompiled) value_ += n;
    (void)n;
  }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) {
    if constexpr (kCompiled) value_ = v;
    (void)v;
  }
  double value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  double value_ = 0;
};

// Exponential-bucket histogram for latency-style samples: bucket i counts
// values in [2^i, 2^{i+1}); value 0 lands in bucket 0. 48 buckets cover
// 1 ns .. ~3 days when samples are nanoseconds. Exact count/sum/min/max,
// percentiles approximated at the geometric midpoint of the bucket.
class ExpHistogram {
 public:
  static constexpr int kBuckets = 48;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  // p in [0, 100]; 0 for an empty histogram.
  double percentile(double p) const;
  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }
  void reset();

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class Registry {
 public:
  static Registry& instance();

  // Find-or-create by name. References stay valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  ExpHistogram& histogram(const std::string& name);

  // Zero every value; registrations (and cached references) survive.
  void reset();

  // Sorted-by-name snapshots (tests, report generation).
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const ExpHistogram*>> histograms() const;

  // One JSON document with all counters, gauges and histograms (the
  // per-scenario metrics report; schema documented in DESIGN.md).
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  Registry() = default;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ExpHistogram>> histograms_;
};

// Shorthands for call-site registration.
inline Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}
inline ExpHistogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

}  // namespace pbecc::obs
