// Process-wide metrics registry: named counters, gauges and exponential-
// bucket histograms that any module can register into.
//
// Naming convention: `module.metric[.detail]`, e.g.
//   decoder.messages_decoded     counter, monotonically increasing
//   pbe.sender.pacing_bps        gauge, last written value wins
//   prof.blind_decode            histogram of wall-clock ns per call
//
// The registry is process-global and thread-safe: pbecc::par runs
// scenario replications and blind-decode candidates on pool threads, so
// counters/gauges use relaxed atomics, histograms atomic buckets, and
// find-or-create takes a registry mutex. Metric objects returned by the
// registry are never deallocated, so call sites may cache the reference
// once and update it on the hot path; reset() zeroes values but keeps the
// registrations (and cached references) valid. Counter totals stay
// deterministic under concurrency (increments commute); only histogram
// min/max interleavings and trace ordering across *concurrent scenarios*
// are timing-dependent.
//
// With the PBECC_TRACE compile flag off (see flags.h) every mutator is an
// empty inline function: registration still works, values stay zero.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flags.h"

namespace pbecc::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (kCompiled) value_.fetch_add(n, std::memory_order_relaxed);
    (void)n;
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if constexpr (kCompiled) value_.store(v, std::memory_order_relaxed);
    (void)v;
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Exponential-bucket histogram for latency-style samples: bucket i counts
// values in [2^i, 2^{i+1}); value 0 lands in bucket 0. 48 buckets cover
// 1 ns .. ~3 days when samples are nanoseconds. Exact count/sum/min/max,
// percentiles approximated at the geometric midpoint of the bucket.
class ExpHistogram {
 public:
  static constexpr int kBuckets = 48;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t max() const {
    return count() ? max_.load(std::memory_order_relaxed) : 0;
  }
  double mean() const {
    const auto n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  // p in [0, 100]; 0 for an empty histogram.
  double percentile(double p) const;
  // Snapshot copy (buckets are atomics internally).
  std::array<std::uint64_t, kBuckets> buckets() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

class Registry {
 public:
  static Registry& instance();

  // Find-or-create by name. References stay valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  ExpHistogram& histogram(const std::string& name);

  // Zero every value; registrations (and cached references) survive.
  void reset();

  // Sorted-by-name snapshots (tests, report generation).
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const ExpHistogram*>> histograms() const;

  // One JSON document with all counters, gauges and histograms (the
  // per-scenario metrics report; schema documented in DESIGN.md).
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  Registry() = default;
  // Guards the maps (find-or-create and snapshots); the metric objects
  // themselves are lock-free.
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ExpHistogram>> histograms_;
};

// Shorthands for call-site registration.
inline Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}
inline ExpHistogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

}  // namespace pbecc::obs
