// Scoped wall-clock profiler.
//
//   void BlindDecoder::decode(...) {
//     PBECC_PROF_SCOPE("blind_decode");
//     ...
//   }
//
// Each call site owns a static ProfSite registered as the histogram
// `prof.<name>` (nanoseconds per entry) in the metrics registry; the RAII
// ProfScope reads std::chrono::steady_clock on entry/exit. This is the one
// place the observability layer uses wall clock — it measures the *real*
// CPU cost of simulated work (is blind decoding faster than the 1 ms
// subframe budget?), so the sim clock is useless here.
//
// Off by default: enable with set_profiling(true[, sample_every]). When
// disabled the scope costs a single branch; when compiled out (flags.h) it
// costs nothing. sample_every > 1 times only every Nth entry per site,
// bounding clock-read overhead in very hot scopes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/flags.h"
#include "obs/metrics.h"

namespace pbecc::obs {

namespace detail {
inline bool g_prof_on = false;
inline std::uint32_t g_prof_sample_every = 1;
}  // namespace detail

inline void set_profiling(bool on, std::uint32_t sample_every = 1) {
  detail::g_prof_on = on;
  detail::g_prof_sample_every = sample_every == 0 ? 1 : sample_every;
}
inline bool profiling_enabled() { return detail::g_prof_on; }

class ProfSite {
 public:
  explicit ProfSite(const char* name)
      : hist_(&histogram(std::string("prof.") + name)) {}

  bool take_sample() {
    // Relaxed: sites are shared across pool threads; sampling cadence only
    // needs to be approximate, not strictly every-Nth.
    return (calls_.fetch_add(1, std::memory_order_relaxed) %
            detail::g_prof_sample_every) == 0;
  }
  void record_ns(std::uint64_t ns) { hist_->record(ns); }

 private:
  ExpHistogram* hist_;
  std::atomic<std::uint32_t> calls_{0};
};

class ProfScope {
 public:
  explicit ProfScope(ProfSite& site) {
    if (detail::g_prof_on && site.take_sample()) {
      site_ = &site;
      t0_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfScope() {
    if (site_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
      site_->record_ns(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSite* site_ = nullptr;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace pbecc::obs

#define PBECC_OBS_CONCAT_INNER(a, b) a##b
#define PBECC_OBS_CONCAT(a, b) PBECC_OBS_CONCAT_INNER(a, b)

#if defined(PBECC_TRACE_ENABLED)
#define PBECC_PROF_SCOPE(name_literal)                                   \
  static ::pbecc::obs::ProfSite PBECC_OBS_CONCAT(pbecc_prof_site_,       \
                                                 __LINE__){name_literal}; \
  ::pbecc::obs::ProfScope PBECC_OBS_CONCAT(pbecc_prof_scope_, __LINE__) { \
    PBECC_OBS_CONCAT(pbecc_prof_site_, __LINE__)                          \
  }
#else
#define PBECC_PROF_SCOPE(name_literal) static_cast<void>(0)
#endif
