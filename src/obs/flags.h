// Compile-time switch for the observability layer.
//
// The CMake option PBECC_TRACE (default ON) defines PBECC_TRACE_ENABLED on
// every target that links pbecc_obs. When the option is OFF the whole
// instrumentation API still compiles — counters, gauges, event emission and
// profiling scopes all collapse to empty inline bodies — so call sites never
// need #ifdef guards and release builds carry zero overhead.
#pragma once

namespace pbecc::obs {

#if defined(PBECC_TRACE_ENABLED)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

}  // namespace pbecc::obs
