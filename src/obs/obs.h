// pbecc::obs — umbrella header for the observability layer.
//
// Three cooperating pieces, all process-global and single-threaded like the
// simulator itself:
//
//   trace.h    structured event timeline (sim-clock timestamps, ring
//              buffer, JSONL + Chrome trace_event exporters)
//   metrics.h  named counter/gauge/histogram registry, JSON report
//   profile.h  PBECC_PROF_SCOPE wall-clock profiler feeding `prof.*`
//              histograms in the registry
//
// Everything compiles away under -DPBECC_TRACE=OFF (see flags.h); with the
// flag on, tracing and profiling are still opt-in at runtime and idle call
// sites cost one predictable branch.
#pragma once

#include "obs/flags.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace pbecc::obs {

// Reset every observability sink: stop + drop the trace, zero the registry.
// Tests and multi-run drivers call this between runs.
inline void reset_all() {
  Trace::instance().clear();
  Registry::instance().reset();
}

}  // namespace pbecc::obs
