#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace pbecc::obs {

namespace {

int bucket_index(std::uint64_t v) {
  if (v <= 1) return 0;
  const int b = 63 - std::countl_zero(v);
  return std::min(b, ExpHistogram::kBuckets - 1);
}

// Geometric midpoint of bucket i: sqrt(2^i * 2^{i+1}).
double bucket_mid(int i) {
  return std::exp2(static_cast<double>(i) + 0.5);
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
}

}  // namespace

void ExpHistogram::record(std::uint64_t v) {
  if constexpr (!kCompiled) {
    (void)v;
    return;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
}

double ExpHistogram::percentile(double p) const {
  const auto n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // The extremes are tracked exactly; only interior quantiles are
  // bucket-midpoint approximations.
  if (p == 0.0) return static_cast<double>(min());
  if (p == 100.0) return static_cast<double>(max());
  const auto target =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  const auto snap = buckets();
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<std::size_t>(i)];
    if (seen >= target && snap[static_cast<std::size_t>(i)] > 0) {
      // Clamp the bucket estimate by the exact extremes.
      return std::clamp(bucket_mid(i), static_cast<double>(min()),
                        static_cast<double>(max()));
    }
  }
  return static_cast<double>(max());
}

std::array<std::uint64_t, ExpHistogram::kBuckets> ExpHistogram::buckets()
    const {
  std::array<std::uint64_t, kBuckets> out{};
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return out;
}

void ExpHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

ExpHistogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<ExpHistogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& [n, c] : counters_) c->reset();
  for (auto& [n, g] : gauges_) g->reset();
  for (auto& [n, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [n, c] : counters_) out.emplace_back(n, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [n, g] : gauges_) out.emplace_back(n, g->value());
  return out;
}

std::vector<std::pair<std::string, const ExpHistogram*>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::pair<std::string, const ExpHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [n, h] : histograms_) out.emplace_back(n, h.get());
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lk(m_);
  // schema_version first, then the sections in fixed order — consumers may
  // rely on deterministic key order for textual diffs.
  std::string out = "{\n  \"schema_version\": 1,\n  \"counters\": {";
  char buf[128];
  bool first = true;
  for (const auto& [n, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, n);
    std::snprintf(buf, sizeof(buf), "\": %llu",
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [n, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, n);
    const double v = g->value();
    if (std::isfinite(v)) {
      std::snprintf(buf, sizeof(buf), "\": %.6g", v);
    } else {
      std::snprintf(buf, sizeof(buf), "\": null");
    }
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [n, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, n);
    std::snprintf(
        buf, sizeof(buf),
        "\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, \"max\": %llu, ",
        static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->sum()),
        static_cast<unsigned long long>(h->min()),
        static_cast<unsigned long long>(h->max()));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"mean\": %.6g, \"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g, ",
                  h->mean(), h->percentile(50), h->percentile(95),
                  h->percentile(99));
    out += buf;
    // Sparse bucket list: [[log2_lo, count], ...].
    out += "\"buckets\": [";
    bool bfirst = true;
    const auto bsnap = h->buckets();
    for (int i = 0; i < ExpHistogram::kBuckets; ++i) {
      const auto c = bsnap[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      std::snprintf(buf, sizeof(buf), "[%d, %llu]", i,
                    static_cast<unsigned long long>(c));
      out += buf;
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

bool Registry::write_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace pbecc::obs
