// Structured event tracing keyed on the simulation clock.
//
// Modules emit fixed-size typed events (DCI decoded, HARQ retransmission,
// capacity update, sender mode switch, ...) into one in-memory ring buffer;
// at the end of a run the buffer exports to JSONL (one event per line) or
// to the Chrome trace_event format (load in chrome://tracing or Perfetto,
// where each event category renders as its own timeline track).
//
// Timestamps are util::Time (simulation microseconds), never wall clock, so
// decoder, estimator, MAC and transport events line up on one timebase.
//
// Cost model: emit() is one branch when no trace is active, nothing at all
// when compiled out (flags.h). High-frequency kinds (per-DCI, per-feedback)
// can additionally be sampled 1-in-N at runtime via TraceConfig.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flags.h"
#include "util/time.h"

namespace pbecc::obs {

enum class EventKind : std::uint8_t {
  // decoder
  kDciDecoded = 0,     // id=cell, id2=rnti, a=n_prbs, x=bits_per_prb, y=AL
  kSubframeObserved,   // id=cell, a=data_users, x=own_prbs, y=idle_prbs
  kFusionIncomplete,   // id=missing cell, a=sf_index
  // pbe
  kCapacityUpdate,     // a=active_cells, x=Cp bits/sf, y=Cf bits/sf
  kFeedbackSent,       // a=client state, x=rate_bps, y=owd_ms
  kClientStateSwitch,  // a=new state, id2=old state
  kSenderModeSwitch,   // a=1 enter Internet mode, 0 back to cellular
  // mac
  kHarqRetx,           // id=cell, id2=ue, a=harq process, x=n_prbs
  kTbAbandoned,        // id=cell, id2=ue, a=tb_seq
  kHandover,           // id=new primary cell, id2=ue, a=n_cells
  kCaChange,           // id2=ue, a=active cells now, x=active cells before
  kQueueDrop,          // id2=ue, a=bytes
  // net
  kPacketLoss,         // id2=flow, a=seq, x=bytes
  kRtoFired,           // id2=flow, x=bytes presumed lost
  // fault
  kFaultInjected,      // id=cell, id2=fault type (fault::FaultType), a=detail
  kDegradationSwitch,  // id2=old state, a=new state (pbe::DegradationState)
  kEstimatorCrossCheck,  // id2=1 diverged / 0 agreed, x=phy_bps, y=delay_bps
  kKindCount,          // sentinel
};

inline constexpr int kNumEventKinds = static_cast<int>(EventKind::kKindCount);

// Exporter metadata: display name, category (= Chrome trace track), field
// labels for the payload slots (nullptr = slot unused), and whether the
// kind is high-frequency (subject to TraceConfig::sample_every).
struct EventSchema {
  const char* name;
  const char* category;
  const char* f_id;
  const char* f_id2;
  const char* f_a;
  const char* f_x;
  const char* f_y;
  bool high_freq;
};
const EventSchema& schema(EventKind k);

struct Event {
  util::Time t = 0;          // simulation time, microseconds
  EventKind kind{};
  std::uint16_t id = 0;      // small id (cell)
  std::uint32_t id2 = 0;     // rnti / ue / flow
  std::int64_t a = 0;
  double x = 0;
  double y = 0;
};

struct TraceConfig {
  std::size_t capacity = 1u << 18;  // ring capacity, in events (~10 MB)
  std::uint32_t sample_every = 1;   // keep 1 in N high-frequency events
};

class Trace {
 public:
  static Trace& instance();

  void start(TraceConfig cfg = {});
  void stop();             // stops recording; the buffer stays readable
  void clear();            // stop + drop the buffer
  bool active() const { return active_; }

  void record(const Event& e);

  // Barrier flush for sharded scenarios (DESIGN.md §15): apply a batch of
  // events under one lock, in order, with the same sampling/ring logic as
  // record(). Domains buffer events into per-thread sinks during the
  // parallel phase and the scenario flushes the buffers in domain-index
  // order at each barrier, so the ring contents (and digest()) are a
  // function of the domain event sequences alone — byte-identical for any
  // worker count.
  void record_batch(const std::vector<Event>& events);

  // Events currently retained, oldest first (ring order restored).
  std::vector<Event> snapshot() const;
  std::size_t size() const { return ring_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  // Events overwritten after the ring wrapped.
  std::uint64_t dropped() const { return dropped_; }
  // High-frequency events skipped by sampling.
  std::uint64_t sampled_out() const { return sampled_out_; }

  bool write_jsonl(const std::string& path) const;
  bool write_chrome(const std::string& path) const;

  // Order-sensitive FNV-1a hash over every retained event's fields, oldest
  // first. Two runs with byte-identical traces produce equal digests; the
  // determinism suite compares digests across thread counts.
  std::uint64_t digest() const;

 private:
  Trace() = default;

  void record_locked(const Event& e);

  // record() may be called from pool threads (parallel scenario
  // replications both tracing into the global ring); the ring, cursors and
  // counters are guarded by one mutex. emit()'s fast path (no active
  // trace) stays lock-free.
  mutable std::mutex m_;
  bool active_ = false;
  TraceConfig cfg_;
  std::vector<Event> ring_;
  std::size_t next_ = 0;  // write position once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t hf_seq_ = 0;
};

namespace detail {
// Null when no trace is active: emit() stays a single test-and-branch.
inline Trace* g_trace = nullptr;
// When set, emit() on this thread appends raw events to the sink instead of
// the global ring; sampling and ring logic are deferred to record_batch().
inline thread_local std::vector<Event>* g_sink = nullptr;
}  // namespace detail

// Redirect this thread's emitted events into `sink` (nullptr restores the
// global ring). Used by sharded scenario stepping; pair with
// Trace::record_batch at the barrier.
inline void set_thread_sink(std::vector<Event>* sink) {
  detail::g_sink = sink;
}

// RAII form for exception safety around a domain step.
struct ThreadSinkScope {
  explicit ThreadSinkScope(std::vector<Event>* sink)
      : prev_(detail::g_sink) {
    detail::g_sink = sink;
  }
  ~ThreadSinkScope() { detail::g_sink = prev_; }
  ThreadSinkScope(const ThreadSinkScope&) = delete;
  ThreadSinkScope& operator=(const ThreadSinkScope&) = delete;

 private:
  std::vector<Event>* prev_;
};

// True while a trace is collecting. Call sites with instrumentation that
// is expensive to *compute* (not just to record) can skip the work when
// nothing is listening.
inline bool tracing_active() { return detail::g_trace != nullptr; }

inline void emit(EventKind kind, util::Time t, std::uint16_t id,
                 std::uint32_t id2, std::int64_t a = 0, double x = 0,
                 double y = 0) {
  if constexpr (kCompiled) {
    if (detail::g_trace != nullptr) {
      if (detail::g_sink != nullptr) {
        detail::g_sink->push_back(Event{t, kind, id, id2, a, x, y});
      } else {
        detail::g_trace->record(Event{t, kind, id, id2, a, x, y});
      }
    }
  }
  (void)kind; (void)t; (void)id; (void)id2; (void)a; (void)x; (void)y;
}

}  // namespace pbecc::obs
