#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/digest.h"

namespace pbecc::obs {

namespace {

constexpr EventSchema kSchemas[kNumEventKinds] = {
    // name, category, f_id, f_id2, f_a, f_x, f_y, high_freq
    {"dci_decoded", "decoder", "cell", "rnti", "n_prbs", "bits_per_prb", "al",
     true},
    {"subframe_observed", "decoder", "cell", nullptr, "data_users", "own_prbs",
     "idle_prbs", true},
    {"fusion_incomplete", "decoder", "cell", nullptr, "sf_index", nullptr,
     nullptr, false},
    {"capacity_update", "pbe", nullptr, nullptr, "active_cells", "cp_bits_sf",
     "cf_bits_sf", true},
    {"feedback_sent", "pbe", nullptr, nullptr, "state", "rate_bps", "owd_ms",
     true},
    {"client_state_switch", "pbe", nullptr, "old_state", "new_state", nullptr,
     nullptr, false},
    {"sender_mode_switch", "pbe", nullptr, nullptr, "internet_mode", nullptr,
     nullptr, false},
    {"harq_retx", "mac", "cell", "ue", "process", "n_prbs", nullptr, false},
    {"tb_abandoned", "mac", "cell", "ue", "tb_seq", nullptr, nullptr, false},
    {"handover", "mac", "primary_cell", "ue", "n_cells", nullptr, nullptr,
     false},
    {"ca_change", "mac", nullptr, "ue", "active_cells", "previous", nullptr,
     false},
    {"queue_drop", "mac", nullptr, "ue", "bytes", nullptr, nullptr, false},
    {"packet_loss", "net", nullptr, "flow", "seq", "bytes", nullptr, false},
    {"rto_fired", "net", nullptr, "flow", nullptr, "bytes_lost", nullptr,
     false},
    {"fault_injected", "fault", "cell", "fault_type", "detail", nullptr,
     nullptr, false},
    {"degradation_switch", "pbe", nullptr, "old_state", "new_state", nullptr,
     nullptr, false},
    {"estimator_cross_check", "pbe", nullptr, "diverged", nullptr, "phy_bps",
     "delay_bps", false},
};

// Append one `"label": value` fragment per used payload slot.
void append_args(std::string& out, const EventSchema& s, const Event& e,
                 const char* sep) {
  char buf[96];
  bool first = true;
  const auto put = [&](const char* label, const char* fmt, auto value) {
    if (label == nullptr) return;
    if (!first) out += sep;
    first = false;
    out += '"';
    out += label;
    out += "\": ";
    std::snprintf(buf, sizeof(buf), fmt, value);
    out += buf;
  };
  put(s.f_id, "%u", static_cast<unsigned>(e.id));
  put(s.f_id2, "%u", static_cast<unsigned>(e.id2));
  put(s.f_a, "%lld", static_cast<long long>(e.a));
  put(s.f_x, "%.6g", e.x);
  put(s.f_y, "%.6g", e.y);
}

}  // namespace

const EventSchema& schema(EventKind k) {
  return kSchemas[static_cast<int>(k)];
}

Trace& Trace::instance() {
  static Trace t;
  return t;
}

void Trace::start(TraceConfig cfg) {
  std::lock_guard<std::mutex> lk(m_);
  cfg_ = cfg;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  if (cfg_.sample_every == 0) cfg_.sample_every = 1;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(cfg_.capacity, 1u << 16));
  next_ = 0;
  recorded_ = dropped_ = sampled_out_ = hf_seq_ = 0;
  active_ = true;
  detail::g_trace = this;
}

void Trace::stop() {
  // Unpublish first so no new record() call starts, then take the lock to
  // wait out in-flight ones.
  detail::g_trace = nullptr;
  std::lock_guard<std::mutex> lk(m_);
  active_ = false;
}

void Trace::clear() {
  stop();
  std::lock_guard<std::mutex> lk(m_);
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  recorded_ = dropped_ = sampled_out_ = hf_seq_ = 0;
}

void Trace::record(const Event& e) {
  std::lock_guard<std::mutex> lk(m_);
  record_locked(e);
}

void Trace::record_batch(const std::vector<Event>& events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lk(m_);
  for (const Event& e : events) record_locked(e);
}

void Trace::record_locked(const Event& e) {
  if (!active_) return;
  if (schema(e.kind).high_freq && cfg_.sample_every > 1) {
    if (hf_seq_++ % cfg_.sample_every != 0) {
      ++sampled_out_;
      return;
    }
  }
  ++recorded_;
  if (ring_.size() < cfg_.capacity) {
    ring_.push_back(e);
    return;
  }
  // Ring full: overwrite the oldest event.
  ring_[next_] = e;
  next_ = (next_ + 1) % cfg_.capacity;
  ++dropped_;
}

std::vector<Event> Trace::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Trace::digest() const {
  std::uint64_t h = util::kFnv1aOffset;
  // Hash field-by-field (Event has padding between kind and id2).
  for (const Event& e : snapshot()) {
    h = util::fnv1a64_value(e.t, h);
    h = util::fnv1a64_value(static_cast<std::uint8_t>(e.kind), h);
    h = util::fnv1a64_value(e.id, h);
    h = util::fnv1a64_value(e.id2, h);
    h = util::fnv1a64_value(e.a, h);
    h = util::fnv1a64_value(e.x, h);
    h = util::fnv1a64_value(e.y, h);
  }
  return h;
}

bool Trace::write_jsonl(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  char head[96];
  for (const Event& e : snapshot()) {
    const EventSchema& s = schema(e.kind);
    std::string line;
    std::snprintf(head, sizeof(head), "{\"t_us\": %lld, \"name\": \"%s\", \"cat\": \"%s\"",
                  static_cast<long long>(e.t), s.name, s.category);
    line += head;
    std::string args;
    append_args(args, s, e, ", ");
    if (!args.empty()) {
      line += ", ";
      line += args;
    }
    line += "}\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return false;
    }
  }
  return std::fclose(f) == 0;
}

bool Trace::write_chrome(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string out = "{\"traceEvents\": [\n";
  // One "thread" per category so each renders as its own track.
  const char* cats[] = {"decoder", "pbe", "mac", "net", "fault"};
  constexpr int kNumCats = 5;
  const auto tid_of = [&](const char* cat) {
    for (int i = 0; i < kNumCats; ++i) {
      if (std::string(cat) == cats[i]) return i + 1;
    }
    return 0;
  };
  char buf[160];
  bool first = true;
  for (int i = 0; i < kNumCats; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                  "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ",\n", i + 1, cats[i]);
    first = false;
    out += buf;
  }
  for (const Event& e : snapshot()) {
    const EventSchema& s = schema(e.kind);
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                  "\"s\": \"t\", \"ts\": %lld, \"pid\": 1, \"tid\": %d, "
                  "\"args\": {",
                  s.name, s.category, static_cast<long long>(e.t),
                  tid_of(s.category));
    out += buf;
    append_args(out, s, e, ", ");
    out += "}}";
    if (out.size() > (1u << 20)) {  // flush in chunks
      if (std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
        std::fclose(f);
        return false;
      }
      out.clear();
    }
  }
  out += "\n]}\n";
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace pbecc::obs
