// The PBE-CC sender (paper §4, §5): a rate-based congestion controller
// that normally paces at exactly the capacity the mobile client feeds back
// (precise congestion control), limits in-flight data to the
// bandwidth-delay product so delayed feedback cannot overfill the pipe,
// and switches to the cellular-tailored BBR (probing capped at the
// wireless fair share, Eqn 7) whenever the client's ACKs flag an
// Internet bottleneck.
//
// Robustness (DESIGN.md §8): a DegradationMachine watches the confidence
// each ACK carries (client decode health x estimate freshness x feedback
// plausibility) and the feedback age. While PRECISE the sender behaves as
// above; DEGRADED holds the last good rate and decays it exponentially;
// FALLBACK abandons physical-layer feedback entirely and runs a plain BBR
// until the feed proves healthy again.
#pragma once

#include <memory>

#include "baselines/bbr.h"
#include "bwe/delay_bwe.h"
#include "net/congestion_controller.h"
#include "pbe/degradation.h"
#include "pbe/misreport_detector.h"
#include "util/windowed_filter.h"

namespace pbecc::pbe {

struct PbeSenderConfig {
  std::int32_t mss = net::kDefaultMss;
  // Display name: the same sender logic also serves the ABC-style
  // explicit-network-feedback oracle (rates stamped by the base station
  // instead of the PBE client).
  std::string name = "pbe";
  // Headroom on the BDP-based congestion window; >1 tolerates HARQ delay
  // jitter without starving the paced rate, while still bounding the queue
  // that can form before feedback reacts (paper §4: inflight limited to
  // the BDP).
  double cwnd_gain = 1.5;
  util::RateBps initial_rate = 2e6;  // until the first feedback arrives
  util::Duration rtprop_window = 10 * util::kSecond;
  util::Duration btlbw_window = 2 * util::kSecond;
  // §7 defense: cross-check the client's reported capacity against a
  // server-side throughput estimate and cap flows that misreport.
  bool detect_misreports = true;
  MisreportDetectorConfig misreport{};
  // Graceful-degradation thresholds (DESIGN.md §8).
  DegradationConfig degradation{};
  // Hybrid PBE x delay estimation (DESIGN.md §13): blend the PHY capacity
  // with the delay-gradient sidecar's target by the degradation machine's
  // confidence weight, instead of the cliff-edge hold/fallback path. The
  // sidecar itself runs regardless (it must be warm the moment the PHY
  // feed goes suspect); `hybrid` only controls whether it holds pacing
  // authority.
  bool hybrid = false;
  bwe::DelayBasedBweConfig bwe{};
  // Hybrid claim re-seed quarantine: a healthy PHY claim may jump-start
  // the sidecar only if the sidecar's last overuse cut is older than this.
  // Congestion evidence fresher than the claim wins — without the
  // quarantine an inflated claim under heavy ACK loss re-seeds on every
  // ACK, out-shouting the cuts that keep refuting it (2x the AIMD's
  // min_decrease_interval: one full cut-and-settle cycle must complete).
  util::Duration reseed_quarantine = 300 * util::kMillisecond;
  // ... and only while the smoothed RTT is within this factor of RTprop.
  // The trendline is a *gradient* detector: a standing queue holds the
  // delay level high at zero slope, reads as kNormal, and (because the
  // seed overwrites the sidecar target the divergence check compares
  // against) would let an inflated claim re-assert itself forever. The
  // RTT level is the evidence a standing queue cannot hide from.
  double reseed_max_rtt_ratio = 1.3;
  // The re-seed value itself is capped at this multiple of the best
  // delivery evidence (capacity memory / acked bitrate): trust is ramped,
  // not granted. A corrupted 45 Mbit/s claim against half a megabit of
  // demonstrated delivery must not out-rank the evidence 90x in one ACK;
  // an honest claim still gets there in a few windows, because each seed
  // raises delivery, which raises the evidence, which raises the cap.
  double reseed_evidence_ratio = 4.0;
  std::uint64_t seed = 5;
};

class PbeSender : public net::CongestionController {
 public:
  explicit PbeSender(PbeSenderConfig cfg = {});

  void on_packet_sent(util::Time now, const net::Packet& pkt,
                      std::uint64_t bytes_in_flight) override;
  void on_ack(const net::AckSample& s) override;
  void on_loss(const net::LossSample& s) override;

  util::RateBps pacing_rate(util::Time now) const override;
  double cwnd_bytes(util::Time now) const override;
  std::string name() const override { return cfg_.name; }

  bool in_internet_mode() const { return bbr_ != nullptr; }
  util::Duration rtprop() const { return rtprop_; }
  util::RateBps feedback_rate() const { return feedback_rate_; }
  const MisreportDetector& misreport_detector() const { return misreport_; }
  DegradationState degradation_state() const { return degradation_.state(); }
  const DegradationMachine& degradation() const { return degradation_; }
  bool hybrid() const { return cfg_.hybrid; }
  // The always-on delay-gradient sidecar.
  const bwe::DelayBasedBwe& delay_bwe() const { return delay_bwe_; }
  // Share of pacing authority the PHY estimate currently holds (1.0 when
  // not hybrid).
  double blend_weight() const { return degradation_.phy_weight(); }

 private:
  void decode_feedback(const net::AckSample& s);
  // The PHY half of the blend: feedback rate with DEGRADED/FALLBACK
  // hold-and-decay and the misreport cap applied.
  util::RateBps phy_rate(util::Time now) const;
  void on_degradation_switch(util::Time now, DegradationState from,
                             DegradationState to);
  void enter_internet_mode(util::Time now);
  void leave_internet_mode(util::Time now);
  void note_mode_switch(util::Time now, bool internet);

  PbeSenderConfig cfg_;
  util::RateBps feedback_rate_;
  util::Duration rtprop_ = 100 * util::kMillisecond;
  util::Time rtprop_stamp_ = 0;
  mutable util::WindowedMax<double> btlbw_filter_;

  // Present only while the client reports an Internet bottleneck.
  std::unique_ptr<baselines::Bbr> bbr_;
  MisreportDetector misreport_;

  // Graceful degradation of the feedback loop.
  DegradationMachine degradation_;
  // Delay-gradient sidecar: fed every ACK so the endpoint-only estimate is
  // always current; holds pacing authority only in hybrid mode.
  bwe::DelayBasedBwe delay_bwe_;
  // Present only in FALLBACK: a plain BBR that ignores PBE feedback.
  std::unique_ptr<baselines::Bbr> fallback_bbr_;
  // DEGRADED hold-and-decay anchor: the last trusted rate and when it was
  // captured.
  util::RateBps hold_rate_ = 0;
  util::Time hold_since_ = 0;
};

}  // namespace pbecc::pbe
