// Cross-layer bit rate translation (paper §4.2.1, Eqn 5 and Fig 6).
//
// The physical-layer capacity Cp exceeds the transport-layer goodput Ct by
// the retransmission overhead (a function of the transport-block error
// rate, itself a function of Ct through the TB size L) and a constant
// protocol overhead gamma:
//     Cp = Ct + Ct * (1 - (1-p)^L) + gamma * Cp,    L = Ct  [bits/subframe]
// Given Cp and the channel's residual bit error rate p, Ct is recovered by
// bisection (the left side is strictly increasing in Ct); as in the paper,
// results are cached in a lookup table keyed by quantized (Cp, p).
#pragma once

#include <cstdint>
#include <unordered_map>

namespace pbecc::pbe {

inline constexpr double kProtocolOverhead = 0.068;  // gamma = 6.8%

class RateTranslator {
 public:
  explicit RateTranslator(double gamma = kProtocolOverhead) : gamma_(gamma) {}

  // Transport goodput (bits/subframe) for a physical capacity Cp
  // (bits/subframe) at residual bit error rate p.
  double to_transport(double cp_bits_per_sf, double p);

  // Inverse direction (exact, no solve needed): physical capacity consumed
  // by a transport goodput Ct. Used by tests and the Fig 6a bench.
  double to_physical(double ct_bits_per_sf, double p) const;

  std::size_t lut_size() const { return lut_.size(); }

 private:
  double solve(double cp, double p) const;

  double gamma_;
  // Key: quantized Cp (1 kbit buckets) and p (log-spaced bucket).
  std::unordered_map<std::uint64_t, double> lut_;
};

}  // namespace pbecc::pbe
