#include "pbe/misreport_detector.h"

#include <limits>

namespace pbecc::pbe {

MisreportDetector::MisreportDetector(MisreportDetectorConfig cfg)
    : cfg_(cfg), achieved_(cfg.rate_window) {}

util::RateBps MisreportDetector::achieved_rate(util::Time now) const {
  return achieved_.get(now, 0.0);
}

void MisreportDetector::on_ack(const net::AckSample& s,
                               util::RateBps reported_rate) {
  if (s.delivery_rate > 0) achieved_.update(s.now, s.delivery_rate);
  const util::RateBps achieved = achieved_.get(s.now, 0.0);
  if (achieved <= 0 || reported_rate <= 0) return;

  if (reported_rate > cfg_.suspicion_ratio * achieved) {
    if (suspicious_since_ < 0) suspicious_since_ = s.now;
    honest_since_ = -1;
    if (s.now - suspicious_since_ >= cfg_.flag_after) flagged_ = true;
  } else {
    suspicious_since_ = -1;
    // A client that returns to honest reporting is eventually unflagged —
    // the cap is a protective measure, not a permanent ban — but only
    // after reporting honestly for as long as it took to earn the flag.
    if (flagged_) {
      if (honest_since_ < 0) honest_since_ = s.now;
      if (s.now - honest_since_ >= cfg_.flag_after) {
        flagged_ = false;
        honest_since_ = -1;
      }
    }
  }
}

void MisreportDetector::on_feedback_word(bool plausible) {
  plausibility_ += 0.05 * ((plausible ? 1.0 : 0.0) - plausibility_);
}

util::RateBps MisreportDetector::rate_cap(util::Time now) const {
  if (!flagged_) return std::numeric_limits<double>::max();
  const util::RateBps achieved = achieved_.get(now, 0.0);
  return achieved > 0 ? cfg_.capped_gain * achieved
                      : std::numeric_limits<double>::max();
}

}  // namespace pbecc::pbe
