#include "pbe/pbe_sender.h"

#include <algorithm>

#include "obs/obs.h"

namespace pbecc::pbe {

PbeSender::PbeSender(PbeSenderConfig cfg)
    : cfg_(cfg), feedback_rate_(cfg.initial_rate),
      btlbw_filter_(cfg.btlbw_window), misreport_(cfg.misreport) {}

void PbeSender::decode_feedback(const net::AckSample& s) {
  if (s.pbe_rate_interval_us == 0) return;
  // Interval between two MSS-sized packets -> bits per second.
  const double interval_sec = static_cast<double>(s.pbe_rate_interval_us) / 1e6;
  feedback_rate_ = static_cast<double>(cfg_.mss) * 8.0 / interval_sec;
}

void PbeSender::on_ack(const net::AckSample& s) {
  decode_feedback(s);

  // Always-maintained estimates (paper §5: "The PBE-CC sender also updates
  // its estimated RTprop and BtlBw with every received ACK, so it can
  // immediately switch").
  if (s.rtt > 0 &&
      (s.rtt <= rtprop_ || s.now - rtprop_stamp_ > cfg_.rtprop_window)) {
    rtprop_ = s.rtt;
    rtprop_stamp_ = s.now;
  }
  if (s.delivery_rate > 0) btlbw_filter_.update(s.now, s.delivery_rate);
  if (cfg_.detect_misreports) misreport_.on_ack(s, feedback_rate_);

  if (s.pbe_internet_bottleneck && !bbr_) enter_internet_mode(s.now);
  if (!s.pbe_internet_bottleneck && bbr_) leave_internet_mode(s.now);

  if (bbr_) bbr_->on_ack(s);

  if constexpr (obs::kCompiled) {
    static obs::Gauge& pacing = obs::gauge("pbe.sender.pacing_bps");
    static obs::Gauge& cwnd = obs::gauge("pbe.sender.cwnd_bytes");
    static obs::Gauge& feedback = obs::gauge("pbe.sender.feedback_bps");
    pacing.set(pacing_rate(s.now));
    cwnd.set(cwnd_bytes(s.now));
    feedback.set(feedback_rate_);
  }
}

void PbeSender::on_loss(const net::LossSample& s) {
  if (bbr_) bbr_->on_loss(s);
}

void PbeSender::enter_internet_mode(util::Time now) {
  baselines::BbrConfig bc;
  bc.mss = cfg_.mss;
  bc.enter_probe_bw_directly = true;  // entry drain at 0.5 BtlBw, then probe
  bc.probe_cap = [this] { return feedback_rate_; };  // Cprobe cap = Cf (Eqn 7)
  // Strictly less aggressive than stock BBR (paper §4.3): a tight window
  // leaves no standing queue, so once the bottleneck queue drains the
  // one-way delay falls below Dth and the client can switch back.
  bc.cwnd_gain = 1.2;
  bc.btlbw_window = util::kSecond;
  bc.seed = cfg_.seed;
  bbr_ = std::make_unique<baselines::Bbr>(bc);
  // Seed conservatively: the pre-switch BtlBw maximum usually reflects the
  // capacity that just vanished; the client's Cf feedback bounds what the
  // path can currently carry.
  const util::RateBps measured = btlbw_filter_.get(now, feedback_rate_);
  bbr_->seed_estimates(now, std::min(measured, feedback_rate_), rtprop_);
  note_mode_switch(now, /*internet=*/true);
}

void PbeSender::leave_internet_mode(util::Time now) {
  bbr_.reset();
  note_mode_switch(now, /*internet=*/false);
}

void PbeSender::note_mode_switch(util::Time now, bool internet) {
  if constexpr (obs::kCompiled) {
    static obs::Counter& switches = obs::counter("pbe.sender.mode_switches");
    switches.inc();
    obs::emit(obs::EventKind::kSenderModeSwitch, now, 0, 0, internet ? 1 : 0);
  } else {
    (void)now;
    (void)internet;
  }
}

util::RateBps PbeSender::pacing_rate(util::Time now) const {
  if (bbr_) return bbr_->pacing_rate(now);
  util::RateBps rate = feedback_rate_;
  if (cfg_.detect_misreports) {
    rate = std::min(rate, misreport_.rate_cap(now));
  }
  return std::max(rate, 1e5);
}

double PbeSender::cwnd_bytes(util::Time now) const {
  if (bbr_) return bbr_->cwnd_bytes(now);
  // Inflight cap: cwnd_gain * BDP(feedback rate, RTprop) — §4's "limits the
  // amount of inflight data to the bandwidth-delay product".
  const double bdp_bytes = pacing_rate(now) / util::kBitsPerByte *
                           util::to_seconds(rtprop_);
  return std::max(cfg_.cwnd_gain * bdp_bytes, 4.0 * cfg_.mss);
}

}  // namespace pbecc::pbe
