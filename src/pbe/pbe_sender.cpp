#include "pbe/pbe_sender.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace pbecc::pbe {

namespace {
// Bounds on a physically possible feedback rate: 10 kbps (below the
// client's own 1 Mbps floor with a wide margin) to 2.5 Gbps (beyond any
// LTE carrier aggregate). A corrupted feedback word decodes to a rate
// outside this range with overwhelming probability.
constexpr double kMinPlausibleBps = 1e4;
constexpr double kMaxPlausibleBps = 2.5e9;
}  // namespace

namespace {
// Hybrid mode implies the blend is live; everything else in the config is
// taken as given.
DegradationConfig degradation_config(const PbeSenderConfig& cfg) {
  DegradationConfig d = cfg.degradation;
  if (cfg.hybrid) d.blend.enabled = true;
  return d;
}
}  // namespace

PbeSender::PbeSender(PbeSenderConfig cfg)
    : cfg_(cfg), feedback_rate_(cfg.initial_rate),
      btlbw_filter_(cfg.btlbw_window), misreport_(cfg.misreport),
      degradation_(degradation_config(cfg)), delay_bwe_(cfg.bwe) {
  degradation_.set_transition_hook(
      [this](util::Time now, DegradationState from, DegradationState to) {
        on_degradation_switch(now, from, to);
      });
  degradation_.set_cross_check_hook(
      [](util::Time now, double phy_bps, double delay_bps, bool diverged) {
        if constexpr (obs::kCompiled) {
          static obs::Counter& flips =
              obs::counter("pbe.sender.cross_check_flips");
          flips.inc();
          obs::emit(obs::EventKind::kEstimatorCrossCheck, now, 0,
                    diverged ? 1u : 0u, 0, phy_bps, delay_bps);
        } else {
          (void)now; (void)phy_bps; (void)delay_bps; (void)diverged;
        }
      });
}

void PbeSender::decode_feedback(const net::AckSample& s) {
  if (s.pbe_rate_interval_us == 0) return;
  // Interval between two MSS-sized packets -> bits per second.
  const double interval_sec = static_cast<double>(s.pbe_rate_interval_us) / 1e6;
  const double rate = static_cast<double>(cfg_.mss) * 8.0 / interval_sec;

  // Plausibility screen: a corrupted word must not steer pacing. The word
  // is rejected (last good rate kept) and the plausibility EWMA dinged,
  // which drags the confidence score down under sustained corruption.
  const bool plausible = rate >= kMinPlausibleBps && rate <= kMaxPlausibleBps;
  misreport_.on_feedback_word(plausible);
  if (!plausible) {
    if constexpr (obs::kCompiled) {
      static obs::Counter& rejected =
          obs::counter("pbe.sender.implausible_feedback");
      rejected.inc();
    }
    return;
  }
  feedback_rate_ = rate;

  const double conf = (static_cast<double>(s.pbe_confidence) / 255.0) *
                      misreport_.plausibility();
  degradation_.on_feedback(s.now, conf);
}

void PbeSender::on_ack(const net::AckSample& s) {
  decode_feedback(s);

  // Always-maintained estimates (paper §5: "The PBE-CC sender also updates
  // its estimated RTprop and BtlBw with every received ACK, so it can
  // immediately switch").
  if (s.rtt > 0 &&
      (s.rtt <= rtprop_ || s.now - rtprop_stamp_ > cfg_.rtprop_window)) {
    rtprop_ = s.rtt;
    rtprop_stamp_ = s.now;
  }
  if (s.delivery_rate > 0) btlbw_filter_.update(s.now, s.delivery_rate);
  if (cfg_.detect_misreports) misreport_.on_ack(s, feedback_rate_);

  // Always-on delay-gradient sidecar (DESIGN.md §13): kept warm on every
  // ACK so its estimate is current the instant the PHY feed goes suspect.
  delay_bwe_.on_ack(s);
  if (cfg_.hybrid) {
    // Capacity memory: the largest rate the path demonstrably carried
    // recently, from inputs a broken feedback loop cannot poison (the
    // same pair the fallback-BBR seed used).
    const double memory = std::max(misreport_.achieved_rate(s.now),
                                   btlbw_filter_.get(s.now, 0.0));
    degradation_.on_estimates(
        s.now, feedback_rate_, delay_bwe_.target_bps(),
        delay_bwe_.acked_bps(), memory,
        delay_bwe_.usage() == bwe::BandwidthUsage::kOverusing);
    // Claim re-seed (trust-but-verify): a confidently healthy,
    // non-diverged PHY claim above the sidecar's target lifts the sidecar
    // to the claim instead of making it re-climb at AIMD pace — without
    // this, a feed that flaps faster than the PRECISE recovery hold keeps
    // pacing authority on a sidecar that is always seconds behind. Gated
    // on dense ACKs so the very evidence that would refute a false claim
    // (an overuse cut, one RTT away) is actually flowing; under ACK
    // starvation the claim stays quarantined — and a recent overuse cut
    // (congestion evidence fresher than any claim) quarantines it too.
    const util::Time last_cut = delay_bwe_.aimd().last_decrease();
    const double seed_value = std::min(
        static_cast<double>(feedback_rate_),
        cfg_.reseed_evidence_ratio * std::max(memory, delay_bwe_.acked_bps()));
    if (degradation_.effective_confidence() >=
            degradation_.config().recover_above &&
        !degradation_.diverged() && delay_bwe_.acked_fresh() &&
        (last_cut < 0 || s.now - last_cut > cfg_.reseed_quarantine) &&
        static_cast<double>(s.rtt) <=
            cfg_.reseed_max_rtt_ratio * static_cast<double>(rtprop_) &&
        seed_value > delay_bwe_.target_bps()) {
      delay_bwe_.seed_target(seed_value);
    }
  }

  // Watchdog tick: even an ack with no feedback word advances the clock
  // (feedback age is what trips the timeout).
  degradation_.advance(s.now);

  // Internet-mode switching follows client feedback only while that
  // feedback is trusted; FALLBACK replaces the internet-mode BBR wholesale.
  if (degradation_.state() == DegradationState::kPrecise) {
    if (s.pbe_internet_bottleneck && !bbr_) enter_internet_mode(s.now);
    if (!s.pbe_internet_bottleneck && bbr_) leave_internet_mode(s.now);
  }

  if (fallback_bbr_) {
    fallback_bbr_->on_ack(s);
  } else if (bbr_) {
    bbr_->on_ack(s);
  }

  if constexpr (obs::kCompiled) {
    static obs::Gauge& pacing = obs::gauge("pbe.sender.pacing_bps");
    static obs::Gauge& cwnd = obs::gauge("pbe.sender.cwnd_bytes");
    static obs::Gauge& feedback = obs::gauge("pbe.sender.feedback_bps");
    static obs::Gauge& bwe_target = obs::gauge("bwe.target_bps");
    static obs::Gauge& bwe_acked = obs::gauge("bwe.acked_bps");
    static obs::Gauge& bwe_slope = obs::gauge("bwe.trendline_slope");
    static obs::Gauge& bwe_state = obs::gauge("bwe.overuse_state");
    static obs::Gauge& blend = obs::gauge("pbe.sender.blend_weight");
    pacing.set(pacing_rate(s.now));
    cwnd.set(cwnd_bytes(s.now));
    feedback.set(feedback_rate_);
    bwe_target.set(delay_bwe_.target_bps());
    bwe_acked.set(delay_bwe_.acked_bps());
    bwe_slope.set(delay_bwe_.trendline().slope());
    bwe_state.set(static_cast<double>(delay_bwe_.usage()));
    blend.set(degradation_.phy_weight());
  }
}

void PbeSender::on_packet_sent(util::Time now, const net::Packet& pkt,
                               std::uint64_t bytes_in_flight) {
  // Under total feedback loss no acks arrive; sends are the only clock
  // the watchdog has (the flow's RTO keeps sends going).
  degradation_.advance(now);
  if (fallback_bbr_) fallback_bbr_->on_packet_sent(now, pkt, bytes_in_flight);
}

void PbeSender::on_loss(const net::LossSample& s) {
  if (fallback_bbr_) {
    fallback_bbr_->on_loss(s);
  } else if (bbr_) {
    bbr_->on_loss(s);
  }
}

void PbeSender::on_degradation_switch(util::Time now, DegradationState from,
                                      DegradationState to) {
  if (cfg_.hybrid && to != DegradationState::kPrecise &&
      from == DegradationState::kPrecise) {
    // The PHY feed just went suspect and pacing authority is sliding to
    // the sidecar. Jump-start it from server-side capacity memory — the
    // recent BtlBw maximum and the misreport detector's achieved rate,
    // the same poison-free inputs the non-hybrid fallback BBR is seeded
    // from — so it does not have to re-climb from the pre-fault acked
    // level. Overuse evidence cuts a stale seed within an RTT or two.
    const double memory = std::max(misreport_.achieved_rate(now),
                                   btlbw_filter_.get(now, 0.0));
    if (memory > 0) delay_bwe_.seed_target(memory);
  }
  if (to == DegradationState::kDegraded) {
    // Capture the hold-and-decay anchor: the last trusted rate, already
    // clamped by the misreport cap so a flagged liar cannot launder an
    // inflated rate through the degradation path.
    hold_rate_ = feedback_rate_;
    if (cfg_.detect_misreports) {
      hold_rate_ = std::min(hold_rate_, misreport_.rate_cap(now));
    }
    hold_since_ = now;
  } else if (to == DegradationState::kFallback) {
    if (bbr_) leave_internet_mode(now);
    if (!cfg_.hybrid) {
      // Cliff-edge fallback: a fresh BBR that has to relearn the path. The
      // hybrid replaces this with the blend — by the time FALLBACK is
      // reached the weight has drained to the delay-gradient sidecar,
      // which tracked the path all along.
      baselines::BbrConfig bc;
      bc.mss = cfg_.mss;
      bc.seed = cfg_.seed + 1;
      fallback_bbr_ = std::make_unique<baselines::Bbr>(bc);
      // Seed from the server-side achieved-rate estimate — the one input a
      // broken (or lying) feedback loop cannot poison.
      fallback_bbr_->seed_estimates(
          now, std::max(misreport_.achieved_rate(now), 1e6), rtprop_);
    }
  }
  if (from == DegradationState::kFallback) fallback_bbr_.reset();

  if constexpr (obs::kCompiled) {
    static obs::Counter& switches =
        obs::counter("pbe.sender.degradation_switches");
    static obs::Gauge& state_gauge = obs::gauge("pbe.sender.degradation_state");
    switches.inc();
    state_gauge.set(static_cast<double>(to));
    obs::emit(obs::EventKind::kDegradationSwitch, now, 0,
              static_cast<std::uint32_t>(from), static_cast<std::int64_t>(to));
  }
}

void PbeSender::enter_internet_mode(util::Time now) {
  baselines::BbrConfig bc;
  bc.mss = cfg_.mss;
  bc.enter_probe_bw_directly = true;  // entry drain at 0.5 BtlBw, then probe
  bc.probe_cap = [this] { return feedback_rate_; };  // Cprobe cap = Cf (Eqn 7)
  // Strictly less aggressive than stock BBR (paper §4.3): a tight window
  // leaves no standing queue, so once the bottleneck queue drains the
  // one-way delay falls below Dth and the client can switch back.
  bc.cwnd_gain = 1.2;
  bc.btlbw_window = util::kSecond;
  bc.seed = cfg_.seed;
  bbr_ = std::make_unique<baselines::Bbr>(bc);
  // Seed conservatively: the pre-switch BtlBw maximum usually reflects the
  // capacity that just vanished; the client's Cf feedback bounds what the
  // path can currently carry.
  const util::RateBps measured = btlbw_filter_.get(now, feedback_rate_);
  bbr_->seed_estimates(now, std::min(measured, feedback_rate_), rtprop_);
  note_mode_switch(now, /*internet=*/true);
}

void PbeSender::leave_internet_mode(util::Time now) {
  bbr_.reset();
  note_mode_switch(now, /*internet=*/false);
}

void PbeSender::note_mode_switch(util::Time now, bool internet) {
  if constexpr (obs::kCompiled) {
    static obs::Counter& switches = obs::counter("pbe.sender.mode_switches");
    switches.inc();
    obs::emit(obs::EventKind::kSenderModeSwitch, now, 0, 0, internet ? 1 : 0);
  } else {
    (void)now;
    (void)internet;
  }
}

util::RateBps PbeSender::phy_rate(util::Time now) const {
  util::RateBps rate = feedback_rate_;
  const DegradationState st = degradation_.state();
  if (st == DegradationState::kDegraded ||
      (cfg_.hybrid && st == DegradationState::kFallback)) {
    // Hold-and-decay: pace at the last trusted rate, halved every
    // hold_half_life, so a stale estimate cannot overdrive a link whose
    // true capacity may have collapsed with the feed. (In hybrid mode the
    // decay also covers FALLBACK — there is no fallback BBR, and whatever
    // residual weight the PHY side still holds must keep shrinking.)
    const double halves =
        util::to_seconds(now - hold_since_) /
        util::to_seconds(degradation_.config().hold_half_life);
    rate = hold_rate_ * std::exp2(-halves);
  }
  if (cfg_.detect_misreports) {
    rate = std::min(rate, misreport_.rate_cap(now));
  }
  return rate;
}

util::RateBps PbeSender::pacing_rate(util::Time now) const {
  if (fallback_bbr_) return fallback_bbr_->pacing_rate(now);
  if (bbr_) return bbr_->pacing_rate(now);
  const util::RateBps phy = phy_rate(now);
  util::RateBps rate = phy;
  if (cfg_.hybrid) {
    // Confidence-weighted blend (DESIGN.md §13). At weight 1 — any clean
    // run — this is bit-identical to pure PBE; as confidence drains the
    // pacing authority slides continuously onto the delay-gradient target
    // instead of falling off the hold/fallback cliff.
    const double w = degradation_.phy_weight();
    rate = w * phy + (1.0 - w) * delay_bwe_.target_bps();
    // Memory-gated floor: while server-side capacity memory contradicts
    // the PHY term actually being blended (path recently delivered >
    // memory_ratio x it), that term may not throttle pacing below the
    // evidence-backed delay target regardless of the committed weight.
    // This covers both a floor/stale report at high weight (a convex
    // blend alone would pin pacing near zero for a hold window) and the
    // recovery gap where confidence has returned but the state machine is
    // still decaying the held rate. If instead the low rate is real,
    // pacing at the delay target builds a queue and the AIMD cuts that
    // target within an RTT or two — bounded, self-correcting risk.
    // Honest feeds never see the floor: clean-run delivery memory stays
    // well inside memory_ratio x the reported rate.
    const double memory = std::max(misreport_.achieved_rate(now),
                                   btlbw_filter_.get(now, 0.0));
    if (memory > degradation_.config().blend.memory_ratio * phy) {
      rate = std::max(rate, static_cast<double>(delay_bwe_.target_bps()));
    }
  }
  return std::max(rate, 1e5);
}

double PbeSender::cwnd_bytes(util::Time now) const {
  if (fallback_bbr_) return fallback_bbr_->cwnd_bytes(now);
  if (bbr_) return bbr_->cwnd_bytes(now);
  // Inflight cap: cwnd_gain * BDP(feedback rate, RTprop) — §4's "limits the
  // amount of inflight data to the bandwidth-delay product".
  const double bdp_bytes = pacing_rate(now) / util::kBitsPerByte *
                           util::to_seconds(rtprop_);
  return std::max(cfg_.cwnd_gain * bdp_bytes, 4.0 * cfg_.mss);
}

}  // namespace pbecc::pbe
