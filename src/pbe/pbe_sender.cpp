#include "pbe/pbe_sender.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace pbecc::pbe {

namespace {
// Bounds on a physically possible feedback rate: 10 kbps (below the
// client's own 1 Mbps floor with a wide margin) to 2.5 Gbps (beyond any
// LTE carrier aggregate). A corrupted feedback word decodes to a rate
// outside this range with overwhelming probability.
constexpr double kMinPlausibleBps = 1e4;
constexpr double kMaxPlausibleBps = 2.5e9;
}  // namespace

PbeSender::PbeSender(PbeSenderConfig cfg)
    : cfg_(cfg), feedback_rate_(cfg.initial_rate),
      btlbw_filter_(cfg.btlbw_window), misreport_(cfg.misreport),
      degradation_(cfg.degradation) {
  degradation_.set_transition_hook(
      [this](util::Time now, DegradationState from, DegradationState to) {
        on_degradation_switch(now, from, to);
      });
}

void PbeSender::decode_feedback(const net::AckSample& s) {
  if (s.pbe_rate_interval_us == 0) return;
  // Interval between two MSS-sized packets -> bits per second.
  const double interval_sec = static_cast<double>(s.pbe_rate_interval_us) / 1e6;
  const double rate = static_cast<double>(cfg_.mss) * 8.0 / interval_sec;

  // Plausibility screen: a corrupted word must not steer pacing. The word
  // is rejected (last good rate kept) and the plausibility EWMA dinged,
  // which drags the confidence score down under sustained corruption.
  const bool plausible = rate >= kMinPlausibleBps && rate <= kMaxPlausibleBps;
  misreport_.on_feedback_word(plausible);
  if (!plausible) {
    if constexpr (obs::kCompiled) {
      static obs::Counter& rejected =
          obs::counter("pbe.sender.implausible_feedback");
      rejected.inc();
    }
    return;
  }
  feedback_rate_ = rate;

  const double conf = (static_cast<double>(s.pbe_confidence) / 255.0) *
                      misreport_.plausibility();
  degradation_.on_feedback(s.now, conf);
}

void PbeSender::on_ack(const net::AckSample& s) {
  decode_feedback(s);

  // Always-maintained estimates (paper §5: "The PBE-CC sender also updates
  // its estimated RTprop and BtlBw with every received ACK, so it can
  // immediately switch").
  if (s.rtt > 0 &&
      (s.rtt <= rtprop_ || s.now - rtprop_stamp_ > cfg_.rtprop_window)) {
    rtprop_ = s.rtt;
    rtprop_stamp_ = s.now;
  }
  if (s.delivery_rate > 0) btlbw_filter_.update(s.now, s.delivery_rate);
  if (cfg_.detect_misreports) misreport_.on_ack(s, feedback_rate_);

  // Watchdog tick: even an ack with no feedback word advances the clock
  // (feedback age is what trips the timeout).
  degradation_.advance(s.now);

  // Internet-mode switching follows client feedback only while that
  // feedback is trusted; FALLBACK replaces the internet-mode BBR wholesale.
  if (degradation_.state() == DegradationState::kPrecise) {
    if (s.pbe_internet_bottleneck && !bbr_) enter_internet_mode(s.now);
    if (!s.pbe_internet_bottleneck && bbr_) leave_internet_mode(s.now);
  }

  if (fallback_bbr_) {
    fallback_bbr_->on_ack(s);
  } else if (bbr_) {
    bbr_->on_ack(s);
  }

  if constexpr (obs::kCompiled) {
    static obs::Gauge& pacing = obs::gauge("pbe.sender.pacing_bps");
    static obs::Gauge& cwnd = obs::gauge("pbe.sender.cwnd_bytes");
    static obs::Gauge& feedback = obs::gauge("pbe.sender.feedback_bps");
    pacing.set(pacing_rate(s.now));
    cwnd.set(cwnd_bytes(s.now));
    feedback.set(feedback_rate_);
  }
}

void PbeSender::on_packet_sent(util::Time now, const net::Packet& pkt,
                               std::uint64_t bytes_in_flight) {
  // Under total feedback loss no acks arrive; sends are the only clock
  // the watchdog has (the flow's RTO keeps sends going).
  degradation_.advance(now);
  if (fallback_bbr_) fallback_bbr_->on_packet_sent(now, pkt, bytes_in_flight);
}

void PbeSender::on_loss(const net::LossSample& s) {
  if (fallback_bbr_) {
    fallback_bbr_->on_loss(s);
  } else if (bbr_) {
    bbr_->on_loss(s);
  }
}

void PbeSender::on_degradation_switch(util::Time now, DegradationState from,
                                      DegradationState to) {
  if (to == DegradationState::kDegraded) {
    // Capture the hold-and-decay anchor: the last trusted rate, already
    // clamped by the misreport cap so a flagged liar cannot launder an
    // inflated rate through the degradation path.
    hold_rate_ = feedback_rate_;
    if (cfg_.detect_misreports) {
      hold_rate_ = std::min(hold_rate_, misreport_.rate_cap(now));
    }
    hold_since_ = now;
  } else if (to == DegradationState::kFallback) {
    if (bbr_) leave_internet_mode(now);
    baselines::BbrConfig bc;
    bc.mss = cfg_.mss;
    bc.seed = cfg_.seed + 1;
    fallback_bbr_ = std::make_unique<baselines::Bbr>(bc);
    // Seed from the server-side achieved-rate estimate — the one input a
    // broken (or lying) feedback loop cannot poison.
    fallback_bbr_->seed_estimates(
        now, std::max(misreport_.achieved_rate(now), 1e6), rtprop_);
  }
  if (from == DegradationState::kFallback) fallback_bbr_.reset();

  if constexpr (obs::kCompiled) {
    static obs::Counter& switches =
        obs::counter("pbe.sender.degradation_switches");
    static obs::Gauge& state_gauge = obs::gauge("pbe.sender.degradation_state");
    switches.inc();
    state_gauge.set(static_cast<double>(to));
    obs::emit(obs::EventKind::kDegradationSwitch, now, 0,
              static_cast<std::uint32_t>(from), static_cast<std::int64_t>(to));
  }
}

void PbeSender::enter_internet_mode(util::Time now) {
  baselines::BbrConfig bc;
  bc.mss = cfg_.mss;
  bc.enter_probe_bw_directly = true;  // entry drain at 0.5 BtlBw, then probe
  bc.probe_cap = [this] { return feedback_rate_; };  // Cprobe cap = Cf (Eqn 7)
  // Strictly less aggressive than stock BBR (paper §4.3): a tight window
  // leaves no standing queue, so once the bottleneck queue drains the
  // one-way delay falls below Dth and the client can switch back.
  bc.cwnd_gain = 1.2;
  bc.btlbw_window = util::kSecond;
  bc.seed = cfg_.seed;
  bbr_ = std::make_unique<baselines::Bbr>(bc);
  // Seed conservatively: the pre-switch BtlBw maximum usually reflects the
  // capacity that just vanished; the client's Cf feedback bounds what the
  // path can currently carry.
  const util::RateBps measured = btlbw_filter_.get(now, feedback_rate_);
  bbr_->seed_estimates(now, std::min(measured, feedback_rate_), rtprop_);
  note_mode_switch(now, /*internet=*/true);
}

void PbeSender::leave_internet_mode(util::Time now) {
  bbr_.reset();
  note_mode_switch(now, /*internet=*/false);
}

void PbeSender::note_mode_switch(util::Time now, bool internet) {
  if constexpr (obs::kCompiled) {
    static obs::Counter& switches = obs::counter("pbe.sender.mode_switches");
    switches.inc();
    obs::emit(obs::EventKind::kSenderModeSwitch, now, 0, 0, internet ? 1 : 0);
  } else {
    (void)now;
    (void)internet;
  }
}

util::RateBps PbeSender::pacing_rate(util::Time now) const {
  if (fallback_bbr_) return fallback_bbr_->pacing_rate(now);
  if (bbr_) return bbr_->pacing_rate(now);
  util::RateBps rate = feedback_rate_;
  if (degradation_.state() == DegradationState::kDegraded) {
    // Hold-and-decay: pace at the last trusted rate, halved every
    // hold_half_life, so a stale estimate cannot overdrive a link whose
    // true capacity may have collapsed with the feed.
    const double halves =
        util::to_seconds(now - hold_since_) /
        util::to_seconds(degradation_.config().hold_half_life);
    rate = hold_rate_ * std::exp2(-halves);
  }
  if (cfg_.detect_misreports) {
    rate = std::min(rate, misreport_.rate_cap(now));
  }
  return std::max(rate, 1e5);
}

double PbeSender::cwnd_bytes(util::Time now) const {
  if (fallback_bbr_) return fallback_bbr_->cwnd_bytes(now);
  if (bbr_) return bbr_->cwnd_bytes(now);
  // Inflight cap: cwnd_gain * BDP(feedback rate, RTprop) — §4's "limits the
  // amount of inflight data to the bandwidth-delay product".
  const double bdp_bytes = pacing_rate(now) / util::kBitsPerByte *
                           util::to_seconds(rtprop_);
  return std::max(cfg_.cwnd_gain * bdp_bytes, 4.0 * cfg_.mss);
}

}  // namespace pbecc::pbe
