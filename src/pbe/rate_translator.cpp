#include "pbe/rate_translator.h"

#include <algorithm>
#include <cmath>

#include "phy/error_model.h"

namespace pbecc::pbe {

double RateTranslator::to_physical(double ct, double p) const {
  if (ct <= 0) return 0;
  const double tber = phy::tb_error_rate(p, ct);
  return (ct + ct * tber) / (1.0 - gamma_);
}

double RateTranslator::solve(double cp, double p) const {
  if (cp <= 0) return 0;
  // Find Ct with to_physical(Ct) == Cp; monotone increasing in Ct.
  double lo = 0, hi = cp;  // Ct can never exceed Cp
  for (int i = 0; i < 50; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (to_physical(mid, p) < cp) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double RateTranslator::to_transport(double cp, double p) {
  if (cp <= 0) return 0;
  // Quantize: Cp to 1 kbit/subframe buckets, p to a 1/40-decade log bucket
  // (fine enough that the worst-case TBER error stays under ~1%).
  const auto cp_q = static_cast<std::uint64_t>(cp / 1000.0);
  const double logp = std::log10(std::clamp(p, 1e-9, 1e-2));
  const auto p_q = static_cast<std::uint64_t>((logp + 9.0) * 40.0);
  const std::uint64_t key = cp_q * 1024 + p_q;

  if (const auto it = lut_.find(key); it != lut_.end()) {
    // Scale the cached bucket-center answer to the exact Cp (the mapping
    // is near-linear within one bucket).
    const double bucket_cp = (static_cast<double>(cp_q) + 0.5) * 1000.0;
    return it->second * (cp / bucket_cp);
  }
  const double bucket_cp = (static_cast<double>(cp_q) + 0.5) * 1000.0;
  const double bucket_p =
      std::pow(10.0, (static_cast<double>(p_q) + 0.5) / 40.0 - 9.0);
  const double ct = solve(bucket_cp, bucket_p);
  lut_[key] = ct;
  return ct * (cp / bucket_cp);
}

}  // namespace pbecc::pbe
