// Graceful degradation of the PBE feedback loop (ROADMAP: "degraded, not
// dead" when the physical-layer feed breaks).
//
// PBE-CC paces at exactly the capacity the client reports — which is only
// safe while that report is trustworthy. This three-state machine tracks a
// per-feedback confidence score (monitor decode-success rate x estimator
// freshness x server-side plausibility) and the age of the last valid
// feedback word:
//
//   PRECISE   — feed healthy: pace at the reported capacity (paper §4/§5).
//   DEGRADED  — feed suspect: hold the last good estimate and decay it
//               exponentially (half-life hold_half_life) so a stale rate
//               can never overdrive a collapsing link for long.
//   FALLBACK  — feed dead: run a plain BBR; physical-layer feedback is
//               ignored until it proves healthy again.
//
// Hysteresis on both transitions: the confidence band between
// degrade_below and recover_above holds the current state, escalation to
// FALLBACK requires continuous ill health for fallback_after, and any
// recovery to PRECISE requires continuous good health for recover_hold.
// The machine is inert until the first valid feedback arrives, so a
// connection's first RTT never starts degraded. See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <functional>

#include "util/time.h"

namespace pbecc::pbe {

enum class DegradationState : std::uint8_t {
  kPrecise = 0,
  kDegraded = 1,
  kFallback = 2,
};

// Confidence-weighted blending of the PHY capacity estimate with the
// delay-gradient sidecar (DESIGN.md §13). Off by default: the discrete
// PRECISE/DEGRADED/FALLBACK behaviour is exactly what it was before the
// hybrid existed. When enabled, the machine additionally maintains
//
//   * a blend weight w in [0,1] — the share of pacing authority the PHY
//     estimate holds. w maps from *effective* confidence: 1 at or above
//     full_trust_above (clean runs are bit-identical to pure PBE), 0 at or
//     below zero_trust_below, linear between. The committed weight moves
//     only when the target has left a deadband around it AND a hold has
//     elapsed since the last commit, so bounded confidence noise can flip
//     it at most once per hold window;
//   * a divergence verdict — PHY sustainedly claiming more than the
//     delay-gradient estimate confirms (the dangerous direction: false
//     DCIs and stale cell state inflate capacity; underclaiming is merely
//     conservative) multiplies the confidence fed to both the state
//     machine and the weight by divergence_penalty until the two
//     estimates agree again for agree_hold.
struct BlendConfig {
  bool enabled = false;
  // Effective-confidence endpoints of the weight ramp. full_trust_above
  // sits above recover_above so a link healthy enough to be PRECISE but
  // jittery still cedes a little authority to the delay estimate.
  double zero_trust_below = 0.35;
  double full_trust_above = 0.80;
  // Committed-weight hysteresis: move only if |target - committed| exceeds
  // the deadband and `hold` has passed since the previous move.
  double deadband = 0.10;
  util::Duration hold = 200 * util::kMillisecond;
  // Divergence: phy > divergence_ratio x delay estimate, sustained for
  // divergence_after, flags the PHY feed; agreement (phy back inside
  // agree_ratio x delay) sustained for agree_hold clears it.
  double divergence_ratio = 1.6;
  double agree_ratio = 1.3;
  // Underclaim: server-side capacity memory (recent BtlBw / achieved-rate
  // maximum) exceeding memory_ratio x the claim flags the feed from the
  // other side. Memory, not instantaneous acked bitrate, because pacing
  // follows the claim: within one window acked collapses to match any
  // underreport, and the lie becomes self-consistent. 2.0 = "the path
  // delivered twice your claim seconds ago" — far outside honest
  // cell-share variation, so clean runs never trip it.
  double memory_ratio = 2.0;
  util::Duration divergence_after = 300 * util::kMillisecond;
  util::Duration agree_hold = 200 * util::kMillisecond;
  // Multiplier on the raw confidence while diverged. 0.45 x a perfect 1.0
  // lands below degrade_below, so a confidently-wrong feed still degrades.
  double divergence_penalty = 0.45;
};

struct DegradationConfig {
  // Confidence below this is unhealthy; above recover_above is healthy;
  // the band in between holds the current state (dual-threshold
  // hysteresis). The thresholds bracket the confidence a half-degraded
  // decode window produces, so brief single-subframe hiccups (confidence
  // ~0.95) never leave PRECISE.
  double degrade_below = 0.55;
  double recover_above = 0.75;
  // Feedback older than this is unhealthy regardless of its confidence
  // (watchdog for total feedback loss). ~2x the largest location RTT.
  util::Duration feedback_timeout = 200 * util::kMillisecond;
  // Continuous ill health in DEGRADED before escalating to FALLBACK.
  util::Duration fallback_after = 250 * util::kMillisecond;
  // Continuous good health before any recovery to PRECISE. Together with
  // the ~150 ms the 200 ms decode window needs to clear recover_above,
  // recovery lands ~300 ms after the feed returns — inside the 500 ms
  // budget, but immune to one lucky subframe.
  util::Duration recover_hold = 100 * util::kMillisecond;
  // DEGRADED hold-and-decay half-life for the held pacing rate.
  util::Duration hold_half_life = 500 * util::kMillisecond;
  // Hybrid blending (inert unless blend.enabled).
  BlendConfig blend{};
};

class DegradationMachine {
 public:
  // (now, from, to) — fired on every state change, after state_ updates.
  using TransitionHook =
      std::function<void(util::Time, DegradationState, DegradationState)>;
  // (now, phy_bps, delay_bps, diverged) — fired each time the divergence
  // verdict flips (both directions), after diverged_ updates. The sender
  // turns this into the kEstimatorCrossCheck obs event.
  using CrossCheckHook =
      std::function<void(util::Time, double, double, bool)>;

  explicit DegradationMachine(DegradationConfig cfg = {}) : cfg_(cfg) {}

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }
  void set_cross_check_hook(CrossCheckHook hook) {
    cross_check_hook_ = std::move(hook);
  }

  // A valid (plausible) feedback word arrived carrying this confidence.
  void on_feedback(util::Time now, double confidence);

  // Hybrid only: both estimators' current opinions, once per ACK.
  // `phy_bps` is the PHY capacity claim, `delay_bps` the delay-gradient
  // target, `acked_bps` the measured acked bitrate (0 when unknown),
  // `memory_bps` the server-side capacity memory (recent BtlBw /
  // achieved-rate maximum, 0 when unknown), and `overusing` the
  // trendline's current verdict. Two divergence modes:
  //
  //   overclaim  — phy > divergence_ratio x delay WHILE overusing. The
  //                congestion evidence is required because a low delay
  //                target with no delay growth merely means the sidecar
  //                has not had to probe that high (it is not driving
  //                pacing) — not that the PHY feed lies.
  //   underclaim — memory > memory_ratio x phy. The path having recently
  //                delivered far more than the claim refutes it; memory
  //                is used instead of acked because pacing-at-the-claim
  //                drags acked down to the claim within one window.
  //
  // Either, sustained for divergence_after, flags the feed. Runs the
  // divergence detector and the blend-weight commit. No-op unless
  // blend.enabled — legacy callers never reach this, so discrete-machine
  // behaviour is untouched.
  void on_estimates(util::Time now, double phy_bps, double delay_bps,
                    double acked_bps, double memory_bps, bool overusing);

  // Advance the clock (call from every ack and packet send); drives the
  // watchdog when feedback stops arriving entirely.
  void advance(util::Time now);

  DegradationState state() const { return state_; }
  // False until the first valid feedback: the machine never degrades a
  // connection that has not yet heard from its client.
  bool engaged() const { return last_feedback_ >= 0; }
  double confidence() const { return conf_; }
  // Raw confidence x divergence penalty — what the state machine and the
  // blend weight actually consume.
  double effective_confidence() const;
  // Committed share of pacing authority held by the PHY estimate. 1.0
  // whenever blending is disabled.
  double phy_weight() const { return blend_weight_; }
  bool diverged() const { return diverged_; }
  util::Time last_feedback_time() const { return last_feedback_; }
  const DegradationConfig& config() const { return cfg_; }

 private:
  void transition(util::Time now, DegradationState to);
  void update_weight(util::Time now);

  DegradationConfig cfg_;
  TransitionHook hook_;
  CrossCheckHook cross_check_hook_;
  DegradationState state_ = DegradationState::kPrecise;
  double conf_ = 1.0;
  util::Time last_feedback_ = -1;
  util::Time healthy_since_ = -1;
  util::Time unhealthy_since_ = -1;
  // Blend state (inert unless cfg_.blend.enabled).
  double blend_weight_ = 1.0;
  util::Time last_weight_commit_ = -1;
  bool diverged_ = false;
  util::Time diverge_since_ = -1;
  util::Time agree_since_ = -1;
  // Latest estimator snapshot (for the up-move agreement gate).
  double last_phy_bps_ = 0.0;
  double last_memory_bps_ = 0.0;
};

}  // namespace pbecc::pbe
