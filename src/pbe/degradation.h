// Graceful degradation of the PBE feedback loop (ROADMAP: "degraded, not
// dead" when the physical-layer feed breaks).
//
// PBE-CC paces at exactly the capacity the client reports — which is only
// safe while that report is trustworthy. This three-state machine tracks a
// per-feedback confidence score (monitor decode-success rate x estimator
// freshness x server-side plausibility) and the age of the last valid
// feedback word:
//
//   PRECISE   — feed healthy: pace at the reported capacity (paper §4/§5).
//   DEGRADED  — feed suspect: hold the last good estimate and decay it
//               exponentially (half-life hold_half_life) so a stale rate
//               can never overdrive a collapsing link for long.
//   FALLBACK  — feed dead: run a plain BBR; physical-layer feedback is
//               ignored until it proves healthy again.
//
// Hysteresis on both transitions: the confidence band between
// degrade_below and recover_above holds the current state, escalation to
// FALLBACK requires continuous ill health for fallback_after, and any
// recovery to PRECISE requires continuous good health for recover_hold.
// The machine is inert until the first valid feedback arrives, so a
// connection's first RTT never starts degraded. See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <functional>

#include "util/time.h"

namespace pbecc::pbe {

enum class DegradationState : std::uint8_t {
  kPrecise = 0,
  kDegraded = 1,
  kFallback = 2,
};

struct DegradationConfig {
  // Confidence below this is unhealthy; above recover_above is healthy;
  // the band in between holds the current state (dual-threshold
  // hysteresis). The thresholds bracket the confidence a half-degraded
  // decode window produces, so brief single-subframe hiccups (confidence
  // ~0.95) never leave PRECISE.
  double degrade_below = 0.55;
  double recover_above = 0.75;
  // Feedback older than this is unhealthy regardless of its confidence
  // (watchdog for total feedback loss). ~2x the largest location RTT.
  util::Duration feedback_timeout = 200 * util::kMillisecond;
  // Continuous ill health in DEGRADED before escalating to FALLBACK.
  util::Duration fallback_after = 250 * util::kMillisecond;
  // Continuous good health before any recovery to PRECISE. Together with
  // the ~150 ms the 200 ms decode window needs to clear recover_above,
  // recovery lands ~300 ms after the feed returns — inside the 500 ms
  // budget, but immune to one lucky subframe.
  util::Duration recover_hold = 100 * util::kMillisecond;
  // DEGRADED hold-and-decay half-life for the held pacing rate.
  util::Duration hold_half_life = 500 * util::kMillisecond;
};

class DegradationMachine {
 public:
  // (now, from, to) — fired on every state change, after state_ updates.
  using TransitionHook =
      std::function<void(util::Time, DegradationState, DegradationState)>;

  explicit DegradationMachine(DegradationConfig cfg = {}) : cfg_(cfg) {}

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  // A valid (plausible) feedback word arrived carrying this confidence.
  void on_feedback(util::Time now, double confidence);

  // Advance the clock (call from every ack and packet send); drives the
  // watchdog when feedback stops arriving entirely.
  void advance(util::Time now);

  DegradationState state() const { return state_; }
  // False until the first valid feedback: the machine never degrades a
  // connection that has not yet heard from its client.
  bool engaged() const { return last_feedback_ >= 0; }
  double confidence() const { return conf_; }
  util::Time last_feedback_time() const { return last_feedback_; }
  const DegradationConfig& config() const { return cfg_; }

 private:
  void transition(util::Time now, DegradationState to);

  DegradationConfig cfg_;
  TransitionHook hook_;
  DegradationState state_ = DegradationState::kPrecise;
  double conf_ = 1.0;
  util::Time last_feedback_ = -1;
  util::Time healthy_since_ = -1;
  util::Time unhealthy_since_ = -1;
};

}  // namespace pbecc::pbe
