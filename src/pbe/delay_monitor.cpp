#include "pbe/delay_monitor.h"

namespace pbecc::pbe {

DelayMonitor::DelayMonitor(DelayMonitorConfig cfg)
    : cfg_(cfg), dprop_filter_(cfg.dprop_window) {}

util::Duration DelayMonitor::dprop(util::Time now) const {
  return dprop_filter_.get(now, 0);
}

util::Duration DelayMonitor::threshold(util::Time now) const {
  return dprop(now) + cfg_.threshold_margin;
}

std::int64_t DelayMonitor::npkt(double ct_bits_per_sf) const {
  // Eqn 6: packets carried in six subframes at the current rate.
  const double pkts = 6.0 * ct_bits_per_sf / (cfg_.mss * 8.0);
  return std::max<std::int64_t>(static_cast<std::int64_t>(pkts), cfg_.min_npkt);
}

void DelayMonitor::on_packet(util::Time now, util::Duration one_way_delay,
                             double ct_bits_per_sf) {
  dprop_filter_.update(now, one_way_delay);
  const util::Duration dth = threshold(now);
  const std::int64_t n = npkt(ct_bits_per_sf);

  if (one_way_delay > dth) {
    ++above_;
    below_ = 0;
    if (!internet_bottleneck_ && above_ >= n) {
      internet_bottleneck_ = true;
      above_ = 0;
    }
  } else {
    ++below_;
    above_ = 0;
    if (internet_bottleneck_ && below_ >= n) {
      internet_bottleneck_ = false;
      below_ = 0;
    }
  }
}

}  // namespace pbecc::pbe
