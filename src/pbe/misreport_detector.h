// Misreported-congestion-feedback detection (paper §7, "Misreported
// congestion feedback").
//
// PBE-CC trusts the mobile client's capacity reports; a malicious client
// could advertise more than the network can carry and trigger a flood.
// The paper's proposed defense, implemented here: the server runs a
// BBR-like throughput estimator purely from send/ack timestamps and flags
// any client that *consistently* reports a rate well above what the path
// actually delivers. Once flagged, the sender caps its pacing at the
// measured delivery rate instead of the reported one. Unflagging is
// symmetric: the client must report within the suspicion ratio of the
// achieved rate continuously for flag_after before trust is restored —
// a liar cannot clear the flag with a single honest ack.
//
// The detector also tracks feedback-word plausibility (an EWMA of whether
// each decoded word carried a physically possible rate), one input to the
// sender's degradation confidence score.
#pragma once

#include "net/congestion_controller.h"
#include "util/windowed_filter.h"

namespace pbecc::pbe {

struct MisreportDetectorConfig {
  // Reported rate must exceed this multiple of the achieved delivery rate
  // to count as suspicious (delivery-rate samples are noisy; honest
  // feedback routinely sits slightly above instantaneous delivery).
  double suspicion_ratio = 1.5;
  // ... continuously for this long before the client is flagged.
  util::Duration flag_after = 2 * util::kSecond;
  // Achieved-rate estimate: windowed max of delivery-rate samples.
  util::Duration rate_window = util::kSecond;
  // Once flagged, pacing is capped at measured rate times this headroom.
  double capped_gain = 1.1;
};

class MisreportDetector {
 public:
  explicit MisreportDetector(MisreportDetectorConfig cfg = {});

  // Feed every ACK along with the rate the client currently reports.
  void on_ack(const net::AckSample& s, util::RateBps reported_rate);

  // Feed every decoded feedback word: was the encoded rate physically
  // plausible? Drives the plausibility EWMA consumed by the degradation
  // machine (corrupted feedback decodes to garbage rates).
  void on_feedback_word(bool plausible);

  // In [0, 1]: 1.0 = every recent feedback word decoded to a plausible
  // rate; decays toward 0 under feedback corruption.
  double plausibility() const { return plausibility_; }

  bool flagged() const { return flagged_; }

  // The server-side estimate of what the path actually delivers.
  util::RateBps achieved_rate(util::Time now) const;

  // Cap to apply to the client-reported rate (infinity when unflagged).
  util::RateBps rate_cap(util::Time now) const;

 private:
  MisreportDetectorConfig cfg_;
  mutable util::WindowedMax<double> achieved_;
  util::Time suspicious_since_ = -1;
  util::Time honest_since_ = -1;
  bool flagged_ = false;
  double plausibility_ = 1.0;
};

}  // namespace pbecc::pbe
