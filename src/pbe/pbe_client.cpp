#include "pbe/pbe_client.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/rate.h"

namespace pbecc::pbe {

PbeClient::PbeClient(PbeClientConfig cfg, ChannelQuery channel_query)
    : cfg_(std::move(cfg)), channel_(std::move(channel_query)),
      delay_(cfg_.delay) {
  // The first configured cell is the primary carrier: the connection-start
  // fair-share fallback must target it regardless of CellId ordering.
  if (!cfg_.cells.empty()) estimator_.set_primary_cell(cfg_.cells.front().id);
  monitor_ = std::make_unique<decoder::Monitor>(
      cfg_.rnti, cfg_.cells,
      [this](const std::vector<decoder::CellObservation>& obs) {
        if (obs.empty()) return;
        if (taps_.on_observations) taps_.on_observations(obs);
        // Estimates timestamp at the end of the latest tick in the fused
        // emission: (sf_index + 1) * tick per observation, maximized over
        // the batch. For LTE-only sets every tick is 1 ms and this is
        // exactly subframe_start(sf_index + 1). ReplayDriver mirrors this
        // formula — keep the two in lockstep.
        util::Time now = 0;
        for (const auto& o : obs) {
          now = std::max(now, (o.sf_index + 1) * o.tick);
        }
        estimator_.on_observations(now, obs, [this](phy::CellId c) {
          const auto ch = channel_(c);
          const phy::Mcs mcs{ch.cqi, ch.sinr_db >= 14.0 ? 2 : 1};
          return mcs.bits_per_prb();
        });
      },
      [this](phy::CellId c) { return channel_(c).control_ber; },
      cfg_.tracker, cfg_.seed, cfg_.faults);
}

void PbeClient::on_pdcch(const phy::PdcchSubframe& sf) { monitor_->on_pdcch(sf); }

void PbeClient::on_pdcch_batch(const std::vector<phy::PdcchSubframe>& sfs) {
  // Both taps apply only to batches carrying >=1 monitored cell — the
  // same condition under which a capture emits a batch record, so replay
  // sees identical tick streams.
  std::int64_t monitored_sf = -1;
  if (taps_.on_batch || taps_.on_batch_end) {
    for (const auto& sf : sfs) {
      if (monitor_->has_cell(sf.cell_id)) {
        // Master 1 ms subframe index, whatever the cell's slot clock —
        // matches the batch record's sf_index so replay's batch-end hook
        // fires with identical values.
        monitored_sf = sf.sf_index * sf.tick / util::kSubframe;
        break;
      }
    }
  }
  if (taps_.on_batch && monitored_sf >= 0) {
    // Capture exactly what the pipeline will consume: the monitored cells'
    // clean control regions plus, per cell, the base control BER the
    // monitor's ber_fn would return and the own-CSI Rw hint the estimator
    // would compute from current channel state.
    std::vector<phy::PdcchSubframe> kept;
    std::vector<double> bers, bpps;
    for (const auto& sf : sfs) {
      if (!monitor_->has_cell(sf.cell_id)) continue;
      const auto ch = channel_(sf.cell_id);
      const phy::Mcs mcs{ch.cqi, ch.sinr_db >= 14.0 ? 2 : 1};
      kept.push_back(sf);
      bers.push_back(ch.control_ber);
      bpps.push_back(mcs.bits_per_prb());
    }
    if (!kept.empty()) taps_.on_batch(kept, bers, bpps);
  }
  monitor_->on_pdcch_batch(sfs);
  if (taps_.on_batch_end && monitored_sf >= 0) taps_.on_batch_end(monitored_sf);
}

double PbeClient::current_p() const {
  // Residual BER estimated from SINR (paper: "We estimate p using measured
  // signal to interference noise ratio"); primary cell dominates.
  if (cfg_.cells.empty() || !channel_) return 1e-6;
  return channel_(cfg_.cells.front().id).data_ber;
}

double PbeClient::recv_rate_bps(util::Time now) {
  const util::Duration win =
      std::max<util::Duration>(2 * rtprop_est_, 40 * util::kMillisecond);
  while (!recv_window_.empty() && recv_window_.front().first < now - win) {
    recv_window_bytes_ -= recv_window_.front().second;
    recv_window_.pop_front();
  }
  if (recv_window_.empty()) return 0;
  return static_cast<double>(recv_window_bytes_) * 8.0 / util::to_seconds(win);
}

void PbeClient::update_state(util::Time now, double cf_bps) {
  const bool delay_high = delay_.internet_bottleneck();
  const double recv = recv_rate_bps(now);
  const bool rate_attained = recv >= cfg_.rate_attained_fraction * cf_bps;

  switch (state_) {
    case State::kStartup: {
      if (delay_high) {
        // Receive rate stalled below Cf while delay rises: the bottleneck
        // is in the Internet (§4.1 last paragraph).
        state_ = State::kInternet;
        break;
      }
      const auto ramp_len = static_cast<util::Duration>(
          cfg_.ramp_rtts * static_cast<double>(rtprop_est_));
      if (rate_attained || (ramp_start_ >= 0 && now - ramp_start_ >= ramp_len)) {
        state_ = State::kWireless;
      }
      break;
    }
    case State::kWireless:
      if (delay_high) {
        state_ = State::kInternet;
        break;
      }
      // Fair-share re-approach: a flow pushed well below its share (e.g.
      // by a transient competitor) sees Pa small and Pidle ~ 0, so the
      // Eqn 3 estimate alone cannot pull it back up — Pa only grows if the
      // sender offers more. Re-run the §4.1 linear approach toward Cf; the
      // cell's fair scheduler grants the extra demand out of over-share
      // users, whose own monitors then see Pa shrink and back off.
      if (recv < 0.75 * cf_bps) {
        if (below_share_since_ == util::kNever) below_share_since_ = now;
        if (now - below_share_since_ >= 4 * rtprop_est_) {
          state_ = State::kStartup;
          ramp_start_ = now;
          ramp_base_bps_ = last_feedback_bps_;
          below_share_since_ = util::kNever;
        }
      } else {
        below_share_since_ = util::kNever;
      }
      break;
    case State::kInternet:
      // Exit only when the send rate reached Cf *and* no queuing shows
      // (Npkt consecutive packets under the threshold cleared the flag).
      if (!delay_high && rate_attained) state_ = State::kWireless;
      break;
  }
}

void PbeClient::fill_feedback(const net::Packet& pkt, util::Time now,
                              net::Ack& ack) {
  PBECC_PROF_SCOPE("fill_feedback");
  if (ramp_start_ < 0) ramp_start_ = now;
  ++pkts_total_;
  const State prev_state = state_;

  // --- Delay tracking.
  const util::Duration owd = now - pkt.sent_time;
  delay_.on_packet(now, owd, last_ct_bits_sf_);

  // RTprop estimate from one-way propagation delay (uplink assumed
  // symmetric); drives the estimator's averaging window (§4.2.1).
  const util::Duration dprop = delay_.dprop(now);
  if (dprop > 0) {
    rtprop_est_ = std::clamp<util::Duration>(2 * dprop + 4 * util::kMillisecond,
                                             20 * util::kMillisecond,
                                             400 * util::kMillisecond);
    estimator_.set_window(rtprop_est_);
    monitor_->set_tracker_window(rtprop_est_);
    if (taps_.on_window_set) taps_.on_window_set(now, rtprop_est_);
  }

  // --- Receive-rate window.
  recv_window_.emplace_back(now, pkt.bytes);
  recv_window_bytes_ += pkt.bytes;

  // --- Capacity estimates, physical -> transport (Eqn 5).
  const double p = current_p();
  const double cf_phys = estimator_.fair_share_capacity(now);
  const double cp_phys = estimator_.available_capacity(now);
  const double cf_t = translator_.to_transport(cf_phys, p);
  const double cp_t = translator_.to_transport(cp_phys, p);
  const double cf_bps = util::bits_per_subframe_to_bps(cf_t);

  // --- Carrier (de)activation: a newly activated cell restarts the
  // fair-share ramp (§4.1). Hysteresis: a lightly used cell drifting in
  // and out of the activity window must not retrigger the ramp, so a
  // restart requires one second since the previous count increase. The
  // re-ramp starts from the current rate, not from zero — the paper's
  // from-zero ramp is for connection start, where there is no rate yet.
  const int cells_now = estimator_.active_cell_count(now);
  // Probe taps sit after the third estimator query so a replay can repeat
  // the exact fair_share -> available -> active_cells sequence at `now`.
  if (taps_.on_probe) taps_.on_probe(now);
  if (taps_.on_probe_values) taps_.on_probe_values(cf_phys, cp_phys, cells_now);
  if (cells_now > last_cell_count_ &&
      now - last_cell_increase_ > util::kSecond) {
    state_ = State::kStartup;
    ramp_start_ = now;
    ramp_base_bps_ = last_feedback_bps_;
    last_cell_increase_ = now;
  }
  last_cell_count_ = cells_now;

  update_state(now, cf_bps);
  if (state_ == State::kInternet) ++pkts_internet_;

  // --- Feedback selection.
  double rate_bps = 0;
  switch (state_) {
    case State::kStartup: {
      const auto ramp_len = static_cast<double>(static_cast<util::Duration>(
          cfg_.ramp_rtts * static_cast<double>(rtprop_est_)));
      const double frac = ramp_len > 0
                              ? std::clamp(static_cast<double>(now - ramp_start_) /
                                           ramp_len, 0.05, 1.0)
                              : 1.0;
      // Linear ramp from the base (0 at connection start, the current rate
      // on a carrier-activation re-ramp) up to the fair share Cf.
      rate_bps = ramp_base_bps_ + (cf_bps - ramp_base_bps_) * frac;
      if (cf_bps < ramp_base_bps_) rate_bps = cf_bps;  // never ramp downward past Cf
      break;
    }
    case State::kWireless:
      rate_bps = util::bits_per_subframe_to_bps(cp_t);
      break;
    case State::kInternet:
      rate_bps = cf_bps;  // the probing cap Cf (Eqn 7)
      break;
  }
  // Floor: even when the estimator momentarily sees no service (e.g. the
  // flow went app-limited and no grants arrived within the window), keep a
  // trickle flowing so grants — and with them fresh estimates — resume.
  rate_bps = std::max(rate_bps, 1e6);
  last_ct_bits_sf_ = util::bps_to_bits_per_subframe(rate_bps);
  last_feedback_bps_ = rate_bps;

  // --- Feedback confidence (degradation input, §8 of DESIGN.md).
  const double conf = confidence(now);
  ack.pbe_confidence =
      static_cast<std::uint8_t>(std::lround(conf * 255.0));
  if constexpr (obs::kCompiled) {
    static obs::Gauge& conf_gauge = obs::gauge("pbe.client.confidence");
    conf_gauge.set(conf);
  }

  // --- Encode: interval in microseconds between two MSS-size packets.
  if (rate_bps > 1000.0) {
    const double interval_us =
        static_cast<double>(cfg_.mss) * 8.0 / rate_bps * 1e6;
    ack.pbe_rate_interval_us =
        static_cast<std::uint32_t>(std::clamp(interval_us, 1.0, 4e9));
  } else {
    ack.pbe_rate_interval_us = 0;
  }
  ack.pbe_internet_bottleneck = state_ == State::kInternet;

  if constexpr (obs::kCompiled) {
    if (state_ != prev_state) {
      static obs::Counter& switches = obs::counter("pbe.client.state_switches");
      switches.inc();
      obs::emit(obs::EventKind::kClientStateSwitch, now, 0,
                static_cast<std::uint32_t>(prev_state),
                static_cast<std::int64_t>(state_));
    }
    obs::emit(obs::EventKind::kFeedbackSent, now, 0, 0,
              static_cast<std::int64_t>(state_), rate_bps,
              util::to_seconds(owd) * 1e3);
  }
}

double PbeClient::confidence(util::Time now) const {
  double conf = monitor_->decode_success_rate(now);
  // Estimate freshness: a feed that stopped updating (blackout, stall) is
  // worth less the older it gets — full trust up to 50 ms of age, linear
  // decay to zero at 300 ms.
  const util::Time lu = estimator_.last_update();
  if (lu > 0) {
    const util::Duration age = now - lu;
    if (age > 50 * util::kMillisecond) {
      const double freshness =
          1.0 - static_cast<double>(age - 50 * util::kMillisecond) /
                    static_cast<double>(250 * util::kMillisecond);
      conf *= std::clamp(freshness, 0.0, 1.0);
    }
  }
  return std::clamp(conf, 0.0, 1.0);
}

double PbeClient::internet_state_fraction() const {
  if (pkts_total_ == 0) return 0;
  return static_cast<double>(pkts_internet_) / static_cast<double>(pkts_total_);
}

}  // namespace pbecc::pbe
