// PBE-CC capacity estimation (paper §4.1-4.2.1, Eqns 1-4).
//
// Consumes the per-subframe, per-cell observations produced by the decoder
// monitor and maintains, per aggregated cell, sliding means (over the most
// recent RTprop of subframes) of:
//   Rw     — wireless physical data rate, bits per PRB,
//   Pa     — PRBs allocated to this user,
//   Pidle  — PRBs allocated to nobody,
//   N      — data users sharing the cell (control traffic filtered).
// From these it reports:
//   Cp  = sum_i Rw_i * (Pa_i + Pidle_i / N_i)          (Eqn 3)
//   Cf  = sum_i Rw_i * Pcell_i / N_i                   (Eqns 1-2)
// in bits per subframe, each translated to transport-layer goodput by the
// RateTranslator before being fed back.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "decoder/monitor.h"
#include "obs/metrics.h"
#include "util/time.h"
#include "util/windowed_filter.h"

namespace pbecc::pbe {

class CapacityEstimator {
 public:
  explicit CapacityEstimator(util::Duration initial_window = 40 * util::kMillisecond);

  // Ingest one fused subframe worth of observations. `own_rw_hint(cell)`
  // returns the phone's own CSI-derived bits/PRB for a cell, used when it
  // has no DCI of its own there this subframe (it always knows its own
  // channel quality).
  using RwHint = std::function<double(phy::CellId)>;
  void on_observations(util::Time now,
                       const std::vector<decoder::CellObservation>& obs,
                       const RwHint& own_rw_hint);

  // Averaging window follows the connection's RTprop (paper: "average the
  // above parameters over the most recent 40 subframes if the RTT is 40ms").
  void set_window(util::Duration rtprop);

  // The connection-start fair-share fallback targets this cell. Defaults to
  // the first cell ever observed; clients set it explicitly from their
  // carrier configuration so the fallback never depends on map order.
  void set_primary_cell(phy::CellId cell);

  // Introspection for invariant checks and soak bounds.
  std::size_t tracked_cells() const { return cells_.size(); }
  // The PRB count currently on file for a cell (refreshed from every
  // observation so carrier reconfiguration is visible); -1 if untracked.
  int cell_prbs(phy::CellId cell) const;

  // Eqn 3, bits per subframe, summed over cells active for this user.
  double available_capacity(util::Time now) const;
  // Eqns 1-2, bits per subframe.
  double fair_share_capacity(util::Time now) const;

  // Number of cells on which this user has recently been scheduled
  // (activation tracking: a rise restarts the fair-share ramp, §4.1).
  int active_cell_count(util::Time now) const;

  // Largest smoothed N over the active cells (used for Fig 5-style
  // diagnostics); 1 when no data yet.
  double max_users() const;

  // Per-cell readout of the Eqn 1-3 terms, for telemetry sampling and
  // Fig 5/6-style accuracy plots. Mirrors the aggregate queries exactly
  // (same windows, same activity rule) and, like them, only expires window
  // state monotonically — sampling never changes later estimates.
  struct CellSnapshot {
    phy::CellId cell = 0;
    bool active = false;  // granted PRBs within the activity timeout
    int cell_prbs = 0;
    double rw = 0;        // bits per PRB
    double users = 1;     // smoothed N, floored at 1
    double pa = 0;        // own PRBs per subframe
    double pidle = 0;     // idle PRBs per subframe
    double cf_bits_sf = 0;  // rw * Pcell / N      (this cell's Eqn 1-2 term)
    double cp_bits_sf = 0;  // rw * (Pa + Pidle/N) (this cell's Eqn 3 term)
  };
  std::vector<CellSnapshot> cell_snapshots(util::Time now) const;

  // Time of the last ingested observation (0 before the first); exposes
  // estimate staleness to the client's feedback-confidence score.
  util::Time last_update() const { return last_update_; }

 private:
  struct CellState {
    util::WindowedMean rw;      // bits per PRB
    util::WindowedMean pa;      // own PRBs per tick of the cell's clock
    util::WindowedMean pidle;   // idle PRBs per tick of the cell's clock
    util::WindowedMean users;   // filtered data users N
    int cell_prbs = 0;
    // Observation cadence of this cell (1 ms LTE, the slot length for NR)
    // and the per-tick -> per-subframe conversion factor (kSubframe / tick,
    // exactly 1.0 for LTE so pre-NR arithmetic is unchanged): an NR cell's
    // per-slot PRB means must be multiplied up to express Eqns 1-3 in bits
    // per subframe.
    util::Duration tick = util::kSubframe;
    double scale = 1.0;
    util::Time last_own_grant = -1;
    util::Time last_seen = 0;  // last observation mentioning this cell

    explicit CellState(util::Duration w) : rw(w), pa(w), pidle(w), users(w) {}
  };

  util::Duration window_;
  mutable std::map<phy::CellId, CellState> cells_;
  util::Time last_update_ = 0;
  bool has_primary_ = false;
  phy::CellId primary_cell_ = 0;

  // Observability: last Cp/Cf estimates and the shared update counter.
  // Gauge names are process-global; with several concurrent PBE flows the
  // last writer wins (counters still aggregate correctly).
  struct ObsHooks {
    obs::Counter* updates;
    obs::Gauge* cp_bits_sf;
    obs::Gauge* cf_bits_sf;
    obs::Gauge* active_cells;
    obs::Gauge* max_users;
  };
  ObsHooks obs_{};
};

}  // namespace pbecc::pbe
