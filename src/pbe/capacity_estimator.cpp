#include "pbe/capacity_estimator.h"

#include <algorithm>

#include "check/check.h"
#include "obs/obs.h"

namespace pbecc::pbe {

namespace {
// A cell counts as active for this user if it granted us PRBs within the
// last quarter second (a deactivated secondary stops granting; a lightly
// loaded one may legitimately skip many subframes, so the window must be
// generous or the active set flaps).
constexpr util::Duration kCellActiveTimeout = 250 * util::kMillisecond;

// A cell unmentioned by any observation for this long is gone (handover
// completed, carrier deactivated): drop its state so churn through many
// cells cannot grow `cells_` monotonically. Much longer than the active
// timeout so a briefly silent serving cell keeps its window history.
constexpr util::Duration kCellEvictTimeout = 5 * util::kSecond;
}  // namespace

CapacityEstimator::CapacityEstimator(util::Duration initial_window)
    : window_(initial_window) {
  obs_.updates = &obs::counter("pbe.estimator.updates");
  obs_.cp_bits_sf = &obs::gauge("pbe.estimator.cp_bits_sf");
  obs_.cf_bits_sf = &obs::gauge("pbe.estimator.cf_bits_sf");
  obs_.active_cells = &obs::gauge("pbe.estimator.active_cells");
  obs_.max_users = &obs::gauge("pbe.estimator.max_users");
}

void CapacityEstimator::set_window(util::Duration rtprop) {
  window_ = std::clamp<util::Duration>(rtprop, 20 * util::kMillisecond,
                                       400 * util::kMillisecond);
  for (auto& [id, c] : cells_) {
    c.rw.set_window(window_);
    c.pa.set_window(window_);
    c.pidle.set_window(window_);
    c.users.set_window(window_);
  }
}

void CapacityEstimator::set_primary_cell(phy::CellId cell) {
  has_primary_ = true;
  primary_cell_ = cell;
}

int CapacityEstimator::cell_prbs(phy::CellId cell) const {
  const auto it = cells_.find(cell);
  return it == cells_.end() ? -1 : it->second.cell_prbs;
}

void CapacityEstimator::on_observations(
    util::Time now, const std::vector<decoder::CellObservation>& obs,
    const RwHint& own_rw_hint) {
  last_update_ = now;
  for (const auto& o : obs) {
    auto it = cells_.find(o.cell);
    if (it == cells_.end()) {
      it = cells_.emplace(o.cell, CellState{window_}).first;
      if (!has_primary_) {
        // First cell ever seen is the default primary; clients that know
        // their carrier configuration override via set_primary_cell.
        has_primary_ = true;
        primary_cell_ = o.cell;
      }
    }
    CellState& c = it->second;
    const auto& s = o.summary;
    // Refresh from every observation: carrier reconfiguration changes a
    // cell's PRB count mid-connection, and Eqns 1-2 divide the *current*
    // Pcell among users — a stale value skews fair share for the rest of
    // the run.
    PBECC_INVARIANT(o.cell_prbs > 0, "estimator_cell_prbs_positive");
    c.cell_prbs = o.cell_prbs;
    c.tick = o.tick > 0 ? o.tick : util::kSubframe;
    c.scale = static_cast<double>(util::kSubframe) / static_cast<double>(c.tick);
    c.last_seen = now;

    // Rw: from our own DCI when scheduled, else from our own CSI.
    const double rw = s.own_bits_per_prb > 0
                          ? s.own_bits_per_prb
                          : (own_rw_hint ? own_rw_hint(o.cell) : 0.0);
    if (rw > 0) c.rw.update(now, rw);
    PBECC_INVARIANT(s.own_prbs >= 0 && s.idle_prbs >= 0 &&
                        s.own_prbs + s.idle_prbs <= o.cell_prbs,
                    "estimator_prb_accounting");
    c.pa.update(now, s.own_prbs);
    c.pidle.update(now, s.idle_prbs);
    c.users.update(now, std::max(1, s.data_users));
    if (s.own_prbs > 0) c.last_own_grant = now;
  }
  // Evict cells no observation has mentioned for a long time, so handover
  // churn across a city's worth of cells cannot grow the map monotonically.
  std::erase_if(cells_, [&](const auto& kv) {
    return now - kv.second.last_seen > kCellEvictTimeout;
  });
  if constexpr (check::kDeep) {
    for (const auto& [id, c] : cells_) {
      // Window sizes are bounded by the (clamped) averaging window: each
      // deque holds at most one sample per tick of the cell's clock.
      const std::size_t cap =
          static_cast<std::size_t>(window_ / c.tick) + 2;
      PBECC_DEEP_INVARIANT(c.pa.size() <= cap && c.pidle.size() <= cap &&
                               c.users.size() <= cap && c.rw.size() <= cap,
                           "estimator_window_bounded");
    }
  }
  obs_.updates->inc();
  if constexpr (obs::kCompiled) {
    // The readouts cost a loop over the cells, so only pay for them when
    // someone is actually collecting (a live trace, or a metrics run —
    // which enables profiling — where the gauges end up in the report).
    if (obs::tracing_active() || obs::profiling_enabled()) {
      const double cp = available_capacity(now);
      const double cf = fair_share_capacity(now);
      const int cells = active_cell_count(now);
      obs_.cp_bits_sf->set(cp);
      obs_.cf_bits_sf->set(cf);
      obs_.active_cells->set(cells);
      obs_.max_users->set(max_users());
      obs::emit(obs::EventKind::kCapacityUpdate, now, 0, 0, cells, cp, cf);
    }
  }
}

double CapacityEstimator::available_capacity(util::Time now) const {
  double bits = 0;
  for (auto& [id, c] : cells_) {
    if (c.last_own_grant < 0 || now - c.last_own_grant > kCellActiveTimeout) {
      continue;  // we are not being served on this cell right now
    }
    const double rw = c.rw.get(now, 0.0);
    const double pa = c.pa.get(now, 0.0);
    const double pidle = c.pidle.get(now, 0.0);
    const double n = std::max(c.users.get(now, 1.0), 1.0);
    // Eqn 3; the per-tick means are scaled to bits per subframe (scale is
    // exactly 1.0 for LTE cells).
    bits += c.scale * (rw * (pa + pidle / n));
  }
  return bits;
}

double CapacityEstimator::fair_share_capacity(util::Time now) const {
  double bits = 0;
  bool any_active = false;
  for (auto& [id, c] : cells_) {
    const bool active =
        c.last_own_grant >= 0 && now - c.last_own_grant <= kCellActiveTimeout;
    if (!active) continue;
    any_active = true;
    const double rw = c.rw.get(now, 0.0);
    const double n = std::max(c.users.get(now, 1.0), 1.0);
    // Eqns 1-2, scaled from per-tick to per-subframe (1.0 for LTE).
    bits += c.scale * (rw * (static_cast<double>(c.cell_prbs) / n));
  }
  if (!any_active) {
    // Connection start: no grant yet anywhere — use the primary cell's full
    // fair share so the ramp has a deterministic target (never map order:
    // cells_.begin() depends on which CellId happens to sort first).
    const auto it = has_primary_ ? cells_.find(primary_cell_) : cells_.end();
    if (it != cells_.end()) {
      CellState& c = it->second;
      const double rw = c.rw.get(now, 0.0);
      const double n = std::max(c.users.get(now, 1.0), 1.0);
      bits += c.scale * (rw * (static_cast<double>(c.cell_prbs) / n));
    }
  }
  return bits;
}

int CapacityEstimator::active_cell_count(util::Time now) const {
  int n = 0;
  for (auto& [id, c] : cells_) {
    if (c.last_own_grant >= 0 && now - c.last_own_grant <= kCellActiveTimeout) ++n;
  }
  return std::max(n, 1);
}

std::vector<CapacityEstimator::CellSnapshot>
CapacityEstimator::cell_snapshots(util::Time now) const {
  std::vector<CellSnapshot> out;
  out.reserve(cells_.size());
  for (auto& [id, c] : cells_) {
    CellSnapshot s;
    s.cell = id;
    s.active =
        c.last_own_grant >= 0 && now - c.last_own_grant <= kCellActiveTimeout;
    s.cell_prbs = c.cell_prbs;
    s.rw = c.rw.get(now, 0.0);
    s.users = std::max(c.users.get(now, 1.0), 1.0);
    s.pa = c.pa.get(now, 0.0);
    s.pidle = c.pidle.get(now, 0.0);
    s.cf_bits_sf = c.scale * (s.rw * (static_cast<double>(s.cell_prbs) / s.users));
    s.cp_bits_sf = s.active ? c.scale * (s.rw * (s.pa + s.pidle / s.users)) : 0.0;
    out.push_back(s);
  }
  return out;
}

double CapacityEstimator::max_users() const {
  double m = 1.0;
  for (auto& [id, c] : cells_) {
    m = std::max(m, c.users.get(last_update_, 1.0));
  }
  return m;
}

}  // namespace pbecc::pbe
