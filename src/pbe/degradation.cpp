#include "pbe/degradation.h"

#include <algorithm>

namespace pbecc::pbe {

void DegradationMachine::on_feedback(util::Time now, double confidence) {
  conf_ = std::clamp(confidence, 0.0, 1.0);
  last_feedback_ = now;
  advance(now);
}

double DegradationMachine::effective_confidence() const {
  const double penalty =
      diverged_ ? cfg_.blend.divergence_penalty : 1.0;
  return std::clamp(conf_ * penalty, 0.0, 1.0);
}

void DegradationMachine::on_estimates(util::Time now, double phy_bps,
                                      double delay_bps, double acked_bps,
                                      double memory_bps, bool overusing) {
  if (!cfg_.blend.enabled || last_feedback_ < 0) return;
  last_phy_bps_ = phy_bps;
  last_memory_bps_ = memory_bps;
  if (delay_bps > 0 && phy_bps > 0) {
    // Overclaiming (false DCIs, stale cell state) needs congestion
    // corroboration: pacing at an honest PHY rate builds no queue, so a
    // lying feed cannot avoid tripping `overusing` for long. Underclaiming
    // is judged against capacity memory, not acked bitrate: pacing follows
    // the claim, so acked collapses to match any underreport within one
    // window and delivery evidence alone can never refute it. Note the
    // clean-run invariant that keeps both branches quiet: delay_bps <=
    // max_vs_acked x acked and acked tracks the PHY pace, so with
    // divergence_ratio > max_vs_acked an honest feed cannot trip the
    // overclaim branch, and honest cell-share variation stays well inside
    // memory_ratio.
    const bool overclaim =
        overusing && phy_bps > cfg_.blend.divergence_ratio * delay_bps;
    const bool underclaim =
        memory_bps > 0 && memory_bps > cfg_.blend.memory_ratio * phy_bps;
    const bool agree = phy_bps <= cfg_.blend.agree_ratio * delay_bps &&
                       (acked_bps <= 0 ||
                        acked_bps <= cfg_.blend.agree_ratio * phy_bps);
    if (overclaim || underclaim) {
      if (diverge_since_ < 0) diverge_since_ = now;
      agree_since_ = -1;
      if (!diverged_ &&
          now - diverge_since_ >= cfg_.blend.divergence_after) {
        diverged_ = true;
        if (cross_check_hook_) cross_check_hook_(now, phy_bps, delay_bps, true);
      }
    } else {
      diverge_since_ = -1;
      if (agree) {
        if (agree_since_ < 0) agree_since_ = now;
        if (diverged_ && now - agree_since_ >= cfg_.blend.agree_hold) {
          diverged_ = false;
          if (cross_check_hook_) {
            cross_check_hook_(now, phy_bps, delay_bps, false);
          }
        }
      } else {
        agree_since_ = -1;
      }
    }
  }
  update_weight(now);
  advance(now);
}

void DegradationMachine::update_weight(util::Time now) {
  const bool stale = now - last_feedback_ > cfg_.feedback_timeout;
  const double conf = stale ? 0.0 : effective_confidence();
  const double lo = cfg_.blend.zero_trust_below;
  const double hi = cfg_.blend.full_trust_above;
  const double target =
      std::clamp((conf - lo) / std::max(hi - lo, 1e-9), 0.0, 1.0);
  // Deadband + hold: at most one committed move per hold window, and no
  // move at all for noise smaller than the deadband. (The hold is safe in
  // the downward direction too because the pacing blend separately floors
  // itself at the delay target whenever memory contradicts the claim — a
  // stuck-high weight on a floor report cannot throttle the flow.)
  if (std::abs(target - blend_weight_) <= cfg_.blend.deadband) return;
  if (last_weight_commit_ >= 0 &&
      now - last_weight_commit_ < cfg_.blend.hold) {
    return;
  }
  // Up-moves pay one extra gate: no commit while capacity memory
  // contradicts the claim. A feed that recovers decode health while still
  // reporting a floor/stale rate must not reclaim weight 1 for the
  // divergence detector's full trip time.
  if (target > blend_weight_ && last_memory_bps_ > 0 && last_phy_bps_ > 0 &&
      last_memory_bps_ > cfg_.blend.memory_ratio * last_phy_bps_) {
    return;
  }
  blend_weight_ = target;
  last_weight_commit_ = now;
}

void DegradationMachine::advance(util::Time now) {
  if (last_feedback_ < 0) return;  // not engaged until first valid feedback

  const double conf = effective_confidence();
  const bool stale = now - last_feedback_ > cfg_.feedback_timeout;
  const bool healthy = !stale && conf >= cfg_.recover_above;
  const bool unhealthy = stale || conf < cfg_.degrade_below;
  if (cfg_.blend.enabled) update_weight(now);

  if (healthy) {
    if (healthy_since_ < 0) healthy_since_ = now;
  } else {
    healthy_since_ = -1;
  }
  if (unhealthy) {
    if (unhealthy_since_ < 0) unhealthy_since_ = now;
  } else {
    unhealthy_since_ = -1;
  }

  switch (state_) {
    case DegradationState::kPrecise:
      if (unhealthy) transition(now, DegradationState::kDegraded);
      break;
    case DegradationState::kDegraded:
      if (unhealthy && now - unhealthy_since_ >= cfg_.fallback_after) {
        transition(now, DegradationState::kFallback);
      } else if (healthy && now - healthy_since_ >= cfg_.recover_hold) {
        transition(now, DegradationState::kPrecise);
      }
      break;
    case DegradationState::kFallback:
      if (healthy && now - healthy_since_ >= cfg_.recover_hold) {
        transition(now, DegradationState::kPrecise);
      }
      break;
  }
}

void DegradationMachine::transition(util::Time now, DegradationState to) {
  const DegradationState from = state_;
  state_ = to;
  if (hook_) hook_(now, from, to);
}

}  // namespace pbecc::pbe
