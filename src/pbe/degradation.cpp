#include "pbe/degradation.h"

#include <algorithm>

namespace pbecc::pbe {

void DegradationMachine::on_feedback(util::Time now, double confidence) {
  conf_ = std::clamp(confidence, 0.0, 1.0);
  last_feedback_ = now;
  advance(now);
}

void DegradationMachine::advance(util::Time now) {
  if (last_feedback_ < 0) return;  // not engaged until first valid feedback

  const bool stale = now - last_feedback_ > cfg_.feedback_timeout;
  const bool healthy = !stale && conf_ >= cfg_.recover_above;
  const bool unhealthy = stale || conf_ < cfg_.degrade_below;

  if (healthy) {
    if (healthy_since_ < 0) healthy_since_ = now;
  } else {
    healthy_since_ = -1;
  }
  if (unhealthy) {
    if (unhealthy_since_ < 0) unhealthy_since_ = now;
  } else {
    unhealthy_since_ = -1;
  }

  switch (state_) {
    case DegradationState::kPrecise:
      if (unhealthy) transition(now, DegradationState::kDegraded);
      break;
    case DegradationState::kDegraded:
      if (unhealthy && now - unhealthy_since_ >= cfg_.fallback_after) {
        transition(now, DegradationState::kFallback);
      } else if (healthy && now - healthy_since_ >= cfg_.recover_hold) {
        transition(now, DegradationState::kPrecise);
      }
      break;
    case DegradationState::kFallback:
      if (healthy && now - healthy_since_ >= cfg_.recover_hold) {
        transition(now, DegradationState::kPrecise);
      }
      break;
  }
}

void DegradationMachine::transition(util::Time now, DegradationState to) {
  const DegradationState from = state_;
  state_ = to;
  if (hook_) hook_(now, from, to);
}

}  // namespace pbecc::pbe
