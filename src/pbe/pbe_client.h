// The PBE-CC mobile client (paper §4, §5, Fig 4): the module running on
// the phone (here: beside the flow receiver) that
//   * feeds the decoder monitor's per-subframe observations into the
//     capacity estimator,
//   * tracks one-way delay and the bottleneck state,
//   * runs the connection-start fair-share ramp (§4.1) and restarts it
//     when a new component carrier is activated,
//   * stamps each ACK with the 32-bit rate-interval feedback word and the
//     bottleneck-state bit (§5).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "decoder/monitor.h"
#include "net/packet.h"
#include "pbe/capacity_estimator.h"
#include "pbe/delay_monitor.h"
#include "pbe/rate_translator.h"
#include "phy/channel.h"
#include "util/time.h"

namespace pbecc::pbe {

struct PbeClientConfig {
  phy::Rnti rnti = 0;
  std::vector<phy::CellConfig> cells;  // the UE's aggregated cells
  std::int32_t mss = net::kDefaultMss;
  DelayMonitorConfig delay{};
  decoder::UserTrackerConfig tracker{};
  // Linear rate increase spans this many RTprop (paper: three RTTs).
  double ramp_rtts = 3.0;
  // Fraction of the fair share the receive rate must reach to declare the
  // ramp complete / the wireless link re-bottlenecked.
  double rate_attained_fraction = 0.9;
  std::uint64_t seed = 21;
  // Optional fault injector threaded down into the decoder monitor
  // (unowned; must outlive the client). nullptr = fault-free.
  const fault::FaultInjector* faults = nullptr;
};

// Optional observation hooks into the client's measurement pipeline, used
// by pbecc::cap to record traces and fidelity digests. Plain std::function
// bundles keep this module free of any capture dependency; unset hooks
// cost one branch. The hooks fire in pipeline order: on_batch before the
// monitor decodes, on_observations as fused observations reach the
// estimator, on_window_set when an RTprop update resizes the averaging
// windows, on_probe/on_probe_values around each ACK's estimator queries.
struct ClientTaps {
  // One PDCCH tick, already filtered to monitored cells; control_ber[i]
  // and bits_per_prb[i] are the pipeline inputs applied to sfs[i].
  std::function<void(const std::vector<phy::PdcchSubframe>&,
                     const std::vector<double>& control_ber,
                     const std::vector<double>& bits_per_prb)>
      on_batch;
  std::function<void(util::Time, util::Duration window)> on_window_set;
  std::function<void(util::Time)> on_probe;
  std::function<void(const std::vector<decoder::CellObservation>&)>
      on_observations;
  std::function<void(double cf_bits_sf, double cp_bits_sf, int active_cells)>
      on_probe_values;
  // Fires after the monitor has decoded a batch that contained at least
  // one monitored cell — the same condition under which a capture writes a
  // batch record, so a replay can fire its mirror hook at identical points
  // (tel::PipelineSampler keys its cadence off this).
  std::function<void(std::int64_t sf_index)> on_batch_end;
};

class PbeClient {
 public:
  enum class State { kStartup, kWireless, kInternet };

  // `channel_query` is the modem API: the phone's own channel state on a
  // given cell (CQI -> Rw hint, residual BER for Eqn 5).
  using ChannelQuery = std::function<phy::ChannelState(phy::CellId)>;

  PbeClient(PbeClientConfig cfg, ChannelQuery channel_query);

  // Wire to BaseStation::add_pdcch_observer.
  void on_pdcch(const phy::PdcchSubframe& sf);
  // Wire to BaseStation::add_pdcch_batch_observer: all cells of one tick
  // at once, decoded concurrently on the pbecc::par pool.
  void on_pdcch_batch(const std::vector<phy::PdcchSubframe>& sfs);

  // Wire to FlowReceiver::set_feedback_filler.
  void fill_feedback(const net::Packet& pkt, util::Time now, net::Ack& ack);

  // Install capture/digest hooks (pbecc::cap). Call before traffic starts.
  void set_taps(ClientTaps taps) { taps_ = std::move(taps); }

  State state() const { return state_; }
  util::Duration rtprop_estimate() const { return rtprop_est_; }
  double last_feedback_bps() const { return last_feedback_bps_; }
  const CapacityEstimator& estimator() const { return estimator_; }
  const DelayMonitor& delay_monitor() const { return delay_; }
  const decoder::Monitor& monitor() const { return *monitor_; }

  // Fraction of packets handled while in the Internet-bottleneck state
  // (the paper's §6.3.1 "alternation between states" statistic).
  double internet_state_fraction() const;

  // How much the sender should trust this client's feedback right now, in
  // [0, 1]: monitor decode-success rate times capacity-estimate freshness.
  // Stamped into every ACK (Ack::pbe_confidence) and consumed by the
  // sender's degradation machine.
  double confidence(util::Time now) const;

 private:
  double current_p() const;  // residual BER across active cells
  double recv_rate_bps(util::Time now);
  void update_state(util::Time now, double cf_bps);

  PbeClientConfig cfg_;
  ChannelQuery channel_;
  ClientTaps taps_;
  CapacityEstimator estimator_;
  RateTranslator translator_;
  DelayMonitor delay_;
  std::unique_ptr<decoder::Monitor> monitor_;

  State state_ = State::kStartup;
  util::Time ramp_start_ = -1;
  double ramp_base_bps_ = 0;  // re-ramps start from the current rate
  int last_cell_count_ = 1;
  util::Time last_cell_increase_ = -(1LL << 60);
  util::Time below_share_since_ = util::kNever;
  util::Duration rtprop_est_ = 60 * util::kMillisecond;

  // Receive-rate measurement over ~2 RTprop.
  std::deque<std::pair<util::Time, std::int32_t>> recv_window_;
  std::int64_t recv_window_bytes_ = 0;

  double last_ct_bits_sf_ = 0;
  double last_feedback_bps_ = 0;
  std::uint64_t pkts_total_ = 0;
  std::uint64_t pkts_internet_ = 0;
};

}  // namespace pbecc::pbe
