// One-way-delay monitoring and bottleneck-state detection (paper §4.2.2).
//
// Dprop is the minimum one-way delay over a 10-second window (BBR-style).
// The Internet-bottleneck trigger fires when Npkt consecutive packets
// exceed the threshold
//     Dth = Dprop + 3*8 ms (max HARQ retransmission chain) + 3 ms (jitter)
// and the reverse transition requires Npkt consecutive packets below Dth.
// Npkt = 6 * Ct / MSS — the packets carried in six subframes at the
// current transport rate (Eqn 6) — so both thresholds scale with rate.
// Only *relative* delay matters, so sender/client clock sync is not
// required (the same constant offset appears in Dprop and in each sample).
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/time.h"
#include "util/windowed_filter.h"

namespace pbecc::pbe {

struct DelayMonitorConfig {
  util::Duration dprop_window = 10 * util::kSecond;
  // 3 retransmissions x 8 ms + 3 ms jitter allowance.
  util::Duration threshold_margin = (3 * 8 + 3) * util::kMillisecond;
  std::int32_t mss = 1500;
  std::int64_t min_npkt = 4;
};

class DelayMonitor {
 public:
  explicit DelayMonitor(DelayMonitorConfig cfg = {});

  // Feed one packet's one-way delay. `ct_bits_per_sf` is the current
  // transport-layer capacity estimate (sets Npkt).
  void on_packet(util::Time now, util::Duration one_way_delay,
                 double ct_bits_per_sf);

  util::Duration dprop(util::Time now) const;
  util::Duration threshold(util::Time now) const;
  std::int64_t npkt(double ct_bits_per_sf) const;

  // True while the monitor believes queuing is building in the Internet
  // (Npkt consecutive packets above threshold, not yet Npkt below).
  bool internet_bottleneck() const { return internet_bottleneck_; }

  std::int64_t consecutive_above() const { return above_; }
  std::int64_t consecutive_below() const { return below_; }

 private:
  DelayMonitorConfig cfg_;
  mutable util::WindowedMin<util::Duration> dprop_filter_;
  std::int64_t above_ = 0;
  std::int64_t below_ = 0;
  bool internet_bottleneck_ = false;
};

}  // namespace pbecc::pbe
