#include "sim/metrics.h"

#include <limits>

namespace pbecc::sim {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double FlowStats::avg_delay_ms() const {
  return delays_ms_.empty() ? kNan : delays_ms_.mean();
}

double FlowStats::p95_delay_ms() const {
  return delays_ms_.empty() ? kNan : delays_ms_.percentile(95);
}

double FlowStats::median_delay_ms() const {
  return delays_ms_.empty() ? kNan : delays_ms_.percentile(50);
}

void FlowStats::roll_windows(util::Time now) {
  while (now - window_start_ >= window_) {
    window_tputs_.add(static_cast<double>(window_bytes_) * 8.0 /
                      util::to_seconds(window_) / 1e6);
    window_bytes_ = 0;
    window_start_ += window_;
  }
}

void FlowStats::on_delivery(const net::Packet& pkt, util::Time now) {
  if (finished_) return;
  if (first_ < 0) {
    first_ = now;
    window_start_ = now;
  }
  last_ = now;
  ++packets_;
  bytes_ += static_cast<std::uint64_t>(pkt.bytes);

  delays_ms_.add(util::to_millis(now - pkt.sent_time));

  roll_windows(now);
  window_bytes_ += pkt.bytes;
}

void FlowStats::finish(util::Time now) {
  if (finished_) return;
  finished_ = true;  // latch even with no deliveries: measurement is over
  if (first_ < 0) return;
  if (window_bytes_ > 0 && now > window_start_) {
    // Flush the final partial window at its actual length.
    window_tputs_.add(static_cast<double>(window_bytes_) * 8.0 /
                      util::to_seconds(now - window_start_) / 1e6);
  }
}

double FlowStats::avg_tput_mbps() const {
  if (first_ < 0 || last_ <= first_) return 0;
  return static_cast<double>(bytes_) * 8.0 / util::to_seconds(last_ - first_) / 1e6;
}

}  // namespace pbecc::sim
