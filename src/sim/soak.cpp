#include "sim/soak.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "check/check.h"
#include "decoder/monitor.h"
#include "mac/base_station.h"
#include "net/event_loop.h"
#include "pbe/capacity_estimator.h"
#include "phy/mcs.h"
#include "phy/pdcch.h"
#include "tel/sampler.h"
#include "util/rng.h"
#include "util/windowed_filter.h"

namespace pbecc::sim {

namespace {

void note_failure(SoakReport& rep, std::string what) {
  if (rep.failures.size() < 20) rep.failures.push_back(std::move(what));
}

// Brute-force mirror of WindowedMean fed the identical sample stream: the
// oracle the drift lane compares against. Same expiry semantics, but the
// mean is recomputed from scratch on every read.
struct ExactMean {
  util::Duration window;
  std::deque<std::pair<util::Time, double>> samples;

  explicit ExactMean(util::Duration w) : window(w) {}

  void update(util::Time now, double v) {
    samples.emplace_back(now, v);
    expire(now);
  }
  void expire(util::Time now) {
    while (!samples.empty() && samples.front().first < now - window) {
      samples.pop_front();
    }
  }
  bool mean(util::Time now, double& out) {
    expire(now);
    if (samples.empty()) return false;
    double sum = 0.0;
    for (const auto& [t, v] : samples) sum += v;
    out = sum / static_cast<double>(samples.size());
    return true;
  }
};

void finish_check_totals(SoakReport& rep) {
  rep.invariant_violations = check::violations();
  rep.violation_digest = check::describe_violations();
}

}  // namespace

std::string SoakReport::to_json() const {
  std::string j = "{";
  auto add_u64 = [&](const char* k, std::uint64_t v) {
    j += std::string("\"") + k + "\": " + std::to_string(v) + ", ";
  };
  add_u64("subframes", static_cast<std::uint64_t>(subframes));
  add_u64("invariant_violations", invariant_violations);
  add_u64("failures", failures.size());
  add_u64("max_estimator_cells", max_estimator_cells);
  add_u64("max_tracker_users", max_tracker_users);
  add_u64("max_tracker_history", max_tracker_history);
  add_u64("max_ues", max_ues);
  add_u64("max_ue_cells", max_ue_cells);
  add_u64("decode_attempts", decode_attempts);
  add_u64("churn_events", churn_events);
  add_u64("handovers", handovers);
  add_u64("reconfigs", reconfigs);
  add_u64("delivered_packets", delivered_packets);
  char drift[64];
  std::snprintf(drift, sizeof(drift), "%.3e", max_mean_drift);
  j += std::string("\"max_mean_drift\": ") + drift + ", ";
  j += std::string("\"ok\": ") + (ok() ? "true" : "false") + "}";
  return j;
}

SoakReport run_pipeline_soak(const PipelineSoakConfig& cfg) {
  check::reset();
  SoakReport rep;
  rep.subframes = cfg.subframes;
  util::Rng rng(cfg.seed);

  std::vector<phy::CellConfig> cells;
  for (int i = 0; i < cfg.n_cells; ++i) {
    phy::CellConfig c;
    c.id = static_cast<phy::CellId>(i + 1);
    c.bandwidth_mhz = (i % 2 == 0) ? 10.0 : 20.0;
    cells.push_back(c);
  }
  const phy::Rnti own_rnti = 0x100;
  const double hint_rw = phy::Mcs{10, 1}.bits_per_prb();

  pbe::CapacityEstimator estimator;
  estimator.set_primary_cell(cells.front().id);
  decoder::Monitor monitor(
      own_rnti, cells,
      [&](const std::vector<decoder::CellObservation>& obs) {
        if (obs.empty()) return;
        const auto now = util::subframe_start(obs.front().sf_index + 1);
        estimator.on_observations(now, obs,
                                  [&](phy::CellId) { return hint_rw; });
      },
      [](phy::CellId) { return 0.002; },  // light monitor reception noise
      decoder::UserTrackerConfig{}, cfg.seed + 1);
  if (tel::kCompiled && cfg.telemetry != nullptr) {
    auto& rec = cfg.telemetry->recorder();
    rec.set_meta("source", "pipeline_soak");
    rec.set_meta("seed", std::to_string(cfg.seed));
    rec.set_meta("interval_us", std::to_string(cfg.telemetry->interval()));
    cfg.telemetry->pipeline().attach(&monitor, &estimator);
  }

  // Background users per cell; RNTIs cycle through a per-cell free list so
  // a departing user's identifier is promptly reused by a new session.
  struct BgUser {
    phy::Rnti rnti;
    int prbs;
  };
  std::vector<std::vector<BgUser>> active(cells.size());
  std::vector<std::vector<phy::Rnti>> free_rntis(cells.size());
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    for (int k = 0; k < cfg.rnti_pool; ++k) {
      free_rntis[ci].push_back(
          static_cast<phy::Rnti>(0x200 + 0x100 * ci + k));
    }
  }

  // Serving set: the contiguous (mod n) run of cells currently granting
  // the own RNTI. Rotated slowly in normal operation, rapidly in storms.
  std::size_t serving_offset = 0;
  std::size_t serving_n = cells.size();

  // WindowedMean drift lane: the filter under test and its exact mirror
  // see the same stream — realistic PRB/rate magnitudes, plus gap phases
  // that drain the window and magnitude switches into a tiny-value regime
  // (the pattern that exposes residual incremental-sum error).
  util::WindowedMean lane(40 * util::kMillisecond);
  ExactMean lane_exact(40 * util::kMillisecond);

  std::int64_t last_reconfig_sf = -1;
  std::vector<phy::PdcchSubframe> batch;

  for (std::int64_t sf = 1; sf <= cfg.subframes; ++sf) {
    const util::Time now = util::subframe_start(sf);

    // --- User churn with RNTI reuse.
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      if (!free_rntis[ci].empty() && rng.bernoulli(cfg.arrival_per_sf)) {
        active[ci].push_back(
            {free_rntis[ci].back(),
             static_cast<int>(2 + rng.uniform_int(0, 10))});
        free_rntis[ci].pop_back();
        ++rep.churn_events;
      }
      for (std::size_t u = active[ci].size(); u-- > 0;) {
        if (rng.bernoulli(cfg.departure_per_sf)) {
          free_rntis[ci].push_back(active[ci][u].rnti);
          active[ci].erase(active[ci].begin() +
                           static_cast<std::ptrdiff_t>(u));
          ++rep.churn_events;
        }
      }
    }

    // --- Serving-set rotation; storms rotate every 50 subframes.
    const bool storm =
        cfg.storm_period_sf > 0 && (sf % cfg.storm_period_sf) < cfg.storm_len_sf;
    if ((storm && sf % 50 == 0) ||
        (!storm && cfg.rotate_period_sf > 0 && sf % cfg.rotate_period_sf == 0)) {
      serving_offset = (serving_offset + 1) % cells.size();
      serving_n = 1 + static_cast<std::size_t>(
                          (sf / 997) % static_cast<std::int64_t>(cells.size()));
      ++rep.handovers;
    }

    // --- Carrier reconfiguration: toggle one cell's bandwidth and tell
    // the monitor, exactly as a modem learns a new system bandwidth.
    if (cfg.reconfig_period_sf > 0 && sf % cfg.reconfig_period_sf == 0) {
      auto& c = cells[static_cast<std::size_t>(
          (sf / cfg.reconfig_period_sf) % static_cast<std::int64_t>(cells.size()))];
      c.bandwidth_mhz = c.bandwidth_mhz == 10.0 ? 20.0 : 10.0;
      monitor.reconfigure_cell(c);
      ++rep.reconfigs;
      last_reconfig_sf = sf;
    }

    // --- RTprop window jitter (the PbeSender path).
    if (cfg.window_jitter_period_sf > 0 &&
        sf % cfg.window_jitter_period_sf == 0) {
      const auto w = util::from_millis(static_cast<double>(
          20 + (sf / cfg.window_jitter_period_sf * 7) % 180));
      estimator.set_window(w);
      monitor.set_tracker_window(w);
    }

    // --- Build every cell's control region and feed the batch.
    batch.clear();
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      const auto& cell = cells[ci];
      phy::PdcchBuilder builder(cell, sf);
      int cursor = 0;
      const int total = cell.n_prbs();

      const std::size_t rel =
          (ci + cells.size() - serving_offset) % cells.size();
      if (rel < serving_n) {
        phy::Dci dci;
        dci.rnti = own_rnti;
        dci.format = phy::DciFormat::kFormat1;
        dci.prb_start = 0;
        dci.n_prbs = static_cast<std::uint16_t>(2 + sf % 9);
        dci.mcs = phy::Mcs{10, 1};
        dci.harq_id = static_cast<std::uint8_t>(sf % 8);
        if (builder.add_escalating(dci, 2)) cursor += dci.n_prbs;
      }
      for (const auto& u : active[ci]) {
        if (!rng.bernoulli(0.7)) continue;  // not scheduled this subframe
        const int p = std::min(u.prbs, total - cursor);
        if (p <= 0) break;
        phy::Dci dci;
        dci.rnti = u.rnti;
        dci.format = phy::DciFormat::kFormat1A;
        dci.prb_start = static_cast<std::uint16_t>(cursor);
        dci.n_prbs = static_cast<std::uint16_t>(p);
        dci.mcs = phy::Mcs{8, 1};
        dci.harq_id = static_cast<std::uint8_t>(sf % 8);
        if (builder.add_escalating(dci, 2)) cursor += p;
      }
      batch.push_back(std::move(builder).build());
    }
    monitor.on_pdcch_batch(batch);
    if (tel::kCompiled && cfg.telemetry != nullptr) {
      cfg.telemetry->pipeline().on_batch_end(sf);
      // check.violations rides the same cadence the pipeline half uses.
      if (sf % std::max<std::int64_t>(
                   cfg.telemetry->interval() / util::kSubframe, 1) == 0) {
        cfg.telemetry->recorder().append_i64(
            "check.violations", "count", util::subframe_start(sf + 1),
            static_cast<std::int64_t>(check::violations()));
      }
    }

    // --- Drift lane. Three regimes, 100k subframes each: realistic large
    // positive rates; gappy low-rate traffic (drains the window, forcing
    // the restart path); tiny values after the gaps (any stale residue in
    // the incremental sum dwarfs the true mean here).
    const int regime = static_cast<int>((sf / 100'000) % 3);
    bool fed = true;
    double v = 0;
    switch (regime) {
      case 0: v = rng.uniform(1e5, 1e6); break;
      case 1:
        fed = sf % 200 < 50;
        v = rng.uniform(0.0, 10.0);
        break;
      default: v = rng.uniform(0.0, 1e-6); break;
    }
    if (fed) {
      lane.update(now, v);
      lane_exact.update(now, v);
    }

    // --- Periodic bound / freshness / drift checks.
    if (cfg.check_period_sf > 0 && sf % cfg.check_period_sf == 0) {
      rep.max_estimator_cells =
          std::max(rep.max_estimator_cells, estimator.tracked_cells());
      if (estimator.tracked_cells() > cells.size()) {
        note_failure(rep, "estimator tracks " +
                              std::to_string(estimator.tracked_cells()) +
                              " cells (> " + std::to_string(cells.size()) +
                              ") at sf " + std::to_string(sf));
      }
      for (const auto& c : cells) {
        const auto& tracker = monitor.tracker(c.id);
        rep.max_tracker_users =
            std::max(rep.max_tracker_users, tracker.tracked_users());
        rep.max_tracker_history =
            std::max(rep.max_tracker_history, tracker.history_size());
        // Pool + own RNTI + transient CRC-aliased identities. Aliases show
        // up at a rate set by the control BER and persist for one tracker
        // window (at most 200 subframes under jitter), so the allowance
        // scales with the window; a genuine leak grows past any constant.
        const std::size_t user_bound =
            static_cast<std::size_t>(cfg.rnti_pool) + 1 + 200;
        if (tracker.tracked_users() > user_bound) {
          note_failure(rep, "tracker users " +
                                std::to_string(tracker.tracked_users()) +
                                " exceeds bound at sf " + std::to_string(sf));
        }
        // Window is at most 200 ms; each subframe contributes at most one
        // observation per active identity.
        const std::size_t hist_bound = 200 * (user_bound + 1);
        if (tracker.history_size() > hist_bound) {
          note_failure(rep, "tracker history " +
                                std::to_string(tracker.history_size()) +
                                " exceeds bound at sf " + std::to_string(sf));
        }
        // Carrier-reconfig freshness: a few subframes after a reconfig the
        // estimator must be dividing the *new* Pcell among users.
        if (sf > 100 && (last_reconfig_sf < 0 || sf - last_reconfig_sf > 5)) {
          if (estimator.cell_prbs(c.id) != c.n_prbs()) {
            note_failure(rep,
                         "estimator cell_prbs stale for cell " +
                             std::to_string(c.id) + " at sf " +
                             std::to_string(sf) + " (" +
                             std::to_string(estimator.cell_prbs(c.id)) +
                             " != " + std::to_string(c.n_prbs()) + ")");
          }
        }
      }
      double exact = 0;
      if (lane_exact.mean(now, exact)) {
        const double inc = lane.get(now, 0.0);
        const double drift =
            std::abs(inc - exact) / std::max(std::abs(exact), 1.0);
        rep.max_mean_drift = std::max(rep.max_mean_drift, drift);
        if (drift > 1e-9) {
          note_failure(rep, "WindowedMean drift " + std::to_string(drift) +
                                " at sf " + std::to_string(sf));
        }
      }
    }
  }

  rep.decode_attempts = monitor.decode_attempts();
  finish_check_totals(rep);
  return rep;
}

SoakReport run_mac_soak(const MacSoakConfig& cfg) {
  check::reset();
  SoakReport rep;
  rep.subframes = cfg.subframes;
  util::Rng rng(cfg.seed);

  net::EventLoop loop;
  std::vector<phy::CellConfig> cells;
  for (int i = 0; i < cfg.n_cells; ++i) {
    phy::CellConfig c;
    c.id = static_cast<phy::CellId>(i + 1);
    c.bandwidth_mhz = 10.0;
    cells.push_back(c);
  }
  mac::BaseStationConfig bcfg;
  bcfg.seed = cfg.seed;
  mac::BaseStation bs(loop, cells, bcfg);

  // Per-UE packet sequence counters persist across remove/re-add so the
  // delivery-order check spans a UE id's whole lifetime.
  std::map<mac::UeId, std::uint64_t> next_seq;
  std::map<mac::UeId, std::uint64_t> last_delivered;

  auto add_one = [&](mac::UeId id, double rssi_dbm,
                     std::vector<phy::CellId> aggregated) {
    mac::UeConfig u;
    u.id = id;
    u.rnti = static_cast<phy::Rnti>(0x100 + id);
    u.aggregated_cells = std::move(aggregated);
    u.channel.trace = phy::MobilityTrace::stationary(rssi_dbm);
    u.channel.noise_floor_dbm = -106.0;
    u.channel.seed = cfg.seed * 77 + id;
    bs.add_ue(u, [&rep, &last_delivered, id](net::Packet p) {
      auto& last = last_delivered[id];
      if (last != 0 && p.seq <= last) {
        note_failure(rep, "out-of-order delivery ue=" + std::to_string(id) +
                              " seq=" + std::to_string(p.seq) +
                              " after=" + std::to_string(last));
      }
      last = p.seq;
      ++rep.delivered_packets;
    });
  };

  // Foreground UEs: carrier-aggregated, one on a weak channel so HARQ
  // retransmissions and abandons actually happen.
  std::vector<mac::UeId> fg;
  for (int i = 0; i < cfg.fg_ues; ++i) {
    const mac::UeId id = static_cast<mac::UeId>(i + 1);
    fg.push_back(id);
    add_one(id, i == 0 ? -95.0 : -101.0,
            {cells[0].id, cells[1 % cells.size()].id});
  }

  // Background pool: ids recycled through add_ue/remove_ue. An id is only
  // re-added a safe margin after removal (in-flight decode callbacks land
  // one subframe after transmission).
  struct BgSlot {
    mac::UeId id;
    std::int64_t removed_sf;
  };
  std::vector<BgSlot> free_bg;
  std::vector<mac::UeId> active_bg;
  for (int i = 0; i < cfg.bg_ue_pool; ++i) {
    free_bg.push_back({static_cast<mac::UeId>(100 + i), -100});
  }

  bs.start();
  for (std::int64_t sf = 1; sf <= cfg.subframes; ++sf) {
    loop.run_until(util::subframe_start(sf));

    // --- Traffic: keep the foreground backlogged, background trickling.
    for (mac::UeId id : fg) {
      for (int k = 0; k < 2; ++k) {
        net::Packet p;
        p.flow = static_cast<net::FlowId>(id);
        p.seq = ++next_seq[id];
        p.bytes = 1500;
        p.sent_time = loop.now();
        bs.enqueue(id, p);
      }
    }
    if (sf % 2 == 0) {
      for (mac::UeId id : active_bg) {
        net::Packet p;
        p.flow = static_cast<net::FlowId>(id);
        p.seq = ++next_seq[id];
        p.bytes = 1500;
        p.sent_time = loop.now();
        bs.enqueue(id, p);
      }
    }

    // --- Background churn through add_ue/remove_ue with id reuse.
    if (rng.bernoulli(cfg.churn_per_sf) && !free_bg.empty() &&
        sf - free_bg.front().removed_sf > 20) {
      const BgSlot slot = free_bg.front();
      free_bg.erase(free_bg.begin());
      const auto cell =
          cells[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(cells.size()) - 1))]
              .id;
      add_one(slot.id, -98.0, {cell});
      active_bg.push_back(slot.id);
      ++rep.churn_events;
    }
    if (rng.bernoulli(cfg.churn_per_sf) && !active_bg.empty()) {
      const mac::UeId id = active_bg.front();
      active_bg.erase(active_bg.begin());
      bs.remove_ue(id);
      last_delivered.erase(id);  // a reused id restarts its order lane
      free_bg.push_back({id, sf});
      ++rep.churn_events;
    }

    // --- Handover: slow rotation normally, rapid rotation in storms.
    const bool storm =
        cfg.storm_period_sf > 0 && (sf % cfg.storm_period_sf) < cfg.storm_len_sf;
    const std::int64_t ho_interval = storm ? 25 : 5000;
    if (sf % ho_interval == 0) {
      for (std::size_t i = 0; i < fg.size(); ++i) {
        const std::size_t base = static_cast<std::size_t>(
            (sf / ho_interval + static_cast<std::int64_t>(i)) %
            static_cast<std::int64_t>(cells.size()));
        bs.handover(fg[i], {cells[base].id,
                            cells[(base + 1) % cells.size()].id});
        ++rep.handovers;
      }
    }

    // --- Bound checks.
    if (cfg.check_period_sf > 0 && sf % cfg.check_period_sf == 0) {
      rep.max_ues = std::max(rep.max_ues, bs.num_ues());
      const std::size_t ue_bound =
          static_cast<std::size_t>(cfg.fg_ues + cfg.bg_ue_pool);
      if (bs.num_ues() > ue_bound) {
        note_failure(rep, "num_ues " + std::to_string(bs.num_ues()) +
                              " exceeds bound at sf " + std::to_string(sf));
      }
      for (mac::UeId id : fg) {
        const std::size_t tracked = bs.ue_tracked_cells(id);
        rep.max_ue_cells = std::max(rep.max_ue_cells, tracked);
        if (tracked > 2) {
          note_failure(rep, "ue " + std::to_string(id) + " tracks " +
                                std::to_string(tracked) +
                                " cells (> 2) at sf " + std::to_string(sf));
        }
      }
    }
  }
  // Drain the last in-flight deliveries.
  loop.run_until(util::subframe_start(cfg.subframes + 2));

  finish_check_totals(rep);
  return rep;
}

}  // namespace pbecc::sim
