#include "sim/algorithms.h"

#include <stdexcept>

#include "baselines/bbr.h"
#include "baselines/copa.h"
#include "baselines/cubic.h"
#include "baselines/pcc.h"
#include "baselines/sprout.h"
#include "baselines/verus.h"
#include "pbe/pbe_sender.h"

namespace pbecc::sim {

const std::vector<std::string>& all_algorithms() {
  static const std::vector<std::string> kAll = {
      "pbe", "bbr", "cubic", "verus", "sprout", "copa", "pcc", "vivace"};
  return kAll;
}

bool needs_pbe_client(const std::string& name) { return name == "pbe"; }

std::unique_ptr<net::CongestionController> make_controller(
    const std::string& name, std::uint64_t seed) {
  if (name == "pbe") {
    pbe::PbeSenderConfig cfg;
    cfg.seed = seed;
    return std::make_unique<pbe::PbeSender>(cfg);
  }
  if (name == "abc") {
    // Explicit-network-feedback oracle: same precise sender, but the rate
    // in each ACK comes straight from the base station (see Scenario).
    pbe::PbeSenderConfig cfg;
    cfg.name = "abc";
    cfg.detect_misreports = false;  // the network cannot misreport to itself
    cfg.seed = seed;
    return std::make_unique<pbe::PbeSender>(cfg);
  }
  if (name == "bbr") {
    baselines::BbrConfig cfg;
    cfg.seed = seed;
    return std::make_unique<baselines::Bbr>(cfg);
  }
  if (name == "cubic") return std::make_unique<baselines::Cubic>();
  if (name == "copa") return std::make_unique<baselines::Copa>();
  if (name == "verus") return std::make_unique<baselines::Verus>();
  if (name == "sprout") return std::make_unique<baselines::Sprout>();
  if (name == "pcc") {
    baselines::PccConfig cfg;
    cfg.seed = seed;
    return std::make_unique<baselines::PccAllegro>(cfg);
  }
  if (name == "vivace") {
    baselines::PccConfig cfg;
    cfg.seed = seed;
    return std::make_unique<baselines::PccVivace>(cfg);
  }
  throw std::invalid_argument("unknown congestion control algorithm: " + name);
}

}  // namespace pbecc::sim
