#include "sim/algorithms.h"

#include <stdexcept>

#include <cmath>

#include "baselines/bbr.h"
#include "baselines/copa.h"
#include "baselines/cubic.h"
#include "baselines/goog_cc.h"
#include "baselines/pcc.h"
#include "baselines/sprout.h"
#include "baselines/verus.h"
#include "pbe/pbe_sender.h"

namespace pbecc::sim {

namespace {
HybridBlendOverrides g_blend_overrides;

void apply_blend_overrides(pbe::BlendConfig& b) {
  const HybridBlendOverrides& o = g_blend_overrides;
  if (!std::isnan(o.zero_trust_below)) b.zero_trust_below = o.zero_trust_below;
  if (!std::isnan(o.full_trust_above)) b.full_trust_above = o.full_trust_above;
  if (!std::isnan(o.deadband)) b.deadband = o.deadband;
  if (o.hold_ms >= 0) {
    b.hold = static_cast<util::Duration>(o.hold_ms * util::kMillisecond);
  }
  if (!std::isnan(o.divergence_ratio)) b.divergence_ratio = o.divergence_ratio;
  if (!std::isnan(o.divergence_penalty)) {
    b.divergence_penalty = o.divergence_penalty;
  }
}
}  // namespace

void set_hybrid_blend_overrides(const HybridBlendOverrides& overrides) {
  g_blend_overrides = overrides;
}

const std::vector<std::string>& all_algorithms() {
  static const std::vector<std::string> kAll = {
      "pbe", "bbr", "cubic", "verus", "sprout", "copa", "pcc", "vivace"};
  return kAll;
}

const std::vector<std::string>& extra_algorithms() {
  static const std::vector<std::string> kExtra = {"gcc", "hybrid"};
  return kExtra;
}

bool needs_pbe_client(const std::string& name) {
  return name == "pbe" || name == "hybrid";
}

std::unique_ptr<net::CongestionController> make_controller(
    const std::string& name, std::uint64_t seed) {
  if (name == "pbe") {
    pbe::PbeSenderConfig cfg;
    cfg.seed = seed;
    return std::make_unique<pbe::PbeSender>(cfg);
  }
  if (name == "abc") {
    // Explicit-network-feedback oracle: same precise sender, but the rate
    // in each ACK comes straight from the base station (see Scenario).
    pbe::PbeSenderConfig cfg;
    cfg.name = "abc";
    cfg.detect_misreports = false;  // the network cannot misreport to itself
    cfg.seed = seed;
    return std::make_unique<pbe::PbeSender>(cfg);
  }
  if (name == "bbr") {
    baselines::BbrConfig cfg;
    cfg.seed = seed;
    return std::make_unique<baselines::Bbr>(cfg);
  }
  if (name == "cubic") return std::make_unique<baselines::Cubic>();
  if (name == "copa") return std::make_unique<baselines::Copa>();
  if (name == "verus") return std::make_unique<baselines::Verus>();
  if (name == "sprout") return std::make_unique<baselines::Sprout>();
  if (name == "pcc") {
    baselines::PccConfig cfg;
    cfg.seed = seed;
    return std::make_unique<baselines::PccAllegro>(cfg);
  }
  if (name == "vivace") {
    baselines::PccConfig cfg;
    cfg.seed = seed;
    return std::make_unique<baselines::PccVivace>(cfg);
  }
  if (name == "gcc") {
    // Delay-gradient BWE (goog_cc lineage) as a standalone baseline: the
    // endpoint-only half of the hybrid, measurable on its own.
    return std::make_unique<baselines::GoogCc>();
  }
  if (name == "hybrid") {
    // PBE with the always-on delay-gradient sidecar holding a
    // confidence-weighted share of pacing authority (DESIGN.md §13).
    pbe::PbeSenderConfig cfg;
    cfg.name = "hybrid";
    cfg.hybrid = true;
    apply_blend_overrides(cfg.degradation.blend);
    cfg.seed = seed;
    return std::make_unique<pbe::PbeSender>(cfg);
  }
  throw std::invalid_argument("unknown congestion control algorithm: " + name);
}

}  // namespace pbecc::sim
