#include "sim/scenario.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

#include "cap/taps.h"
#include "check/check.h"
#include "nr/numerology.h"
#include "obs/obs.h"
#include "pbe/pbe_sender.h"
#include "sim/algorithms.h"
#include "tel/sampler.h"

namespace pbecc::sim {

namespace {
// Cross-domain messages are exchanged at subframe boundaries: the finest
// granularity at which the MAC layer acts, and the cadence the paper's
// own feedback loop runs at.
constexpr util::Duration kShardBarrier = util::kMillisecond;

std::atomic<int> g_default_shards{1};
}  // namespace

void set_default_shards(int n) { g_default_shards.store(std::max(1, n)); }
int default_shards() { return g_default_shards.load(); }

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.cells.empty()) {
    throw std::invalid_argument("scenario needs at least one cell");
  }
  for (std::size_t i = 0; i < cfg_.cells.size(); ++i) {
    const CellSpec& spec = cfg_.cells[i];
    phy::CellConfig cc;
    cc.id = static_cast<phy::CellId>(i + 1);
    cc.bandwidth_mhz = spec.bandwidth_mhz;
    if (spec.nr) {
      cc.rat = phy::Rat::kNr;
      cc.scs = nr::scs_from_khz(spec.scs_khz);
      cc.coreset.rbs = spec.coreset_rbs;
      cc.coreset.symbols = spec.coreset_symbols;
      cc.mini_slot_preemption = spec.mini_slot;
      // NR PDCCH is polar-coded; convolutional_pdcch opts into the
      // (equivalently shaped) conv path for apples-to-apples ablations.
      cc.pdcch_coding = spec.convolutional_pdcch ? phy::PdcchCoding::kConvolutional
                                                 : phy::PdcchCoding::kPolar;
      nr::nr_prbs_for(cc.scs, cc.bandwidth_mhz);  // validate the pairing now
    } else {
      cc.pdcch_coding = spec.convolutional_pdcch
                            ? phy::PdcchCoding::kConvolutional
                            : phy::PdcchCoding::kRepetition;
    }
    cell_cfgs_.push_back(cc);
  }

  // Partition cells into shard domains by cluster id (ascending). The
  // partition is fixed by the scenario config — worker count never alters
  // it, which is the root of the determinism argument.
  std::vector<int> clusters;
  for (const CellSpec& c : cfg_.cells) clusters.push_back(c.cluster);
  std::sort(clusters.begin(), clusters.end());
  clusters.erase(std::unique(clusters.begin(), clusters.end()),
                 clusters.end());
  for (int c : clusters) {
    auto d = std::make_unique<Domain>();
    d->cluster = c;
    domains_.push_back(std::move(d));
  }
  cell_domain_.resize(cfg_.cells.size(), 0);
  for (std::size_t i = 0; i < cfg_.cells.size(); ++i) {
    const auto it = std::lower_bound(clusters.begin(), clusters.end(),
                                     cfg_.cells[i].cluster);
    const int d = static_cast<int>(it - clusters.begin());
    cell_domain_[i] = d;
    domains_[static_cast<std::size_t>(d)]->cell_idx.push_back(i);
    domains_[static_cast<std::size_t>(d)]->cells.push_back(cell_cfgs_[i]);
  }

  // One base station per domain; one seed draw per domain in domain order
  // (a single-cluster scenario draws exactly once, matching the pre-shard
  // RNG stream byte for byte).
  for (auto& dom : domains_) {
    mac::BaseStationConfig bs_cfg;
    bs_cfg.scheduler = cfg_.scheduler;
    bs_cfg.seed = rng_.next_u64();
    // Per-cell control-traffic intensity is folded into one generator
    // config; BaseStation forks seeds per cell. Use the domain's first
    // cell's figure for all (location profiles keep them equal).
    bs_cfg.control_traffic.users_per_subframe =
        cfg_.cells[dom->cell_idx.front()].control_users_per_subframe;
    dom->bs = std::make_unique<mac::BaseStation>(dom->loop, dom->cells, bs_cfg);
  }
  mailbox_.reset(domains_.size());

  if (cfg_.fault.active()) {
    faults_ = std::make_unique<fault::FaultInjector>(cfg_.fault, cfg_.fault_seed);
  }
}

phy::Rnti Scenario::rnti_for(mac::UeId ue) const {
  return static_cast<phy::Rnti>(0x100 + ue);
}

int Scenario::domain_of(const std::vector<std::size_t>& cells,
                        const char* what) const {
  if (cells.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty cell set");
  }
  const int d = cell_domain_.at(cells.front());
  for (std::size_t idx : cells) {
    if (cell_domain_.at(idx) != d) {
      throw std::invalid_argument(std::string(what) +
                                  ": serving set spans cell clusters");
    }
  }
  return d;
}

mac::BaseStation::DeliveryHandler Scenario::make_delivery_handler(
    mac::UeId ue) {
  return [this, ue](net::Packet pkt) { route_delivery(ue, std::move(pkt)); };
}

void Scenario::route_delivery(mac::UeId ue, net::Packet pkt) {
  const auto rit = ue_receivers_.find(ue);
  if (rit == ue_receivers_.end()) return;  // background payload: discard
  const auto it = rit->second.find(pkt.flow);
  if (it == rit->second.end()) return;  // unknown flow: discard
  if (domains_.size() == 1) {
    it->second->on_packet(std::move(pkt));
    return;
  }
  const int cur = ue_records_.at(ue).domain;
  const int home = flow_domain_.at(pkt.flow);
  if (in_barrier_ || home == cur) {
    // Either the receiver lives where the UE does (one domain's own event
    // sequence), or we are in the serial barrier phase with every domain
    // clock aligned — direct delivery is safe and deterministic.
    it->second->on_packet(std::move(pkt));
    return;
  }
  ShardMsg m;
  m.kind = ShardMsg::Kind::kDeliver;
  m.ue = ue;
  m.pkt = std::move(pkt);
  mailbox_.post(static_cast<std::uint32_t>(cur),
                domains_[static_cast<std::size_t>(cur)]->loop.now(),
                std::move(m));
}

void Scenario::route_downlink(mac::UeId ue, net::Packet pkt, int home) {
  if (domains_.size() == 1) {
    domains_.front()->bs->enqueue(ue, std::move(pkt));
    return;
  }
  const int cur = ue_records_.at(ue).domain;
  if (cur == home) {
    domains_[static_cast<std::size_t>(cur)]->bs->enqueue(ue, std::move(pkt));
    return;
  }
  // The UE migrated away from the flow's home cluster: the packet crosses
  // the inter-site backhaul and lands at the next subframe barrier.
  ShardMsg m;
  m.kind = ShardMsg::Kind::kPacket;
  m.ue = ue;
  m.pkt = std::move(pkt);
  mailbox_.post(static_cast<std::uint32_t>(home),
                domains_[static_cast<std::size_t>(home)]->loop.now(),
                std::move(m));
}

void Scenario::add_ue(const UeSpec& spec) {
  const int dom = domain_of(spec.cell_indices, "add_ue");
  for (const auto& set : spec.serving_sets) {
    (void)domain_of(set, "add_ue serving_sets");
  }
  mac::UeConfig cfg;
  cfg.id = spec.id;
  cfg.rnti = rnti_for(spec.id);
  for (std::size_t idx : spec.cell_indices) {
    cfg.aggregated_cells.push_back(cell_cfgs_.at(idx).id);
  }
  cfg.channel.trace = spec.trace;
  cfg.channel.noise_floor_dbm = spec.noise_floor_dbm;
  cfg.channel.seed = rng_.next_u64();
  cfg.ca = spec.ca;
  cfg.scheduling_weight = spec.scheduling_weight;

  ue_records_[spec.id] = UeRecord{spec, dom, 0};
  domains_[static_cast<std::size_t>(dom)]->bs->add_ue(
      cfg, make_delivery_handler(spec.id));
}

int Scenario::add_flow(const FlowSpec& spec) {
  const auto rec_it = ue_records_.find(spec.ue);
  if (rec_it == ue_records_.end()) {
    throw std::invalid_argument("add_flow: UE not registered");
  }
  const UeRecord& rec = rec_it->second;
  const int dom = rec.domain;
  auto& dloop = domains_[static_cast<std::size_t>(dom)]->loop;
  auto* dbs = domains_[static_cast<std::size_t>(dom)]->bs.get();
  // PBE clients decode one base station's control channel and ABC reads
  // one base station's explicit rate: a cross-cluster migration would
  // silently detach both. Reject at registration.
  if (needs_pbe_client(spec.algo) || spec.algo == "abc") {
    for (const auto& set : rec.spec.serving_sets) {
      if (domain_of(set, "add_flow") != dom) {
        throw std::invalid_argument(
            "add_flow: " + spec.algo +
            " flows cannot migrate across cell clusters");
      }
    }
  }
  auto ctx = std::make_unique<FlowCtx>();
  FlowCtx* ctxp = ctx.get();
  ctx->spec = spec;
  ctx->domain = dom;
  ctx->stats = std::make_unique<FlowStats>();
  const auto flow_id = static_cast<net::FlowId>(flows_.size() + 1);

  // --- Controller (and PBE client when needed).
  std::unique_ptr<net::CongestionController> cc;
  if (spec.algo == "fixed") {
    if (spec.fixed_rate <= 0) throw std::invalid_argument("fixed flow needs rate");
    cc = std::make_unique<net::FixedRateController>(spec.fixed_rate);
  } else if (spec.algo == "pbe" && spec.pbe_cwnd_gain > 0) {
    pbe::PbeSenderConfig pscfg;
    pscfg.cwnd_gain = spec.pbe_cwnd_gain;
    pscfg.seed = rng_.next_u64();
    cc = std::make_unique<pbe::PbeSender>(pscfg);
  } else {
    cc = make_controller(spec.algo, rng_.next_u64());
  }

  // --- Downlink path: sender -> [Internet bottleneck] -> delay -> BS queue.
  const mac::UeId ue = spec.ue;
  ctx->downlink = std::make_unique<net::DelayLink>(
      dloop, spec.path.one_way_delay,
      [this, ue, dom](net::Packet pkt) {
        route_downlink(ue, std::move(pkt), dom);
      },
      spec.path.jitter, rng_.next_u64());

  net::PacketHandler egress;
  if (spec.path.internet_rate > 0) {
    net::BottleneckLink::Config bl;
    bl.rate = spec.path.internet_rate;
    bl.buffer_bytes = spec.path.internet_buffer_bytes;
    bl.propagation_delay = 0;  // delay applied by the DelayLink stage
    ctx->bottleneck = std::make_unique<net::BottleneckLink>(
        dloop, bl, [d = ctx->downlink.get()](net::Packet pkt) { d->send(std::move(pkt)); });
    egress = [b = ctx->bottleneck.get()](net::Packet pkt) { b->send(std::move(pkt)); };
  } else {
    egress = [d = ctx->downlink.get()](net::Packet pkt) { d->send(std::move(pkt)); };
  }

  // --- Sender.
  net::FlowSender::Config scfg;
  scfg.id = flow_id;
  scfg.start_time = spec.start;
  scfg.stop_time = spec.stop;
  ctx->sender = std::make_unique<net::FlowSender>(dloop, scfg, std::move(cc),
                                                  std::move(egress));

  // --- Receiver; ACKs return over a symmetric fixed-delay uplink.
  auto* sender_ptr = ctx->sender.get();
  const util::Duration up_delay = spec.path.one_way_delay;
  net::EventLoop* lp = &dloop;
  ctx->receiver = std::make_unique<net::FlowReceiver>(
      dloop, flow_id, [this, sender_ptr, up_delay, flow_id, lp, ctxp](net::Ack ack) {
        util::Duration delay = up_delay;
        if (faults_) {
          const fault::FeedbackFault ff = faults_->feedback_fault(
              lp->now(), static_cast<std::uint32_t>(flow_id), ack.seq);
          if (ff.drop) {
            if constexpr (obs::kCompiled) {
              static obs::Counter& drops = obs::counter("fault.feedback_drops");
              drops.inc();
              obs::emit(obs::EventKind::kFaultInjected, lp->now(), 0,
                        static_cast<std::uint32_t>(
                            fault::FaultType::kFeedbackDrop),
                        static_cast<std::int64_t>(flow_id));
            }
            return;  // the ACK never reaches the sender
          }
          if (ff.corrupt && ack.pbe_rate_interval_us != 0) {
            ack.pbe_rate_interval_us = faults_->corrupt_word(
                ack.pbe_rate_interval_us, static_cast<std::uint32_t>(flow_id),
                ack.seq);
            if constexpr (obs::kCompiled) {
              static obs::Counter& corruptions =
                  obs::counter("fault.feedback_corruptions");
              corruptions.inc();
              obs::emit(obs::EventKind::kFaultInjected, lp->now(), 0,
                        static_cast<std::uint32_t>(
                            fault::FaultType::kFeedbackCorrupt),
                        static_cast<std::int64_t>(flow_id));
            }
          }
          if (ff.extra_delay > 0) {
            delay += ff.extra_delay;
            if (!ctxp->in_delay_spike) {
              ctxp->in_delay_spike = true;
              if constexpr (obs::kCompiled) {
                static obs::Counter& spikes =
                    obs::counter("fault.feedback_delay_spikes");
                spikes.inc();
                obs::emit(obs::EventKind::kFaultInjected, lp->now(), 0,
                          static_cast<std::uint32_t>(
                              fault::FaultType::kFeedbackDelay),
                          static_cast<std::int64_t>(flow_id));
              }
            }
          } else {
            ctxp->in_delay_spike = false;
          }
        }
        lp->schedule_in(delay, [sender_ptr, ack] { sender_ptr->on_ack(ack); });
      });
  ctx->receiver->set_delivery_observer(
      [st = ctx->stats.get()](const net::Packet& pkt, util::Time now) {
        st->on_delivery(pkt, now);
      });

  // --- ABC-style oracle: the base station stamps each ACK with its own
  // fair-share estimate for this user (no endpoint measurement involved).
  if (spec.algo == "abc") {
    ctx->receiver->set_feedback_filler(
        [dbs, ue](const net::Packet&, util::Time, net::Ack& ack) {
          const util::RateBps rate = dbs->explicit_rate_bps(ue);
          if (rate > 1000.0) {
            ack.pbe_rate_interval_us = static_cast<std::uint32_t>(
                std::clamp(1500.0 * 8.0 / rate * 1e6, 1.0, 4e9));
          }
        });
  }

  // --- PBE-CC client: decoder monitor + feedback filler.
  if (needs_pbe_client(spec.algo)) {
    pbe::PbeClientConfig pcfg;
    pcfg.rnti = rnti_for(spec.ue);
    for (std::size_t idx : rec.spec.cell_indices) {
      pcfg.cells.push_back(cell_cfgs_.at(idx));
    }
    pcfg.seed = rng_.next_u64();
    pcfg.faults = faults_.get();
    if (!spec.pbe_control_filter) {
      pcfg.tracker.min_active_subframes = 0;
      pcfg.tracker.min_average_prbs = 0;
    }
    const double extra_ber = spec.pbe_monitor_extra_ber;
    ctx->client = std::make_unique<pbe::PbeClient>(
        pcfg, [dbs, ue, extra_ber](phy::CellId cell) {
          auto ch = dbs->channel_state(ue, cell);
          ch.control_ber += extra_ber;
          return ch;
        });
    // Capture and telemetry taps both attach to the first PBE flow; they
    // compose into one ClientTaps so record+telemetry runs work.
    pbe::ClientTaps taps{};
    bool want_taps = false;
    if ((cfg_.capture != nullptr || cfg_.digest != nullptr) &&
        !capture_attached_) {
      capture_attached_ = true;
      if (cfg_.capture != nullptr && !cfg_.capture->begun()) {
        cfg_.capture->begin(cap::capture_header(pcfg, faults_.get()));
      }
      taps = cap::make_client_taps(cfg_.capture, cfg_.digest);
      want_taps = true;
    }
    if constexpr (tel::kCompiled) {
      if (cfg_.telemetry != nullptr && telemetry_flow_ < 0) {
        telemetry_flow_ = static_cast<int>(flows_.size());
        auto& trec = cfg_.telemetry->recorder();
        trec.set_meta("algo", spec.algo);
        trec.set_meta("seed", std::to_string(cfg_.seed));
        trec.set_meta("interval_us", std::to_string(cfg_.telemetry->interval()));
        trec.set_meta("fault_active", cfg_.fault.active() ? "1" : "0");
        if (cfg_.fault.active()) {
          trec.set_meta("fault_seed", std::to_string(cfg_.fault_seed));
        }
        auto& pipeline = cfg_.telemetry->pipeline();
        pipeline.attach(&ctx->client->monitor(), &ctx->client->estimator());
        taps.on_batch_end = [p = &pipeline](std::int64_t sf) {
          p->on_batch_end(sf);
        };
        want_taps = true;
      }
    }
    if (want_taps) ctx->client->set_taps(std::move(taps));
    // Batched: the client's monitor decodes all of one tick's cells at
    // once, fanning out on the pbecc::par pool when --threads > 1.
    dbs->add_pdcch_batch_observer(
        [c = ctx->client.get()](const std::vector<phy::PdcchSubframe>& sfs) {
          c->on_pdcch_batch(sfs);
        });
    ctx->receiver->set_feedback_filler(
        [c = ctx->client.get()](const net::Packet& pkt, util::Time now, net::Ack& ack) {
          c->fill_feedback(pkt, now, ack);
        });
  }

  ue_receivers_[spec.ue][flow_id] = ctx->receiver.get();
  flow_domain_[flow_id] = dom;
  flows_.push_back(std::move(ctx));
  return static_cast<int>(flows_.size()) - 1;
}

void Scenario::add_background(const BackgroundSpec& spec) {
  const int dom = cell_domain_.at(spec.cell_index);
  auto group = std::make_unique<BgGroup>();
  group->spec = spec;
  group->domain = dom;
  auto* dbs = domains_[static_cast<std::size_t>(dom)]->bs.get();
  for (int i = 0; i < spec.n_users; ++i) {
    const mac::UeId id = next_bg_ue_++;
    mac::UeConfig cfg;
    cfg.id = id;
    cfg.rnti = rnti_for(id);
    cfg.aggregated_cells = {cell_cfgs_.at(spec.cell_index).id};
    const double rssi = rng_.normal(spec.rssi_mean_dbm, spec.rssi_sigma_db);
    cfg.channel.trace = phy::MobilityTrace::stationary(rssi);
    cfg.channel.seed = rng_.next_u64();
    dbs->add_ue(cfg, [](net::Packet) { /* background payload: discard */ });
    group->users.push_back(id);
  }
  // Fork the session RNG at registration: arrivals draw on the domain
  // thread during parallel stepping, so they must not share the scenario
  // RNG (a data race, and order-dependent even single-threaded).
  group->rng = util::Rng(rng_.next_u64());
  group->flow_seq = bg_flow_seq_;
  bg_flow_seq_ += 1u << 16;  // private flow-id block per group
  schedule_bg_sessions(group.get());
  bg_groups_.push_back(std::move(group));
}

void Scenario::add_background_aggregate(const AggregateBackgroundSpec& spec) {
  const int dom = cell_domain_.at(spec.cell_index);
  mac::AggregateTrafficConfig cfg = spec.traffic;
  cfg.seed ^= rng_.next_u64();
  domains_[static_cast<std::size_t>(dom)]->bs->set_aggregate_traffic(
      cell_cfgs_.at(spec.cell_index).id, cfg);
}

void Scenario::schedule_bg_sessions(BgGroup* g) {
  if (g->users.empty() || g->spec.sessions_per_sec <= 0) return;
  auto& dloop = domains_[static_cast<std::size_t>(g->domain)]->loop;
  auto* dbs = domains_[static_cast<std::size_t>(g->domain)]->bs.get();
  // Recurring Poisson session arrivals. Each session trickles fixed-rate
  // packets straight into its user's base-station queue (the wired leg of
  // background flows is irrelevant to the cell under study). Background
  // UEs never migrate, so the enqueue is always domain-local.
  const auto arrival = [g, &dloop, dbs](const auto& self) -> void {
    const auto gap = static_cast<util::Duration>(
        g->rng.exponential(1.0 / g->spec.sessions_per_sec) * util::kSecond);
    dloop.schedule_in(std::max<util::Duration>(gap, util::kMillisecond), [g, &dloop, dbs, self] {
      const mac::UeId ue = g->users[static_cast<std::size_t>(g->rng.uniform_int(
          0, static_cast<std::int64_t>(g->users.size()) - 1))];
      const double rate = g->rng.uniform(g->spec.rate_lo, g->spec.rate_hi);
      const auto duration = static_cast<util::Duration>(
          g->rng.exponential(util::to_seconds(g->spec.mean_duration)) * util::kSecond);
      const util::Time end = dloop.now() + std::max<util::Duration>(duration, 10 * util::kMillisecond);
      const auto flow = static_cast<net::FlowId>(g->flow_seq++);
      const util::Duration interval =
          util::transmission_delay(net::kDefaultMss, rate);

      // Per-session packet pump.
      const auto pump = [ue, end, flow, interval, &dloop, dbs](const auto& pump_self) -> void {
        if (dloop.now() >= end) return;
        net::Packet pkt;
        pkt.flow = flow;
        pkt.seq = 0;
        pkt.bytes = net::kDefaultMss;
        pkt.sent_time = dloop.now();
        dbs->enqueue(ue, std::move(pkt));
        dloop.schedule_in(std::max<util::Duration>(interval, 50), [pump_self] { pump_self(pump_self); });
      };
      pump(pump);
      self(self);  // schedule the next session arrival
    });
  };
  arrival(arrival);
}

void Scenario::schedule_telemetry_sampling() {
  if (!tel::kCompiled || cfg_.telemetry == nullptr || telemetry_flow_ < 0) {
    return;
  }
  auto* ctx = flows_.at(static_cast<std::size_t>(telemetry_flow_)).get();
  const mac::UeId ue = ctx->spec.ue;
  const int home = ctx->domain;
  auto& dloop = domains_[static_cast<std::size_t>(home)]->loop;
  auto* dbs = domains_[static_cast<std::size_t>(home)]->bs.get();
  tel::Recorder* rec = &cfg_.telemetry->recorder();
  const util::Duration interval =
      std::max<util::Duration>(cfg_.telemetry->interval(), util::kMillisecond);

  const auto sample = [this, ue, home, rec, dbs, sender = ctx->sender.get(),
                       client = ctx->client.get()](util::Time now) {
    // Scheduler-side ground truth, one series set per active cell. The
    // sampling event was scheduled before this tick's base-station event,
    // so at t it reads state as of subframe t-1 — the same subframe the
    // pipeline half's sample at t covers (estimator `now` convention).
    // Skipped while the UE is migrated out of the flow's home domain:
    // another shard's base station cannot be read mid-step.
    if (ue_records_.at(ue).domain == home) {
      for (const auto& gt : dbs->ground_truth(ue)) {
        const std::string base = "truth.cell" + std::to_string(gt.cell) + ".";
        rec->append_f64(base + "fair_bits_sf", "bits/sf", now, gt.fair_bits_sf);
        rec->append_f64(base + "avail_bits_sf", "bits/sf", now, gt.avail_bits_sf);
        rec->append_i64(base + "users", "users", now, gt.active_users);
        rec->append_i64(base + "idle_prbs", "prbs", now, gt.idle_prbs);
        rec->append_i64(base + "own_prbs", "prbs", now, gt.own_prbs);
      }
      rec->append_i64("bs.queue_bytes", "bytes", now, dbs->queue_bytes(ue));
    }
    // Flow transport state.
    rec->append_f64("flow.pacing_bps", "bps", now,
                    sender->controller().pacing_rate(now));
    rec->append_f64("flow.cwnd_bytes", "bytes", now,
                    sender->controller().cwnd_bytes(now));
    rec->append_i64("flow.inflight_bytes", "bytes", now,
                    static_cast<std::int64_t>(sender->bytes_in_flight()));
    rec->append_i64("flow.delivered_bytes", "bytes", now,
                    static_cast<std::int64_t>(sender->total_delivered_bytes()));
    rec->append_i64("flow.srtt_us", "us", now, sender->smoothed_rtt());
    // Degradation machine + client state (PBE flows).
    if (const auto* ps =
            dynamic_cast<const pbe::PbeSender*>(&sender->controller())) {
      rec->append_i64("pbe.degradation_state", "state", now,
                      static_cast<std::int64_t>(ps->degradation_state()));
      rec->append_f64("pbe.confidence", "ratio", now,
                      ps->degradation().confidence());
      rec->append_f64("pbe.feedback_bps", "bps", now, ps->feedback_rate());
      rec->append_i64("pbe.rtprop_us", "us", now, ps->rtprop());
      // Hybrid estimator cross-check (DESIGN.md §13). The sidecar runs for
      // every PbeSender, so the delay-side series are always meaningful;
      // blend weight is pinned at 1 for non-hybrid flows.
      rec->append_f64("pbe.blend_weight", "ratio", now, ps->blend_weight());
      rec->append_i64("pbe.divergence", "bool", now,
                      ps->degradation().diverged() ? 1 : 0);
      rec->append_f64("bwe.target_bps", "bps", now,
                      ps->delay_bwe().target_bps());
      rec->append_f64("bwe.acked_bps", "bps", now,
                      ps->delay_bwe().acked_bps());
      rec->append_f64("bwe.trendline_slope", "ms/ms", now,
                      ps->delay_bwe().trendline().slope());
      rec->append_i64("bwe.overuse_state", "state", now,
                      static_cast<std::int64_t>(ps->delay_bwe().usage()));
    }
    if (client != nullptr) {
      rec->append_i64("pbe.client_state", "state", now,
                      static_cast<std::int64_t>(client->state()));
    }
    rec->append_i64("check.violations", "count", now,
                    static_cast<std::int64_t>(check::violations()));
  };

  // Recurring event on exact k*interval sim-clock boundaries. Each firing
  // schedules the next, so a sample event always enters the queue before
  // the same-timestamp base-station tick (FIFO tie-break) — see above.
  const auto tick = [&dloop, sample, interval](const auto& self) -> void {
    const util::Time now = dloop.now();
    const util::Time next = (now / interval) * interval + interval;
    dloop.schedule_in(next - now, [&dloop, sample, self] {
      sample(dloop.now());
      self(self);
    });
  };
  tick(tick);
}

void Scenario::storm_tick(std::size_t d) {
  Domain* dom = domains_[d].get();
  for (auto& [id, rec] : ue_records_) {
    if (rec.domain != static_cast<int>(d)) continue;
    const std::size_t k = ++rec.rotation;
    std::vector<std::size_t> idxs;
    int target = static_cast<int>(d);
    if (rec.spec.serving_sets.empty()) {
      // Classic rotation inside the registered set (single-cell UEs are
      // re-handed to the same cell, which still abandons all in-flight
      // HARQ blocks — the disruptive part).
      const auto& base = rec.spec.cell_indices;
      idxs.reserve(base.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        idxs.push_back(base[(i + k) % base.size()]);
      }
    } else {
      // Rotate through {registered set, serving_sets...}; a set in
      // another cluster becomes a cross-shard migration request, applied
      // at the next subframe barrier.
      const std::size_t n = rec.spec.serving_sets.size() + 1;
      const std::size_t pick = k % n;
      idxs = pick == 0 ? rec.spec.cell_indices
                       : rec.spec.serving_sets[pick - 1];
      target = cell_domain_.at(idxs.front());
    }
    if (target == static_cast<int>(d)) {
      std::vector<phy::CellId> cells;
      cells.reserve(idxs.size());
      for (std::size_t idx : idxs) cells.push_back(cell_cfgs_.at(idx).id);
      dom->bs->handover(id, cells);
    } else {
      ShardMsg m;
      m.kind = ShardMsg::Kind::kMigrate;
      m.ue = id;
      m.new_cells = idxs;
      m.target_domain = target;
      mailbox_.post(static_cast<std::uint32_t>(d), dom->loop.now(),
                    std::move(m));
    }
    if constexpr (obs::kCompiled) {
      static obs::Counter& storms = obs::counter("fault.storm_handovers");
      storms.inc();
      obs::emit(obs::EventKind::kFaultInjected, dom->loop.now(),
                static_cast<std::uint16_t>(cell_cfgs_.at(idxs.front()).id),
                static_cast<std::uint32_t>(fault::FaultType::kHandoverStorm),
                static_cast<std::int64_t>(id));
    }
  }
}

void Scenario::do_migrate(mac::UeId ue,
                          const std::vector<std::size_t>& cell_indices,
                          int target) {
  UeRecord& rec = ue_records_.at(ue);
  std::vector<phy::CellId> cells;
  cells.reserve(cell_indices.size());
  for (std::size_t idx : cell_indices) {
    cells.push_back(cell_cfgs_.at(idx).id);
  }
  if (rec.domain == target) {
    // Same-cluster move (duplicate request or plain serving-set change):
    // an ordinary handover.
    domains_[static_cast<std::size_t>(target)]->bs->handover(ue, cells);
    return;
  }
  // Extract abandons in-flight HARQ synchronously (deliveries released by
  // the reordering drain route through route_delivery, which delivers
  // directly while in_barrier_), then the full UE state moves across.
  mac::UeMigration m =
      domains_[static_cast<std::size_t>(rec.domain)]->bs->extract_ue(ue);
  domains_[static_cast<std::size_t>(target)]->bs->admit_ue(
      std::move(m), cells, make_delivery_handler(ue));
  rec.domain = target;
}

void Scenario::migrate_ue(mac::UeId ue,
                          const std::vector<std::size_t>& cell_indices) {
  if (!ue_records_.contains(ue)) {
    throw std::invalid_argument("migrate_ue: UE not registered");
  }
  const int target = domain_of(cell_indices, "migrate_ue");
  in_barrier_ = true;
  try {
    do_migrate(ue, cell_indices, target);
  } catch (...) {
    in_barrier_ = false;
    throw;
  }
  in_barrier_ = false;
}

void Scenario::apply_msg(ShardMsg msg) {
  switch (msg.kind) {
    case ShardMsg::Kind::kPacket:
      domains_[static_cast<std::size_t>(ue_records_.at(msg.ue).domain)]
          ->bs->enqueue(msg.ue, std::move(msg.pkt));
      break;
    case ShardMsg::Kind::kDeliver:
      route_delivery(msg.ue, std::move(msg.pkt));
      break;
    case ShardMsg::Kind::kMigrate:
      do_migrate(msg.ue, msg.new_cells, msg.target_domain);
      break;
  }
}

par::ThreadPool& Scenario::shard_pool() {
  if (!pool_) {
    int want = cfg_.shards > 0 ? cfg_.shards : default_shards();
    want = std::clamp(want, 1, static_cast<int>(domains_.size()));
    pool_ = std::make_unique<par::ThreadPool>(want);
  }
  return *pool_;
}

void Scenario::start_once() {
  if (started_) return;
  started_ = true;
  for (auto& dom : domains_) dom->bs->start();
  schedule_telemetry_sampling();
  if (faults_ && cfg_.fault.handover_storm_duty > 0 &&
      cfg_.fault.handover_interval > 0) {
    // Storm driver, one per domain: every handover_interval, while a
    // storm window is active, hand over every UE the domain currently
    // hosts. Runs inside the domain's own event sequence, so its mailbox
    // posts carry deterministic (time, source, seq) keys.
    for (std::size_t d = 0; d < domains_.size(); ++d) {
      Domain* dom = domains_[d].get();
      const auto driver = [this, d, dom](const auto& self) -> void {
        dom->loop.schedule_in(cfg_.fault.handover_interval, [this, d, dom, self] {
          if (faults_->handover_storm(dom->loop.now())) storm_tick(d);
          self(self);
        });
      };
      driver(driver);
    }
  }
}

void Scenario::run_until(util::Time t) {
  start_once();
  if (domains_.size() == 1) {
    // Single-cluster fast path: one loop, no barriers, no sinks —
    // byte-identical to the pre-shard simulator.
    domains_.front()->loop.run_until(t);
    now_ = std::max(now_, t);
    return;
  }
  while (now_ < t) {
    const util::Time step = std::min<util::Time>(
        t, (now_ / kShardBarrier + 1) * kShardBarrier);
    // Parallel phase: each domain advances to the barrier on a worker,
    // tracing into its private sink. No shared mutable state is touched
    // (mailbox lanes are single-writer, UE domain tags are frozen).
    shard_pool().parallel_for(
        domains_.size(), [this, step](std::size_t d) {
          obs::ThreadSinkScope sink(&domains_[d]->trace_buf);
          domains_[d]->loop.run_until(step);
        });
    // Serial phase: flush trace buffers in domain-index order (canonical,
    // worker-independent), then apply cross-domain messages in merged
    // (time, source, seq) order with every clock aligned at `step`.
    in_barrier_ = true;
    if constexpr (obs::kCompiled) {
      for (auto& dom : domains_) {
        if (!dom->trace_buf.empty()) {
          obs::Trace::instance().record_batch(dom->trace_buf);
          dom->trace_buf.clear();
        }
      }
    }
    for (auto& msg : mailbox_.drain()) {
      apply_msg(std::move(msg.payload));
    }
    in_barrier_ = false;
    now_ = step;
  }
}

}  // namespace pbecc::sim
